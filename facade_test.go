package migrrdma

// Facade smoke test: the whole quickstart flow driven purely through
// the re-exported public surface.

import (
	"testing"
	"time"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tb := NewTestbed(1, "a", "b", "spare")
	sched := tb.CL.Sched

	var peerReady bool
	var peerQPN, peerRKey uint32
	peer := NewContainer(tb, "b", "peer")
	peer.Start(func(p *Process) {
		sess := NewSession(p, tb.Daemons["b"])
		p.AS.Map(0x100000, 1<<20, "region")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(64, nil)
		mr, err := sess.RegMR(pd, 0x100000, 1<<20, AccessLocalWrite|AccessRemoteWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, QPConfig{SendCQ: cq, RecvCQ: cq})
		qp.Modify(ModifyAttr{State: StateInit})
		peerQPN, peerRKey = qp.VQPN(), mr.RKey()
		peerReady = true
		for facadeAppQPN == 0 {
			sched.Sleep(time.Millisecond)
		}
		qp.Modify(ModifyAttr{State: StateRTR, RemoteNode: "a", RemoteQPN: facadeAppQPN})
		qp.Modify(ModifyAttr{State: StateRTS})
	})

	wrote := 0
	app := NewContainer(tb, "a", "app")
	app.Start(func(p *Process) {
		for !peerReady {
			sched.Sleep(time.Millisecond)
		}
		sess := NewSession(p, tb.Daemons["a"])
		p.AS.Map(0x200000, 1<<20, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(64, nil)
		mr, err := sess.RegMR(pd, 0x200000, 1<<20, AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, QPConfig{SendCQ: cq, RecvCQ: cq})
		qp.Modify(ModifyAttr{State: StateInit})
		facadeAppQPN = qp.VQPN()
		qp.Modify(ModifyAttr{State: StateRTR, RemoteNode: "b", RemoteQPN: peerQPN})
		qp.Modify(ModifyAttr{State: StateRTS})
		write := func() {
			if err := qp.PostSend(SendWR{
				WRID: 1, Opcode: OpWrite, Signaled: true,
				SGEs:       []SGE{{Addr: 0x200000, Len: 32, LKey: mr.LKey()}},
				RemoteAddr: 0x100000, RKey: peerRKey,
			}); err != nil {
				t.Error(err)
				return
			}
			cq.WaitNonEmpty()
			for _, e := range cq.Poll(4) {
				if e.Status == 0 {
					wrote++
				}
			}
		}
		write()
		for sess.Node() == "a" {
			p.Compute(300 * time.Microsecond)
		}
		write()
	})

	var rep *MigrationReport
	sched.Go("operator", func() {
		for facadeAppQPN == 0 {
			sched.Sleep(time.Millisecond)
		}
		sched.Sleep(5 * time.Millisecond)
		var err error
		rep, err = tb.Migrate(app, "a", "spare", DefaultMigrateOptions())
		if err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	tb.CL.Sched.RunFor(2 * time.Minute)
	if wrote != 2 {
		t.Fatalf("completed %d writes, want one per side of the migration", wrote)
	}
	if rep == nil || rep.ServiceBlackout == 0 {
		t.Fatalf("no migration report: %+v", rep)
	}
	_ = rep
}

var facadeAppQPN uint32
