package verbs

import (
	"encoding/binary"
	"sync/atomic"

	"migrrdma/internal/mem"
)

// This file models the library-managed queue memory of a real verbs
// stack: the driver maps SQ/RQ work-queue rings and CQ entry rings into
// the process's address space, the library writes a WQE slot on every
// post, and the device DMA-writes CQE slots on every completion.
//
// Two paper-relevant behaviours fall out of this model:
//
//   - Every QP adds mappings to the process, so CRIU's dump cost grows
//     with the number of QPs ("DumpOthers", Fig. 3, §5.2).
//   - Posting and completing work dirties ring pages continuously, so
//     RDMA-active processes never reach a clean pre-copy state.
//
// These rings are the paper's Table-1 first category: local states
// hidden from applications, restored by the live migration tool and
// re-pointed by the driver after restoration.

// wqeSlotSize is the in-memory size of one work-queue element.
const wqeSlotSize = 64

// ringHintSpacing separates the ring arenas of different contexts so a
// restored context's fresh rings never collide with image-restored ring
// mappings of the original context.
const (
	ringHintBase    = mem.Addr(0x7f00_0000_0000)
	ringHintSpacing = mem.Addr(0x10_0000_0000)
	// dmArenaHint places on-chip memory mappings below the ring arenas.
	dmArenaHint = mem.Addr(0x7e00_0000_0000)
)

// nextCtxInstance numbers contexts for ring arena placement. It is a
// process-wide atomic, not per-simulation: independent simulations may
// now run on concurrent goroutines (shard workers, parallel chaos
// sweeps), and the arena hint must stay tear-free. The hint's value
// never feeds observable behavior — MapAnywhere treats it as a
// placement preference inside a per-process address space — so
// cross-run counter drift cannot perturb trace hashes.
var nextCtxInstance atomic.Uint64

// ringArena returns the base hint for a fresh context's rings.
func ringArena() mem.Addr {
	return ringHintBase + mem.Addr(nextCtxInstance.Add(1))*ringHintSpacing
}

// mapRing maps a library ring of n slots and returns its base address.
func (c *Context) mapRing(name string, slots int) (mem.Addr, error) {
	v, err := c.as.MapAnywhere(c.ringHint, uint64(slots*wqeSlotSize), name)
	if err != nil {
		return 0, err
	}
	return v.Start, nil
}

// writeWQE stamps one work-queue slot, dirtying the ring page the way a
// real library's WQE write does.
func (c *Context) writeWQE(base mem.Addr, seq, depth int, wrID uint64) {
	var slot [wqeSlotSize]byte
	binary.LittleEndian.PutUint64(slot[:], wrID)
	_ = c.as.Write(base+mem.Addr((seq%depth)*wqeSlotSize), slot[:])
}
