// Package verbs is the ibverbs-shaped userspace API over internal/rnic:
// contexts, protection domains, memory regions, completion queues, queue
// pairs, shared receive queues, memory windows, on-chip device memory
// and completion channels.
//
// It corresponds to the OFED driver + libibverbs pair the paper modifies
// (§4): every control-path call is reported to an optional Recorder (the
// seam where MigrRDMA's indirection layer bookkeeps the "roadmap" of
// RDMA communication establishment) and the restore entry points of
// Table 3 (RestoreContext / RestorePD / RestoreCQ / RestoreQP, …) let a
// migration tool rebuild equivalent resources on a destination device.
//
// The values this layer returns to applications — QPNs, lkeys, rkeys —
// are the NIC's physical ones. Virtualizing them is deliberately NOT
// done here; that is the MigrRDMA guest library's job (internal/core),
// mirroring the paper's split between the plain RDMA library and the
// MigrRDMA Lib.
package verbs

import (
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// Recorder observes control-path calls. The MigrRDMA indirection layer
// implements it to maintain the minimal state needed to rebuild RDMA
// communications (§3.2 "Checkpointing the RDMA communication").
type Recorder interface {
	Record(ev Event)
}

// EventKind enumerates control-path operations.
type EventKind int

// Control-path event kinds.
const (
	EvAllocPD EventKind = iota
	EvDeallocPD
	EvRegMR
	EvDeregMR
	EvCreateCQ
	EvDestroyCQ
	EvCreateQP
	EvDestroyQP
	EvModifyQP
	EvCreateSRQ
	EvDestroySRQ
	EvCreateCompChannel
	EvBindMW
	EvDeallocMW
	EvAllocDM
	EvFreeDM
)

// Event is one recorded control-path call, carrying the driver-local
// object ID, its dependencies, and the creation parameters needed for
// replay.
type Event struct {
	Kind EventKind
	ID   ObjID

	// Dependencies (zero when not applicable).
	PD, SendCQ, RecvCQ, SRQ, MR, Channel ObjID

	// Creation parameters.
	QPType rnic.QPType
	Caps   rnic.QPCaps
	Addr   mem.Addr
	Len    uint64
	Access rnic.Access
	CQCap  int

	// ModifyQP parameters.
	Attr rnic.ModifyAttr
}

// ObjID is a driver-local object identifier, stable for the lifetime of
// the owning process (unlike physical QPNs/keys, which change when the
// resource is recreated on another NIC).
type ObjID uint64

// Context is a process's opened device (ibv_open_device +
// ibv_alloc_context). It knows the process address space for MR
// registration and DMA.
type Context struct {
	dev *rnic.Device
	as  *mem.AddressSpace
	rec Recorder

	nextID   ObjID
	cqList   []*CQ
	ringHint mem.Addr
}

// OpenDevice opens dev for a process whose memory is as.
func OpenDevice(dev *rnic.Device, as *mem.AddressSpace) *Context {
	return &Context{dev: dev, as: as, nextID: 1, ringHint: ringArena()}
}

// SetRecorder installs the control-path recorder (the indirection
// layer). Pass nil to detach.
func (c *Context) SetRecorder(r Recorder) { c.rec = r }

// SetNextObjID raises the object ID allocator. A restored context must
// allocate IDs beyond those in the process's existing roadmap so fresh
// resources never collide with replayed ones.
func (c *Context) SetNextObjID(id ObjID) {
	if id > c.nextID {
		c.nextID = id
	}
}

// Device returns the underlying device.
func (c *Context) Device() *rnic.Device { return c.dev }

// Node returns the fabric node the device is attached to.
func (c *Context) Node() string { return c.dev.Node() }

// Mem returns the address space MRs are registered against.
func (c *Context) Mem() *mem.AddressSpace { return c.as }

// Scheduler returns the simulation scheduler.
func (c *Context) Scheduler() *sim.Scheduler { return c.dev.Scheduler() }

func (c *Context) record(ev Event) {
	if c.rec != nil {
		c.rec.Record(ev)
	}
}

func (c *Context) id() ObjID {
	id := c.nextID
	c.nextID++
	return id
}

// PD is a protection domain handle.
type PD struct {
	ID  ObjID
	ctx *Context
	pd  *rnic.PD
}

// AllocPD allocates a protection domain (ibv_alloc_pd).
func (c *Context) AllocPD() *PD {
	pd := &PD{ID: c.id(), ctx: c, pd: c.dev.AllocPD()}
	c.record(Event{Kind: EvAllocPD, ID: pd.ID})
	return pd
}

// Dealloc releases the protection domain (ibv_dealloc_pd).
func (pd *PD) Dealloc() {
	pd.ctx.dev.DeallocPD(pd.pd)
	pd.ctx.record(Event{Kind: EvDeallocPD, ID: pd.ID})
}

// MR is a registered memory region handle.
type MR struct {
	ID  ObjID
	ctx *Context
	mr  *rnic.MR
}

// RegMR registers memory (ibv_reg_mr). The virtual address is the
// process's own, which is why restoring MRs requires the original
// addresses to be mapped first (§3.2).
func (c *Context) RegMR(pd *PD, addr mem.Addr, length uint64, access rnic.Access) (*MR, error) {
	m, err := c.dev.RegMR(pd.pd, c.as, addr, length, access)
	if err != nil {
		return nil, err
	}
	mr := &MR{ID: c.id(), ctx: c, mr: m}
	c.record(Event{Kind: EvRegMR, ID: mr.ID, PD: pd.ID, Addr: addr, Len: length, Access: access})
	return mr, nil
}

// LKey returns the physical local key.
func (mr *MR) LKey() uint32 { return mr.mr.LKey }

// RKey returns the physical remote key.
func (mr *MR) RKey() uint32 { return mr.mr.RKey }

// Addr returns the registered base virtual address.
func (mr *MR) Addr() mem.Addr { return mr.mr.Addr }

// Len returns the registered length.
func (mr *MR) Len() uint64 { return mr.mr.Len }

// Access returns the registered access flags.
func (mr *MR) Access() rnic.Access { return mr.mr.Access }

// Dereg deregisters the region (ibv_dereg_mr).
func (mr *MR) Dereg() {
	mr.ctx.dev.DeregMR(mr.mr)
	mr.ctx.record(Event{Kind: EvDeregMR, ID: mr.ID})
}

// CompChannel is a completion event channel handle.
type CompChannel struct {
	ID  ObjID
	ctx *Context
	ch  *rnic.CompChannel
}

// CreateCompChannel creates a completion channel (ibv_create_comp_channel).
func (c *Context) CreateCompChannel() *CompChannel {
	ch := &CompChannel{ID: c.id(), ctx: c, ch: c.dev.CreateCompChannel()}
	c.record(Event{Kind: EvCreateCompChannel, ID: ch.ID})
	return ch
}

// Get blocks until a CQ event arrives (ibv_get_cq_event).
func (ch *CompChannel) Get() *CQ {
	rcq := ch.ch.Get()
	if rcq == nil {
		return nil
	}
	return ch.ctx.cqFor(rcq)
}

// TryGet returns a pending event without blocking.
func (ch *CompChannel) TryGet() (*CQ, bool) {
	rcq, ok := ch.ch.TryGet()
	if !ok {
		return nil, false
	}
	return ch.ctx.cqFor(rcq), true
}

// cqs tracks the context's CQ wrappers so channel events can be mapped
// back to handles.
func (c *Context) cqFor(rcq *rnic.CQ) *CQ {
	for _, cq := range c.cqList {
		if cq.cq == rcq {
			return cq
		}
	}
	return nil
}

// CQ is a completion queue handle.
type CQ struct {
	ID   ObjID
	ctx  *Context
	cq   *rnic.CQ
	ch   *CompChannel
	ring mem.Addr
}

// CreateCQ creates a completion queue (ibv_create_cq), optionally bound
// to a completion channel.
func (c *Context) CreateCQ(capacity int, ch *CompChannel) *CQ {
	var rch *rnic.CompChannel
	var chID ObjID
	if ch != nil {
		rch = ch.ch
		chID = ch.ID
	}
	cq := &CQ{ID: c.id(), ctx: c, cq: c.dev.CreateCQ(capacity, rch), ch: ch}
	if ring, err := c.mapRing("cq-ring", capacity); err == nil {
		cq.cq.SetShadowRing(c.as, ring)
		cq.ring = ring
	}
	c.cqList = append(c.cqList, cq)
	c.record(Event{Kind: EvCreateCQ, ID: cq.ID, CQCap: capacity, Channel: chID})
	return cq
}

// Poll polls up to max completions (ibv_poll_cq). Non-blocking.
func (cq *CQ) Poll(max int) []rnic.CQE { return cq.cq.Poll(max) }

// Len reports pending completions.
func (cq *CQ) Len() int { return cq.cq.Len() }

// WaitNonEmpty parks the caller until completions are available
// (simulation stand-in for a busy-poll loop).
func (cq *CQ) WaitNonEmpty() { cq.cq.WaitNonEmpty() }

// WaitNonEmptyTimeout parks until completions are available or d
// elapses, reporting availability.
func (cq *CQ) WaitNonEmptyTimeout(d time.Duration) bool { return cq.cq.WaitNonEmptyTimeout(d) }

// ReqNotify arms the CQ for one event (ibv_req_notify_cq).
func (cq *CQ) ReqNotify() { cq.cq.ReqNotify() }

// Destroy releases the CQ and its library ring (ibv_destroy_cq).
func (cq *CQ) Destroy() {
	cq.cq.SetShadowRing(nil, 0)
	cq.ctx.dev.DestroyCQ(cq.cq)
	if cq.ring != 0 {
		_ = cq.ctx.as.Unmap(cq.ring)
		cq.ring = 0
	}
	cq.ctx.record(Event{Kind: EvDestroyCQ, ID: cq.ID})
	for i, e := range cq.ctx.cqList {
		if e == cq {
			cq.ctx.cqList = append(cq.ctx.cqList[:i], cq.ctx.cqList[i+1:]...)
			break
		}
	}
}

// SRQ is a shared receive queue handle.
type SRQ struct {
	ID  ObjID
	ctx *Context
	srq *rnic.SRQ
}

// CreateSRQ creates a shared receive queue (ibv_create_srq).
func (c *Context) CreateSRQ() *SRQ {
	s := &SRQ{ID: c.id(), ctx: c, srq: c.dev.CreateSRQ()}
	c.record(Event{Kind: EvCreateSRQ, ID: s.ID})
	return s
}

// PostRecv posts to the shared receive queue (ibv_post_srq_recv).
func (s *SRQ) PostRecv(wr rnic.RecvWR) { s.srq.PostRecv(wr) }

// Len reports outstanding receive WQEs.
func (s *SRQ) Len() int { return s.srq.Len() }

// Destroy releases the SRQ.
func (s *SRQ) Destroy() {
	s.ctx.dev.DestroySRQ(s.srq)
	s.ctx.record(Event{Kind: EvDestroySRQ, ID: s.ID})
}

// QP is a queue pair handle.
type QP struct {
	ID  ObjID
	ctx *Context
	qp  *rnic.QP

	pd             *PD
	sendCQ, recvCQ *CQ
	srq            *SRQ

	// Library-managed work-queue rings (see rings.go).
	sqRing, rqRing   mem.Addr
	sqDepth, rqDepth int
	sqSeq, rqSeq     int
}

// CreateQP creates a queue pair (ibv_create_qp).
func (c *Context) CreateQP(pd *PD, typ rnic.QPType, sendCQ, recvCQ *CQ, srq *SRQ, caps rnic.QPCaps) *QP {
	var rsrq *rnic.SRQ
	var srqID ObjID
	if srq != nil {
		rsrq = srq.srq
		srqID = srq.ID
	}
	qp := &QP{
		ID:  c.id(),
		ctx: c,
		qp:  c.dev.CreateQP(pd.pd, typ, sendCQ.cq, recvCQ.cq, rsrq, caps),
		pd:  pd, sendCQ: sendCQ, recvCQ: recvCQ, srq: srq,
	}
	qp.sqDepth, qp.rqDepth = caps.MaxSend, caps.MaxRecv
	if qp.sqDepth == 0 {
		qp.sqDepth = 128
	}
	if qp.rqDepth == 0 {
		qp.rqDepth = 128
	}
	qp.sqRing, _ = c.mapRing("qp-sq-ring", qp.sqDepth)
	qp.rqRing, _ = c.mapRing("qp-rq-ring", qp.rqDepth)
	c.record(Event{
		Kind: EvCreateQP, ID: qp.ID, PD: pd.ID,
		SendCQ: sendCQ.ID, RecvCQ: recvCQ.ID, SRQ: srqID,
		QPType: typ, Caps: caps,
	})
	return qp
}

// QPN returns the physical queue pair number.
func (qp *QP) QPN() uint32 { return qp.qp.QPN }

// Type returns the QP service type.
func (qp *QP) Type() rnic.QPType { return qp.qp.Type }

// State returns the QP state.
func (qp *QP) State() rnic.QPState { return qp.qp.State() }

// SendCQ returns the send completion queue handle.
func (qp *QP) SendCQ() *CQ { return qp.sendCQ }

// RecvCQ returns the receive completion queue handle.
func (qp *QP) RecvCQ() *CQ { return qp.recvCQ }

// Modify transitions the QP (ibv_modify_qp).
func (qp *QP) Modify(attr rnic.ModifyAttr) error {
	if err := qp.qp.Modify(attr); err != nil {
		return err
	}
	qp.ctx.record(Event{Kind: EvModifyQP, ID: qp.ID, Attr: attr})
	return nil
}

// PostSend posts a send work request (ibv_post_send), writing the WQE
// into the library-managed SQ ring.
func (qp *QP) PostSend(wr rnic.SendWR) error {
	if err := qp.qp.PostSend(wr); err != nil {
		return err
	}
	if qp.sqRing != 0 {
		qp.ctx.writeWQE(qp.sqRing, qp.sqSeq, qp.sqDepth, wr.WRID)
		qp.sqSeq++
	}
	return nil
}

// PostRecv posts a receive work request (ibv_post_recv), writing the
// WQE into the library-managed RQ ring.
func (qp *QP) PostRecv(wr rnic.RecvWR) error {
	if err := qp.qp.PostRecv(wr); err != nil {
		return err
	}
	if qp.rqRing != 0 {
		qp.ctx.writeWQE(qp.rqRing, qp.rqSeq, qp.rqDepth, wr.WRID)
		qp.rqSeq++
	}
	return nil
}

// SendQueueDepth reports in-flight (posted, unretired) send WQEs.
func (qp *QP) SendQueueDepth() int { return qp.qp.SendQueueDepth() }

// RecvQueueDepth reports unconsumed receive WQEs.
func (qp *QP) RecvQueueDepth() int { return qp.qp.RecvQueueDepth() }

// Counters returns (n_sent, n_recv): two-sided verbs posted and receive
// WQEs completed since creation — the §3.4 wait-before-stop counters.
func (qp *QP) Counters() (nSent, nRecv uint64) { return qp.qp.NSent, qp.qp.NRecvDone }

// RemoteQPN returns the connected peer QPN (RC).
func (qp *QP) RemoteQPN() uint32 { return qp.qp.RemoteQPN() }

// RemoteNode returns the connected peer node (RC).
func (qp *QP) RemoteNode() string { return qp.qp.RemoteNode() }

// Destroy releases the QP and its library rings (ibv_destroy_qp).
func (qp *QP) Destroy() {
	qp.ctx.dev.DestroyQP(qp.qp)
	if qp.sqRing != 0 {
		_ = qp.ctx.as.Unmap(qp.sqRing)
		qp.sqRing = 0
	}
	if qp.rqRing != 0 {
		_ = qp.ctx.as.Unmap(qp.rqRing)
		qp.rqRing = 0
	}
	qp.ctx.record(Event{Kind: EvDestroyQP, ID: qp.ID})
}

// MW is a memory window handle.
type MW struct {
	ID  ObjID
	ctx *Context
	mw  *rnic.MW
	mr  *MR
}

// BindMW binds a memory window over a subrange of mr (ibv_bind_mw).
func (c *Context) BindMW(mr *MR, addr mem.Addr, length uint64, access rnic.Access) (*MW, error) {
	w, err := c.dev.BindMW(mr.mr, addr, length, access)
	if err != nil {
		return nil, err
	}
	mw := &MW{ID: c.id(), ctx: c, mw: w, mr: mr}
	c.record(Event{Kind: EvBindMW, ID: mw.ID, MR: mr.ID, Addr: addr, Len: length, Access: access})
	return mw, nil
}

// RKey returns the window's physical remote key.
func (mw *MW) RKey() uint32 { return mw.mw.RKey }

// Dealloc releases the window (ibv_dealloc_mw).
func (mw *MW) Dealloc() {
	mw.ctx.dev.DeallocMW(mw.mw)
	mw.ctx.record(Event{Kind: EvDeallocMW, ID: mw.ID})
}

// DM is an on-chip device memory handle mapped into the process at Addr.
type DM struct {
	ID   ObjID
	ctx  *Context
	dm   *rnic.DM
	Addr mem.Addr
	Len  uint64
}

// AllocDM allocates on-chip memory (ibv_alloc_dm) and maps it into the
// process address space at an allocator-chosen virtual address.
func (c *Context) AllocDM(length uint64) (*DM, error) {
	d, err := c.dev.AllocDM(length)
	if err != nil {
		return nil, err
	}
	vma, err := c.as.MapAnywhereDevice(dmArenaHint, length, "dm")
	if err != nil {
		c.dev.FreeDM(d)
		return nil, err
	}
	dm := &DM{ID: c.id(), ctx: c, dm: d, Addr: vma.Start, Len: length}
	c.record(Event{Kind: EvAllocDM, ID: dm.ID, Addr: dm.Addr, Len: length})
	return dm, nil
}

// Remap moves the device mapping to a chosen virtual address (used by
// restore to reproduce the original mapping; §3.3 does this with
// mremap()).
func (dm *DM) Remap(to mem.Addr) error {
	if err := dm.ctx.as.Remap(dm.Addr, to); err != nil {
		return err
	}
	dm.Addr = to
	return nil
}

// Free releases the on-chip memory and its mapping (ibv_free_dm).
func (dm *DM) Free() {
	dm.ctx.dev.FreeDM(dm.dm)
	_ = dm.ctx.as.Unmap(dm.Addr)
	dm.ctx.record(Event{Kind: EvFreeDM, ID: dm.ID})
}
