package verbs

import (
	"testing"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// recorder captures control-path events for assertions.
type recorder struct{ evs []Event }

func (r *recorder) Record(ev Event) { r.evs = append(r.evs, ev) }

func (r *recorder) kinds() []EventKind {
	var out []EventKind
	for _, e := range r.evs {
		out = append(out, e.Kind)
	}
	return out
}

func newCtx(t *testing.T) (*sim.Scheduler, *Context, *recorder) {
	t.Helper()
	s := sim.New(1)
	net := fabric.New(s, fabric.Config{})
	mux := fabric.NewMux(net, "h")
	dev := rnic.NewDevice(net, mux, "h", rnic.Config{})
	as := mem.NewAddressSpace()
	as.Map(0x100000, 1<<20, "arena")
	ctx := OpenDevice(dev, as)
	rec := &recorder{}
	ctx.SetRecorder(rec)
	return s, ctx, rec
}

func TestControlPathRecording(t *testing.T) {
	s, ctx, rec := newCtx(t)
	s.Go("test", func() {
		pd := ctx.AllocPD()
		cq := ctx.CreateCQ(64, nil)
		mr, err := ctx.RegMR(pd, 0x100000, 4096, rnic.AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := ctx.CreateQP(pd, rnic.RC, cq, cq, nil, rnic.QPCaps{})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		mr.Dereg()
		want := []EventKind{EvAllocPD, EvCreateCQ, EvRegMR, EvCreateQP, EvModifyQP, EvDeregMR}
		got := rec.kinds()
		if len(got) != len(want) {
			t.Fatalf("recorded %d events, want %d: %v", len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
			}
		}
		// The QP creation event must carry its dependencies.
		var qpEv Event
		for _, e := range rec.evs {
			if e.Kind == EvCreateQP {
				qpEv = e
			}
		}
		if qpEv.PD != pd.ID || qpEv.SendCQ != cq.ID || qpEv.RecvCQ != cq.ID {
			t.Fatalf("QP event dependencies wrong: %+v", qpEv)
		}
	})
	s.Run()
}

func TestObjIDsAreStableAndUnique(t *testing.T) {
	s, ctx, _ := newCtx(t)
	s.Go("test", func() {
		seen := map[ObjID]bool{}
		pd := ctx.AllocPD()
		cq := ctx.CreateCQ(16, nil)
		qp := ctx.CreateQP(pd, rnic.RC, cq, cq, nil, rnic.QPCaps{})
		for _, id := range []ObjID{pd.ID, cq.ID, qp.ID} {
			if seen[id] {
				t.Fatalf("duplicate ObjID %d", id)
			}
			seen[id] = true
		}
		ctx.SetNextObjID(100)
		pd2 := ctx.AllocPD()
		if pd2.ID != 100 {
			t.Fatalf("after SetNextObjID: %d, want 100", pd2.ID)
		}
		// Lowering is ignored.
		ctx.SetNextObjID(5)
		if id := ctx.AllocPD().ID; id != 101 {
			t.Fatalf("SetNextObjID lowered the allocator: %d", id)
		}
	})
	s.Run()
}

func TestQPCreatesLibraryRings(t *testing.T) {
	s, ctx, _ := newCtx(t)
	s.Go("test", func() {
		before := len(ctx.Mem().VMAs())
		pd := ctx.AllocPD()
		cq := ctx.CreateCQ(64, nil)
		qp := ctx.CreateQP(pd, rnic.RC, cq, cq, nil, rnic.QPCaps{MaxSend: 16, MaxRecv: 16})
		after := len(ctx.Mem().VMAs())
		// CQ ring + SQ ring + RQ ring.
		if after-before != 3 {
			t.Fatalf("QP+CQ added %d mappings, want 3 rings", after-before)
		}
		qp.Destroy()
		cq.Destroy()
		if n := len(ctx.Mem().VMAs()); n != before {
			t.Fatalf("destroy left %d mappings, want %d", n, before)
		}
	})
	s.Run()
}

func TestPostDirtiesRingPages(t *testing.T) {
	s, ctx, _ := newCtx(t)
	s.Go("test", func() {
		pd := ctx.AllocPD()
		cq := ctx.CreateCQ(64, nil)
		mr, _ := ctx.RegMR(pd, 0x100000, 4096, rnic.AccessLocalWrite)
		qp := ctx.CreateQP(pd, rnic.RC, cq, cq, nil, rnic.QPCaps{})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		ctx.Mem().ClearDirty()
		// PostRecv in INIT writes a WQE into the RQ ring.
		if err := qp.PostRecv(rnic.RecvWR{WRID: 1, SGEs: []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}}}); err != nil {
			t.Fatal(err)
		}
		if len(ctx.Mem().DirtyPages()) == 0 {
			t.Fatal("posting did not dirty any ring page")
		}
	})
	s.Run()
}

func TestDMRemapPreservesAddress(t *testing.T) {
	s, ctx, _ := newCtx(t)
	s.Go("test", func() {
		dm, err := ctx.AllocDM(8192)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Mem().Write(dm.Addr, []byte("onchip"))
		if err := dm.Remap(0x300000); err != nil {
			t.Fatal(err)
		}
		if dm.Addr != 0x300000 {
			t.Fatalf("Addr = %#x", uint64(dm.Addr))
		}
		var buf [6]byte
		ctx.Mem().Read(0x300000, buf[:])
		if string(buf[:]) != "onchip" {
			t.Fatalf("content %q after remap", buf)
		}
	})
	s.Run()
}
