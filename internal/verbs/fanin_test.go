package verbs

import (
	"encoding/binary"
	"fmt"
	"testing"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// TestSharedCQInterleavedCompletions is the shared-QP fan-in audit for
// the library rings: many QPs (one per tenant) feed one send CQ on one
// side and one recv CQ on the other, with posts interleaved round-robin
// across the QPs. The test pins three properties a multi-tenant mux
// depends on:
//
//  1. every completion surfaces exactly once, carrying the QPN of the
//     QP that posted its WR (WRIDs encode the posting tenant);
//  2. the CQ shadow ring records the CQEs in arrival (poll) order, one
//     slot per completion — interleaving must not skip or double-stamp
//     slots;
//  3. each QP's library SQ ring holds that QP's WRIDs at seq%depth —
//     head accounting is per-QP even when completions interleave.
func TestSharedCQInterleavedCompletions(t *testing.T) {
	const (
		tenants = 6
		perQP   = 5
		depth   = 16
	)
	wrid := func(tenant, seq int) uint64 { return uint64(tenant)<<32 | uint64(seq) }

	s := sim.New(3)
	net := fabric.New(s, fabric.Config{})
	mk := func(name string) (*Context, *mem.AddressSpace) {
		mux := fabric.NewMux(net, name)
		dev := rnic.NewDevice(net, mux, name, rnic.Config{})
		as := mem.NewAddressSpace()
		as.Map(0x100000, 1<<20, "arena")
		return OpenDevice(dev, as), as
	}
	ctxA, asA := mk("hostA")
	ctxB, _ := mk("hostB")

	s.Go("test", func() {
		pdA, pdB := ctxA.AllocPD(), ctxB.AllocPD()
		sendCQ := ctxA.CreateCQ(64, nil)
		recvCQ := ctxB.CreateCQ(64, nil)
		mrA, err := ctxA.RegMR(pdA, 0x100000, 1<<20, rnic.AccessLocalWrite)
		if err != nil {
			t.Fatal(err)
		}
		mrB, err := ctxB.RegMR(pdB, 0x100000, 1<<20, rnic.AccessLocalWrite)
		if err != nil {
			t.Fatal(err)
		}
		caps := rnic.QPCaps{MaxSend: depth, MaxRecv: depth}
		var qpsA, qpsB []*QP
		for i := 0; i < tenants; i++ {
			qpsA = append(qpsA, ctxA.CreateQP(pdA, rnic.RC, sendCQ, sendCQ, nil, caps))
			qpsB = append(qpsB, ctxB.CreateQP(pdB, rnic.RC, recvCQ, recvCQ, nil, caps))
		}
		connect := func(qp *QP, peerNode string, peerQPN uint32) {
			for _, a := range []rnic.ModifyAttr{
				{State: rnic.StateInit},
				{State: rnic.StateRTR, RemoteNode: peerNode, RemoteQPN: peerQPN},
				{State: rnic.StateRTS},
			} {
				if err := qp.Modify(a); err != nil {
					t.Fatalf("modify: %v", err)
				}
			}
		}
		for i := 0; i < tenants; i++ {
			connect(qpsA[i], "hostB", qpsB[i].QPN())
			connect(qpsB[i], "hostA", qpsA[i].QPN())
		}

		// Pre-post every receive, WRIDs tagged with the owning tenant.
		for seq := 0; seq < perQP; seq++ {
			for ten, qp := range qpsB {
				off := mem.Addr(0x100000 + ten*0x10000 + seq*0x100)
				if err := qp.PostRecv(rnic.RecvWR{WRID: wrid(ten, seq),
					SGEs: []rnic.SGE{{Addr: off, Len: 0x100, LKey: mrB.LKey()}}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Interleave sends round-robin across the tenant QPs.
		for seq := 0; seq < perQP; seq++ {
			for ten, qp := range qpsA {
				off := mem.Addr(0x100000 + ten*0x10000 + seq*0x100)
				asA.Write(off, []byte(fmt.Sprintf("t%02d-%02d", ten, seq)))
				if err := qp.PostSend(rnic.SendWR{WRID: wrid(ten, seq), Opcode: rnic.OpSend,
					Signaled: true, SGEs: []rnic.SGE{{Addr: off, Len: 64, LKey: mrA.LKey()}}}); err != nil {
					t.Fatal(err)
				}
			}
		}

		want := tenants * perQP
		collect := func(cq *CQ) []rnic.CQE {
			var out []rnic.CQE
			for len(out) < want {
				cq.WaitNonEmpty()
				out = append(out, cq.Poll(want-len(out))...)
			}
			return out
		}
		sendCQEs := collect(sendCQ)
		recvCQEs := collect(recvCQ)

		// (1) Exactly-once, and the CQE's QPN is the posting tenant's QP.
		check := func(side string, cqes []rnic.CQE, qps []*QP) {
			seen := map[uint64]bool{}
			for _, e := range cqes {
				if e.Status != rnic.WCSuccess {
					t.Fatalf("%s CQE status %v (wrid %#x)", side, e.Status, e.WRID)
				}
				if seen[e.WRID] {
					t.Fatalf("%s WRID %#x completed twice", side, e.WRID)
				}
				seen[e.WRID] = true
				ten := int(e.WRID >> 32)
				if ten >= tenants || e.QPN != qps[ten].QPN() {
					t.Fatalf("%s CQE wrid %#x surfaced on QPN %#x, want tenant %d's %#x",
						side, e.WRID, e.QPN, ten, qps[ten].QPN())
				}
			}
		}
		check("send", sendCQEs, qpsA)
		check("recv", recvCQEs, qpsB)

		// (2) The shadow ring recorded the interleaved arrivals in order.
		ringSlot := func(as *mem.AddressSpace, ring mem.Addr, i, cap int) (uint64, uint32) {
			var slot [16]byte
			if err := as.Read(ring+mem.Addr((i%cap)*64), slot[:]); err != nil {
				t.Fatalf("ring read: %v", err)
			}
			return binary.LittleEndian.Uint64(slot[:8]), binary.LittleEndian.Uint32(slot[8:12])
		}
		for i, e := range sendCQEs {
			w, q := ringSlot(asA, sendCQ.ring, i, 64)
			if w != e.WRID || q != e.QPN {
				t.Fatalf("send shadow slot %d = (wrid %#x, qpn %#x), want (%#x, %#x)",
					i, w, q, e.WRID, e.QPN)
			}
		}

		// (3) Per-QP SQ rings hold their own tenant's WRIDs at seq%depth.
		for ten, qp := range qpsA {
			for seq := 0; seq < perQP; seq++ {
				var slot [8]byte
				if err := asA.Read(qp.sqRing+mem.Addr((seq%depth)*wqeSlotSize), slot[:]); err != nil {
					t.Fatalf("sq ring read: %v", err)
				}
				if got := binary.LittleEndian.Uint64(slot[:]); got != wrid(ten, seq) {
					t.Fatalf("tenant %d SQ slot %d = %#x, want %#x", ten, seq, got, wrid(ten, seq))
				}
			}
		}
	})
	s.Run()
}
