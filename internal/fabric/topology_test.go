package fabric

import (
	"testing"
	"time"

	"migrrdma/internal/sim"
)

// newTopo builds a 2-rack network with hosts a0,a1 (rack 0) and b0,b1
// (rack 1), recording deliveries per node.
func newTopo(t *testing.T, cfg Config) (*sim.Scheduler, *Network, map[string]*[]time.Duration) {
	t.Helper()
	s := sim.New(7)
	n := New(s, cfg)
	arrivals := make(map[string]*[]time.Duration)
	for _, spec := range []struct {
		name string
		rack int
	}{{"a0", 0}, {"a1", 0}, {"b0", 1}, {"b1", 1}} {
		at := &[]time.Duration{}
		arrivals[spec.name] = at
		n.Attach(spec.name, func(f Frame) { *at = append(*at, s.Now()) })
		n.SetRack(spec.name, spec.rack)
	}
	return s, n, arrivals
}

func TestCrossRackLatency(t *testing.T) {
	cfg := Config{
		Rate:      1e9, // 10 µs per 1250 B hop at host links
		PropDelay: 10 * time.Microsecond,
		Topology: Topology{
			Racks: 2, HostsPerRack: 2,
			UplinkRate: 5e8, // 20 µs per 1250 B spine hop (2:1 per host, 4:1 per rack)
			SpineDelay: 30 * time.Microsecond,
		},
	}
	s, n, arrivals := newTopo(t, cfg)
	s.Go("send", func() {
		n.Send(Frame{Src: "a0", Dst: "b0", Size: 1250})
	})
	s.Run()
	if got := len(*arrivals["b0"]); got != 1 {
		t.Fatalf("delivered %d frames, want 1", got)
	}
	// host uplink 10 + prop 10 + spine up 20 + spine 30 + spine down 20
	// + spine 30 + host downlink 10 + prop 10.
	want := 140 * time.Microsecond
	if at := (*arrivals["b0"])[0]; at != want {
		t.Fatalf("cross-rack arrival at %v, want %v", at, want)
	}
}

// TestSameRackMatchesFlat pins the degenerate-case contract: same-rack
// traffic on a topology network takes exactly the flat path, byte for
// byte in timing.
func TestSameRackMatchesFlat(t *testing.T) {
	flatCfg := Config{Rate: 1e9, PropDelay: 10 * time.Microsecond}
	topoCfg := flatCfg
	topoCfg.Topology = Topology{Racks: 2, HostsPerRack: 2, UplinkRate: 1e8}

	run := func(cfg Config) []time.Duration {
		s := sim.New(7)
		n := New(s, cfg)
		var at []time.Duration
		n.Attach("a0", func(f Frame) {})
		n.Attach("a1", func(f Frame) { at = append(at, s.Now()) })
		if !cfg.Topology.Flat() {
			n.SetRack("a0", 0)
			n.SetRack("a1", 0)
			n.Attach("b0", func(f Frame) {})
			n.SetRack("b0", 1)
		}
		s.Go("send", func() {
			for i := 0; i < 16; i++ {
				n.Send(Frame{Src: "a0", Dst: "a1", Size: 1250})
			}
		})
		s.Run()
		return at
	}
	flat, topo := run(flatCfg), run(topoCfg)
	if len(flat) != 16 || len(topo) != 16 {
		t.Fatalf("delivered %d/%d frames, want 16/16", len(flat), len(topo))
	}
	for i := range flat {
		if flat[i] != topo[i] {
			t.Fatalf("frame %d: flat arrival %v != same-rack arrival %v", i, flat[i], topo[i])
		}
	}
}

// TestUplinkOversubscriptionQueueing: two hosts of one rack blasting
// into the other rack share one uplink, so the aggregate cross-rack
// rate is pinned at UplinkRate, not 2× the host rate.
func TestUplinkOversubscriptionQueueing(t *testing.T) {
	cfg := Config{
		Rate:      1e9,
		PropDelay: time.Microsecond,
		Topology:  Topology{Racks: 2, HostsPerRack: 2, UplinkRate: 5e8},
	}
	s, n, arrivals := newTopo(t, cfg)
	const frames, size = 200, 1250
	s.Go("send0", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a0", Dst: "b0", Size: size})
		}
	})
	s.Go("send1", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a1", Dst: "b1", Size: size})
		}
	})
	s.Run()
	if got := len(*arrivals["b0"]) + len(*arrivals["b1"]); got != 2*frames {
		t.Fatalf("delivered %d frames, want %d", got, 2*frames)
	}
	last := (*arrivals["b0"])[frames-1]
	if l := (*arrivals["b1"])[frames-1]; l > last {
		last = l
	}
	gbps := float64(2*frames*size*8) / last.Seconds() / 1e9
	if gbps > 0.52 || gbps < 0.45 {
		t.Fatalf("aggregate cross-rack rate %.3f Gbps, want ≈ UplinkRate 0.5", gbps)
	}
	up, down := n.UplinkBytes(0)
	if up != 2*frames*size {
		t.Fatalf("rack 0 uplink booked %d bytes, want %d", up, 2*frames*size)
	}
	if down != 0 {
		t.Fatalf("rack 0 downlink booked %d bytes, want 0", down)
	}
	if _, down1 := n.UplinkBytes(1); down1 != 2*frames*size {
		t.Fatalf("rack 1 downlink booked %d bytes, want %d", down1, 2*frames*size)
	}
}

func TestUplinkLossAndBlackhole(t *testing.T) {
	cfg := Config{
		Rate:      1e9,
		PropDelay: time.Microsecond,
		Topology:  Topology{Racks: 2, HostsPerRack: 2},
	}
	s, n, arrivals := newTopo(t, cfg)
	n.SetUplinkBlackhole(1, "rdma", true)
	s.Go("send", func() {
		// RDMA-port frames die crossing into rack 1; other ports pass.
		for i := 0; i < 10; i++ {
			n.Send(Frame{Src: "a0", Dst: "b0", Size: 100, Port: "rdma"})
			n.Send(Frame{Src: "a0", Dst: "b0", Size: 100, Port: "oob"})
		}
		// Same-rack RDMA traffic never touches the spine.
		for i := 0; i < 5; i++ {
			n.Send(Frame{Src: "a0", Dst: "a1", Size: 100, Port: "rdma"})
		}
	})
	s.Run()
	if got := len(*arrivals["b0"]); got != 10 {
		t.Fatalf("b0 got %d frames, want the 10 oob ones", got)
	}
	if got := len(*arrivals["a1"]); got != 5 {
		t.Fatalf("a1 got %d frames, want 5", got)
	}
	if _, dropped := n.Stats("b0"); dropped != 10 {
		t.Fatalf("b0 dropped %d, want 10", dropped)
	}
	n.SetUplinkBlackhole(1, "rdma", false)

	n.SetUplinkLoss(0, "", 1.0) // both halves of rack 0's spine link
	s.Go("send2", func() {
		n.Send(Frame{Src: "b0", Dst: "a0", Size: 100, Port: "oob"})
	})
	s.Run()
	if got := len(*arrivals["a0"]); got != 0 {
		t.Fatalf("a0 got %d frames through a lossy downlink, want 0", got)
	}
}

// TestShardedTopologyMatchesFused: the same cross-rack traffic pattern
// on a fused single-scheduler topology network and on a rack-sharded
// interconnect must deliver identical frame counts and uplink byte
// totals (arrival-time equality is pinned separately by the cluster
// golden tests; here the booking split is the subject).
func TestShardedTopologyMatchesFused(t *testing.T) {
	topo := Topology{Racks: 2, HostsPerRack: 1, UplinkRate: 5e8}
	cfg := Config{Rate: 1e9, PropDelay: 10 * time.Microsecond, Topology: topo}

	type result struct {
		delivered int64
		up        int64
		arrivals  []time.Duration
	}
	runFused := func() result {
		s := sim.New(5)
		n := New(s, cfg)
		var at []time.Duration
		n.Attach("a", func(f Frame) {})
		n.Attach("b", func(f Frame) { at = append(at, s.Now()) })
		n.SetRack("a", 0)
		n.SetRack("b", 1)
		s.Go("send", func() {
			for i := 0; i < 50; i++ {
				n.Send(Frame{Src: "a", Dst: "b", Size: 1250})
				s.Sleep(5 * time.Microsecond)
			}
		})
		s.Run()
		d, _ := n.Stats("b")
		up, _ := n.UplinkBytes(0)
		return result{delivered: d, up: up, arrivals: at}
	}
	runSharded := func(workers int) result {
		g := sim.NewShardGroup(5, 2, cfg.PropDelay)
		ic := NewInterconnect(g, cfg)
		var at []time.Duration
		ic.Net(0).Attach("a", func(f Frame) {})
		ic.Net(0).SetRack("a", 0)
		ic.Net(1).Attach("b", func(f Frame) { at = append(at, g.Shard(1).Now()) })
		ic.Net(1).SetRack("b", 1)
		g.Shard(0).Go("send", func() {
			for i := 0; i < 50; i++ {
				ic.Net(0).Send(Frame{Src: "a", Dst: "b", Size: 1250})
				g.Shard(0).Sleep(5 * time.Microsecond)
			}
		})
		g.SetWorkers(workers)
		g.Run()
		d, _ := ic.Net(1).Stats("b")
		up, _ := ic.Net(0).UplinkBytes(0)
		return result{delivered: d, up: up, arrivals: at}
	}

	want := runFused()
	for _, workers := range []int{1, 2} {
		got := runSharded(workers)
		if got.delivered != want.delivered || got.up != want.up {
			t.Fatalf("workers=%d: delivered=%d up=%d, fused delivered=%d up=%d",
				workers, got.delivered, got.up, want.delivered, want.up)
		}
		for i := range want.arrivals {
			if got.arrivals[i] != want.arrivals[i] {
				t.Fatalf("workers=%d frame %d: sharded arrival %v != fused %v",
					workers, i, got.arrivals[i], want.arrivals[i])
			}
		}
	}
}
