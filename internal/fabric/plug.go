package fabric

import (
	"fmt"

	"migrrdma/internal/metrics"
)

// plug is the per-port cutover buffer of the plug-and-forward migration
// mode (the Katamaran sch_plug shape): while installed, frames matching
// the predicate are queued instead of delivered, so traffic addressed
// to a migrating QP waits at the destination NIC rather than bouncing
// off a not-yet-restored queue pair and triggering go-back-N. FlushPlug
// releases the queue in arrival order ahead of live traffic.
type plug struct {
	match func(Frame) bool
	limit int
	// frames and seqs hold the queued frames and their arrival sequence
	// numbers, in arrival order.
	frames []Frame
	seqs   []uint64
	// nextSeq numbers every frame the plug sees (buffered or rejected),
	// so taps can prove flush order equals arrival order.
	nextSeq uint64
	// tap observes plug events for the chaos ledger: "buffer", "flush",
	// "drop-overflow", "discard".
	tap func(event string, seq uint64)

	mBuffered   *metrics.Counter
	mFlushDepth *metrics.Gauge
	mOverflow   *metrics.Counter
}

// DefaultPlugLimit bounds a plug buffer when the caller passes no
// explicit limit. At 100 Gbps a full blackout window is well under a
// thousand MTU frames for the workloads we model.
const DefaultPlugLimit = 512

// InstallPlug installs a plug buffer on the node's port. Frames for
// which match returns true are queued (bounded by limit) instead of
// delivered until FlushPlug or DiscardPlug removes the plug.
//
// Overflow policy: reject-newest. When the buffer is full the arriving
// frame is dropped and accounted in plug_overflow_packets (and the
// port's dropped_frames), never an already-queued one — dropping the
// oldest would reorder the eventual flush relative to arrival order,
// which is the invariant the plug exists to provide. A rejected frame
// is recovered by the sender's normal RTO path, so exactly-once
// delivery is preserved.
//
// tap, when non-nil, observes every plug event with the frame's arrival
// sequence number; the chaos harness uses it to assert flush order ==
// arrival order and that nothing is delivered twice.
func (n *Network) InstallPlug(node string, limit int, match func(Frame) bool, tap func(event string, seq uint64)) error {
	pt := n.mustPort(node)
	if pt.plug != nil {
		return fmt.Errorf("fabric: plug already installed on %s", node)
	}
	if limit <= 0 {
		limit = DefaultPlugLimit
	}
	if match == nil {
		return fmt.Errorf("fabric: plug on %s needs a match predicate", node)
	}
	l := metrics.Labels{"node": node}
	pt.plug = &plug{
		match: match, limit: limit, tap: tap,
		mBuffered:   n.reg.Counter("fabric", "plug_buffered_packets", l),
		mFlushDepth: n.reg.Gauge("fabric", "plug_flush_depth", l),
		mOverflow:   n.reg.Counter("fabric", "plug_overflow_packets", l),
	}
	return nil
}

// EnqueuePlugged queues a frame into the node's plug buffer as if it
// had arrived on the wire, subject to the same bound and overflow
// policy. The source daemon's forwarding tunnel uses it to merge
// stragglers (frames that reached the old NIC after suspend) into the
// same ordered queue as frames that arrived at the destination
// directly. Returns false when no plug is installed; the caller then
// decides the frame's fate.
func (n *Network) EnqueuePlugged(node string, f Frame) bool {
	pt := n.mustPort(node)
	if pt.plug == nil {
		return false
	}
	pt.plug.enqueue(n, pt, f)
	return true
}

// PlugDepth reports the number of frames currently queued on the
// node's plug, or -1 when no plug is installed.
func (n *Network) PlugDepth(node string) int {
	pt := n.mustPort(node)
	if pt.plug == nil {
		return -1
	}
	return len(pt.plug.frames)
}

// FlushPlug removes the node's plug and delivers every queued frame, in
// arrival order, to the port handler. The flush runs inline on the
// scheduler loop: frames sent by handlers during the flush become
// scheduled deliveries that run strictly after it, so queued frames
// come out ahead of any live traffic. Returns the number of frames
// delivered; 0 with no plug installed (idempotent, compensation-safe).
func (n *Network) FlushPlug(node string) int {
	pt := n.mustPort(node)
	pl := pt.plug
	if pl == nil {
		return 0
	}
	// Detach before delivering: handlers run during the flush must see
	// an unplugged port, or re-sent frames could be re-queued into a
	// buffer that is being torn down.
	pt.plug = nil
	depth := len(pl.frames)
	pl.mFlushDepth.Set(int64(depth))
	for i, f := range pl.frames {
		if pl.tap != nil {
			pl.tap("flush", pl.seqs[i])
		}
		pt.deliver(f)
	}
	return depth
}

// DiscardPlug removes the node's plug and drops every queued frame,
// retiring their buffers. It is the abort-path teardown: an unwound
// migration must not leak half a blackout window of traffic into QPs
// that were never activated. Returns the number of frames discarded; 0
// with no plug installed (idempotent, compensation-safe).
func (n *Network) DiscardPlug(node string) int {
	pt := n.mustPort(node)
	pl := pt.plug
	if pl == nil {
		return 0
	}
	pt.plug = nil
	depth := len(pl.frames)
	for i, f := range pl.frames {
		if pl.tap != nil {
			pl.tap("discard", pl.seqs[i])
		}
		if f.Data != nil {
			n.PutBuf(f.Data)
		}
	}
	return depth
}

// enqueue applies the bound and queues the frame.
func (pl *plug) enqueue(n *Network, pt *port, f Frame) {
	seq := pl.nextSeq
	pl.nextSeq++
	if len(pl.frames) >= pl.limit {
		// Reject-newest: see InstallPlug.
		pl.mOverflow.Inc()
		pt.drop()
		if pl.tap != nil {
			pl.tap("drop-overflow", seq)
		}
		if f.Data != nil {
			n.PutBuf(f.Data)
		}
		return
	}
	pl.frames = append(pl.frames, f)
	pl.seqs = append(pl.seqs, seq)
	pl.mBuffered.Inc()
	if pl.tap != nil {
		pl.tap("buffer", seq)
	}
}
