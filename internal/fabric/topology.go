package fabric

import (
	"fmt"
	"strconv"
	"time"

	"migrrdma/internal/metrics"
)

// This file is the two-tier topology: per-rack ToR switches joined by a
// spine over oversubscribed uplinks. The flat single-switch fabric of
// fabric.go is the degenerate 1-rack case — with Topology.Racks <= 1
// nothing here runs, no rack metrics are registered, and the Send path
// is byte-identical to the pre-topology fabric (the 99 golden chaos
// hashes pin that).
//
// A cross-rack frame traverses five links instead of three:
//
//	host ──serialize @ link rate──▶ ToR(src)          (+ PropDelay)
//	ToR(src) ──serialize @ UplinkRate──▶ spine        (+ SpineDelay)
//	spine ──serialize @ UplinkRate──▶ ToR(dst)        (+ SpineDelay)
//	ToR(dst) ──serialize @ link rate──▶ host          (+ PropDelay)
//
// The two middle hops share per-rack state: every host of a rack books
// the same uplink (ToR→spine) and downlink (spine→ToR), so with H
// hosts per rack at link rate R and an uplink at U bps the
// oversubscription ratio H·R/U emerges as queueing on rackLink busy
// times — the brownout a rack-wide drain inflicts on itself.
//
// Same-rack frames never touch the spine and take exactly the flat
// path, which is also what keeps the sharded fabric sound: under the
// shard-by-rack alignment (cluster.NewSharded with a topology) the
// uplink half of rack r is only ever booked by shard r (its sources)
// and the downlink half only by shard r's barrier drain (its
// destinations), so every rackLink stays single-owner.

// Topology declares the two-tier fabric. The zero value is the flat
// single-switch network.
type Topology struct {
	// Racks is the number of ToR switches; 0 or 1 means flat.
	Racks int
	// HostsPerRack is the block size consumers (cluster.New) use to
	// assign hosts to racks: host i lands in rack i/HostsPerRack. The
	// fabric itself takes explicit per-port racks via SetRack.
	HostsPerRack int
	// UplinkRate is the ToR↔spine rate per direction in bits per
	// second; 0 means the host link rate (no oversubscription).
	UplinkRate int64
	// SpineDelay is the one-way ToR↔spine propagation delay, paid twice
	// per crossing; 0 means the per-hop PropDelay.
	SpineDelay time.Duration
}

// Flat reports whether the topology degenerates to one switch.
func (t Topology) Flat() bool { return t.Racks <= 1 }

// Oversubscription returns the rack oversubscription ratio
// HostsPerRack·linkRate/UplinkRate against the given host link rate.
func (t Topology) Oversubscription(linkRate int64) float64 {
	up := t.UplinkRate
	if up == 0 {
		up = linkRate
	}
	hosts := t.HostsPerRack
	if hosts == 0 {
		hosts = 1
	}
	return float64(hosts) * float64(linkRate) / float64(up)
}

// rackLink is the shared ToR↔spine link pair of one rack. upBusy is
// the ToR→spine direction (booked by sources in the rack), downBusy
// the spine→ToR direction (booked for destinations in the rack).
type rackLink struct {
	upBusy, downBusy time.Duration

	// lossProb drops frames crossing this rack's spine link (either
	// direction, drawn per half) with the given probability; lossPort
	// restricts the draws to one mux port ("" = every port).
	lossProb float64
	lossPort string
	// blackhole drops every matching frame crossing the spine link —
	// the rack-uplink partition. bhPort restricts it to one port, so a
	// chaos schedule can partition the RDMA path while the reliable
	// control/image channels stay up (the only partition a migration
	// can survive; see internal/chaos).
	blackhole bool
	bhPort    string

	mUpBytes, mDownBytes *metrics.Counter
	mDropped             *metrics.Counter
	mUpBacklog           *metrics.Gauge
	mDownBacklog         *metrics.Gauge
}

// initTopology builds the rack links and registers their metrics.
// Called from New only when the topology is non-flat, so flat networks
// register nothing and their metric snapshots stay byte-identical.
func (n *Network) initTopology() {
	n.racks = make([]*rackLink, n.cfg.Topology.Racks)
	for r := range n.racks {
		l := metrics.Labels{"rack": strconv.Itoa(r)}
		n.racks[r] = &rackLink{
			mUpBytes:     n.reg.Counter("fabric", "uplink_tx_bytes", l),
			mDownBytes:   n.reg.Counter("fabric", "uplink_rx_bytes", l),
			mDropped:     n.reg.Counter("fabric", "uplink_dropped_frames", l),
			mUpBacklog:   n.reg.Gauge("fabric", "uplink_backlog_ns", l),
			mDownBacklog: n.reg.Gauge("fabric", "uplink_downlink_backlog_ns", l),
		}
	}
}

// SetRack assigns an attached node to a rack. Nodes default to rack 0;
// topology consumers assign racks at attach time, before traffic. On a
// sharded network the rack must equal the owning shard — the
// shard-by-rack alignment that keeps rackLink state single-owner.
func (n *Network) SetRack(name string, rack int) {
	if n.racks == nil {
		if rack == 0 {
			return
		}
		panic("fabric: SetRack on a flat network")
	}
	if rack < 0 || rack >= len(n.racks) {
		panic(fmt.Sprintf("fabric: rack %d out of range [0,%d)", rack, len(n.racks)))
	}
	if n.ic != nil && rack != n.shard {
		panic(fmt.Sprintf("fabric: node %s rack %d on shard %d breaks shard-by-rack alignment", name, rack, n.shard))
	}
	n.mustPort(name).rack = rack
}

// Rack reports the rack an attached node is assigned to.
func (n *Network) Rack(name string) int { return n.mustPort(name).rack }

// SetUplinkLoss drops frames crossing the rack's spine link with
// probability p, restricted to the given mux port ("" = every port).
// Draws use the booking scheduler's deterministic RNG: the ToR→spine
// half draws on the source side, the spine→ToR half on the destination
// side, matching the existing source-loss/destination-fault split.
func (n *Network) SetUplinkLoss(rack int, port string, p float64) {
	l := n.mustRack(rack)
	l.lossProb, l.lossPort = p, port
}

// SetUplinkBlackhole drops every matching frame crossing the rack's
// spine link — the rack-uplink partition of a drain chaos schedule.
// port restricts it to one mux port ("" = every port).
func (n *Network) SetUplinkBlackhole(rack int, port string, on bool) {
	l := n.mustRack(rack)
	l.blackhole, l.bhPort = on, port
}

// UplinkBytes reports cumulative bytes booked onto the rack's
// ToR→spine and spine→ToR links.
func (n *Network) UplinkBytes(rack int) (up, down int64) {
	l := n.mustRack(rack)
	return l.mUpBytes.Value(), l.mDownBytes.Value()
}

func (n *Network) mustRack(rack int) *rackLink {
	if n.racks == nil {
		panic("fabric: rack operation on a flat network")
	}
	if rack < 0 || rack >= len(n.racks) {
		panic(fmt.Sprintf("fabric: rack %d out of range [0,%d)", rack, len(n.racks)))
	}
	return n.racks[rack]
}

// uplinkSerialization is the time a frame occupies one spine-link
// direction.
func (n *Network) uplinkSerialization(size int) time.Duration {
	rate := n.cfg.Topology.UplinkRate
	if rate == 0 {
		rate = n.cfg.Rate
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / rate)
}

// spineDelay is the one-way ToR↔spine propagation delay.
func (n *Network) spineDelay() time.Duration {
	if d := n.cfg.Topology.SpineDelay; d != 0 {
		return d
	}
	return n.cfg.PropDelay
}

// lossDraw reports whether the rack link's fault state drops a frame on
// one spine-link half, drawing from the local scheduler's RNG. The
// blackhole check consumes no RNG draw.
func (l *rackLink) lossDraw(n *Network, f Frame) bool {
	if l.blackhole && (l.bhPort == "" || l.bhPort == f.Port) {
		return true
	}
	return l.lossProb > 0 && (l.lossPort == "" || l.lossPort == f.Port) &&
		n.sched.Rand().Float64() < l.lossProb
}

// bookSpineUp books the ToR→spine hop of the frame's source rack:
// serialization on the shared uplink starting when the frame reached
// the ToR, then the spine propagation delay. It returns the time the
// frame arrives at the spine and whether it survived the uplink fault
// state. Runs on the source side (source shard when sharded).
func (n *Network) bookSpineUp(rack int, f Frame, atToR time.Duration) (time.Duration, bool) {
	l := n.racks[rack]
	start := atToR
	if l.upBusy > start {
		start = l.upBusy
	}
	l.upBusy = start + n.uplinkSerialization(f.Size)
	l.mUpBytes.Add(int64(f.Size))
	l.mUpBacklog.Set(int64(l.upBusy - n.sched.Now()))
	if l.lossDraw(n, f) {
		l.mDropped.Inc()
		return l.upBusy + n.spineDelay(), false
	}
	return l.upBusy + n.spineDelay(), true
}

// bookSpineDown books the spine→ToR hop of the frame's destination
// rack: store-and-forward serialization on the shared downlink, then
// the spine propagation delay down to the ToR. It returns the time the
// frame arrives at the destination ToR and whether it survived. Runs
// on the destination side (destination shard when sharded).
func (n *Network) bookSpineDown(rack int, f Frame, atSpine time.Duration) (time.Duration, bool) {
	l := n.racks[rack]
	start := atSpine
	if l.downBusy > start {
		start = l.downBusy
	}
	l.downBusy = start + n.uplinkSerialization(f.Size)
	l.mDownBytes.Add(int64(f.Size))
	l.mDownBacklog.Set(int64(l.downBusy - n.sched.Now()))
	if l.lossDraw(n, f) {
		l.mDropped.Inc()
		return l.downBusy + n.spineDelay(), false
	}
	return l.downBusy + n.spineDelay(), true
}
