package fabric

import (
	"testing"
	"time"

	"migrrdma/internal/sim"
)

// newPair returns a network with nodes a and b, recording frames at b.
func newPair(t *testing.T, cfg Config) (*sim.Scheduler, *Network, *[]Frame, *[]time.Duration) {
	t.Helper()
	s := sim.New(7)
	n := New(s, cfg)
	var got []Frame
	var at []time.Duration
	n.Attach("a", func(f Frame) {})
	n.Attach("b", func(f Frame) {
		got = append(got, f)
		at = append(at, s.Now())
	})
	return s, n, &got, &at
}

func TestDeliveryLatency(t *testing.T) {
	cfg := Config{Rate: 1e9, PropDelay: 10 * time.Microsecond} // 1 Gbps
	s, n, got, at := newPair(t, cfg)
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 1250}) // 10 µs serialization at 1 Gbps
	})
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	// 2 serializations (uplink + downlink) + 2 propagation delays.
	want := 2*10*time.Microsecond + 2*10*time.Microsecond
	if (*at)[0] != want {
		t.Fatalf("arrival at %v, want %v", (*at)[0], want)
	}
}

func TestThroughputMatchesLinkRate(t *testing.T) {
	cfg := Config{Rate: 100e9, PropDelay: time.Microsecond}
	s, n, got, at := newPair(t, cfg)
	const frames, size = 1000, 4096
	s.Go("send", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: size})
		}
	})
	s.Run()
	if len(*got) != frames {
		t.Fatalf("delivered %d, want %d", len(*got), frames)
	}
	last := (*at)[frames-1]
	// Total bytes / elapsed should approximate the link rate.
	gbps := float64(frames*size*8) / last.Seconds() / 1e9
	if gbps < 95 || gbps > 101 {
		t.Fatalf("achieved %.1f Gbps, want ≈100", gbps)
	}
}

func TestFIFOPerFlow(t *testing.T) {
	s, n, got, _ := newPair(t, Config{})
	s.Go("send", func() {
		for i := 0; i < 50; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 100 + i, Data: []byte{byte(i)}})
		}
	})
	s.Run()
	for i, f := range *got {
		if f.Data[0] != byte(i) {
			t.Fatalf("frame %d out of order (got seq %d)", i, f.Data[0])
		}
	}
}

func TestLossInjection(t *testing.T) {
	s := sim.New(3)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	recv := 0
	n.Attach("b", func(Frame) { recv++ })
	n.SetLoss("a", 0.5)
	s.Go("send", func() {
		for i := 0; i < 1000; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 64})
		}
	})
	s.Run()
	if recv < 350 || recv > 650 {
		t.Fatalf("received %d of 1000 at 50%% loss", recv)
	}
	_, dropped := n.Stats("b")
	if int(dropped)+recv != 1000 {
		t.Fatalf("delivered+dropped = %d, want 1000", int(dropped)+recv)
	}
}

func TestPartition(t *testing.T) {
	s := sim.New(3)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	recv := 0
	n.Attach("b", func(Frame) { recv++ })
	n.SetPartitioned("b", true)
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 64})
		n.SetPartitioned("b", false)
		n.Send(Frame{Src: "a", Dst: "b", Size: 64})
	})
	s.Run()
	if recv != 1 {
		t.Fatalf("received %d, want 1 (one dropped during partition)", recv)
	}
}

func TestByteCounters(t *testing.T) {
	s, n, _, _ := newPair(t, Config{})
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 1000})
		n.Send(Frame{Src: "a", Dst: "b", Size: 500})
	})
	s.Run()
	rx, _ := n.Bytes("b")
	if rx != 1500 {
		t.Fatalf("rx=%d, want 1500", rx)
	}
	_, tx := n.Bytes("a")
	if tx != 1500 {
		t.Fatalf("tx=%d, want 1500", tx)
	}
}

func TestCrossTrafficSharesDownlink(t *testing.T) {
	// Two senders into one receiver: the receiver downlink is the
	// bottleneck, so total goodput should still be ≈ link rate.
	s := sim.New(5)
	cfg := Config{Rate: 100e9, PropDelay: time.Microsecond}
	n := New(s, cfg)
	n.Attach("a", func(Frame) {})
	n.Attach("c", func(Frame) {})
	var last time.Duration
	recv := 0
	n.Attach("b", func(Frame) { recv++; last = s.Now() })
	const frames, size = 500, 4096
	send := func(src string) func() {
		return func() {
			for i := 0; i < frames; i++ {
				n.Send(Frame{Src: src, Dst: "b", Size: size})
			}
		}
	}
	s.Go("sa", send("a"))
	s.Go("sc", send("c"))
	s.Run()
	if recv != 2*frames {
		t.Fatalf("received %d, want %d", recv, 2*frames)
	}
	gbps := float64(2*frames*size*8) / last.Seconds() / 1e9
	if gbps < 90 || gbps > 101 {
		t.Fatalf("aggregate %.1f Gbps through shared downlink, want ≈100", gbps)
	}
}

func TestDuplicateInjection(t *testing.T) {
	s, n, got, at := newPair(t, Config{})
	n.SetDuplicate("b", 1.0)
	const frames = 20
	s.Go("send", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 256, Data: []byte{byte(i)}})
		}
	})
	s.Run()
	if len(*got) != 2*frames {
		t.Fatalf("delivered %d frames, want %d (every frame twice)", len(*got), 2*frames)
	}
	dup, _ := n.FaultStats("b")
	if dup != frames {
		t.Fatalf("duplicated = %d, want %d", dup, frames)
	}
	// The copy re-serializes on the downlink, so arrivals are strictly
	// increasing: no two deliveries share an instant.
	for i := 1; i < len(*at); i++ {
		if (*at)[i] <= (*at)[i-1] {
			t.Fatalf("delivery %d at %v not after %v", i, (*at)[i], (*at)[i-1])
		}
	}
}

func TestDuplicateCopiesFaceLossIndependently(t *testing.T) {
	// With dup=1.0 and loss=0.5 every frame is duplicated, and each of
	// the two copies must face the loss draw independently. The old
	// ordering applied loss before the duplication decision, so a lost
	// frame could never duplicate and a surviving frame's copy was
	// exempt from loss — deliveries were then always 0 or 2 per frame,
	// never 1.
	s, n, got, _ := newPair(t, Config{})
	n.SetDuplicate("b", 1.0)
	n.SetLoss("b", 0.5)
	const frames = 200
	s.Go("send", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 256, Data: []byte{byte(i)}})
		}
	})
	s.Run()
	dup, _ := n.FaultStats("b")
	if dup != frames {
		t.Fatalf("duplicated = %d, want %d (dup decided before loss)", dup, frames)
	}
	// Count deliveries per frame: with independent per-copy loss about
	// half the frames deliver exactly one copy; seeing any odd count
	// proves independence.
	perFrame := make(map[byte]int)
	for _, f := range *got {
		perFrame[f.Data[0]]++
	}
	singles := 0
	for _, c := range perFrame {
		if c == 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Fatalf("no frame delivered exactly once in %d: copies are not independently lossy", frames)
	}
	_, dropped := n.Stats("b")
	delivered := int64(len(*got))
	if delivered+dropped != 2*frames {
		t.Fatalf("delivered %d + dropped %d != %d copies", delivered, dropped, 2*frames)
	}
}

func TestPortScopedDuplicate(t *testing.T) {
	s, n, got, _ := newPair(t, Config{})
	n.SetPortDuplicate("b", "data", 1.0)
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Port: "data", Size: 64})
		n.Send(Frame{Src: "a", Dst: "b", Port: "ctl", Size: 64})
	})
	s.Run()
	if len(*got) != 3 {
		t.Fatalf("delivered %d frames, want 3 (data twice, ctl once)", len(*got))
	}
}

func TestReorderInjection(t *testing.T) {
	s, n, got, _ := newPair(t, Config{})
	s.Go("send", func() {
		// First frame is held back long enough for the second to
		// overtake it; the knob is cleared in between so the draw is
		// deterministic.
		n.SetReorder("b", 1.0, 100*time.Microsecond)
		n.Send(Frame{Src: "a", Dst: "b", Size: 64, Data: []byte{1}})
		n.SetReorder("b", 0, 0)
		n.Send(Frame{Src: "a", Dst: "b", Size: 64, Data: []byte{2}})
	})
	s.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(*got))
	}
	if (*got)[0].Data[0] != 2 || (*got)[1].Data[0] != 1 {
		t.Fatalf("no overtake: order %d,%d", (*got)[0].Data[0], (*got)[1].Data[0])
	}
	if _, reord := n.FaultStats("b"); reord != 1 {
		t.Fatalf("reordered = %d, want 1", reord)
	}
}

func TestRateOverride(t *testing.T) {
	cfg := Config{Rate: 100e9, PropDelay: time.Microsecond}
	s, n, got, at := newPair(t, cfg)
	n.SetRate("b", 1e9) // downlink of b degrades 100×
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 1250})
	})
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	// Uplink still serializes at 100 Gbps (100 ns), the downlink at
	// 1 Gbps (10 µs), plus two propagation hops.
	want := 100*time.Nanosecond + time.Microsecond + 10*time.Microsecond + time.Microsecond
	if (*at)[0] != want {
		t.Fatalf("arrival at %v, want %v", (*at)[0], want)
	}
	// Restoring the default rate restores the timing for later frames.
	n.SetRate("b", 0)
	if n.serializationAt(n.mustPort("b"), 1250) != n.serialization(1250) {
		t.Fatal("rate override not cleared")
	}
}

func TestFaultKnobsIdleDrawNothing(t *testing.T) {
	// Disabled fault knobs must not consume RNG draws: two identical
	// networks, one with the knobs explicitly zeroed, must deliver at
	// identical times when loss draws are active.
	run := func(touch bool) []time.Duration {
		s := sim.New(11)
		n := New(s, Config{})
		n.Attach("a", func(Frame) {})
		var at []time.Duration
		n.Attach("b", func(Frame) { at = append(at, s.Now()) })
		n.SetLoss("b", 0.5)
		if touch {
			n.SetDuplicate("b", 0)
			n.SetReorder("b", 0, time.Millisecond)
		}
		s.Go("send", func() {
			for i := 0; i < 200; i++ {
				n.Send(Frame{Src: "a", Dst: "b", Size: 64})
			}
		})
		s.Run()
		return at
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("draw sequence perturbed: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
