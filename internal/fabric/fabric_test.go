package fabric

import (
	"testing"
	"time"

	"migrrdma/internal/sim"
)

// newPair returns a network with nodes a and b, recording frames at b.
func newPair(t *testing.T, cfg Config) (*sim.Scheduler, *Network, *[]Frame, *[]time.Duration) {
	t.Helper()
	s := sim.New(7)
	n := New(s, cfg)
	var got []Frame
	var at []time.Duration
	n.Attach("a", func(f Frame) {})
	n.Attach("b", func(f Frame) {
		got = append(got, f)
		at = append(at, s.Now())
	})
	return s, n, &got, &at
}

func TestDeliveryLatency(t *testing.T) {
	cfg := Config{Rate: 1e9, PropDelay: 10 * time.Microsecond} // 1 Gbps
	s, n, got, at := newPair(t, cfg)
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 1250}) // 10 µs serialization at 1 Gbps
	})
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	// 2 serializations (uplink + downlink) + 2 propagation delays.
	want := 2*10*time.Microsecond + 2*10*time.Microsecond
	if (*at)[0] != want {
		t.Fatalf("arrival at %v, want %v", (*at)[0], want)
	}
}

func TestThroughputMatchesLinkRate(t *testing.T) {
	cfg := Config{Rate: 100e9, PropDelay: time.Microsecond}
	s, n, got, at := newPair(t, cfg)
	const frames, size = 1000, 4096
	s.Go("send", func() {
		for i := 0; i < frames; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: size})
		}
	})
	s.Run()
	if len(*got) != frames {
		t.Fatalf("delivered %d, want %d", len(*got), frames)
	}
	last := (*at)[frames-1]
	// Total bytes / elapsed should approximate the link rate.
	gbps := float64(frames*size*8) / last.Seconds() / 1e9
	if gbps < 95 || gbps > 101 {
		t.Fatalf("achieved %.1f Gbps, want ≈100", gbps)
	}
}

func TestFIFOPerFlow(t *testing.T) {
	s, n, got, _ := newPair(t, Config{})
	s.Go("send", func() {
		for i := 0; i < 50; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 100 + i, Data: []byte{byte(i)}})
		}
	})
	s.Run()
	for i, f := range *got {
		if f.Data[0] != byte(i) {
			t.Fatalf("frame %d out of order (got seq %d)", i, f.Data[0])
		}
	}
}

func TestLossInjection(t *testing.T) {
	s := sim.New(3)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	recv := 0
	n.Attach("b", func(Frame) { recv++ })
	n.SetLoss("a", 0.5)
	s.Go("send", func() {
		for i := 0; i < 1000; i++ {
			n.Send(Frame{Src: "a", Dst: "b", Size: 64})
		}
	})
	s.Run()
	if recv < 350 || recv > 650 {
		t.Fatalf("received %d of 1000 at 50%% loss", recv)
	}
	_, dropped := n.Stats("b")
	if int(dropped)+recv != 1000 {
		t.Fatalf("delivered+dropped = %d, want 1000", int(dropped)+recv)
	}
}

func TestPartition(t *testing.T) {
	s := sim.New(3)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	recv := 0
	n.Attach("b", func(Frame) { recv++ })
	n.SetPartitioned("b", true)
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 64})
		n.SetPartitioned("b", false)
		n.Send(Frame{Src: "a", Dst: "b", Size: 64})
	})
	s.Run()
	if recv != 1 {
		t.Fatalf("received %d, want 1 (one dropped during partition)", recv)
	}
}

func TestByteCounters(t *testing.T) {
	s, n, _, _ := newPair(t, Config{})
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Size: 1000})
		n.Send(Frame{Src: "a", Dst: "b", Size: 500})
	})
	s.Run()
	rx, _ := n.Bytes("b")
	if rx != 1500 {
		t.Fatalf("rx=%d, want 1500", rx)
	}
	_, tx := n.Bytes("a")
	if tx != 1500 {
		t.Fatalf("tx=%d, want 1500", tx)
	}
}

func TestCrossTrafficSharesDownlink(t *testing.T) {
	// Two senders into one receiver: the receiver downlink is the
	// bottleneck, so total goodput should still be ≈ link rate.
	s := sim.New(5)
	cfg := Config{Rate: 100e9, PropDelay: time.Microsecond}
	n := New(s, cfg)
	n.Attach("a", func(Frame) {})
	n.Attach("c", func(Frame) {})
	var last time.Duration
	recv := 0
	n.Attach("b", func(Frame) { recv++; last = s.Now() })
	const frames, size = 500, 4096
	send := func(src string) func() {
		return func() {
			for i := 0; i < frames; i++ {
				n.Send(Frame{Src: src, Dst: "b", Size: size})
			}
		}
	}
	s.Go("sa", send("a"))
	s.Go("sc", send("c"))
	s.Run()
	if recv != 2*frames {
		t.Fatalf("received %d, want %d", recv, 2*frames)
	}
	gbps := float64(2*frames*size*8) / last.Seconds() / 1e9
	if gbps < 90 || gbps > 101 {
		t.Fatalf("aggregate %.1f Gbps through shared downlink, want ≈100", gbps)
	}
}
