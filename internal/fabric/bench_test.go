package fabric

import (
	"testing"
	"time"

	"migrrdma/internal/sim"
)

// BenchmarkFabricDelivery measures the per-frame cost of the fabric
// data path: Send through the switch model plus the scheduled delivery
// callback. allocs/op here is the figure of merit — every allocation on
// this path is paid by every simulated packet in every experiment.
func BenchmarkFabricDelivery(b *testing.B) {
	s := sim.New(1)
	net := New(s, Config{})
	net.Attach("a", func(Frame) {})
	received := 0
	net.Attach("b", func(Frame) { received++ })

	data := make([]byte, 1024)
	f := Frame{Src: "a", Dst: "b", Port: "bench", Size: len(data) + 58, Data: data}
	const burst = 64
	ser := net.SerializationTime(f.Size)

	s.Go("sender", func() {
		sent := 0
		for sent < b.N {
			n := burst
			if left := b.N - sent; n > left {
				n = left
			}
			for i := 0; i < n; i++ {
				net.Send(f)
			}
			sent += n
			// Sleep past the burst's serialization + propagation so the
			// downlink drains before the next burst.
			s.Sleep(time.Duration(n)*ser + 10*time.Microsecond)
		}
	})
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	if received != b.N {
		b.Fatalf("delivered %d of %d", received, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
