package fabric

// Mux demultiplexes the frames arriving at one node to per-port
// handlers. A host attaches a single Mux and then its RNIC, its
// migration tool and its out-of-band control endpoints each register a
// port, the way distinct sockets share one physical NIC.
type Mux struct {
	node     string
	handlers map[string]Handler
}

// NewMux attaches a mux as the node's frame handler and returns it.
func NewMux(n *Network, node string) *Mux {
	m := &Mux{node: node, handlers: make(map[string]Handler)}
	n.Attach(node, m.dispatch)
	return m
}

// Register installs the handler for a port, replacing any previous one.
// Handlers run inline on the scheduler loop and must not block.
func (m *Mux) Register(port string, h Handler) {
	m.handlers[port] = h
}

// Unregister removes a port handler; frames for it are then dropped.
func (m *Mux) Unregister(port string) {
	delete(m.handlers, port)
}

// Inject hands a frame to the registered port handler as if it had just
// been delivered by the fabric, bypassing the wire. The plug-and-forward
// teardown uses it for tunnel stragglers that arrive after the plug is
// gone: they are re-offered locally and the transport's PSN window
// decides their fate.
func (m *Mux) Inject(f Frame) {
	m.dispatch(f)
}

func (m *Mux) dispatch(f Frame) {
	if h, ok := m.handlers[f.Port]; ok {
		h(f)
	}
	// Frames for unregistered ports are silently dropped, like packets
	// to a closed socket.
}
