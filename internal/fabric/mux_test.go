package fabric

import (
	"testing"

	"migrrdma/internal/sim"
)

func TestMuxRoutesByPort(t *testing.T) {
	s := sim.New(1)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	m := NewMux(n, "b")
	var gotX, gotY int
	m.Register("x", func(Frame) { gotX++ })
	m.Register("y", func(Frame) { gotY++ })
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Port: "x", Size: 64})
		n.Send(Frame{Src: "a", Dst: "b", Port: "y", Size: 64})
		n.Send(Frame{Src: "a", Dst: "b", Port: "zzz", Size: 64}) // dropped
	})
	s.Run()
	if gotX != 1 || gotY != 1 {
		t.Fatalf("x=%d y=%d, want 1/1", gotX, gotY)
	}
}

func TestMuxUnregister(t *testing.T) {
	s := sim.New(1)
	n := New(s, Config{})
	n.Attach("a", func(Frame) {})
	m := NewMux(n, "b")
	got := 0
	m.Register("x", func(Frame) { got++ })
	s.Go("send", func() {
		n.Send(Frame{Src: "a", Dst: "b", Port: "x", Size: 64})
		s.Sleep(1e6)
		m.Unregister("x")
		n.Send(Frame{Src: "a", Dst: "b", Port: "x", Size: 64})
	})
	s.Run()
	if got != 1 {
		t.Fatalf("got %d deliveries, want 1", got)
	}
}
