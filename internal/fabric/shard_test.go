package fabric

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// shardedTraffic drives a two-shard interconnect: hosts a0/a1 on shard
// 0, hosts b0/b1 on shard 1, each sending a jittered mix of local and
// cross-shard frames while the destination ports carry loss, duplicate
// and reorder faults. Every delivery is logged with its (time, src,
// dst, payload) and the per-shard logs fold into a digest; drop/fault
// counters are folded in too, so source-side loss accounting is also
// pinned.
func shardedTraffic(t *testing.T, workers int, seed int64) uint64 {
	t.Helper()
	g := sim.NewShardGroup(seed, 2, time.Microsecond)
	g.SetWorkers(workers)
	ic := NewInterconnect(g, Config{})

	hosts := [][]string{{"a0", "a1"}, {"b0", "b1"}}
	logs := make([][]string, 2)
	for shard, names := range hosts {
		shard := shard
		n := ic.Net(shard)
		for _, name := range names {
			name := name
			n.Attach(name, func(f Frame) {
				logs[shard] = append(logs[shard],
					fmt.Sprintf("%d %s->%s %s", n.Scheduler().Now(), f.Src, f.Dst, f.Data))
			})
		}
	}
	// Faults on both sides of the cross-shard link: source-side loss is
	// drawn on the sending shard, duplicate/reorder/destination loss on
	// the receiving shard.
	ic.Net(0).SetLoss("a0", 0.2)
	ic.Net(1).SetDuplicate("b0", 0.3)
	ic.Net(1).SetReorder("b1", 0.3, 4*time.Microsecond)
	ic.Net(1).SetLoss("b1", 0.1)

	targets := [][]string{{"a1", "b0", "b1"}, {"b1", "a0", "a1"}}
	for shard, names := range hosts {
		s := g.Shard(shard)
		n := ic.Net(shard)
		src := names[0]
		dsts := targets[shard]
		s.Go("traffic-"+src, func() {
			for k := 0; k < 150; k++ {
				s.Sleep(time.Duration(1+s.Rand().Intn(4)) * time.Microsecond)
				dst := dsts[k%len(dsts)]
				n.Send(Frame{Src: src, Dst: dst, Size: 256,
					Data: []byte(fmt.Sprintf("%s#%d", src, k))})
			}
		})
	}
	g.Run()

	h := fnv.New64a()
	for shard, names := range hosts {
		for _, l := range logs[shard] {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
		for _, name := range names {
			del, drop := ic.Net(shard).Stats(name)
			dup, reord := ic.Net(shard).FaultStats(name)
			fmt.Fprintf(h, "stats %s %d %d %d %d\n", name, del, drop, dup, reord)
		}
	}
	return h.Sum64()
}

// TestInterconnectDeterministicAcrossWorkers pins the sharded fabric's
// core contract: cross-shard delivery — including faults booked on both
// the source and destination shards — is bit-identical at every worker
// count.
func TestInterconnectDeterministicAcrossWorkers(t *testing.T) {
	base := shardedTraffic(t, 1, 7)
	for _, workers := range []int{2} {
		if d := shardedTraffic(t, workers, 7); d != base {
			t.Errorf("workers=%d digest %x != sequential %x", workers, d, base)
		}
	}
	if shardedTraffic(t, 1, 8) == base {
		t.Error("digest insensitive to seed; workload too weak to pin determinism")
	}
}

// TestInterconnectSourceDropAccounting: a frame lost on the source
// shard's uplink must still appear in the destination port's dropped
// counter (Stats semantics are destination-owned).
func TestInterconnectSourceDropAccounting(t *testing.T) {
	g := sim.NewShardGroup(3, 2, time.Microsecond)
	ic := NewInterconnect(g, Config{})
	ic.Net(0).Attach("src", nil)
	ic.Net(1).Attach("dst", func(Frame) {})
	ic.Net(0).SetPartitioned("src", true)
	s := g.Shard(0)
	s.Go("send", func() {
		ic.Net(0).Send(Frame{Src: "src", Dst: "dst", Size: 64})
	})
	g.Run()
	if del, drop := ic.Net(1).Stats("dst"); del != 0 || drop != 1 {
		t.Fatalf("dst stats delivered=%d dropped=%d, want 0/1", del, drop)
	}
}

// TestInterconnectRejectsSharedRegistry: one registry across shards
// would race, so the constructor must refuse it.
func TestInterconnectRejectsSharedRegistry(t *testing.T) {
	g := sim.NewShardGroup(1, 2, time.Microsecond)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "cfg.Metrics must be nil") {
			t.Fatalf("expected shared-registry panic, got %v", r)
		}
	}()
	NewInterconnect(g, Config{Metrics: metrics.New(func() time.Duration { return 0 })})
}

// TestInterconnectRejectsShortPropDelay: a link faster than the group
// lookahead breaks conservative delivery and must be refused.
func TestInterconnectRejectsShortPropDelay(t *testing.T) {
	g := sim.NewShardGroup(1, 2, time.Microsecond)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "PropDelay") {
			t.Fatalf("expected PropDelay panic, got %v", r)
		}
	}()
	NewInterconnect(g, Config{PropDelay: 100 * time.Nanosecond})
}

// TestInterconnectDuplicateNodeName: the same node name attached on two
// shards is a topology bug worth an immediate panic.
func TestInterconnectDuplicateNodeName(t *testing.T) {
	g := sim.NewShardGroup(1, 2, time.Microsecond)
	ic := NewInterconnect(g, Config{})
	ic.Net(0).Attach("n", nil)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "attached on two shards") {
			t.Fatalf("expected duplicate-node panic, got %v", r)
		}
	}()
	ic.Net(1).Attach("n", nil)
}
