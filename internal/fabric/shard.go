package fabric

import (
	"time"

	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// This file is the sharded fabric: one Network (and one metrics
// registry) per shard of a sim.ShardGroup, stitched together by
// per-shard-pair bounded mailboxes. A frame between nodes on the same
// shard takes exactly the classic path in fabric.go. A frame that
// crosses shards is split at the switch:
//
//   - The SOURCE shard books the uplink (source serialization slot,
//     tx accounting, source-side loss draw from the source shard's
//     RNG) and posts (frame, switch-arrival time) into the mailbox.
//   - The DESTINATION shard, when the group drains the mailbox at a
//     window barrier, books the downlink (duplication, store-and-
//     forward serialization, destination loss/reorder draws from the
//     destination shard's RNG) and schedules the delivery on its own
//     scheduler — including the plug-and-forward path, which is
//     destination-side state and needs no changes.
//
// The split keeps every piece of mutable port state single-owner: the
// uplink half (upBusy, tx counters) is touched only by the source
// shard, the downlink half (downBusy, rx/delivery counters, fault
// state, the plug) only by the destination shard. The propagation
// delay between NIC and switch is the group's lookahead: a frame sent
// at time u becomes visible to the destination no earlier than
// u + PropDelay, which is exactly the bound the conservative window
// protocol needs.

// remoteFrame is a mailbox payload: the frame plus its switch-arrival
// time, or a source-side drop that must still be accounted at the
// destination port (Stats semantics: dropped counts frames lost on
// the way to the node, wherever the loss happened).
type remoteFrame struct {
	f            Frame
	arriveSwitch time.Duration
	drop         bool
	// spine marks a frame that crossed a two-tier topology's spine: the
	// source shard already booked the ToR→spine uplink, and
	// arriveSwitch is the arrival time at the spine; the destination
	// shard still owes the spine→ToR downlink booking. Always false on
	// a flat interconnect.
	spine bool
}

// Interconnect owns the shard Networks of one ShardGroup.
type Interconnect struct {
	group *sim.ShardGroup
	cfg   Config
	nets  []*Network
	regs  []*metrics.Registry
	owner map[string]int
	// mbox[src][dst] is created lazily on the first cross-shard frame
	// of that pair — at topology setup time, before the group runs.
	mbox [][]*sim.Mailbox
}

// NewInterconnect builds one Network per shard of the group. Per-shard
// metrics registries are created internally (cfg.Metrics must be nil:
// a registry shared across shards would race); read them back with
// Registry. PropDelay must be at least the group's lookahead, or the
// window protocol could deliver a frame into a window that has already
// run.
func NewInterconnect(g *sim.ShardGroup, cfg Config) *Interconnect {
	if cfg.Metrics != nil {
		panic("fabric: sharded interconnect builds per-shard registries; cfg.Metrics must be nil")
	}
	if cfg.Rate == 0 {
		cfg.Rate = DefaultConfig().Rate
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = DefaultConfig().PropDelay
	}
	if cfg.PropDelay < g.Lookahead() {
		panic("fabric: link PropDelay below the shard group's lookahead breaks conservative delivery")
	}
	if !cfg.Topology.Flat() {
		// Shard-by-rack alignment: one shard per rack, so every
		// rackLink half stays single-owner (topology.go). SetRack
		// enforces the per-node side of the same contract.
		if cfg.Topology.Racks != g.Shards() {
			panic("fabric: sharded topology needs one shard per rack")
		}
		spine := cfg.Topology.SpineDelay
		if spine == 0 {
			spine = cfg.PropDelay
		}
		if spine < g.Lookahead() {
			panic("fabric: SpineDelay below the shard group's lookahead breaks conservative delivery")
		}
	}
	ic := &Interconnect{
		group: g,
		cfg:   cfg,
		owner: make(map[string]int),
		mbox:  make([][]*sim.Mailbox, g.Shards()),
	}
	for i := 0; i < g.Shards(); i++ {
		ic.mbox[i] = make([]*sim.Mailbox, g.Shards())
		shardCfg := cfg
		reg := metrics.New(g.Shard(i).Now)
		shardCfg.Metrics = reg
		n := New(g.Shard(i), shardCfg)
		n.ic = ic
		n.shard = i
		ic.nets = append(ic.nets, n)
		ic.regs = append(ic.regs, reg)
	}
	return ic
}

// Net returns shard i's Network.
func (ic *Interconnect) Net(i int) *Network { return ic.nets[i] }

// Registry returns shard i's metrics registry.
func (ic *Interconnect) Registry(i int) *metrics.Registry { return ic.regs[i] }

// Owner reports the shard a node is attached to.
func (ic *Interconnect) Owner(node string) (int, bool) {
	s, ok := ic.owner[node]
	return s, ok
}

// registerNode records node→shard ownership at Attach time, rejecting
// the same name on two shards.
func (ic *Interconnect) registerNode(name string, shard int) {
	if prev, dup := ic.owner[name]; dup && prev != shard {
		panic("fabric: node " + name + " attached on two shards")
	}
	ic.owner[name] = shard
}

// link returns (creating if needed) the src→dst shard mailbox with its
// destination-side drain callback installed. Lazy creation happens
// during topology setup — the first Send between a shard pair — which
// precedes the group's first window.
func (ic *Interconnect) link(src, dst int) *sim.Mailbox {
	if m := ic.mbox[src][dst]; m != nil {
		return m
	}
	m := ic.group.NewMailbox(src, dst, 0)
	dstNet := ic.nets[dst]
	m.SetDeliver(func(e sim.MailboxEntry) { dstNet.arriveRemote(e.Data.(*remoteFrame)) })
	ic.mbox[src][dst] = m
	return m
}

// sendRemote is the source half of a cross-shard Send. It runs on the
// source shard.
func (ic *Interconnect) sendRemote(n *Network, src *port, f Frame) {
	dstShard, ok := ic.owner[f.Dst]
	if !ok {
		panic("fabric: unknown node " + f.Dst)
	}
	m := ic.link(n.shard, dstShard)
	now := n.sched.Now()
	if src.partitioned {
		m.Put(now+ic.cfg.PropDelay, &remoteFrame{f: f, drop: true})
		return
	}
	if src.lossProb > 0 && (src.lossPort == "" || src.lossPort == f.Port) &&
		n.sched.Rand().Float64() < src.lossProb {
		m.Put(now+ic.cfg.PropDelay, &remoteFrame{f: f, drop: true})
		return
	}
	arriveSwitch := n.serializeUplink(src, f.Size) + ic.cfg.PropDelay
	if n.racks != nil && src.rack != dstShard {
		// Cross-rack crossing (under shard-by-rack alignment cross-shard
		// is cross-rack): book the source rack's ToR→spine uplink here,
		// on its owning shard; the destination shard books the
		// spine→ToR half when it drains the mailbox.
		atSpine, ok := n.bookSpineUp(src.rack, f, arriveSwitch)
		if !ok {
			m.Put(atSpine, &remoteFrame{f: f, drop: true})
			return
		}
		m.Put(atSpine, &remoteFrame{f: f, arriveSwitch: atSpine, spine: true})
		return
	}
	m.Put(arriveSwitch, &remoteFrame{f: f, arriveSwitch: arriveSwitch})
}

// arriveRemote is the destination half: it runs at a window barrier on
// the destination shard's Network, with the destination scheduler
// idle, and books the downlink exactly as a local Send would.
func (n *Network) arriveRemote(rf *remoteFrame) {
	dst := n.mustPort(rf.f.Dst)
	if rf.drop || dst.partitioned {
		dst.drop()
		return
	}
	arrive := rf.arriveSwitch
	if rf.spine {
		// Destination half of a spine crossing: book the spine→ToR
		// downlink of the destination rack on its owning shard.
		atDstToR, ok := n.bookSpineDown(dst.rack, rf.f, rf.arriveSwitch)
		if !ok {
			dst.drop()
			return
		}
		arrive = atDstToR
	}
	n.deliverDownlink(dst, rf.f, arrive, n.sched.Now())
}
