package fabric

import (
	"fmt"
	"testing"

	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// plugRig is a two-node network whose "dst" handler records delivered
// frames by their payload tag.
type plugRig struct {
	s      *sim.Scheduler
	n      *Network
	reg    *metrics.Registry
	seen   []string
	taps   []string
	seqs   []uint64
	onRecv func(Frame)
}

func newPlugRig(t *testing.T) *plugRig {
	t.Helper()
	s := sim.New(3)
	reg := metrics.New(s.Now)
	n := New(s, Config{Metrics: reg})
	r := &plugRig{s: s, n: n, reg: reg}
	n.Attach("src", func(Frame) {})
	n.Attach("dst", func(f Frame) {
		r.seen = append(r.seen, string(f.Data))
		if r.onRecv != nil {
			r.onRecv(f)
		}
	})
	return r
}

func (r *plugRig) tap(event string, seq uint64) {
	r.taps = append(r.taps, event)
	r.seqs = append(r.seqs, seq)
}

func (r *plugRig) send(tag string) {
	r.n.Send(Frame{Src: "src", Dst: "dst", Port: "rdma", Size: 64, Data: []byte(tag)})
}

// matchAll plugs every frame on the port.
func matchAll(Frame) bool { return true }

func (r *plugRig) counter(name string) int64 {
	return r.reg.Counter("fabric", name, metrics.Labels{"node": "dst"}).Value()
}

func TestPlugBuffersAndFlushesInArrivalOrder(t *testing.T) {
	r := newPlugRig(t)
	r.s.Go("drive", func() {
		if err := r.n.InstallPlug("dst", 8, matchAll, r.tap); err != nil {
			t.Errorf("install: %v", err)
		}
		for i := 0; i < 5; i++ {
			r.send(fmt.Sprintf("f%d", i))
		}
		r.s.Sleep(1e6)
		if len(r.seen) != 0 {
			t.Errorf("plugged frames delivered early: %v", r.seen)
		}
		if d := r.n.PlugDepth("dst"); d != 5 {
			t.Errorf("PlugDepth = %d, want 5", d)
		}
		if got := r.n.FlushPlug("dst"); got != 5 {
			t.Errorf("FlushPlug = %d, want 5", got)
		}
	})
	r.s.Run()
	want := []string{"f0", "f1", "f2", "f3", "f4"}
	if fmt.Sprint(r.seen) != fmt.Sprint(want) {
		t.Fatalf("flush order %v, want %v", r.seen, want)
	}
	// Tap: 5 buffer events then 5 flush events, with flush seqs matching
	// buffer seqs in order.
	if len(r.taps) != 10 {
		t.Fatalf("tap events %v", r.taps)
	}
	for i := 0; i < 5; i++ {
		if r.taps[i] != "buffer" || r.seqs[i] != uint64(i) {
			t.Fatalf("buffer tap %d = %s/%d", i, r.taps[i], r.seqs[i])
		}
		if r.taps[5+i] != "flush" || r.seqs[5+i] != uint64(i) {
			t.Fatalf("flush tap %d = %s/%d", i, r.taps[5+i], r.seqs[5+i])
		}
	}
	if got := r.counter("plug_buffered_packets"); got != 5 {
		t.Fatalf("plug_buffered_packets = %d, want 5", got)
	}
	if got := r.reg.Gauge("fabric", "plug_flush_depth", metrics.Labels{"node": "dst"}).Value(); got != 5 {
		t.Fatalf("plug_flush_depth = %d, want 5", got)
	}
	// The plug is gone: new frames flow straight through.
	r.s.Go("after", func() { r.send("live") })
	r.s.Run()
	if r.seen[len(r.seen)-1] != "live" {
		t.Fatalf("post-flush frame not delivered: %v", r.seen)
	}
}

// TestPlugOverflowRejectsNewest pins the documented overflow policy:
// at the bound the arriving frame is rejected, never a queued one, so
// the eventual flush still replays the oldest frames in arrival order.
func TestPlugOverflowRejectsNewest(t *testing.T) {
	r := newPlugRig(t)
	r.s.Go("drive", func() {
		if err := r.n.InstallPlug("dst", 3, matchAll, r.tap); err != nil {
			t.Errorf("install: %v", err)
		}
		for i := 0; i < 5; i++ {
			r.send(fmt.Sprintf("f%d", i))
		}
		r.s.Sleep(1e6)
		if got := r.n.FlushPlug("dst"); got != 3 {
			t.Errorf("FlushPlug = %d, want 3", got)
		}
	})
	r.s.Run()
	want := []string{"f0", "f1", "f2"} // newest two rejected, oldest kept
	if fmt.Sprint(r.seen) != fmt.Sprint(want) {
		t.Fatalf("flush after overflow %v, want %v", r.seen, want)
	}
	if got := r.counter("plug_overflow_packets"); got != 2 {
		t.Fatalf("plug_overflow_packets = %d, want 2", got)
	}
	if got := r.counter("dropped_frames"); got != 2 {
		t.Fatalf("dropped_frames = %d, want 2", got)
	}
	// Overflow taps carry the rejected frames' arrival seqs.
	var drops []uint64
	for i, e := range r.taps {
		if e == "drop-overflow" {
			drops = append(drops, r.seqs[i])
		}
	}
	if fmt.Sprint(drops) != fmt.Sprint([]uint64{3, 4}) {
		t.Fatalf("drop-overflow seqs %v, want [3 4]", drops)
	}
}

// TestPlugFlushBeforeLiveTraffic drives live frames that arrive while
// the plug holds traffic and new frames sent by the handler during the
// flush itself: queued frames must come out first, live traffic after.
func TestPlugFlushBeforeLiveTraffic(t *testing.T) {
	r := newPlugRig(t)
	// The handler reacts to the first flushed frame by sending a reply
	// through the fabric back to dst (unmatched port so it cannot be
	// re-plugged logically, but the plug is already gone during flush).
	replied := false
	r.onRecv = func(f Frame) {
		if string(f.Data) == "p0" && !replied {
			replied = true
			r.n.Send(Frame{Src: "src", Dst: "dst", Port: "rdma", Size: 64, Data: []byte("reply")})
		}
	}
	r.s.Go("drive", func() {
		// Only frames tagged p* are plugged; "live" passes through.
		err := r.n.InstallPlug("dst", 8, func(f Frame) bool {
			return len(f.Data) > 0 && f.Data[0] == 'p'
		}, r.tap)
		if err != nil {
			t.Errorf("install: %v", err)
		}
		r.send("p0")
		r.send("live0")
		r.send("p1")
		r.s.Sleep(1e6)
		// Live frames bypassed the plug while p* waited.
		if fmt.Sprint(r.seen) != fmt.Sprint([]string{"live0"}) {
			t.Errorf("pre-flush deliveries %v, want [live0]", r.seen)
		}
		if got := r.n.FlushPlug("dst"); got != 2 {
			t.Errorf("FlushPlug = %d, want 2", got)
		}
		// The reply sent from inside the flush is a scheduled delivery:
		// it must not interleave with the flushed frames.
		if fmt.Sprint(r.seen) != fmt.Sprint([]string{"live0", "p0", "p1"}) {
			t.Errorf("flush interleaved with handler sends: %v", r.seen)
		}
		r.s.Sleep(1e6)
	})
	r.s.Run()
	want := []string{"live0", "p0", "p1", "reply"}
	if fmt.Sprint(r.seen) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", r.seen, want)
	}
}

// TestPlugDiscardOnAbort is the abort-path teardown: a non-empty plug
// is discarded without delivering anything, and the port then behaves
// as if the plug never existed.
func TestPlugDiscardOnAbort(t *testing.T) {
	r := newPlugRig(t)
	r.s.Go("drive", func() {
		if err := r.n.InstallPlug("dst", 8, matchAll, r.tap); err != nil {
			t.Errorf("install: %v", err)
		}
		r.send("doomed0")
		r.send("doomed1")
		r.s.Sleep(1e6)
		if got := r.n.DiscardPlug("dst"); got != 2 {
			t.Errorf("DiscardPlug = %d, want 2", got)
		}
		if len(r.seen) != 0 {
			t.Errorf("discard delivered frames: %v", r.seen)
		}
		// Idempotent for compensation chains.
		if got := r.n.DiscardPlug("dst"); got != 0 {
			t.Errorf("second DiscardPlug = %d, want 0", got)
		}
		if got := r.n.FlushPlug("dst"); got != 0 {
			t.Errorf("FlushPlug after discard = %d, want 0", got)
		}
		r.send("live")
		r.s.Sleep(1e6)
	})
	r.s.Run()
	if fmt.Sprint(r.seen) != fmt.Sprint([]string{"live"}) {
		t.Fatalf("post-discard deliveries %v, want [live]", r.seen)
	}
	var discards int
	for _, e := range r.taps {
		if e == "discard" {
			discards++
		}
	}
	if discards != 2 {
		t.Fatalf("discard taps = %d, want 2", discards)
	}
}

// TestPlugEnqueueMergesTunnelFrames checks that forwarded frames
// inserted via EnqueuePlugged share one arrival order with wire frames.
func TestPlugEnqueueMergesTunnelFrames(t *testing.T) {
	r := newPlugRig(t)
	r.s.Go("drive", func() {
		if err := r.n.InstallPlug("dst", 8, matchAll, r.tap); err != nil {
			t.Errorf("install: %v", err)
		}
		r.send("wire0")
		r.s.Sleep(1e6)
		if !r.n.EnqueuePlugged("dst", Frame{Src: "old", Dst: "dst", Port: "rdma", Size: 64, Data: []byte("tun0")}) {
			t.Error("EnqueuePlugged with plug installed returned false")
		}
		r.send("wire1")
		r.s.Sleep(1e6)
		if got := r.n.FlushPlug("dst"); got != 3 {
			t.Errorf("FlushPlug = %d, want 3", got)
		}
		if r.n.EnqueuePlugged("dst", Frame{Dst: "dst"}) {
			t.Error("EnqueuePlugged without plug returned true")
		}
	})
	r.s.Run()
	want := []string{"wire0", "tun0", "wire1"}
	if fmt.Sprint(r.seen) != fmt.Sprint(want) {
		t.Fatalf("merged flush order %v, want %v", r.seen, want)
	}
}

func TestPlugDoubleInstallRejected(t *testing.T) {
	r := newPlugRig(t)
	r.s.Go("drive", func() {
		if err := r.n.InstallPlug("dst", 0, matchAll, nil); err != nil {
			t.Errorf("install: %v", err)
		}
		if err := r.n.InstallPlug("dst", 0, matchAll, nil); err == nil {
			t.Error("second InstallPlug succeeded, want error")
		}
		r.n.DiscardPlug("dst")
	})
	r.s.Run()
}
