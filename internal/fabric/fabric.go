// Package fabric models the data-center network the MigrRDMA testbed
// runs on: hosts attached to a single switch through full-duplex links
// with a configurable rate and propagation delay (the paper uses
// 100 Gbps ConnectX-5 NICs behind an Arista 7260CX3-64 switch).
//
// The fabric is rate-accurate: a frame of S bytes occupies its egress
// link for S*8/rate of virtual time, so end-to-end throughput, queueing
// and the wait-before-stop theory value inflight_bytes/link_rate (paper
// §5.4) all emerge from the model rather than being asserted.
package fabric

import (
	"fmt"
	"time"

	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// Frame is one unit of transmission. Size is the on-wire size in bytes
// (payload plus protocol overhead); Data is the encoded packet. Port
// selects the consumer on the destination node when a Mux is installed
// (RDMA traffic, migration image streams, out-of-band control).
type Frame struct {
	Src, Dst string
	Port     string
	Size     int
	Data     []byte
}

// Handler consumes frames delivered to a node. Handlers run inline on
// the scheduler loop and must not block; typical handlers enqueue the
// frame and signal a condition variable.
type Handler func(Frame)

// Config describes link characteristics shared by every port.
type Config struct {
	// Rate is the link rate in bits per second (default 100 Gbps).
	Rate int64
	// PropDelay is the one-way propagation delay per hop (default 1 µs).
	PropDelay time.Duration
	// Topology declares the two-tier rack/spine fabric (topology.go).
	// The zero value is the classic flat single-switch network.
	Topology Topology
	// Metrics, when set, receives the per-port counters. A nil registry
	// gets replaced by a detached one so increments are always valid.
	Metrics *metrics.Registry
}

// DefaultConfig mirrors the paper's testbed.
func DefaultConfig() Config {
	return Config{Rate: 100e9, PropDelay: 1 * time.Microsecond}
}

// Network is a single-switch fabric connecting named nodes. In the
// sharded configuration (see Interconnect) each shard owns one Network
// carrying that shard's nodes; frames addressed to nodes on other
// shards leave through the interconnect's mailboxes instead of being
// scheduled locally.
type Network struct {
	sched *sim.Scheduler
	cfg   Config
	reg   *metrics.Registry
	ports map[string]*port

	// ic/shard bind this Network into a sharded group; nil/0 for the
	// classic single-scheduler fabric.
	ic    *Interconnect
	shard int

	// racks holds the per-rack spine links of a two-tier topology; nil
	// on a flat network, so the classic Send path never consults it.
	racks []*rackLink

	// freeDeliveries recycles the per-frame delivery events scheduled by
	// deliverAt, so the steady-state data path allocates no event state
	// per packet.
	freeDeliveries []*delivery

	// freeBufs is the network-wide wire-buffer pool. It lives on the
	// Network rather than on each NIC because buffers flow between
	// hosts: the sender allocates a frame's buffer and the receiver
	// retires it, so per-NIC pools drain on any host that transmits
	// more frames than it receives (a one-way bulk sender never gets
	// its buffers back, and its receiver's pool grows without bound).
	// Everything on one Network runs on one scheduler, so the shared
	// slice needs no locking.
	freeBufs [][]byte
}

// maxPooledBufs bounds the buffer pool; beyond it, retired buffers are
// left to the garbage collector.
const maxPooledBufs = 4096

// TakeBuf pops a retired buffer with capacity ≥ size, or nil when the
// pool has none (the caller allocates with whatever capacity class it
// wants). Callers hand the buffer to Send as Frame.Data; the receiver
// retires it with PutBuf once the frame is fully consumed.
func (n *Network) TakeBuf(size int) []byte {
	for ln := len(n.freeBufs); ln > 0; ln = len(n.freeBufs) {
		b := n.freeBufs[ln-1]
		n.freeBufs[ln-1] = nil
		n.freeBufs = n.freeBufs[:ln-1]
		if cap(b) >= size {
			return b[:size]
		}
		// Undersized for this caller (mixed-MTU networks): drop it and
		// keep looking rather than returning a short buffer.
	}
	return nil
}

// PutBuf retires a frame buffer into the shared pool. The caller must
// hold the only live reference.
func (n *Network) PutBuf(b []byte) {
	if cap(b) == 0 || len(n.freeBufs) >= maxPooledBufs {
		return
	}
	n.freeBufs = append(n.freeBufs, b[:0])
}

type port struct {
	name    string
	handler Handler
	// upBusy / downBusy are the times the node→switch and switch→node
	// links finish serializing their last frame.
	upBusy, downBusy time.Duration
	// lossProb drops incoming frames with the given probability;
	// lossPort restricts the drops to one port ("" = every port).
	lossProb float64
	lossPort string
	// partitioned drops every frame to and from the node.
	partitioned bool
	// dupProb delivers incoming frames twice with the given probability;
	// dupPort restricts duplication to one port ("" = every port).
	dupProb float64
	dupPort string
	// reorderProb holds back an incoming frame for reorderDelay so that
	// later frames overtake it; reorderPort restricts it to one port.
	reorderProb  float64
	reorderPort  string
	reorderDelay time.Duration
	// rate overrides the network link rate for this port (0 = default),
	// modelling a degraded or renegotiated link.
	rate int64
	// rack is the port's ToR assignment under a two-tier topology
	// (topology.go); always 0 on a flat network.
	rack int
	// plug, when installed, queues matching frames instead of delivering
	// them (plug-and-forward cutover; see plug.go).
	plug *plug
	// delivered and dropped count frames for tests and traces.
	delivered, dropped int64
	// duplicated and reordered count injected faults.
	duplicated, reordered int64
	rxBytes, txBytes      int64

	// Registry handles, resolved once at Attach (hot-path increments
	// are single atomic adds).
	mTxBytes, mRxBytes   *metrics.Counter
	mTxFrames, mRxFrames *metrics.Counter
	mDelivered, mDropped *metrics.Counter
	mDup, mReord         *metrics.Counter
	// mBacklog tracks the downlink serialization backlog (how far ahead
	// of now the link is booked, in nanoseconds); its high-water mark is
	// the queue-depth figure of merit.
	mBacklog *metrics.Gauge
}

// New creates an empty network.
func New(sched *sim.Scheduler, cfg Config) *Network {
	if cfg.Rate == 0 {
		cfg.Rate = DefaultConfig().Rate
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = DefaultConfig().PropDelay
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New(sched.Now)
	}
	n := &Network{sched: sched, cfg: cfg, reg: reg, ports: make(map[string]*port)}
	if !cfg.Topology.Flat() {
		n.initTopology()
	}
	return n
}

// Scheduler returns the scheduler the network runs on.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Rate returns the configured link rate in bits per second.
func (n *Network) Rate() int64 { return n.cfg.Rate }

// Attach connects a node to the switch. The handler receives every frame
// addressed to name.
func (n *Network) Attach(name string, h Handler) {
	if _, dup := n.ports[name]; dup {
		panic("fabric: duplicate node " + name)
	}
	if n.ic != nil {
		n.ic.registerNode(name, n.shard)
	}
	l := metrics.Labels{"node": name}
	n.ports[name] = &port{
		name: name, handler: h,
		mTxBytes:   n.reg.Counter("fabric", "tx_bytes", l),
		mRxBytes:   n.reg.Counter("fabric", "rx_bytes", l),
		mTxFrames:  n.reg.Counter("fabric", "tx_frames", l),
		mRxFrames:  n.reg.Counter("fabric", "rx_frames", l),
		mDelivered: n.reg.Counter("fabric", "delivered_frames", l),
		mDropped:   n.reg.Counter("fabric", "dropped_frames", l),
		mDup:       n.reg.Counter("fabric", "duplicated_frames", l),
		mReord:     n.reg.Counter("fabric", "reordered_frames", l),
		mBacklog:   n.reg.Gauge("fabric", "downlink_backlog_ns", l),
	}
}

// SetHandler replaces the frame handler of an attached node. It is used
// when a NIC object is rebuilt (e.g. in tests).
func (n *Network) SetHandler(name string, h Handler) {
	n.mustPort(name).handler = h
}

// SetLoss sets the probability that a frame leaving or entering the node
// is dropped. Loss draws use the scheduler's deterministic RNG.
func (n *Network) SetLoss(name string, p float64) {
	pt := n.mustPort(name)
	pt.lossProb, pt.lossPort = p, ""
}

// SetPortLoss drops only frames on the given mux port (e.g. the RDMA
// data path while the TCP-like control and transfer paths stay
// reliable, as on a real deployment).
func (n *Network) SetPortLoss(name, port string, p float64) {
	pt := n.mustPort(name)
	pt.lossProb, pt.lossPort = p, port
}

// SetDuplicate sets the probability that a frame entering the node is
// delivered twice, modelling a switch retransmitting onto the downlink.
// The copy re-serializes on the downlink so it arrives strictly after
// the original. Draws use the scheduler's deterministic RNG.
func (n *Network) SetDuplicate(name string, p float64) {
	pt := n.mustPort(name)
	pt.dupProb, pt.dupPort = p, ""
}

// SetPortDuplicate restricts duplication to one mux port.
func (n *Network) SetPortDuplicate(name, port string, p float64) {
	pt := n.mustPort(name)
	pt.dupProb, pt.dupPort = p, port
}

// SetReorder sets the probability that a frame entering the node is held
// back for delay, letting frames behind it overtake (out-of-order
// delivery as produced by multi-path fabrics). Draws use the scheduler's
// deterministic RNG.
func (n *Network) SetReorder(name string, p float64, delay time.Duration) {
	pt := n.mustPort(name)
	pt.reorderProb, pt.reorderPort, pt.reorderDelay = p, "", delay
}

// SetPortReorder restricts reordering to one mux port.
func (n *Network) SetPortReorder(name, port string, p float64, delay time.Duration) {
	pt := n.mustPort(name)
	pt.reorderProb, pt.reorderPort, pt.reorderDelay = p, port, delay
}

// SetRate overrides the link rate of one node in bits per second,
// modelling a renegotiated or degraded link. Zero restores the shared
// network rate. Frames already serialized keep their old timing.
func (n *Network) SetRate(name string, bps int64) { n.mustPort(name).rate = bps }

// SetPartitioned isolates or reconnects a node.
func (n *Network) SetPartitioned(name string, v bool) { n.mustPort(name).partitioned = v }

// Stats reports frames delivered to and dropped on the way to name.
func (n *Network) Stats(name string) (delivered, dropped int64) {
	p := n.mustPort(name)
	return p.delivered, p.dropped
}

// FaultStats reports frames duplicated and reordered on the way to name.
func (n *Network) FaultStats(name string) (duplicated, reordered int64) {
	p := n.mustPort(name)
	return p.duplicated, p.reordered
}

func (n *Network) mustPort(name string) *port {
	p, ok := n.ports[name]
	if !ok {
		panic("fabric: unknown node " + name)
	}
	return p
}

// SerializationTime returns the time a frame of size bytes occupies a
// link. NIC transmit pacers use it to hand the fabric one frame per
// serialization slot.
func (n *Network) SerializationTime(size int) time.Duration {
	return n.serialization(size)
}

// serialization returns the time a frame of size bytes occupies a link.
func (n *Network) serialization(size int) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / n.cfg.Rate)
}

// serializationAt is serialization against one port's effective rate.
func (n *Network) serializationAt(p *port, size int) time.Duration {
	rate := n.cfg.Rate
	if p.rate > 0 {
		rate = p.rate
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / rate)
}

// Send injects a frame at its source node. Delivery is scheduled through
// the switch: the frame serializes onto the source uplink, propagates,
// store-and-forwards through the switch onto the destination downlink,
// and is handed to the destination handler. Send never blocks; queueing
// appears as later delivery times.
//
// Fault ordering: the duplication decision is made first (the switch
// retransmitting onto the downlink produces two physical copies), then
// loss and reordering are drawn independently per copy — a duplicated
// frame may lose its original and still deliver the copy, and vice
// versa. Each copy occupies its own downlink serialization slot whether
// or not it is subsequently dropped.
func (n *Network) Send(f Frame) {
	src := n.mustPort(f.Src)
	dst, local := n.ports[f.Dst]
	if !local {
		// A node this Network has never heard of: either it lives on
		// another shard of an interconnected group, or it is a typo.
		if n.ic != nil {
			n.ic.sendRemote(n, src, f)
			return
		}
		panic("fabric: unknown node " + f.Dst)
	}
	now := n.sched.Now()
	if src.partitioned || dst.partitioned {
		dst.drop()
		return
	}
	if src.lossProb > 0 && (src.lossPort == "" || src.lossPort == f.Port) &&
		n.sched.Rand().Float64() < src.lossProb {
		dst.drop()
		return
	}
	arriveSwitch := n.serializeUplink(src, f.Size) + n.cfg.PropDelay
	if n.racks != nil && src.rack != dst.rack {
		// Two-tier crossing: ToR→spine on the source rack's uplink,
		// spine→ToR on the destination rack's downlink (topology.go).
		atSpine, ok := n.bookSpineUp(src.rack, f, arriveSwitch)
		if !ok {
			dst.drop()
			return
		}
		atDstToR, ok := n.bookSpineDown(dst.rack, f, atSpine)
		if !ok {
			dst.drop()
			return
		}
		arriveSwitch = atDstToR
	}
	n.deliverDownlink(dst, f, arriveSwitch, now)
}

// serializeUplink books the frame onto the source uplink (source NIC →
// switch) and returns the time the last bit leaves the NIC.
func (n *Network) serializeUplink(src *port, size int) time.Duration {
	start := n.sched.Now()
	if src.upBusy > start {
		start = src.upBusy
	}
	src.upBusy = start + n.serializationAt(src, size)
	src.txBytes += int64(size)
	src.mTxBytes.Add(int64(size))
	src.mTxFrames.Inc()
	return src.upBusy
}

// deliverDownlink carries a frame that reaches the switch at
// arriveSwitch onto the destination downlink: the switch-side
// duplication draw, per-copy store-and-forward serialization, and the
// per-copy loss/reorder draws. It is the destination half of Send,
// shared with the shard interconnect (where it runs on the destination
// shard, against the destination scheduler's clock and RNG).
func (n *Network) deliverDownlink(dst *port, f Frame, arriveSwitch, now time.Duration) {
	// Switch-side duplication: the copy re-serializes on the downlink
	// behind the original, so it always trails it.
	copies := 1
	if dst.dupProb > 0 && (dst.dupPort == "" || dst.dupPort == f.Port) &&
		n.sched.Rand().Float64() < dst.dupProb {
		copies = 2
		dst.duplicated++
		dst.mDup.Inc()
	}
	// Downlink: switch → destination NIC (store-and-forward), one
	// serialization slot per copy, with independent loss/reorder draws.
	serDown := n.serializationAt(dst, f.Size)
	for c := 0; c < copies; c++ {
		egress := arriveSwitch
		if dst.downBusy > egress {
			egress = dst.downBusy
		}
		dst.downBusy = egress + serDown
		arrive := dst.downBusy + n.cfg.PropDelay
		if dst.lossProb > 0 && (dst.lossPort == "" || dst.lossPort == f.Port) &&
			n.sched.Rand().Float64() < dst.lossProb {
			dst.drop()
			continue
		}
		if dst.reorderProb > 0 && (dst.reorderPort == "" || dst.reorderPort == f.Port) &&
			n.sched.Rand().Float64() < dst.reorderProb {
			dst.reordered++
			dst.mReord.Inc()
			arrive += dst.reorderDelay
		}
		if c > 0 && f.Data != nil {
			// The switch retransmit is a second physical copy on the
			// wire; give it its own bytes so a receiver that recycles
			// frame buffers after consuming the first copy cannot
			// corrupt this one.
			f.Data = append([]byte(nil), f.Data...)
		}
		n.deliverAt(dst, f, arrive-now)
	}
	// downBusy only grows across the copies, so recording the backlog
	// once after the loop observes the same final value and high-water
	// mark as a per-copy set would.
	dst.mBacklog.Set(int64(dst.downBusy - now))
}

// drop records one frame lost on the way to the port.
func (p *port) drop() {
	p.dropped++
	p.mDropped.Inc()
}

// delivery is the pending arrival of one frame at one port. Instances
// are pooled on the Network and dispatched through the shared deliverCB
// callback, so scheduling a delivery allocates neither a closure nor an
// event struct in steady state.
type delivery struct {
	n   *Network
	dst *port
	f   Frame
}

// deliverCB is the one callback every delivery event shares; the
// per-event state rides in the argument.
var deliverCB = func(arg any) { arg.(*delivery).run() }

// deliverAt schedules one delivery of f to dst after d.
func (n *Network) deliverAt(dst *port, f Frame, d time.Duration) {
	var dv *delivery
	if ln := len(n.freeDeliveries); ln > 0 {
		dv = n.freeDeliveries[ln-1]
		n.freeDeliveries[ln-1] = nil
		n.freeDeliveries = n.freeDeliveries[:ln-1]
	} else {
		dv = &delivery{n: n}
	}
	dv.dst = dst
	dv.f = f
	n.sched.AfterFuncArg(d, deliverCB, dv)
}

// run hands the frame to the destination handler. The event struct is
// recycled before the handler runs: handlers may send (and schedule new
// deliveries) inline.
func (dv *delivery) run() {
	n, dst, f := dv.n, dv.dst, dv.f
	dv.dst = nil
	dv.f = Frame{}
	n.freeDeliveries = append(n.freeDeliveries, dv)
	dst.rxBytes += int64(f.Size)
	dst.mRxBytes.Add(int64(f.Size))
	dst.mRxFrames.Inc()
	// A plugged frame has arrived at the NIC (rx accounting above) but
	// is not delivered until FlushPlug hands it to the port handler.
	if pl := dst.plug; pl != nil && pl.match(f) {
		pl.enqueue(n, dst, f)
		return
	}
	dst.deliver(f)
}

// deliver counts a frame as delivered and hands it to the port handler.
func (p *port) deliver(f Frame) {
	p.delivered++
	p.mDelivered.Inc()
	if p.handler == nil {
		panic(fmt.Sprintf("fabric: node %s has no handler", f.Dst))
	}
	p.handler(f)
}

// Bytes reports cumulative bytes received and transmitted by the node,
// used by the Fig. 5 throughput sampler.
func (n *Network) Bytes(name string) (rx, tx int64) {
	p := n.mustPort(name)
	return p.rxBytes, p.txBytes
}
