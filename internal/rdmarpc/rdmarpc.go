// Package rdmarpc is a small RPC framework over RDMA SEND/RECV with
// credit-based flow control — the RPC-over-RDMA style of systems the
// paper cites as RDMA consumers (ScaleRPC [8], FaSST-like designs
// [52]). It exists to exercise two-sided traffic patterns (pre-posted
// receive rings, request/response matching, credit replenishment)
// through the MigrRDMA guest library, so live migration can be tested
// against an RPC server rather than a raw byte pump.
//
// Wire format: every message is one SEND whose immediate-value-free
// payload carries [8B request id][4B method length][method][body]. The
// response echoes the request id. Both sides pre-post a fixed window of
// receives; a requester never has more than window outstanding calls.
package rdmarpc

import (
	"encoding/binary"
	"fmt"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

const (
	// MaxMessage bounds one RPC message (request or response).
	MaxMessage = 4096
	// window is the receive-ring depth and therefore the credit limit.
	window = 32

	serverArena = mem.Addr(0x70_0000_0000)
	clientArena = mem.Addr(0x71_0000_0000)
)

// Handler serves one method.
type Handler func(body []byte) []byte

// Server accepts connections and serves registered methods.
type Server struct {
	Name string

	Sess     *core.Session
	handlers map[string]Handler
	ready    bool
	rdyC     *sim.Cond
	stopped  bool

	pd    *core.PD
	cq    *core.CQ
	mr    *core.MR
	conns []*serverConn
}

type serverConn struct {
	qp   *core.QP
	base mem.Addr // receive-ring slots
	next uint64   // next recv slot to repost
}

// NewServer creates a server descriptor.
func NewServer(sched *sim.Scheduler, name string) *Server {
	return &Server{
		Name:     name,
		handlers: make(map[string]Handler),
		rdyC:     sim.NewCond(sched, "rpc-ready:"+name),
	}
}

// Handle registers a method handler (before Run).
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// WaitReady blocks until the server accepts connections.
func (s *Server) WaitReady() {
	for !s.ready {
		s.rdyC.Wait()
	}
}

// Stop ends the serve loop.
func (s *Server) Stop() { s.stopped = true }

type rpcOpen struct {
	Node string
	VQPN uint32
}

type rpcAccept struct {
	VQPN uint32
	Err  string
}

// Run is the server process main.
func (s *Server) Run(p *task.Process, d *core.Daemon) {
	sess := core.NewSession(p, d)
	s.Sess = sess
	// Arena: per-connection receive ring plus one send slot.
	const maxConns = 64
	arena := uint64(maxConns * (window + 1) * MaxMessage)
	if _, err := p.AS.Map(serverArena, arena, "rpc-arena"); err != nil {
		panic(err)
	}
	s.pd = sess.AllocPD()
	s.cq = sess.CreateCQ(maxConns*window*2, nil)
	mr, err := sess.RegMR(s.pd, serverArena, arena, rnic.AccessLocalWrite)
	if err != nil {
		panic(err)
	}
	s.mr = mr
	ep := d.Host().Hub.Endpoint("rpc:" + s.Name)
	ep.Handle("open", func(m oob.Msg) []byte {
		var req rpcOpen
		if err := decOpen(m.Body, &req); err != nil {
			return encAccept(rpcAccept{Err: err.Error()})
		}
		if len(s.conns) == maxConns {
			return encAccept(rpcAccept{Err: "connection limit"})
		}
		qp := sess.CreateQP(s.pd, core.QPConfig{Type: rnic.RC, SendCQ: s.cq, RecvCQ: s.cq,
			Caps: rnic.QPCaps{MaxSend: window * 2, MaxRecv: window * 2}})
		for _, a := range []rnic.ModifyAttr{
			{State: rnic.StateInit},
			{State: rnic.StateRTR, RemoteNode: m.FromNode, RemoteQPN: req.VQPN},
			{State: rnic.StateRTS},
		} {
			if err := qp.Modify(a); err != nil {
				return encAccept(rpcAccept{Err: err.Error()})
			}
		}
		conn := &serverConn{
			qp:   qp,
			base: serverArena + mem.Addr(len(s.conns)*(window+1)*MaxMessage),
		}
		for i := 0; i < window; i++ {
			if err := s.postRecv(conn, uint64(i)); err != nil {
				return encAccept(rpcAccept{Err: err.Error()})
			}
		}
		s.conns = append(s.conns, conn)
		return encAccept(rpcAccept{VQPN: qp.VQPN()})
	})
	s.ready = true
	s.rdyC.Broadcast()
	s.serve(p)
}

// postRecv arms one receive-ring slot.
func (s *Server) postRecv(c *serverConn, slot uint64) error {
	return c.qp.PostRecv(rnic.RecvWR{
		WRID: slot,
		SGEs: []rnic.SGE{{Addr: c.base + mem.Addr((slot%window)*MaxMessage), Len: MaxMessage, LKey: s.mr.LKey()}},
	})
}

// serve dispatches inbound requests until Stop.
func (s *Server) serve(p *task.Process) {
	for !s.stopped {
		p.Gate()
		if s.cq.Len() == 0 {
			s.cq.WaitNonEmpty()
			continue
		}
		for _, e := range s.cq.Poll(16) {
			if e.Opcode != rnic.OpRecv || e.Status != rnic.WCSuccess {
				continue
			}
			s.dispatch(p, e)
		}
	}
}

// dispatch serves one request CQE and sends the response.
func (s *Server) dispatch(p *task.Process, e rnic.CQE) {
	conn := s.connByVQPN(e.QPN)
	if conn == nil {
		return
	}
	slotAddr := conn.base + mem.Addr((e.WRID%window)*MaxMessage)
	buf := make([]byte, e.ByteLen)
	if err := p.AS.Read(slotAddr, buf); err != nil {
		return
	}
	id, method, body, err := decodeFrame(buf)
	// Replenish the credit before serving (the slot is consumed).
	_ = s.postRecv(conn, e.WRID+window)
	if err != nil {
		return
	}
	h, ok := s.handlers[method]
	var resp []byte
	if ok {
		resp = h(body)
	} else {
		resp = []byte("rdmarpc: no such method " + method)
	}
	frame := encodeFrame(id, "", resp)
	// Send slot: the last slot of the connection's arena window.
	sendSlot := conn.base + mem.Addr(window*MaxMessage)
	if err := p.AS.Write(sendSlot, frame); err != nil {
		return
	}
	_ = conn.qp.PostSend(rnic.SendWR{
		WRID: id, Opcode: rnic.OpSend, Signaled: true,
		SGEs: []rnic.SGE{{Addr: sendSlot, Len: uint32(len(frame)), LKey: s.mr.LKey()}},
	})
}

func (s *Server) connByVQPN(vqpn uint32) *serverConn {
	for _, c := range s.conns {
		if c.qp.VQPN() == vqpn {
			return c
		}
	}
	return nil
}

// Client is one RPC connection.
type Client struct {
	sess *core.Session
	proc *task.Process
	qp   *core.QP
	cq   *core.CQ
	mr   *core.MR

	nextID  uint64
	pending int
	// responses maps request id → response body for out-of-order
	// completion (the server may interleave).
	responses map[uint64][]byte
	nextSlot  uint64
}

// Dial connects to the named server.
func Dial(p *task.Process, d *core.Daemon, serverNode, serverName string) (*Client, error) {
	sess := core.NewSession(p, d)
	arena := uint64((window + 1) * MaxMessage)
	if _, err := p.AS.Map(clientArena, arena, "rpc-arena"); err != nil {
		return nil, err
	}
	pd := sess.AllocPD()
	cq := sess.CreateCQ(window*4, nil)
	mr, err := sess.RegMR(pd, clientArena, arena, rnic.AccessLocalWrite)
	if err != nil {
		return nil, err
	}
	qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq,
		Caps: rnic.QPCaps{MaxSend: window * 2, MaxRecv: window * 2}})
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
		return nil, err
	}
	c := &Client{sess: sess, proc: p, qp: qp, cq: cq, mr: mr, responses: make(map[uint64][]byte)}
	for i := 0; i < window; i++ {
		if err := c.postRecv(uint64(i)); err != nil {
			return nil, err
		}
	}
	ep := d.Host().Hub.Endpoint("rpc-cli:" + p.Name)
	resp := ep.Call(serverNode, "rpc:"+serverName, "open", encOpen(rpcOpen{Node: d.Node(), VQPN: qp.VQPN()}))
	var acc rpcAccept
	if err := decAccept(resp, &acc); err != nil {
		return nil, err
	}
	if acc.Err != "" {
		return nil, fmt.Errorf("rdmarpc: %s", acc.Err)
	}
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: serverNode, RemoteQPN: acc.VQPN}); err != nil {
		return nil, err
	}
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) postRecv(slot uint64) error {
	return c.qp.PostRecv(rnic.RecvWR{
		WRID: slot,
		SGEs: []rnic.SGE{{Addr: clientArena + mem.Addr((slot%window)*MaxMessage), Len: MaxMessage, LKey: c.mr.LKey()}},
	})
}

// Call performs one synchronous RPC.
func (c *Client) Call(method string, body []byte) ([]byte, error) {
	if c.pending >= window {
		return nil, fmt.Errorf("rdmarpc: credit exhausted")
	}
	c.nextID++
	id := c.nextID
	frame := encodeFrame(id, method, body)
	if len(frame) > MaxMessage {
		return nil, fmt.Errorf("rdmarpc: message exceeds %d bytes", MaxMessage)
	}
	sendSlot := clientArena + mem.Addr(window*MaxMessage)
	if err := c.proc.AS.Write(sendSlot, frame); err != nil {
		return nil, err
	}
	err := c.qp.PostSend(rnic.SendWR{
		WRID: id, Opcode: rnic.OpSend, Signaled: true,
		SGEs: []rnic.SGE{{Addr: sendSlot, Len: uint32(len(frame)), LKey: c.mr.LKey()}},
	})
	if err != nil {
		return nil, err
	}
	c.pending++
	defer func() { c.pending-- }()
	for {
		if resp, ok := c.responses[id]; ok {
			delete(c.responses, id)
			return resp, nil
		}
		c.cq.WaitNonEmpty()
		for _, e := range c.cq.Poll(16) {
			if e.Status != rnic.WCSuccess {
				return nil, fmt.Errorf("rdmarpc: completion %v", e.Status)
			}
			if e.Opcode != rnic.OpRecv {
				continue // our own send completion
			}
			slotAddr := clientArena + mem.Addr((e.WRID%window)*MaxMessage)
			buf := make([]byte, e.ByteLen)
			if err := c.proc.AS.Read(slotAddr, buf); err != nil {
				return nil, err
			}
			rid, _, rbody, err := decodeFrame(buf)
			_ = c.postRecv(e.WRID + window) // replenish
			if err != nil {
				return nil, err
			}
			c.responses[rid] = rbody
		}
	}
}

// Session exposes the client's MigrRDMA session.
func (c *Client) Session() *core.Session { return c.sess }

// --- wire encoding ------------------------------------------------------------

func encodeFrame(id uint64, method string, body []byte) []byte {
	out := make([]byte, 12+len(method)+len(body))
	binary.BigEndian.PutUint64(out, id)
	binary.BigEndian.PutUint32(out[8:], uint32(len(method)))
	copy(out[12:], method)
	copy(out[12+len(method):], body)
	return out
}

func decodeFrame(b []byte) (id uint64, method string, body []byte, err error) {
	if len(b) < 12 {
		return 0, "", nil, fmt.Errorf("rdmarpc: short frame")
	}
	id = binary.BigEndian.Uint64(b)
	n := binary.BigEndian.Uint32(b[8:])
	if uint32(len(b)-12) < n {
		return 0, "", nil, fmt.Errorf("rdmarpc: truncated method")
	}
	return id, string(b[12 : 12+n]), b[12+n:], nil
}

func encOpen(o rpcOpen) []byte {
	out := make([]byte, 4+len(o.Node))
	binary.BigEndian.PutUint32(out, o.VQPN)
	copy(out[4:], o.Node)
	return out
}

func decOpen(b []byte, o *rpcOpen) error {
	if len(b) < 4 {
		return fmt.Errorf("rdmarpc: short open")
	}
	o.VQPN = binary.BigEndian.Uint32(b)
	o.Node = string(b[4:])
	return nil
}

func encAccept(a rpcAccept) []byte {
	out := make([]byte, 4+len(a.Err))
	binary.BigEndian.PutUint32(out, a.VQPN)
	copy(out[4:], a.Err)
	return out
}

func decAccept(b []byte, a *rpcAccept) error {
	if len(b) < 4 {
		return fmt.Errorf("rdmarpc: short accept")
	}
	a.VQPN = binary.BigEndian.Uint32(b)
	a.Err = string(b[4:])
	return nil
}
