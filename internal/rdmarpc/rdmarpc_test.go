package rdmarpc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
	srv     *Server
	srvCont *runc.Container
}

func newRig(t *testing.T) *rig {
	t.Helper()
	names := []string{"server", "client", "spare"}
	cl := cluster.New(cluster.Config{Seed: 14}, names...)
	r := &rig{cl: cl, daemons: map[string]*core.Daemon{}}
	for _, n := range names {
		r.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	r.srv = NewServer(cl.Sched, "svc")
	r.srv.Handle("echo", func(b []byte) []byte { return b })
	r.srv.Handle("sum", func(b []byte) []byte {
		var sum byte
		for _, v := range b {
			sum += v
		}
		return []byte{sum}
	})
	r.srvCont = runc.NewContainer(cl.Host("server"), "rpc")
	r.srvCont.Start(func(p *task.Process) { r.srv.Run(p, r.daemons["server"]) })
	return r
}

func TestEchoAndDispatch(t *testing.T) {
	r := newRig(t)
	done := false
	r.cl.Sched.Go("client", func() {
		r.srv.WaitReady()
		c, err := Dial(task.New(r.cl.Sched, "cp"), r.daemons["client"], "server", "svc")
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := c.Call("echo", []byte("ping"))
		if err != nil || !bytes.Equal(resp, []byte("ping")) {
			t.Errorf("echo = %q, %v", resp, err)
		}
		resp, err = c.Call("sum", []byte{1, 2, 3})
		if err != nil || len(resp) != 1 || resp[0] != 6 {
			t.Errorf("sum = %v, %v", resp, err)
		}
		resp, err = c.Call("missing", nil)
		if err != nil || !bytes.Contains(resp, []byte("no such method")) {
			t.Errorf("missing method = %q, %v", resp, err)
		}
		done = true
	})
	r.cl.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
	r.srv.Stop()
}

func TestManySequentialCalls(t *testing.T) {
	r := newRig(t)
	done := false
	r.cl.Sched.Go("client", func() {
		r.srv.WaitReady()
		c, err := Dial(task.New(r.cl.Sched, "cp"), r.daemons["client"], "server", "svc")
		if err != nil {
			t.Error(err)
			return
		}
		// More calls than the credit window: replenishment must hold up.
		for i := 0; i < 5*window; i++ {
			msg := []byte(fmt.Sprintf("call-%d", i))
			resp, err := c.Call("echo", msg)
			if err != nil || !bytes.Equal(resp, msg) {
				t.Errorf("call %d: %q, %v", i, resp, err)
				return
			}
		}
		done = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
	r.srv.Stop()
}

func TestRPCServerMigration(t *testing.T) {
	r := newRig(t)
	done := false
	migrated := false
	r.cl.Sched.Go("client", func() {
		r.srv.WaitReady()
		c, err := Dial(task.New(r.cl.Sched, "cp"), r.daemons["client"], "server", "svc")
		if err != nil {
			t.Error(err)
			return
		}
		calls := 0
		for !migrated {
			msg := []byte(fmt.Sprintf("m-%d", calls))
			resp, err := c.Call("echo", msg)
			if err != nil {
				t.Errorf("call during migration: %v", err)
				return
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("response mismatch during migration: %q vs %q", resp, msg)
				return
			}
			calls++
			r.cl.Sched.Sleep(time.Millisecond)
		}
		// Post-migration calls hit the server on its new host.
		resp, err := c.Call("sum", []byte{40, 2})
		if err != nil || resp[0] != 42 {
			t.Errorf("post-migration sum = %v, %v", resp, err)
		}
		if calls == 0 {
			t.Error("no calls overlapped the migration window")
		}
		done = true
	})
	r.cl.Sched.Go("operator", func() {
		r.srv.WaitReady()
		r.cl.Sched.Sleep(10 * time.Millisecond)
		m := &runc.Migrator{C: r.srvCont, Dst: r.cl.Host("spare"),
			Plug: core.NewPlugin(r.daemons["server"], r.daemons["spare"]),
			Opts: runc.DefaultMigrateOptions()}
		if _, err := m.Migrate(); err != nil {
			t.Errorf("migration: %v", err)
		}
		migrated = true
	})
	r.cl.Sched.RunFor(2 * time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
	if r.srv.Sess.Node() != "spare" {
		t.Fatalf("server on %s", r.srv.Sess.Node())
	}
}
