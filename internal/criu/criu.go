// Package criu reimplements the checkpoint/restore engine the paper
// builds on (CRIU): memory pre-dump, iterative dirty-page pre-copy,
// image transfer over the network, and a restore path split into
// *partial restore* and *full restore* exactly as §4 splits it.
//
// Two CRIU behaviours that shape MigrRDMA's design are reproduced
// faithfully:
//
//   - During partial restore CRIU maps the application's memory at a
//     TEMPORARY address range and only remaps it to the original virtual
//     addresses at the final restore iteration (§2.2 challenge 1). MR
//     registration needs original addresses, so the MigrRDMA plugin must
//     claim MR-backing VMAs early via MapAtOriginal.
//   - Dump cost grows superlinearly with the number of memory mappings
//     ("inefficient CRIU implementation for large and complicated memory
//     structures", §5.2), which is why DumpOthers grows with #QPs even
//     with RDMA pre-setup.
package criu

import (
	"fmt"
	"math"
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/task"
)

// Config is the cost model of the checkpoint/restore engine.
type Config struct {
	DumpBase    time.Duration // fixed dump overhead
	DumpPerVMA  time.Duration // per-mapping walk cost
	VMAExponent float64       // superlinearity of the mapping walk
	DumpPerPage time.Duration // per dumped page
	RestPerPage time.Duration // per restored page
	FreezeLat   time.Duration // cgroup freezer stop
	ThawLat     time.Duration // process resume
	RemapLat    time.Duration // final mremap of the temporary area, per VMA
	// TempBase is where partial restore places memory temporarily.
	TempBase mem.Addr
}

// DefaultConfig mirrors observed CRIU behaviour on the paper's testbed.
func DefaultConfig() Config {
	return Config{
		DumpBase:    70 * time.Millisecond,
		DumpPerVMA:  18 * time.Microsecond,
		VMAExponent: 1.30,
		DumpPerPage: 150 * time.Nanosecond,
		RestPerPage: 250 * time.Nanosecond,
		FreezeLat:   5 * time.Millisecond,
		ThawLat:     50 * time.Millisecond,
		RemapLat:    12 * time.Microsecond,
		TempBase:    0x7000_0000_0000,
	}
}

// VMARec describes one mapping in an image.
type VMARec struct {
	Start  mem.Addr
	Len    uint64
	Name   string
	Device bool
}

// PageRec is one page of image content.
type PageRec struct {
	Addr mem.Addr
	Data []byte
}

// Image is a checkpoint image: the memory table, page contents, and the
// RDMA plugin's blob.
type Image struct {
	Proc       string
	Final      bool
	VMAs       []VMARec
	Pages      []PageRec
	PluginBlob []byte
}

// ByteSize approximates the on-wire image size.
func (img *Image) ByteSize() int {
	n := 256 + len(img.PluginBlob) + 64*len(img.VMAs)
	n += len(img.Pages) * (mem.PageSize + 16)
	return n
}

// Plugin is the checkpoint/restore extension point the MigrRDMA plugin
// implements (§4). All hooks run in managed procs and may block.
type Plugin interface {
	// PreDump checkpoints RDMA state on the migration source at the
	// start of pre-copy (Fig. 2b ①').
	PreDump(p *task.Process) ([]byte, error)
	// FinalDump dumps the stop-and-copy difference of RDMA state plus
	// virtualization info (Fig. 2b ⑤').
	FinalDump(p *task.Process) ([]byte, error)
	// PreRestore runs at the start of partial restore on the migration
	// destination: it claims MR-backing VMAs at their original virtual
	// addresses (using img's memory table and pages) and pre-establishes
	// RDMA communication (Fig. 2b ②').
	PreRestore(r *Restore, img *Image, blob []byte) error
	// PostRestore runs after full memory restoration: it maps the new
	// RDMA resources into the restored process and re-arms the data
	// path (Fig. 2b ⑥' and ⑦).
	PostRestore(r *Restore, p *task.Process, blob []byte) error
}

// Tool is the checkpoint/restore engine instance on one host.
type Tool struct {
	cfg Config
	// Host services, provided by the cluster.
	host HostServices
}

// HostServices is what the tool needs from its host: a scheduler and a
// timed bulk transfer path to other hosts.
type HostServices interface {
	Sleep(d time.Duration)
	Now() time.Duration
	// TransferTo moves size bytes to the peer host at link pace,
	// blocking until fully received by the peer.
	TransferTo(peer string, size int)
	Node() string
}

// New creates a tool bound to host services. Zero config fields take
// defaults.
func New(host HostServices, cfg Config) *Tool {
	d := DefaultConfig()
	if cfg.DumpBase == 0 {
		cfg.DumpBase = d.DumpBase
	}
	if cfg.DumpPerVMA == 0 {
		cfg.DumpPerVMA = d.DumpPerVMA
	}
	if cfg.VMAExponent == 0 {
		cfg.VMAExponent = d.VMAExponent
	}
	if cfg.DumpPerPage == 0 {
		cfg.DumpPerPage = d.DumpPerPage
	}
	if cfg.RestPerPage == 0 {
		cfg.RestPerPage = d.RestPerPage
	}
	if cfg.FreezeLat == 0 {
		cfg.FreezeLat = d.FreezeLat
	}
	if cfg.ThawLat == 0 {
		cfg.ThawLat = d.ThawLat
	}
	if cfg.RemapLat == 0 {
		cfg.RemapLat = d.RemapLat
	}
	if cfg.TempBase == 0 {
		cfg.TempBase = d.TempBase
	}
	return &Tool{cfg: cfg, host: host}
}

// Config returns the tool's cost model.
func (t *Tool) Config() Config { return t.cfg }

// Freeze stops the process (cgroup freezer).
func (t *Tool) Freeze(p *task.Process) {
	p.Freeze()
	t.host.Sleep(t.cfg.FreezeLat)
}

// Thaw resumes the process.
func (t *Tool) Thaw(p *task.Process) {
	t.host.Sleep(t.cfg.ThawLat)
	p.Thaw()
}

// Dump checkpoints the process memory. With full=true it captures every
// populated page (the first pre-copy iteration); otherwise only pages
// dirtied since the previous dump. Dirty tracking is reset. Device
// mappings (on-chip memory) are listed but their content is not dumped —
// that is the RDMA plugin's job.
func (t *Tool) Dump(p *task.Process, full bool) *Image {
	img := &Image{Proc: p.Name}
	vmas := p.AS.VMAs()
	for _, v := range vmas {
		img.VMAs = append(img.VMAs, VMARec{Start: v.Start, Len: v.Len, Name: v.Name, Device: v.Device})
	}
	var pages []mem.Addr
	if full {
		pages = p.AS.PopulatedPages()
	} else {
		pages = p.AS.DirtyPages()
	}
	for _, a := range pages {
		if v := p.AS.FindVMA(a); v != nil && v.Device {
			continue
		}
		img.Pages = append(img.Pages, PageRec{Addr: a, Data: p.AS.ReadPage(a)})
	}
	p.AS.ClearDirty()
	walk := time.Duration(float64(t.cfg.DumpPerVMA) * math.Pow(float64(len(vmas)), t.cfg.VMAExponent))
	t.host.Sleep(t.cfg.DumpBase + walk + time.Duration(len(img.Pages))*t.cfg.DumpPerPage)
	return img
}

// BeginDump opens a chunked dump for the page channel (pipelined
// transfer mode). It captures the memory table, selects the pages to
// ship — every populated page when full, otherwise the dirty diff,
// device mappings always excluded — resets dirty tracking, and pays
// the fixed dump overhead plus the superlinear mapping walk up front.
// Page contents are read (and their per-page cost paid) by subsequent
// DumpPages calls, so the page channel can overlap dumping with wire
// time and apply. The total dump cost equals a monolithic Dump of the
// same pages.
//
// A write landing between BeginDump and the batch that reads its page
// ships the newer bytes AND re-marks the page dirty, so the next round
// re-dumps it; the channel's content-hash table then elides the resend
// if the bytes did not change again (the dirty-bit false positive).
func (t *Tool) BeginDump(p *task.Process, full bool) (*Image, []mem.Addr) {
	img := &Image{Proc: p.Name}
	vmas := p.AS.VMAs()
	for _, v := range vmas {
		img.VMAs = append(img.VMAs, VMARec{Start: v.Start, Len: v.Len, Name: v.Name, Device: v.Device})
	}
	var sel []mem.Addr
	var pages []mem.Addr
	if full {
		pages = p.AS.PopulatedPages()
	} else {
		pages = p.AS.DirtyPages()
	}
	for _, a := range pages {
		if v := p.AS.FindVMA(a); v != nil && v.Device {
			continue
		}
		sel = append(sel, a)
	}
	p.AS.ClearDirty()
	walk := time.Duration(float64(t.cfg.DumpPerVMA) * math.Pow(float64(len(vmas)), t.cfg.VMAExponent))
	t.host.Sleep(t.cfg.DumpBase + walk)
	return img, sel
}

// DumpPages reads one batch of page contents at the dump cost model's
// per-page rate (the chunked counterpart of Dump's page loop).
func (t *Tool) DumpPages(p *task.Process, addrs []mem.Addr) []PageRec {
	recs := make([]PageRec, 0, len(addrs))
	for _, a := range addrs {
		recs = append(recs, PageRec{Addr: a, Data: p.AS.ReadPage(a)})
	}
	t.host.Sleep(time.Duration(len(addrs)) * t.cfg.DumpPerPage)
	return recs
}

// DirtyPageCount reports how many pages would be in the next diff dump.
func (t *Tool) DirtyPageCount(p *task.Process) int { return len(p.AS.DirtyPages()) }

// Send transfers an image to the peer host at link pace.
func (t *Tool) Send(img *Image, peer string) {
	t.host.TransferTo(peer, img.ByteSize())
}

// --- Restore ---------------------------------------------------------------

// Restore is an in-progress restoration on the migration destination.
//
// While the service still runs on the source (pre-copy), the restore
// assembles the destination instance's memory in AS, a shadow address
// space. FullRestore atomically installs AS as the process's memory and
// thaws it — the moment the migrated instance starts running on the
// destination.
type Restore struct {
	tool *Tool
	// Proc is the process being migrated.
	Proc *task.Process
	// AS is the destination instance's memory under assembly.
	AS *mem.AddressSpace

	// claimed marks VMA start addresses the plugin placed at their
	// original location (MR-backing memory, on-chip memory).
	claimed map[mem.Addr]bool
	// tempOf maps original VMA start → temporary location.
	tempOf map[mem.Addr]mem.Addr
	cursor mem.Addr

	finalized bool
	abandoned bool
}

// BeginRestore opens a restoration for the process. The process keeps
// running on the source; freezing happens at stop-and-copy.
func (t *Tool) BeginRestore(p *task.Process) *Restore {
	return &Restore{
		tool:    t,
		Proc:    p,
		AS:      mem.NewAddressSpace(),
		claimed: make(map[mem.Addr]bool),
		tempOf:  make(map[mem.Addr]mem.Addr),
		cursor:  t.cfg.TempBase,
	}
}

// MapAtOriginal places one image VMA at its original virtual address and
// restores its page content immediately. The MigrRDMA plugin calls this
// for MR-backing structures before memory restoration starts, so MRs can
// be registered with the application's own addresses (§3.2).
func (r *Restore) MapAtOriginal(img *Image, rec VMARec) error {
	if r.claimed[rec.Start] {
		return nil
	}
	if _, err := r.AS.Map(rec.Start, rec.Len, rec.Name); err != nil {
		return fmt.Errorf("criu: claim %s: %w", rec.Name, err)
	}
	r.claimed[rec.Start] = true
	r.restorePagesInto(img, rec, rec.Start)
	return nil
}

// PartialRestore maps every unclaimed, non-device VMA at a temporary
// address and fills it with the image's pages (Fig. 2b ②). Device VMAs
// are the plugin's responsibility.
func (r *Restore) PartialRestore(img *Image) error {
	for _, rec := range img.VMAs {
		if rec.Device || r.claimed[rec.Start] {
			continue
		}
		if _, ok := r.tempOf[rec.Start]; ok {
			continue
		}
		tmp := r.cursor
		r.cursor += mem.Addr(mem.PageCeil(rec.Len)) + mem.PageSize
		if _, err := r.AS.Map(tmp, rec.Len, "criu-temp:"+rec.Name); err != nil {
			return fmt.Errorf("criu: temp map %s: %w", rec.Name, err)
		}
		r.tempOf[rec.Start] = tmp
	}
	r.applyPages(img)
	return nil
}

// ApplyDiff merges one pre-copy iteration's dirty pages (Fig. 2b merge
// step).
func (r *Restore) ApplyDiff(img *Image) { r.applyPages(img) }

// applyPages writes image pages at their (possibly temporary) location.
func (r *Restore) applyPages(img *Image) {
	for _, pg := range img.Pages {
		dst, ok := r.locate(img, pg.Addr)
		if !ok {
			continue // page of a VMA the image no longer lists
		}
		_ = r.AS.WriteClean(dst, pg.Data)
	}
	r.tool.host.Sleep(time.Duration(len(img.Pages)) * r.tool.cfg.RestPerPage)
}

// zeroPage backs zero-page application on the restore side: elided
// zero pages ship a header only, but writing the zeros still pays the
// normal per-page restore cost.
var zeroPage [mem.PageSize]byte

// ApplyChunk applies one page-channel chunk at its pages' current
// (possibly temporary) locations: full-content pages plus header-only
// zero pages. img supplies the round's memory table for address
// translation. The per-page restore cost matches applyPages.
func (r *Restore) ApplyChunk(img *Image, pages []PageRec, zeros []mem.Addr) {
	n := 0
	for _, pg := range pages {
		if dst, ok := r.locate(img, pg.Addr); ok {
			_ = r.AS.WriteClean(dst, pg.Data)
			n++
		}
	}
	for _, a := range zeros {
		if dst, ok := r.locate(img, a); ok {
			_ = r.AS.WriteClean(dst, zeroPage[:])
			n++
		}
	}
	r.tool.host.Sleep(time.Duration(n) * r.tool.cfg.RestPerPage)
}

// restorePagesInto writes the pages of one VMA record at an explicit
// base (used by MapAtOriginal).
func (r *Restore) restorePagesInto(img *Image, rec VMARec, base mem.Addr) {
	n := 0
	for _, pg := range img.Pages {
		if pg.Addr >= rec.Start && pg.Addr < rec.Start+mem.Addr(rec.Len) {
			_ = r.AS.WriteClean(base+(pg.Addr-rec.Start), pg.Data)
			n++
		}
	}
	r.tool.host.Sleep(time.Duration(n) * r.tool.cfg.RestPerPage)
}

// locate maps an original page address to its current location.
func (r *Restore) locate(img *Image, a mem.Addr) (mem.Addr, bool) {
	for _, rec := range img.VMAs {
		if a >= rec.Start && a < rec.Start+mem.Addr(rec.Len) {
			if r.claimed[rec.Start] || r.finalized {
				return a, true
			}
			tmp, ok := r.tempOf[rec.Start]
			if !ok {
				return 0, false
			}
			return tmp + (a - rec.Start), true
		}
	}
	return 0, false
}

// Abandon discards a partial restore after a failed migration: the
// shadow address space and its bookkeeping are dropped, and the restore
// can never be finalized or installed. The process keeps (or resumes)
// running on the source with its own memory — nothing restored here was
// ever visible to it. Abandon is idempotent.
func (r *Restore) Abandon() {
	r.abandoned = true
	r.finalized = false
	r.AS = nil
	r.claimed = nil
	r.tempOf = nil
}

// Abandoned reports whether the restore was discarded.
func (r *Restore) Abandoned() bool { return r.abandoned }

// Finalize performs the final restore iteration: apply the last diff,
// then remap every temporary area to its original virtual address
// (Fig. 2b ⑥). The process stays frozen until FullRestore.
func (r *Restore) Finalize(final *Image) error {
	if r.abandoned {
		return fmt.Errorf("criu: finalize of abandoned restore for %s", r.Proc.Name)
	}
	r.applyPages(final)
	return r.remapTemps()
}

// FinalizeStreamed completes a restore whose final diff was already
// applied chunk by chunk through the page channel: only the
// temporary-area remaps (and their cost) remain. The process stays
// frozen until FullRestore.
func (r *Restore) FinalizeStreamed() error {
	if r.abandoned {
		return fmt.Errorf("criu: finalize of abandoned restore for %s", r.Proc.Name)
	}
	return r.remapTemps()
}

// remapTemps moves every temporary area to its original virtual
// address and marks the restore finalized.
func (r *Restore) remapTemps() error {
	for orig, tmp := range r.tempOf {
		if err := r.AS.Remap(tmp, orig); err != nil {
			return fmt.Errorf("criu: final remap: %w", err)
		}
	}
	r.tool.host.Sleep(time.Duration(len(r.tempOf)) * r.tool.cfg.RemapLat)
	r.tempOf = make(map[mem.Addr]mem.Addr)
	r.finalized = true
	return nil
}

// FullRestore installs the assembled memory as the process's address
// space and thaws it (the FullRestore command runc signals over the
// UNIX socket in §4). From this instant the migrated instance runs on
// the destination.
func (r *Restore) FullRestore() {
	if r.abandoned {
		panic("criu: FullRestore of abandoned restore")
	}
	if !r.finalized {
		panic("criu: FullRestore before Finalize")
	}
	r.Proc.AS = r.AS
	r.tool.Thaw(r.Proc)
}
