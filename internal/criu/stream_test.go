package criu

import (
	"bytes"
	"testing"
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// Restore-path coverage for the image edge cases the page channel can
// produce — diffs landing after a claimed VMA was filled early, images
// whose pages are all zero, malformed memory tables with overlapping
// records — plus the chunked-dump primitives (BeginDump/DumpPages/
// ApplyChunk/FinalizeStreamed) the pipelined transfer mode is built on.

// TestApplyDiffAfterPartialRestoreIntoClaimedVMA: the plugin claims a
// VMA at its original address (restorePagesInto fills it from the full
// image), the rest partially restores to temp, and then a pre-copy
// diff touches pages in BOTH regions. The diff must land at the
// original address for the claimed VMA and at the temp address for the
// other, and finalization must surface both updates.
func TestApplyDiffAfterPartialRestoreIntoClaimedVMA(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, mem.PageSize, "mr-buffer")
		src.AS.Map(0x20000, mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("mr-v1"))
		src.AS.Write(0x20000, []byte("heap-v1"))
		img := tool.Dump(src, true)

		r := tool.BeginRestore(src)
		if err := r.MapAtOriginal(img, img.VMAs[0]); err != nil {
			t.Fatal(err)
		}
		if err := r.PartialRestore(img); err != nil {
			t.Fatal(err)
		}
		// Source keeps running: both VMAs dirty again.
		src.AS.Write(0x10000, []byte("mr-v2"))
		src.AS.Write(0x20000, []byte("heap-v2"))
		diff := tool.Dump(src, false)
		if len(diff.Pages) != 2 {
			t.Fatalf("diff has %d pages, want 2", len(diff.Pages))
		}
		r.ApplyDiff(diff)

		// The claimed VMA is already at its original address: the diff
		// must be visible there before finalize.
		got := make([]byte, 5)
		if err := r.AS.Read(0x10000, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "mr-v2" {
			t.Errorf("claimed VMA after diff: %q, want mr-v2", got)
		}
		if err := r.Finalize(&Image{Proc: "src"}); err != nil {
			t.Fatal(err)
		}
		got = make([]byte, 7)
		if err := r.AS.Read(0x20000, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "heap-v2" {
			t.Errorf("temp VMA after finalize: %q, want heap-v2", got)
		}
	})
	s.Run()
}

// TestZeroPageImageRestores: a page that held content at pre-dump and
// was zeroed before the final diff must restore as zeros, not as the
// stale pre-dump bytes.
func TestZeroPageImageRestores(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("secret"))
		img := tool.Dump(src, true)
		r := tool.BeginRestore(src)
		if err := r.PartialRestore(img); err != nil {
			t.Fatal(err)
		}
		zeros := make([]byte, mem.PageSize)
		src.AS.Write(0x10000, zeros)
		diff := tool.Dump(src, false)
		if len(diff.Pages) != 1 || !mem.AllZero(diff.Pages[0].Data) {
			t.Fatalf("diff should carry one all-zero page, got %d pages", len(diff.Pages))
		}
		r.ApplyDiff(diff)
		if err := r.Finalize(&Image{Proc: "src"}); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, mem.PageSize)
		if err := r.AS.Read(0x10000, got); err != nil {
			t.Fatal(err)
		}
		if !mem.AllZero(got) {
			t.Errorf("zeroed page restored with stale content %q", got[:6])
		}
	})
	s.Run()
}

// TestOverlappingVMARecords: duplicate records for the same VMA are
// tolerated (temp-mapped once, pages applied once), while genuinely
// overlapping distinct records fail at finalize with an error instead
// of silently corrupting the first VMA's remapped content.
func TestOverlappingVMARecords(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("dup"))
		img := tool.Dump(src, true)

		// Duplicate record, same start: dedup on the temp table.
		img.VMAs = append(img.VMAs, img.VMAs[0])
		r := tool.BeginRestore(src)
		if err := r.PartialRestore(img); err != nil {
			t.Fatalf("duplicate record rejected: %v", err)
		}
		if err := r.Finalize(&Image{Proc: "src"}); err != nil {
			t.Fatalf("duplicate record broke finalize: %v", err)
		}
		got := make([]byte, 3)
		r.AS.Read(0x10000, got)
		if string(got) != "dup" {
			t.Errorf("content after duplicate-record restore: %q", got)
		}

		// Overlapping distinct records: a second record claims a range
		// straddling the first. The remap collision must surface as an
		// error, not corruption.
		img2 := &Image{Proc: "src", VMAs: []VMARec{
			{Start: 0x30000, Len: 2 * mem.PageSize, Name: "a"},
			{Start: 0x30000 + mem.PageSize, Len: 2 * mem.PageSize, Name: "b"},
		}}
		r2 := tool.BeginRestore(src)
		if err := r2.PartialRestore(img2); err != nil {
			t.Fatalf("partial restore of overlapping records: %v", err)
		}
		if err := r2.Finalize(&Image{Proc: "src"}); err == nil {
			t.Error("finalize of overlapping VMA records succeeded; want remap collision error")
		}
	})
	s.Run()
}

// TestBeginDumpMatchesDump: the chunked dump selects exactly the pages
// a monolithic Dump would ship (device VMAs excluded, dirty tracking
// reset) and BeginDump+DumpPages pays the same total simulated cost.
func TestBeginDumpMatchesDump(t *testing.T) {
	build := func(p *task.Process) {
		p.AS.Map(0x10000, 8*mem.PageSize, "heap")
		p.AS.MapDevice(0x90000, mem.PageSize, "on-chip")
		p.AS.Write(0x10000, []byte("a"))
		p.AS.Write(0x10000+3*mem.PageSize, []byte("b"))
		p.AS.Write(0x90000, []byte("dev"))
	}

	s := sim.New(1)
	tool, _ := newTool(s)
	var monoPages []PageRec
	var monoCost time.Duration
	s.Go("mono", func() {
		p := task.New(s, "p")
		build(p)
		t0 := s.Now()
		img := tool.Dump(p, true)
		monoCost = s.Now() - t0
		monoPages = img.Pages
		if n := len(p.AS.DirtyPages()); n != 0 {
			t.Errorf("mono dump left %d dirty pages", n)
		}
	})
	s.Run()

	s2 := sim.New(1)
	tool2, _ := newTool(s2)
	s2.Go("chunked", func() {
		p := task.New(s2, "p")
		build(p)
		t0 := s2.Now()
		img, addrs := tool2.BeginDump(p, true)
		var recs []PageRec
		for off := 0; off < len(addrs); off += 1 { // one-page batches: worst case
			recs = append(recs, tool2.DumpPages(p, addrs[off:off+1])...)
		}
		cost := s2.Now() - t0
		if n := len(p.AS.DirtyPages()); n != 0 {
			t.Errorf("chunked dump left %d dirty pages", n)
		}
		if len(recs) != len(monoPages) {
			t.Fatalf("chunked dump read %d pages, mono %d", len(recs), len(monoPages))
		}
		for i := range recs {
			if recs[i].Addr != monoPages[i].Addr || !bytes.Equal(recs[i].Data, monoPages[i].Data) {
				t.Errorf("page %d differs: %#x vs %#x", i, uint64(recs[i].Addr), uint64(monoPages[i].Addr))
			}
		}
		for _, a := range addrs {
			if a >= 0x90000 && a < 0x90000+mem.PageSize {
				t.Error("device page selected by BeginDump")
			}
		}
		if cost != monoCost {
			t.Errorf("chunked dump cost %v, monolithic %v", cost, monoCost)
		}
		if len(img.VMAs) != 2 {
			t.Errorf("memory table has %d records, want 2", len(img.VMAs))
		}
	})
	s2.Run()
}

// TestApplyChunkTranslatesAndZeroFills: chunks apply at temp addresses
// before finalize, zero pages fill from the shared zero page, and
// FinalizeStreamed performs only the remaining remap.
func TestApplyChunkTranslatesAndZeroFills(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, 2*mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("seed"))
		img := tool.Dump(src, true)
		r := tool.BeginRestore(src)
		if err := r.PartialRestore(img); err != nil {
			t.Fatal(err)
		}
		// Stream a chunk: one content page, one header-only zero page.
		pg := make([]byte, mem.PageSize)
		copy(pg, "chunked")
		r.ApplyChunk(img, []PageRec{{Addr: 0x10000, Data: pg}}, []mem.Addr{0x10000 + mem.PageSize})

		// Before finalize the original address must still be unmapped
		// (content lives at temp).
		if r.AS.Mapped(0x10000, 1) {
			t.Error("chunk applied at the original address before finalize")
		}
		if err := r.FinalizeStreamed(); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 7)
		if err := r.AS.Read(0x10000, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "chunked" {
			t.Errorf("streamed page after finalize: %q", got)
		}
		z := make([]byte, mem.PageSize)
		if err := r.AS.Read(0x10000+mem.PageSize, z); err != nil {
			t.Fatal(err)
		}
		if !mem.AllZero(z) {
			t.Error("zero page not zero-filled")
		}
	})
	s.Run()
}

// TestFinalizeStreamedRefusesAbandoned mirrors Finalize's abandoned
// check on the streamed path.
func TestFinalizeStreamedRefusesAbandoned(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	p := task.New(s, "p")
	s.Go("test", func() {
		r := tool.BeginRestore(p)
		r.Abandon()
		if err := r.FinalizeStreamed(); err == nil {
			t.Error("FinalizeStreamed of abandoned restore succeeded")
		}
	})
	s.Run()
}
