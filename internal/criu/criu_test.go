package criu

import (
	"bytes"
	"testing"
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// fakeHost satisfies HostServices on a bare scheduler with an
// instantaneous (but counted) transfer path.
type fakeHost struct {
	s           *sim.Scheduler
	transferred int
}

func (f *fakeHost) Sleep(d time.Duration)         { f.s.Sleep(d) }
func (f *fakeHost) Now() time.Duration            { return f.s.Now() }
func (f *fakeHost) Node() string                  { return "fake" }
func (f *fakeHost) TransferTo(peer string, n int) { f.transferred += n }

func newTool(s *sim.Scheduler) (*Tool, *fakeHost) {
	h := &fakeHost{s: s}
	return New(h, Config{}), h
}

func TestDumpCapturesPopulatedThenDirty(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	p := task.New(s, "p")
	s.Go("test", func() {
		p.AS.Map(0x1000, 16*mem.PageSize, "heap")
		p.AS.Write(0x1000, []byte("a"))
		p.AS.Write(0x1000+4*mem.PageSize, []byte("b"))
		full := tool.Dump(p, true)
		if len(full.Pages) != 2 {
			t.Errorf("full dump has %d pages, want 2", len(full.Pages))
		}
		// Nothing dirtied since: the diff must be empty.
		if diff := tool.Dump(p, false); len(diff.Pages) != 0 {
			t.Errorf("clean diff has %d pages", len(diff.Pages))
		}
		p.AS.Write(0x1000+8*mem.PageSize, []byte("c"))
		if diff := tool.Dump(p, false); len(diff.Pages) != 1 {
			t.Errorf("diff has %d pages, want 1", len(diff.Pages))
		}
	})
	s.Run()
}

func TestDumpSkipsDeviceVMAs(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	p := task.New(s, "p")
	s.Go("test", func() {
		p.AS.Map(0x1000, mem.PageSize, "heap")
		p.AS.MapDevice(0x9000, mem.PageSize, "on-chip")
		p.AS.Write(0x1000, []byte{1})
		p.AS.Write(0x9000, []byte{2})
		img := tool.Dump(p, true)
		for _, pg := range img.Pages {
			if pg.Addr == 0x9000 {
				t.Error("device page dumped")
			}
		}
		found := false
		for _, v := range img.VMAs {
			if v.Start == 0x9000 && v.Device {
				found = true
			}
		}
		if !found {
			t.Error("device VMA missing from memory table")
		}
	})
	s.Run()
}

func TestPartialRestoreUsesTempAddresses(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, 2*mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("payload"))
		img := tool.Dump(src, true)

		r := tool.BeginRestore(src)
		if err := r.PartialRestore(img); err != nil {
			t.Fatal(err)
		}
		// §3.2: the memory is NOT at its original address during
		// partial restore…
		if r.AS.Mapped(0x10000, 1) {
			t.Error("partial restore mapped memory at the original address")
		}
		// …and moves there only at Finalize.
		if err := r.Finalize(&Image{Proc: "src"}); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 7)
		if err := r.AS.Read(0x10000, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("payload")) {
			t.Errorf("restored content %q", got)
		}
	})
	s.Run()
}

func TestMapAtOriginalClaimsEarly(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, mem.PageSize, "mr-buffer")
		src.AS.Map(0x20000, mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("mr-data"))
		img := tool.Dump(src, true)

		r := tool.BeginRestore(src)
		// The plugin claims the MR VMA first…
		if err := r.MapAtOriginal(img, img.VMAs[0]); err != nil {
			t.Fatal(err)
		}
		if !r.AS.Mapped(0x10000, 1) {
			t.Fatal("claimed VMA not at original address")
		}
		got := make([]byte, 7)
		r.AS.Read(0x10000, got)
		if !bytes.Equal(got, []byte("mr-data")) {
			t.Errorf("claimed content %q", got)
		}
		// …and PartialRestore leaves it alone while temp-mapping the rest.
		if err := r.PartialRestore(img); err != nil {
			t.Fatal(err)
		}
		if r.AS.Mapped(0x20000, 1) {
			t.Error("unclaimed VMA landed at its original address during partial restore")
		}
	})
	s.Run()
}

func TestApplyDiffMergesIntoTemp(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	src := task.New(s, "src")
	s.Go("test", func() {
		src.AS.Map(0x10000, mem.PageSize, "heap")
		src.AS.Write(0x10000, []byte("v1"))
		img := tool.Dump(src, true)
		r := tool.BeginRestore(src)
		r.PartialRestore(img)
		// Source keeps running and dirties the page.
		src.AS.Write(0x10000, []byte("v2"))
		diff := tool.Dump(src, false)
		r.ApplyDiff(diff)
		r.Finalize(&Image{Proc: "src"})
		got := make([]byte, 2)
		r.AS.Read(0x10000, got)
		if string(got) != "v2" {
			t.Errorf("after diff merge: %q", got)
		}
	})
	s.Run()
}

func TestFullRestoreSwapsAddressSpaceAndThaws(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	p := task.New(s, "p")
	s.Go("test", func() {
		p.AS.Map(0x10000, mem.PageSize, "heap")
		p.AS.Write(0x10000, []byte("x"))
		img := tool.Dump(p, true)
		r := tool.BeginRestore(p)
		r.PartialRestore(img)
		tool.Freeze(p)
		if !p.Frozen() {
			t.Fatal("freeze did not freeze")
		}
		r.Finalize(&Image{Proc: "p"})
		r.FullRestore()
		if p.Frozen() {
			t.Fatal("full restore did not thaw")
		}
		if p.AS != r.AS {
			t.Fatal("address space not swapped")
		}
	})
	s.Run()
}

func TestDumpCostGrowsSuperlinearly(t *testing.T) {
	s := sim.New(1)
	// Suppress the fixed dump cost so only the VMA walk is measured.
	tool := New(&fakeHost{s: s}, Config{DumpBase: time.Nanosecond})
	cost := func(vmas int) time.Duration {
		p := task.New(s, "p")
		var d time.Duration
		s.Go("measure", func() {
			for i := 0; i < vmas; i++ {
				p.AS.Map(mem.Addr(0x10000+i*0x10000), mem.PageSize, "m")
			}
			start := s.Now()
			tool.Dump(p, true)
			d = s.Now() - start
		})
		s.Run()
		return d
	}
	c10, c100 := cost(10), cost(100)
	if float64(c100) < 10*float64(c10) {
		t.Fatalf("dump cost not superlinear: 10 VMAs %v, 100 VMAs %v", c10, c100)
	}
}

func TestFullRestorePanicsBeforeFinalize(t *testing.T) {
	s := sim.New(1)
	tool, _ := newTool(s)
	p := task.New(s, "p")
	s.Go("test", func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r := tool.BeginRestore(p)
		r.FullRestore()
	})
	s.Run()
}
