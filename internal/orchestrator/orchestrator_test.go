package orchestrator

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/fabric"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// rig is a topology testbed: racks×perRack hosts named rRhH, one
// daemon each.
type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
}

func newRig(seed int64, racks, perRack int) *rig {
	cfg := cluster.FastCheckpointTestbed(seed)
	cfg.Fabric.Topology = fabric.Topology{
		Racks: racks, HostsPerRack: perRack, UplinkRate: 50e9,
	}
	var names []string
	for r := 0; r < racks; r++ {
		for h := 0; h < perRack; h++ {
			names = append(names, fmt.Sprintf("r%dh%d", r, h))
		}
	}
	cl := cluster.New(cfg, names...)
	rg := &rig{cl: cl, daemons: make(map[string]*core.Daemon)}
	for _, n := range cl.Names() {
		rg.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	return rg
}

type workload struct {
	cli  *perftest.Client
	srv  *perftest.Server
	cont *runc.Container
}

// startPair launches a perftest server on sNode and a client container
// on cNode; the client container is the drain target.
func (r *rig) startPair(name, cNode, sNode string) *workload {
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 50 * time.Microsecond,
	}
	w := &workload{
		srv: perftest.NewServer(r.cl.Sched, "srv-"+name, opts),
		cli: perftest.NewClient(r.cl.Sched, "cli-"+name, opts, perftest.Target{Node: sNode, Name: "srv-" + name}),
	}
	srvCont := runc.NewContainer(r.cl.Host(sNode), "srv-"+name+"-cont")
	srvCont.Start(func(tp *task.Process) { w.srv.Run(tp, r.daemons[sNode]) })
	w.cont = runc.NewContainer(r.cl.Host(cNode), "cli-"+name+"-cont")
	r.cl.Sched.Go("start-"+name, func() {
		w.srv.WaitReady()
		w.cont.Start(func(tp *task.Process) { w.cli.Run(tp, r.daemons[cNode]) })
	})
	return w
}

func (w *workload) stop() {
	w.cli.Stop()
	w.cli.Wait()
	w.srv.Stop()
}

func rackSelector(rack int) func(h *cluster.Host) bool {
	return func(h *cluster.Host) bool { return h.Rack == rack }
}

func hostSelector(name string) func(h *cluster.Host) bool {
	return func(h *cluster.Host) bool { return h.Name == name }
}

// TestDrainEvacuatesRack drains all of rack 0: every registered
// container there must land on a non-rack-0 host, within MaxParallel,
// and a second drain claiming one of the same containers mid-flight
// must expand to Conflict.
func TestDrainEvacuatesRack(t *testing.T) {
	r := newRig(41, 2, 3)
	w0 := r.startPair("p0", "r0h0", "r1h2")
	w1 := r.startPair("p1", "r0h1", "r1h2")
	o := New(Config{CL: r.cl, Daemons: r.daemons, Opts: runc.DefaultMigrateOptions()})
	o.Register(Workload{C: w0.cont})
	o.Register(Workload{C: w1.cont})
	var d, overlap *Drain
	ran := false
	r.cl.Sched.Go("driver", func() {
		w0.cli.WaitReady()
		w1.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		d = o.Submit(&Drain{Selector: rackSelector(0), MaxParallel: 2, BlackoutSLO: time.Second})
		overlap = o.Submit(&Drain{Selector: hostSelector("r0h0")})
		d.Wait()
		overlap.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w0.stop()
		w1.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if d.Accepted() != 2 || d.Conflicted() != 0 {
		t.Fatalf("drain expansion: accepted=%d conflicted=%d, want 2/0", d.Accepted(), d.Conflicted())
	}
	for _, m := range d.Migrations {
		if m.State() != Done {
			t.Fatalf("%s state = %v (err %v), want done", m.ID, m.State(), m.Err)
		}
		if r.cl.Host(m.Dst).Rack == 0 {
			t.Errorf("%s placed on %s, still in the draining rack", m.ID, m.Dst)
		}
		if m.Attempts != 1 {
			t.Errorf("%s attempts = %d, want 1", m.ID, m.Attempts)
		}
		if !m.SLOMet || m.Blackout <= 0 {
			t.Errorf("%s blackout %v under SLO 1s: SLOMet=%v", m.ID, m.Blackout, m.SLOMet)
		}
	}
	// The overlapping drain saw r0h0's container already claimed.
	if overlap.Conflicted() != 1 || overlap.Accepted() != 0 {
		t.Fatalf("overlap expansion: accepted=%d conflicted=%d, want 0/1",
			overlap.Accepted(), overlap.Conflicted())
	}
	if len(d.SLOViolations()) != 0 {
		t.Errorf("unexpected SLO violations: %v", d.SLOViolations())
	}
	// Workloads survived the drain.
	for _, w := range []*workload{w0, w1} {
		if len(w.cli.Stats.Errors) != 0 || len(w.srv.Stats.Errors) != 0 {
			t.Errorf("workload errors: cli=%v srv=%v", w.cli.Stats.Errors, w.srv.Stats.Errors)
		}
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("orchestrator", "migrations_done"); got != 2 {
		t.Errorf("migrations_done = %d, want 2", got)
	}
	if got := snap.Sum("orchestrator", "migrations_conflicted"); got != 1 {
		t.Errorf("migrations_conflicted = %d, want 1", got)
	}
}

// TestDrainPrefersSameRack drains one host of a rack with spare
// same-rack capacity: the same-rack spare must win over equally loaded
// cross-rack hosts, keeping the move off the spine.
func TestDrainPrefersSameRack(t *testing.T) {
	r := newRig(42, 2, 3)
	w := r.startPair("p0", "r0h0", "r1h2")
	o := New(Config{CL: r.cl, Daemons: r.daemons, Opts: runc.DefaultMigrateOptions()})
	o.Register(Workload{C: w.cont})
	var d *Drain
	ran := false
	r.cl.Sched.Go("driver", func() {
		w.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		before0, _ := r.cl.Net.UplinkBytes(0)
		d = o.Submit(&Drain{Selector: hostSelector("r0h0")})
		d.Wait()
		after0, _ := r.cl.Net.UplinkBytes(0)
		if after0-before0 > 1<<20 {
			t.Errorf("same-rack drain pushed %d bytes over the rack 0 uplink", after0-before0)
		}
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	m := d.Migrations[0]
	if m.State() != Done {
		t.Fatalf("state = %v (err %v)", m.State(), m.Err)
	}
	if m.Dst != "r0h1" {
		t.Errorf("placed on %s, want the same-rack spare r0h1", m.Dst)
	}
	if w.cont.Host.Name != m.Dst {
		t.Errorf("container lives on %s, migration says %s", w.cont.Host.Name, m.Dst)
	}
}

// TestDrainRetriesWithBackoff: an attempt that aborts mid-workflow
// must roll back, wait out the exponential backoff, and retry — and
// the executor job IDs must carry the per-host prefix.
func TestDrainRetriesWithBackoff(t *testing.T) {
	r := newRig(43, 2, 2)
	w := r.startPair("p0", "r0h0", "r1h1")
	o := New(Config{
		CL: r.cl, Daemons: r.daemons, Opts: runc.DefaultMigrateOptions(),
		BackoffBase: 2 * time.Millisecond,
	})
	attempt := 0
	o.Register(Workload{C: w.cont, Inject: func(ph string) error {
		if ph == "predump" {
			attempt++
		}
		if ph == "suspend-wbs" && attempt == 1 {
			return fmt.Errorf("chaos abort")
		}
		return nil
	}})
	var stages []string
	o.OnStage = func(m *Migration, stage string) { stages = append(stages, m.ID+":"+stage) }
	var d *Drain
	ran := false
	r.cl.Sched.Go("driver", func() {
		w.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		d = o.Submit(&Drain{Selector: hostSelector("r0h0"), Retries: 2})
		d.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	m := d.Migrations[0]
	if m.State() != Done {
		t.Fatalf("state = %v (err %v), want done after retry", m.State(), m.Err)
	}
	if m.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", m.Attempts)
	}
	if m.LastErr == nil || !strings.Contains(m.LastErr.Error(), "chaos abort") {
		t.Errorf("LastErr = %v, want the aborted attempt's error", m.LastErr)
	}
	if len(stages) == 0 {
		t.Fatal("OnStage observed nothing")
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("orchestrator", "migrations_retried"); got != 1 {
		t.Errorf("migrations_retried = %d, want 1", got)
	}
	// The per-host executor's jobs carry the source-host ID prefix.
	found := false
	for _, j := range o.execs["r0h0"].Jobs() {
		if strings.HasPrefix(j.ID, "r0h0/m") {
			found = true
		}
	}
	if !found {
		t.Error("executor job IDs missing the r0h0/ prefix")
	}
}

// TestDrainAllHostsFails: a drain selecting every host leaves no
// placement candidates; its migrations must fail cleanly with the
// no-destination error rather than wedge.
func TestDrainAllHostsFails(t *testing.T) {
	r := newRig(44, 1, 3)
	w := r.startPair("p0", "r0h0", "r0h2")
	o := New(Config{CL: r.cl, Daemons: r.daemons, Opts: runc.DefaultMigrateOptions()})
	o.Register(Workload{C: w.cont})
	var d *Drain
	ran := false
	r.cl.Sched.Go("driver", func() {
		w.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		d = o.Submit(&Drain{Selector: func(h *cluster.Host) bool { return true }})
		d.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	m := d.Migrations[0]
	if m.State() != Failed {
		t.Fatalf("state = %v, want failed", m.State())
	}
	if m.Err == nil || !strings.Contains(m.Err.Error(), "no feasible destination") {
		t.Fatalf("err = %v, want no-feasible-destination", m.Err)
	}
	if got := r.cl.Metrics.Snapshot().Sum("orchestrator", "migrations_failed"); got != 1 {
		t.Errorf("migrations_failed = %d, want 1", got)
	}
	// The workload is untouched on its original host.
	if w.cont.Host.Name != "r0h0" {
		t.Errorf("container moved to %s despite the failed drain", w.cont.Host.Name)
	}
}
