package orchestrator

// Candidate is one destination host offered to a placement policy.
type Candidate struct {
	Host string
	// Rack is the host's rack under the two-tier fabric topology (0 on
	// a flat fabric).
	Rack int
	// Load is the orchestrator's score for the host: resident
	// registered containers plus in-flight migrations targeting it.
	Load int
}

// PlacementPolicy picks a destination for a migration off src.
// Candidates arrive in sorted host-name order and never include src or
// a draining host; implementations must be deterministic functions of
// their input (the chaos golden hashes replay drains byte-for-byte).
// Returning "" means no feasible destination — the migration fails.
type PlacementPolicy interface {
	Place(src Candidate, cands []Candidate) string
}

// LeastLoaded picks the least-loaded candidate. With PreferSameRack it
// breaks load ties toward the source's rack, keeping drain traffic off
// the oversubscribed spine uplinks; remaining ties go to the
// lexicographically first host, which together with the sorted
// candidate order makes placement fully deterministic.
type LeastLoaded struct {
	PreferSameRack bool
}

// Place implements PlacementPolicy.
func (p LeastLoaded) Place(src Candidate, cands []Candidate) string {
	best := -1
	for i, c := range cands {
		if best < 0 || p.better(src, c, cands[best]) {
			best = i
		}
	}
	if best < 0 {
		return ""
	}
	return cands[best].Host
}

// better reports whether a beats b for a migration off src: lower load
// first, then (optionally) same-rack, then the earlier (smaller) name —
// a strict order, so the first optimum in candidate order wins.
func (p LeastLoaded) better(src, a, b Candidate) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if p.PreferSameRack {
		aSame, bSame := a.Rack == src.Rack, b.Rack == src.Rack
		if aSame != bSame {
			return aSame
		}
	}
	return a.Host < b.Host
}
