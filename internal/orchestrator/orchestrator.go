// Package orchestrator is the datacenter-scale drain control plane
// (ROADMAP item 1): declarative KubeVirt-style objects over the
// per-host migration executors. A Drain request — "move every
// container off the hosts this selector matches, at most MaxParallel
// at a time, each under this blackout SLO" — expands into per-host
// Migration objects with accepted/conflict semantics; a pluggable
// PlacementPolicy picks destinations (least-loaded, preferring
// same-rack moves that spare the oversubscribed spine uplinks); and
// aborted migrations — surfaced by the phase engine's rollback — are
// retried with exponential backoff. migmgr is demoted to the per-host
// admission executor beneath this layer: one Manager per source host,
// ID-prefixed so concurrent drains stay distinguishable in daemon
// state, timelines and metric labels.
package orchestrator

import (
	"fmt"
	"strconv"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/metrics"
	"migrrdma/internal/migmgr"
	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
)

// MigState is a Migration's lifecycle position.
type MigState int

const (
	// Pending: accepted, waiting for a drain slot.
	Pending MigState = iota
	// Running: an attempt is in flight on the source executor.
	Running
	// Done: the container moved and the workload resumed.
	Done
	// Failed: the retry budget is exhausted or no destination exists.
	Failed
	// Conflict: rejected at expansion — the container already has an
	// active Migration under another drain.
	Conflict
)

// String renders the state.
func (s MigState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Conflict:
		return "conflict"
	}
	return "unknown"
}

// Migration is the per-container object a Drain expands into.
type Migration struct {
	// ID is "<drain>/<src>/<container>", e.g. "d1/r0h1/kv-cont".
	ID string
	C  *runc.Container
	// Src is the container's host at expansion time; Dst is filled by
	// the placement policy when the migration starts (the container may
	// land elsewhere on retry if loads shifted).
	Src, Dst string

	state    MigState
	Attempts int
	// Blackout is the service blackout of the successful attempt.
	Blackout time.Duration
	// SLOMet reports Blackout <= the drain's BlackoutSLO (true when no
	// SLO was set).
	SLOMet bool
	// LastErr is the most recent aborted attempt's error, kept even
	// when a retry later succeeds.
	LastErr error
	Err     error
	Report  *runc.Report

	Started, Finished time.Duration
}

// State returns the migration's lifecycle position.
func (m *Migration) State() MigState { return m.state }

// Drain is the declarative rack/host evacuation request.
type Drain struct {
	// Selector matches the hosts to evacuate.
	Selector func(h *cluster.Host) bool
	// BlackoutSLO is the per-migration service-blackout objective;
	// 0 means none. Violations are recorded, not enforced — the
	// operator reads them off the drain report.
	BlackoutSLO time.Duration
	// MaxParallel caps concurrently running migrations of this drain
	// (<= 0 means 1).
	MaxParallel int
	// Retries is the per-migration retry budget on abort (rollback and
	// resubmit with exponential backoff).
	Retries int

	// ID is assigned at submission ("d1", "d2", …).
	ID string
	// Migrations is the expansion, in deterministic host/registration
	// order; includes Conflict rejections.
	Migrations []*Migration

	orch *Orchestrator
	done bool
}

// Accepted counts migrations that were admitted (everything except
// Conflict).
func (d *Drain) Accepted() int {
	n := 0
	for _, m := range d.Migrations {
		if m.state != Conflict {
			n++
		}
	}
	return n
}

// Conflicted counts expansion-time rejections.
func (d *Drain) Conflicted() int { return len(d.Migrations) - d.Accepted() }

// Done reports whether every accepted migration finished.
func (d *Drain) Done() bool { return d.done }

// Wait parks the calling proc until the drain finished.
func (d *Drain) Wait() {
	for !d.done {
		d.orch.changed.Wait()
	}
}

// SLOViolations returns the completed migrations that missed the
// blackout SLO.
func (d *Drain) SLOViolations() []*Migration {
	var out []*Migration
	for _, m := range d.Migrations {
		if m.state == Done && !m.SLOMet {
			out = append(out, m)
		}
	}
	return out
}

// Config parameterises the orchestrator.
type Config struct {
	CL      *cluster.Cluster
	Daemons map[string]*core.Daemon
	// Policy picks destinations; nil means LeastLoaded preferring
	// same-rack moves.
	Policy PlacementPolicy
	// Opts is the migration option template every attempt uses.
	Opts runc.MigrateOptions
	// HostCap is each per-host executor's admission cap (<= 0 means 2):
	// a source host checkpoints at most this many containers at once
	// regardless of drain-level parallelism.
	HostCap int
	// BackoffBase is the delay before the first retry, doubling per
	// attempt (0 means 1ms); BackoffMax caps it (0 means 32×base).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Workload is a registered migratable container.
type Workload struct {
	C          *runc.Container
	ExtraPlugs int
	// Inject is threaded to the executor's per-phase fault hook.
	Inject func(phase string) error
}

// Orchestrator owns the cluster-wide drain state.
type Orchestrator struct {
	cfg     Config
	sched   *sim.Scheduler
	changed *sim.Cond

	// workloads in registration order — the deterministic expansion
	// order within one host.
	workloads []Workload
	// active maps containers to their in-flight accepted Migration; the
	// source of Conflict rejections.
	active map[*runc.Container]*Migration
	// execs are the per-source-host migmgr executors, created lazily.
	execs map[string]*migmgr.Manager
	// execJobs maps each executor's jobs back to their Migrations for
	// the OnStage forwarder.
	execJobs map[*migmgr.Manager]map[*migmgr.Job]*Migration
	// incoming counts migrations currently targeting each host — the
	// in-flight half of the placement load score.
	incoming map[string]int
	// draining marks hosts under an unfinished drain; they are never
	// placement candidates.
	draining map[string]int

	nextDrain int
	drains    []*Drain

	mAccepted, mConflicted *metrics.Counter
	mDone, mFailed         *metrics.Counter
	mRetried, mSLOMissed   *metrics.Counter

	// OnStage observes every stage transition of every drain migration;
	// it runs on the migration's driver proc. Chaos schedules arm
	// phase-anchored faults from it.
	OnStage func(m *Migration, stage string)
}

// New builds an orchestrator over a fused cluster. (Drain orchestration
// is control-plane work on the cluster scheduler; the sharded cluster's
// per-host schedulers have no place for it.)
func New(cfg Config) *Orchestrator {
	if cfg.CL.Sched == nil {
		panic("orchestrator: needs a fused cluster (sharded clusters have no cluster-wide scheduler)")
	}
	if cfg.Policy == nil {
		cfg.Policy = LeastLoaded{PreferSameRack: true}
	}
	if cfg.HostCap <= 0 {
		cfg.HostCap = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 32 * cfg.BackoffBase
	}
	o := &Orchestrator{
		cfg:      cfg,
		sched:    cfg.CL.Sched,
		changed:  sim.NewCond(cfg.CL.Sched, "orchestrator"),
		active:   make(map[*runc.Container]*Migration),
		execs:    make(map[string]*migmgr.Manager),
		execJobs: make(map[*migmgr.Manager]map[*migmgr.Job]*Migration),
		incoming: make(map[string]int),
		draining: make(map[string]int),
	}
	if reg := cfg.CL.Metrics; reg != nil {
		o.mAccepted = reg.Counter("orchestrator", "migrations_accepted", nil)
		o.mConflicted = reg.Counter("orchestrator", "migrations_conflicted", nil)
		o.mDone = reg.Counter("orchestrator", "migrations_done", nil)
		o.mFailed = reg.Counter("orchestrator", "migrations_failed", nil)
		o.mRetried = reg.Counter("orchestrator", "migrations_retried", nil)
		o.mSLOMissed = reg.Counter("orchestrator", "slo_violations", nil)
	}
	return o
}

// Register adds a migratable workload to the inventory. Drains only
// move registered containers.
func (o *Orchestrator) Register(w Workload) { o.workloads = append(o.workloads, w) }

// Drains returns every submitted drain in submission order.
func (o *Orchestrator) Drains() []*Drain {
	out := make([]*Drain, len(o.drains))
	copy(out, o.drains)
	return out
}

// exec returns (creating if needed) the source host's executor.
func (o *Orchestrator) exec(host string) *migmgr.Manager {
	if m, ok := o.execs[host]; ok {
		return m
	}
	m := migmgr.New(o.cfg.CL, o.cfg.Daemons, o.cfg.HostCap)
	m.IDPrefix = host + "/"
	o.execs[host] = m
	return m
}

// Submit expands a drain into per-container Migrations and launches
// its scheduling loop. Containers already claimed by another drain are
// rejected as Conflict; everything else is accepted. Expansion walks
// hosts in sorted-name order and each host's containers in
// registration order, so the same drain against the same cluster
// always expands identically.
func (o *Orchestrator) Submit(d *Drain) *Drain {
	o.nextDrain++
	d.ID = "d" + strconv.Itoa(o.nextDrain)
	d.orch = o
	if d.MaxParallel <= 0 {
		d.MaxParallel = 1
	}
	for _, host := range o.cfg.CL.Names() {
		if !d.Selector(o.cfg.CL.Host(host)) {
			continue
		}
		o.draining[host]++
		for _, w := range o.workloads {
			if w.C.Host.Name != host {
				continue
			}
			m := &Migration{
				ID:  d.ID + "/" + host + "/" + w.C.Name,
				C:   w.C,
				Src: host,
			}
			if o.active[w.C] != nil {
				m.state = Conflict
				m.Err = migmgr.ErrConflict
				if o.mConflicted != nil {
					o.mConflicted.Inc()
				}
			} else {
				m.state = Pending
				o.active[w.C] = m
				if o.mAccepted != nil {
					o.mAccepted.Inc()
				}
			}
			d.Migrations = append(d.Migrations, m)
		}
	}
	o.drains = append(o.drains, d)
	o.sched.Go("orch/"+d.ID, func() { o.run(d) })
	return d
}

// run is the drain scheduling loop: keep up to MaxParallel accepted
// migrations in flight until all finished.
func (o *Orchestrator) run(d *Drain) {
	running := 0
	next := 0
	for {
		for running < d.MaxParallel && next < len(d.Migrations) {
			m := d.Migrations[next]
			next++
			if m.state != Pending {
				continue
			}
			running++
			o.launch(d, m)
		}
		if running == 0 && next >= len(d.Migrations) {
			break
		}
		o.changed.Wait()
		// Count back the in-flight set: launches decrement via state.
		running = 0
		for _, m := range d.Migrations {
			if m.state == Running {
				running++
			}
		}
	}
	for _, host := range o.cfg.CL.Names() {
		if d.Selector(o.cfg.CL.Host(host)) {
			o.draining[host]--
		}
	}
	d.done = true
	o.changed.Broadcast()
}

// launch drives one migration through attempts and backoff on its own
// proc.
func (o *Orchestrator) launch(d *Drain, m *Migration) {
	m.state = Running
	m.Started = o.sched.Now()
	o.sched.Go("orch/"+m.ID, func() {
		defer func() {
			m.Finished = o.sched.Now()
			delete(o.active, m.C)
			o.changed.Broadcast()
		}()
		var w Workload
		for _, cand := range o.workloads {
			if cand.C == m.C {
				w = cand
			}
		}
		for attempt := 0; ; attempt++ {
			src := m.C.Host.Name // re-resolved: a retried container drains from wherever it lives
			dst := o.place(d, src)
			if dst == "" {
				m.state = Failed
				m.Err = fmt.Errorf("orchestrator: %s: no feasible destination", m.ID)
				if o.mFailed != nil {
					o.mFailed.Inc()
				}
				return
			}
			m.Src, m.Dst = src, dst
			m.Attempts++
			o.incoming[dst]++
			j, err := o.exec(src).Submit(migmgr.Spec{
				C: m.C, Dst: dst, Opts: o.cfg.Opts,
				ExtraPlugs: w.ExtraPlugs, Inject: w.Inject,
			})
			if err != nil {
				// The orchestrator serializes per container, so an executor
				// conflict is a bookkeeping bug, not an operational state.
				panic("orchestrator: executor rejected " + m.ID + ": " + err.Error())
			}
			o.hookStages(j, m)
			j.Wait()
			o.incoming[dst]--
			m.Report = j.Report
			if j.Err == nil {
				m.state = Done
				m.Blackout = j.Report.ServiceBlackout
				m.SLOMet = d.BlackoutSLO == 0 || m.Blackout <= d.BlackoutSLO
				if o.mDone != nil {
					o.mDone.Inc()
				}
				if !m.SLOMet && o.mSLOMissed != nil {
					o.mSLOMissed.Inc()
				}
				return
			}
			m.LastErr = j.Err
			if attempt >= d.Retries {
				m.state = Failed
				m.Err = j.Err
				if o.mFailed != nil {
					o.mFailed.Inc()
				}
				return
			}
			// Aborted and rolled back: retry after exponential backoff so a
			// persistently faulty path stops hammering the fabric.
			if o.mRetried != nil {
				o.mRetried.Inc()
			}
			delay := o.cfg.BackoffBase << attempt
			if delay > o.cfg.BackoffMax || delay <= 0 {
				delay = o.cfg.BackoffMax
			}
			o.sched.Sleep(delay)
		}
	})
}

// hookStages forwards the executor's stage stream for one job to the
// orchestrator's OnStage observer, tagged with the owning Migration.
func (o *Orchestrator) hookStages(j *migmgr.Job, m *Migration) {
	mgr := o.execs[m.Src]
	if mgr.OnStage == nil {
		byJob := make(map[*migmgr.Job]*Migration)
		mgr.OnStage = func(job *migmgr.Job, stage string) {
			if mig, ok := byJob[job]; ok && o.OnStage != nil {
				o.OnStage(mig, stage)
			}
		}
		o.execJobs[mgr] = byJob
	}
	o.execJobs[mgr][j] = m
}

// load scores a host for placement: resident registered containers
// plus in-flight migrations already targeting it.
func (o *Orchestrator) load(host string) int {
	n := o.incoming[host]
	for _, w := range o.workloads {
		if w.C.Host.Name == host {
			n++
		}
	}
	return n
}

// place builds the candidate set — every non-draining host with a
// daemon, in sorted-name order — and asks the policy.
func (o *Orchestrator) place(d *Drain, src string) string {
	srcHost := o.cfg.CL.Host(src)
	var cands []Candidate
	for _, host := range o.cfg.CL.Names() {
		if host == src || o.draining[host] > 0 {
			continue
		}
		if _, ok := o.cfg.Daemons[host]; !ok {
			continue
		}
		cands = append(cands, Candidate{
			Host: host,
			Rack: o.cfg.CL.Host(host).Rack,
			Load: o.load(host),
		})
	}
	return o.cfg.Policy.Place(Candidate{Host: src, Rack: srcHost.Rack, Load: o.load(src)}, cands)
}
