package orchestrator

import "testing"

func c(host string, rack, load int) Candidate {
	return Candidate{Host: host, Rack: rack, Load: load}
}

// TestPlaceEmptyCandidates: no candidates — every host draining or
// gone — must yield "" (the migration fails cleanly), not a panic.
func TestPlaceEmptyCandidates(t *testing.T) {
	for _, p := range []PlacementPolicy{LeastLoaded{}, LeastLoaded{PreferSameRack: true}} {
		if got := p.Place(c("src", 0, 1), nil); got != "" {
			t.Errorf("%T over empty set placed on %q, want \"\"", p, got)
		}
		if got := p.Place(c("src", 0, 1), []Candidate{}); got != "" {
			t.Errorf("%T over zero-length set placed on %q, want \"\"", p, got)
		}
	}
}

func TestPlaceLeastLoaded(t *testing.T) {
	cands := []Candidate{c("a", 0, 3), c("b", 1, 1), c("d", 1, 2)}
	if got := (LeastLoaded{}).Place(c("src", 0, 5), cands); got != "b" {
		t.Errorf("least-loaded placed on %q, want b", got)
	}
}

// TestPlaceSameRackPreference: load ties break toward the source's
// rack only when PreferSameRack is set.
func TestPlaceSameRackPreference(t *testing.T) {
	cands := []Candidate{c("a", 0, 1), c("b", 1, 1)}
	src := c("src", 1, 2)
	if got := (LeastLoaded{PreferSameRack: true}).Place(src, cands); got != "b" {
		t.Errorf("same-rack preference placed on %q, want b (rack 1)", got)
	}
	if got := (LeastLoaded{}).Place(src, cands); got != "a" {
		t.Errorf("plain least-loaded placed on %q, want a (name order)", got)
	}
	// The preference never overrides load: a lighter cross-rack host
	// still wins.
	cands = []Candidate{c("a", 0, 1), c("b", 1, 4)}
	if got := (LeastLoaded{PreferSameRack: true}).Place(src, cands); got != "a" {
		t.Errorf("same-rack preference overrode load, placed on %q, want a", got)
	}
}

// TestPlaceSingleRack: on a flat (single-rack) cluster every candidate
// shares the source's rack, so PreferSameRack must degenerate to plain
// least-loaded with name tie-breaking.
func TestPlaceSingleRack(t *testing.T) {
	cands := []Candidate{c("a", 0, 2), c("b", 0, 1), c("d", 0, 1)}
	for _, p := range []PlacementPolicy{LeastLoaded{}, LeastLoaded{PreferSameRack: true}} {
		if got := p.Place(c("src", 0, 3), cands); got != "b" {
			t.Errorf("%+v on single rack placed on %q, want b", p, got)
		}
	}
}

// TestPlaceTieBreakDeterminism: identical load scores must always
// resolve to the same host — the lexicographically first — regardless
// of candidate order, so replayed drains hash identically.
func TestPlaceTieBreakDeterminism(t *testing.T) {
	orders := [][]Candidate{
		{c("a", 0, 1), c("b", 0, 1), c("d", 1, 1)},
		{c("d", 1, 1), c("b", 0, 1), c("a", 0, 1)},
		{c("b", 0, 1), c("d", 1, 1), c("a", 0, 1)},
	}
	for _, p := range []PlacementPolicy{LeastLoaded{}, LeastLoaded{PreferSameRack: true}} {
		for i, cands := range orders {
			if got := p.Place(c("src", 0, 2), cands); got != "a" {
				t.Errorf("%+v order %d placed on %q, want a", p, i, got)
			}
		}
	}
	// Same-rack preference flips the tie toward rack 1 sources — but
	// still deterministically.
	for i, cands := range orders {
		if got := (LeastLoaded{PreferSameRack: true}).Place(c("src", 1, 2), cands); got != "d" {
			t.Errorf("rack-1 source order %d placed on %q, want d", i, got)
		}
	}
}
