package cluster

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"migrrdma/internal/fabric"
)

func rackNames(racks, perRack int) []string {
	names := make([]string, 0, racks*perRack)
	for r := 0; r < racks; r++ {
		for h := 0; h < perRack; h++ {
			names = append(names, fmt.Sprintf("r%dh%d", r, h))
		}
	}
	return names
}

func TestClusterRackAssignment(t *testing.T) {
	topo := fabric.Topology{Racks: 4, HostsPerRack: 4, UplinkRate: 25e9}
	names := rackNames(4, 4)
	c := New(Config{Fabric: fabric.Config{Topology: topo}, Seed: 1}, names...)
	for i, name := range names {
		h := c.Host(name)
		if want := i / 4; h.Rack != want || c.Net.Rack(name) != want {
			t.Fatalf("%s: Rack=%d fabric rack=%d, want %d", name, h.Rack, c.Net.Rack(name), want)
		}
	}
	// Flat clusters stay in rack 0.
	if New(Config{Seed: 1}, "a", "b").Host("b").Rack != 0 {
		t.Fatal("flat cluster host left rack 0")
	}
}

// TestShardedClusterRackAlignment: with a topology the shard group gets
// one shard per rack, hosts of a rack share that shard's scheduler and
// Network, and cross-rack hosts do not.
func TestShardedClusterRackAlignment(t *testing.T) {
	topo := fabric.Topology{Racks: 2, HostsPerRack: 2, UplinkRate: 25e9}
	names := rackNames(2, 2)
	c := NewSharded(Config{Fabric: fabric.Config{Topology: topo}, Seed: 1}, names...)
	if got := c.Group.Shards(); got != 2 {
		t.Fatalf("shards = %d, want one per rack = 2", got)
	}
	a0, a1, b0 := c.Host("r0h0"), c.Host("r0h1"), c.Host("r1h0")
	if a0.Shard != a0.Rack || b0.Shard != b0.Rack {
		t.Fatal("shard-by-rack alignment broken: Shard != Rack")
	}
	if a0.Sched != a1.Sched || a0.Net != a1.Net || a0.Metrics != a1.Metrics {
		t.Fatal("same-rack hosts must share their shard's scheduler/network/registry")
	}
	if a0.Sched == b0.Sched || a0.Net == b0.Net {
		t.Fatal("cross-rack hosts must not share a shard")
	}
}

// sixteenHostDigest builds the 4-rack × 4-host cluster and drives every
// host through a cross-rack bulk transfer with RNG-jittered starts,
// folding completion times, per-host fabric counters and the full
// metrics snapshot hash into one digest.
func sixteenHostDigest(t *testing.T) uint64 {
	t.Helper()
	topo := fabric.Topology{Racks: 4, HostsPerRack: 4, UplinkRate: 25e9}
	names := rackNames(4, 4)
	c := New(Config{Fabric: fabric.Config{Topology: topo}, Seed: 11}, names...)
	done := make(map[string]time.Duration)
	for i, name := range c.Names() {
		i, name := i, name
		h := c.Host(name)
		peer := names[(i+4)%len(names)] // next rack over
		c.Sched.Go("xfer-"+name, func() {
			h.Sleep(time.Duration(c.Sched.Rand().Intn(100)) * time.Microsecond)
			h.TransferTo(peer, 256<<10)
			done[name] = c.Sched.Now()
		})
	}
	c.Sched.Run()

	hash := fnv.New64a()
	for _, name := range c.Names() {
		rx, tx := c.Net.Bytes(name)
		fmt.Fprintf(hash, "%s done=%d rx=%d tx=%d\n", name, done[name], rx, tx)
	}
	for r := 0; r < topo.Racks; r++ {
		up, down := c.Net.UplinkBytes(r)
		fmt.Fprintf(hash, "rack%d up=%d down=%d\n", r, up, down)
	}
	fmt.Fprintf(hash, "metrics=%s\n", c.Metrics.Snapshot().Hash())
	return hash.Sum64()
}

// TestSixteenHostDeterminism constructs the 16-host cluster twice and
// asserts identical event digests — the guard the sorted Names()
// iteration discipline exists for (cluster.go's map-order warning).
func TestSixteenHostDeterminism(t *testing.T) {
	a, b := sixteenHostDigest(t), sixteenHostDigest(t)
	if a != b {
		t.Fatalf("identical 16-host constructions diverged: %x vs %x", a, b)
	}
}
