package cluster

import (
	"time"

	"migrrdma/internal/criu"
	"migrrdma/internal/fabric"
	"migrrdma/internal/rnic"
)

// This file centralizes the testbed calibration. The constants mirror
// the paper's environment (§5.1): six servers with ConnectX-5 100 Gbps
// RNICs behind one Arista switch, container migration via CRIU + runc.
// Component defaults live with their packages (rnic.DefaultConfig,
// criu.DefaultConfig, fabric.DefaultConfig); the presets here bundle
// them for experiments.

// PaperTestbed returns the calibration used by the evaluation harness:
// every component at its paper-calibrated default.
//
// The load-bearing constants and the observations they are calibrated
// against:
//
//   - fabric: 100 Gbps per port, ~1 µs propagation — §5.1.
//   - rnic: QP create→RTS ≈ 0.9 ms ("setting up an RDMA connection
//     takes several milliseconds", §2.2 via [53]); sparse physical
//     QPNs/keys (why §3.3 introduces dense virtual values).
//   - criu: dump cost superlinear in the number of mappings
//     ("inefficient CRIU implementation for large and complicated
//     memory structures", §5.2); fixed dump+thaw costs sized so a
//     16-QP container's blackout lands in the paper's ≈150 ms band
//     (Fig. 5).
func PaperTestbed(seed int64) Config {
	return Config{
		Seed:   seed,
		Fabric: fabric.DefaultConfig(),
		NIC:    rnic.DefaultConfig(),
		CRIU:   criu.DefaultConfig(),
	}
}

// FastCheckpointTestbed keeps the RNIC and fabric calibration but
// shrinks CRIU's fixed costs. Experiments that measure properties
// orthogonal to checkpoint cost (the Fig. 4 wait-before-stop study)
// use it so the simulated traffic volume stays tractable.
func FastCheckpointTestbed(seed int64) Config {
	return Config{
		Seed:   seed,
		Fabric: fabric.DefaultConfig(),
		NIC:    rnic.DefaultConfig(),
		CRIU: criu.Config{
			DumpBase:  time.Millisecond,
			FreezeLat: time.Millisecond,
			ThawLat:   time.Millisecond,
		},
	}
}
