package cluster

import (
	"migrrdma/internal/criu"
	"migrrdma/internal/fabric"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// NewSharded builds the testbed with one shard per host: every host
// owns a full Scheduler (via its shard), a fabric Network attached to
// the group interconnect, and a private metrics registry, so shard
// workers can advance hosts concurrently with no shared mutable state.
// Cross-host frames — RDMA traffic, OOB control, CRIU image transfer —
// travel through the interconnect's bounded mailboxes, drained at
// window barriers.
//
// The returned Cluster has Group and IC set and Sched/Net/Metrics nil:
// sharded consumers must talk to a specific host's Sched/Net/Metrics,
// which is exactly the discipline that keeps windows data-race-free.
func NewSharded(cfg Config, names ...string) *Cluster {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	fabCfg := cfg.Fabric
	if fabCfg.PropDelay == 0 {
		fabCfg.PropDelay = fabric.DefaultConfig().PropDelay
	}
	// Conservative lookahead = the minimum cross-host latency, which in
	// this single-switch fabric is the per-hop propagation delay.
	g := sim.NewShardGroup(seed, len(names), fabCfg.PropDelay)
	ic := fabric.NewInterconnect(g, fabCfg)
	c := &Cluster{Group: g, IC: ic, Hosts: make(map[string]*Host)}
	for i, name := range names {
		s := g.Shard(i)
		net := ic.Net(i)
		nicCfg := cfg.NIC
		nicCfg.Metrics = ic.Registry(i)
		mux := fabric.NewMux(net, name)
		h := &Host{
			Name:     name,
			Shard:    i,
			Sched:    s,
			Net:      net,
			Mux:      mux,
			Dev:      rnic.NewDevice(net, mux, name, nicCfg),
			Hub:      oob.NewHub(net, mux, name),
			Metrics:  ic.Registry(i),
			xferWait: make(map[uint64]*sim.Cond),
			rxCount:  make(map[uint64]struct{}),
		}
		h.CRIU = criu.New(h, cfg.CRIU)
		mux.Register(portXfer, h.onXfer)
		mux.Register(portXferAck, h.onXferAck)
		c.Hosts[name] = h
	}
	return c
}
