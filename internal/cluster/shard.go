package cluster

import (
	"migrrdma/internal/criu"
	"migrrdma/internal/fabric"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// NewSharded builds the testbed with one shard per host: every host
// owns a full Scheduler (via its shard), a fabric Network attached to
// the group interconnect, and a private metrics registry, so shard
// workers can advance hosts concurrently with no shared mutable state.
// Cross-host frames — RDMA traffic, OOB control, CRIU image transfer —
// travel through the interconnect's bounded mailboxes, drained at
// window barriers.
//
// The returned Cluster has Group and IC set and Sched/Net/Metrics nil:
// sharded consumers must talk to a specific host's Sched/Net/Metrics,
// which is exactly the discipline that keeps windows data-race-free.
//
// With a two-tier topology shards align with racks instead of hosts
// (the shard-by-rack alignment the fabric's rackLink single-owner
// contract requires): the group gets one shard per rack, hosts of the
// same rack share that shard's scheduler, Network and registry, and
// cross-shard frames are exactly the cross-rack spine crossings.
func NewSharded(cfg Config, names ...string) *Cluster {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	fabCfg := cfg.Fabric
	if fabCfg.PropDelay == 0 {
		fabCfg.PropDelay = fabric.DefaultConfig().PropDelay
	}
	shards := len(names)
	if !fabCfg.Topology.Flat() {
		shards = fabCfg.Topology.Racks
	}
	// Conservative lookahead = the minimum cross-shard latency: the
	// per-hop propagation delay, whether the next hop is the single
	// switch (flat) or the source ToR (two-tier).
	g := sim.NewShardGroup(seed, shards, fabCfg.PropDelay)
	ic := fabric.NewInterconnect(g, fabCfg)
	c := &Cluster{Group: g, IC: ic, Hosts: make(map[string]*Host)}
	for i, name := range names {
		shard := i
		if !fabCfg.Topology.Flat() {
			shard = rackOf(fabCfg.Topology, i)
		}
		s := g.Shard(shard)
		net := ic.Net(shard)
		nicCfg := cfg.NIC
		nicCfg.Metrics = ic.Registry(shard)
		mux := fabric.NewMux(net, name)
		h := &Host{
			Name:     name,
			Shard:    shard,
			Rack:     rackOf(fabCfg.Topology, i),
			Sched:    s,
			Net:      net,
			Mux:      mux,
			Dev:      rnic.NewDevice(net, mux, name, nicCfg),
			Hub:      oob.NewHub(net, mux, name),
			Metrics:  ic.Registry(shard),
			xferWait: make(map[uint64]*sim.Cond),
			rxCount:  make(map[uint64]struct{}),
		}
		h.CRIU = criu.New(h, cfg.CRIU)
		mux.Register(portXfer, h.onXfer)
		mux.Register(portXferAck, h.onXferAck)
		net.SetRack(name, h.Rack)
		c.Hosts[name] = h
	}
	return c
}
