package cluster

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// shardedXfer drives a three-host sharded cluster: each host streams a
// CRIU-style bulk transfer to its successor with RNG-jittered start
// times, and the digest folds per-host completion times and fabric
// counters.
func shardedXfer(t *testing.T, workers int, seed int64) uint64 {
	t.Helper()
	names := []string{"s1", "s2", "s3"}
	c := NewSharded(Config{Seed: seed}, names...)
	c.Group.SetWorkers(workers)
	done := make([]time.Duration, len(names))
	for i, name := range names {
		i, name := i, name
		h := c.Host(name)
		peer := names[(i+1)%len(names)]
		h.Sched.Go("xfer-"+name, func() {
			h.Sched.Sleep(time.Duration(h.Sched.Rand().Intn(50)) * time.Microsecond)
			h.TransferTo(peer, 1<<20)
			done[i] = h.Sched.Now()
		})
	}
	c.Group.Run()

	hash := fnv.New64a()
	for i, name := range names {
		rx, tx := c.Host(name).Net.Bytes(name)
		fmt.Fprintf(hash, "%s done=%d rx=%d tx=%d\n", name, done[i], rx, tx)
	}
	return hash.Sum64()
}

// TestShardedClusterDeterministicAcrossWorkers: the full host stack —
// mux dispatch, bulk transfer self-clocking, ack round trips — crossing
// shard boundaries is bit-identical at every worker count.
func TestShardedClusterDeterministicAcrossWorkers(t *testing.T) {
	base := shardedXfer(t, 1, 5)
	for _, w := range []int{2, 3} {
		if d := shardedXfer(t, w, 5); d != base {
			t.Errorf("workers=%d digest %x != sequential %x", w, d, base)
		}
	}
	if shardedXfer(t, 1, 6) == base {
		t.Error("digest insensitive to seed")
	}
}

// TestShardedClusterHostOwnership: every host must sit on its own shard
// with a private scheduler and registry.
func TestShardedClusterHostOwnership(t *testing.T) {
	c := NewSharded(Config{Seed: 1}, "a", "b")
	if c.Group.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", c.Group.Shards())
	}
	ha, hb := c.Host("a"), c.Host("b")
	if ha.Sched == hb.Sched || ha.Net == hb.Net || ha.Metrics == hb.Metrics {
		t.Fatal("sharded hosts share state")
	}
	if ha.Sched != c.Group.Shard(ha.Shard) {
		t.Fatal("host scheduler is not its shard's scheduler")
	}
	if own, ok := c.IC.Owner("b"); !ok || own != hb.Shard {
		t.Fatalf("interconnect owner(b) = %d,%v", own, ok)
	}
}
