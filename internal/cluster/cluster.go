// Package cluster assembles the simulated testbed: hosts that each
// carry a fabric port, an RNIC, an out-of-band control hub and a
// checkpoint/restore tool — the paper's six-server, single-switch,
// 100 Gbps environment (§5.1).
package cluster

import (
	"encoding/binary"
	"sort"
	"time"

	"migrrdma/internal/criu"
	"migrrdma/internal/fabric"
	"migrrdma/internal/metrics"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// Host is one server.
type Host struct {
	Name string
	// Shard is the host's shard index under NewSharded (0 otherwise).
	// With a two-tier topology shards align with racks, so Shard == Rack.
	Shard int
	// Rack is the host's rack under a two-tier fabric topology (0 on a
	// flat fabric).
	Rack    int
	Sched   *sim.Scheduler
	Net     *fabric.Network
	Mux     *fabric.Mux
	Dev     *rnic.Device
	Hub     *oob.Hub
	CRIU    *criu.Tool
	Metrics *metrics.Registry

	xferSeq  uint64
	xferWait map[uint64]*sim.Cond
	rxCount  map[uint64]struct{} // transfers already acked
}

// Cluster is the whole testbed.
type Cluster struct {
	Sched *sim.Scheduler
	Net   *fabric.Network
	Hosts map[string]*Host
	// Metrics is the cluster-wide deterministic registry; every component
	// (fabric ports, RNICs, migration daemons) registers into it so one
	// snapshot captures the whole testbed.
	Metrics *metrics.Registry

	// Group and IC are set by NewSharded only: the shard group driving
	// per-host schedulers and the mailbox interconnect between their
	// Networks. Sched/Net/Metrics are nil in that mode — state is
	// per-host (see Host.Sched/Net/Metrics).
	Group *sim.ShardGroup
	IC    *fabric.Interconnect
}

// Config selects component parameters for every host.
type Config struct {
	Fabric fabric.Config
	NIC    rnic.Config
	CRIU   criu.Config
	Seed   int64
}

// New builds a cluster with the named hosts.
func New(cfg Config, names ...string) *Cluster {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := sim.New(seed)
	reg := metrics.New(s.Now)
	fabCfg := cfg.Fabric
	fabCfg.Metrics = reg
	nicCfg := cfg.NIC
	nicCfg.Metrics = reg
	net := fabric.New(s, fabCfg)
	c := &Cluster{Sched: s, Net: net, Hosts: make(map[string]*Host), Metrics: reg}
	for i, name := range names {
		mux := fabric.NewMux(net, name)
		h := &Host{
			Name:     name,
			Rack:     rackOf(fabCfg.Topology, i),
			Sched:    s,
			Net:      net,
			Mux:      mux,
			Dev:      rnic.NewDevice(net, mux, name, nicCfg),
			Hub:      oob.NewHub(net, mux, name),
			Metrics:  reg,
			xferWait: make(map[uint64]*sim.Cond),
			rxCount:  make(map[uint64]struct{}),
		}
		h.CRIU = criu.New(h, cfg.CRIU)
		mux.Register(portXfer, h.onXfer)
		mux.Register(portXferAck, h.onXferAck)
		net.SetRack(name, h.Rack)
		c.Hosts[name] = h
	}
	return c
}

// rackOf places host i in its topology rack: hosts are assigned to
// racks in declaration-order blocks of HostsPerRack. Flat topologies
// put everything in rack 0.
func rackOf(t fabric.Topology, i int) int {
	if t.Flat() {
		return 0
	}
	if t.HostsPerRack <= 0 {
		panic("cluster: two-tier topology needs HostsPerRack > 0")
	}
	r := i / t.HostsPerRack
	if r >= t.Racks {
		panic("cluster: more hosts than Racks×HostsPerRack")
	}
	return r
}

// Host returns the named host, panicking if absent.
func (c *Cluster) Host(name string) *Host {
	h, ok := c.Hosts[name]
	if !ok {
		panic("cluster: unknown host " + name)
	}
	return h
}

// Names returns the host names in sorted order. Deterministic consumers
// (trace hashing, tap installation) must iterate hosts through it
// rather than ranging over the Hosts map.
func (c *Cluster) Names() []string {
	names := make([]string, 0, len(c.Hosts))
	for n := range c.Hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- criu.HostServices -------------------------------------------------------

// Sleep advances virtual time for the calling proc.
func (h *Host) Sleep(d time.Duration) { h.Sched.Sleep(d) }

// Now returns the virtual time.
func (h *Host) Now() time.Duration { return h.Sched.Now() }

// Node returns the host's fabric node name.
func (h *Host) Node() string { return h.Name }

const (
	portXfer    = "xfer"
	portXferAck = "xfer-ack"
	xferChunk   = 64 << 10
	// xferOverhead approximates per-chunk TCP segmentation overhead.
	xferOverhead = 1060 // ~16 segments × 66 B headers per 64 KiB chunk
)

// TransferTo streams size bytes to the peer at link pace (the TCP bulk
// transfer CRIU uses for images; the paper's MigrRDMA transfers state
// over TCP, §7). It blocks until the peer has received the final byte,
// and contends with RDMA traffic for the same links — the source of the
// pre-copy brownout in Fig. 5.
func (h *Host) TransferTo(peer string, size int) {
	if size <= 0 {
		return
	}
	h.xferSeq++
	id := h.xferSeq
	done := sim.NewCond(h.Sched, "xfer-done")
	h.xferWait[id] = done
	sent := 0
	for sent < size {
		n := size - sent
		if n > xferChunk {
			n = xferChunk
		}
		final := sent+n >= size
		var hdr [17]byte
		binary.BigEndian.PutUint64(hdr[:], id)
		if final {
			hdr[8] = 1
		}
		wire := n + xferOverhead*n/xferChunk
		h.Net.Send(fabric.Frame{
			Src: h.Name, Dst: peer, Port: portXfer,
			Size: wire, Data: hdr[:],
		})
		// Self-clock at link rate; concurrent traffic shows up as
		// queueing delay on top.
		h.Sched.Sleep(h.Net.SerializationTime(wire))
		sent += n
	}
	done.Wait()
	delete(h.xferWait, id)
}

// onXfer runs on the receiving host: the final chunk triggers an ack.
func (h *Host) onXfer(f fabric.Frame) {
	if len(f.Data) < 9 || f.Data[8] != 1 {
		return
	}
	h.Net.Send(fabric.Frame{
		Src: h.Name, Dst: f.Src, Port: portXferAck,
		Size: 64, Data: f.Data[:9],
	})
}

// onXferAck wakes the sender blocked in TransferTo.
func (h *Host) onXferAck(f fabric.Frame) {
	id := binary.BigEndian.Uint64(f.Data)
	if c, ok := h.xferWait[id]; ok {
		c.Broadcast()
	}
}
