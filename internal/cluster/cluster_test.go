package cluster

import (
	"testing"
	"time"
)

func TestTransferPacedAtLinkRate(t *testing.T) {
	c := New(Config{Seed: 1}, "a", "b")
	const size = 100 << 20 // 100 MiB
	var elapsed time.Duration
	c.Sched.Go("xfer", func() {
		start := c.Sched.Now()
		c.Host("a").TransferTo("b", size)
		elapsed = c.Sched.Now() - start
	})
	c.Sched.Run()
	// 100 MiB at 100 Gbps ≈ 8.4 ms plus per-chunk overhead.
	wire := time.Duration(int64(size) * 8 * int64(time.Second) / 100e9)
	if elapsed < wire {
		t.Fatalf("transfer finished in %v, faster than the wire %v", elapsed, wire)
	}
	if elapsed > wire*2 {
		t.Fatalf("transfer took %v, way above the wire time %v", elapsed, wire)
	}
}

func TestTransferBlocksUntilReceived(t *testing.T) {
	c := New(Config{Seed: 1}, "a", "b")
	done := false
	c.Sched.Go("xfer", func() {
		c.Host("a").TransferTo("b", 1<<20)
		done = true
	})
	c.Sched.RunFor(time.Millisecond)
	// 1 MiB needs ~84 µs of wire plus ack; should be done inside 1 ms.
	if !done {
		t.Fatal("transfer did not complete")
	}
}

func TestConcurrentTransfersShareLink(t *testing.T) {
	c := New(Config{Seed: 1}, "a", "b", "x")
	const size = 10 << 20
	var tA, tX time.Duration
	c.Sched.Go("fromA", func() {
		start := c.Sched.Now()
		c.Host("a").TransferTo("b", size)
		tA = c.Sched.Now() - start
	})
	c.Sched.Go("fromX", func() {
		start := c.Sched.Now()
		c.Host("x").TransferTo("b", size)
		tX = c.Sched.Now() - start
	})
	c.Sched.Run()
	solo := time.Duration(int64(size) * 8 * int64(time.Second) / 100e9)
	// Sharing the destination downlink roughly doubles the time.
	if tA < solo || tX < solo {
		t.Fatalf("shared transfers too fast: %v / %v vs solo %v", tA, tX, solo)
	}
}

func TestHostLookupPanicsUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Seed: 1}, "a").Host("zzz")
}
