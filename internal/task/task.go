// Package task models the processes that containers run and live
// migration moves: a named process owning a virtual address space, with
// the freeze/thaw gate CRIU's cgroup freezer provides on real hosts.
//
// Application code runs as managed sim procs. Because the simulation is
// cooperative, freezing cannot preempt a proc mid-instruction; instead
// every interaction point (guest-library verbs calls, Compute slices,
// out-of-band receives) passes through Gate, which parks the proc while
// the process is frozen. Workloads are post/poll/compute loops, so the
// freeze latency is bounded by one loop iteration, matching the "freeze
// the services" step (④ in Fig. 2b) closely enough for timing studies.
package task

import (
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// Process is one migratable process.
type Process struct {
	Name string
	AS   *mem.AddressSpace

	// Attachment carries the process's MigrRDMA session (if any); the
	// CRIU plugin retrieves it during checkpoint/restore. It is typed
	// as any to keep this package at the bottom of the import graph.
	Attachment any

	sched  *sim.Scheduler
	frozen bool
	thaw   *sim.Cond

	// exited marks a process that finished or was reclaimed.
	exited bool
}

// New creates a process with a fresh address space.
func New(sched *sim.Scheduler, name string) *Process {
	return &Process{
		Name:  name,
		AS:    mem.NewAddressSpace(),
		sched: sched,
		thaw:  sim.NewCond(sched, "thaw:"+name),
	}
}

// Scheduler returns the scheduler the process runs on.
func (p *Process) Scheduler() *sim.Scheduler { return p.sched }

// Gate parks the calling proc while the process is frozen. Application
// entry points call it before touching shared state.
func (p *Process) Gate() {
	for p.frozen {
		p.thaw.Wait()
	}
}

// Frozen reports whether the process is currently frozen.
func (p *Process) Frozen() bool { return p.frozen }

// Freeze stops the process at its next gate crossing.
func (p *Process) Freeze() { p.frozen = true }

// Thaw resumes a frozen process.
func (p *Process) Thaw() {
	p.frozen = false
	p.thaw.Broadcast()
}

// Exited reports whether the process has been reclaimed.
func (p *Process) Exited() bool { return p.exited }

// Exit marks the process as reclaimed (the migration source discarding
// the original after a successful migration).
func (p *Process) Exit() {
	p.exited = true
	p.Thaw() // wake anything gated so it can observe the exit
}

// Compute models d of application CPU work, honouring the freeze gate
// on entry.
func (p *Process) Compute(d time.Duration) {
	p.Gate()
	p.sched.Sleep(d)
}
