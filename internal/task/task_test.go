package task

import (
	"testing"
	"time"

	"migrrdma/internal/sim"
)

func TestFreezeGatesCompute(t *testing.T) {
	s := sim.New(1)
	p := New(s, "p")
	var progressed int
	s.Go("app", func() {
		for i := 0; i < 10; i++ {
			p.Compute(time.Millisecond)
			progressed++
		}
	})
	s.Go("freezer", func() {
		s.Sleep(2500 * time.Microsecond)
		p.Freeze()
		atFreeze := progressed
		s.Sleep(20 * time.Millisecond)
		if progressed > atFreeze+1 {
			t.Errorf("progressed %d steps while frozen", progressed-atFreeze)
		}
		p.Thaw()
	})
	s.Run()
	if progressed != 10 {
		t.Fatalf("progressed %d, want 10 after thaw", progressed)
	}
}

func TestGateReturnsImmediatelyWhenRunning(t *testing.T) {
	s := sim.New(1)
	p := New(s, "p")
	s.Go("app", func() {
		before := s.Now()
		p.Gate()
		if s.Now() != before {
			t.Error("Gate consumed time while unfrozen")
		}
	})
	s.Run()
}

func TestExitWakesGatedProc(t *testing.T) {
	s := sim.New(1)
	p := New(s, "p")
	p.Freeze()
	exited := false
	s.Go("app", func() {
		p.Gate()
		// After Exit the gate opens; the app observes the exit.
		exited = p.Exited()
	})
	s.Go("killer", func() {
		s.Sleep(time.Millisecond)
		p.Exit()
	})
	s.Run()
	if !exited {
		t.Fatal("gated proc did not observe exit")
	}
}
