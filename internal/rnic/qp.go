package rnic

import (
	"fmt"

	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// sqState tracks a send WQE through the transport.
type sqState uint8

const (
	sqQueued    sqState = iota // posted, not yet on the wire
	sqSent                     // all fragments handed to the wire
	sqAcked                    // acknowledged / response received
	sqCompleted                // CQE generated (or silently retired)
)

// sqEntry is a send-queue element with its transport state.
type sqEntry struct {
	wr         SendWR
	psn        uint32
	state      sqState
	status     WCStatus
	queued     bool   // currently on the QP transmit queue
	fragCursor uint16 // next fragment to put on the wire
	// retransmit marks an entry rewound from sqSent by go-back-N or an
	// RTO; its subsequent fragments count as retransmitted packets.
	retransmit bool
}

// QPCaps sets queue depths.
type QPCaps struct {
	MaxSend int
	MaxRecv int
}

// QP is a queue pair. All transport state (PSNs, retransmission, the
// in-flight window) is private: software observes it only through
// completions, which is the constraint MigrRDMA designs around.
type QP struct {
	QPN   uint32
	Type  QPType
	state QPState
	dev   *Device
	pd    *PD
	caps  QPCaps

	sendCQ, recvCQ *CQ
	srq            *SRQ

	// Remote endpoint (RC, set at RTR).
	remoteNode string
	remoteQPN  uint32

	// Requester side.
	sq         []*sqEntry
	txq        fifo[*sqEntry] // entries with fragments still to transmit
	inTxRing   bool
	nextPSN    uint32
	rnrBackoff bool
	retries    int
	rnrRetries int
	rtoTimer   sim.Timer
	// rtoCb/rnrCb are the retransmission callbacks bound once at
	// creation, so re-arming a timer does not allocate a method value
	// or closure per packet.
	rtoCb func()
	rnrCb func()

	// Responder side.
	expPSN      uint32
	rq          []RecvWR
	reasm       *reassembly
	nakSent     bool // a NAK for nakPSN is outstanding
	nakPSN      uint32
	atomicCache map[uint32]uint64 // PSN → original value, replay protection

	// readResp tracks inbound READ responses under reassembly.
	readBuf map[uint32][]byte

	// Counters visible to the library layer. NSent counts two-sided
	// verbs posted; NRecvDone counts completed receive WQEs. They are
	// the n_sent / n_recv of the paper's wait-before-stop (§3.4).
	NSent     uint64
	NRecvDone uint64

	// Fault-path counters: responder NAKs and RNR NAKs sent, requester
	// go-back-N rewinds (NAK- or RTO-triggered). Fault-injection tests
	// use them to prove their corpora reach these branches.
	NNaks    uint64
	NRNRs    uint64
	NGoBackN uint64

	// Registry handles (per-QP posts, completion and fault telemetry),
	// resolved once at creation.
	mPosts, mRecvPosts, mCQEs *metrics.Counter

	mNaks, mRNRs *metrics.Counter
	mGoBackN     *metrics.Counter
	mRetx        *metrics.Counter

	// closed marks a destroyed QP.
	closed bool
}

// SRQ is a shared receive queue.
type SRQ struct {
	Handle uint32
	dev    *Device
	rq     []RecvWR
}

// CreateSRQ creates a shared receive queue.
func (d *Device) CreateSRQ() *SRQ {
	d.sched.Sleep(d.cfg.CreateCQLat)
	s := &SRQ{Handle: d.allocID(), dev: d}
	d.srqs[s.Handle] = s
	return s
}

// PostRecv posts a receive WQE to the SRQ.
func (s *SRQ) PostRecv(wr RecvWR) { s.rq = append(s.rq, wr) }

// Len reports outstanding receive WQEs.
func (s *SRQ) Len() int { return len(s.rq) }

// DestroySRQ releases the SRQ.
func (d *Device) DestroySRQ(s *SRQ) {
	d.sched.Sleep(d.cfg.DestroyLat)
	delete(d.srqs, s.Handle)
}

// CreateQP creates a queue pair in the RESET state.
func (d *Device) CreateQP(pd *PD, typ QPType, sendCQ, recvCQ *CQ, srq *SRQ, caps QPCaps) *QP {
	d.sched.Sleep(d.cfg.CreateQPLat)
	if caps.MaxSend == 0 {
		caps.MaxSend = 128
	}
	if caps.MaxRecv == 0 {
		caps.MaxRecv = 128
	}
	qp := &QP{
		QPN:         d.allocQPN(),
		Type:        typ,
		dev:         d,
		pd:          pd,
		caps:        caps,
		sendCQ:      sendCQ,
		recvCQ:      recvCQ,
		srq:         srq,
		atomicCache: make(map[uint32]uint64),
		readBuf:     make(map[uint32][]byte),
	}
	qp.rtoCb = qp.onRTO
	qp.rnrCb = qp.rnrResume
	// Pre-size the WQE rings to the (bounded) queue caps so steady-state
	// posting never grows them.
	qp.sq = make([]*sqEntry, 0, ringCap(caps.MaxSend))
	qp.rq = make([]RecvWR, 0, ringCap(caps.MaxRecv))
	l := d.qpLabels(qp.QPN)
	qp.mPosts = d.reg.Counter("rnic", "send_posts", l)
	qp.mRecvPosts = d.reg.Counter("rnic", "recv_posts", l)
	qp.mCQEs = d.reg.Counter("rnic", "cqes", l)
	qp.mNaks = d.reg.Counter("rnic", "naks", l)
	qp.mRNRs = d.reg.Counter("rnic", "rnr_naks", l)
	qp.mGoBackN = d.reg.Counter("rnic", "go_back_n", l)
	qp.mRetx = d.reg.Counter("rnic", "retx_packets", l)
	d.qps[qp.QPN] = qp
	return qp
}

// DestroyQP tears a queue pair down.
func (d *Device) DestroyQP(qp *QP) {
	d.sched.Sleep(d.cfg.DestroyLat)
	qp.closed = true
	qp.rtoTimer.Cancel()
	qp.rtoTimer = sim.Timer{}
	delete(d.qps, qp.QPN)
	if slot := &d.qpCache[cacheSlot(qp.QPN)]; *slot == qp {
		*slot = nil
	}
}

// State returns the QP state.
func (qp *QP) State() QPState { return qp.state }

// RemoteQPN returns the connected peer's QP number (RC only).
func (qp *QP) RemoteQPN() uint32 { return qp.remoteQPN }

// RemoteNode returns the connected peer's fabric node (RC only).
func (qp *QP) RemoteNode() string { return qp.remoteNode }

// ModifyAttr carries ibv_modify_qp parameters.
type ModifyAttr struct {
	State      QPState
	RemoteNode string // RTR: peer fabric node
	RemoteQPN  uint32 // RTR: peer QPN
}

// Modify transitions the QP state machine, blocking the caller for the
// firmware command latency. Transitions follow the verbs spec:
// RESET→INIT→RTR→RTS, any→ERR, any→RESET.
func (qp *QP) Modify(attr ModifyAttr) error {
	d := qp.dev
	switch attr.State {
	case StateInit:
		if qp.state != StateReset {
			return fmt.Errorf("rnic: %v→INIT invalid", qp.state)
		}
		d.sched.Sleep(d.cfg.ModifyInitLat)
		qp.state = StateInit
	case StateRTR:
		if qp.state != StateInit {
			return fmt.Errorf("rnic: %v→RTR invalid", qp.state)
		}
		d.sched.Sleep(d.cfg.ModifyRTRLat)
		if qp.Type == RC {
			if attr.RemoteNode == "" {
				return fmt.Errorf("rnic: RC RTR requires a remote endpoint")
			}
			qp.remoteNode = attr.RemoteNode
			qp.remoteQPN = attr.RemoteQPN
		}
		qp.state = StateRTR
	case StateRTS:
		if qp.state != StateRTR {
			return fmt.Errorf("rnic: %v→RTS invalid", qp.state)
		}
		d.sched.Sleep(d.cfg.ModifyRTSLat)
		qp.state = StateRTS
	case StateError:
		d.sched.Sleep(d.cfg.ModifyInitLat)
		qp.enterError()
	case StateReset:
		// Resetting a live QP is slow (paper §3.2 rejects QP reuse via
		// reset partly for this reason).
		d.sched.Sleep(d.cfg.ResetQPLat)
		qp.reset()
	default:
		return fmt.Errorf("rnic: unsupported target state %v", attr.State)
	}
	return nil
}

// reset returns the QP to its initial state, discarding queues.
func (qp *QP) reset() {
	qp.state = StateReset
	qp.sq = nil
	qp.rq = nil
	qp.nextPSN = 0
	qp.expPSN = 0
	qp.remoteNode = ""
	qp.remoteQPN = 0
	qp.reasm = nil
	qp.rtoTimer.Cancel()
	qp.rtoTimer = sim.Timer{}
}

// enterError moves to ERR and flushes outstanding WQEs with flush status.
func (qp *QP) enterError() {
	if qp.state == StateError {
		return
	}
	qp.state = StateError
	for _, e := range qp.sq {
		if e.state != sqCompleted {
			if e.status == WCSuccess {
				e.status = WCWRFlushErr
			}
			e.state = sqAcked
		}
	}
	qp.completeInOrder()
	for _, wr := range qp.rq {
		qp.recvCQ.push(CQE{WRID: wr.WRID, Status: WCWRFlushErr, Opcode: OpRecv, QPN: qp.QPN})
	}
	qp.rq = nil
}

// outstanding counts send WQEs not yet retired.
func (qp *QP) outstanding() int {
	n := 0
	for _, e := range qp.sq {
		if e.state != sqCompleted {
			n++
		}
	}
	return n
}

// SendQueueDepth reports in-flight send WQEs (posted, not yet retired) —
// the head/tail window the paper's wait-before-stop inspects (§3.4).
func (qp *QP) SendQueueDepth() int { return qp.outstanding() }

// RecvQueueDepth reports receive WQEs not yet consumed.
func (qp *QP) RecvQueueDepth() int {
	if qp.srq != nil {
		return len(qp.srq.rq)
	}
	return len(qp.rq)
}

// PostSend posts a send-queue work request (ibv_post_send).
func (qp *QP) PostSend(wr SendWR) error {
	if qp.closed {
		return fmt.Errorf("rnic: post on destroyed QP")
	}
	if qp.state != StateRTS {
		return fmt.Errorf("rnic: PostSend in state %v", qp.state)
	}
	if qp.outstanding() >= qp.caps.MaxSend {
		return fmt.Errorf("rnic: send queue full (depth %d)", qp.caps.MaxSend)
	}
	if qp.Type == UD {
		if wr.Opcode != OpSend && wr.Opcode != OpSendImm {
			return fmt.Errorf("rnic: UD supports only SEND")
		}
		if int(wrLen(wr.SGEs)) > qp.dev.cfg.MTU {
			return fmt.Errorf("rnic: UD message exceeds MTU")
		}
		if wr.RemoteNode == "" {
			return fmt.Errorf("rnic: UD send needs a remote address handle")
		}
	}
	// Validate local SGEs against the protection tables now; real NICs
	// do it at WQE processing time, but the failure mode is equivalent.
	for _, sge := range wr.SGEs {
		needWrite := wr.Opcode == OpRead || wr.Opcode == OpCompSwap || wr.Opcode == OpFetchAdd
		if _, err := qp.dev.lookupLocal(qp.pd, sge, needWrite); err != nil {
			return fmt.Errorf("rnic: local protection: %w", err)
		}
	}
	// The WQE owns its gather list from here on (the library may reuse
	// its scatter/gather buffer immediately after posting, as real
	// verbs permit once ibv_post_send returns).
	if len(wr.SGEs) > 0 {
		sges := make([]SGE, len(wr.SGEs))
		copy(sges, wr.SGEs)
		wr.SGEs = sges
	}
	e := &sqEntry{wr: wr, psn: qp.nextPSN}
	qp.nextPSN = psnAdd(qp.nextPSN, 1)
	qp.sq = append(qp.sq, e)
	qp.mPosts.Inc()
	if wr.Opcode == OpSend || wr.Opcode == OpSendImm || wr.Opcode == OpWriteImm {
		qp.NSent++
	}
	qp.transmit(e)
	return nil
}

// PostRecv posts a receive work request (ibv_post_recv).
func (qp *QP) PostRecv(wr RecvWR) error {
	if qp.closed {
		return fmt.Errorf("rnic: post on destroyed QP")
	}
	if qp.srq != nil {
		return fmt.Errorf("rnic: QP uses an SRQ; post to the SRQ")
	}
	if qp.state == StateReset {
		return fmt.Errorf("rnic: PostRecv in RESET")
	}
	if len(qp.rq) >= qp.caps.MaxRecv {
		return fmt.Errorf("rnic: receive queue full")
	}
	for _, sge := range wr.SGEs {
		if _, err := qp.dev.lookupLocal(qp.pd, sge, true); err != nil {
			return fmt.Errorf("rnic: local protection: %w", err)
		}
	}
	if len(wr.SGEs) > 0 {
		sges := make([]SGE, len(wr.SGEs))
		copy(sges, wr.SGEs)
		wr.SGEs = sges
	}
	qp.rq = append(qp.rq, wr)
	qp.mRecvPosts.Inc()
	return nil
}

// popRecv takes the next receive WQE from the RQ or SRQ.
func (qp *QP) popRecv() (RecvWR, bool) {
	if qp.srq != nil {
		if len(qp.srq.rq) == 0 {
			return RecvWR{}, false
		}
		wr := qp.srq.rq[0]
		qp.srq.rq = qp.srq.rq[1:]
		return wr, true
	}
	if len(qp.rq) == 0 {
		return RecvWR{}, false
	}
	wr := qp.rq[0]
	// Shift down to keep the ring's capacity (queue depths are small,
	// the copy is cheaper than the reallocation churn of re-slicing).
	n := copy(qp.rq, qp.rq[1:])
	qp.rq[n] = RecvWR{}
	qp.rq = qp.rq[:n]
	return wr, true
}

// completeInOrder walks the send queue from the front, retiring acked
// entries in posting order (completions are ordered on RC).
func (qp *QP) completeInOrder() {
	done := 0
	for done < len(qp.sq) {
		e := qp.sq[done]
		if e.state != sqAcked {
			break
		}
		e.state = sqCompleted
		if e.wr.Signaled || e.status != WCSuccess {
			qp.sendCQ.push(CQE{
				WRID:    e.wr.WRID,
				Status:  e.status,
				Opcode:  e.wr.Opcode,
				QPN:     qp.QPN,
				ByteLen: wrLen(e.wr.SGEs),
			})
		}
		done++
	}
	if done > 0 {
		// Shift the remainder down instead of re-slicing: the ring keeps
		// its capacity, so steady-state post/complete never reallocates.
		n := copy(qp.sq, qp.sq[done:])
		for i := n; i < len(qp.sq); i++ {
			qp.sq[i] = nil
		}
		qp.sq = qp.sq[:n]
	}
}

// ringCap bounds a pre-sized WQE ring allocation.
func ringCap(n int) int {
	if n > 256 {
		return 256
	}
	return n
}

// armRTO (re)arms the retransmission timer if unacked work remains.
func (qp *QP) armRTO() {
	qp.rtoTimer.Cancel()
	qp.rtoTimer = sim.Timer{}
	if qp.Type != RC || qp.state != StateRTS {
		return
	}
	pending := false
	for _, e := range qp.sq {
		if e.state == sqSent {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	qp.rtoTimer = qp.dev.sched.AfterFunc(qp.dev.cfg.RTO, qp.rtoCb)
}

// onRTO fires when the oldest unacked message timed out: go-back-N.
func (qp *QP) onRTO() {
	if qp.closed || qp.dev.closed || qp.state != StateRTS {
		return
	}
	qp.retries++
	if qp.retries > qp.dev.cfg.MaxRetries {
		for _, e := range qp.sq {
			if e.state != sqCompleted && e.status == WCSuccess {
				e.status = WCRetryExceeded
			}
		}
		qp.enterError()
		return
	}
	qp.retransmitUnackedQueued()
	qp.armRTO()
}

// rnrRetry is the back-off restart after an RNR NAK.
func (qp *QP) rnrRetry() {
	if qp.rnrBackoff {
		return
	}
	qp.rnrRetries++
	if max := qp.dev.cfg.RNRRetries; max > 0 && qp.rnrRetries > max {
		for _, e := range qp.sq {
			if e.state != sqCompleted && e.status == WCSuccess {
				e.status = WCRNRRetryExceeded
			}
		}
		qp.enterError()
		return
	}
	qp.rnrBackoff = true
	qp.dev.sched.AfterFunc(qp.dev.cfg.RNRDelay, qp.rnrCb)
}

// rnrResume ends the RNR back-off window and restarts transmission.
func (qp *QP) rnrResume() {
	qp.rnrBackoff = false
	if qp.closed || qp.dev.closed || qp.state != StateRTS {
		return
	}
	qp.requeueUnsent()
	qp.armRTO()
}
