package rnic

import (
	"bytes"
	"testing"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// host bundles one simulated server for tests.
type host struct {
	dev *Device
	as  *mem.AddressSpace
	pd  *PD
	cq  *CQ
}

// rig is a two-host testbed with a connected RC QP pair.
type rig struct {
	s        *sim.Scheduler
	net      *fabric.Network
	a, b     *host
	qpA, qpB *QP
}

// newRig builds the testbed. Control-path calls sleep, so construction
// happens inside a managed proc driven by setup().
func newRig(t *testing.T, cfg Config, setup func(*rig)) *rig {
	t.Helper()
	s := sim.New(42)
	net := fabric.New(s, fabric.Config{})
	r := &rig{s: s, net: net}
	mk := func(name string) *host {
		mux := fabric.NewMux(net, name)
		h := &host{dev: NewDevice(net, mux, name, cfg), as: mem.NewAddressSpace()}
		if _, err := h.as.Map(0x100000, 1<<20, "arena"); err != nil {
			t.Fatal(err)
		}
		return h
	}
	r.a, r.b = mk("hostA"), mk("hostB")
	s.Go("setup", func() {
		for _, h := range []*host{r.a, r.b} {
			h.pd = h.dev.AllocPD()
			h.cq = h.dev.CreateCQ(65536, nil)
		}
		r.qpA = r.a.dev.CreateQP(r.a.pd, RC, r.a.cq, r.a.cq, nil, QPCaps{MaxSend: 256, MaxRecv: 256})
		r.qpB = r.b.dev.CreateQP(r.b.pd, RC, r.b.cq, r.b.cq, nil, QPCaps{MaxSend: 256, MaxRecv: 256})
		connectRC(t, r.qpA, "hostB", r.qpB.QPN)
		connectRC(t, r.qpB, "hostA", r.qpA.QPN)
		setup(r)
	})
	return r
}

func connectRC(t *testing.T, qp *QP, node string, rqpn uint32) {
	t.Helper()
	for _, a := range []ModifyAttr{
		{State: StateInit},
		{State: StateRTR, RemoteNode: node, RemoteQPN: rqpn},
		{State: StateRTS},
	} {
		if err := qp.Modify(a); err != nil {
			t.Fatalf("modify to %v: %v", a.State, err)
		}
	}
}

// regMR registers length bytes at addr with full access.
func (h *host) regMR(t *testing.T, addr mem.Addr, length uint64) *MR {
	t.Helper()
	mr, err := h.dev.RegMR(h.pd, h.as, addr, length,
		AccessLocalWrite|AccessRemoteRead|AccessRemoteWrite|AccessRemoteAtomic)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

// pollN polls the CQ until n completions arrive.
func pollN(cq *CQ, n int) []CQE {
	var out []CQE
	for len(out) < n {
		cq.WaitNonEmpty()
		out = append(out, cq.Poll(n-len(out))...)
	}
	return out
}

func TestSendRecvRoundTrip(t *testing.T) {
	var got []byte
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 8192)
		mrB := r.b.regMR(t, 0x100000, 8192)
		msg := []byte("through the looking glass")
		r.a.as.Write(0x100000, msg)
		r.qpB.PostRecv(RecvWR{WRID: 9, SGEs: []SGE{{Addr: 0x100000, Len: 4096, LKey: mrB.LKey}}})
		if err := r.qpA.PostSend(SendWR{WRID: 1, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: uint32(len(msg)), LKey: mrA.LKey}}}); err != nil {
			t.Error(err)
			return
		}
		sc := pollN(r.a.cq, 1)[0]
		if sc.WRID != 1 || sc.Status != WCSuccess {
			t.Errorf("send CQE = %+v", sc)
		}
		rc := pollN(r.b.cq, 1)[0]
		if rc.WRID != 9 || rc.Status != WCSuccess || rc.Opcode != OpRecv || int(rc.ByteLen) != len(msg) {
			t.Errorf("recv CQE = %+v", rc)
		}
		if rc.QPN != r.qpB.QPN {
			t.Errorf("recv CQE QPN = %#x, want local %#x", rc.QPN, r.qpB.QPN)
		}
		got = make([]byte, len(msg))
		r.b.as.Read(0x100000, got)
	})
	r.s.Run()
	if string(got) != "through the looking glass" {
		t.Fatalf("received %q", got)
	}
}

func TestWriteLargeMessage(t *testing.T) {
	const size = 64 << 10 // 16 fragments at 4 KB MTU
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, size)
		mrB := r.b.regMR(t, 0x100000, size)
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(i * 31)
		}
		r.a.as.Write(0x100000, src)
		err := r.qpA.PostSend(SendWR{WRID: 2, Opcode: OpWrite, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: size, LKey: mrA.LKey}},
			RemoteAddr: 0x100000, RKey: mrB.RKey})
		if err != nil {
			t.Error(err)
			return
		}
		c := pollN(r.a.cq, 1)[0]
		if c.Status != WCSuccess {
			t.Errorf("write CQE status %v", c.Status)
		}
		dst := make([]byte, size)
		r.b.as.Read(0x100000, dst)
		if !bytes.Equal(src, dst) {
			t.Error("WRITE payload corrupted")
		}
	})
	r.s.Run()
}

func TestWriteWithImmConsumesRecv(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096)
		r.qpB.PostRecv(RecvWR{WRID: 77, SGEs: []SGE{{Addr: 0x101000, Len: 0, LKey: mrB.LKey}}})
		r.qpA.PostSend(SendWR{WRID: 3, Opcode: OpWriteImm, Signaled: true, Imm: 0xfeed,
			SGEs:       []SGE{{Addr: 0x100000, Len: 128, LKey: mrA.LKey}},
			RemoteAddr: 0x100000, RKey: mrB.RKey})
		rc := pollN(r.b.cq, 1)[0]
		if rc.WRID != 77 || !rc.HasImm || rc.Imm != 0xfeed {
			t.Errorf("recv CQE = %+v", rc)
		}
	})
	r.s.Run()
}

func TestReadRoundTrip(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 64<<10)
		mrB := r.b.regMR(t, 0x100000, 64<<10)
		want := bytes.Repeat([]byte("remote"), 3000) // 18 KB, multi-fragment
		r.b.as.Write(0x100000, want)
		r.qpA.PostSend(SendWR{WRID: 4, Opcode: OpRead, Signaled: true,
			SGEs:       []SGE{{Addr: 0x108000, Len: uint32(len(want)), LKey: mrA.LKey}},
			RemoteAddr: 0x100000, RKey: mrB.RKey})
		c := pollN(r.a.cq, 1)[0]
		if c.Status != WCSuccess || c.Opcode != OpRead {
			t.Errorf("read CQE = %+v", c)
		}
		got := make([]byte, len(want))
		r.a.as.Read(0x108000, got)
		if !bytes.Equal(got, want) {
			t.Error("READ payload corrupted")
		}
	})
	r.s.Run()
}

func TestAtomics(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096)
		r.b.as.WriteU64(0x100008, 100)
		// FETCH_ADD +5.
		r.qpA.PostSend(SendWR{WRID: 5, Opcode: OpFetchAdd, Signaled: true, CompareAdd: 5,
			SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
			RemoteAddr: 0x100008, RKey: mrB.RKey})
		pollN(r.a.cq, 1)
		orig, _ := r.a.as.ReadU64(0x100000)
		if orig != 100 {
			t.Errorf("FETCH_ADD returned %d, want 100", orig)
		}
		v, _ := r.b.as.ReadU64(0x100008)
		if v != 105 {
			t.Errorf("remote value %d, want 105", v)
		}
		// CMP_SWAP 105 → 42 (matches).
		r.qpA.PostSend(SendWR{WRID: 6, Opcode: OpCompSwap, Signaled: true, CompareAdd: 105, Swap: 42,
			SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
			RemoteAddr: 0x100008, RKey: mrB.RKey})
		pollN(r.a.cq, 1)
		v, _ = r.b.as.ReadU64(0x100008)
		if v != 42 {
			t.Errorf("after CMP_SWAP remote = %d, want 42", v)
		}
		// CMP_SWAP with non-matching compare leaves the value.
		r.qpA.PostSend(SendWR{WRID: 7, Opcode: OpCompSwap, Signaled: true, CompareAdd: 1, Swap: 0,
			SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
			RemoteAddr: 0x100008, RKey: mrB.RKey})
		pollN(r.a.cq, 1)
		v, _ = r.b.as.ReadU64(0x100008)
		if v != 42 {
			t.Errorf("failed CMP_SWAP changed remote to %d", v)
		}
	})
	r.s.Run()
}

func TestRNRRecovery(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096)
		r.a.as.Write(0x100000, []byte("eventually"))
		// Send before any RECV is posted: responder RNR-NAKs.
		r.qpA.PostSend(SendWR{WRID: 8, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: 10, LKey: mrA.LKey}}})
		// Post the RECV after a while; the retry must deliver.
		r.s.Sleep(300 * time.Microsecond)
		r.qpB.PostRecv(RecvWR{WRID: 80, SGEs: []SGE{{Addr: 0x100800, Len: 64, LKey: mrB.LKey}}})
		rc := pollN(r.b.cq, 1)[0]
		if rc.Status != WCSuccess {
			t.Errorf("recv after RNR: %+v", rc)
		}
		sc := pollN(r.a.cq, 1)[0]
		if sc.Status != WCSuccess {
			t.Errorf("send after RNR: %+v", sc)
		}
		var buf [10]byte
		r.b.as.Read(0x100800, buf[:])
		if string(buf[:]) != "eventually" {
			t.Errorf("payload %q", buf)
		}
	})
	r.s.Run()
}

// TestRNRRecoveryMultiFragment is the multi-fragment twin of
// TestRNRRecovery. The responder reassembles the whole message before
// discovering no RECV is posted, so the reassembly buffer already holds
// every fragment when the RNR retry arrives — the retried fragments are
// all "already held" duplicates, and the responder must still retry
// delivery from the held buffer instead of swallowing the final
// fragment (which would pin the message undelivered forever while the
// requester retries into the void).
func TestRNRRecoveryMultiFragment(t *testing.T) {
	const size = 8192 // 2 fragments at the 4 KB default MTU
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, size)
		mrB := r.b.regMR(t, 0x110000, size)
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(i * 13)
		}
		r.a.as.Write(0x100000, src)
		// Send before any RECV is posted: responder RNR-NAKs after the
		// message is fully reassembled.
		r.qpA.PostSend(SendWR{WRID: 8, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: size, LKey: mrA.LKey}}})
		r.s.Sleep(300 * time.Microsecond)
		r.qpB.PostRecv(RecvWR{WRID: 80, SGEs: []SGE{{Addr: 0x110000, Len: size, LKey: mrB.LKey}}})
		rc := pollN(r.b.cq, 1)[0]
		if rc.Status != WCSuccess || int(rc.ByteLen) != size {
			t.Errorf("recv after RNR: %+v", rc)
		}
		sc := pollN(r.a.cq, 1)[0]
		if sc.Status != WCSuccess {
			t.Errorf("send after RNR: %+v", sc)
		}
		got := make([]byte, size)
		r.b.as.Read(0x110000, got)
		if !bytes.Equal(got, src) {
			t.Error("multi-fragment payload corrupted across RNR retry")
		}
	})
	r.s.Run()
}

func TestLossRecoveryOrdering(t *testing.T) {
	// 10% loss in both directions; every message must still complete,
	// in order, exactly once, with intact content.
	const msgs = 200
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 1<<20)
		mrB := r.b.regMR(t, 0x100000, 1<<20)
		r.net.SetLoss("hostA", 0.1)
		r.net.SetLoss("hostB", 0.1)
		for i := 0; i < msgs; i++ {
			r.qpB.PostRecv(RecvWR{WRID: uint64(1000 + i),
				SGEs: []SGE{{Addr: 0x100000 + mem.Addr(i*4096), Len: 4096, LKey: mrB.LKey}}})
		}
		r.s.Go("sender", func() {
			for i := 0; i < msgs; i++ {
				payload := []byte{byte(i), byte(i >> 8), 0xAB}
				r.a.as.Write(0x100000, payload)
				for {
					err := r.qpA.PostSend(SendWR{WRID: uint64(i), Opcode: OpSend, Signaled: true,
						SGEs: []SGE{{Addr: 0x100000, Len: 3, LKey: mrA.LKey}}})
					if err == nil {
						break
					}
					r.s.Sleep(50 * time.Microsecond) // SQ full: wait out retransmissions
				}
				// Serialize sends so the source buffer can be reused.
				c := pollN(r.a.cq, 1)[0]
				if c.WRID != uint64(i) || c.Status != WCSuccess {
					t.Errorf("send %d: CQE %+v", i, c)
					return
				}
			}
		})
		recv := pollN(r.b.cq, msgs)
		for i, c := range recv {
			if c.WRID != uint64(1000+i) {
				t.Fatalf("completion %d has WRID %d: reordered or dropped", i, c.WRID)
			}
			var buf [3]byte
			r.b.as.Read(0x100000+mem.Addr(i*4096), buf[:])
			if buf[0] != byte(i) || buf[1] != byte(i>>8) || buf[2] != 0xAB {
				t.Fatalf("message %d corrupted: % x", i, buf)
			}
		}
	})
	r.s.Run()
}

func TestRemoteProtectionError(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		r.b.regMR(t, 0x100000, 4096)
		// Bogus rkey: responder must NAK, requester must error the WQE.
		r.qpA.PostSend(SendWR{WRID: 66, Opcode: OpWrite, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: 16, LKey: mrA.LKey}},
			RemoteAddr: 0x100000, RKey: 0xdeadbeef})
		c := pollN(r.a.cq, 1)[0]
		if c.Status != WCRemoteAccessErr {
			t.Errorf("status = %v, want REM_ACCESS_ERR", c.Status)
		}
		if r.qpA.State() != StateError {
			t.Errorf("QP state = %v, want ERR", r.qpA.State())
		}
	})
	r.s.Run()
}

func TestOutOfRangeWriteRejected(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096) // one page only
		r.qpA.PostSend(SendWR{WRID: 67, Opcode: OpWrite, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: 4096, LKey: mrA.LKey}},
			RemoteAddr: 0x100800, RKey: mrB.RKey}) // spills past the MR end
		c := pollN(r.a.cq, 1)[0]
		if c.Status != WCRemoteAccessErr {
			t.Errorf("status = %v, want REM_ACCESS_ERR", c.Status)
		}
	})
	r.s.Run()
}

func TestUnsignaledCompletions(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096)
		for i := 0; i < 4; i++ {
			r.qpA.PostSend(SendWR{WRID: uint64(i), Opcode: OpWrite, Signaled: i == 3,
				SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
				RemoteAddr: 0x100000, RKey: mrB.RKey})
		}
		c := pollN(r.a.cq, 1)[0]
		if c.WRID != 3 {
			t.Errorf("CQE WRID = %d, want 3 (only signaled)", c.WRID)
		}
		r.s.Sleep(time.Millisecond)
		if r.a.cq.Len() != 0 {
			t.Errorf("unexpected extra completions: %d", r.a.cq.Len())
		}
		if r.qpA.SendQueueDepth() != 0 {
			t.Errorf("outstanding = %d after all acked", r.qpA.SendQueueDepth())
		}
	})
	r.s.Run()
}

func TestUDSendRecv(t *testing.T) {
	s := sim.New(42)
	net := fabric.New(s, fabric.Config{})
	muxA, muxB := fabric.NewMux(net, "hostA"), fabric.NewMux(net, "hostB")
	devA, devB := NewDevice(net, muxA, "hostA", Config{}), NewDevice(net, muxB, "hostB", Config{})
	asA, asB := mem.NewAddressSpace(), mem.NewAddressSpace()
	asA.Map(0x100000, 8192, "a")
	asB.Map(0x100000, 8192, "b")
	s.Go("setup", func() {
		pdA, pdB := devA.AllocPD(), devB.AllocPD()
		cqA, cqB := devA.CreateCQ(64, nil), devB.CreateCQ(64, nil)
		qpA := devA.CreateQP(pdA, UD, cqA, cqA, nil, QPCaps{})
		qpB := devB.CreateQP(pdB, UD, cqB, cqB, nil, QPCaps{})
		qpA.Modify(ModifyAttr{State: StateInit})
		qpA.Modify(ModifyAttr{State: StateRTR})
		qpA.Modify(ModifyAttr{State: StateRTS})
		qpB.Modify(ModifyAttr{State: StateInit})
		qpB.Modify(ModifyAttr{State: StateRTR})
		qpB.Modify(ModifyAttr{State: StateRTS})
		mrA, _ := devA.RegMR(pdA, asA, 0x100000, 8192, AccessLocalWrite)
		mrB, _ := devB.RegMR(pdB, asB, 0x100000, 8192, AccessLocalWrite)
		asA.Write(0x100000, []byte("datagram"))
		qpB.PostRecv(RecvWR{WRID: 11, SGEs: []SGE{{Addr: 0x101000, Len: 256, LKey: mrB.LKey}}})
		if err := qpA.PostSend(SendWR{WRID: 10, Opcode: OpSend, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
			RemoteNode: "hostB", RemoteQPN: qpB.QPN}); err != nil {
			t.Error(err)
			return
		}
		rc := pollN(cqB, 1)[0]
		if rc.SrcQP != qpA.QPN {
			t.Errorf("SrcQP = %#x, want %#x", rc.SrcQP, qpA.QPN)
		}
		var buf [8]byte
		asB.Read(0x101000, buf[:])
		if string(buf[:]) != "datagram" {
			t.Errorf("payload %q", buf)
		}
		sc := pollN(cqA, 1)[0]
		if sc.Status != WCSuccess {
			t.Errorf("UD send CQE %+v", sc)
		}
	})
	s.Run()
}

func TestCompletionChannelEvents(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		comp := r.b.dev.CreateCompChannel()
		evCQ := r.b.dev.CreateCQ(64, comp)
		qpB2 := r.b.dev.CreateQP(r.b.pd, RC, evCQ, evCQ, nil, QPCaps{})
		qpA2 := r.a.dev.CreateQP(r.a.pd, RC, r.a.cq, r.a.cq, nil, QPCaps{})
		connectRC(t, qpA2, "hostB", qpB2.QPN)
		connectRC(t, qpB2, "hostA", qpA2.QPN)
		mrA := r.a.regMR(t, 0x100000, 16<<10)
		mrB := r.b.regMR(t, 0x100000, 16<<10)
		evCQ.ReqNotify()
		if err := qpB2.PostRecv(RecvWR{WRID: 21, SGEs: []SGE{{Addr: 0x102000, Len: 64, LKey: mrB.LKey}}}); err != nil {
			t.Error(err)
			return
		}
		qpA2.PostSend(SendWR{WRID: 20, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: 16, LKey: mrA.LKey}}})
		cq := comp.Get() // blocks until the interrupt fires
		if cq != evCQ {
			t.Error("event for wrong CQ")
		}
		if got := cq.Poll(10); len(got) != 1 || got[0].WRID != 21 {
			t.Errorf("polled %+v", got)
		}
	})
	r.s.Run()
}

func TestSRQSharedAcrossQPs(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		srq := r.b.dev.CreateSRQ()
		qpB2 := r.b.dev.CreateQP(r.b.pd, RC, r.b.cq, r.b.cq, srq, QPCaps{})
		qpA2 := r.a.dev.CreateQP(r.a.pd, RC, r.a.cq, r.a.cq, nil, QPCaps{})
		connectRC(t, qpA2, "hostB", qpB2.QPN)
		connectRC(t, qpB2, "hostA", qpA2.QPN)
		mrA := r.a.regMR(t, 0x100000, 16<<10)
		mrB := r.b.regMR(t, 0x100000, 16<<10)
		srq.PostRecv(RecvWR{WRID: 31, SGEs: []SGE{{Addr: 0x103000, Len: 64, LKey: mrB.LKey}}})
		qpA2.PostSend(SendWR{WRID: 30, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: 4, LKey: mrA.LKey}}})
		rc := pollN(r.b.cq, 1)[0]
		if rc.WRID != 31 || rc.QPN != qpB2.QPN {
			t.Errorf("SRQ recv CQE %+v", rc)
		}
		if srq.Len() != 0 {
			t.Errorf("SRQ length %d after consumption", srq.Len())
		}
	})
	r.s.Run()
}

func TestMemoryWindowAccess(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 8192)
		mw, err := r.b.dev.BindMW(mrB, 0x101000, 4096, AccessRemoteWrite)
		if err != nil {
			t.Error(err)
			return
		}
		// Write through the window rkey within bounds: OK.
		r.a.as.Write(0x100000, []byte("mw"))
		r.qpA.PostSend(SendWR{WRID: 40, Opcode: OpWrite, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: 2, LKey: mrA.LKey}},
			RemoteAddr: 0x101000, RKey: mw.RKey})
		if c := pollN(r.a.cq, 1)[0]; c.Status != WCSuccess {
			t.Errorf("MW write failed: %v", c.Status)
		}
		// Outside the window (but inside the parent MR): rejected.
		qpA2 := r.a.dev.CreateQP(r.a.pd, RC, r.a.cq, r.a.cq, nil, QPCaps{})
		qpB2 := r.b.dev.CreateQP(r.b.pd, RC, r.b.cq, r.b.cq, nil, QPCaps{})
		connectRC(t, qpA2, "hostB", qpB2.QPN)
		connectRC(t, qpB2, "hostA", qpA2.QPN)
		qpA2.PostSend(SendWR{WRID: 41, Opcode: OpWrite, Signaled: true,
			SGEs:       []SGE{{Addr: 0x100000, Len: 2, LKey: mrA.LKey}},
			RemoteAddr: 0x100000, RKey: mw.RKey})
		if c := pollN(r.a.cq, 1)[0]; c.Status != WCRemoteAccessErr {
			t.Errorf("out-of-window write status %v", c.Status)
		}
	})
	r.s.Run()
}

func TestThroughputAtLineRate(t *testing.T) {
	// 64 outstanding 4 KB WRITEs, continuously reposted: goodput should
	// approach 100 Gbps less header overhead.
	const depth, size, rounds = 64, 4096, 20
	var gbps float64
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 1<<20)
		mrB := r.b.regMR(t, 0x100000, 1<<20)
		start := r.s.Now()
		post := func(id uint64) {
			r.qpA.PostSend(SendWR{WRID: id, Opcode: OpWrite, Signaled: true,
				SGEs:       []SGE{{Addr: 0x100000, Len: size, LKey: mrA.LKey}},
				RemoteAddr: 0x100000, RKey: mrB.RKey})
		}
		for i := 0; i < depth; i++ {
			post(uint64(i))
		}
		done := 0
		for done < depth*rounds {
			for _, c := range pollN(r.a.cq, 1) {
				if c.Status != WCSuccess {
					t.Errorf("CQE %+v", c)
					return
				}
				done++
				if done <= depth*(rounds-1) {
					post(uint64(done + depth))
				}
			}
		}
		elapsed := r.s.Now() - start
		gbps = float64(depth*rounds*size*8) / elapsed.Seconds() / 1e9
	})
	r.s.Run()
	if gbps < 85 || gbps > 100 {
		t.Fatalf("goodput %.1f Gbps, want ≈95 (100 Gbps minus overhead)", gbps)
	}
}

func TestQPSetupLatencyIsMilliseconds(t *testing.T) {
	// The control path must be slow (several hundred µs to ms per QP):
	// that is the premise of RDMA pre-setup (§2.2 challenge 1).
	var elapsed time.Duration
	s := sim.New(1)
	net := fabric.New(s, fabric.Config{})
	mux := fabric.NewMux(net, "h")
	dev := NewDevice(net, mux, "h", Config{})
	s.Go("setup", func() {
		pd := dev.AllocPD()
		start := s.Now()
		cq := dev.CreateCQ(64, nil)
		qp := dev.CreateQP(pd, RC, cq, cq, nil, QPCaps{})
		qp.Modify(ModifyAttr{State: StateInit})
		qp.Modify(ModifyAttr{State: StateRTR, RemoteNode: "h", RemoteQPN: 1})
		qp.Modify(ModifyAttr{State: StateRTS})
		elapsed = s.Now() - start
	})
	s.Run()
	if elapsed < 500*time.Microsecond || elapsed > 5*time.Millisecond {
		t.Fatalf("QP setup took %v, want O(1ms)", elapsed)
	}
}

func TestSparsePhysicalIdentifiers(t *testing.T) {
	// Physical QPNs and keys must not be dense; MigrRDMA's dense virtual
	// keys exist precisely because of this.
	s := sim.New(1)
	net := fabric.New(s, fabric.Config{})
	mux := fabric.NewMux(net, "h")
	dev := NewDevice(net, mux, "h", Config{})
	as := mem.NewAddressSpace()
	as.Map(0x100000, 1<<16, "a")
	s.Go("setup", func() {
		pd := dev.AllocPD()
		cq := dev.CreateCQ(16, nil)
		q1 := dev.CreateQP(pd, RC, cq, cq, nil, QPCaps{})
		q2 := dev.CreateQP(pd, RC, cq, cq, nil, QPCaps{})
		if q2.QPN == q1.QPN+1 {
			t.Error("QPNs are dense; they should be sparse like hardware")
		}
		m1, _ := dev.RegMR(pd, as, 0x100000, 4096, AccessLocalWrite)
		m2, _ := dev.RegMR(pd, as, 0x101000, 4096, AccessLocalWrite)
		if m2.LKey == m1.LKey+1 {
			t.Error("lkeys are dense; they should be sparse like hardware")
		}
	})
	s.Run()
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := &packet{
		Type: ptData, DstQPN: 0xABCDEF, SrcQPN: 0x123456, PSN: 0x777,
		Frag: 3, Last: true, Opcode: OpWriteImm, RemoteAddr: 0xdeadbeef000,
		RKey: 0xc0ffee, DLen: 123456, CompareAdd: 9, Swap: 10,
		Imm: 0x4242, HasImm: true, AckPSN: 0x999, Syndrome: 2,
		Payload: []byte("abc"),
	}
	q, err := decodePacket(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if q.DstQPN != p.DstQPN || q.SrcQPN != p.SrcQPN || q.PSN != p.PSN ||
		q.Frag != p.Frag || !q.Last || q.Opcode != p.Opcode ||
		q.RemoteAddr != p.RemoteAddr || q.RKey != p.RKey || q.DLen != p.DLen ||
		q.CompareAdd != p.CompareAdd || q.Swap != p.Swap || q.Imm != p.Imm ||
		!q.HasImm || q.AckPSN != p.AckPSN || q.Syndrome != p.Syndrome ||
		!bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestPSNArithmetic(t *testing.T) {
	if !psnLess(0xFFFFFF, 0) {
		t.Error("wraparound: 0xFFFFFF should be less than 0")
	}
	if psnLess(5, 5) {
		t.Error("psnLess(x,x) must be false")
	}
	if psnLess(10, 3) {
		t.Error("10 < 3 within window")
	}
	if psnAdd(0xFFFFFF, 1) != 0 {
		t.Error("psnAdd does not wrap")
	}
}

func TestSendAndWriteWithImmediate(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 8192)
		mrB := r.b.regMR(t, 0x100000, 8192)
		msg := []byte("imm payload")
		r.a.as.Write(0x100000, msg)

		// SEND_WITH_IMM consumes a receive and delivers the immediate.
		r.qpB.PostRecv(RecvWR{WRID: 11, SGEs: []SGE{{Addr: 0x100000, Len: 4096, LKey: mrB.LKey}}})
		if err := r.qpA.PostSend(SendWR{WRID: 1, Opcode: OpSendImm, Signaled: true, Imm: 0xfeedface,
			SGEs: []SGE{{Addr: 0x100000, Len: uint32(len(msg)), LKey: mrA.LKey}}}); err != nil {
			t.Error(err)
			return
		}
		pollN(r.a.cq, 1)
		rc := pollN(r.b.cq, 1)[0]
		if rc.WRID != 11 || rc.Status != WCSuccess || !rc.HasImm || rc.Imm != 0xfeedface {
			t.Errorf("SEND_WITH_IMM recv CQE = %+v", rc)
		}

		// WRITE_WITH_IMM places data remotely AND consumes a receive for
		// the immediate notification.
		r.qpB.PostRecv(RecvWR{WRID: 12, SGEs: []SGE{{Addr: 0x101000, Len: 4096, LKey: mrB.LKey}}})
		if err := r.qpA.PostSend(SendWR{WRID: 2, Opcode: OpWriteImm, Signaled: true, Imm: 42,
			SGEs:       []SGE{{Addr: 0x100000, Len: uint32(len(msg)), LKey: mrA.LKey}},
			RemoteAddr: 0x100800, RKey: mrB.RKey}); err != nil {
			t.Error(err)
			return
		}
		pollN(r.a.cq, 1)
		rc = pollN(r.b.cq, 1)[0]
		if rc.WRID != 12 || rc.Status != WCSuccess || !rc.HasImm || rc.Imm != 42 {
			t.Errorf("WRITE_WITH_IMM recv CQE = %+v", rc)
		}
		got := make([]byte, len(msg))
		r.b.as.Read(0x100800, got)
		if !bytes.Equal(got, msg) {
			t.Errorf("WRITE_WITH_IMM payload = %q", got)
		}
	})
	r.s.Run()
}
