package rnic

import (
	"testing"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// These tests pin the invalidation contract of the direct-mapped
// QPN/lkey/rkey lookup caches: once a resource is destroyed, no later
// lookup may be served from its cached entry — even when the physical
// identifier is reused by a later registration (the window a stale
// cache hit would silently cross protection domains through).

// newCacheHost builds a single device for control-verb cache tests.
func newCacheHost(t *testing.T) (*sim.Scheduler, *host) {
	t.Helper()
	s := sim.New(7)
	net := fabric.New(s, fabric.Config{})
	mux := fabric.NewMux(net, "h")
	h := &host{dev: NewDevice(net, mux, "h", Config{}), as: mem.NewAddressSpace()}
	if _, err := h.as.Map(0x100000, 4<<20, "arena"); err != nil {
		t.Fatal(err)
	}
	return s, h
}

// TestQPNCacheDestroyThenReuse destroys a QP, forces the allocator to
// hand the same QPN to a fresh QP, and checks lookupQP resolves the new
// object. A cache that misses the DestroyQP invalidation fails here by
// returning the dead QP.
func TestQPNCacheDestroyThenReuse(t *testing.T) {
	s, h := newCacheHost(t)
	s.Go("test", func() {
		h.pd = h.dev.AllocPD()
		h.cq = h.dev.CreateCQ(64, nil)
		caps := QPCaps{MaxSend: 16, MaxRecv: 16}
		qpnBefore := h.dev.nextQPN
		old := h.dev.CreateQP(h.pd, RC, h.cq, h.cq, nil, caps)

		// Populate the cache slot with the victim, as data-path traffic
		// on the flow would.
		if got, ok := h.dev.lookupQP(old.QPN); !ok || got != old {
			t.Fatalf("warm lookup = %v,%v; want the created QP", got, ok)
		}
		h.dev.DestroyQP(old)
		if _, ok := h.dev.lookupQP(old.QPN); ok {
			t.Fatalf("lookup of destroyed QPN %#x still resolves", old.QPN)
		}

		// Rewind the sparse allocator so the next CreateQP genuinely
		// reuses the QPN, the way a long-lived device eventually would.
		h.dev.nextQPN = qpnBefore
		fresh := h.dev.CreateQP(h.pd, RC, h.cq, h.cq, nil, caps)
		if fresh.QPN != old.QPN {
			t.Fatalf("allocator did not reuse the QPN: old %#x fresh %#x", old.QPN, fresh.QPN)
		}
		got, ok := h.dev.lookupQP(fresh.QPN)
		if !ok || got != fresh {
			t.Fatalf("stale cache hit: lookupQP(%#x) = %p, want the fresh QP %p", fresh.QPN, got, fresh)
		}
		if got == old {
			t.Fatalf("lookupQP returned the destroyed QP for reused QPN %#x", fresh.QPN)
		}
	})
	s.Run()
}

// TestKeyCacheDestroyThenReuse is the same contract for the lkey and
// rkey caches: after DeregMR and key reuse by a later registration over
// a different range, lookups must see the new region's bounds, not the
// dead one's.
func TestKeyCacheDestroyThenReuse(t *testing.T) {
	s, h := newCacheHost(t)
	s.Go("test", func() {
		h.pd = h.dev.AllocPD()
		keyBefore := h.dev.nextKey
		old := h.regMR(t, 0x100000, 0x1000)

		// Warm both key caches through the data-path lookup helpers.
		if mr, ok := h.dev.mrByLKey(old.LKey); !ok || mr != old {
			t.Fatalf("warm lkey lookup = %v,%v", mr, ok)
		}
		if _, ok := h.dev.lookupRemoteKey(old.RKey, 0x100000, 0x10, AccessRemoteWrite); !ok {
			t.Fatalf("warm rkey lookup rejected a live key")
		}
		h.dev.DeregMR(old)
		if _, ok := h.dev.mrByLKey(old.LKey); ok {
			t.Fatalf("deregistered lkey %#x still resolves", old.LKey)
		}
		if _, ok := h.dev.lookupRemoteKey(old.RKey, 0x100000, 0x10, AccessRemoteWrite); ok {
			t.Fatalf("deregistered rkey %#x still admitted", old.RKey)
		}

		// Reuse the exact keys for a region over a DIFFERENT range: a
		// stale cached MR is then observable through its bounds.
		h.dev.nextKey = keyBefore
		fresh := h.regMR(t, 0x200000, 0x1000)
		if fresh.LKey != old.LKey || fresh.RKey != old.RKey {
			t.Fatalf("allocator did not reuse keys: old (%#x,%#x) fresh (%#x,%#x)",
				old.LKey, old.RKey, fresh.LKey, fresh.RKey)
		}
		if mr, ok := h.dev.mrByLKey(fresh.LKey); !ok || mr != fresh {
			t.Fatalf("stale lkey cache hit: got %p want fresh MR %p", mr, fresh)
		}
		// In-bounds for the fresh region, out of bounds for the dead one.
		if _, ok := h.dev.lookupRemoteKey(fresh.RKey, 0x200000, 0x10, AccessRemoteWrite); !ok {
			t.Fatalf("fresh region rejected at its own address — stale bounds from the dead MR")
		}
		// In-bounds only for the DEAD region: admission means the cache
		// served the deregistered MR.
		if _, ok := h.dev.lookupRemoteKey(fresh.RKey, 0x100000, 0x10, AccessRemoteWrite); ok {
			t.Fatalf("reused rkey admitted the dead region's range — stale cache hit")
		}
	})
	s.Run()
}

// TestLookupCacheCollisions drives more objects than the cache has
// slots, with lookups alternating across slot-colliding identifiers,
// and checks destroy only ever invalidates the victim. The direct map
// must behave as a pure accelerator: never a wrong object, never a
// dropped live one.
func TestLookupCacheCollisions(t *testing.T) {
	s, h := newCacheHost(t)
	s.Go("test", func() {
		h.pd = h.dev.AllocPD()
		h.cq = h.dev.CreateCQ(256, nil)
		caps := QPCaps{MaxSend: 16, MaxRecv: 16}
		qps := make([]*QP, 3*lookupCacheSlots)
		for i := range qps {
			qps[i] = h.dev.CreateQP(h.pd, RC, h.cq, h.cq, nil, caps)
		}
		// Interleave lookups so slots keep being evicted and repopulated.
		for round := 0; round < 4; round++ {
			for i, qp := range qps {
				if got, ok := h.dev.lookupQP(qp.QPN); !ok || got != qp {
					t.Fatalf("round %d qp %d: lookup = %v,%v", round, i, got, ok)
				}
			}
		}
		// Destroy every other QP; survivors must still resolve, victims
		// must not — regardless of which of them a slot last held.
		for i := 0; i < len(qps); i += 2 {
			h.dev.DestroyQP(qps[i])
		}
		for i, qp := range qps {
			got, ok := h.dev.lookupQP(qp.QPN)
			if i%2 == 0 {
				if ok {
					t.Fatalf("destroyed qp %d (%#x) still resolves", i, qp.QPN)
				}
				continue
			}
			if !ok || got != qp {
				t.Fatalf("live qp %d (%#x) lost: %v,%v", i, qp.QPN, got, ok)
			}
		}
	})
	s.Run()
}
