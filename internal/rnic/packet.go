package rnic

import (
	"encoding/binary"
	"fmt"

	"migrrdma/internal/mem"
)

// packetType is the wire-level message kind, the analogue of the BTH
// opcode field in RoCEv2.
type packetType uint8

const (
	ptData       packetType = iota // SEND / WRITE fragment
	ptReadReq                      // RDMA READ request
	ptReadResp                     // RDMA READ response fragment
	ptAtomicReq                    // CMP_SWAP / FETCH_ADD request
	ptAtomicResp                   // atomic response (original value)
	ptAck                          // cumulative acknowledgement
	ptNak                          // out-of-sequence NAK (go-back-N)
	ptRnrNak                       // receiver-not-ready NAK
)

// wireOverhead approximates Ethernet+IPv4+UDP+BTH+ICRC framing bytes per
// RoCEv2 frame.
const wireOverhead = 58

// packet is the decoded form of one fabric frame payload.
type packet struct {
	Type   packetType
	DstQPN uint32 // 24-bit destination QP
	SrcQPN uint32 // 24-bit source QP
	PSN    uint32 // message sequence number (24-bit)
	Frag   uint16 // fragment index within the message
	Last   bool   // final fragment of the message
	Opcode Opcode // original verb, for Data/ReadResp

	// One-sided parameters (RETH / AtomicETH).
	RemoteAddr mem.Addr
	RKey       uint32
	DLen       uint32 // total message length
	CompareAdd uint64
	Swap       uint64

	Imm    uint32
	HasImm bool

	// Ack/Nak fields (AETH).
	AckPSN   uint32
	Syndrome uint8

	Payload []byte

	// udNode is the destination fabric node for UD sends. It is not
	// encoded on the wire (routing metadata from the address handle).
	udNode string
}

// packetHeaderLen is the fixed encoded header size.
const packetHeaderLen = 1 + 3 + 3 + 3 + 2 + 1 + 1 + 8 + 4 + 4 + 8 + 8 + 4 + 1 + 3 + 1 + 2

// encode serializes the packet into a fresh buffer.
func (p *packet) encode() []byte {
	buf := make([]byte, packetHeaderLen+len(p.Payload))
	p.encodeInto(buf)
	return buf
}

// encodeInto serializes the packet into b, which must be exactly
// packetHeaderLen+len(p.Payload) bytes. Every header byte is written
// unconditionally (no stale flag bytes) so b may come from a buffer
// pool without zeroing.
func (p *packet) encodeInto(b []byte) {
	b[0] = byte(p.Type)
	put24(b[1:], p.DstQPN)
	put24(b[4:], p.SrcQPN)
	put24(b[7:], p.PSN)
	binary.BigEndian.PutUint16(b[10:], p.Frag)
	b[12] = 0
	if p.Last {
		b[12] = 1
	}
	b[13] = byte(p.Opcode)
	binary.BigEndian.PutUint64(b[14:], uint64(p.RemoteAddr))
	binary.BigEndian.PutUint32(b[22:], p.RKey)
	binary.BigEndian.PutUint32(b[26:], p.DLen)
	binary.BigEndian.PutUint64(b[30:], p.CompareAdd)
	binary.BigEndian.PutUint64(b[38:], p.Swap)
	binary.BigEndian.PutUint32(b[46:], p.Imm)
	b[50] = 0
	if p.HasImm {
		b[50] = 1
	}
	put24(b[51:], p.AckPSN)
	b[54] = p.Syndrome
	binary.BigEndian.PutUint16(b[55:], uint16(len(p.Payload)))
	copy(b[packetHeaderLen:], p.Payload)
}

// decodePacket parses wire bytes into a fresh packet.
func decodePacket(b []byte) (*packet, error) {
	p := &packet{}
	if err := decodePacketInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// decodePacketInto parses wire bytes into p, overwriting every field (p
// may come from a pool). The payload aliases b.
func decodePacketInto(p *packet, b []byte) error {
	if len(b) < packetHeaderLen {
		return fmt.Errorf("rnic: short packet (%d bytes)", len(b))
	}
	*p = packet{
		Type:       packetType(b[0]),
		DstQPN:     get24(b[1:]),
		SrcQPN:     get24(b[4:]),
		PSN:        get24(b[7:]),
		Frag:       binary.BigEndian.Uint16(b[10:]),
		Last:       b[12] == 1,
		Opcode:     Opcode(b[13]),
		RemoteAddr: mem.Addr(binary.BigEndian.Uint64(b[14:])),
		RKey:       binary.BigEndian.Uint32(b[22:]),
		DLen:       binary.BigEndian.Uint32(b[26:]),
		CompareAdd: binary.BigEndian.Uint64(b[30:]),
		Swap:       binary.BigEndian.Uint64(b[38:]),
		Imm:        binary.BigEndian.Uint32(b[46:]),
		HasImm:     b[50] == 1,
		AckPSN:     get24(b[51:]),
		Syndrome:   b[54],
	}
	plen := int(binary.BigEndian.Uint16(b[55:]))
	if len(b) != packetHeaderLen+plen {
		return fmt.Errorf("rnic: packet length mismatch: have %d, header says %d", len(b)-packetHeaderLen, plen)
	}
	p.Payload = b[packetHeaderLen:]
	return nil
}

// wireSize is the on-wire frame size of the packet.
func (p *packet) wireSize() int { return wireOverhead + packetHeaderLen + len(p.Payload) }

// PeekDstQPN reads the destination QPN out of encoded wire bytes without
// a full decode. The plug-and-forward tunnel uses it to match and
// translate frames for migrating QPs.
func PeekDstQPN(b []byte) (uint32, bool) {
	if len(b) < packetHeaderLen {
		return 0, false
	}
	return get24(b[1:]), true
}

// RewriteDstQPN overwrites the destination QPN of encoded wire bytes in
// place. The destination daemon uses it to retarget a forwarded frame
// from the old (source-side) physical QPN to the restored one.
func RewriteDstQPN(b []byte, qpn uint32) bool {
	if len(b) < packetHeaderLen {
		return false
	}
	put24(b[1:], qpn)
	return true
}

// IsRequestFrame reports whether encoded wire bytes carry a
// requester-to-responder request (data, read request, atomic request).
// Only request frames are worth re-offering after a plug flush: a
// response or ack/nak belongs to the torn-down source-side connection,
// and replaying its stale AckPSN against the restored QPs could
// acknowledge data the new stream never delivered.
func IsRequestFrame(b []byte) bool {
	if len(b) < 1 {
		return false
	}
	switch packetType(b[0]) {
	case ptData, ptReadReq, ptAtomicReq:
		return true
	}
	return false
}

// WireSizeOf is the on-wire frame size for encoded packet bytes, used
// when a forwarded frame is reconstructed from its wire bytes.
func WireSizeOf(b []byte) int { return wireOverhead + len(b) }

func put24(b []byte, v uint32) {
	b[0] = byte(v >> 16)
	b[1] = byte(v >> 8)
	b[2] = byte(v)
}

func get24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}

// psnAdd advances a 24-bit PSN.
func psnAdd(psn, n uint32) uint32 { return (psn + n) & 0xFFFFFF }

// psnLess compares PSNs modulo 2^24 with the usual serial-number
// arithmetic (a window of half the space).
func psnLess(a, b uint32) bool {
	return (b-a)&0xFFFFFF != 0 && (b-a)&0xFFFFFF < 1<<23
}
