package rnic

import (
	"fmt"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// Config sets device parameters. Zero fields take defaults that mirror a
// ConnectX-5-class NIC on the paper's testbed.
type Config struct {
	MTU        int           // max payload bytes per frame
	RTO        time.Duration // retransmission timeout
	RNRDelay   time.Duration // requester back-off after an RNR NAK
	MaxRetries int           // transport retries before WCRetryExceeded
	// RNRRetries bounds receiver-not-ready retries; 0 means infinite
	// (the rnr_retry=7 encoding of the verbs spec, and the default of
	// most datacenter deployments).
	RNRRetries int
	DMSize     int // on-chip device memory pool (bytes)

	// Control-path command latencies (driver + firmware round trips).
	// Their sum along create→INIT→RTR→RTS is the "several milliseconds"
	// QP setup cost the paper cites ([53], §2.2) and is what makes
	// RestoreRDMA dominate the no-presetup blackout in Fig. 3.
	CreateCQLat   time.Duration
	CreateQPLat   time.Duration
	ModifyInitLat time.Duration
	ModifyRTRLat  time.Duration
	ModifyRTSLat  time.Duration
	ResetQPLat    time.Duration
	RegMRLat      time.Duration // base cost
	RegMRPerMB    time.Duration // page pinning cost per MiB
	DestroyLat    time.Duration // destroy/dealloc commands

	// Metrics, when set, receives the device/QP/CQ counters (the
	// ethtool-style telemetry the evaluation samples). A nil registry is
	// replaced by a detached one so increments are always valid.
	Metrics *metrics.Registry

	// SplitRetxAccounting registers the device-level
	// retransmitted_packets / duplicated_packets counters that separate
	// genuine go-back-N retransmissions (TX side) from redundant inbound
	// frames such as switch duplicates (RX side). Off by default because
	// registering metrics changes snapshot hashes pinned by the chaos
	// goldens; the plug-and-forward tier and the cutover experiment turn
	// it on.
	SplitRetxAccounting bool
}

// DefaultConfig returns the testbed-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		MTU:           4096,
		RTO:           500 * time.Microsecond,
		RNRDelay:      100 * time.Microsecond,
		MaxRetries:    7,
		DMSize:        256 << 10,
		CreateCQLat:   80 * time.Microsecond,
		CreateQPLat:   150 * time.Microsecond,
		ModifyInitLat: 100 * time.Microsecond,
		ModifyRTRLat:  400 * time.Microsecond,
		ModifyRTSLat:  250 * time.Microsecond,
		ResetQPLat:    900 * time.Microsecond,
		RegMRLat:      30 * time.Microsecond,
		RegMRPerMB:    12 * time.Microsecond,
		DestroyLat:    20 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MTU == 0 {
		c.MTU = d.MTU
	}
	if c.RTO == 0 {
		c.RTO = d.RTO
	}
	if c.RNRDelay == 0 {
		c.RNRDelay = d.RNRDelay
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.DMSize == 0 {
		c.DMSize = d.DMSize
	}
	if c.CreateCQLat == 0 {
		c.CreateCQLat = d.CreateCQLat
	}
	if c.CreateQPLat == 0 {
		c.CreateQPLat = d.CreateQPLat
	}
	if c.ModifyInitLat == 0 {
		c.ModifyInitLat = d.ModifyInitLat
	}
	if c.ModifyRTRLat == 0 {
		c.ModifyRTRLat = d.ModifyRTRLat
	}
	if c.ModifyRTSLat == 0 {
		c.ModifyRTSLat = d.ModifyRTSLat
	}
	if c.ResetQPLat == 0 {
		c.ResetQPLat = d.ResetQPLat
	}
	if c.RegMRLat == 0 {
		c.RegMRLat = d.RegMRLat
	}
	if c.RegMRPerMB == 0 {
		c.RegMRPerMB = d.RegMRPerMB
	}
	if c.DestroyLat == 0 {
		c.DestroyLat = d.DestroyLat
	}
	return c
}

// Device is one simulated RNIC attached to a fabric node.
type Device struct {
	sched *sim.Scheduler
	net   *fabric.Network
	node  string
	cfg   Config

	pds    map[uint32]*PD
	mrs    map[uint32]*MR // by lkey
	rmrs   map[uint32]*MR // by rkey
	mws    map[uint32]*MW // by rkey
	cqs    map[uint32]*CQ
	qps    map[uint32]*QP
	srqs   map[uint32]*SRQ
	dmUsed int

	// Sparse allocators: physical identifiers on real NICs are neither
	// dense nor predictable, which is exactly why MigrRDMA introduces
	// virtual dense keys (§3.3). The strides keep that property visible.
	nextQPN uint32
	nextKey uint32
	nextID  uint32

	rxq  fifo[rxItem]
	work *sim.Cond

	// TX pacer: frames are pulled (control first, then responder data,
	// then requester data in QP round-robin) only when the uplink is
	// free, so retransmission timers see true wire occupancy and deep
	// send queues drain at line rate instead of flooding the fabric.
	ctlq   fifo[fabric.Frame]
	respq  fifo[fabric.Frame]
	txRing fifo[*QP]
	txBusy bool
	pumpCb func() // the serialization-slot callback, bound once

	closed bool

	// Hot-path recycling: packet structs and wire buffers are pooled so
	// the steady-state data path allocates nothing per frame. Buffers
	// hold one max-size frame (header + MTU); a received buffer is
	// recycled after its packet is fully handled (handlers copy payload
	// bytes out before returning).
	freePkts []*packet
	bufCap   int
	// gatherBuf is the DMA-gather scratch: each outbound fragment is
	// gathered here and immediately copied into its wire buffer by
	// encodeInto, so the scratch is reusable for the next fragment.
	gatherBuf []byte

	// Bounded direct-mapped lookup caches for the per-packet map lookups
	// (QPN→QP, lkey→MR, rkey→MR). A slot index plus a key compare
	// replaces a map hash on the common repeated-flow case, and — unlike
	// the single-entry predecessors — the caches survive many flows
	// interleaving on one device (the shared-QP tenancy fan-out).
	// Identifiers come from sparse odd-stride allocators, so the low
	// bits distribute well across slots. Destroy/dereg invalidates the
	// victim's slot directly; a slot is only cleared when it still holds
	// the destroyed object, so an unrelated resident is never evicted.
	qpCache   [lookupCacheSlots]*QP
	lkeyCache [lookupCacheSlots]*MR
	rkeyCache [lookupCacheSlots]*MR

	// tap, when installed, observes data-path events for external
	// checkers (the chaos harness' completion ledger).
	tap *Tap

	// fwdQPNs/fwdFn implement the source-side forwarding rule of the
	// plug-and-forward cutover: frames addressed to a listed (suspended)
	// QPN are handed to fwdFn — the tunnel toward the destination's plug
	// buffer — instead of the local transport, so the blackout window
	// produces no NAKs or go-back-N from the half-dead source QPs.
	fwdQPNs map[uint32]bool
	fwdFn   func(fabric.Frame)
	mFwd    *metrics.Counter

	// reg is the metrics registry; mTx/mRx count data-path wire bytes
	// (the mlx5 ethtool counters used for Fig. 5's throughput sampling).
	// Consumers read them through the registry, never device fields.
	reg                  *metrics.Registry
	mTx, mRx             *metrics.Counter
	mTxFrames, mRxFrames *metrics.Counter
	// mRetxDev / mDupDev are the node-level split retransmission
	// accounting (Config.SplitRetxAccounting); nil when the split is off.
	mRetxDev, mDupDev *metrics.Counter
}

// Tap observes device data-path events for external checkers. All
// callbacks run inline on the scheduler loop and must not block; nil
// callbacks are skipped.
type Tap struct {
	// CQE fires for every completion entering a CQ, before software
	// polls it (the completion ledger).
	CQE func(node string, cq uint32, e CQE)
	// AckedPSN fires when the requester marks a send-queue entry
	// acknowledged. Entries never leave the acked state, so each PSN
	// fires at most once per QP incarnation and in PSN order — the
	// monotonicity invariant go-back-N must preserve.
	AckedPSN func(node string, qpn, psn uint32)
	// ExpPSN fires when the responder advances its expected PSN.
	ExpPSN func(node string, qpn, psn uint32)
	// Dereg fires when an MR is deregistered, with its rkey.
	Dereg func(node string, rkey uint32)
	// RemoteKey fires on every inbound rkey protection check with the
	// verdict, letting a checker prove no post-Dereg rkey is admitted.
	RemoteKey func(node string, rkey uint32, granted bool)
}

// SetTap installs (or, with nil, removes) the device tap.
func (d *Device) SetTap(t *Tap) { d.tap = t }

func (d *Device) tapCQE(cq uint32, e CQE) {
	if d.tap != nil && d.tap.CQE != nil {
		d.tap.CQE(d.node, cq, e)
	}
}

func (d *Device) tapAcked(qpn, psn uint32) {
	if d.tap != nil && d.tap.AckedPSN != nil {
		d.tap.AckedPSN(d.node, qpn, psn)
	}
}

func (d *Device) tapExpPSN(qpn, psn uint32) {
	if d.tap != nil && d.tap.ExpPSN != nil {
		d.tap.ExpPSN(d.node, qpn, psn)
	}
}

// NewDevice creates an RNIC on the given fabric node and registers its
// receive path on mux port "rdma".
func NewDevice(net *fabric.Network, mux *fabric.Mux, node string, cfg Config) *Device {
	d := &Device{
		sched:   net.Scheduler(),
		net:     net,
		node:    node,
		cfg:     cfg.withDefaults(),
		pds:     make(map[uint32]*PD),
		mrs:     make(map[uint32]*MR),
		rmrs:    make(map[uint32]*MR),
		mws:     make(map[uint32]*MW),
		cqs:     make(map[uint32]*CQ),
		qps:     make(map[uint32]*QP),
		srqs:    make(map[uint32]*SRQ),
		nextQPN: 0x000100,
		nextKey: 0x2000,
		nextID:  1,
	}
	d.reg = d.cfg.Metrics
	if d.reg == nil {
		d.reg = metrics.New(d.sched.Now)
	}
	l := metrics.Labels{"node": node}
	d.mTx = d.reg.Counter("rnic", "tx_bytes", l)
	d.mRx = d.reg.Counter("rnic", "rx_bytes", l)
	d.mTxFrames = d.reg.Counter("rnic", "tx_frames", l)
	d.mRxFrames = d.reg.Counter("rnic", "rx_frames", l)
	if d.cfg.SplitRetxAccounting {
		d.mRetxDev = d.reg.Counter("rnic", "retransmitted_packets", l)
		d.mDupDev = d.reg.Counter("rnic", "duplicated_packets", l)
	}
	d.work = sim.NewCond(d.sched, "rnic-work@"+node)
	d.bufCap = packetHeaderLen + d.cfg.MTU
	d.pumpCb = func() {
		d.txBusy = false
		d.pump()
	}
	mux.Register(PortRDMA, d.onFrame)
	d.sched.GoDaemon("rnic-engine@"+node, d.engineLoop)
	return d
}

// --- Hot-path pools and caches --------------------------------------------

// getPkt takes a zeroed packet from the free list or allocates one.
func (d *Device) getPkt() *packet {
	if n := len(d.freePkts); n > 0 {
		p := d.freePkts[n-1]
		d.freePkts[n-1] = nil
		d.freePkts = d.freePkts[:n-1]
		return p
	}
	return &packet{}
}

// putPkt recycles a packet the device is done with.
func (d *Device) putPkt(p *packet) {
	*p = packet{}
	d.freePkts = append(d.freePkts, p)
}

// getBuf returns an n-byte wire buffer, pooled when n fits a max-size
// frame. The pool is the network-wide one: a buffer is allocated by the
// sending NIC and retired by the receiving NIC, so a per-device pool
// would drain on any host that transmits more frames than it receives.
func (d *Device) getBuf(n int) []byte {
	if n <= d.bufCap {
		if b := d.net.TakeBuf(n); b != nil {
			return b
		}
		return make([]byte, n, d.bufCap)
	}
	return make([]byte, n)
}

// putBuf retires a wire buffer if it has this device's full frame
// capacity (buffers arriving from a peer device with the same MTU
// qualify; odd-size test frames fall back to the GC).
func (d *Device) putBuf(b []byte) {
	if cap(b) >= d.bufCap {
		d.net.PutBuf(b)
	}
}

// lookupCacheSlots sizes the direct-mapped lookup caches. Eight slots
// keep a handful of concurrently hot flows resident (the multi-tenant
// shared-QP case) while the whole cache is still two cache lines.
const lookupCacheSlots = 8

// cacheSlot maps an identifier onto its direct-mapped slot.
func cacheSlot(id uint32) uint32 { return id & (lookupCacheSlots - 1) }

// lookupQP resolves a QPN, serving repeated lookups of hot flows from
// the direct-mapped cache.
func (d *Device) lookupQP(qpn uint32) (*QP, bool) {
	slot := &d.qpCache[cacheSlot(qpn)]
	if qp := *slot; qp != nil && qp.QPN == qpn {
		return qp, true
	}
	qp, ok := d.qps[qpn]
	if ok {
		*slot = qp
	}
	return qp, ok
}

// mrByLKey resolves an lkey, serving repeated lookups of hot regions
// from the direct-mapped cache.
func (d *Device) mrByLKey(lkey uint32) (*MR, bool) {
	slot := &d.lkeyCache[cacheSlot(lkey)]
	if mr := *slot; mr != nil && mr.LKey == lkey {
		return mr, true
	}
	mr, ok := d.mrs[lkey]
	if ok {
		*slot = mr
	}
	return mr, ok
}

// PortRDMA is the fabric mux port RDMA traffic travels on.
const PortRDMA = "rdma"

// Node returns the fabric node name the device is attached to.
func (d *Device) Node() string { return d.node }

// MTU returns the configured maximum payload per frame.
func (d *Device) MTU() int { return d.cfg.MTU }

// Scheduler returns the scheduler the device runs on.
func (d *Device) Scheduler() *sim.Scheduler { return d.sched }

// Metrics returns the registry the device reports into. Consumers (the
// trace sampler, the chaos harness) resolve counter handles from it
// instead of reading device fields.
func (d *Device) Metrics() *metrics.Registry { return d.reg }

// qpLabels builds the per-QP metric labels.
func (d *Device) qpLabels(qpn uint32) metrics.Labels {
	return metrics.Labels{"node": d.node, "qpn": fmt.Sprintf("%#06x", qpn)}
}

// allocQPN returns a fresh sparse 24-bit QP number.
func (d *Device) allocQPN() uint32 {
	q := d.nextQPN
	d.nextQPN = (d.nextQPN + 0x1B) & 0xFFFFFF // sparse stride
	return q
}

// allocKey returns a fresh sparse protection key.
func (d *Device) allocKey() uint32 {
	k := d.nextKey
	d.nextKey += 0x107
	return k
}

func (d *Device) allocID() uint32 {
	id := d.nextID
	d.nextID++
	return id
}

// QPCount reports the number of live QPs on the device. Teardown leak
// checks (session close mid-migration, chaos invariants) assert it
// returns to the expected floor.
func (d *Device) QPCount() int { return len(d.qps) }

// MRCount reports the number of registered MRs on the device.
func (d *Device) MRCount() int { return len(d.mrs) }

// SetForward installs (or, with nil maps, removes) the source-side
// forwarding rule: frames addressed to a listed QPN bypass the local
// transport and are handed to fn, which tunnels them to the
// destination's plug buffer. fn must copy any bytes it keeps — the
// frame buffer is recycled when fn returns. The rule also acts as a
// divergence guard: once the final dump is taken, the dumped QP state
// can no longer be mutated by late arrivals.
func (d *Device) SetForward(qpns map[uint32]bool, fn func(fabric.Frame)) {
	if qpns == nil || fn == nil {
		d.fwdQPNs, d.fwdFn = nil, nil
		return
	}
	if d.mFwd == nil {
		// Registered on first use: the metric only exists in
		// plug-and-forward runs, keeping go-back-N snapshot hashes intact.
		d.mFwd = d.reg.Counter("rnic", "forwarded_packets", metrics.Labels{"node": d.node})
	}
	d.fwdQPNs, d.fwdFn = qpns, fn
}

// onFrame is the fabric receive handler (inline, non-blocking).
func (d *Device) onFrame(f fabric.Frame) {
	if d.closed {
		return
	}
	p := d.getPkt()
	if err := decodePacketInto(p, f.Data); err != nil {
		d.putPkt(p)
		return // corrupt frame: dropped, transport recovery handles it
	}
	d.mRx.Add(int64(f.Size))
	d.mRxFrames.Inc()
	if d.fwdQPNs != nil && d.fwdQPNs[p.DstQPN] {
		d.mFwd.Inc()
		d.putPkt(p)
		d.fwdFn(f)
		d.putBuf(f.Data)
		return
	}
	d.rxq.push(rxItem{p: p, src: f.Src, buf: f.Data})
	d.work.Signal()
}

// pump starts the TX pacer if idle: one frame goes on the wire per link
// serialization slot.
func (d *Device) pump() {
	if d.txBusy || d.closed {
		return
	}
	f, ok := d.nextFrame()
	if !ok {
		return
	}
	d.txBusy = true
	d.mTx.Add(int64(f.Size))
	d.mTxFrames.Inc()
	d.net.Send(f)
	d.sched.AfterFunc(d.net.SerializationTime(f.Size), d.pumpCb)
}

// engineLoop is the device processing engine: it drains received packets
// and advances requester state. It runs until the device is closed.
func (d *Device) engineLoop() {
	for !d.closed {
		if d.rxq.len() == 0 {
			d.work.Wait()
			continue
		}
		it := d.rxq.pop()
		d.handlePacket(it)
		// The handlers copy payload bytes out before returning, so the
		// packet and its wire buffer can be recycled here.
		d.putPkt(it.p)
		d.putBuf(it.buf)
	}
}

// Close shuts the device down; in-flight work is dropped on the floor
// (the migration source reclaiming resources after migration).
func (d *Device) Close() {
	d.closed = true
	d.work.Broadcast()
}

// errQPGone is returned by control verbs naming unknown resources.
func errUnknown(kind string, id uint32) error {
	return fmt.Errorf("rnic: unknown %s %#x", kind, id)
}

// --- Protection domains -------------------------------------------------

// PD is a protection domain.
type PD struct {
	Handle uint32
	dev    *Device
}

// AllocPD allocates a protection domain.
func (d *Device) AllocPD() *PD {
	pd := &PD{Handle: d.allocID(), dev: d}
	d.pds[pd.Handle] = pd
	return pd
}

// DeallocPD releases a protection domain.
func (d *Device) DeallocPD(pd *PD) {
	delete(d.pds, pd.Handle)
}

// --- Memory regions ------------------------------------------------------

// MR is a registered memory region. LKey and RKey are the physical keys
// the device allocated; they differ across registrations even of the
// same buffer, which is what MigrRDMA's key virtualization hides.
type MR struct {
	LKey, RKey uint32
	PD         *PD
	Addr       mem.Addr
	Len        uint64
	Access     Access
	as         *mem.AddressSpace
}

// RegMR registers [addr, addr+len) of the address space as. The caller
// proc is blocked for the (size-dependent) pinning latency.
func (d *Device) RegMR(pd *PD, as *mem.AddressSpace, addr mem.Addr, length uint64, access Access) (*MR, error) {
	if !as.Mapped(addr, length) {
		return nil, fmt.Errorf("rnic: RegMR of unmapped range [%#x,+%#x)", uint64(addr), length)
	}
	d.sched.Sleep(d.cfg.RegMRLat + time.Duration(length>>20)*d.cfg.RegMRPerMB)
	mr := &MR{
		LKey:   d.allocKey(),
		RKey:   d.allocKey(),
		PD:     pd,
		Addr:   addr,
		Len:    length,
		Access: access,
		as:     as,
	}
	d.mrs[mr.LKey] = mr
	d.rmrs[mr.RKey] = mr
	return mr, nil
}

// DeregMR deregisters a memory region.
func (d *Device) DeregMR(mr *MR) {
	d.sched.Sleep(d.cfg.DestroyLat)
	delete(d.mrs, mr.LKey)
	delete(d.rmrs, mr.RKey)
	if slot := &d.lkeyCache[cacheSlot(mr.LKey)]; *slot == mr {
		*slot = nil
	}
	if slot := &d.rkeyCache[cacheSlot(mr.RKey)]; *slot == mr {
		*slot = nil
	}
	if d.tap != nil && d.tap.Dereg != nil {
		d.tap.Dereg(d.node, mr.RKey)
	}
}

// lookupLocal resolves an SGE to its MR, validating range and (for recv
// targets) local-write permission.
func (d *Device) lookupLocal(pd *PD, sge SGE, needWrite bool) (*MR, error) {
	mr, ok := d.mrByLKey(sge.LKey)
	if !ok {
		return nil, errUnknown("lkey", sge.LKey)
	}
	if mr.PD != pd {
		return nil, fmt.Errorf("rnic: lkey %#x belongs to a different PD", sge.LKey)
	}
	if sge.Addr < mr.Addr || sge.Addr+mem.Addr(sge.Len) > mr.Addr+mem.Addr(mr.Len) {
		return nil, fmt.Errorf("rnic: SGE [%#x,+%d) outside MR", uint64(sge.Addr), sge.Len)
	}
	if needWrite && mr.Access&AccessLocalWrite == 0 {
		return nil, fmt.Errorf("rnic: MR lacks LOCAL_WRITE")
	}
	return mr, nil
}

// lookupRemote resolves an inbound rkey for a one-sided access.
func (d *Device) lookupRemote(rkey uint32, addr mem.Addr, length uint32, need Access) (*mem.AddressSpace, bool) {
	as, ok := d.lookupRemoteKey(rkey, addr, length, need)
	if d.tap != nil && d.tap.RemoteKey != nil {
		d.tap.RemoteKey(d.node, rkey, ok)
	}
	return as, ok
}

func (d *Device) lookupRemoteKey(rkey uint32, addr mem.Addr, length uint32, need Access) (*mem.AddressSpace, bool) {
	slot := &d.rkeyCache[cacheSlot(rkey)]
	mr, ok := *slot, false
	if mr != nil && mr.RKey == rkey {
		ok = true
	} else {
		mr, ok = d.rmrs[rkey]
		if ok {
			*slot = mr
		}
	}
	if ok {
		// The cache only short-circuits the map hash; the bounds and
		// access checks run on every packet, as the hardware's MTT walk
		// would.
		if addr >= mr.Addr && addr+mem.Addr(length) <= mr.Addr+mem.Addr(mr.Len) && mr.Access&need != 0 {
			return mr.as, true
		}
		return nil, false
	}
	if mw, ok := d.mws[rkey]; ok {
		if addr >= mw.Addr && addr+mem.Addr(length) <= mw.Addr+mem.Addr(mw.Len) && mw.Access&need != 0 {
			return mw.MR.as, true
		}
	}
	return nil, false
}

// --- Memory windows -------------------------------------------------------

// MW is a memory window bound over a subrange of an MR, carrying its own
// rkey (type-2 window semantics, §3.2 "memory windows").
type MW struct {
	RKey   uint32
	MR     *MR
	Addr   mem.Addr
	Len    uint64
	Access Access
}

// BindMW binds a window over [addr, addr+len) of mr and returns it.
func (d *Device) BindMW(mr *MR, addr mem.Addr, length uint64, access Access) (*MW, error) {
	if addr < mr.Addr || addr+mem.Addr(length) > mr.Addr+mem.Addr(mr.Len) {
		return nil, fmt.Errorf("rnic: MW bind outside MR")
	}
	mw := &MW{RKey: d.allocKey(), MR: mr, Addr: addr, Len: length, Access: access}
	d.mws[mw.RKey] = mw
	return mw, nil
}

// DeallocMW releases a memory window.
func (d *Device) DeallocMW(mw *MW) { delete(d.mws, mw.RKey) }

// --- On-chip device memory ------------------------------------------------

// DM is an allocation of on-chip device memory (ibv_alloc_dm). The
// region is exposed to the process by mapping a device VMA; §3.3 restores
// it by re-allocating and mremap()ing to the original virtual address.
type DM struct {
	Handle uint32
	Len    uint64
}

// AllocDM reserves on-chip memory.
func (d *Device) AllocDM(length uint64) (*DM, error) {
	if d.dmUsed+int(length) > d.cfg.DMSize {
		return nil, fmt.Errorf("rnic: on-chip memory exhausted (%d of %d used)", d.dmUsed, d.cfg.DMSize)
	}
	d.dmUsed += int(length)
	return &DM{Handle: d.allocID(), Len: length}, nil
}

// FreeDM releases on-chip memory.
func (d *Device) FreeDM(dm *DM) { d.dmUsed -= int(dm.Len) }
