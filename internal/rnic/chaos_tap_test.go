package rnic

import (
	"testing"
	"time"

	"migrrdma/internal/mem"
)

// TestDuplicatedSendSingleCQE duplicates every frame on both directions
// of an RC connection and asserts transparency: a duplicated SEND must
// produce exactly one receive completion (the copy takes the
// replyDuplicate path and is re-acknowledged, not re-executed), and
// duplicated ACKs must not complete anything twice.
func TestDuplicatedSendSingleCQE(t *testing.T) {
	const msgs = 5
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 64<<10)
		mrB := r.b.regMR(t, 0x100000, 64<<10)
		r.net.SetDuplicate("hostA", 1.0) // every ACK to A delivered twice
		r.net.SetDuplicate("hostB", 1.0) // every SEND to B delivered twice
		for i := 0; i < msgs; i++ {
			if err := r.qpB.PostRecv(RecvWR{WRID: uint64(100 + i), SGEs: []SGE{{
				Addr: mem.Addr(0x100000 + 4096*i), Len: 4096, LKey: mrB.LKey}}}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < msgs; i++ {
			if err := r.qpA.PostSend(SendWR{WRID: uint64(i), Opcode: OpSend, Signaled: true,
				SGEs: []SGE{{Addr: 0x100000, Len: 2048, LKey: mrA.LKey}}}); err != nil {
				t.Error(err)
				return
			}
		}
		send := pollN(r.a.cq, msgs)
		recv := pollN(r.b.cq, msgs)
		for i := 0; i < msgs; i++ {
			if send[i].WRID != uint64(i) || send[i].Status != WCSuccess {
				t.Errorf("send CQE %d = %+v", i, send[i])
			}
			if recv[i].WRID != uint64(100+i) || recv[i].Status != WCSuccess {
				t.Errorf("recv CQE %d = %+v", i, recv[i])
			}
		}
		// Give the trailing duplicates time to arrive and be
		// re-acknowledged; they must not produce more completions.
		r.s.Sleep(10 * time.Millisecond)
		if n := r.a.cq.Len(); n != 0 {
			t.Errorf("%d extra send CQEs after duplicates", n)
		}
		if n := r.b.cq.Len(); n != 0 {
			t.Errorf("%d extra recv CQEs after duplicates", n)
		}
		if r.qpB.NRecvDone != msgs {
			t.Errorf("NRecvDone = %d, want %d (duplicate executed twice?)", r.qpB.NRecvDone, msgs)
		}
		dup, _ := r.net.FaultStats("hostB")
		if dup == 0 {
			t.Error("no frames were duplicated (vacuous test)")
		}
	})
	r.s.Run()
}

// TestTapObservesLedger drives traffic with the device tap installed
// and checks the chaos-harness contract: send completions are reported
// once each, acked PSNs and responder expPSNs are strictly monotone,
// and a deregistered rkey is reported exactly once.
func TestTapObservesLedger(t *testing.T) {
	type ev struct {
		qpn, psn uint32
	}
	var (
		cqes  []CQE
		acks  []ev
		exps  []ev
		dereg []uint32
	)
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 64<<10)
		mrB := r.b.regMR(t, 0x100000, 64<<10)
		r.a.dev.SetTap(&Tap{
			CQE:      func(node string, cq uint32, e CQE) { cqes = append(cqes, e) },
			AckedPSN: func(node string, qpn, psn uint32) { acks = append(acks, ev{qpn, psn}) },
		})
		r.b.dev.SetTap(&Tap{
			ExpPSN: func(node string, qpn, psn uint32) { exps = append(exps, ev{qpn, psn}) },
			Dereg:  func(node string, rkey uint32) { dereg = append(dereg, rkey) },
		})
		// 10% loss both ways forces go-back-N recovery under the tap.
		r.net.SetLoss("hostA", 0.1)
		r.net.SetLoss("hostB", 0.1)
		const msgs = 50
		for i := 0; i < msgs; i++ {
			r.qpB.PostRecv(RecvWR{WRID: uint64(i), SGEs: []SGE{{Addr: 0x100000, Len: 1024, LKey: mrB.LKey}}})
		}
		for i := 0; i < msgs; i++ {
			if err := r.qpA.PostSend(SendWR{WRID: uint64(i), Opcode: OpSend, Signaled: true,
				SGEs: []SGE{{Addr: 0x100000, Len: 1024, LKey: mrA.LKey}}}); err != nil {
				t.Error(err)
				return
			}
		}
		got := pollN(r.a.cq, msgs)
		for i, c := range got {
			if c.WRID != uint64(i) || c.Status != WCSuccess {
				t.Errorf("send CQE %d = %+v", i, c)
			}
		}
		r.net.SetLoss("hostA", 0)
		r.net.SetLoss("hostB", 0)
		r.s.Sleep(5 * time.Millisecond)
		rkey := mrB.RKey
		r.b.dev.DeregMR(mrB)
		if len(dereg) != 1 || dereg[0] != rkey {
			t.Errorf("dereg tap = %v, want [%#x]", dereg, rkey)
		}
	})
	r.s.Run()
	if len(cqes) == 0 || len(acks) == 0 || len(exps) == 0 {
		t.Fatalf("tap saw %d CQEs, %d acks, %d expPSN advances", len(cqes), len(acks), len(exps))
	}
	for i := 1; i < len(acks); i++ {
		if acks[i].qpn == acks[i-1].qpn && acks[i].psn <= acks[i-1].psn {
			t.Fatalf("acked PSN regressed under loss: %d after %d", acks[i].psn, acks[i-1].psn)
		}
	}
	for i := 1; i < len(exps); i++ {
		if exps[i].qpn == exps[i-1].qpn && exps[i].psn <= exps[i-1].psn {
			t.Fatalf("expPSN regressed under loss: %d after %d", exps[i].psn, exps[i-1].psn)
		}
	}
}
