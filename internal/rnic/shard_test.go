package rnic

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// shardedRC runs a full RC exchange across a two-shard interconnect:
// hostA (shard 0) sends count signaled SENDs to hostB (shard 1), which
// has recvs pre-posted. Construction is two-phase — a quiescent
// ShardGroup.Run between QP creation and connection lets the
// coordinator read each shard's QPN without cross-shard access during
// a window. The digest folds both completion streams with timestamps.
func shardedRC(t *testing.T, workers int, seed int64, count int) uint64 {
	t.Helper()
	g := sim.NewShardGroup(seed, 2, time.Microsecond)
	g.SetWorkers(workers)
	ic := fabric.NewInterconnect(g, fabric.Config{})

	mk := func(shard int, name string) *host {
		n := ic.Net(shard)
		mux := fabric.NewMux(n, name)
		h := &host{dev: NewDevice(n, mux, name, Config{}), as: mem.NewAddressSpace()}
		if _, err := h.as.Map(0x100000, 1<<20, "arena"); err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(0, "hostA"), mk(1, "hostB")

	// Phase 1: per-shard control path up to QP creation.
	var qpA, qpB *QP
	g.Shard(0).Go("setupA", func() {
		a.pd = a.dev.AllocPD()
		a.cq = a.dev.CreateCQ(4096, nil)
		qpA = a.dev.CreateQP(a.pd, RC, a.cq, a.cq, nil, QPCaps{MaxSend: 256, MaxRecv: 256})
	})
	g.Shard(1).Go("setupB", func() {
		b.pd = b.dev.AllocPD()
		b.cq = b.dev.CreateCQ(4096, nil)
		qpB = b.dev.CreateQP(b.pd, RC, b.cq, b.cq, nil, QPCaps{MaxSend: 256, MaxRecv: 256})
	})
	g.Run()

	// Phase 2: connect with the now-known peer QPNs and run traffic.
	// Duplicates on B's downlink and RNG-jittered client pacing make the
	// completion timestamps seed-sensitive, so the digest actually pins
	// the fault path and not just a fixed pipeline.
	ic.Net(1).SetDuplicate("hostB", 0.3)
	logs := make([]string, 2)
	g.Shard(0).Go("clientA", func() {
		s := g.Shard(0)
		connectRC(t, qpA, "hostB", qpB.QPN)
		mrA := a.regMR(t, 0x100000, 1<<20)
		h := fnv.New64a()
		for k := 0; k < count; k++ {
			s.Sleep(time.Duration(s.Rand().Intn(3000)) * time.Nanosecond)
			a.as.Write(0x100000, []byte(fmt.Sprintf("msg-%03d", k)))
			if err := qpA.PostSend(SendWR{WRID: uint64(k), Opcode: OpSend, Signaled: true,
				SGEs: []SGE{{Addr: 0x100000, Len: 7, LKey: mrA.LKey}}}); err != nil {
				t.Error(err)
				return
			}
			c := pollN(a.cq, 1)[0]
			fmt.Fprintf(h, "A %d %d %v %d\n", g.Shard(0).Now(), c.WRID, c.Status, c.ByteLen)
		}
		logs[0] = fmt.Sprint(h.Sum64())
	})
	g.Shard(1).Go("serverB", func() {
		connectRC(t, qpB, "hostA", qpA.QPN)
		mrB := b.regMR(t, 0x100000, 1<<20)
		for k := 0; k < count; k++ {
			qpB.PostRecv(RecvWR{WRID: uint64(100 + k),
				SGEs: []SGE{{Addr: 0x108000, Len: 4096, LKey: mrB.LKey}}})
		}
		h := fnv.New64a()
		buf := make([]byte, 7)
		for k := 0; k < count; k++ {
			c := pollN(b.cq, 1)[0]
			b.as.Read(0x108000, buf)
			fmt.Fprintf(h, "B %d %d %v %d %s\n", g.Shard(1).Now(), c.WRID, c.Status, c.ByteLen, buf)
		}
		logs[1] = fmt.Sprint(h.Sum64())
	})
	g.Run()

	h := fnv.New64a()
	h.Write([]byte(logs[0] + "|" + logs[1]))
	return h.Sum64()
}

// TestShardedRCDeterministicAcrossWorkers: a complete verbs data path —
// doorbells, DMA, transport ACKs, CQE delivery — crossing the shard
// boundary must be bit-identical at every worker count.
func TestShardedRCDeterministicAcrossWorkers(t *testing.T) {
	base := shardedRC(t, 1, 42, 24)
	if d := shardedRC(t, 2, 42, 24); d != base {
		t.Errorf("workers=2 digest %x != sequential %x", d, base)
	}
	if shardedRC(t, 1, 43, 24) == base {
		t.Error("digest insensitive to seed")
	}
}
