package rnic

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

// TestPropPacketRoundTrip: any packet survives encode→decode.
func TestPropPacketRoundTrip(t *testing.T) {
	f := func(dst, src, psn, ack uint32, frag uint16, last, hasImm bool,
		op, syndrome uint8, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		p := &packet{
			Type:     packetType(op % 8),
			DstQPN:   dst & 0xFFFFFF,
			SrcQPN:   src & 0xFFFFFF,
			PSN:      psn & 0xFFFFFF,
			Frag:     frag,
			Last:     last,
			Opcode:   Opcode(op % 8),
			HasImm:   hasImm,
			AckPSN:   ack & 0xFFFFFF,
			Syndrome: syndrome,
			Payload:  payload,
		}
		q, err := decodePacket(p.encode())
		if err != nil {
			return false
		}
		if q.DstQPN != p.DstQPN || q.SrcQPN != p.SrcQPN || q.PSN != p.PSN ||
			q.Frag != p.Frag || q.Last != p.Last || q.Opcode != p.Opcode ||
			q.HasImm != p.HasImm || q.AckPSN != p.AckPSN || q.Syndrome != p.Syndrome ||
			len(q.Payload) != len(p.Payload) {
			return false
		}
		for i := range payload {
			if q.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeGarbageNeverPanics: arbitrary bytes must decode or error,
// never crash the receive path.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("decodePacket panicked")
			}
		}()
		_, _ = decodePacket(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodePacket: arbitrary bytes either fail to decode or decode to
// a packet that survives an encode→decode round trip unchanged. The
// corpus seeds every wire packet type, including the NAK and RNR-NAK
// control packets.
func FuzzDecodePacket(f *testing.F) {
	seeds := []*packet{
		{Type: ptData, DstQPN: 7, SrcQPN: 3, PSN: 42, Frag: 1, Opcode: OpSend, Payload: []byte("frag")},
		{Type: ptData, DstQPN: 7, SrcQPN: 3, PSN: 42, Frag: 2, Last: true, Opcode: OpSendImm, HasImm: true, Imm: 99, Payload: []byte("tail")},
		{Type: ptAck, DstQPN: 3, SrcQPN: 7, AckPSN: 42, Last: true},
		{Type: ptNak, DstQPN: 3, SrcQPN: 7, AckPSN: 43, Syndrome: nakSeqErr, Last: true},
		{Type: ptNak, DstQPN: 3, SrcQPN: 7, AckPSN: 43, Syndrome: nakRemoteAccess, Last: true},
		{Type: ptRnrNak, DstQPN: 3, SrcQPN: 7, AckPSN: 44, Last: true},
		{Type: ptReadReq, DstQPN: 7, SrcQPN: 3, PSN: 50, RemoteAddr: 0x200000, RKey: 0xBEEF, DLen: 4096, Last: true},
		{Type: ptAtomicResp, DstQPN: 3, SrcQPN: 7, PSN: 51, CompareAdd: 1 << 40, Last: true, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, p := range seeds {
		f.Add(p.encode())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, packetHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePacket(data)
		if err != nil {
			return
		}
		q, err := decodePacket(p.encode())
		if err != nil {
			t.Fatalf("re-decode of valid packet failed: %v", err)
		}
		if q.Type != p.Type || q.DstQPN != p.DstQPN || q.SrcQPN != p.SrcQPN ||
			q.PSN != p.PSN || q.Frag != p.Frag || q.Last != p.Last ||
			q.Opcode != p.Opcode || q.RemoteAddr != p.RemoteAddr || q.RKey != p.RKey ||
			q.DLen != p.DLen || q.CompareAdd != p.CompareAdd || q.Swap != p.Swap ||
			q.Imm != p.Imm || q.HasImm != p.HasImm || q.AckPSN != p.AckPSN ||
			q.Syndrome != p.Syndrome || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("round trip changed packet:\n  in  %+v\n  out %+v", p, q)
		}
	})
}

// faultScriptResult reports what a fault script exercised.
type faultScriptResult struct {
	accepted  int // signaled sends the device took
	completed int // send CQEs observed
	naks      uint64
	rnrs      uint64
	goBackN   uint64
}

// runFaultScript interprets script bytes as operations on a connected
// RC pair with fault injection: 0 = post recv, 1 = post send (next byte
// scales the size across the multi-fragment boundary), 2/5 = set loss
// toward the responder/requester (next byte scales the probability),
// 3 = clear faults and sleep past one RTO, 4 = short sleep. Whatever
// the script does, every accepted signaled send must complete exactly
// once — success, retry-exceeded or flush — and never twice.
func runFaultScript(t *testing.T, script []byte) faultScriptResult {
	var res faultScriptResult
	r := newRig(t, Config{RNRRetries: 3}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 1<<20)
		mrB := r.b.regMR(t, 0x100000, 1<<20)
		next := 0
		rd := func() byte {
			if next >= len(script) {
				return 0
			}
			b := script[next]
			next++
			return b
		}
		recvs := 0
		for next < len(script) {
			switch rd() % 6 {
			case 0:
				if recvs < 128 {
					r.qpB.PostRecv(RecvWR{WRID: uint64(1000 + recvs),
						SGEs: []SGE{{Addr: 0x100000, Len: 16384, LKey: mrB.LKey}}})
					recvs++
				}
			case 1:
				if res.accepted < 64 {
					size := 256 + 48*uint32(rd())
					err := r.qpA.PostSend(SendWR{WRID: uint64(res.accepted), Opcode: OpSend, Signaled: true,
						SGEs: []SGE{{Addr: 0x100000, Len: size, LKey: mrA.LKey}}})
					if err == nil {
						res.accepted++
					}
				}
			case 2:
				r.net.SetLoss("hostB", float64(rd())/255)
			case 3:
				r.net.SetLoss("hostA", 0)
				r.net.SetLoss("hostB", 0)
				r.s.Sleep(700 * time.Microsecond)
			case 4:
				r.s.Sleep(150 * time.Microsecond)
			case 5:
				r.net.SetLoss("hostA", float64(rd())/255)
			}
		}
		r.net.SetLoss("hostA", 0)
		r.net.SetLoss("hostB", 0)
		// Drain: generous budget for RTO/RNR back-off chains, then assert
		// exactly-once delivery of send completions.
		seen := make(map[uint64]int)
		for i := 0; i < 300 && res.completed < res.accepted; i++ {
			r.s.Sleep(500 * time.Microsecond)
			for _, e := range r.a.cq.Poll(64) {
				seen[e.WRID]++
				res.completed++
			}
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("send WRID %d completed %d times", id, n)
			}
		}
		if res.completed != res.accepted {
			t.Errorf("%d of %d accepted sends completed", res.completed, res.accepted)
		}
		// Nothing may trickle in afterwards (late duplicates).
		r.s.Sleep(10 * time.Millisecond)
		if n := r.a.cq.Len(); n != 0 {
			t.Errorf("%d extra send CQEs after drain", n)
		}
		if r.qpB.NRecvDone > uint64(recvs) {
			t.Errorf("NRecvDone %d exceeds %d posted recvs", r.qpB.NRecvDone, recvs)
		}
		res.naks = r.qpB.NNaks
		res.rnrs = r.qpB.NRNRs
		res.goBackN = r.qpA.NGoBackN
	})
	r.s.Run()
	return res
}

// Named corpus scripts, each steering the transport into a different
// recovery branch. faultScriptCorpus seeds the fuzzer with all of them;
// TestFaultScriptCorpusReachesBranches proves they reach their targets.
var faultScriptCorpus = map[string][]byte{
	// Plain traffic with receives posted first.
	"clean": {0, 0, 0, 0, 1, 50, 1, 50, 1, 50, 4, 3},
	// Sends with no receive posted: responder RNR-NAKs until the
	// requester's RNR retry budget is exhausted.
	"rnr": {1, 100, 1, 100, 1, 100, 4, 4, 3},
	// Full blackhole toward the responder across more than one RTO:
	// requester times out and goes back N, then recovers.
	"rto-go-back-n": {0, 0, 0, 0, 2, 255, 1, 100, 1, 100, 4, 4, 4, 4, 3, 3},
	// ~30% loss under a longer run of multi-fragment messages: sequence
	// gaps at the responder trigger NAK-driven go-back-N. (Higher loss
	// rates tend to kill every Last fragment instead, which recovers
	// via RTO without a NAK.)
	"seq-nak": {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 77,
		1, 255, 1, 255, 1, 255, 1, 255, 1, 255, 1, 255, 1, 255, 1, 255, 4, 4, 3, 3},
	// Loss toward the requester: ACKs vanish, data is retransmitted and
	// the responder exercises its duplicate-PSN path.
	"ack-loss": {0, 0, 0, 0, 5, 153, 1, 80, 1, 80, 4, 4, 4, 4, 3},
}

func FuzzRCFaultScript(f *testing.F) {
	for _, script := range faultScriptCorpus {
		f.Add(script)
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		runFaultScript(t, script)
	})
}

// TestFaultScriptCorpusReachesBranches runs the seed corpus outside of
// fuzzing mode and asserts each script actually drives the transport
// into the branch it was written for (the rig's seed is fixed, so this
// is deterministic).
func TestFaultScriptCorpusReachesBranches(t *testing.T) {
	for name, script := range faultScriptCorpus {
		res := runFaultScript(t, script)
		t.Logf("%-14s accepted=%d naks=%d rnrs=%d goBackN=%d",
			name, res.accepted, res.naks, res.rnrs, res.goBackN)
		if res.accepted == 0 {
			t.Errorf("%s: no sends accepted (vacuous script)", name)
		}
		switch name {
		case "rnr":
			if res.rnrs == 0 {
				t.Errorf("rnr script never took the RNR-NAK branch")
			}
		case "rto-go-back-n":
			if res.goBackN == 0 {
				t.Errorf("rto script never took the go-back-N branch")
			}
		case "seq-nak":
			if res.naks == 0 {
				t.Errorf("seq-nak script never made the responder NAK")
			}
			if res.goBackN == 0 {
				t.Errorf("seq-nak script never triggered go-back-N")
			}
		case "ack-loss":
			if res.goBackN == 0 {
				t.Errorf("ack-loss script never retransmitted")
			}
		}
	}
}

// TestPropPSNOrdering: psnLess is a strict ordering within the window.
func TestPropPSNOrdering(t *testing.T) {
	f := func(a, d uint32) bool {
		a &= 0xFFFFFF
		delta := d % (1 << 23)
		if delta == 0 {
			return !psnLess(a, a)
		}
		b := psnAdd(a, delta)
		return psnLess(a, b) && !psnLess(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
