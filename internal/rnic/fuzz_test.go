package rnic

import (
	"testing"
	"testing/quick"
)

// TestPropPacketRoundTrip: any packet survives encode→decode.
func TestPropPacketRoundTrip(t *testing.T) {
	f := func(dst, src, psn, ack uint32, frag uint16, last, hasImm bool,
		op, syndrome uint8, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		p := &packet{
			Type:     packetType(op % 8),
			DstQPN:   dst & 0xFFFFFF,
			SrcQPN:   src & 0xFFFFFF,
			PSN:      psn & 0xFFFFFF,
			Frag:     frag,
			Last:     last,
			Opcode:   Opcode(op % 8),
			HasImm:   hasImm,
			AckPSN:   ack & 0xFFFFFF,
			Syndrome: syndrome,
			Payload:  payload,
		}
		q, err := decodePacket(p.encode())
		if err != nil {
			return false
		}
		if q.DstQPN != p.DstQPN || q.SrcQPN != p.SrcQPN || q.PSN != p.PSN ||
			q.Frag != p.Frag || q.Last != p.Last || q.Opcode != p.Opcode ||
			q.HasImm != p.HasImm || q.AckPSN != p.AckPSN || q.Syndrome != p.Syndrome ||
			len(q.Payload) != len(p.Payload) {
			return false
		}
		for i := range payload {
			if q.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeGarbageNeverPanics: arbitrary bytes must decode or error,
// never crash the receive path.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("decodePacket panicked")
			}
		}()
		_, _ = decodePacket(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPSNOrdering: psnLess is a strict ordering within the window.
func TestPropPSNOrdering(t *testing.T) {
	f := func(a, d uint32) bool {
		a &= 0xFFFFFF
		delta := d % (1 << 23)
		if delta == 0 {
			return !psnLess(a, a)
		}
		b := psnAdd(a, delta)
		return psnLess(a, b) && !psnLess(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
