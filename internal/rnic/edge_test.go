package rnic

import (
	"bytes"
	"testing"
	"time"
)

func TestMultiSGEGatherScatter(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 64<<10)
		mrB := r.b.regMR(t, 0x100000, 64<<10)
		// Three disjoint source pieces gathered into one SEND…
		r.a.as.Write(0x100000, []byte("AAAA"))
		r.a.as.Write(0x102000, []byte("BBBBBB"))
		r.a.as.Write(0x104000, []byte("CC"))
		// …scattered across two destination pieces.
		r.qpB.PostRecv(RecvWR{WRID: 1, SGEs: []SGE{
			{Addr: 0x108000, Len: 5, LKey: mrB.LKey},
			{Addr: 0x10A000, Len: 64, LKey: mrB.LKey},
		}})
		err := r.qpA.PostSend(SendWR{WRID: 2, Opcode: OpSend, Signaled: true, SGEs: []SGE{
			{Addr: 0x100000, Len: 4, LKey: mrA.LKey},
			{Addr: 0x102000, Len: 6, LKey: mrA.LKey},
			{Addr: 0x104000, Len: 2, LKey: mrA.LKey},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		rc := pollN(r.b.cq, 1)[0]
		if rc.ByteLen != 12 {
			t.Errorf("byte_len = %d, want 12", rc.ByteLen)
		}
		var first [5]byte
		var second [7]byte
		r.b.as.Read(0x108000, first[:])
		r.b.as.Read(0x10A000, second[:])
		if got := string(first[:]) + string(second[:]); got != "AAAABBBBBBCC" {
			t.Errorf("scattered payload %q", got)
		}
	})
	r.s.Run()
}

func TestCQOverrunFlagged(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		tiny := r.a.dev.CreateCQ(2, nil)
		qpA2 := r.a.dev.CreateQP(r.a.pd, RC, tiny, tiny, nil, QPCaps{MaxSend: 16})
		qpB2 := r.b.dev.CreateQP(r.b.pd, RC, r.b.cq, r.b.cq, nil, QPCaps{})
		connectRC(t, qpA2, "hostB", qpB2.QPN)
		connectRC(t, qpB2, "hostA", qpA2.QPN)
		mrA := r.a.regMR(t, 0x100000, 4096)
		mrB := r.b.regMR(t, 0x100000, 4096)
		for i := 0; i < 6; i++ {
			qpA2.PostSend(SendWR{WRID: uint64(i), Opcode: OpWrite, Signaled: true,
				SGEs:       []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}},
				RemoteAddr: 0x100000, RKey: mrB.RKey})
		}
		r.s.Sleep(2 * time.Millisecond)
		if !tiny.Overrun {
			t.Error("overfilled CQ not flagged as overrun")
		}
		if tiny.Len() != 2 {
			t.Errorf("CQ holds %d entries, want its capacity 2", tiny.Len())
		}
	})
	r.s.Run()
}

func TestErrorFlushesPostedRecvs(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrB := r.b.regMR(t, 0x100000, 4096)
		for i := 0; i < 3; i++ {
			r.qpB.PostRecv(RecvWR{WRID: uint64(10 + i), SGEs: []SGE{{Addr: 0x100000, Len: 64, LKey: mrB.LKey}}})
		}
		r.qpB.Modify(ModifyAttr{State: StateError})
		flushed := pollN(r.b.cq, 3)
		for _, e := range flushed {
			if e.Status != WCWRFlushErr {
				t.Errorf("flush CQE status %v", e.Status)
			}
		}
		if r.qpB.RecvQueueDepth() != 0 {
			t.Errorf("RQ depth %d after flush", r.qpB.RecvQueueDepth())
		}
	})
	r.s.Run()
}

func TestSGEOwnershipAfterPost(t *testing.T) {
	// The caller may reuse its SGE slice immediately after PostSend
	// returns (the device snapshots the gather list).
	r := newRig(t, Config{}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 8192)
		mrB := r.b.regMR(t, 0x100000, 8192)
		r.a.as.Write(0x100000, []byte("keep"))
		sges := []SGE{{Addr: 0x100000, Len: 4, LKey: mrA.LKey}}
		// Drop and delay the first transmission so the retransmission
		// path must re-read the gather list after we clobber the slice.
		r.net.SetLoss("hostA", 1.0)
		r.qpA.PostSend(SendWR{WRID: 1, Opcode: OpWrite, Signaled: true,
			SGEs: sges, RemoteAddr: 0x100000, RKey: mrB.RKey})
		sges[0] = SGE{Addr: 0x101000, Len: 4, LKey: mrA.LKey} // clobber
		r.s.Sleep(200 * time.Microsecond)
		r.net.SetLoss("hostA", 0)
		if c := pollN(r.a.cq, 1)[0]; c.Status != WCSuccess {
			t.Errorf("status %v", c.Status)
		}
		var buf [4]byte
		r.b.as.Read(0x100000, buf[:])
		if !bytes.Equal(buf[:], []byte("keep")) {
			t.Errorf("payload %q — device read the clobbered SGE slice", buf)
		}
	})
	r.s.Run()
}

func TestZeroLengthSend(t *testing.T) {
	r := newRig(t, Config{}, func(r *rig) {
		mrB := r.b.regMR(t, 0x100000, 4096)
		r.qpB.PostRecv(RecvWR{WRID: 5, SGEs: []SGE{{Addr: 0x100000, Len: 64, LKey: mrB.LKey}}})
		if err := r.qpA.PostSend(SendWR{WRID: 4, Opcode: OpSend, Signaled: true}); err != nil {
			t.Error(err)
			return
		}
		rc := pollN(r.b.cq, 1)[0]
		if rc.Status != WCSuccess || rc.ByteLen != 0 {
			t.Errorf("zero-length recv CQE %+v", rc)
		}
	})
	r.s.Run()
}

func TestRNRRetryLimitErrorsOut(t *testing.T) {
	// With a bounded rnr_retry, a receiver that never posts RECVs
	// eventually fails the send with RNR_RETRY_EXC_ERR.
	r := newRig(t, Config{RNRRetries: 3}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 4096)
		r.b.regMR(t, 0x100000, 4096)
		r.qpA.PostSend(SendWR{WRID: 9, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: 8, LKey: mrA.LKey}}})
		c := pollN(r.a.cq, 1)[0]
		if c.Status != WCRNRRetryExceeded {
			t.Errorf("status = %v, want RNR_RETRY_EXC_ERR", c.Status)
		}
		if r.qpA.State() != StateError {
			t.Errorf("QP state %v, want ERR", r.qpA.State())
		}
	})
	r.s.Run()
}
