package rnic

import (
	"bytes"
	"testing"

	"migrrdma/internal/metrics"
)

// TestSwitchDuplicatesDoNotCountAsRetransmits is the regression test
// for the metric conflation fix: before the split, a switch-duplicated
// mid-message fragment restarted the responder's reassembly, turned the
// discarded tail into an apparent sequence gap, and the resulting
// go-back-N round inflated retransmitted_packets — polluting any
// comparison between cutover modes. With every inbound frame duplicated
// and nothing lost, the transport must deliver exactly once with zero
// genuine retransmissions, and the redundant copies must land in
// duplicated_packets instead.
func TestSwitchDuplicatesDoNotCountAsRetransmits(t *testing.T) {
	const msgLen = 10000 // 3 fragments at the default 4096 MTU
	var got []byte
	r := newRig(t, Config{SplitRetxAccounting: true}, func(r *rig) {
		r.net.SetDuplicate("hostB", 1.0)
		mrA := r.a.regMR(t, 0x100000, 32768)
		mrB := r.b.regMR(t, 0x100000, 32768)
		msg := make([]byte, msgLen)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		r.a.as.Write(0x100000, msg)
		r.qpB.PostRecv(RecvWR{WRID: 9, SGEs: []SGE{{Addr: 0x100000, Len: 32768, LKey: mrB.LKey}}})
		if err := r.qpA.PostSend(SendWR{WRID: 1, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: msgLen, LKey: mrA.LKey}}}); err != nil {
			t.Error(err)
			return
		}
		sc := pollN(r.a.cq, 1)[0]
		if sc.Status != WCSuccess {
			t.Errorf("send CQE = %+v", sc)
		}
		rcs := pollN(r.b.cq, 1)
		if rcs[0].Status != WCSuccess || int(rcs[0].ByteLen) != msgLen {
			t.Errorf("recv CQE = %+v", rcs[0])
		}
		// Exactly-once: no second receive completion may ever appear.
		if extra := r.b.cq.Poll(8); len(extra) != 0 {
			t.Errorf("message delivered twice: extra CQEs %+v", extra)
		}
		got = make([]byte, msgLen)
		r.b.as.Read(0x100000, got)
		if want := msg; !bytes.Equal(got, want) {
			t.Error("payload corrupted across duplicated fragments")
		}
	})
	r.s.Run()

	retx := r.a.dev.Metrics().Counter("rnic", "retransmitted_packets",
		metrics.Labels{"node": "hostA"}).Value()
	if retx != 0 {
		t.Errorf("retransmitted_packets = %d, want 0 (duplicates must not trigger go-back-N)", retx)
	}
	dup := r.b.dev.Metrics().Counter("rnic", "duplicated_packets",
		metrics.Labels{"node": "hostB"}).Value()
	if dup == 0 {
		t.Error("duplicated_packets = 0, want > 0 (redundant copies unaccounted)")
	}
	if perQP := r.qpA.mRetx.Value(); perQP != 0 {
		t.Errorf("per-QP retransmitted_packets = %d, want 0", perQP)
	}
}

// TestSplitAccountingCountsGenuineRetransmits is the other half of the
// split: with loss (and no duplication) the go-back-N recovery must
// show up in retransmitted_packets while duplicated_packets stays
// almost untouched (a retransmission racing an in-flight ack may be
// re-acked as a duplicate, but the full dup-storm of the conflation bug
// cannot reappear).
func TestSplitAccountingCountsGenuineRetransmits(t *testing.T) {
	const msgLen = 10000
	r := newRig(t, Config{SplitRetxAccounting: true}, func(r *rig) {
		mrA := r.a.regMR(t, 0x100000, 32768)
		mrB := r.b.regMR(t, 0x100000, 32768)
		r.a.as.Write(0x100000, make([]byte, msgLen))
		r.qpB.PostRecv(RecvWR{WRID: 9, SGEs: []SGE{{Addr: 0x100000, Len: 32768, LKey: mrB.LKey}}})
		// Force one lost data frame, then let recovery run clean.
		r.net.SetLoss("hostB", 1.0)
		if err := r.qpA.PostSend(SendWR{WRID: 1, Opcode: OpSend, Signaled: true,
			SGEs: []SGE{{Addr: 0x100000, Len: msgLen, LKey: mrA.LKey}}}); err != nil {
			t.Error(err)
			return
		}
		r.s.Sleep(50e3) // first fragment(s) transmitted and dropped
		r.net.SetLoss("hostB", 0)
		pollN(r.a.cq, 1)
		pollN(r.b.cq, 1)
	})
	r.s.Run()

	retx := r.a.dev.Metrics().Counter("rnic", "retransmitted_packets",
		metrics.Labels{"node": "hostA"}).Value()
	if retx == 0 {
		t.Error("retransmitted_packets = 0 after forced loss, want > 0")
	}
}
