package rnic

import (
	"encoding/binary"
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// CQ is a completion queue. Entries accumulate in device-owned storage
// until software polls them; an optional completion channel delivers
// interrupt-style events when the CQ is armed (ibv_req_notify_cq).
type CQ struct {
	Handle uint32
	dev    *Device
	cap    int
	queue  []CQE
	// Overrun records that a completion was dropped because the CQ was
	// full — a fatal programming error on real hardware too.
	Overrun bool

	armed bool
	comp  *CompChannel

	// Shadow ring: the library maps the CQ's entry ring in process
	// memory and the device DMA-writes each CQE slot, so completion
	// traffic dirties application pages exactly as on real hardware.
	ringAS   cqRingMemory
	ringAddr mem.Addr
	ringSeq  int

	// waiters lets in-process pollers (the wait-before-stop thread)
	// block efficiently instead of spinning.
	waiters *sim.Cond
}

// cqRingMemory is the slice of the address-space API the CQ DMA path
// needs.
type cqRingMemory interface {
	Write(a mem.Addr, buf []byte) error
}

// SetShadowRing points the CQ's DMA target at a library-mapped ring of
// cap 64-byte slots. Passing nil detaches it.
func (cq *CQ) SetShadowRing(as cqRingMemory, addr mem.Addr) {
	cq.ringAS = as
	cq.ringAddr = addr
}

// cqeSlotSize is the in-memory size of one completion entry.
const cqeSlotSize = 64

// CreateCQ creates a completion queue with the given capacity, optionally
// bound to a completion channel.
func (d *Device) CreateCQ(capacity int, comp *CompChannel) *CQ {
	d.sched.Sleep(d.cfg.CreateCQLat)
	cq := &CQ{
		Handle:  d.allocID(),
		dev:     d,
		cap:     capacity,
		comp:    comp,
		queue:   make([]CQE, 0, ringCap(capacity)),
		waiters: sim.NewCond(d.sched, "cq-wait"),
	}
	d.cqs[cq.Handle] = cq
	return cq
}

// DestroyCQ releases the CQ.
func (d *Device) DestroyCQ(cq *CQ) {
	d.sched.Sleep(d.cfg.DestroyLat)
	delete(d.cqs, cq.Handle)
}

// push appends a completion, firing an event if the CQ is armed.
func (cq *CQ) push(e CQE) {
	if len(cq.queue) >= cq.cap {
		cq.Overrun = true
		return
	}
	cq.queue = append(cq.queue, e)
	if qp, ok := cq.dev.lookupQP(e.QPN); ok {
		qp.mCQEs.Inc()
	}
	cq.dev.tapCQE(cq.Handle, e)
	if cq.ringAS != nil {
		var slot [cqeSlotSize]byte
		binary.LittleEndian.PutUint64(slot[:], e.WRID)
		binary.LittleEndian.PutUint32(slot[8:], e.QPN)
		slot[12] = byte(e.Status)
		_ = cq.ringAS.Write(cq.ringAddr+mem.Addr((cq.ringSeq%cq.cap)*cqeSlotSize), slot[:])
		cq.ringSeq++
	}
	cq.waiters.Broadcast()
	if cq.armed && cq.comp != nil {
		cq.armed = false
		cq.comp.deliver(cq)
	}
}

// Poll removes and returns up to max completions (non-blocking, like
// ibv_poll_cq).
func (cq *CQ) Poll(max int) []CQE {
	if max > len(cq.queue) {
		max = len(cq.queue)
	}
	if max == 0 {
		return nil
	}
	out := make([]CQE, max)
	copy(out, cq.queue[:max])
	// Shift the remainder down so the ring keeps its capacity (pollers
	// usually drain the CQ, making the shift free).
	n := copy(cq.queue, cq.queue[max:])
	cq.queue = cq.queue[:n]
	return out
}

// Len reports the number of pending completions.
func (cq *CQ) Len() int { return len(cq.queue) }

// WaitNonEmpty parks the calling proc until the CQ has entries. It is a
// simulation convenience for busy-poll loops (real code would spin).
func (cq *CQ) WaitNonEmpty() {
	for len(cq.queue) == 0 {
		cq.waiters.Wait()
	}
}

// WaitNonEmptyTimeout parks until the CQ has entries or d elapses,
// reporting whether entries are available.
func (cq *CQ) WaitNonEmptyTimeout(d time.Duration) bool {
	if len(cq.queue) > 0 {
		return true
	}
	cq.waiters.WaitTimeout(d)
	return len(cq.queue) > 0
}

// ReqNotify arms the CQ: the next completion pushes an event to the
// completion channel (ibv_req_notify_cq).
func (cq *CQ) ReqNotify() { cq.armed = true }

// CompChannel is a completion event channel (ibv_comp_channel): an
// interrupt-style notification path multiplexing events from any number
// of CQs.
type CompChannel struct {
	events *sim.Chan[*CQ]
}

// CreateCompChannel creates a completion channel.
func (d *Device) CreateCompChannel() *CompChannel {
	return &CompChannel{events: sim.NewChan[*CQ](d.sched, "comp-channel", 1024)}
}

func (c *CompChannel) deliver(cq *CQ) {
	// Channel full means the consumer is hopelessly behind; events are
	// edge-triggered so dropping is safe (the CQ stays readable).
	c.events.TrySend(cq)
}

// Get blocks until a CQ event arrives and returns the CQ (ibv_get_cq_event).
func (c *CompChannel) Get() *CQ {
	cq, _ := c.events.Recv()
	return cq
}

// TryGet returns a pending event without blocking.
func (c *CompChannel) TryGet() (*CQ, bool) { return c.events.TryRecv() }
