package rnic

// fifo is a head-indexed FIFO queue. Popping advances a head index
// instead of re-slicing, so the backing array's capacity survives
// arbitrary push/pop interleavings: per-packet queues (the device rx
// queue, the control/response transmit queues, the QP transmit ring)
// reach a steady state with no allocation per element.
type fifo[T any] struct {
	buf  []T
	head int
}

func (q *fifo[T]) len() int { return len(q.buf) - q.head }

func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 1024 && q.head > len(q.buf)/2 {
		// Slide the live tail down so a queue that never fully drains
		// cannot grow its backing array without bound.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// front returns the head element without removing it.
func (q *fifo[T]) front() T { return q.buf[q.head] }

// items returns the live elements in order. The slice aliases the
// queue's storage and is invalidated by push/pop.
func (q *fifo[T]) items() []T { return q.buf[q.head:] }
