// Package rnic models an RDMA NIC with hardware-offloaded transport.
//
// The device owns every communication state the paper calls
// "maintained by RNICs" (§2.2): queue pairs with their PSN tracking,
// completion queues, memory protection tables, retransmission machinery.
// Those states are private to this package — software above (the verbs
// layer, the MigrRDMA indirection layer, migration tools) can only drive
// the documented control and data path, exactly the constraint that
// motivates a software-based migration design. While host software is
// frozen, the device keeps processing posted work requests, reproducing
// the in-flight-consistency challenge of §2.2(3).
//
// The transport is RoCEv2-like: messages are segmented into MTU-sized
// frames carried over internal/fabric, sequenced by a 24-bit PSN, and
// recovered with cumulative ACKs, go-back-N NAKs, RNR NAKs and a
// retransmission timer.
package rnic

import (
	"fmt"

	"migrrdma/internal/mem"
)

// QPType selects the transport service.
type QPType uint8

// Supported queue pair service types.
const (
	RC QPType = iota // reliable connection
	UD               // unreliable datagram
)

func (t QPType) String() string {
	switch t {
	case RC:
		return "RC"
	case UD:
		return "UD"
	}
	return fmt.Sprintf("QPType(%d)", uint8(t))
}

// QPState is the queue pair state machine of the verbs spec.
type QPState uint8

// Queue pair states.
const (
	StateReset QPState = iota
	StateInit
	StateRTR
	StateRTS
	StateError
)

func (s QPState) String() string {
	switch s {
	case StateReset:
		return "RESET"
	case StateInit:
		return "INIT"
	case StateRTR:
		return "RTR"
	case StateRTS:
		return "RTS"
	case StateError:
		return "ERR"
	}
	return fmt.Sprintf("QPState(%d)", uint8(s))
}

// Opcode identifies a work request operation.
type Opcode uint8

// Work request opcodes.
const (
	OpSend Opcode = iota
	OpSendImm
	OpWrite
	OpWriteImm
	OpRead
	OpCompSwap
	OpFetchAdd
	OpRecv // used in completions only
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpSendImm:
		return "SEND_IMM"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpCompSwap:
		return "CMP_SWAP"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpRecv:
		return "RECV"
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsOneSided reports whether the op completes without consuming a
// receive WQE on the responder (WRITE_IMM consumes one).
func (o Opcode) IsOneSided() bool {
	return o == OpWrite || o == OpRead || o == OpCompSwap || o == OpFetchAdd
}

// Access rights for memory regions and windows.
type Access uint8

// Access flag bits.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// WCStatus is the status of a completed work request.
type WCStatus uint8

// Work completion statuses.
const (
	WCSuccess WCStatus = iota
	WCLocalProtErr
	WCRemoteAccessErr
	WCRetryExceeded
	WCRNRRetryExceeded
	WCWRFlushErr
	WCRemoteOpErr
)

func (s WCStatus) String() string {
	switch s {
	case WCSuccess:
		return "SUCCESS"
	case WCLocalProtErr:
		return "LOC_PROT_ERR"
	case WCRemoteAccessErr:
		return "REM_ACCESS_ERR"
	case WCRetryExceeded:
		return "RETRY_EXC_ERR"
	case WCRNRRetryExceeded:
		return "RNR_RETRY_EXC_ERR"
	case WCWRFlushErr:
		return "WR_FLUSH_ERR"
	case WCRemoteOpErr:
		return "REM_OP_ERR"
	}
	return fmt.Sprintf("WCStatus(%d)", uint8(s))
}

// SGE is a scatter/gather element referencing registered memory.
type SGE struct {
	Addr mem.Addr
	Len  uint32
	LKey uint32
}

// SendWR is a send-queue work request.
type SendWR struct {
	WRID     uint64
	Opcode   Opcode
	SGEs     []SGE
	Signaled bool
	Imm      uint32

	// One-sided targets.
	RemoteAddr mem.Addr
	RKey       uint32

	// Atomics.
	CompareAdd uint64 // FETCH_ADD addend or CMP_SWAP compare value
	Swap       uint64 // CMP_SWAP swap value

	// UD addressing.
	RemoteNode string
	RemoteQPN  uint32
}

// RecvWR is a receive-queue work request.
type RecvWR struct {
	WRID uint64
	SGEs []SGE
}

// CQE is a completion queue entry.
type CQE struct {
	WRID    uint64
	Status  WCStatus
	Opcode  Opcode
	QPN     uint32 // local QP number, physical — see paper §3.3
	ByteLen uint32
	Imm     uint32
	HasImm  bool
	SrcQP   uint32 // UD only
}

// wrLen sums the SGE lengths of a request.
func wrLen(sges []SGE) uint32 {
	var n uint32
	for _, s := range sges {
		n += s.Len
	}
	return n
}
