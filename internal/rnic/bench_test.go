package rnic

import (
	"testing"

	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// benchPair is a two-device testbed with a connected RC QP pair, built
// without *testing.T so benchmarks control their own failure handling.
type benchPair struct {
	s        *sim.Scheduler
	cqA, cqB *CQ
	qpA, qpB *QP
	mrA, mrB *MR
}

func newBenchPair(b *testing.B) *benchPair {
	b.Helper()
	s := sim.New(42)
	net := fabric.New(s, fabric.Config{})
	type bhost struct {
		dev *Device
		as  *mem.AddressSpace
	}
	mk := func(name string) *bhost {
		mux := fabric.NewMux(net, name)
		h := &bhost{dev: NewDevice(net, mux, name, Config{}), as: mem.NewAddressSpace()}
		if _, err := h.as.Map(0x100000, 1<<20, "arena"); err != nil {
			b.Fatal(err)
		}
		return h
	}
	ha, hb := mk("hostA"), mk("hostB")
	bp := &benchPair{s: s}
	var err error
	s.Go("setup", func() {
		pdA, pdB := ha.dev.AllocPD(), hb.dev.AllocPD()
		bp.cqA = ha.dev.CreateCQ(256, nil)
		bp.cqB = hb.dev.CreateCQ(256, nil)
		caps := QPCaps{MaxSend: 128, MaxRecv: 128}
		bp.qpA = ha.dev.CreateQP(pdA, RC, bp.cqA, bp.cqA, nil, caps)
		bp.qpB = hb.dev.CreateQP(pdB, RC, bp.cqB, bp.cqB, nil, caps)
		connect := func(qp *QP, node string, rqpn uint32) {
			for _, a := range []ModifyAttr{
				{State: StateInit},
				{State: StateRTR, RemoteNode: node, RemoteQPN: rqpn},
				{State: StateRTS},
			} {
				if e := qp.Modify(a); e != nil && err == nil {
					err = e
				}
			}
		}
		connect(bp.qpA, "hostB", bp.qpB.QPN)
		connect(bp.qpB, "hostA", bp.qpA.QPN)
		access := AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic
		if bp.mrA, err = ha.dev.RegMR(pdA, ha.as, 0x100000, 1<<20, access); err != nil {
			return
		}
		bp.mrB, err = hb.dev.RegMR(pdB, hb.as, 0x100000, 1<<20, access)
	})
	s.Run()
	if err != nil {
		b.Fatal(err)
	}
	return bp
}

// benchEngineThroughput drives b.N SEND messages of msgSize bytes
// through one RC QP pair with a windowed sender and a self-refilling
// receiver, reporting simulated packets per wall-clock second
// (fragments plus one ACK per message).
func benchEngineThroughput(b *testing.B, msgSize int) {
	bp := newBenchPair(b)
	const depth = 32
	sgesA := []SGE{{Addr: 0x100000, Len: uint32(msgSize), LKey: bp.mrA.LKey}}
	sgesB := []SGE{{Addr: 0x100000, Len: uint32(msgSize), LKey: bp.mrB.LKey}}

	bp.s.Go("server", func() {
		post := func(k int) {
			for i := 0; i < k; i++ {
				if err := bp.qpB.PostRecv(RecvWR{WRID: 1, SGEs: sgesB}); err != nil {
					panic(err)
				}
			}
		}
		post(2 * depth)
		for got := 0; got < b.N; {
			bp.cqB.WaitNonEmpty()
			n := len(bp.cqB.Poll(64))
			got += n
			post(n) // keep 2*depth receives outstanding
		}
	})
	bp.s.Go("client", func() {
		completed, posted, outstanding := 0, 0, 0
		for completed < b.N {
			for outstanding < depth && posted < b.N {
				err := bp.qpA.PostSend(SendWR{WRID: uint64(posted), Opcode: OpSend, SGEs: sgesA, Signaled: true})
				if err != nil {
					panic(err)
				}
				posted++
				outstanding++
			}
			bp.cqA.WaitNonEmpty()
			for _, e := range bp.cqA.Poll(64) {
				if e.Status != WCSuccess {
					panic("send failed: " + e.Status.String())
				}
				completed++
				outstanding--
			}
		}
	})
	b.ResetTimer()
	bp.s.Run()
	b.StopTimer()

	frags := (msgSize + bp.qpA.dev.cfg.MTU - 1) / bp.qpA.dev.cfg.MTU
	packets := float64(b.N * (frags + 1)) // data fragments + one ACK per message
	b.ReportMetric(packets/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkEngineThroughput is the tier-1 data-path benchmark: 2 KiB
// single-fragment SENDs through one QP pair (1 data packet + 1 ACK per
// message).
func BenchmarkEngineThroughput(b *testing.B) { benchEngineThroughput(b, 2048) }

// BenchmarkEngineThroughput16K exercises the fragmentation path: 16 KiB
// messages split into four MTU-sized fragments.
func BenchmarkEngineThroughput16K(b *testing.B) { benchEngineThroughput(b, 16384) }
