package rnic

import (
	"migrrdma/internal/fabric"
	"migrrdma/internal/mem"
)

// This file implements the transport engine: lazily paced transmission
// (the NIC pulls the next fragment only when the wire is free, so
// retransmission timers measure true wire occupancy), the responder
// pipeline with protection checks, and ACK/NAK/RNR recovery.

// rxItem is a received packet with its source node and the wire buffer
// it was decoded from (recycled together once handled).
type rxItem struct {
	p   *packet
	src string
	buf []byte
}

// --- Requester: transmission ---------------------------------------------

// transmit queues a newly posted entry for wire transmission.
func (qp *QP) transmit(e *sqEntry) {
	e.queued = true
	qp.txq.push(e)
	qp.dev.enqueueTx(qp)
}

// enqueueTx adds qp to the transmit round-robin ring.
func (d *Device) enqueueTx(qp *QP) {
	if qp.inTxRing || qp.closed {
		return
	}
	qp.inTxRing = true
	d.txRing.push(qp)
	d.pump()
}

// nextFrame produces the next frame to put on the wire: control packets
// (ACKs/NAKs) first, then responder data (READ responses), then
// requester data in QP round-robin order.
func (d *Device) nextFrame() (fabric.Frame, bool) {
	if d.ctlq.len() > 0 {
		return d.ctlq.pop(), true
	}
	if d.respq.len() > 0 {
		return d.respq.pop(), true
	}
	for d.txRing.len() > 0 {
		qp := d.txRing.pop()
		pkt, more, ok := qp.nextTxFrame()
		if !ok {
			qp.inTxRing = false
			continue
		}
		if more {
			d.txRing.push(qp)
		} else {
			qp.inTxRing = false
		}
		return d.frameFor(qp.remoteNodeFor(pkt), pkt), true
	}
	return fabric.Frame{}, false
}

// remoteNodeFor resolves the destination fabric node for a requester
// packet (per-WR for UD, the connected peer for RC).
func (qp *QP) remoteNodeFor(p *packet) string {
	if qp.Type == UD {
		return p.udNode
	}
	return qp.remoteNode
}

// nextTxFrame builds the next fragment of the QP's head transmit entry.
// more reports whether the QP will have further frames after this one.
func (qp *QP) nextTxFrame() (*packet, bool, bool) {
	if qp.rnrBackoff || qp.closed || qp.state != StateRTS {
		return nil, false, false
	}
	for qp.txq.len() > 0 {
		e := qp.txq.front()
		if e.state == sqAcked || e.state == sqCompleted {
			// Acked while waiting in the queue (e.g. by a retransmitted
			// duplicate); skip.
			e.queued = false
			qp.txq.pop()
			continue
		}
		pkt, last := qp.buildFragment(e)
		if e.retransmit {
			qp.mRetx.Inc()
			if qp.dev.mRetxDev != nil {
				qp.dev.mRetxDev.Inc()
			}
		}
		if last {
			e.queued = false
			e.fragCursor = 0
			qp.txq.pop()
			qp.finishTransmit(e)
		} else {
			e.fragCursor++
		}
		return pkt, qp.txq.len() > 0, true
	}
	return nil, false, false
}

// finishTransmit runs when the last fragment of e goes on the wire.
func (qp *QP) finishTransmit(e *sqEntry) {
	if qp.Type == UD {
		// Unreliable: completion at transmission.
		e.state = sqAcked
		qp.completeInOrder()
		return
	}
	e.state = sqSent
	qp.armRTO()
}

// buildFragment creates fragment fragCursor of entry e. The returned
// packet comes from the device pool; frameFor recycles it after
// encoding.
func (qp *QP) buildFragment(e *sqEntry) (*packet, bool) {
	wr := &e.wr
	base := qp.dev.getPkt()
	base.DstQPN = qp.remoteQPN
	base.SrcQPN = qp.QPN
	base.PSN = e.psn
	base.Opcode = wr.Opcode
	if qp.Type == UD {
		base.DstQPN = wr.RemoteQPN
		base.udNode = wr.RemoteNode
	}
	switch wr.Opcode {
	case OpRead:
		base.Type = ptReadReq
		base.RemoteAddr = wr.RemoteAddr
		base.RKey = wr.RKey
		base.DLen = wrLen(wr.SGEs)
		base.Last = true
		return base, true
	case OpCompSwap, OpFetchAdd:
		base.Type = ptAtomicReq
		base.RemoteAddr = wr.RemoteAddr
		base.RKey = wr.RKey
		base.DLen = 8
		base.CompareAdd = wr.CompareAdd
		base.Swap = wr.Swap
		base.Last = true
		return base, true
	}
	// SEND / WRITE family: fragment the gathered payload.
	total := wrLen(wr.SGEs)
	mtu := uint32(qp.dev.cfg.MTU)
	off := uint32(e.fragCursor) * mtu
	n := total - off
	if n > mtu {
		n = mtu
	}
	last := off+n >= total
	base.Type = ptData
	base.Frag = e.fragCursor
	base.Last = last
	base.DLen = total
	if wr.Opcode == OpWrite || wr.Opcode == OpWriteImm {
		// Every fragment carries the message base address; the responder
		// reassembles the full message and writes it at the base.
		base.RemoteAddr = wr.RemoteAddr
		base.RKey = wr.RKey
	}
	if last && (wr.Opcode == OpSendImm || wr.Opcode == OpWriteImm) {
		base.Imm = wr.Imm
		base.HasImm = true
	}
	if n > 0 {
		base.Payload = qp.gather(wr.SGEs, off, n)
	}
	return base, last
}

// gather DMA-reads n bytes starting at offset off of the SGE list into
// the device's gather scratch. The result is valid until the next
// gather: encodeInto copies it into the wire buffer before the pacer
// pulls another fragment.
func (qp *QP) gather(sges []SGE, off, n uint32) []byte {
	d := qp.dev
	if uint32(cap(d.gatherBuf)) < n {
		d.gatherBuf = make([]byte, n)
	}
	out := d.gatherBuf[:n]
	var filled uint32
	var pos uint32
	for _, sge := range sges {
		if filled == n {
			break
		}
		if pos+sge.Len <= off {
			pos += sge.Len
			continue
		}
		start := uint32(0)
		if off > pos {
			start = off - pos
		}
		take := sge.Len - start
		if take > n-filled {
			take = n - filled
		}
		mr, ok := d.mrByLKey(sge.LKey)
		if ok {
			_ = mr.as.Read(sge.Addr+mem.Addr(start), out[filled:filled+take])
		} else {
			// Deregistered mid-flight: DMA reads garbage, not stale
			// scratch contents from an unrelated message.
			zero(out[filled : filled+take])
		}
		filled += take
		pos += sge.Len
	}
	return out
}

// zero clears b.
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// scatter DMA-writes data across the SGE list, returning false on local
// protection failure (insufficient buffer space).
func (qp *QP) scatter(sges []SGE, data []byte) bool {
	if wrLen(sges) < uint32(len(data)) {
		return false
	}
	off := 0
	for _, sge := range sges {
		if off == len(data) {
			break
		}
		n := int(sge.Len)
		if n > len(data)-off {
			n = len(data) - off
		}
		if mr, ok := qp.dev.mrByLKey(sge.LKey); ok {
			_ = mr.as.Write(sge.Addr, data[off:off+n])
		}
		off += n
	}
	return true
}

// frameFor wraps a packet in a fabric frame addressed to dst, encoding
// it into a pooled wire buffer. The packet struct (which every caller
// obtained from the device pool) is recycled here: the frame owns the
// encoded bytes and nothing else references p.
func (d *Device) frameFor(dst string, p *packet) fabric.Frame {
	buf := d.getBuf(packetHeaderLen + len(p.Payload))
	p.encodeInto(buf)
	f := fabric.Frame{
		Src:  d.node,
		Dst:  dst,
		Port: PortRDMA,
		Size: p.wireSize(),
		Data: buf,
	}
	d.putPkt(p)
	return f
}

// sendCtl queues a control packet (ACK/NAK) at high priority.
func (d *Device) sendCtl(dst string, p *packet) {
	d.ctlq.push(d.frameFor(dst, p))
	d.pump()
}

// sendResp queues responder data (READ responses) behind control but
// ahead of new requester work from this node.
func (d *Device) sendResp(dst string, p *packet) {
	d.respq.push(d.frameFor(dst, p))
	d.pump()
}

// --- Packet dispatch -------------------------------------------------------

// handlePacket processes one received packet on the device engine.
func (d *Device) handlePacket(it rxItem) {
	p := it.p
	qp, ok := d.lookupQP(p.DstQPN)
	if !ok {
		return // stale packet for a destroyed QP: drop silently
	}
	switch p.Type {
	case ptData, ptReadReq, ptAtomicReq:
		qp.responder(p, it.src)
	case ptAck, ptNak, ptRnrNak, ptReadResp, ptAtomicResp:
		qp.requester(p)
	}
}

// --- Responder --------------------------------------------------------------

// reassembly accumulates the fragments of the in-flight inbound message.
type reassembly struct {
	psn      uint32
	nextFrag uint16
	buf      []byte
	bad      bool
}

// responder handles an inbound request packet.
func (qp *QP) responder(p *packet, src string) {
	if qp.state != StateRTR && qp.state != StateRTS {
		return
	}
	if qp.Type == UD {
		qp.responderUD(p)
		return
	}
	// Duplicate (already-delivered) message: re-acknowledge; replay READ
	// and ATOMIC responses so a lost response doesn't wedge the peer.
	// These are redundant inbound frames (switch duplication or a
	// retransmission racing the ack), not go-back-N transmissions, so
	// they land in duplicated_packets when the split accounting is on.
	if psnLess(p.PSN, qp.expPSN) {
		if qp.dev.mDupDev != nil {
			qp.dev.mDupDev.Inc()
		}
		if p.Last {
			qp.replyDuplicate(p, src)
		}
		return
	}
	// Sequence gap: a message was lost. NAK the expected PSN once per
	// gap (go-back-N); re-NAKing every stray frame would storm.
	if p.PSN != qp.expPSN {
		if p.Last && (!qp.nakSent || qp.nakPSN != qp.expPSN) {
			qp.nakSent, qp.nakPSN = true, qp.expPSN
			qp.sendNak(src, p.SrcQPN, qp.expPSN, nakSeqErr)
		}
		return
	}
	// Single-fragment message: deliver the payload in place. execute
	// consumes it synchronously (scatter and AddressSpace.Write copy the
	// bytes out), and the RX buffer backing it is only recycled after
	// handlePacket returns, so no reassembly copy is needed.
	if p.Frag == 0 && p.Last {
		qp.execute(p, p.Payload, src)
		return
	}
	// Reassemble the expected message into a per-QP scratch buffer
	// (reused across messages — execute consumes it before the next
	// message can start). A zeroth fragment restarts the reassembly only
	// when recovering from a loss (r.bad): a redundant frag-0 copy of a
	// healthy in-progress message must not discard fragments already
	// held, or the discarded tail would look like a gap and trigger a
	// spurious go-back-N round (polluting retransmitted_packets with
	// what was really a switch duplicate).
	r := qp.reasm
	if r == nil {
		r = &reassembly{}
		qp.reasm = r
	}
	if r.psn != p.PSN || (p.Frag == 0 && r.bad) {
		r.psn, r.nextFrag, r.bad = p.PSN, 0, false
		r.buf = r.buf[:0]
	}
	if !r.bad && p.Frag < r.nextFrag {
		// Redundant copy of a fragment already held: r.buf holds exactly
		// fragments [0, nextFrag), so ignoring the copy still assembles
		// the message correctly.
		if qp.dev.mDupDev != nil {
			qp.dev.mDupDev.Inc()
		}
		// Exception: the last fragment of a fully held message that was
		// never delivered (expPSN still equals the message PSN — the
		// earlier delivery attempt hit RNR with no receive posted). The
		// peer's RNR retry re-sends the whole message and every copy
		// lands here, so swallowing the final fragment would pin the
		// message in the reassembly buffer forever. Retry delivery from
		// the held buffer instead; once it succeeds, expPSN advances and
		// later copies fall into the duplicate-ack path above.
		if p.Last && p.Frag+1 == r.nextFrag {
			qp.execute(p, r.buf, src)
		}
		return
	}
	if p.Frag != r.nextFrag {
		r.bad = true // lost fragment inside the message
	}
	if !r.bad {
		r.buf = append(r.buf, p.Payload...)
		r.nextFrag++
	}
	if !p.Last {
		return
	}
	if r.bad {
		qp.sendNak(src, p.SrcQPN, qp.expPSN, nakSeqErr)
		return
	}
	qp.execute(p, r.buf, src)
}

// execute runs a fully received message at the expected PSN.
func (qp *QP) execute(p *packet, data []byte, src string) {
	d := qp.dev
	switch {
	case p.Type == ptData && (p.Opcode == OpSend || p.Opcode == OpSendImm):
		wr, ok := qp.popRecv()
		if !ok {
			qp.sendRNR(src, p.SrcQPN, qp.expPSN)
			return
		}
		if !qp.scatter(wr.SGEs, data) {
			qp.recvCQ.push(CQE{WRID: wr.WRID, Status: WCLocalProtErr, Opcode: OpRecv, QPN: qp.QPN})
			qp.respondError(src, p)
			return
		}
		cqe := CQE{WRID: wr.WRID, Status: WCSuccess, Opcode: OpRecv, QPN: qp.QPN, ByteLen: p.DLen, SrcQP: p.SrcQPN}
		if p.HasImm {
			cqe.Imm, cqe.HasImm = p.Imm, true
		}
		qp.recvCQ.push(cqe)
		qp.NRecvDone++
		qp.advance(src, p.SrcQPN)

	case p.Type == ptData && (p.Opcode == OpWrite || p.Opcode == OpWriteImm):
		as, ok := d.lookupRemote(p.RKey, p.RemoteAddr, p.DLen, AccessRemoteWrite)
		if !ok {
			qp.respondError(src, p)
			return
		}
		if err := as.Write(p.RemoteAddr, data); err != nil {
			qp.respondError(src, p)
			return
		}
		if p.Opcode == OpWriteImm {
			wr, ok := qp.popRecv()
			if !ok {
				qp.sendRNR(src, p.SrcQPN, qp.expPSN)
				return
			}
			cqe := CQE{WRID: wr.WRID, Status: WCSuccess, Opcode: OpRecv, QPN: qp.QPN, ByteLen: p.DLen, Imm: p.Imm, HasImm: true, SrcQP: p.SrcQPN}
			qp.recvCQ.push(cqe)
			qp.NRecvDone++
		}
		qp.advance(src, p.SrcQPN)

	case p.Type == ptReadReq:
		as, ok := d.lookupRemote(p.RKey, p.RemoteAddr, p.DLen, AccessRemoteRead)
		if !ok {
			qp.respondError(src, p)
			return
		}
		buf := make([]byte, p.DLen)
		if err := as.Read(p.RemoteAddr, buf); err != nil {
			qp.respondError(src, p)
			return
		}
		qp.expPSN = psnAdd(qp.expPSN, 1)
		qp.streamReadResponse(src, p.SrcQPN, p.PSN, buf)

	case p.Type == ptAtomicReq:
		if p.RemoteAddr%8 != 0 {
			qp.respondError(src, p)
			return
		}
		as, ok := d.lookupRemote(p.RKey, p.RemoteAddr, 8, AccessRemoteAtomic)
		if !ok {
			qp.respondError(src, p)
			return
		}
		orig, err := as.ReadU64(p.RemoteAddr)
		if err != nil {
			qp.respondError(src, p)
			return
		}
		var next uint64
		if p.Opcode == OpCompSwap {
			next = orig
			if orig == p.CompareAdd {
				next = p.Swap
			}
		} else {
			next = orig + p.CompareAdd
		}
		_ = as.WriteU64(p.RemoteAddr, next)
		qp.atomicCache[p.PSN] = orig
		qp.expPSN = psnAdd(qp.expPSN, 1)
		qp.sendAtomicResp(src, p.SrcQPN, p.PSN, orig)
	}
}

// sendAtomicResp queues an atomic response carrying the original value.
func (qp *QP) sendAtomicResp(dst string, dstQPN, psn uint32, orig uint64) {
	r := qp.dev.getPkt()
	r.Type = ptAtomicResp
	r.DstQPN = dstQPN
	r.SrcQPN = qp.QPN
	r.PSN = psn
	r.Last = true
	r.CompareAdd = orig
	qp.dev.sendCtl(dst, r)
}

// advance bumps expPSN and acknowledges it cumulatively.
func (qp *QP) advance(src string, srcQPN uint32) {
	acked := qp.expPSN
	qp.expPSN = psnAdd(qp.expPSN, 1)
	qp.dev.tapExpPSN(qp.QPN, qp.expPSN)
	qp.nakSent = false
	qp.sendAck(src, srcQPN, acked)
}

// sendAck queues a cumulative acknowledgement for PSN acked.
func (qp *QP) sendAck(dst string, dstQPN, acked uint32) {
	a := qp.dev.getPkt()
	a.Type = ptAck
	a.DstQPN = dstQPN
	a.SrcQPN = qp.QPN
	a.AckPSN = acked
	a.Last = true
	qp.dev.sendCtl(dst, a)
}

// replyDuplicate re-acknowledges an already-delivered message and
// replays READ/ATOMIC responses.
func (qp *QP) replyDuplicate(p *packet, src string) {
	switch p.Type {
	case ptReadReq:
		as, ok := qp.dev.lookupRemote(p.RKey, p.RemoteAddr, p.DLen, AccessRemoteRead)
		if ok {
			buf := make([]byte, p.DLen)
			if as.Read(p.RemoteAddr, buf) == nil {
				qp.streamReadResponse(src, p.SrcQPN, p.PSN, buf)
				return
			}
		}
	case ptAtomicReq:
		if orig, ok := qp.atomicCache[p.PSN]; ok {
			qp.sendAtomicResp(src, p.SrcQPN, p.PSN, orig)
			return
		}
	}
	last := psnAdd(qp.expPSN, 0xFFFFFF) // expPSN-1 mod 2^24
	qp.sendAck(src, p.SrcQPN, last)
}

// streamReadResponse fragments and queues a READ response.
func (qp *QP) streamReadResponse(dst string, dstQPN, psn uint32, data []byte) {
	mtu := qp.dev.cfg.MTU
	if len(data) == 0 {
		r := qp.dev.getPkt()
		r.Type = ptReadResp
		r.DstQPN = dstQPN
		r.SrcQPN = qp.QPN
		r.PSN = psn
		r.Last = true
		r.Opcode = OpRead
		qp.dev.sendResp(dst, r)
		return
	}
	for off, frag := 0, uint16(0); off < len(data); frag++ {
		n := len(data) - off
		if n > mtu {
			n = mtu
		}
		r := qp.dev.getPkt()
		r.Type = ptReadResp
		r.DstQPN = dstQPN
		r.SrcQPN = qp.QPN
		r.PSN = psn
		r.Frag = frag
		r.Last = off+n == len(data)
		r.Opcode = OpRead
		r.DLen = uint32(len(data))
		r.Payload = data[off : off+n]
		qp.dev.sendResp(dst, r)
		off += n
	}
}

// sendNak sends a go-back-N sequence NAK for the expected PSN.
func (qp *QP) sendNak(dst string, dstQPN, expected uint32, syndrome uint8) {
	qp.NNaks++
	qp.mNaks.Inc()
	n := qp.dev.getPkt()
	n.Type = ptNak
	n.DstQPN = dstQPN
	n.SrcQPN = qp.QPN
	n.AckPSN = expected
	n.Syndrome = syndrome
	n.Last = true
	qp.dev.sendCtl(dst, n)
}

// sendRNR reports receiver-not-ready for the given message PSN.
func (qp *QP) sendRNR(dst string, dstQPN, psn uint32) {
	qp.NRNRs++
	qp.mRNRs.Inc()
	r := qp.dev.getPkt()
	r.Type = ptRnrNak
	r.DstQPN = dstQPN
	r.SrcQPN = qp.QPN
	r.AckPSN = psn
	r.Last = true
	qp.dev.sendCtl(dst, r)
}

// respondError NAKs a request with a remote-access error and moves the
// responder QP to the error state.
func (qp *QP) respondError(src string, p *packet) {
	qp.sendNak(src, p.SrcQPN, p.PSN, nakRemoteAccess)
	qp.enterError()
}

// responderUD delivers an unreliable datagram.
func (qp *QP) responderUD(p *packet) {
	if p.Type != ptData || !p.Last {
		return
	}
	wr, ok := qp.popRecv()
	if !ok {
		return // UD drops silently
	}
	if !qp.scatter(wr.SGEs, p.Payload) {
		qp.recvCQ.push(CQE{WRID: wr.WRID, Status: WCLocalProtErr, Opcode: OpRecv, QPN: qp.QPN})
		return
	}
	cqe := CQE{WRID: wr.WRID, Status: WCSuccess, Opcode: OpRecv, QPN: qp.QPN, ByteLen: p.DLen, SrcQP: p.SrcQPN}
	if p.HasImm {
		cqe.Imm, cqe.HasImm = p.Imm, true
	}
	qp.recvCQ.push(cqe)
	qp.NRecvDone++
}

// NAK syndromes.
const (
	nakSeqErr       uint8 = 1
	nakRemoteAccess uint8 = 2
)

// --- Requester: responses ----------------------------------------------------

// requester handles ACKs, NAKs and one-sided responses.
func (qp *QP) requester(p *packet) {
	if qp.state != StateRTS && qp.state != StateError {
		return
	}
	switch p.Type {
	case ptAck:
		qp.ackUpTo(p.AckPSN)

	case ptNak:
		if p.Syndrome == nakRemoteAccess {
			for _, e := range qp.sq {
				if e.psn == p.PSN && e.state != sqCompleted {
					e.status = WCRemoteAccessErr
				}
			}
			qp.enterError()
			return
		}
		// Sequence NAK: everything before the expected PSN arrived.
		qp.ackBelow(p.AckPSN)
		qp.goBackN(p.AckPSN)
		qp.afterAck()

	case ptRnrNak:
		qp.ackBelow(p.AckPSN)
		qp.markUnsent(p.AckPSN)
		qp.rnrRetry()

	case ptReadResp:
		buf := qp.readBuf[p.PSN]
		buf = append(buf, p.Payload...)
		if !p.Last {
			qp.readBuf[p.PSN] = buf
			return
		}
		delete(qp.readBuf, p.PSN)
		for _, e := range qp.sq {
			if e.psn == p.PSN && (e.state == sqSent || e.state == sqQueued) {
				if !qp.scatter(e.wr.SGEs, buf) {
					e.status = WCLocalProtErr
				}
				e.state = sqAcked
				qp.dev.tapAcked(qp.QPN, e.psn)
				break
			}
		}
		qp.ackBelow(p.PSN)
		qp.afterAck()

	case ptAtomicResp:
		for _, e := range qp.sq {
			if e.psn == p.PSN && (e.state == sqSent || e.state == sqQueued) {
				if len(e.wr.SGEs) > 0 {
					var b [8]byte
					putU64LE(b[:], p.CompareAdd)
					if !qp.scatter(e.wr.SGEs[:1], b[:]) {
						e.status = WCLocalProtErr
					}
				}
				e.state = sqAcked
				qp.dev.tapAcked(qp.QPN, e.psn)
				break
			}
		}
		qp.ackBelow(p.PSN)
		qp.afterAck()
	}
}

// ackUpTo acknowledges every sent entry with PSN ≤ ack (cumulative).
func (qp *QP) ackUpTo(ack uint32) {
	for _, e := range qp.sq {
		if e.state == sqSent && !psnLess(ack, e.psn) {
			if isFenced(e.wr.Opcode) {
				// READ/ATOMIC complete only via their response packets.
				continue
			}
			e.state = sqAcked
			qp.dev.tapAcked(qp.QPN, e.psn)
		}
	}
	qp.afterAck()
}

// ackBelow acknowledges sent entries with PSN strictly below psn.
func (qp *QP) ackBelow(psn uint32) {
	for _, e := range qp.sq {
		if e.state == sqSent && psnLess(e.psn, psn) && !isFenced(e.wr.Opcode) {
			e.state = sqAcked
			qp.dev.tapAcked(qp.QPN, e.psn)
		}
	}
}

// afterAck handles bookkeeping common to every acknowledgement.
func (qp *QP) afterAck() {
	qp.retries = 0
	qp.rnrRetries = 0
	qp.completeInOrder()
	qp.armRTO()
}

// goBackN re-queues every entry with PSN ≥ from for retransmission.
func (qp *QP) goBackN(from uint32) {
	qp.NGoBackN++
	qp.mGoBackN.Inc()
	qp.markUnsent(from)
	qp.requeueUnsent()
}

// markUnsent rewinds sent entries at or after PSN from back to queued.
func (qp *QP) markUnsent(from uint32) {
	for _, e := range qp.sq {
		if e.state == sqSent && !psnLess(e.psn, from) {
			e.state = sqQueued
			e.retransmit = true
		}
	}
}

// requeueUnsent puts every queued-but-not-listed entry back on the
// transmit queue in PSN order.
func (qp *QP) requeueUnsent() {
	for _, e := range qp.sq {
		if e.state == sqQueued && !e.queued {
			e.queued = true
			e.fragCursor = 0
			qp.txq.push(e)
		}
	}
	qp.dev.enqueueTx(qp)
}

// retransmitUnackedImpl re-queues all sent-unacked entries (RTO / RNR).
func (qp *QP) retransmitUnackedQueued() {
	qp.NGoBackN++
	qp.mGoBackN.Inc()
	for _, e := range qp.sq {
		if e.state == sqSent {
			e.state = sqQueued
			e.retransmit = true
		}
	}
	qp.requeueUnsent()
}

// isFenced reports ops whose completion requires a response packet.
func isFenced(op Opcode) bool {
	return op == OpRead || op == OpCompSwap || op == OpFetchAdd
}

func putU64LE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
