// Package metrics is the deterministic telemetry substrate of the
// simulated MigrRDMA stack: a registry of counters, gauges and
// fixed-bucket histograms keyed by component/name{labels}, stamped with
// the simulation clock.
//
// Two properties drive the design:
//
//   - Hot-path increments are one atomic add on a cached handle. The
//     registry map is consulted only at handle-creation time (device,
//     QP, port and session construction), never on the data path.
//   - Everything observable is deterministic. Snapshots render metrics
//     in sorted key order and carry the virtual timestamp, so two runs
//     of the same seeded simulation produce byte-identical snapshots —
//     the chaos harness folds the snapshot hash into its trace hash to
//     make metric regressions break determinism loudly.
//
// Increments are atomic so metrics stay truthful even off the
// simulation loop (the race-detector tests exercise raw concurrent
// goroutines); reads taken mid-simulation see the values as of the
// current virtual instant because sim procs are serialized.
package metrics

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind for rendering.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Labels annotate one metric instance (e.g. node, qpn). They are read
// once at handle creation; rendering sorts keys, so any map is fine.
type Labels map[string]string

// Key builds the canonical metric key: component/name{k=v,...} with
// label keys sorted, or component/name when there are no labels.
func Key(component, name string, labels Labels) string {
	if len(labels) == 0 {
		return component + "/" + name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(component)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metric is the shared storage behind every handle type.
type metric struct {
	key  string
	kind Kind

	// val is the counter/gauge value.
	val atomic.Int64
	// high is the gauge high-water mark.
	high atomic.Int64

	// Histogram state: bounds are the inclusive upper bucket bounds;
	// buckets[i] counts observations ≤ bounds[i], buckets[len(bounds)]
	// is the overflow (+Inf) bucket.
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Registry holds the metrics of one simulated cluster.
type Registry struct {
	nowFn func() time.Duration

	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric // creation order; snapshots re-sort by key
}

// New creates a registry stamping snapshots with now (typically the
// scheduler's clock). A nil now yields zero timestamps — useful for
// detached registries in unit tests.
func New(now func() time.Duration) *Registry {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Registry{nowFn: now, byKey: make(map[string]*metric)}
}

// lookup returns the metric for key, creating it with the given kind.
// A kind clash (same key registered as two different types) panics: it
// is a programming error, not a runtime condition.
func (r *Registry) lookup(key string, kind Kind, bounds []int64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{key: key, kind: kind}
	if kind == KindHistogram {
		m.bounds = append([]int64(nil), bounds...)
		m.buckets = make([]atomic.Int64, len(bounds)+1)
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns (creating if needed) the counter for the key.
type Counter struct{ m *metric }

// Counter resolves a counter handle. Handles are cheap to hold and are
// meant to be cached on hot-path structs at construction time.
func (r *Registry) Counter(component, name string, labels Labels) *Counter {
	return &Counter{m: r.lookup(Key(component, name, labels), KindCounter, nil)}
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.m.val.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.m.val.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.m.val.Load() }

// Gauge is a point-in-time value that also tracks its high-water mark.
type Gauge struct{ m *metric }

// Gauge resolves a gauge handle.
func (r *Registry) Gauge(component, name string, labels Labels) *Gauge {
	return &Gauge{m: r.lookup(Key(component, name, labels), KindGauge, nil)}
}

// Set records the current value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	g.m.val.Store(v)
	for {
		h := g.m.high.Load()
		if v <= h || g.m.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Add shifts the gauge by delta, updating the high-water mark.
func (g *Gauge) Add(delta int64) {
	v := g.m.val.Add(delta)
	for {
		h := g.m.high.Load()
		if v <= h || g.m.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value reads the current gauge value.
func (g *Gauge) Value() int64 { return g.m.val.Load() }

// High reads the high-water mark.
func (g *Gauge) High() int64 { return g.m.high.Load() }

// Histogram is a fixed-bucket distribution.
type Histogram struct{ m *metric }

// Histogram resolves a histogram handle with the given inclusive upper
// bucket bounds (must be sorted ascending). The bounds of the first
// registration win; later lookups reuse them.
func (r *Registry) Histogram(component, name string, labels Labels, bounds []int64) *Histogram {
	return &Histogram{m: r.lookup(Key(component, name, labels), KindHistogram, bounds)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.m.bounds), func(i int) bool { return v <= h.m.bounds[i] })
	h.m.buckets[i].Add(1)
	h.m.count.Add(1)
	h.m.sum.Add(v)
}

// Count reads the number of observations.
func (h *Histogram) Count() int64 { return h.m.count.Load() }

// Sum reads the sum of observations.
func (h *Histogram) Sum() int64 { return h.m.sum.Load() }

// --- Snapshots ---------------------------------------------------------------

// Value is one metric frozen at snapshot time.
type Value struct {
	Key  string
	Kind Kind

	// Counter / gauge value.
	Value int64
	// Gauge high-water mark.
	High int64

	// Histogram state.
	Bounds  []int64
	Buckets []int64
	Count   int64
	Sum     int64
}

// Snapshot is a point-in-time copy of every metric, sorted by key.
type Snapshot struct {
	Time   time.Duration
	Values []Value
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	ms := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	s := &Snapshot{Time: r.nowFn(), Values: make([]Value, 0, len(ms))}
	for _, m := range ms {
		v := Value{Key: m.key, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			v.Value = m.val.Load()
		case KindGauge:
			v.Value = m.val.Load()
			v.High = m.high.Load()
		case KindHistogram:
			v.Bounds = m.bounds
			v.Buckets = make([]int64, len(m.buckets))
			for i := range m.buckets {
				v.Buckets[i] = m.buckets[i].Load()
			}
			v.Count = m.count.Load()
			v.Sum = m.sum.Load()
		}
		s.Values = append(s.Values, v)
	}
	sort.Slice(s.Values, func(i, j int) bool { return s.Values[i].Key < s.Values[j].Key })
	return s
}

// Get returns the value for an exact key.
func (s *Snapshot) Get(key string) (Value, bool) {
	i := sort.Search(len(s.Values), func(i int) bool { return s.Values[i].Key >= key })
	if i < len(s.Values) && s.Values[i].Key == key {
		return s.Values[i], true
	}
	return Value{}, false
}

// Sum adds up every counter/gauge value whose key is component/name
// with any label set — the cross-node roll-up the chaos report uses.
func (s *Snapshot) Sum(component, name string) int64 {
	exact := component + "/" + name
	prefix := exact + "{"
	var total int64
	for _, v := range s.Values {
		if v.Key == exact || strings.HasPrefix(v.Key, prefix) {
			total += v.Value
		}
	}
	return total
}

// Diff returns a snapshot holding the change since prev: counters and
// histogram buckets subtract; gauges keep their current value (a gauge
// delta is meaningless). Metrics absent from prev diff against zero.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	old := make(map[string]Value, len(prev.Values))
	for _, v := range prev.Values {
		old[v.Key] = v
	}
	out := &Snapshot{Time: s.Time, Values: make([]Value, 0, len(s.Values))}
	for _, v := range s.Values {
		d := v
		if o, ok := old[v.Key]; ok {
			switch v.Kind {
			case KindCounter:
				d.Value = v.Value - o.Value
			case KindHistogram:
				d.Count = v.Count - o.Count
				d.Sum = v.Sum - o.Sum
				d.Buckets = make([]int64, len(v.Buckets))
				for i := range v.Buckets {
					d.Buckets[i] = v.Buckets[i]
					if i < len(o.Buckets) {
						d.Buckets[i] -= o.Buckets[i]
					}
				}
			}
		}
		out.Values = append(out.Values, d)
	}
	return out
}

// String renders the snapshot as sorted "key value" lines — the format
// `migrctl stats` prints and the determinism tests byte-compare.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# snapshot at %v (%d metrics)\n", s.Time, len(s.Values))
	for _, v := range s.Values {
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%-52s %d\n", v.Key, v.Value)
		case KindGauge:
			fmt.Fprintf(&b, "%-52s %d high=%d\n", v.Key, v.Value, v.High)
		case KindHistogram:
			fmt.Fprintf(&b, "%-52s count=%d sum=%d", v.Key, v.Count, v.Sum)
			for i, n := range v.Buckets {
				if i < len(v.Bounds) {
					fmt.Fprintf(&b, " le%d=%d", v.Bounds[i], n)
				} else {
					fmt.Fprintf(&b, " inf=%d", n)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Hash folds the rendered snapshot into a SHA-256 hex digest. Because
// rendering is key-sorted and timestamped with the virtual clock, the
// hash is stable across identical seeded runs.
func (s *Snapshot) Hash() string {
	h := sha256.Sum256([]byte(s.String()))
	return hex.EncodeToString(h[:])
}
