package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"migrrdma/internal/sim"
)

func TestKeyFormat(t *testing.T) {
	if k := Key("rnic", "tx_bytes", nil); k != "rnic/tx_bytes" {
		t.Fatalf("key = %q", k)
	}
	// Label keys render sorted regardless of map order.
	k := Key("fabric", "dropped_frames", Labels{"port": "rdma", "node": "src"})
	if k != "fabric/dropped_frames{node=src,port=rdma}" {
		t.Fatalf("key = %q", k)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New(nil)
	c := r.Counter("a", "c", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same key resolves to the same storage.
	if r.Counter("a", "c", nil).Value() != 5 {
		t.Fatal("second handle sees a different counter")
	}

	g := r.Gauge("a", "g", nil)
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.High() != 7 {
		t.Fatalf("gauge = %d high = %d", g.Value(), g.High())
	}
	g.Add(10)
	if g.Value() != 13 || g.High() != 13 {
		t.Fatalf("gauge after Add = %d high = %d", g.Value(), g.High())
	}

	h := r.Histogram("a", "h", nil, []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hv, ok := snap.Get("a/h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Buckets[0] != 2 || hv.Buckets[1] != 1 || hv.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", hv.Buckets)
	}
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r := New(nil)
	r.Counter("a", "x", nil)
	r.Gauge("a", "x", nil)
}

func TestSnapshotSortedAndStamped(t *testing.T) {
	s := sim.New(1)
	r := New(s.Now)
	r.Counter("z", "last", nil).Inc()
	r.Counter("a", "first", nil).Inc()
	s.Go("t", func() { s.Sleep(3 * time.Millisecond) })
	s.Run()
	snap := r.Snapshot()
	if snap.Time != 3*time.Millisecond {
		t.Fatalf("snapshot time = %v", snap.Time)
	}
	if snap.Values[0].Key != "a/first" || snap.Values[1].Key != "z/last" {
		t.Fatalf("snapshot order: %q, %q", snap.Values[0].Key, snap.Values[1].Key)
	}
	if !strings.Contains(snap.String(), "a/first") {
		t.Fatalf("render missing key:\n%s", snap.String())
	}
}

func TestSnapshotSumAndDiff(t *testing.T) {
	r := New(nil)
	r.Counter("fabric", "dropped_frames", Labels{"node": "a"}).Add(3)
	r.Counter("fabric", "dropped_frames", Labels{"node": "b"}).Add(4)
	first := r.Snapshot()
	if first.Sum("fabric", "dropped_frames") != 7 {
		t.Fatalf("sum = %d", first.Sum("fabric", "dropped_frames"))
	}
	r.Counter("fabric", "dropped_frames", Labels{"node": "a"}).Add(10)
	diff := r.Snapshot().Diff(first)
	if diff.Sum("fabric", "dropped_frames") != 10 {
		t.Fatalf("diff sum = %d", diff.Sum("fabric", "dropped_frames"))
	}
}

func TestSnapshotHashStable(t *testing.T) {
	build := func() *Snapshot {
		r := New(nil)
		r.Counter("a", "c", Labels{"node": "x"}).Add(42)
		r.Gauge("b", "g", nil).Set(7)
		r.Histogram("c", "h", nil, []int64{1, 2}).Observe(2)
		return r.Snapshot()
	}
	if build().Hash() != build().Hash() {
		t.Fatal("identical registries hash differently")
	}
}

// TestRawGoroutineRace exercises the atomic hot paths from genuinely
// parallel goroutines so `go test -race` proves increment safety (sim
// procs are serialized by the scheduler and would never race).
func TestRawGoroutineRace(t *testing.T) {
	r := New(nil)
	c := r.Counter("race", "c", nil)
	g := r.Gauge("race", "g", nil)
	h := r.Histogram("race", "h", nil, []int64{8, 64})
	var wg sync.WaitGroup
	const procs, iters = 8, 1000
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(p*i) % 100)
				// Interleave snapshotting with increments.
				if i%200 == 0 {
					_ = r.Snapshot().Hash()
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != procs*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), procs*iters)
	}
	if g.Value() != procs*iters || g.High() != procs*iters {
		t.Fatalf("gauge = %d high = %d", g.Value(), g.High())
	}
	if h.Count() != procs*iters {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

// TestSimProcIncrements drives increments from multiple sim procs — the
// deployment configuration — and checks a snapshot taken mid-run sees a
// consistent total.
func TestSimProcIncrements(t *testing.T) {
	s := sim.New(9)
	r := New(s.Now)
	c := r.Counter("race", "sim", nil)
	for p := 0; p < 4; p++ {
		s.Go("inc", func() {
			for i := 0; i < 100; i++ {
				c.Inc()
				s.Sleep(time.Microsecond)
			}
		})
	}
	s.Run()
	if c.Value() != 400 {
		t.Fatalf("counter = %d, want 400", c.Value())
	}
}
