package trace

import (
	"strings"
	"testing"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

func TestTimelinePhases(t *testing.T) {
	s := sim.New(1)
	tl := NewTimeline(s)
	s.Go("test", func() {
		tl.Measure("a", func() { s.Sleep(3 * time.Millisecond) })
		tl.Begin("b")
		s.Sleep(2 * time.Millisecond)
		tl.End("b")
		tl.Measure("a", func() { s.Sleep(time.Millisecond) })
	})
	s.Run()
	if got := tl.Get("a"); got != 4*time.Millisecond {
		t.Fatalf("a total = %v, want 4ms", got)
	}
	if got := tl.Get("b"); got != 2*time.Millisecond {
		t.Fatalf("b = %v", got)
	}
	ps := tl.Phases()
	if len(ps) != 3 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("phases = %+v", ps)
	}
	if tl.Get("missing") != 0 {
		t.Fatal("missing phase non-zero")
	}
}

func TestTimelineEndUnopenedRecordsError(t *testing.T) {
	s := sim.New(1)
	tl := NewTimeline(s)
	tl.End("nope") // must not panic
	errs := tl.Errs()
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want one marker", errs)
	}
	if want := `End of unopened phase "nope"`; len(errs[0]) < len(want) || errs[0][:len(want)] != want {
		t.Fatalf("err = %q", errs[0])
	}
	if len(tl.Phases()) != 0 {
		t.Fatalf("phases = %+v, want none", tl.Phases())
	}
	if out := tl.String(); !strings.Contains(out, "error: End of unopened phase") {
		t.Fatalf("String() missing error marker:\n%s", out)
	}
}

func TestTimelineUnclosedPhaseAnnotated(t *testing.T) {
	s := sim.New(1)
	tl := NewTimeline(s)
	s.Go("test", func() {
		tl.Measure("closed", func() { s.Sleep(time.Millisecond) })
		tl.Begin("dangling")
		s.Sleep(2 * time.Millisecond)
	})
	s.Run()
	ps := tl.Phases()
	if len(ps) != 2 {
		t.Fatalf("phases = %+v, want closed + dangling", ps)
	}
	var dangling *Phase
	for i := range ps {
		if ps[i].Name == "dangling" {
			dangling = &ps[i]
		}
	}
	if dangling == nil || dangling.Annotation != "unclosed" {
		t.Fatalf("dangling phase = %+v, want unclosed annotation", ps)
	}
	if dangling.End != s.Now() {
		t.Fatalf("dangling End = %v, want now %v", dangling.End, s.Now())
	}
	// The timeline itself is not mutated: a later End still closes it.
	s.Go("close", func() { tl.End("dangling") })
	s.Run()
	if len(tl.Errs()) != 0 {
		t.Fatalf("late End recorded error: %v", tl.Errs())
	}
	if got := tl.Get("dangling"); got != 2*time.Millisecond {
		t.Fatalf("dangling closed dur = %v", got)
	}
}

func TestSamplerSeries(t *testing.T) {
	s := sim.New(1)
	net := fabric.New(s, fabric.Config{})
	muxA := fabric.NewMux(net, "a")
	fabric.NewMux(net, "b")
	dev := rnic.NewDevice(net, muxA, "a", rnic.Config{})
	_ = dev
	devB := rnic.NewDevice(net, fabric.NewMux(net, "c"), "c", rnic.Config{})
	_ = devB
	smp := NewSampler(dev, 5*time.Millisecond, false)
	s.Go("sampler", smp.Run)
	s.Go("traffic", func() {
		// Idle 20 ms, then raw frames out of "a" for 30 ms, then idle.
		s.Sleep(20 * time.Millisecond)
		for i := 0; i < 30; i++ {
			net.Send(fabric.Frame{Src: "a", Dst: "b", Port: "x", Size: 1 << 20})
			s.Sleep(time.Millisecond)
		}
		s.Sleep(30 * time.Millisecond)
		smp.Stop()
	})
	s.RunFor(time.Second)
	if len(smp.Samples()) < 10 {
		t.Fatalf("only %d samples", len(smp.Samples()))
	}
	// The rnic/tx_bytes counter counts only the device pacer's frames; raw
	// fabric sends don't go through it, so here we just assert the series
	// is well-formed and zero (no RDMA traffic).
	if _, max := smp.MinMax(0, time.Second); max != 0 {
		t.Fatalf("unexpected device throughput %v", max)
	}
	if z := smp.ZeroSpan(0, 80*time.Millisecond); z < 50*time.Millisecond {
		t.Fatalf("zero span %v, want most of the window", z)
	}
}
