// Package trace provides measurement utilities for the evaluation
// harness: named phase timelines (the Fig. 3 blackout breakdown) and a
// fixed-interval throughput sampler built on the NIC byte counters (the
// paper samples Mellanox ethtool counters at 5 ms granularity for
// Fig. 5, §5.5.2).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// Timeline records named, possibly overlapping phases.
type Timeline struct {
	sched  *sim.Scheduler
	phases []Phase
	open   map[string]time.Duration
}

// Phase is one named interval.
type Phase struct {
	Name       string
	Start, End time.Duration
}

// Dur returns the phase length.
func (p Phase) Dur() time.Duration { return p.End - p.Start }

// NewTimeline creates a timeline on the scheduler's clock.
func NewTimeline(s *sim.Scheduler) *Timeline {
	return &Timeline{sched: s, open: make(map[string]time.Duration)}
}

// Begin opens a phase.
func (t *Timeline) Begin(name string) { t.open[name] = t.sched.Now() }

// End closes a phase, recording it.
func (t *Timeline) End(name string) {
	start, ok := t.open[name]
	if !ok {
		panic("trace: End of unopened phase " + name)
	}
	delete(t.open, name)
	t.phases = append(t.phases, Phase{Name: name, Start: start, End: t.sched.Now()})
}

// Measure runs fn as the named phase.
func (t *Timeline) Measure(name string, fn func()) {
	t.Begin(name)
	fn()
	t.End(name)
}

// Get returns the total duration of all phases with the name.
func (t *Timeline) Get(name string) time.Duration {
	var sum time.Duration
	for _, p := range t.phases {
		if p.Name == name {
			sum += p.Dur()
		}
	}
	return sum
}

// Phases returns the recorded phases in start order.
func (t *Timeline) Phases() []Phase {
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// String formats the timeline for reports.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, p := range t.Phases() {
		fmt.Fprintf(&b, "%-14s %10v  (at %v)\n", p.Name, p.Dur().Round(time.Microsecond), p.Start.Round(time.Microsecond))
	}
	return b.String()
}

// Sample is one throughput measurement.
type Sample struct {
	T    time.Duration
	Gbps float64
}

// Sampler periodically reads a device's byte counters and converts the
// delta to throughput.
type Sampler struct {
	sched    *sim.Scheduler
	dev      *rnic.Device
	interval time.Duration
	rx       bool

	samples []Sample
	stop    bool
}

// NewSampler samples dev every interval. rx selects the receive counter
// (otherwise transmit).
func NewSampler(dev *rnic.Device, interval time.Duration, rx bool) *Sampler {
	return &Sampler{sched: dev.Scheduler(), dev: dev, interval: interval, rx: rx}
}

// Run samples until Stop is called; spawn it as a proc.
func (s *Sampler) Run() {
	last := s.read()
	for !s.stop {
		s.sched.Sleep(s.interval)
		cur := s.read()
		gbps := float64(cur-last) * 8 / s.interval.Seconds() / 1e9
		s.samples = append(s.samples, Sample{T: s.sched.Now(), Gbps: gbps})
		last = cur
	}
}

// Stop ends sampling after the current interval.
func (s *Sampler) Stop() { s.stop = true }

func (s *Sampler) read() int64 {
	if s.rx {
		return s.dev.RxBytes
	}
	return s.dev.TxBytes
}

// Samples returns the collected series.
func (s *Sampler) Samples() []Sample { return s.samples }

// MinMax returns the lowest and highest sampled throughput within
// [from, to].
func (s *Sampler) MinMax(from, to time.Duration) (min, max float64) {
	return s.minMax(from, to, false)
}

// MinMaxNonZero is MinMax restricted to non-zero samples — the brownout
// floor, excluding the blackout itself.
func (s *Sampler) MinMaxNonZero(from, to time.Duration) (min, max float64) {
	return s.minMax(from, to, true)
}

func (s *Sampler) minMax(from, to time.Duration, skipZero bool) (min, max float64) {
	first := true
	for _, sm := range s.samples {
		if sm.T < from || sm.T > to {
			continue
		}
		if skipZero && sm.Gbps < 0.5 {
			continue
		}
		if first {
			min, max = sm.Gbps, sm.Gbps
			first = false
			continue
		}
		if sm.Gbps < min {
			min = sm.Gbps
		}
		if sm.Gbps > max {
			max = sm.Gbps
		}
	}
	return min, max
}

// ZeroSpan returns the longest contiguous run of (near-)zero samples in
// [from, to] — the observed communication blackout of Fig. 5.
func (s *Sampler) ZeroSpan(from, to time.Duration) time.Duration {
	var longest, run time.Duration
	for _, sm := range s.samples {
		if sm.T < from || sm.T > to {
			continue
		}
		if sm.Gbps < 0.5 {
			run += s.interval
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}
