// Package trace provides measurement utilities for the evaluation
// harness: named phase timelines (the Fig. 3 blackout breakdown) and a
// fixed-interval throughput sampler built on the NIC byte counters (the
// paper samples Mellanox ethtool counters at 5 ms granularity for
// Fig. 5, §5.5.2).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"migrrdma/internal/metrics"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
)

// Timeline records named, possibly overlapping phases.
type Timeline struct {
	sched  *sim.Scheduler
	label  string
	phases []Phase
	open   map[string]time.Duration
	errs   []string
}

// SetLabel tags the timeline (e.g. with a migration ID); String
// prefixes every rendered line with it so overlapping timelines stay
// distinguishable in merged output.
func (t *Timeline) SetLabel(label string) { t.label = label }

// Label returns the timeline's tag.
func (t *Timeline) Label() string { return t.label }

// Phase is one named interval. Annotation is empty for a normally
// closed phase and "unclosed" for one still open at snapshot time.
type Phase struct {
	Name       string
	Start, End time.Duration
	Annotation string
}

// Dur returns the phase length.
func (p Phase) Dur() time.Duration { return p.End - p.Start }

// NewTimeline creates a timeline on the scheduler's clock.
func NewTimeline(s *sim.Scheduler) *Timeline {
	return &Timeline{sched: s, open: make(map[string]time.Duration)}
}

// Begin opens a phase.
func (t *Timeline) Begin(name string) { t.open[name] = t.sched.Now() }

// End closes a phase, recording it. Ending a phase that was never
// opened is a harness bug, but one that must not kill a long
// experiment mid-run: it is recorded as an error marker retrievable
// via Errs and rendered in the report instead of panicking.
func (t *Timeline) End(name string) {
	start, ok := t.open[name]
	if !ok {
		t.errs = append(t.errs, fmt.Sprintf("End of unopened phase %q at %v", name, t.sched.Now()))
		return
	}
	delete(t.open, name)
	t.phases = append(t.phases, Phase{Name: name, Start: start, End: t.sched.Now()})
}

// Measure runs fn as the named phase.
func (t *Timeline) Measure(name string, fn func()) {
	t.Begin(name)
	fn()
	t.End(name)
}

// Mark records an instantaneous, zero-length phase with an annotation —
// a point event on the timeline, such as the moment a migration
// aborted.
func (t *Timeline) Mark(name, annotation string) {
	now := t.sched.Now()
	t.phases = append(t.phases, Phase{Name: name, Start: now, End: now, Annotation: annotation})
}

// Errs returns the error markers recorded so far (unopened-phase Ends).
func (t *Timeline) Errs() []string {
	out := make([]string, len(t.errs))
	copy(out, t.errs)
	return out
}

// Get returns the total duration of all closed phases with the name.
func (t *Timeline) Get(name string) time.Duration {
	var sum time.Duration
	for _, p := range t.phases {
		if p.Name == name {
			sum += p.Dur()
		}
	}
	return sum
}

// Phases returns the recorded phases in start order. Phases still open
// are closed at the current instant and annotated "unclosed" instead of
// being silently dropped; the timeline itself is not mutated, so a
// later End still records the real interval.
func (t *Timeline) Phases() []Phase {
	out := make([]Phase, len(t.phases), len(t.phases)+len(t.open))
	copy(out, t.phases)
	now := t.sched.Now()
	openNames := make([]string, 0, len(t.open))
	for name := range t.open {
		openNames = append(openNames, name)
	}
	sort.Strings(openNames)
	for _, name := range openNames {
		out = append(out, Phase{Name: name, Start: t.open[name], End: now, Annotation: "unclosed"})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// String formats the timeline for reports, including unclosed phases
// and error markers.
func (t *Timeline) String() string {
	prefix := ""
	if t.label != "" {
		prefix = "[" + t.label + "] "
	}
	var b strings.Builder
	for _, p := range t.Phases() {
		fmt.Fprintf(&b, "%s%-14s %10v  (at %v)", prefix, p.Name, p.Dur().Round(time.Microsecond), p.Start.Round(time.Microsecond))
		if p.Annotation != "" {
			fmt.Fprintf(&b, "  [%s]", p.Annotation)
		}
		b.WriteByte('\n')
	}
	for _, e := range t.errs {
		fmt.Fprintf(&b, "%serror: %s\n", prefix, e)
	}
	return b.String()
}

// Sample is one throughput measurement.
type Sample struct {
	T    time.Duration
	Gbps float64
}

// Sampler periodically reads a byte counter and converts the delta to
// throughput. It consumes the metrics registry (the simulated ethtool
// counter file) rather than reaching into device internals.
type Sampler struct {
	sched    *sim.Scheduler
	counter  *metrics.Counter
	interval time.Duration

	samples []Sample
	stop    bool
}

// NewSampler samples dev's wire byte counter every interval. rx selects
// the receive counter (otherwise transmit). The counter handle is
// resolved from the device's metrics registry.
func NewSampler(dev *rnic.Device, interval time.Duration, rx bool) *Sampler {
	name := "tx_bytes"
	if rx {
		name = "rx_bytes"
	}
	c := dev.Metrics().Counter("rnic", name, metrics.Labels{"node": dev.Node()})
	return NewCounterSampler(dev.Scheduler(), c, interval)
}

// NewCounterSampler samples an arbitrary registry byte counter.
func NewCounterSampler(sched *sim.Scheduler, c *metrics.Counter, interval time.Duration) *Sampler {
	return &Sampler{sched: sched, counter: c, interval: interval}
}

// Run samples until Stop is called; spawn it as a proc.
func (s *Sampler) Run() {
	last := s.counter.Value()
	for !s.stop {
		s.sched.Sleep(s.interval)
		cur := s.counter.Value()
		gbps := float64(cur-last) * 8 / s.interval.Seconds() / 1e9
		s.samples = append(s.samples, Sample{T: s.sched.Now(), Gbps: gbps})
		last = cur
	}
}

// Stop ends sampling after the current interval.
func (s *Sampler) Stop() { s.stop = true }

// Samples returns the collected series.
func (s *Sampler) Samples() []Sample { return s.samples }

// MinMax returns the lowest and highest sampled throughput within
// [from, to].
func (s *Sampler) MinMax(from, to time.Duration) (min, max float64) {
	return s.minMax(from, to, false)
}

// MinMaxNonZero is MinMax restricted to non-zero samples — the brownout
// floor, excluding the blackout itself.
func (s *Sampler) MinMaxNonZero(from, to time.Duration) (min, max float64) {
	return s.minMax(from, to, true)
}

func (s *Sampler) minMax(from, to time.Duration, skipZero bool) (min, max float64) {
	first := true
	for _, sm := range s.samples {
		if sm.T < from || sm.T > to {
			continue
		}
		if skipZero && sm.Gbps < 0.5 {
			continue
		}
		if first {
			min, max = sm.Gbps, sm.Gbps
			first = false
			continue
		}
		if sm.Gbps < min {
			min = sm.Gbps
		}
		if sm.Gbps > max {
			max = sm.Gbps
		}
	}
	return min, max
}

// ZeroSpan returns the longest contiguous run of (near-)zero samples in
// [from, to] — the observed communication blackout of Fig. 5.
func (s *Sampler) ZeroSpan(from, to time.Duration) time.Duration {
	var longest, run time.Duration
	for _, sm := range s.samples {
		if sm.T < from || sm.T > to {
			continue
		}
		if sm.Gbps < 0.5 {
			run += s.interval
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}
