package oob

import (
	"testing"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/sim"
)

func twoHubs(t *testing.T) (*sim.Scheduler, *Hub, *Hub) {
	t.Helper()
	s := sim.New(11)
	net := fabric.New(s, fabric.Config{})
	ha := NewHub(net, fabric.NewMux(net, "a"), "a")
	hb := NewHub(net, fabric.NewMux(net, "b"), "b")
	return s, ha, hb
}

func TestSendRecv(t *testing.T) {
	s, ha, hb := twoHubs(t)
	var got Msg
	s.Go("recv", func() {
		got = hb.Endpoint("svc").Recv()
	})
	s.Go("send", func() {
		ha.Endpoint("cli").Send("b", "svc", "hello", []byte("world"))
	})
	s.Run()
	if got.Kind != "hello" || string(got.Body) != "world" || got.FromNode != "a" || got.FromEP != "cli" {
		t.Fatalf("got %+v", got)
	}
}

func TestCallReply(t *testing.T) {
	s, ha, hb := twoHubs(t)
	hb.Endpoint("svc").Handle("double", func(m Msg) []byte {
		return append(m.Body, m.Body...)
	})
	var resp []byte
	s.Go("call", func() {
		resp = ha.Endpoint("cli").Call("b", "svc", "double", []byte("xy"))
	})
	s.Run()
	if string(resp) != "xyxy" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, ha, hb := twoHubs(t)
	hb.Endpoint("svc").Handle("echo", func(m Msg) []byte { return m.Body })
	results := make([]string, 5)
	for i := 0; i < 5; i++ {
		i := i
		s.Go("call", func() {
			results[i] = string(ha.Endpoint("cli").Call("b", "svc", "echo", []byte{byte('0' + i)}))
		})
	}
	s.Run()
	for i, r := range results {
		if r != string(rune('0'+i)) {
			t.Fatalf("call %d got %q", i, r)
		}
	}
}

func TestHandlerMayBlock(t *testing.T) {
	s, ha, hb := twoHubs(t)
	hb.Endpoint("svc").Handle("slow", func(m Msg) []byte {
		s.Sleep(1e6) // 1 ms of virtual time inside the handler
		return []byte("done")
	})
	var resp []byte
	s.Go("call", func() {
		resp = ha.Endpoint("cli").Call("b", "svc", "slow", nil)
	})
	s.Run()
	if string(resp) != "done" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestWireRoundTrip(t *testing.T) {
	w := wire{fromEP: "from", toEP: "to", kind: "k", body: []byte("payload"), reqID: 42, isReply: true}
	got, err := decodeWire(w.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.fromEP != w.fromEP || got.toEP != w.toEP || got.kind != w.kind ||
		string(got.body) != "payload" || got.reqID != 42 || !got.isReply {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestUnknownEndpointDropped(t *testing.T) {
	s, ha, _ := twoHubs(t)
	s.Go("send", func() {
		ha.Endpoint("cli").Send("b", "nobody", "x", nil)
	})
	s.Run() // must terminate without panic
}

func TestCallTimeoutOnMissingEndpoint(t *testing.T) {
	s, ha, _ := twoHubs(t)
	var ok bool
	var elapsed time.Duration
	s.Go("call", func() {
		start := s.Now()
		_, ok = ha.Endpoint("cli").CallTimeout("b", "ghost", "ping", nil, 3*time.Millisecond)
		elapsed = s.Now() - start
	})
	s.Run()
	if ok {
		t.Fatal("call to missing endpoint succeeded")
	}
	if elapsed < 3*time.Millisecond {
		t.Fatalf("timed out after %v, want ≥3ms", elapsed)
	}
}

func TestCallTimeoutStillDeliversInTime(t *testing.T) {
	s, ha, hb := twoHubs(t)
	hb.Endpoint("svc").Handle("echo", func(m Msg) []byte { return m.Body })
	var resp []byte
	var ok bool
	s.Go("call", func() {
		resp, ok = ha.Endpoint("cli").CallTimeout("b", "svc", "echo", []byte("hi"), 50*time.Millisecond)
	})
	s.Run()
	if !ok || string(resp) != "hi" {
		t.Fatalf("resp=%q ok=%v", resp, ok)
	}
}

func TestHandlerServesOneWayMessages(t *testing.T) {
	s, ha, hb := twoHubs(t)
	var got []string
	hb.Endpoint("svc").Handle("event", func(m Msg) []byte {
		got = append(got, string(m.Body))
		return nil // one-way: no reply expected
	})
	s.Go("send", func() {
		ep := ha.Endpoint("cli")
		ep.Send("b", "svc", "event", []byte("x"))
		ep.Send("b", "svc", "event", []byte("y"))
	})
	s.Run()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("handler received %v", got)
	}
}
