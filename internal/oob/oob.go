// Package oob provides the out-of-band control channel RDMA
// applications conventionally use to exchange connection metadata (QPNs,
// rkeys, memory addresses) before RDMA communication starts — the role
// TCP sockets play on the paper's testbed.
//
// MigrRDMA itself also relies on out-of-band messaging: the migration
// source notifies partners of the destination's address and QPN lists
// (§3.2), wait-before-stop exchanges n_sent counters (§3.4), and
// partners fetch fresh physical rkeys/QPNs after restoration (§3.3).
//
// Each node runs a Hub demultiplexing frames (fabric port "oob") to
// named endpoints. Endpoints support fire-and-forget sends, blocking
// receives, and blocking request/response calls with registered
// handlers.
package oob

import (
	"encoding/binary"
	"fmt"
	"time"

	"migrrdma/internal/fabric"
	"migrrdma/internal/sim"
)

// Port is the fabric mux port control traffic travels on.
const Port = "oob"

// Msg is one delivered message.
type Msg struct {
	FromNode, FromEP string
	Kind             string
	Body             []byte

	reqID   uint64
	isReply bool
}

// Hub is the per-node demultiplexer.
type Hub struct {
	sched *sim.Scheduler
	net   *fabric.Network
	node  string
	eps   map[string]*Endpoint
}

// NewHub attaches a hub to the node's mux.
func NewHub(net *fabric.Network, mux *fabric.Mux, node string) *Hub {
	h := &Hub{sched: net.Scheduler(), net: net, node: node, eps: make(map[string]*Endpoint)}
	mux.Register(Port, h.onFrame)
	return h
}

// Node returns the hub's fabric node name.
func (h *Hub) Node() string { return h.node }

// Endpoint creates (or returns) the named endpoint.
func (h *Hub) Endpoint(name string) *Endpoint {
	if ep, ok := h.eps[name]; ok {
		return ep
	}
	ep := &Endpoint{
		hub:      h,
		name:     name,
		inbox:    sim.NewChan[Msg](h.sched, "oob-inbox:"+name, 4096),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]*call),
	}
	h.eps[name] = ep
	return ep
}

// Close removes an endpoint; subsequent frames for it are dropped.
func (h *Hub) Close(name string) { delete(h.eps, name) }

// Handler serves a request and returns the reply body.
type Handler func(Msg) []byte

// Endpoint is a named mailbox on a node.
type Endpoint struct {
	hub      *Hub
	name     string
	inbox    *sim.Chan[Msg]
	handlers map[string]Handler
	pending  map[uint64]*call
	nextReq  uint64
}

type call struct {
	done *sim.Cond
	resp []byte
	ok   bool
}

// Name returns the endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Node returns the node the endpoint lives on.
func (ep *Endpoint) Node() string { return ep.hub.node }

// Send delivers a one-way message; it does not block.
func (ep *Endpoint) Send(toNode, toEP, kind string, body []byte) {
	ep.hub.send(wire{
		fromEP: ep.name, toEP: toEP, kind: kind, body: body,
	}, toNode)
}

// Recv blocks until a one-way message arrives.
func (ep *Endpoint) Recv() Msg {
	m, _ := ep.inbox.Recv()
	return m
}

// TryRecv returns a pending one-way message without blocking.
func (ep *Endpoint) TryRecv() (Msg, bool) { return ep.inbox.TryRecv() }

// Handle registers a request handler for kind. Handlers run in a fresh
// managed proc and may block.
func (ep *Endpoint) Handle(kind string, h Handler) { ep.handlers[kind] = h }

// Call sends a request and blocks until the reply arrives.
func (ep *Endpoint) Call(toNode, toEP, kind string, body []byte) []byte {
	resp, _ := ep.call(toNode, toEP, kind, body, 0)
	return resp
}

// CallTimeout is Call with a deadline; ok is false when no reply
// arrived in time (e.g. the peer runs no such endpoint).
func (ep *Endpoint) CallTimeout(toNode, toEP, kind string, body []byte, timeout time.Duration) ([]byte, bool) {
	return ep.call(toNode, toEP, kind, body, timeout)
}

func (ep *Endpoint) call(toNode, toEP, kind string, body []byte, timeout time.Duration) ([]byte, bool) {
	ep.nextReq++
	id := ep.nextReq
	c := &call{done: sim.NewCond(ep.hub.sched, "oob-call")}
	ep.pending[id] = c
	ep.hub.send(wire{
		fromEP: ep.name, toEP: toEP, kind: kind, body: body, reqID: id,
	}, toNode)
	for !c.ok {
		if timeout > 0 {
			if woken := c.done.WaitTimeout(timeout); !woken && !c.ok {
				delete(ep.pending, id)
				return nil, false
			}
		} else {
			c.done.Wait()
		}
	}
	delete(ep.pending, id)
	return c.resp, true
}

// wire is the encoded control frame.
type wire struct {
	fromEP, toEP, kind string
	body               []byte
	reqID              uint64
	isReply            bool
}

func (w wire) encode() []byte {
	out := make([]byte, 0, 32+len(w.fromEP)+len(w.toEP)+len(w.kind)+len(w.body))
	put := func(s []byte) []byte {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		out = append(out, l[:]...)
		return append(out, s...)
	}
	out = put([]byte(w.fromEP))
	out = put([]byte(w.toEP))
	out = put([]byte(w.kind))
	out = put(w.body)
	var id [9]byte
	binary.BigEndian.PutUint64(id[:], w.reqID)
	if w.isReply {
		id[8] = 1
	}
	return append(out, id[:]...)
}

func decodeWire(b []byte) (wire, error) {
	var w wire
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, fmt.Errorf("oob: truncated frame")
		}
		n := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("oob: truncated field")
		}
		f := b[:n]
		b = b[n:]
		return f, nil
	}
	var err error
	var f []byte
	if f, err = take(); err != nil {
		return w, err
	}
	w.fromEP = string(f)
	if f, err = take(); err != nil {
		return w, err
	}
	w.toEP = string(f)
	if f, err = take(); err != nil {
		return w, err
	}
	w.kind = string(f)
	if f, err = take(); err != nil {
		return w, err
	}
	w.body = f
	if len(b) != 9 {
		return w, fmt.Errorf("oob: bad trailer")
	}
	w.reqID = binary.BigEndian.Uint64(b)
	w.isReply = b[8] == 1
	return w, nil
}

// controlOverhead approximates TCP/IP framing for a control message.
const controlOverhead = 66

func (h *Hub) send(w wire, toNode string) {
	data := w.encode()
	h.net.Send(fabric.Frame{
		Src: h.node, Dst: toNode, Port: Port,
		Size: controlOverhead + len(data),
		Data: data,
	})
}

// onFrame dispatches an arriving control frame (inline, non-blocking).
func (h *Hub) onFrame(f fabric.Frame) {
	w, err := decodeWire(f.Data)
	if err != nil {
		return
	}
	ep, ok := h.eps[w.toEP]
	if !ok {
		return
	}
	if w.isReply {
		if c, ok := ep.pending[w.reqID]; ok {
			c.resp, c.ok = w.body, true
			c.done.Broadcast()
		}
		return
	}
	msg := Msg{FromNode: f.Src, FromEP: w.fromEP, Kind: w.kind, Body: w.body, reqID: w.reqID}
	if handler, ok := ep.handlers[w.kind]; ok {
		// Handlers serve both RPCs and one-way messages; they run in
		// their own proc so they may block. Only RPCs get a reply.
		reqID := w.reqID
		h.sched.Go("oob-handler:"+w.kind, func() {
			resp := handler(msg)
			if reqID != 0 {
				h.send(wire{
					fromEP: ep.name, toEP: w.fromEP, kind: w.kind,
					body: resp, reqID: reqID, isReply: true,
				}, f.Src)
			}
		})
		return
	}
	if w.reqID != 0 {
		return // RPC for an unhandled kind: drop; the caller times out
	}
	ep.inbox.TrySend(msg)
}
