package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"migrrdma/internal/rnic"
	"migrrdma/internal/verbs"
)

// Indirection is the driver-resident indirection layer of one process
// (§3.1): it intercepts every control-path call through the verbs
// Recorder seam and bookkeeps the minimal state needed to rebuild the
// process's RDMA communications elsewhere — the "roadmap of RDMA
// communication establishment" (§3.2).
//
// Destroyed resources have their creation records deleted, so replay
// never allocates resources only to free them again.
type Indirection struct {
	order []verbs.ObjID
	recs  map[verbs.ObjID]*record

	// predumped is the set of records included in the last pre-dump, so
	// FinalDump can emit only the difference (the CheckpointRDMA
	// semantics of Table 2).
	predumped map[verbs.ObjID]bool
}

// record is one live resource's creation event plus its accumulated
// QP state transitions.
type record struct {
	Ev       verbs.Event
	Modifies []rnic.ModifyAttr
}

// NewIndirection creates an empty indirection layer.
func NewIndirection() *Indirection {
	return &Indirection{recs: make(map[verbs.ObjID]*record)}
}

// Record implements verbs.Recorder.
func (ind *Indirection) Record(ev verbs.Event) {
	switch ev.Kind {
	case verbs.EvAllocPD, verbs.EvRegMR, verbs.EvCreateCQ, verbs.EvCreateQP,
		verbs.EvCreateSRQ, verbs.EvCreateCompChannel, verbs.EvBindMW, verbs.EvAllocDM:
		ind.order = append(ind.order, ev.ID)
		ind.recs[ev.ID] = &record{Ev: ev}
	case verbs.EvModifyQP:
		if r, ok := ind.recs[ev.ID]; ok {
			r.Modifies = append(r.Modifies, ev.Attr)
		}
	case verbs.EvDeallocPD, verbs.EvDeregMR, verbs.EvDestroyCQ, verbs.EvDestroyQP,
		verbs.EvDestroySRQ, verbs.EvDeallocMW, verbs.EvFreeDM:
		// §3.2: deleting the creation log on destroy avoids allocating
		// and releasing the resource during restore.
		delete(ind.recs, ev.ID)
		for i, id := range ind.order {
			if id == ev.ID {
				ind.order = append(ind.order[:i], ind.order[i+1:]...)
				break
			}
		}
	}
}

// live returns the creation records in creation order.
func (ind *Indirection) live() []*record {
	out := make([]*record, 0, len(ind.order))
	for _, id := range ind.order {
		out = append(out, ind.recs[id])
	}
	return out
}

// --- Checkpoint blobs --------------------------------------------------------

// RecordDTO is the serialized form of one creation record.
type RecordDTO struct {
	Ev       verbs.Event
	Modifies []rnic.ModifyAttr
}

// QPMeta is the per-QP metadata MigrRDMA adds (§3.2): the virtual QPN,
// the destination physical QPN and network address of the peer, and the
// §3.4 wait-before-stop counters.
type QPMeta struct {
	ID         verbs.ObjID
	VQPN       uint32
	Type       rnic.QPType
	State      rnic.QPState
	RemoteNode string
	RemoteQPN  uint32
	NSent      uint64
	NRecvDone  uint64
}

// MRMeta carries an MR's virtual keys so the destination can rebind
// them to the recreated region.
type MRMeta struct {
	ID           verbs.ObjID
	VLKey, VRKey uint32
}

// Blob is a checkpoint of the indirection layer: the communication
// roadmap plus virtualization metadata.
type Blob struct {
	Proc    string
	Records []RecordDTO
	// Destroyed lists resources that existed at pre-dump time but were
	// destroyed before the final dump (difference encoding).
	Destroyed []verbs.ObjID
	QPs       []QPMeta
	MRs       []MRMeta
	Final     bool
}

// encodeBlob serializes a blob with encoding/gob.
func encodeBlob(b *Blob) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("core: encode blob: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBlob deserializes a checkpoint blob.
func DecodeBlob(data []byte) (*Blob, error) {
	var b Blob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decode blob: %w", err)
	}
	return &b, nil
}
