package core

import (
	"fmt"

	"migrrdma/internal/criu"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/verbs"
)

// Staged is an in-progress RDMA restoration on the migration
// destination: the MigrRDMA Host Lib's working state. It maps the
// roadmap's original object IDs to freshly created resources on the
// destination device; the IDs are stable across migrations so the same
// process can migrate again later.
type Staged struct {
	daemon *Daemon
	ctx    *verbs.Context
	blob   *Blob
	// key is this restore's slot in the daemon's staging map.
	key string

	pds   map[verbs.ObjID]*verbs.PD
	cqs   map[verbs.ObjID]*verbs.CQ
	chans map[verbs.ObjID]*verbs.CompChannel
	srqs  map[verbs.ObjID]*verbs.SRQ
	mrs   map[verbs.ObjID]*verbs.MR
	mws   map[verbs.ObjID]*verbs.MW
	dms   map[verbs.ObjID]*verbs.DM
	qps   map[verbs.ObjID]*verbs.QP

	// qpByVQPN lets partner connect-new requests find staged QPs.
	qpByVQPN map[uint32]*verbs.QP
	// qpnPairs maps each adopted QP's old (source-side) physical QPN to
	// its restored destination QPN. The plug-and-forward cutover derives
	// its forwarding rule and tunnel translation table from it; filled
	// by bind, cleared by unbind.
	qpnPairs map[uint32]uint32
	// qpMeta keeps per-QP restore metadata by object ID.
	qpMeta map[verbs.ObjID]QPMeta

	// deferred holds MR records whose registration waits for full
	// memory restoration (registered during the pre-copy on the source,
	// §3.2 "we restore the conflicting MRs at the end of stop-and-copy").
	deferred []RecordDTO

	// Old (source-side) objects captured at bind time for reclamation.
	srcCtx  *verbs.Context
	srcPDs  []*verbs.PD
	srcMRs  []*verbs.MR
	srcCQs  []*verbs.CQ
	srcSRQs []*verbs.SRQ
	srcQPs  []*verbs.QP

	// bound marks a completed bind; undo holds, in bind order, the
	// closures that put each wrapper and translation-table entry back the
	// way it was. unbind runs them in reverse when a migration aborts
	// after adoption.
	bound bool
	undo  []func()

	// aborted makes abort idempotent (the runc compensation chain and the
	// daemon's abort handler may both reach the same slot).
	aborted bool
}

// RestoreContext is ibv_restore_context (Table 3): it opens the
// destination device for the restoring process and replays the roadmap.
// img may be nil when there is no partial restore (the no-presetup
// baseline); MR memory must then already be at its original addresses.
func (d *Daemon) RestoreContext(r *criu.Restore, img *criu.Image, b *Blob) (*Staged, error) {
	return d.RestoreContextFor(r, img, b, "")
}

// RestoreContextFor is RestoreContext for an identified migration: the
// staged restore is keyed by (migID, process), so concurrent inbound
// migrations on one host stay separable for partner connect-new
// requests.
func (d *Daemon) RestoreContextFor(r *criu.Restore, img *criu.Image, b *Blob, migID string) (*Staged, error) {
	st := &Staged{
		daemon:   d,
		ctx:      verbs.OpenDevice(d.dev, r.AS),
		blob:     b,
		pds:      make(map[verbs.ObjID]*verbs.PD),
		cqs:      make(map[verbs.ObjID]*verbs.CQ),
		chans:    make(map[verbs.ObjID]*verbs.CompChannel),
		srqs:     make(map[verbs.ObjID]*verbs.SRQ),
		mrs:      make(map[verbs.ObjID]*verbs.MR),
		mws:      make(map[verbs.ObjID]*verbs.MW),
		dms:      make(map[verbs.ObjID]*verbs.DM),
		qps:      make(map[verbs.ObjID]*verbs.QP),
		qpByVQPN: make(map[uint32]*verbs.QP),
		qpMeta:   make(map[verbs.ObjID]QPMeta),
	}
	// Fresh objects must never reuse roadmap IDs.
	var maxID verbs.ObjID
	for _, rec := range b.Records {
		if rec.Ev.ID > maxID {
			maxID = rec.Ev.ID
		}
	}
	st.ctx.SetNextObjID(maxID + 1)
	for _, m := range b.QPs {
		st.qpMeta[m.ID] = m
	}
	// Claim MR-backing memory at original addresses before anything
	// else maps (§3.2 "restore the MR's memory structures before the
	// memory restoration starts"). The roadmap replay itself runs later
	// via Replay, overlapping memory pre-copy.
	if img != nil {
		if err := st.claimMRMemory(r, img, b.Records); err != nil {
			return nil, err
		}
	}
	st.key = stagingKey(migID, b.Proc)
	d.staging[st.key] = st
	return st, nil
}

// Replay re-executes the checkpointed roadmap on the destination
// device. With pre-setup it runs during partial restore; the baseline
// runs it inside the blackout.
func (st *Staged) Replay() error { return st.replay(st.blob.Records) }

// claimMRMemory maps every VMA containing a to-be-registered MR at its
// original virtual address and restores its pages.
func (st *Staged) claimMRMemory(r *criu.Restore, img *criu.Image, recs []RecordDTO) error {
	for _, rec := range recs {
		if rec.Ev.Kind != verbs.EvRegMR {
			continue
		}
		for _, vrec := range img.VMAs {
			if vrec.Device {
				continue
			}
			if rec.Ev.Addr < vrec.Start+mem.Addr(vrec.Len) && vrec.Start < rec.Ev.Addr+mem.Addr(rec.Ev.Len) {
				if err := r.MapAtOriginal(img, vrec); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// replay re-executes the roadmap's control-path calls on the
// destination device: the Table-3 restore entry points. RC QPs stop at
// INIT; partner notification connects them. With pre-setup this runs
// during partial restore; the no-presetup baseline pays the same cost
// inside the blackout.
func (st *Staged) replay(recs []RecordDTO) error {
	for _, rec := range recs {
		if err := st.replayOne(rec); err != nil {
			return err
		}
	}
	return nil
}

// replayOne restores a single resource.
func (st *Staged) replayOne(rec RecordDTO) error {
	ev := rec.Ev
	switch ev.Kind {
	case verbs.EvAllocPD:
		st.pds[ev.ID] = st.ctx.AllocPD() // ibv_restore_pd

	case verbs.EvCreateCompChannel:
		st.chans[ev.ID] = st.ctx.CreateCompChannel()

	case verbs.EvCreateCQ: // ibv_restore_cq
		st.cqs[ev.ID] = st.ctx.CreateCQ(ev.CQCap, st.chans[ev.Channel])

	case verbs.EvCreateSRQ:
		st.srqs[ev.ID] = st.ctx.CreateSRQ()

	case verbs.EvRegMR:
		pd, ok := st.pds[ev.PD]
		if !ok {
			return fmt.Errorf("core: restore MR %d: missing PD %d", ev.ID, ev.PD)
		}
		if !st.ctx.Mem().Mapped(ev.Addr, ev.Len) {
			// The backing memory is not at its original address yet
			// (registered on the source during pre-copy, or the
			// no-presetup baseline before full restore): defer to
			// stop-and-copy (§3.2).
			st.deferred = append(st.deferred, rec)
			return nil
		}
		mr, err := st.ctx.RegMR(pd, ev.Addr, ev.Len, ev.Access)
		if err != nil {
			return fmt.Errorf("core: restore MR %d: %w", ev.ID, err)
		}
		st.mrs[ev.ID] = mr

	case verbs.EvBindMW:
		mr, ok := st.mrs[ev.MR]
		if !ok {
			// Parent MR deferred: defer the window too.
			st.deferred = append(st.deferred, rec)
			return nil
		}
		mw, err := st.ctx.BindMW(mr, ev.Addr, ev.Len, ev.Access)
		if err != nil {
			return fmt.Errorf("core: restore MW %d: %w", ev.ID, err)
		}
		st.mws[ev.ID] = mw

	case verbs.EvAllocDM:
		dm, err := st.ctx.AllocDM(ev.Len)
		if err != nil {
			return fmt.Errorf("core: restore DM %d: %w", ev.ID, err)
		}
		// §3.3: re-allocate on the new NIC, then mremap to the original
		// virtual address.
		if err := dm.Remap(ev.Addr); err != nil {
			return fmt.Errorf("core: restore DM %d remap: %w", ev.ID, err)
		}
		st.dms[ev.ID] = dm

	case verbs.EvCreateQP: // ibv_restore_qp
		pd, ok := st.pds[ev.PD]
		if !ok {
			return fmt.Errorf("core: restore QP %d: missing PD %d", ev.ID, ev.PD)
		}
		scq, rcq := st.cqs[ev.SendCQ], st.cqs[ev.RecvCQ]
		if scq == nil || rcq == nil {
			return fmt.Errorf("core: restore QP %d: missing CQs", ev.ID)
		}
		qp := st.ctx.CreateQP(pd, ev.QPType, scq, rcq, st.srqs[ev.SRQ], ev.Caps)
		st.qps[ev.ID] = qp
		meta := st.qpMeta[ev.ID]
		if meta.VQPN != 0 {
			st.qpByVQPN[meta.VQPN] = qp
		}
		// Advance the state machine: RC stops at INIT (the partner
		// exchange completes the connection); UD replays to its final
		// state directly.
		if meta.State >= rnic.StateInit {
			if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
				return err
			}
		}
		if ev.QPType == rnic.UD && meta.State >= rnic.StateRTR {
			if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR}); err != nil {
				return err
			}
			if meta.State >= rnic.StateRTS {
				if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// applyFinal merges the stop-and-copy difference blob: resources
// created on the source during pre-copy are restored now (deferred MRs
// first — their memory reached its original address when CRIU
// finalized), and resources destroyed during pre-copy are released.
func (st *Staged) applyFinal(final *Blob) error {
	for _, m := range final.QPs {
		st.qpMeta[m.ID] = m
	}
	deferred := st.deferred
	st.deferred = nil
	for _, rec := range deferred {
		if err := st.replayOne(rec); err != nil {
			return err
		}
	}
	for _, rec := range final.Records {
		if err := st.replayOne(rec); err != nil {
			return err
		}
	}
	if len(st.deferred) > 0 {
		return fmt.Errorf("core: %d MRs still unmappable after full restore", len(st.deferred))
	}
	for _, id := range final.Destroyed {
		st.destroyStaged(id)
	}
	return nil
}

// destroyStaged releases a staged resource that the source destroyed
// during pre-copy.
func (st *Staged) destroyStaged(id verbs.ObjID) {
	if mr, ok := st.mrs[id]; ok {
		mr.Dereg()
		delete(st.mrs, id)
	}
	if qp, ok := st.qps[id]; ok {
		qp.Destroy()
		delete(st.qps, id)
	}
	if cq, ok := st.cqs[id]; ok {
		cq.Destroy()
		delete(st.cqs, id)
	}
	if srq, ok := st.srqs[id]; ok {
		srq.Destroy()
		delete(st.srqs, id)
	}
	if mw, ok := st.mws[id]; ok {
		mw.Dealloc()
		delete(st.mws, id)
	}
	if dm, ok := st.dms[id]; ok {
		dm.Free()
		delete(st.dms, id)
	}
	if pd, ok := st.pds[id]; ok {
		pd.Dealloc()
		delete(st.pds, id)
	}
}

// bind swaps a session's wrappers onto the staged destination objects
// and updates the shared translation tables — "map the new RDMA
// resources into the restored processes" (Fig. 2b ⑥'). It validates
// that every wrapper has a staged counterpart before mutating anything,
// so a failed bind leaves the session untouched; a successful bind
// records undo closures so unbind can roll the swap back if the
// migration aborts later.
func (st *Staged) bind(s *Session) error {
	for id := range s.pds {
		if _, ok := st.pds[id]; !ok {
			return fmt.Errorf("core: bind: PD %d not staged", id)
		}
	}
	for id := range s.mrs {
		if _, ok := st.mrs[id]; !ok {
			return fmt.Errorf("core: bind: MR %d not staged", id)
		}
	}
	for id := range s.mws {
		if _, ok := st.mws[id]; !ok {
			return fmt.Errorf("core: bind: MW %d not staged", id)
		}
	}
	for id := range s.dms {
		if _, ok := st.dms[id]; !ok {
			return fmt.Errorf("core: bind: DM %d not staged", id)
		}
	}
	for _, cq := range s.cqs {
		if _, ok := st.cqs[cq.id]; !ok {
			return fmt.Errorf("core: bind: CQ %d not staged", cq.id)
		}
	}
	for id := range s.srqs {
		if _, ok := st.srqs[id]; !ok {
			return fmt.Errorf("core: bind: SRQ %d not staged", id)
		}
	}
	for id := range s.qps {
		if _, ok := st.qps[id]; !ok {
			return fmt.Errorf("core: bind: QP %d not staged", id)
		}
	}

	// The old context must stop feeding the roadmap: destroying the
	// source-side resources during reclamation is not an application
	// action and must not delete the creation records a future
	// migration replays.
	st.srcCtx = s.ctx
	st.srcCtx.SetRecorder(nil)
	st.ctx.SetRecorder(s.ind)
	s.ctx = st.ctx
	for id, pd := range s.pds {
		pd, old := pd, pd.v
		st.srcPDs = append(st.srcPDs, old)
		pd.v = st.pds[id]
		st.undo = append(st.undo, func() { pd.v = old })
	}
	for id, mr := range s.mrs {
		mr, old := mr, mr.v
		nv := st.mrs[id]
		st.srcMRs = append(st.srcMRs, old)
		mr.v = nv
		s.lkeys.update(mr.vlkey, nv.LKey())
		s.rkeys.update(mr.vrkey, nv.RKey())
		st.undo = append(st.undo, func() {
			mr.v = old
			s.lkeys.update(mr.vlkey, old.LKey())
			s.rkeys.update(mr.vrkey, old.RKey())
		})
	}
	for id, mw := range s.mws {
		mw, old := mw, mw.v
		nv := st.mws[id]
		mw.v = nv
		s.rkeys.update(mw.vrkey, nv.RKey())
		st.undo = append(st.undo, func() {
			mw.v = old
			s.rkeys.update(mw.vrkey, old.RKey())
		})
	}
	for id, dm := range s.dms {
		dm, old := dm, dm.v
		dm.v = st.dms[id]
		st.undo = append(st.undo, func() { dm.v = old })
	}
	for _, cq := range s.cqs {
		cq, old := cq, cq.v
		st.srcCQs = append(st.srcCQs, old)
		cq.v = st.cqs[cq.id]
		st.undo = append(st.undo, func() { cq.v = old })
	}
	for id, srq := range s.srqs {
		srq, old := srq, srq.v
		st.srcSRQs = append(st.srcSRQs, old)
		srq.v = st.srqs[id]
		st.undo = append(st.undo, func() { srq.v = old })
	}
	for id, ch := range s.chans() {
		if nv, ok := st.chans[id]; ok {
			ch, old := ch, ch.v
			ch.v = nv
			st.undo = append(st.undo, func() { ch.v = old })
		}
	}
	if st.qpnPairs == nil {
		st.qpnPairs = make(map[uint32]uint32)
	}
	for id, qp := range s.qps {
		qp, old := qp, qp.v
		oldPhys := old.QPN()
		st.srcQPs = append(st.srcQPs, old)
		qp.v = st.qps[id]
		st.qpnPairs[oldPhys] = st.qps[id].QPN()
		// Completions already harvested into fake CQs carry the old
		// physical QPN; the temporary table translates them (§3.4).
		qp.sendCQ.tempQPN[oldPhys] = qp.vqpn
		qp.recvCQ.tempQPN[oldPhys] = qp.vqpn
		st.undo = append(st.undo, func() {
			qp.v = old
			// Drop the fake-CQ translation entries: the old QP is live
			// again and its completions need no remapping.
			delete(qp.sendCQ.tempQPN, oldPhys)
			delete(qp.recvCQ.tempQPN, oldPhys)
		})
	}
	st.bound = true
	return nil
}

// unbind reverses bind after an aborted migration: the session's
// wrappers point back at the source-side objects, the translation
// tables translate to them again, and the source context resumes
// feeding the roadmap. The staged objects themselves are released
// separately by abort.
func (st *Staged) unbind(s *Session) {
	if !st.bound {
		return
	}
	st.bound = false
	st.ctx.SetRecorder(nil)
	st.srcCtx.SetRecorder(s.ind)
	s.ctx = st.srcCtx
	for i := len(st.undo) - 1; i >= 0; i-- {
		st.undo[i]()
	}
	st.undo = nil
	st.srcCtx = nil
	st.srcPDs, st.srcMRs, st.srcCQs, st.srcSRQs, st.srcQPs = nil, nil, nil, nil, nil
	st.qpnPairs = nil
}

// abort tears down a staged restore after a failed migration: every
// staged destination resource is destroyed (in reverse dependency
// order, sorted by object ID for determinism) and the daemon's staging
// slot is cleared. The staged context's recorder is nil except between
// bind and unbind, so these destructions never touch the session's
// roadmap; callers must unbind first when the staging was adopted.
// abort is idempotent.
func (st *Staged) abort() {
	if st.aborted {
		return
	}
	st.aborted = true
	for _, id := range sortedKeys(st.mws) {
		st.mws[id].Dealloc()
	}
	for _, id := range sortedKeys(st.mrs) {
		st.mrs[id].Dereg()
	}
	for _, id := range sortedKeys(st.qps) {
		st.qps[id].Destroy()
	}
	for _, id := range sortedKeys(st.srqs) {
		st.srqs[id].Destroy()
	}
	for _, id := range sortedKeys(st.cqs) {
		st.cqs[id].Destroy()
	}
	for _, id := range sortedKeys(st.dms) {
		st.dms[id].Free()
	}
	for _, id := range sortedKeys(st.pds) {
		st.pds[id].Dealloc()
	}
	st.pds, st.cqs, st.chans, st.srqs = nil, nil, nil, nil
	st.mrs, st.mws, st.dms, st.qps = nil, nil, nil, nil
	st.qpByVQPN, st.qpMeta, st.deferred = nil, nil, nil
	if st.daemon.staging[st.key] == st {
		delete(st.daemon.staging, st.key)
	}
}

// sortedKeys returns a staged category's object IDs in ascending order.
func sortedKeys[V any](m map[verbs.ObjID]V) []verbs.ObjID {
	ids := make([]verbs.ObjID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sortObjIDs(ids)
	return ids
}

// chans enumerates the session's completion-channel wrappers.
func (s *Session) chans() map[verbs.ObjID]*CompChannel { return s.chanMap }
