package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"migrrdma/internal/cluster"
	"migrrdma/internal/metrics"
	"migrrdma/internal/rnic"
	"migrrdma/internal/verbs"
)

// Daemon is the per-host MigrRDMA control endpoint. Conceptually it is
// the driver-resident half of the system: it owns the device-wide
// physical→virtual QPN translation table (shared read-only with every
// session's library, §3.3), tracks the sessions on its host, and serves
// the out-of-band protocol — partner notification (§3.2), suspension
// fan-out and n_sent exchange (§3.4), and rkey/QPN fetches (§3.3).
type Daemon struct {
	host *cluster.Host
	dev  *rnic.Device
	ep   endpointAPI

	qpn      qpnTable
	sessions []*Session
	// byPhys maps a physical QPN to the session owning it (for rkey
	// fetch routing and n_sent delivery).
	byPhys map[uint32]*Session

	// staging holds restores in progress on this host (the migration
	// destination side), keyed by stagingKey — migration ID plus process
	// name — so concurrent restores of identically named processes from
	// different migrations never collide.
	staging map[string]*Staged

	// movedVQPN records virtual QPNs whose owning process migrated away
	// and the node it now lives on, so fetches can be redirected.
	movedVQPN map[uint32]string

	// pendingNSent stashes n_sent announcements addressed to a physical
	// QPN this host does not own yet: under concurrent migrations a
	// peer's announcement can race the local switch-over that installs
	// the QPN, and dropping it would stall the waiting side's
	// wait-before-stop until its timeout. Delivered when mapQPN installs
	// the QPN.
	pendingNSent map[uint32]uint64

	wbs        WBSConfig
	helloCache map[string]bool

	// partnerWBS records partner-side wait-before-stop results on this
	// host keyed by migration ID, so overlapping migrations sharing this
	// partner don't clobber each other's result.
	partnerWBS map[string]WBSResult

	// suspendedFor records, per migration ID, the QP sets this host
	// suspended on that migration's behalf (hSuspendFor), so an abort can
	// resume exactly those and a switch-over can drop the record.
	suspendedFor map[string][]suspendedSet

	// LastPartnerWBS records the most recent partner-side
	// wait-before-stop result on this host (for the Fig. 4 harness).
	LastPartnerWBS WBSResult

	// plugFwd is the destination-side plug state of an in-progress
	// plug-and-forward migration (one at a time per host); fwdMig names
	// the migration this host currently forwards for as the source side.
	// plugTap observes plug-buffer events for the chaos ledger.
	plugFwd *plugFwdState
	fwdMig  string
	plugTap func(event string, seq uint64)

	// pendingResume stashes, per migration ID, the partner QP sets a
	// deferred switch-over re-pointed but left suspended (plug-forward
	// cutover): hResumePartners resumes them once the migrated service
	// is live, so its un-drained receive queues never trigger RNR.
	pendingResume map[string][]suspendedSet
}

// endpointAPI abstracts the oob endpoint (narrowed for tests).
type endpointAPI interface {
	Handle(kind string, h func(fromNode string, body []byte) []byte)
	Call(toNode, kind string, body []byte) ([]byte, bool)
	Send(toNode, kind string, body []byte)
}

// EndpointName is the oob endpoint every MigrRDMA daemon listens on.
const EndpointName = "migrrdma"

// NewDaemon starts the MigrRDMA daemon on a host.
func NewDaemon(h *cluster.Host) *Daemon {
	d := &Daemon{
		host:          h,
		dev:           h.Dev,
		byPhys:        make(map[uint32]*Session),
		staging:       make(map[string]*Staged),
		movedVQPN:     make(map[uint32]string),
		pendingNSent:  make(map[uint32]uint64),
		wbs:           DefaultWBSConfig(),
		partnerWBS:    make(map[string]WBSResult),
		suspendedFor:  make(map[string][]suspendedSet),
		pendingResume: make(map[string][]suspendedSet),
	}
	d.ep = newOOBAdapter(h)
	d.installHandlers()
	if h.Mux != nil {
		// The tunnel endpoint is permanent (a registration, not a
		// metric, so snapshot hashes are unaffected); it only acts while
		// a plug-and-forward migration is in flight.
		h.Mux.Register(PortMigrFwd, d.onTunnelFrame)
	}
	return d
}

// Node returns the daemon's host node name.
func (d *Daemon) Node() string { return d.host.Name }

// registry returns the metrics registry sessions record into: the
// cluster-wide one when the host carries it, otherwise the device's own
// (detached) registry so instrumentation never needs nil checks.
func (d *Daemon) registry() *metrics.Registry {
	if d.host != nil && d.host.Metrics != nil {
		return d.host.Metrics
	}
	return d.dev.Metrics()
}

// Host returns the daemon's host.
func (d *Daemon) Host() *cluster.Host { return d.host }

// SetWBSConfig overrides wait-before-stop tuning.
func (d *Daemon) SetWBSConfig(cfg WBSConfig) { d.wbs = cfg }

// register adds a session to the daemon's registries.
func (d *Daemon) register(s *Session) {
	d.sessions = append(d.sessions, s)
	s.daemon = d
}

// unregister removes a migrated-away session.
func (d *Daemon) unregister(s *Session) {
	for i, e := range d.sessions {
		if e == s {
			d.sessions = append(d.sessions[:i], d.sessions[i+1:]...)
			break
		}
	}
	for phys, owner := range d.byPhys {
		if owner == s {
			delete(d.byPhys, phys)
		}
	}
	// Per-migration stashes may still reference the session (it closed
	// between suspend and switch, or between a deferred switch and
	// resume-partners). A later hAbort/hResumePartners must not replay
	// intercepted work onto its destroyed QPs.
	dropSession(d.suspendedFor, s)
	dropSession(d.pendingResume, s)
}

// dropSession filters one session's QP sets out of a per-migration
// stash, deleting migration entries that become empty.
func dropSession(stash map[string][]suspendedSet, s *Session) {
	for mig, sets := range stash {
		kept := sets[:0]
		for _, set := range sets {
			if set.s != s {
				kept = append(kept, set)
			}
		}
		if len(kept) == 0 {
			delete(stash, mig)
		} else {
			stash[mig] = kept
		}
	}
}

// mapQPN installs a physical→virtual QPN mapping for a session's QP,
// delivering any n_sent announcement that arrived ahead of it.
func (d *Daemon) mapQPN(phys, virt uint32, s *Session) {
	d.qpn.set(phys, virt)
	d.byPhys[phys] = s
	if n, ok := d.pendingNSent[phys]; ok {
		delete(d.pendingNSent, phys)
		s.deliverNSent(phys, n)
	}
}

// unmapQPN removes a physical QPN mapping (old QP fully drained).
func (d *Daemon) unmapQPN(phys uint32) {
	d.qpn.clear(phys)
	delete(d.byPhys, phys)
}

// translateQPN translates a physical QPN on this host's device.
func (d *Daemon) translateQPN(phys uint32) (uint32, bool) { return d.qpn.lookup(phys) }

// --- Wire messages -----------------------------------------------------------

type fetchRKeyReq struct {
	RQPN  uint32
	VRKey uint32
}

type fetchRKeyResp struct {
	Phys uint32
	Err  string
}

type fetchQPNReq struct{ VQPN uint32 }

type fetchQPNResp struct {
	Node  string // node the QP currently lives on
	Phys  uint32
	Moved string // non-empty: retry at this node
	Err   string
}

type nsentMsg struct {
	DstQPN uint32
	NSent  uint64
}

type suspendForReq struct {
	// MigID identifies the migration so the partner's wait-before-stop
	// result is stashed per migration.
	MigID   string
	SrcNode string
	// PartnerQPNs lists this host's physical QPNs connected to the
	// migrating process; only these QPs are suspended. Empty falls back
	// to suspending every QP toward SrcNode — correct only while no
	// other migration involves that node.
	PartnerQPNs []uint32
}

type suspendForResp struct {
	ElapsedNS int64
	TimedOut  bool
}

// notifyPair is one (partner physical QPN, migrated virtual QPN) entry
// of the §3.2 notification message.
type notifyPair struct {
	PartnerQPN uint32
	VQPN       uint32
}

type notifyReq struct {
	MigID    string
	Proc     string
	DestNode string
	Pairs    []notifyPair
}

type connectNewReq struct {
	MigID       string
	Proc        string
	VQPN        uint32
	PartnerNode string
	PartnerQPN  uint32
}

type connectNewResp struct {
	DestQPN uint32
	Err     string
}

type switchReq struct {
	MigID    string
	Proc     string
	SrcNode  string
	DestNode string
}

// abortReq tells a node that a migration failed: destroy the spare QPs
// stashed for it, resume the QPs suspended on its behalf, and clear the
// per-migration stashes (staging slot, partner-WBS result).
type abortReq struct {
	MigID   string
	Proc    string
	SrcNode string
}

// suspendedSet is one session's QPs suspended for a migration.
type suspendedSet struct {
	s   *Session
	qps []*QP
}

func enc(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic("core: encode control message: " + err.Error())
	}
	return buf.Bytes()
}

func dec(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// --- Handlers ----------------------------------------------------------------

func (d *Daemon) installHandlers() {
	d.ep.Handle("hello", func(_ string, _ []byte) []byte { return []byte("ok") })
	d.ep.Handle("fetch-rkey", d.hFetchRKey)
	d.ep.Handle("fetch-qpn", d.hFetchQPN)
	d.ep.Handle("suspend-for", d.hSuspendFor)
	d.ep.Handle("notify-migr", d.hNotify)
	d.ep.Handle("connect-new", d.hConnectNew)
	d.ep.Handle("switch-to", d.hSwitch)
	d.ep.Handle("switch-defer", d.hSwitchDefer)
	d.ep.Handle("resume-partners", d.hResumePartners)
	d.ep.Handle("nsent", d.hNSent)
	d.ep.Handle("abort", d.hAbort)
}

func (d *Daemon) hFetchRKey(_ string, body []byte) []byte {
	var req fetchRKeyReq
	if err := dec(body, &req); err != nil {
		return enc(fetchRKeyResp{Err: err.Error()})
	}
	s, ok := d.byPhys[req.RQPN]
	if !ok {
		return enc(fetchRKeyResp{Err: fmt.Sprintf("no session owns QPN %#x", req.RQPN)})
	}
	phys, ok := s.rkeys.lookup(req.VRKey)
	if !ok {
		return enc(fetchRKeyResp{Err: fmt.Sprintf("unknown virtual rkey %#x", req.VRKey)})
	}
	return enc(fetchRKeyResp{Phys: phys})
}

func (d *Daemon) hFetchQPN(_ string, body []byte) []byte {
	var req fetchQPNReq
	if err := dec(body, &req); err != nil {
		return enc(fetchQPNResp{Err: err.Error()})
	}
	// Find the session QP whose *virtual* QPN matches.
	for _, s := range d.sessions {
		if qp, ok := s.byVQPN[req.VQPN]; ok {
			return enc(fetchQPNResp{Node: d.Node(), Phys: qp.v.QPN()})
		}
	}
	if node, ok := d.movedVQPN[req.VQPN]; ok {
		return enc(fetchQPNResp{Moved: node})
	}
	return enc(fetchQPNResp{Err: fmt.Sprintf("unknown virtual QPN %#x", req.VQPN)})
}

func (d *Daemon) hNSent(_ string, body []byte) []byte {
	var m nsentMsg
	if err := dec(body, &m); err != nil {
		return nil
	}
	d.deliverOrStashNSent(m.DstQPN, m.NSent)
	return nil
}

// deliverOrStashNSent routes a peer's n_sent to the owning session, or
// stashes it until the physical QPN is mapped (it may belong to a spare
// QP whose switch-over has not happened yet).
func (d *Daemon) deliverOrStashNSent(phys uint32, nSent uint64) {
	if s, ok := d.byPhys[phys]; ok {
		s.deliverNSent(phys, nSent)
		return
	}
	d.pendingNSent[phys] = nSent
}

// hSuspendFor runs the partner side of stop-and-copy: suspend the QPs
// serving the migrating process (the request lists their physical QPNs)
// and conduct wait-before-stop, blocking the caller until it
// terminates. Several of these can run concurrently on one host — one
// per in-flight migration this host partners — each draining only its
// own migration's QPs.
func (d *Daemon) hSuspendFor(_ string, body []byte) []byte {
	var req suspendForReq
	if err := dec(body, &req); err != nil {
		return enc(suspendForResp{})
	}
	var worst WBSResult
	for _, s := range d.sessions {
		var qps []*QP
		if len(req.PartnerQPNs) > 0 {
			qps = s.SuspendByPhys(req.PartnerQPNs)
		} else {
			qps = s.SuspendPeer(req.SrcNode)
		}
		if len(qps) == 0 {
			continue
		}
		d.suspendedFor[req.MigID] = append(d.suspendedFor[req.MigID], suspendedSet{s: s, qps: qps})
		res := s.WaitBeforeStop(qps, d.wbs)
		if res.Elapsed > worst.Elapsed {
			worst = res
		}
	}
	d.partnerWBS[req.MigID] = worst
	d.LastPartnerWBS = worst
	return enc(suspendForResp{ElapsedNS: int64(worst.Elapsed), TimedOut: worst.TimedOut})
}

// PartnerWBSResult reports the partner-side wait-before-stop result
// this host recorded for the given migration ID.
func (d *Daemon) PartnerWBSResult(migID string) (WBSResult, bool) {
	r, ok := d.partnerWBS[migID]
	return r, ok
}

// hNotify implements the partner pre-setup of §3.2: for each listed
// local QP, create a spare QP sharing the same CQ/PD/SRQ, connect it to
// the migration destination, and stash it for the later switch-over.
func (d *Daemon) hNotify(_ string, body []byte) []byte {
	var req notifyReq
	if err := dec(body, &req); err != nil {
		return []byte(err.Error())
	}
	for _, pair := range req.Pairs {
		s, ok := d.byPhys[pair.PartnerQPN]
		if !ok {
			continue
		}
		qp := s.qpByPhys(pair.PartnerQPN)
		if qp == nil {
			continue
		}
		// The old and new QP share the same CQ so completion routing
		// stays transparent; PD and SRQ are likewise reused (§3.2).
		nv := s.ctx.CreateQP(qp.pd.v, qp.typ, qp.sendCQ.v, qp.recvCQ.v, srqV(qp.srq), qp.caps)
		if err := nv.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
			return []byte(err.Error())
		}
		resp, ok := d.call(req.DestNode, "connect-new", enc(connectNewReq{
			MigID: req.MigID, Proc: req.Proc, VQPN: pair.VQPN,
			PartnerNode: d.Node(), PartnerQPN: nv.QPN(),
		}))
		if !ok {
			return []byte("connect-new: no response from " + req.DestNode)
		}
		var cr connectNewResp
		if err := dec(resp, &cr); err != nil || cr.Err != "" {
			return []byte("connect-new: " + cr.Err)
		}
		if err := nv.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: req.DestNode, RemoteQPN: cr.DestQPN}); err != nil {
			return []byte(err.Error())
		}
		if err := nv.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
			return []byte(err.Error())
		}
		qp.pendingNew = nv
		qp.pendingNewMig = req.MigID
	}
	return nil
}

// hConnectNew runs on the migration destination: the partner asks the
// staged QP for vqpn to connect to its fresh QP.
func (d *Daemon) hConnectNew(_ string, body []byte) []byte {
	var req connectNewReq
	if err := dec(body, &req); err != nil {
		return enc(connectNewResp{Err: err.Error()})
	}
	st, ok := d.staging[stagingKey(req.MigID, req.Proc)]
	if !ok {
		// A restore staged without a migration ID is keyed by process
		// name alone.
		st, ok = d.staging[req.Proc]
	}
	if !ok {
		return enc(connectNewResp{Err: "no staged restore for " + req.Proc})
	}
	nv, ok := st.qpByVQPN[req.VQPN]
	if !ok {
		keys := make([]uint32, 0, len(st.qpByVQPN))
		for k := range st.qpByVQPN {
			keys = append(keys, k)
		}
		return enc(connectNewResp{Err: fmt.Sprintf("no staged QP for vqpn %#x (have %#x, metas %d, qps %d)", req.VQPN, keys, len(st.qpMeta), len(st.qps))})
	}
	if err := nv.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: req.PartnerNode, RemoteQPN: req.PartnerQPN}); err != nil {
		return enc(connectNewResp{Err: err.Error()})
	}
	if err := nv.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
		return enc(connectNewResp{Err: err.Error()})
	}
	return enc(connectNewResp{DestQPN: nv.QPN()})
}

// hSwitch runs on partners after the destination restore completed:
// activate the spare QPs (map the virtual QPN to the new QP, §3.2),
// invalidate remote caches pointing at the source, replay pending
// receives and post intercepted WRs. Only spares stashed for this
// request's migration ID switch: a host partnering several concurrent
// migrations holds one pendingNew set per migration, and activating
// another migration's spares here would connect QPs whose destination
// has not finished restoring.
func (d *Daemon) hSwitch(_ string, body []byte) []byte {
	return d.switchTo(body, false)
}

// hSwitchDefer is hSwitch for the plug-forward cutover: the spare QPs
// are activated and remote caches invalidated, but the QPs stay
// suspended (and the old QPs alive) until hResumePartners — the
// migrated service thaws first, so the resumed partners never race its
// empty receive queues.
func (d *Daemon) hSwitchDefer(_ string, body []byte) []byte {
	return d.switchTo(body, true)
}

func (d *Daemon) switchTo(body []byte, deferResume bool) []byte {
	var req switchReq
	if err := dec(body, &req); err != nil {
		return []byte(err.Error())
	}
	for _, s := range d.sessions {
		var resumed []*QP
		for _, qp := range s.sortedQPs() {
			if qp.pendingNew == nil || qp.pendingNewMig != req.MigID {
				continue
			}
			old := qp.v
			qp.oldV = old
			qp.v = qp.pendingNew
			qp.pendingNew = nil
			qp.pendingNewMig = ""
			// The wrapper now stands for the spare QP: re-key it to the
			// spare's roadmap record so a later migration of this
			// process replays the QP that actually exists (the old QP's
			// creation record disappears when it is destroyed below).
			delete(s.qps, qp.id)
			qp.id = qp.v.ID
			s.qps[qp.id] = qp
			// Old physical → virtual stays mapped until the old QP's
			// completions drain; new physical maps to the same virtual.
			d.mapQPN(qp.v.QPN(), qp.vqpn, s)
			resumed = append(resumed, qp)
		}
		if len(resumed) == 0 {
			continue
		}
		s.InvalidateRemoteCaches(req.SrcNode)
		if deferResume {
			d.pendingResume[req.MigID] = append(d.pendingResume[req.MigID],
				suspendedSet{s: s, qps: resumed})
			continue
		}
		if err := s.Resume(resumed); err != nil {
			return []byte(err.Error())
		}
		// Wait-before-stop guaranteed the old QPs are drained; retire
		// them now (§3.4 "old QPs ... are destroyed").
		d.retireOldQPs(resumed)
	}
	if !deferResume {
		// The migration committed; the suspension record is spent.
		delete(d.suspendedFor, req.MigID)
	}
	return nil
}

// retireOldQPs destroys the pre-switch incarnation of re-pointed QPs.
func (d *Daemon) retireOldQPs(qps []*QP) {
	for _, qp := range qps {
		if qp.oldV != nil {
			oldPhys := qp.oldV.QPN()
			qp.oldV.Destroy()
			d.unmapQPN(oldPhys)
			qp.oldV = nil
		}
	}
}

// hResumePartners completes a deferred switch-over: resume the
// re-pointed QPs (replaying their intercepted work against the now-live
// migrated service) and retire the old incarnations.
func (d *Daemon) hResumePartners(_ string, body []byte) []byte {
	var req switchReq
	if err := dec(body, &req); err != nil {
		return []byte(err.Error())
	}
	sets := d.pendingResume[req.MigID]
	delete(d.pendingResume, req.MigID)
	for _, set := range sets {
		if err := set.s.Resume(set.qps); err != nil {
			return []byte(err.Error())
		}
		d.retireOldQPs(set.qps)
	}
	delete(d.suspendedFor, req.MigID)
	return nil
}

// hAbort rolls back this node's participation in a failed migration:
// spare QPs pre-established for it are destroyed, QPs suspended on its
// behalf resume (replaying intercepted work), and the per-migration
// stashes — staged restore slot, partner-WBS result, pending-switch
// markers — are cleared. Every step is keyed by the migration ID, so
// other in-flight migrations sharing this node are untouched.
func (d *Daemon) hAbort(_ string, body []byte) []byte {
	var req abortReq
	if err := dec(body, &req); err != nil {
		return []byte(err.Error())
	}
	// Drop the pending-switch markers: the spares connect to a
	// destination that is being torn down.
	for _, s := range d.sessions {
		for _, qp := range s.sortedQPs() {
			if qp.pendingNew == nil || qp.pendingNewMig != req.MigID {
				continue
			}
			spare := qp.pendingNew
			qp.pendingNew = nil
			qp.pendingNewMig = ""
			delete(d.pendingNSent, spare.QPN())
			spare.Destroy()
		}
	}
	// Un-suspend the QPs this host parked for the migration's
	// stop-and-copy. Resume replays their intercepted posts and pending
	// receives on the original (still connected) QPs.
	for _, set := range d.suspendedFor[req.MigID] {
		var still []*QP
		for _, qp := range set.qps {
			if qp.suspended {
				still = append(still, qp)
			}
		}
		if len(still) == 0 {
			continue
		}
		if err := set.s.Resume(still); err != nil {
			return []byte(err.Error())
		}
	}
	delete(d.suspendedFor, req.MigID)
	delete(d.partnerWBS, req.MigID)
	// A deferred switch-over that never reached resume-partners leaves
	// its re-pointed-but-suspended sets stashed; the abort owns them now.
	delete(d.pendingResume, req.MigID)
	// If this node also stages the migration's restore (it may be the
	// destination of the aborted migration and a partner of the same
	// process), discard the slot.
	if st, ok := d.staging[stagingKey(req.MigID, req.Proc)]; ok {
		st.abort()
	}
	return nil
}

// StagedRestores reports how many restores are currently staged on this
// host. The chaos harness asserts it returns to zero after an abort.
func (d *Daemon) StagedRestores() int { return len(d.staging) }

// PendingSpares counts partner-side spare QPs stashed on this host for
// the given migration ID; an empty ID counts every migration's spares.
func (d *Daemon) PendingSpares(migID string) int {
	n := 0
	for _, s := range d.sessions {
		for _, qp := range s.qps {
			if qp.pendingNew != nil && (migID == "" || qp.pendingNewMig == migID) {
				n++
			}
		}
	}
	return n
}

// SuspendedQPs counts QPs currently suspended across this host's
// sessions. After a completed or aborted migration it must be zero.
func (d *Daemon) SuspendedQPs() int {
	n := 0
	for _, s := range d.sessions {
		for _, qp := range s.qps {
			if qp.suspended {
				n++
			}
		}
	}
	return n
}

// sortedQPs returns the session's QPs in virtual-QPN order for
// deterministic iteration.
func (s *Session) sortedQPs() []*QP {
	out := make([]*QP, 0, len(s.qps))
	for _, qp := range s.qps {
		out = append(out, qp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].vqpn < out[j].vqpn })
	return out
}

// qpByPhys finds the session QP with the given physical QPN.
func (s *Session) qpByPhys(phys uint32) *QP {
	for _, qp := range s.qps {
		if qp.v.QPN() == phys {
			return qp
		}
	}
	return nil
}

func srqV(srq *SRQ) *verbs.SRQ {
	if srq == nil {
		return nil
	}
	return srq.v
}

// --- Client helpers ------------------------------------------------------------

// call issues a blocking control RPC to another node's daemon.
func (d *Daemon) call(node, kind string, body []byte) ([]byte, bool) {
	return d.ep.Call(node, kind, body)
}

// fetchRKey asks the node owning physical QPN rqpn to translate vrkey.
func (d *Daemon) fetchRKey(node string, rqpn, vrkey uint32) (uint32, error) {
	if node == d.Node() {
		// Loopback: the peer process is on the same host.
		if s, ok := d.byPhys[rqpn]; ok {
			if phys, ok := s.rkeys.lookup(vrkey); ok {
				return phys, nil
			}
		}
		return 0, fmt.Errorf("core: local rkey fetch failed for %#x", vrkey)
	}
	resp, ok := d.call(node, "fetch-rkey", enc(fetchRKeyReq{RQPN: rqpn, VRKey: vrkey}))
	if !ok {
		return 0, fmt.Errorf("core: rkey fetch: %s unreachable", node)
	}
	var r fetchRKeyResp
	if err := dec(resp, &r); err != nil {
		return 0, err
	}
	if r.Err != "" {
		return 0, fmt.Errorf("core: rkey fetch: %s", r.Err)
	}
	return r.Phys, nil
}

// fetchQPN resolves a (node, virtual QPN) to its current node and
// physical QPN, following at most one relocation redirect.
func (d *Daemon) fetchQPN(node string, vqpn uint32) (string, uint32, error) {
	for hops := 0; hops < 3; hops++ {
		resp, ok := d.call(node, "fetch-qpn", enc(fetchQPNReq{VQPN: vqpn}))
		if !ok {
			return "", 0, fmt.Errorf("core: qpn fetch: %s unreachable", node)
		}
		var r fetchQPNResp
		if err := dec(resp, &r); err != nil {
			return "", 0, err
		}
		if r.Moved != "" {
			node = r.Moved
			continue
		}
		if r.Err != "" {
			return "", 0, fmt.Errorf("core: qpn fetch: %s", r.Err)
		}
		return r.Node, r.Phys, nil
	}
	return "", 0, fmt.Errorf("core: qpn fetch: too many redirects")
}

// sendNSent delivers this side's n_sent to the peer QP (§3.4).
func (d *Daemon) sendNSent(node string, dstQPN uint32, nSent uint64) {
	if node == d.Node() {
		d.deliverOrStashNSent(dstQPN, nSent)
		return
	}
	d.ep.Send(node, "nsent", enc(nsentMsg{DstQPN: dstQPN, NSent: nSent}))
}

// stagingKey keys an in-progress restore: migration ID plus process
// name when an ID is known, the bare process name otherwise.
func stagingKey(migID, proc string) string {
	if migID != "" {
		return migID + "/" + proc
	}
	return proc
}

// Hello probes whether node runs a MigrRDMA daemon (§6 negotiation).
func (d *Daemon) Hello(node string) bool {
	if node == d.Node() {
		return true
	}
	_, ok := d.call(node, "hello", nil)
	return ok
}

// PeerSupports reports (with caching) whether node runs MigrRDMA.
func (d *Daemon) PeerSupports(node string) bool {
	if v, ok := d.helloCache[node]; ok {
		return v
	}
	v := d.Hello(node)
	if d.helloCache == nil {
		d.helloCache = make(map[string]bool)
	}
	d.helloCache[node] = v
	return v
}
