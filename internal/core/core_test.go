package core

import (
	"testing"
	"testing/quick"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/task"

	"migrrdma/internal/rnic"
	"migrrdma/internal/verbs"
)

func TestQPNTableBasics(t *testing.T) {
	var tbl qpnTable
	tbl.set(0x1234, 0x9999)
	if v, ok := tbl.lookup(0x1234); !ok || v != 0x9999 {
		t.Fatalf("lookup = %#x,%v", v, ok)
	}
	if _, ok := tbl.lookup(0x1235); ok {
		t.Fatal("lookup of unmapped QPN succeeded")
	}
	// Entries can be rebound (partner maps a new physical to the same
	// virtual) and cleared.
	tbl.set(0x1234, 0x8888)
	if v, _ := tbl.lookup(0x1234); v != 0x8888 {
		t.Fatalf("rebind lookup = %#x", v)
	}
	tbl.clear(0x1234)
	if _, ok := tbl.lookup(0x1234); ok {
		t.Fatal("cleared entry still resolves")
	}
}

func TestQPNTableFullRange(t *testing.T) {
	var tbl qpnTable
	// Virtual QPN 0 is a legal value and must be distinguishable from
	// "unmapped".
	tbl.set(0xFFFFFF, 0)
	if v, ok := tbl.lookup(0xFFFFFF); !ok || v != 0 {
		t.Fatalf("max QPN with virtual 0: %#x,%v", v, ok)
	}
	if _, ok := tbl.lookup(0xFFFFFE); ok {
		t.Fatal("neighbour entry leaked")
	}
}

func TestQPNTablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 25-bit QPN")
		}
	}()
	var tbl qpnTable
	tbl.set(1<<24, 1)
}

func TestKeyTableDenseAssignment(t *testing.T) {
	var kt keyTable
	// §3.3: virtual keys are assigned one by one.
	for i := 0; i < 100; i++ {
		v := kt.assign(uint32(i * 7))
		if v != uint32(i)+keyBase {
			t.Fatalf("assign %d returned %d, want dense %d", i, v, i+keyBase)
		}
	}
	for i := 0; i < 100; i++ {
		phys, ok := kt.lookup(uint32(i) + keyBase)
		if !ok || phys != uint32(i*7) {
			t.Fatalf("lookup %d = %d,%v", i, phys, ok)
		}
	}
	if _, ok := kt.lookup(0); ok {
		t.Fatal("virtual key 0 must be invalid")
	}
	if _, ok := kt.lookup(101); ok {
		t.Fatal("unassigned key resolved")
	}
	kt.update(keyBase, 0xAAAA)
	if phys, _ := kt.lookup(keyBase); phys != 0xAAAA {
		t.Fatal("update did not rebind")
	}
}

func TestPropKeyTableRoundTrip(t *testing.T) {
	f := func(phys []uint32) bool {
		var kt keyTable
		for i, p := range phys {
			if kt.assign(p) != uint32(i)+keyBase {
				return false
			}
		}
		for i, p := range phys {
			got, ok := kt.lookup(uint32(i) + keyBase)
			if !ok || got != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndirectionRoadmap(t *testing.T) {
	ind := NewIndirection()
	ind.Record(verbs.Event{Kind: verbs.EvAllocPD, ID: 1})
	ind.Record(verbs.Event{Kind: verbs.EvCreateCQ, ID: 2, CQCap: 64})
	ind.Record(verbs.Event{Kind: verbs.EvCreateQP, ID: 3, PD: 1, SendCQ: 2, RecvCQ: 2})
	ind.Record(verbs.Event{Kind: verbs.EvModifyQP, ID: 3, Attr: rnic.ModifyAttr{State: rnic.StateInit}})
	live := ind.live()
	if len(live) != 3 {
		t.Fatalf("live = %d records, want 3", len(live))
	}
	if len(live[2].Modifies) != 1 {
		t.Fatalf("QP record has %d modifies, want 1", len(live[2].Modifies))
	}
	// §3.2: destroying a resource deletes its creation record.
	ind.Record(verbs.Event{Kind: verbs.EvDestroyQP, ID: 3})
	live = ind.live()
	if len(live) != 2 {
		t.Fatalf("after destroy: %d records, want 2", len(live))
	}
	for _, r := range live {
		if r.Ev.ID == 3 {
			t.Fatal("destroyed record still in roadmap")
		}
	}
}

func TestBlobRoundTrip(t *testing.T) {
	b := &Blob{
		Proc: "p1",
		Records: []RecordDTO{
			{Ev: verbs.Event{Kind: verbs.EvCreateQP, ID: 9, QPType: rnic.RC, Caps: rnic.QPCaps{MaxSend: 32}}},
		},
		Destroyed: []verbs.ObjID{4, 5},
		QPs:       []QPMeta{{ID: 9, VQPN: 0x123, State: rnic.StateRTS, RemoteNode: "x", RemoteQPN: 7, NSent: 42}},
		MRs:       []MRMeta{{ID: 2, VLKey: 1, VRKey: 1}},
	}
	data, err := encodeBlob(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "p1" || len(got.Records) != 1 || len(got.Destroyed) != 2 ||
		got.QPs[0].VQPN != 0x123 || got.QPs[0].NSent != 42 || got.MRs[0].VLKey != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTranslationProbePaths(t *testing.T) {
	p := NewTranslationProbe()
	// Each path must run repeatedly without touching the scheduler.
	for i := 0; i < 1000; i++ {
		p.TranslateSend()
		p.TranslateWrite()
		p.TranslateRead()
		p.TranslateRecv()
		p.TranslateCQE()
		p.CopySendBaseline()
		p.CopyRecvBaseline()
		p.CopyCQEBaseline()
	}
	// The write path must have resolved the rkey from the warm cache,
	// not refetched it.
	if p.sess.RKeyFetches != 1 {
		t.Fatalf("RKeyFetches = %d, want 1 (cache must absorb the rest)", p.sess.RKeyFetches)
	}
}

func TestSessionClose(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 6}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "p")
		s := NewSession(p, d)
		p.AS.Map(0x100000, 1<<16, "buf")
		pd := s.AllocPD()
		cq := s.CreateCQ(64, nil)
		mr, err := s.RegMR(pd, 0x100000, 1<<16, rnic.AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := s.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		phys := qp.v.QPN()
		_ = mr
		if len(s.ind.live()) == 0 {
			t.Error("roadmap empty before close")
		}
		s.Close()
		if len(s.ind.live()) != 0 {
			t.Errorf("roadmap still holds %d records after close", len(s.ind.live()))
		}
		if _, ok := d.translateQPN(phys); ok {
			t.Error("QPN mapping survived close")
		}
		for _, reg := range d.sessions {
			if reg == s {
				t.Error("session still registered")
			}
		}
	})
	cl.Sched.RunFor(time.Second)
}
