package core

import (
	"time"

	"migrrdma/internal/verbs"
)

// Checkpoint cost model: walking the indirection layer's records and
// serializing them through the driver interface is cheap but not free;
// DumpRDMA grows with the number of resources (Fig. 3).
const (
	dumpBaseCost      = 150 * time.Microsecond
	dumpPerRecordCost = 1500 * time.Nanosecond
)

// Checkpoint snapshots the indirection layer's state for transfer. With
// final=false it is the pre-copy pre-dump (Fig. 2b ①'): the complete
// roadmap, remembered so the final dump can ship only the difference.
// With final=true it is the stop-and-copy dump (⑤'): records created
// since the pre-dump, identifiers destroyed since, and refreshed per-QP
// virtualization metadata.
func (s *Session) Checkpoint(final bool) *Blob {
	b := &Blob{Proc: s.Proc.Name, Final: final}
	live := s.ind.live()
	if !final {
		s.ind.predumped = make(map[verbs.ObjID]bool, len(live))
		for _, r := range live {
			s.ind.predumped[r.Ev.ID] = true
			b.Records = append(b.Records, RecordDTO{Ev: r.Ev, Modifies: r.Modifies})
		}
	} else {
		seen := make(map[verbs.ObjID]bool, len(live))
		for _, r := range live {
			seen[r.Ev.ID] = true
			if !s.ind.predumped[r.Ev.ID] {
				b.Records = append(b.Records, RecordDTO{Ev: r.Ev, Modifies: r.Modifies})
			}
		}
		for id := range s.ind.predumped {
			if !seen[id] {
				b.Destroyed = append(b.Destroyed, id)
			}
		}
		sortObjIDs(b.Destroyed)
	}
	for _, qp := range s.sortedQPs() {
		nSent, nRecv := qp.v.Counters()
		b.QPs = append(b.QPs, QPMeta{
			ID:         qp.id,
			VQPN:       qp.vqpn,
			Type:       qp.typ,
			State:      qp.v.State(),
			RemoteNode: qp.v.RemoteNode(),
			RemoteQPN:  qp.v.RemoteQPN(),
			NSent:      nSent,
			NRecvDone:  nRecv,
		})
	}
	for _, mr := range s.mrs {
		b.MRs = append(b.MRs, MRMeta{ID: mr.id, VLKey: mr.vlkey, VRKey: mr.vrkey})
	}
	sortMRMetas(b.MRs)
	s.Sched().Sleep(dumpBaseCost + time.Duration(len(b.Records)+len(b.QPs))*dumpPerRecordCost)
	return b
}

func sortObjIDs(ids []verbs.ObjID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

func sortMRMetas(ms []MRMeta) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1].ID > ms[j].ID; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}
