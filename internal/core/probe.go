package core

import (
	"migrrdma/internal/cluster"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// TranslationProbe exposes the guest library's data-path interposition
// for direct CPU-cost measurement (Table 4). The paper samples the CPU
// cycles each verb invocation spends with and without virtualization;
// the probe isolates exactly the instructions MigrRDMA adds — the
// dense-array lkey translation, the rkey cache hit, and the QPN
// translation on the completion path — so a Go benchmark can measure
// their real cost.
type TranslationProbe struct {
	sess     *Session
	ringAddr mem.Addr
	wqeSeq   int

	qp      *QP
	sendWR  rnic.SendWR
	writeWR rnic.SendWR
	readWR  rnic.SendWR
	recvWR  rnic.RecvWR
	cqe     rnic.CQE
	cq      *CQ
}

// NewTranslationProbe builds a two-host rig with one connected RC QP
// and a registered MR, then captures the session internals needed to
// run the translation paths outside the simulation (they are pure once
// the rkey cache is warm).
func NewTranslationProbe() *TranslationProbe {
	cl := cluster.New(cluster.Config{Seed: 5}, "a", "b")
	da, db := NewDaemon(cl.Host("a")), NewDaemon(cl.Host("b"))
	pr := &TranslationProbe{}
	cl.Sched.Go("probe-setup", func() {
		// Peer side: a session owning the remote MR.
		pb := newProc(cl, "probe-peer")
		sb := NewSession(pb, db)
		pdB := sb.AllocPD()
		cqB := sb.CreateCQ(64, nil)
		qpB := sb.CreateQP(pdB, QPConfig{Type: rnic.RC, SendCQ: cqB, RecvCQ: cqB})
		pb.AS.Map(0x100000, 1<<20, "buf")
		mrB, err := sb.RegMR(pdB, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite|rnic.AccessRemoteRead)
		if err != nil {
			panic(err)
		}

		pa := newProc(cl, "probe")
		sa := NewSession(pa, da)
		pd := sa.AllocPD()
		cq := sa.CreateCQ(64, nil)
		qp := sa.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		pa.AS.Map(0x100000, 1<<20, "buf")
		mr, err := sa.RegMR(pd, 0x100000, 1<<20, rnic.AccessLocalWrite)
		if err != nil {
			panic(err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
			panic(err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "b", RemoteQPN: qpB.VQPN()}); err != nil {
			panic(err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
			panic(err)
		}
		// Warm the rkey cache with one resolve.
		if _, err := sa.resolveRKey(qp, mrB.RKey()); err != nil {
			panic(err)
		}
		pr.sess, pr.qp, pr.cq = sa, qp, cq
		pr.sendWR = rnic.SendWR{WRID: 1, Opcode: rnic.OpSend, Signaled: true,
			SGEs: []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}}}
		pr.writeWR = rnic.SendWR{WRID: 1, Opcode: rnic.OpWrite, Signaled: true,
			SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}},
			RemoteAddr: 0x100000, RKey: mrB.RKey()}
		pr.readWR = rnic.SendWR{WRID: 1, Opcode: rnic.OpRead, Signaled: true,
			SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}},
			RemoteAddr: 0x100000, RKey: mrB.RKey()}
		pr.recvWR = rnic.RecvWR{WRID: 2, SGEs: []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}}}
		pr.cqe = rnic.CQE{WRID: 1, Opcode: rnic.OpRecv, QPN: qp.v.QPN(), ByteLen: 64}
		ring, err := pa.AS.MapAnywhere(0x7e00_0000_0000, 4096, "probe-ring")
		if err != nil {
			panic(err)
		}
		pr.ringAddr = ring.Start
	})
	cl.Sched.Run()
	return pr
}

// newProc makes a bare process on the cluster's scheduler.
func newProc(cl *cluster.Cluster, name string) *task.Process {
	return task.New(cl.Sched, name)
}

// TranslateSend runs the virtual→physical work-request translation
// (lkey array lookup plus, for one-sided ops, the rkey cache hit).
func (p *TranslationProbe) TranslateSend() {
	wr := p.sendWR
	if err := p.sess.translateSend(p.qp, &wr); err != nil {
		panic(err)
	}
}

// TranslateWrite translates a one-sided WRITE (adds the rkey path).
func (p *TranslationProbe) TranslateWrite() {
	wr := p.writeWR
	if err := p.sess.translateSend(p.qp, &wr); err != nil {
		panic(err)
	}
}

// TranslateRead translates a READ.
func (p *TranslationProbe) TranslateRead() {
	wr := p.readWR
	if err := p.sess.translateSend(p.qp, &wr); err != nil {
		panic(err)
	}
}

// TranslateRecv translates a receive work request.
func (p *TranslationProbe) TranslateRecv() {
	wr := p.recvWR
	if err := p.sess.translateRecv(&wr); err != nil {
		panic(err)
	}
}

// TranslateCQE runs the physical→virtual QPN translation on the
// completion path.
func (p *TranslationProbe) TranslateCQE() {
	e := p.cqe
	p.sess.translateCQE(p.cq, &e)
	sinkCQE = e
}

// CopySendBaseline performs only the WQE-copy work translateSend shares
// with a plain (non-virtualized) library post path, with no table
// lookups. Subtracting it from the translate measurements isolates the
// instructions MigrRDMA adds.
func (p *TranslationProbe) CopySendBaseline() {
	wr := p.writeWR
	sinkWR = wr
}

// CopyRecvBaseline is the receive-path equivalent.
func (p *TranslationProbe) CopyRecvBaseline() {
	wr := p.recvWR
	sinkRecv = wr
}

// CopyCQEBaseline copies a CQE without translation.
func (p *TranslationProbe) CopyCQEBaseline() {
	sinkCQE = p.cqe
}

// WQEWriteBaseline performs the library's WQE ring write — work every
// post path (virtualized or not) performs. Together with the copy
// baselines it forms the Go-native "without virtualization" cost that
// Table 4 normalizes against.
func (p *TranslationProbe) WQEWriteBaseline() {
	var slot [64]byte
	slot[0] = byte(p.wqeSeq)
	_ = p.sess.Proc.AS.Write(p.ringAddr, slot[:])
	p.wqeSeq++
}

// sinks defeat dead-code elimination in benchmarks.
var (
	sinkWR   rnic.SendWR
	sinkRecv rnic.RecvWR
	sinkCQE  rnic.CQE
)
