// Package core implements MigrRDMA: the software indirection layer that
// makes RDMA live-migratable on commodity RNICs.
//
// The package is organised the way the paper's prototype is (§3, §4):
//
//   - Indirection layer (indirection.go) — driver-side bookkeeping of the
//     minimal state needed to rebuild RDMA communications ("roadmap" of
//     control-path calls), plus the translation tables it shares with
//     the library.
//   - Guest library (session.go, qp.go, cq.go, wbs.go) — the MigrRDMA
//     Lib loaded into each application: data-path key/QPN translation,
//     WR interception during suspension, fake CQs, wait-before-stop.
//   - Host library + plugin (plugin.go, restore.go) — the restore APIs
//     of Table 3 and the CRIU plugin gluing them into the container
//     live-migration workflow of Fig. 2(b).
//   - Daemon (daemon.go) — the per-host control endpoint: partner
//     notification, suspension fan-out, rkey/QPN fetch service.
package core

import "fmt"

// qpnTable is the physical→virtual QP number translation table of §3.3.
//
// The paper sizes it as a flat array of 2^24 entries indexed by the
// physical QPN, shared read-only with every process's library. A 64 MiB
// array per device is wasteful in a simulation that hosts many devices
// in one test binary, so the table is two-level with 4096-entry leaves —
// lookups remain O(1) with one extra indirection and the dense-array
// semantics are unchanged.
type qpnTable struct {
	leaves [qpnLeaves][]uint32
}

const (
	qpnSpace   = 1 << 24
	qpnLeafSz  = 1 << 12
	qpnLeaves  = qpnSpace / qpnLeafSz
	qpnInvalid = ^uint32(0)
)

// set maps physical QPN p to virtual QPN v.
func (t *qpnTable) set(p, v uint32) {
	if p >= qpnSpace {
		panic(fmt.Sprintf("core: physical QPN %#x out of 24-bit range", p))
	}
	leaf := t.leaves[p/qpnLeafSz]
	if leaf == nil {
		leaf = make([]uint32, qpnLeafSz)
		for i := range leaf {
			leaf[i] = qpnInvalid
		}
		t.leaves[p/qpnLeafSz] = leaf
	}
	leaf[p%qpnLeafSz] = v
}

// lookup translates physical QPN p; ok is false for unmapped entries.
func (t *qpnTable) lookup(p uint32) (uint32, bool) {
	if p >= qpnSpace {
		return 0, false
	}
	leaf := t.leaves[p/qpnLeafSz]
	if leaf == nil {
		return 0, false
	}
	v := leaf[p%qpnLeafSz]
	return v, v != qpnInvalid
}

// clear removes the mapping for physical QPN p.
func (t *qpnTable) clear(p uint32) {
	if leaf := t.leaves[p/qpnLeafSz]; leaf != nil {
		leaf[p%qpnLeafSz] = qpnInvalid
	}
}

// keyTable is the per-process dense virtual-key table of §3.3: virtual
// lkeys/rkeys are assigned one by one, so the virtual value is a direct
// array index and translation is a single bounds-checked load. The paper
// contrasts this with LubeRDMA's linked list (§6); the ablation
// benchmarks compare both.
type keyTable struct {
	phys []uint32 // index = virtual key - keyBase
}

// keyBase offsets virtual keys so that zero (an uninitialized key) is
// never valid.
const keyBase = 1

// assign appends a physical key and returns its dense virtual key.
func (t *keyTable) assign(phys uint32) uint32 {
	t.phys = append(t.phys, phys)
	return uint32(len(t.phys)-1) + keyBase
}

// lookup translates a virtual key to its physical value.
func (t *keyTable) lookup(virt uint32) (uint32, bool) {
	i := virt - keyBase
	if i >= uint32(len(t.phys)) {
		return 0, false
	}
	return t.phys[i], true
}

// update rebinds an existing virtual key to a new physical value (after
// the resource is recreated on the migration destination).
func (t *keyTable) update(virt, phys uint32) {
	i := virt - keyBase
	if i >= uint32(len(t.phys)) {
		panic("core: update of unassigned virtual key")
	}
	t.phys[i] = phys
}

// len reports the number of assigned keys.
func (t *keyTable) len() int { return len(t.phys) }
