package core

import (
	"fmt"

	"migrrdma/internal/fabric"
	"migrrdma/internal/metrics"
	"migrrdma/internal/rnic"
)

// This file implements the plug-and-forward cutover (ROADMAP item 2,
// the Katamaran sch_plug + tunnel shape): instead of letting blackout
// traffic bounce off half-dead QPs and recover by go-back-N, the
// destination installs a plug buffer for the migrating QPs before
// switch-partners, the source installs a forwarding rule that tunnels
// frames for the suspended QPs to that plug, and at RESUME the plug is
// flushed in arrival order ahead of live traffic.

// PortMigrFwd is the fabric mux port carrying tunneled (encapsulated)
// RDMA frames from the migration source to the destination's plug.
const PortMigrFwd = "migrfwd"

// tunnelOverhead models the encapsulation framing (outer Ethernet/IP/
// UDP header) added to a forwarded frame on the wire.
const tunnelOverhead = 20

// plugFwdState is the destination daemon's per-migration plug state.
// One plug-mode migration per destination host at a time: the plug is a
// port-level object, and selectively flushing one migration's frames
// while another's stay queued would break the arrival-order guarantee.
type plugFwdState struct {
	migID string
	// translate maps old (source-side) physical QPNs to the restored
	// destination QPNs for tunneled frames.
	translate map[uint32]uint32
	// newQPNs is the plug match set: frames addressed to these QPNs are
	// queued until the flush.
	newQPNs map[uint32]bool
	// mStraggler counts tunneled frames dropped instead of delivered:
	// control frames (a stale AckPSN replayed against the restored QPs
	// could acknowledge data the new stream never carried) and request
	// frames arriving after the flush (stale retransmits whose old PSN
	// could alias back into the re-paired connection's fresh window).
	mStraggler *metrics.Counter
	// flushed is set once the fabric-level plug has been released. The
	// state outlives the flush so that late stragglers — still tunneled
	// by the source rule, which stays up until source reclaim — are
	// recognized and dropped with accounting rather than delivered.
	flushed bool
}

// PlugActive reports whether this daemon currently holds a destination
// plug (chaos residue check: must be false after any abort).
func (d *Daemon) PlugActive() bool { return d.plugFwd != nil }

// ForwardActive reports whether the source-side forwarding rule is
// installed (chaos residue check: must be false after any abort).
func (d *Daemon) ForwardActive() bool { return d.fwdMig != "" }

// SetPlugTap installs (or clears) the observer for plug-buffer events
// on this daemon's node: "buffer", "flush", "drop-overflow", "discard",
// each with the frame's arrival sequence number. The chaos harness uses
// it to prove flush order equals arrival order.
func (d *Daemon) SetPlugTap(tap func(event string, seq uint64)) { d.plugTap = tap }

// installPlug installs the destination-side plug buffer for a
// migration adopting the QPs in pairs (old physical QPN → new QPN).
func (d *Daemon) installPlug(migID string, pairs map[uint32]uint32, limit int) error {
	if d.plugFwd != nil {
		return fmt.Errorf("core: %s already has a plug installed (migration %s); concurrent plug-mode migrations sharing a destination are not supported", d.Node(), d.plugFwd.migID)
	}
	if len(pairs) == 0 {
		return fmt.Errorf("core: migration %s has no QPN pairs to plug", migID)
	}
	st := &plugFwdState{
		migID:     migID,
		translate: make(map[uint32]uint32, len(pairs)),
		newQPNs:   make(map[uint32]bool, len(pairs)),
		// Registered here rather than at daemon construction so the
		// metric only exists in plug-mode runs (snapshot hashes of the
		// go-back-N goldens stay intact).
		mStraggler: d.registry().Counter("core", "forward_stragglers_dropped",
			metrics.Labels{"node": d.Node()}),
	}
	for old, nu := range pairs {
		st.translate[old] = nu
		st.newQPNs[nu] = true
	}
	match := func(f fabric.Frame) bool {
		if f.Port != rnic.PortRDMA {
			return false
		}
		qpn, ok := rnic.PeekDstQPN(f.Data)
		return ok && st.newQPNs[qpn]
	}
	if err := d.host.Net.InstallPlug(d.Node(), limit, match, d.plugTap); err != nil {
		return err
	}
	d.plugFwd = st
	return nil
}

// flushPlug releases the plug in arrival order. The translate state is
// kept (marked flushed) so stragglers the source is still forwarding
// are recognized and dropped with accounting; releasePlug clears it at
// teardown. Idempotent: 0 when no plug-mode migration is active.
func (d *Daemon) flushPlug(migID string) int {
	if d.plugFwd == nil || d.plugFwd.migID != migID {
		return 0
	}
	n := d.host.Net.FlushPlug(d.Node())
	d.plugFwd.flushed = true
	return n
}

// releasePlug is the final plug-state teardown, run when the source
// reclaims (the forwarding rule comes down at the same time, so no more
// tunneled frames will need translation). Idempotent.
func (d *Daemon) releasePlug(migID string) {
	if d.plugFwd == nil || d.plugFwd.migID != migID {
		return
	}
	if !d.plugFwd.flushed {
		d.host.Net.DiscardPlug(d.Node())
	}
	d.plugFwd = nil
}

// discardPlug tears the plug down without delivering anything (abort
// path). Idempotent.
func (d *Daemon) discardPlug(migID string) int {
	if d.plugFwd == nil || d.plugFwd.migID != migID {
		return 0
	}
	n := 0
	if !d.plugFwd.flushed {
		n = d.host.Net.DiscardPlug(d.Node())
	}
	d.plugFwd = nil
	return n
}

// onTunnelFrame handles one encapsulated frame arriving on PortMigrFwd:
// unwrap, translate the destination QPN from the old source-side number
// to the restored one, and merge it into the plug's arrival order.
// Control frames of the old connection, and any straggler arriving
// after the flush, are dropped with accounting — both are stale
// leftovers of the torn-down pairing, never the only copy of data.
func (d *Daemon) onTunnelFrame(f fabric.Frame) {
	st := d.plugFwd
	wire, ok := unwrapTunnel(f.Data)
	if !ok {
		return
	}
	if !rnic.IsRequestFrame(wire) {
		if st != nil {
			st.mStraggler.Inc()
		}
		return
	}
	if st == nil {
		// Tunnel frame with no plug state (e.g. raced a completed
		// teardown): nothing to translate it against; drop. The sender's
		// RTO recovers the data if it still matters.
		return
	}
	oldQPN, ok := rnic.PeekDstQPN(wire)
	if !ok {
		return
	}
	newQPN, ok := st.translate[oldQPN]
	if !ok {
		return
	}
	if st.flushed {
		// Late straggler: the plug has already been flushed, so this
		// frame is provably a stale retransmit — any old-QP frame still
		// unacked when wait-before-stop ended is either replayed as a
		// leftover WR after resume or was delivered before the dump. It
		// must NOT be re-offered to the restored QPs: the re-paired
		// connection starts a fresh PSN sequence, and once enough new
		// messages have flowed the straggler's old PSN lands back inside
		// the live window and would be accepted as new data. Drop it
		// with accounting instead.
		st.mStraggler.Inc()
		if d.plugTap != nil {
			d.plugTap("drop-straggler", uint64(oldQPN))
		}
		return
	}
	data := append([]byte(nil), wire...)
	rnic.RewriteDstQPN(data, newQPN)
	inner := fabric.Frame{Src: tunnelOrigSrc(f.Data), Dst: d.Node(),
		Port: rnic.PortRDMA, Size: rnic.WireSizeOf(data), Data: data}
	d.host.Net.EnqueuePlugged(d.Node(), inner)
}

// installForward installs the source-side rule tunneling frames for the
// given suspended physical QPNs to the destination daemon's plug. It
// doubles as the post-dump divergence guard: once installed, late
// arrivals can no longer mutate the dumped transport state or provoke
// acks/naks from the half-dead source QPs.
func (d *Daemon) installForward(migID string, oldQPNs map[uint32]bool, dstNode string) error {
	if d.fwdMig != "" && d.fwdMig != migID {
		return fmt.Errorf("core: %s already forwards for migration %s; concurrent plug-mode migrations sharing a source are not supported", d.Node(), d.fwdMig)
	}
	if len(oldQPNs) == 0 {
		return fmt.Errorf("core: migration %s has no QPNs to forward", migID)
	}
	node := d.Node()
	d.dev.SetForward(oldQPNs, func(f fabric.Frame) {
		// f.Data is recycled when this returns; the wrap copies it.
		payload := wrapTunnel(f.Src, f.Data)
		d.host.Net.Send(fabric.Frame{Src: node, Dst: dstNode, Port: PortMigrFwd,
			Size: f.Size + tunnelOverhead, Data: payload})
	})
	d.fwdMig = migID
	return nil
}

// removeForward tears the forwarding rule down. Idempotent.
func (d *Daemon) removeForward(migID string) {
	if d.fwdMig != migID {
		return
	}
	d.dev.SetForward(nil, nil)
	d.fwdMig = ""
}

// wrapTunnel encapsulates original wire bytes with their original
// source node: [1B len(src)][src][wire bytes].
func wrapTunnel(src string, wire []byte) []byte {
	b := make([]byte, 1+len(src)+len(wire))
	b[0] = byte(len(src))
	copy(b[1:], src)
	copy(b[1+len(src):], wire)
	return b
}

// unwrapTunnel returns the encapsulated wire bytes.
func unwrapTunnel(b []byte) ([]byte, bool) {
	if len(b) < 1 || len(b) < 1+int(b[0]) {
		return nil, false
	}
	return b[1+int(b[0]):], true
}

// tunnelOrigSrc returns the encapsulated original source node.
func tunnelOrigSrc(b []byte) string {
	if len(b) < 1 || len(b) < 1+int(b[0]) {
		return ""
	}
	return string(b[1 : 1+int(b[0])])
}

// --- Plugin verbs (called by the runc phase engine) -----------------------

// InstallPlug installs the destination-side plug buffer for every QP
// being adopted by this migration. Must run after PostRestore (the
// old→new QPN pairing exists once the staged restore is bound).
func (pl *Plugin) InstallPlug(limit int) error {
	if pl.staged == nil || len(pl.staged.qpnPairs) == 0 {
		return fmt.Errorf("core: InstallPlug before restore produced QPN pairs")
	}
	return pl.Dst.installPlug(pl.ID, pl.staged.qpnPairs, limit)
}

// DiscardPlug is InstallPlug's compensation: tear the plug down,
// dropping anything queued. Safe to call when nothing was installed.
func (pl *Plugin) DiscardPlug() {
	pl.Dst.discardPlug(pl.ID)
}

// InstallForward installs the source-side forwarding rule for the
// suspended QPs of this migration.
func (pl *Plugin) InstallForward() error {
	if pl.staged == nil || len(pl.staged.qpnPairs) == 0 {
		return fmt.Errorf("core: InstallForward before restore produced QPN pairs")
	}
	oldQPNs := make(map[uint32]bool, len(pl.staged.qpnPairs))
	for old := range pl.staged.qpnPairs {
		oldQPNs[old] = true
	}
	return pl.Src.installForward(pl.ID, oldQPNs, pl.Dst.Node())
}

// RemoveForward is InstallForward's compensation and the first half of
// the flush phase. Safe to call when nothing was installed.
func (pl *Plugin) RemoveForward() {
	pl.Src.removeForward(pl.ID)
}

// FlushPlug releases the plug in arrival order, ahead of live traffic.
// Returns the number of frames delivered. The forwarding rule and the
// plug's translate state stay up until ReleasePlug: anything still in
// flight toward the source keeps being tunneled over, and the restored
// QPs' PSN windows accept or reject the late deliveries.
func (pl *Plugin) FlushPlug() int {
	return pl.Dst.flushPlug(pl.ID)
}

// ReleasePlug tears down the forwarding rule and the residual plug
// state. Runs at source reclaim, off the blackout's critical path.
func (pl *Plugin) ReleasePlug() {
	pl.Src.removeForward(pl.ID)
	pl.Dst.releasePlug(pl.ID)
}
