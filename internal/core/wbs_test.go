package core

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// wbsRig builds two connected sessions for suspension-level tests.
type wbsRig struct {
	cl       *cluster.Cluster
	sa, sb   *Session
	qpA, qpB *QP
	cqA, cqB *CQ
	mrA, mrB *MR
}

func newWBSRig(t *testing.T) *wbsRig {
	t.Helper()
	return newWBSRigCfg(t, cluster.Config{Seed: 21})
}

func newWBSRigCfg(t *testing.T, cfg cluster.Config) *wbsRig {
	t.Helper()
	cl := cluster.New(cfg, "a", "b")
	da, db := NewDaemon(cl.Host("a")), NewDaemon(cl.Host("b"))
	r := &wbsRig{cl: cl}
	cl.Sched.Go("setup", func() {
		pa, pb := task.New(cl.Sched, "pa"), task.New(cl.Sched, "pb")
		r.sa, r.sb = NewSession(pa, da), NewSession(pb, db)
		pa.AS.Map(0x100000, 1<<20, "buf")
		pb.AS.Map(0x100000, 1<<20, "buf")
		pdA, pdB := r.sa.AllocPD(), r.sb.AllocPD()
		r.cqA, r.cqB = r.sa.CreateCQ(1024, nil), r.sb.CreateCQ(1024, nil)
		var err error
		r.mrA, err = r.sa.RegMR(pdA, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
		if err != nil {
			t.Error(err)
		}
		r.mrB, err = r.sb.RegMR(pdB, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
		if err != nil {
			t.Error(err)
		}
		r.qpA = r.sa.CreateQP(pdA, QPConfig{Type: rnic.RC, SendCQ: r.cqA, RecvCQ: r.cqA, Caps: rnic.QPCaps{MaxSend: 128, MaxRecv: 128}})
		r.qpB = r.sb.CreateQP(pdB, QPConfig{Type: rnic.RC, SendCQ: r.cqB, RecvCQ: r.cqB, Caps: rnic.QPCaps{MaxSend: 128, MaxRecv: 128}})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		r.qpB.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "b", RemoteQPN: r.qpB.VQPN()})
		r.qpB.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "a", RemoteQPN: r.qpA.VQPN()})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		r.qpB.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
	})
	cl.Sched.RunFor(100 * time.Millisecond)
	return r
}

func (r *wbsRig) write(id uint64) error {
	return r.qpA.PostSend(rnic.SendWR{
		WRID: id, Opcode: rnic.OpWrite, Signaled: true,
		SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 1024, LKey: r.mrA.LKey()}},
		RemoteAddr: 0x100000, RKey: r.mrB.RKey(),
	})
}

func TestSuspensionInterceptsPosts(t *testing.T) {
	r := newWBSRig(t)
	r.cl.Sched.Go("test", func() {
		qps := r.sa.SuspendAll()
		if !r.qpA.Suspended() {
			t.Error("QP not suspended")
		}
		// Posts during suspension succeed from the app's view but stay
		// off the wire (§3.4 preserves RDMA's asynchronous semantics).
		for i := 0; i < 5; i++ {
			if err := r.write(uint64(i)); err != nil {
				t.Errorf("intercepted post returned error: %v", err)
			}
		}
		if r.qpA.Outstanding() != 0 {
			t.Errorf("intercepted posts reached the NIC: outstanding=%d", r.qpA.Outstanding())
		}
		if n := len(r.qpA.intercepted); n != 5 {
			t.Errorf("intercepted=%d, want 5", n)
		}
		r.cl.Sched.Sleep(5 * time.Millisecond)
		if r.cqA.Len() != 0 {
			t.Error("completions appeared for intercepted WRs")
		}
		// Resume: the buffered WRs go on the wire and complete.
		if err := r.sa.Resume(qps); err != nil {
			t.Errorf("resume: %v", err)
		}
		got := 0
		for got < 5 {
			r.cqA.WaitNonEmpty()
			got += len(r.cqA.Poll(16))
		}
	})
	r.cl.Sched.RunFor(5 * time.Second)
}

func TestWBSDrainsAndPreservesCompletions(t *testing.T) {
	r := newWBSRig(t)
	r.cl.Sched.Go("test", func() {
		// Put 20 WRs in flight, then immediately suspend + WBS.
		for i := 0; i < 20; i++ {
			if err := r.write(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		qps := r.sa.SuspendAll()
		res := r.sa.WaitBeforeStop(qps, DefaultWBSConfig())
		if res.TimedOut {
			t.Fatal("WBS timed out on a healthy wire")
		}
		if res.InflightBytes != 20*1024 {
			t.Errorf("inflight = %d, want %d", res.InflightBytes, 20*1024)
		}
		if r.qpA.Outstanding() != 0 {
			t.Errorf("outstanding=%d after WBS", r.qpA.Outstanding())
		}
		// The completions were harvested into the fake CQ, in order.
		if len(r.cqA.fake) != 20 {
			t.Fatalf("fake CQ has %d entries, want 20", len(r.cqA.fake))
		}
		for i, e := range r.cqA.Poll(32) {
			if e.WRID != uint64(i) {
				t.Fatalf("fake CQ out of order at %d: wrid %d", i, e.WRID)
			}
			if e.QPN != r.qpA.VQPN() {
				t.Fatalf("fake CQE carries untranslated QPN %#x", e.QPN)
			}
		}
	})
	r.cl.Sched.RunFor(5 * time.Second)
}

func TestWBSTwoSidedNSentExchange(t *testing.T) {
	r := newWBSRig(t)
	r.cl.Sched.Go("test", func() {
		// B posts receives; A sends two-sided traffic.
		for i := 0; i < 8; i++ {
			r.qpB.PostRecv(rnic.RecvWR{WRID: uint64(100 + i),
				SGEs: []rnic.SGE{{Addr: 0x100000, Len: 4096, LKey: r.mrB.LKey()}}})
		}
		for i := 0; i < 8; i++ {
			r.qpA.PostSend(rnic.SendWR{WRID: uint64(i), Opcode: rnic.OpSend, Signaled: true,
				SGEs: []rnic.SGE{{Addr: 0x100000, Len: 512, LKey: r.mrA.LKey()}}})
		}
		// Let the deliveries land so B has received traffic (n_recv > 0):
		// its WBS must then wait for A's n_sent announcement before
		// terminating — the §3.4 handshake. (When n_recv is still zero a
		// receiver may finish WBS immediately; that race is benign
		// because the sender's own WBS gates the switch-over.)
		r.cl.Sched.Sleep(2 * time.Millisecond)
		qpsB := r.sb.SuspendPeer("a")
		done := 0
		r.cl.Sched.Go("wbs-a", func() {
			// A's WBS (and its n_sent announcement) starts a little
			// later; B must block on the handshake until it lands.
			r.cl.Sched.Sleep(500 * time.Microsecond)
			qpsA := r.sa.SuspendAll()
			if res := r.sa.WaitBeforeStop(qpsA, DefaultWBSConfig()); res.TimedOut {
				t.Error("A timed out")
			}
			done++
		})
		start := r.cl.Sched.Now()
		r.cl.Sched.Go("wbs-b", func() {
			res := r.sb.WaitBeforeStop(qpsB, DefaultWBSConfig())
			if res.TimedOut {
				t.Error("B timed out")
			}
			// B terminated only after A's announcement arrived.
			if r.cl.Sched.Now()-start < 500*time.Microsecond {
				t.Error("B finished before the n_sent announcement")
			}
			done++
		})
		for done < 2 {
			r.cl.Sched.Sleep(time.Millisecond)
		}
		// All 8 receives completed on B, preserved in its fake CQ.
		if len(r.cqB.fake) != 8 {
			t.Errorf("B fake CQ has %d, want 8", len(r.cqB.fake))
		}
	})
	r.cl.Sched.RunFor(10 * time.Second)
}

func TestWBSTimeoutReplayNoDoubleCount(t *testing.T) {
	// §3.4 timeout path: wait-before-stop gives up across a partition,
	// leaving WRs in the SQ window. If their original completions land
	// before Resume replays them, Resume must retire them first — a WR
	// observed via the fake-CQ sweep AND via its replay would complete
	// twice.
	r := newWBSRigCfg(t, cluster.Config{
		Seed: 23,
		// Keep the QP retrying through the whole partition instead of
		// going to error state.
		NIC: rnic.Config{MaxRetries: 1000},
	})
	done := false
	r.cl.Sched.Go("test", func() {
		defer func() { done = true }()
		// Warm the rkey cache first: the initial one-sided post fetches
		// the peer's rkey out-of-band, which would block on the partition.
		if err := r.write(100); err != nil {
			t.Fatal(err)
		}
		r.cqA.WaitNonEmpty()
		r.cqA.Poll(4)

		r.cl.Net.SetPartitioned("b", true)
		const wrs = 10
		for i := 0; i < wrs; i++ {
			if err := r.write(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		qps := r.sa.SuspendAll()
		res := r.sa.WaitBeforeStop(qps, WBSConfig{
			PollInterval: 2 * time.Microsecond,
			PerCQE:       300 * time.Nanosecond,
			Timeout:      5 * time.Millisecond,
		})
		if !res.TimedOut {
			t.Fatal("WBS finished across a partition")
		}
		if res.LeftoverSends != wrs {
			t.Fatalf("leftover = %d, want %d", res.LeftoverSends, wrs)
		}
		// Heal. The NIC's own retransmission now completes the original
		// posts; the completions sit in the real CQ while the library
		// still holds the WRs as leftovers.
		r.cl.Net.SetPartitioned("b", false)
		r.cl.Sched.Sleep(100 * time.Millisecond)
		if err := r.sa.Resume(qps); err != nil {
			t.Fatal(err)
		}
		if r.qpA.Outstanding() != 0 {
			t.Errorf("resume replayed %d already-completed WRs", r.qpA.Outstanding())
		}
		r.cl.Sched.Sleep(100 * time.Millisecond)
		seen := make(map[uint64]int)
		for _, e := range r.cqA.Poll(1024) {
			if e.Status != rnic.WCSuccess {
				t.Errorf("WR %d status %v", e.WRID, e.Status)
			}
			seen[e.WRID]++
		}
		if len(seen) != wrs {
			t.Fatalf("distinct completions = %d, want %d (%v)", len(seen), wrs, seen)
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("WR %d completed %d times", id, n)
			}
		}
	})
	r.cl.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("test proc never finished (parked at a blocking call)")
	}
}

func TestStaleCQESuppressed(t *testing.T) {
	// A late completion from a pre-switch QP incarnation whose WR was
	// already replayed must be dropped, once; recvs and unknown WRIDs
	// pass through.
	r := newWBSRig(t)
	r.cl.Sched.Go("test", func() {
		r.sa.staleWRIDs[0x42] = map[uint64]bool{7: true}
		if !r.sa.staleCQE(rnic.CQE{QPN: 0x42, WRID: 7, Opcode: rnic.OpWrite}) {
			t.Error("stale CQE not suppressed")
		}
		if r.sa.staleCQE(rnic.CQE{QPN: 0x42, WRID: 7, Opcode: rnic.OpWrite}) {
			t.Error("suppression must be one-shot")
		}
		r.sa.staleWRIDs[0x43] = map[uint64]bool{8: true}
		if r.sa.staleCQE(rnic.CQE{QPN: 0x43, WRID: 8, Opcode: rnic.OpRecv}) {
			t.Error("receive completions must never be suppressed")
		}
		if r.sa.staleCQE(rnic.CQE{QPN: 0x99, WRID: 8, Opcode: rnic.OpWrite}) {
			t.Error("unknown QPN suppressed")
		}
		if got := r.sa.mStaleDropped.Value(); got != 1 {
			t.Errorf("stale_cqes_dropped = %d, want 1", got)
		}
	})
	r.cl.Sched.RunFor(time.Second)
}

func TestSuspendPeerIsSelective(t *testing.T) {
	// A partner suspends only QPs toward the migration source; QPs to
	// other nodes keep flowing (§3.4).
	cl := cluster.New(cluster.Config{Seed: 22}, "p", "src", "other")
	dp, ds, do := NewDaemon(cl.Host("p")), NewDaemon(cl.Host("src")), NewDaemon(cl.Host("other"))
	cl.Sched.Go("test", func() {
		pp := task.New(cl.Sched, "pp")
		sp := NewSession(pp, dp)
		pp.AS.Map(0x100000, 1<<20, "buf")
		pd := sp.AllocPD()
		cq := sp.CreateCQ(256, nil)
		mr, _ := sp.RegMR(pd, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
		mkPeer := func(d *Daemon, node string) (*QP, *MR) {
			rp := task.New(cl.Sched, "peer-"+node)
			rs := NewSession(rp, d)
			rp.AS.Map(0x100000, 1<<20, "buf")
			rpd := rs.AllocPD()
			rcq := rs.CreateCQ(256, nil)
			rmr, _ := rs.RegMR(rpd, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
			rqp := rs.CreateQP(rpd, QPConfig{Type: rnic.RC, SendCQ: rcq, RecvCQ: rcq})
			rqp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
			lqp := sp.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
			lqp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
			lqp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: node, RemoteQPN: rqp.VQPN()})
			lqp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
			rqp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "p", RemoteQPN: lqp.VQPN()})
			rqp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
			return lqp, rmr
		}
		toSrc, _ := mkPeer(ds, "src")
		toOther, otherMR := mkPeer(do, "other")

		suspended := sp.SuspendPeer("src")
		if len(suspended) != 1 || suspended[0] != toSrc {
			t.Errorf("SuspendPeer picked %d QPs", len(suspended))
		}
		if !toSrc.Suspended() || toOther.Suspended() {
			t.Error("selective suspension wrong")
		}
		// The unsuspended QP still carries traffic.
		err := toOther.PostSend(rnic.SendWR{WRID: 1, Opcode: rnic.OpWrite, Signaled: true,
			SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 64, LKey: mr.LKey()}},
			RemoteAddr: 0x100000, RKey: otherMR.RKey()})
		if err != nil {
			t.Fatal(err)
		}
		cq.WaitNonEmpty()
		if e := cq.Poll(4)[0]; e.Status != rnic.WCSuccess {
			t.Errorf("traffic to other node failed: %v", e.Status)
		}
	})
	cl.Sched.RunFor(5 * time.Second)
}
