package core
