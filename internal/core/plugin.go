package core

import (
	"fmt"
	"time"

	"migrrdma/internal/criu"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// Plugin is the MigrRDMA CRIU plugin (§4): it checkpoints the
// indirection layer on the source and rebuilds equivalent RDMA
// communications on the destination using the Table-3 restore calls.
// One Plugin instance drives one migration.
type Plugin struct {
	Src, Dst *Daemon

	// ID identifies the migration this plugin drives. It keys the
	// per-migration state stashed on partner and destination daemons
	// (spare QPs, staged restores, partner WBS results) so one node can
	// take part in several overlapping migrations.
	ID string

	sess       *Session
	staged     *Staged
	partnerWBS WBSResult
	// adopted records that adopt() moved the session onto the
	// destination daemon; AbortAdoption uses it to decide whether the
	// move must be reversed.
	adopted bool
}

var _ criu.Plugin = (*Plugin)(nil)

// NewPlugin creates a plugin for migrating a process from Src's host to
// Dst's host.
func NewPlugin(src, dst *Daemon) *Plugin {
	return &Plugin{Src: src, Dst: dst}
}

// Session returns the session being migrated (available after Attach,
// PreDump or FinalDump).
func (pl *Plugin) Session() *Session { return pl.sess }

// Attach binds the plugin to the process being migrated.
func (pl *Plugin) Attach(p *task.Process) error {
	s, err := sessionOf(p)
	if err != nil {
		return err
	}
	pl.sess = s
	return nil
}

// sessionOf extracts the MigrRDMA session from a process.
func sessionOf(p *task.Process) (*Session, error) {
	s, ok := p.Attachment.(*Session)
	if !ok || s == nil {
		return nil, fmt.Errorf("core: process %s has no MigrRDMA session", p.Name)
	}
	return s, nil
}

// PreDump checkpoints the full RDMA roadmap at the start of pre-copy
// (Fig. 2b ①').
func (pl *Plugin) PreDump(p *task.Process) ([]byte, error) {
	s, err := sessionOf(p)
	if err != nil {
		return nil, err
	}
	pl.sess = s
	return encodeBlob(s.Checkpoint(false))
}

// FinalDump checkpoints the difference since PreDump plus the final
// virtualization metadata (Fig. 2b ⑤').
func (pl *Plugin) FinalDump(p *task.Process) ([]byte, error) {
	s, err := sessionOf(p)
	if err != nil {
		return nil, err
	}
	pl.sess = s
	return encodeBlob(s.Checkpoint(true))
}

// PreRestore claims MR-backing memory at its original virtual addresses
// on the destination (§3.2); it is quick and must run before CRIU's
// temporary mappings. The long part — replaying the roadmap and partner
// notification — happens in RunPreSetup, which overlaps memory pre-copy.
func (pl *Plugin) PreRestore(r *criu.Restore, img *criu.Image, blob []byte) error {
	b, err := DecodeBlob(blob)
	if err != nil {
		return err
	}
	st, err := pl.Dst.RestoreContextFor(r, img, b, pl.ID)
	if err != nil {
		return err
	}
	pl.staged = st
	return nil
}

// RunPreSetup replays the roadmap on the destination device and then
// runs partner notification — the RDMA pre-setup of §3.2. It blocks for
// the full (milliseconds-per-QP) control-path cost and is meant to run
// concurrently with memory pre-copy.
func (pl *Plugin) RunPreSetup() error {
	if err := pl.staged.Replay(); err != nil {
		return err
	}
	return pl.NotifyPartners()
}

// PostRestore applies the final RDMA diff, swaps the session onto the
// destination resources, and re-arms the data path (Fig. 2b ⑥'+⑦).
// Partner switch-over (SwitchPartners) must run between the swap and
// Resume; runc's migration driver sequences that.
func (pl *Plugin) PostRestore(r *criu.Restore, p *task.Process, blob []byte) error {
	s, err := sessionOf(p)
	if err != nil {
		return err
	}
	final, err := DecodeBlob(blob)
	if err != nil {
		return err
	}
	if pl.staged == nil {
		// No pre-setup (the baseline of §5.2): build everything now,
		// inside the blackout.
		st, err := pl.Dst.RestoreContextFor(r, nil, final, pl.ID)
		if err != nil {
			return err
		}
		pl.staged = st
		if err := st.Replay(); err != nil {
			return err
		}
		if err := pl.NotifyPartners(); err != nil {
			return err
		}
	} else if err := pl.staged.applyFinal(final); err != nil {
		return err
	}
	return pl.adopt(s)
}

// adopt swaps the session's underlying objects for the staged ones and
// registers it with the destination daemon. The session is left
// suspended; ResumeMigrated completes step ⑦ after partners switched.
func (pl *Plugin) adopt(s *Session) error {
	st := pl.staged
	if err := st.bind(s); err != nil {
		return err
	}
	// Move the registration: the source daemon forgets the session (and
	// remembers where its virtual QPNs went), the destination daemon
	// adopts it.
	pl.Src.unregister(s)
	for _, qp := range s.sortedQPs() {
		pl.Src.movedVQPN[qp.vqpn] = pl.Dst.Node()
	}
	pl.Dst.register(s)
	for _, qp := range s.sortedQPs() {
		pl.Dst.mapQPN(qp.v.QPN(), qp.vqpn, s)
	}
	delete(pl.Dst.staging, st.key)
	pl.adopted = true
	return nil
}

// AbortSource rolls back SuspendSource after a failed migration: every
// QP of the migrated session that is still suspended resumes on the
// source device, replaying intercepted posts and pending receives (the
// §3.4 resume path, reused for rollback). Safe to call when nothing was
// suspended.
func (pl *Plugin) AbortSource() error {
	if pl.sess == nil {
		return nil
	}
	var qps []*QP
	for _, qp := range pl.sess.sortedQPs() {
		if qp.suspended {
			qps = append(qps, qp)
		}
	}
	if len(qps) == 0 {
		return nil
	}
	return pl.sess.Resume(qps)
}

// AbortStaging discards the destination-side staged restore: every
// staged resource is destroyed and the daemon's staging slot cleared.
// If the session was adopted, AbortAdoption must have run first (it
// unbinds the session from the staged objects).
func (pl *Plugin) AbortStaging() {
	if pl.staged == nil {
		return
	}
	pl.staged.abort()
	pl.staged = nil
}

// AbortAdoption reverses adopt after a failed migration: the session is
// unregistered from the destination daemon, unbound from the staged
// objects (wrappers and translation tables point back at the source
// resources), and re-registered with the source daemon. A no-op unless
// adopt completed.
func (pl *Plugin) AbortAdoption() {
	if !pl.adopted {
		return
	}
	pl.adopted = false
	s, st := pl.sess, pl.staged
	pl.Dst.unregister(s)
	for _, qp := range s.sortedQPs() {
		// qp.v is still the staged destination QP here.
		pl.Dst.unmapQPN(qp.v.QPN())
		delete(pl.Src.movedVQPN, qp.vqpn)
	}
	st.unbind(s)
	pl.Src.register(s)
	for _, qp := range s.sortedQPs() {
		// After unbind qp.v is the original source QP again; unregister
		// left the source QPN table intact, mapQPN restores byPhys.
		pl.Src.mapQPN(qp.v.QPN(), qp.vqpn, s)
	}
}

// AbortPartners tells every partner node involved in this migration to
// roll back: destroy the spare QPs stashed for it, resume the QPs it
// suspended on the migration's behalf, and clear the per-migration
// stashes. Best-effort: unreachable partners are reported but do not
// stop the remaining notifications.
func (pl *Plugin) AbortPartners() error {
	s := pl.sess
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	var firstErr error
	for _, qp := range s.sortedQPs() {
		if qp.typ != rnic.RC || qp.v.RemoteNode() == "" {
			continue
		}
		node := qp.v.RemoteNode()
		if seen[node] {
			continue
		}
		seen[node] = true
		resp, ok := pl.Src.call(node, "abort", enc(abortReq{
			MigID: pl.ID, Proc: s.Proc.Name, SrcNode: pl.Src.Node(),
		}))
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: partner %s unreachable for abort", node)
			}
			continue
		}
		if len(resp) > 0 && firstErr == nil {
			firstErr = fmt.Errorf("core: partner %s abort: %s", node, resp)
		}
	}
	return firstErr
}

// NotifyPartners implements the §3.2 notification: for every partner
// node, send the migration destination's address and the list of the
// partner's physical QPNs connected to the migrated service; each
// partner pre-establishes spare QPs to the destination. It blocks until
// every partner finished pre-setup.
func (pl *Plugin) NotifyPartners() error {
	s := pl.sess
	byNode := make(map[string][]notifyPair)
	var nodes []string
	for _, qp := range s.sortedQPs() {
		if qp.typ != rnic.RC || qp.v.RemoteNode() == "" {
			continue
		}
		node := qp.v.RemoteNode()
		if _, seen := byNode[node]; !seen {
			nodes = append(nodes, node)
		}
		byNode[node] = append(byNode[node], notifyPair{PartnerQPN: qp.v.RemoteQPN(), VQPN: qp.vqpn})
	}
	for _, node := range nodes {
		req := notifyReq{MigID: pl.ID, Proc: s.Proc.Name, DestNode: pl.Dst.Node(), Pairs: byNode[node]}
		resp, ok := pl.Src.call(node, "notify-migr", enc(req))
		if !ok {
			return fmt.Errorf("core: partner %s unreachable for notification", node)
		}
		if len(resp) > 0 {
			return fmt.Errorf("core: partner %s pre-setup: %s", node, resp)
		}
	}
	return nil
}

// SuspendPartners tells every partner to suspend its QPs toward the
// migration source and run wait-before-stop; it blocks until all of
// them finish (§3.4) and returns the slowest partner's result. It runs
// concurrently with the source's own wait-before-stop.
func (pl *Plugin) SuspendPartners() error {
	s := pl.sess
	// Collect, per partner node, the partner-side physical QPNs of this
	// migration's connections so the partner suspends exactly those and
	// not QPs of other processes that merely talk to the same source.
	byNode := make(map[string][]uint32)
	var nodes []string
	pl.partnerWBS = WBSResult{}
	for _, qp := range s.sortedQPs() {
		node := qp.v.RemoteNode()
		if node == "" || node == pl.Src.Node() || qp.typ != rnic.RC {
			continue
		}
		if _, seen := byNode[node]; !seen {
			nodes = append(nodes, node)
		}
		byNode[node] = append(byNode[node], qp.v.RemoteQPN())
	}
	for _, node := range nodes {
		resp, ok := pl.Src.call(node, "suspend-for", enc(suspendForReq{
			MigID: pl.ID, SrcNode: pl.Src.Node(), PartnerQPNs: byNode[node],
		}))
		if !ok {
			return fmt.Errorf("core: partner %s unreachable for suspension", node)
		}
		var sr suspendForResp
		if err := dec(resp, &sr); err == nil {
			if d := time.Duration(sr.ElapsedNS); d > pl.partnerWBS.Elapsed {
				pl.partnerWBS = WBSResult{Elapsed: d, TimedOut: sr.TimedOut}
			}
		}
	}
	return nil
}

// WorstPartnerWBS reports the slowest partner-side wait-before-stop of
// the last SuspendPartners call.
func (pl *Plugin) WorstPartnerWBS() WBSResult { return pl.partnerWBS }

// SuspendSource suspends all of the migrated service's QPs and runs its
// wait-before-stop, returning the result (§3.4).
func (pl *Plugin) SuspendSource() WBSResult {
	qps := pl.sess.SuspendAll()
	return pl.sess.WaitBeforeStop(qps, pl.Src.wbs)
}

// SwitchPartners activates the partners' spare QPs (step right before
// ⑦, §3.2). The destination session must already be registered.
func (pl *Plugin) SwitchPartners() error {
	return pl.callPartners("switch-to")
}

// SwitchPartnersDeferred is the plug-forward variant of SwitchPartners:
// the partners' spare QPs are activated but stay suspended (and their
// old QPs alive) until ResumePartners, so partner traffic cannot start
// before the migrated service is live.
func (pl *Plugin) SwitchPartnersDeferred() error {
	return pl.callPartners("switch-defer")
}

// ResumePartners completes a deferred switch-over once the migrated
// service has thawed: every partner resumes its re-pointed QPs and
// replays intercepted work.
func (pl *Plugin) ResumePartners() error {
	return pl.callPartners("resume-partners")
}

func (pl *Plugin) callPartners(kind string) error {
	s := pl.sess
	seen := map[string]bool{}
	for _, qp := range s.sortedQPs() {
		node := qp.v.RemoteNode() // the partner's node does not change
		if node == "" || seen[node] {
			continue
		}
		seen[node] = true
		resp, ok := pl.Dst.call(node, kind, enc(switchReq{
			MigID: pl.ID, Proc: s.Proc.Name, SrcNode: pl.Src.Node(), DestNode: pl.Dst.Node(),
		}))
		if !ok {
			return fmt.Errorf("core: partner %s unreachable for %s", node, kind)
		}
		if len(resp) > 0 {
			return fmt.Errorf("core: partner %s %s: %s", node, kind, resp)
		}
	}
	return nil
}

// ResumeMigrated re-arms the migrated session's data path: intercepted
// WRs are posted and pending RECVs replayed on the new QPs (⑦).
func (pl *Plugin) ResumeMigrated() error {
	return pl.sess.Resume(pl.sess.sortedQPs())
}

// ReclaimSource destroys the original RDMA resources on the migration
// source ("the migration source reclaims all the resources", §3.1).
func (pl *Plugin) ReclaimSource() {
	st := pl.staged
	for _, old := range st.srcQPs {
		phys := old.QPN()
		old.Destroy()
		pl.Src.unmapQPN(phys)
	}
	for _, mr := range st.srcMRs {
		mr.Dereg()
	}
	for _, cq := range st.srcCQs {
		cq.Destroy()
	}
	for _, srq := range st.srcSRQs {
		srq.Destroy()
	}
	for _, pd := range st.srcPDs {
		pd.Dealloc()
	}
}
