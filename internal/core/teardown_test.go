package core

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// These tests pin the mid-migration teardown contract of Session.Close:
// a session that closes while a migration is in flight may still hold a
// pre-switch QP incarnation (oldV, kept until its completions drain)
// and a stashed partner spare (pendingNew). All three incarnations are
// live physical QPs; Close must destroy every one and scrub the
// daemon's per-QP and per-migration stashes, or the shared device leaks
// a QP per closed session — the multi-tenant fan-out multiplies that
// into thousands.

// midMigrationSession builds a session whose single QP wrapper carries
// an old incarnation and a stashed spare, the state a partner holds
// between notify-migr and the switch-over's retirement.
func midMigrationSession(t *testing.T, cl *cluster.Cluster, d *Daemon) (*Session, *QP) {
	t.Helper()
	p := task.New(cl.Sched, "p")
	s := NewSession(p, d)
	pd := s.AllocPD()
	cq := s.CreateCQ(64, nil)
	caps := rnic.QPCaps{MaxSend: 16, MaxRecv: 16}
	qp := s.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq, Caps: caps})

	// Old incarnation: still mapped in the daemon table, as after a
	// switch whose completions have not drained.
	qp.oldV = s.ctx.CreateQP(pd.v, rnic.RC, cq.v, cq.v, nil, caps)
	d.mapQPN(qp.oldV.QPN(), qp.vqpn, s)

	// Partner spare stashed for an in-flight migration, with an early
	// n_sent announcement parked on its physical QPN.
	qp.pendingNew = s.ctx.CreateQP(pd.v, rnic.RC, cq.v, cq.v, nil, caps)
	qp.pendingNewMig = "m1"
	d.pendingNSent[qp.pendingNew.QPN()] = 7
	return s, qp
}

func TestCloseDestroysOldAndSpareIncarnations(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 21}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		s, qp := midMigrationSession(t, cl, d)
		dev := cl.Host("h").Dev
		if got := dev.QPCount(); got != 3 {
			t.Fatalf("setup: %d device QPs, want 3 (active + old + spare)", got)
		}
		oldPhys := qp.oldV.QPN()
		sparePhys := qp.pendingNew.QPN()

		s.Close()

		if got := dev.QPCount(); got != 0 {
			t.Errorf("after Close: %d device QPs leaked, want 0", got)
		}
		if _, ok := d.translateQPN(oldPhys); ok {
			t.Errorf("old incarnation %#x still in the daemon QPN table", oldPhys)
		}
		if _, ok := d.pendingNSent[sparePhys]; ok {
			t.Errorf("parked n_sent for destroyed spare %#x leaked", sparePhys)
		}
		if n := d.PendingSpares(""); n != 0 {
			t.Errorf("%d pending spares survive Close", n)
		}
	})
	cl.Sched.RunFor(time.Second)
}

// TestCloseScrubsPerMigrationStashes closes a session whose QPs sit in
// the daemon's suspendedFor/pendingResume stashes (closed between
// suspend and switch, or between a deferred switch and resume-partners)
// and checks a later abort or resume-partners cannot replay onto the
// destroyed QPs.
func TestCloseScrubsPerMigrationStashes(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 22}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		s, qp := midMigrationSession(t, cl, d)
		other := &Session{} // a second session's stash entries must survive
		d.suspendedFor["m1"] = []suspendedSet{{s: s, qps: []*QP{qp}}, {s: other}}
		d.pendingResume["m1"] = []suspendedSet{{s: s, qps: []*QP{qp}}}
		d.pendingResume["m2"] = []suspendedSet{{s: other}}

		s.Close()

		for _, set := range d.suspendedFor["m1"] {
			if set.s == s {
				t.Error("closed session still referenced by suspendedFor")
			}
		}
		if len(d.suspendedFor["m1"]) != 1 {
			t.Errorf("other session's suspendedFor entry dropped: %v", d.suspendedFor["m1"])
		}
		if _, ok := d.pendingResume["m1"]; ok {
			t.Error("closed session's pendingResume set survives (resume-partners would replay onto destroyed QPs)")
		}
		if len(d.pendingResume["m2"]) != 1 {
			t.Errorf("other migration's pendingResume entry dropped")
		}
	})
	cl.Sched.RunFor(time.Second)
}

// TestAbortClearsPendingResume pins hAbort's ownership of a deferred
// switch-over that never reached resume-partners: the per-migration
// pendingResume stash must not outlive the abort.
func TestAbortClearsPendingResume(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 23}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "p")
		s := NewSession(p, d)
		d.pendingResume["m9"] = []suspendedSet{{s: s}}
		if resp := d.hAbort("peer", enc(abortReq{MigID: "m9"})); len(resp) != 0 {
			t.Fatalf("abort failed: %s", resp)
		}
		if _, ok := d.pendingResume["m9"]; ok {
			t.Error("pendingResume entry survives abort")
		}
	})
	cl.Sched.RunFor(time.Second)
}
