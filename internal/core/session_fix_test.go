package core

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// TestCompChannelGetCountsOneUnhandledEvent regression-tests the §3.4
// consistency counter on the fake-CQ path of CompChannel.Get: a repeated
// Get (or a second event) before the next Poll must count at most one
// unhandled event per CQ, because Poll only ever decrements once.
func TestCompChannelGetCountsOneUnhandledEvent(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 11}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "p")
		s := NewSession(p, d)
		ch := s.CreateCompChannel()
		cq := s.CreateCQ(64, ch)
		// Park two completions on the fake CQ, as wait-before-stop does
		// when it steals an armed event during migration.
		cq.fake = append(cq.fake, rnic.CQE{WRID: 1, Opcode: rnic.OpSend, Status: rnic.WCSuccess})
		cq.fake = append(cq.fake, rnic.CQE{WRID: 2, Opcode: rnic.OpSend, Status: rnic.WCSuccess})

		if got := ch.Get(); got != cq {
			t.Errorf("Get returned wrong CQ")
		}
		if s.unhandledEvents != 1 {
			t.Errorf("after first Get: unhandledEvents = %d, want 1", s.unhandledEvents)
		}
		// The application may call Get again before polling; the counter
		// must not drift.
		if got := ch.Get(); got != cq {
			t.Errorf("second Get returned wrong CQ")
		}
		if s.unhandledEvents != 1 {
			t.Errorf("after second Get: unhandledEvents = %d, want 1", s.unhandledEvents)
		}
		if got := cq.Poll(16); len(got) != 2 {
			t.Errorf("Poll drained %d entries, want 2", len(got))
		}
		if s.unhandledEvents != 0 {
			t.Errorf("after Poll: unhandledEvents = %d, want 0", s.unhandledEvents)
		}
		if cq.eventPending {
			t.Error("eventPending still set after Poll")
		}
	})
	cl.Sched.RunFor(time.Second)
}

// TestCloseDeterministicTeardown regression-tests Session.Close ordering:
// resources must tear down in ObjID (creation) order, not Go map
// iteration order, since the destroy events feed the deterministic
// trace/metrics hashes.
func TestCloseDeterministicTeardown(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 12}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "p")
		s := NewSession(p, d)
		p.AS.Map(0x100000, 1<<20, "buf")
		pd := s.AllocPD()
		var created []uint32
		for i := 0; i < 8; i++ {
			mr, err := s.RegMR(pd, mem.Addr(0x100000+0x1000*uint64(i)), 0x1000, rnic.AccessLocalWrite)
			if err != nil {
				t.Fatal(err)
			}
			created = append(created, mr.v.RKey())
		}
		var deregged []uint32
		cl.Host("h").Dev.SetTap(&rnic.Tap{
			Dereg: func(node string, rkey uint32) { deregged = append(deregged, rkey) },
		})
		s.Close()
		cl.Host("h").Dev.SetTap(nil)
		if len(deregged) != len(created) {
			t.Fatalf("%d deregs for %d MRs", len(deregged), len(created))
		}
		for i := range created {
			if deregged[i] != created[i] {
				t.Fatalf("dereg order %v != creation order %v (teardown is nondeterministic)",
					deregged, created)
			}
		}
	})
	cl.Sched.RunFor(time.Second)
}

// TestAbsorbRetiresMatchingRecvWR regression-tests absorb's receive
// accounting: completions can surface out of posting order (SRQ sharing,
// go-back-N recovery), so the pending list must be matched by WRID, not
// popped head-first — popping by count desyncs the list and makes
// restore replay the wrong receive WRs.
func TestAbsorbRetiresMatchingRecvWR(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 13}, "h")
	d := NewDaemon(cl.Host("h"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "p")
		s := NewSession(p, d)
		pd := s.AllocPD()
		cq := s.CreateCQ(64, nil)
		qp := s.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		phys := qp.v.QPN()
		qp.pendingRecvs = []rnic.RecvWR{{WRID: 10}, {WRID: 11}, {WRID: 12}}

		// A middle completion retires exactly its own WR.
		s.absorb(cq, rnic.CQE{QPN: phys, WRID: 11, Opcode: rnic.OpRecv, Status: rnic.WCSuccess})
		if got := recvWRIDs(qp.pendingRecvs); len(got) != 2 || got[0] != 10 || got[1] != 12 {
			t.Fatalf("pending after absorbing WRID 11: %v, want [10 12]", got)
		}
		// An already-retired (flush/duplicate) WRID leaves the list alone.
		s.absorb(cq, rnic.CQE{QPN: phys, WRID: 11, Opcode: rnic.OpRecv, Status: rnic.WCSuccess})
		if got := recvWRIDs(qp.pendingRecvs); len(got) != 2 {
			t.Fatalf("pending after duplicate absorb: %v, want [10 12]", got)
		}
		// Out-of-order completion of the tail, then the head.
		s.absorb(cq, rnic.CQE{QPN: phys, WRID: 12, Opcode: rnic.OpRecv, Status: rnic.WCSuccess})
		s.absorb(cq, rnic.CQE{QPN: phys, WRID: 10, Opcode: rnic.OpRecv, Status: rnic.WCSuccess})
		if got := recvWRIDs(qp.pendingRecvs); len(got) != 0 {
			t.Fatalf("pending after draining: %v, want empty", got)
		}
	})
	cl.Sched.RunFor(time.Second)
}

func recvWRIDs(pend []rnic.RecvWR) []uint64 {
	out := make([]uint64, 0, len(pend))
	for _, wr := range pend {
		out = append(out, wr.WRID)
	}
	return out
}

// TestRetireRecvWRFirstOccurrence pins the helper's contract directly:
// WRIDs recycle, so a match must retire the oldest posting, and a miss
// must return the slice unchanged.
func TestRetireRecvWRFirstOccurrence(t *testing.T) {
	pend := []rnic.RecvWR{{WRID: 5}, {WRID: 7}, {WRID: 5}}
	pend = retireRecvWR(pend, 5)
	if got := recvWRIDs(pend); len(got) != 2 || got[0] != 7 || got[1] != 5 {
		t.Fatalf("after retiring 5: %v, want [7 5]", got)
	}
	pend = retireRecvWR(pend, 99)
	if got := recvWRIDs(pend); len(got) != 2 {
		t.Fatalf("retiring unknown WRID changed the list: %v", got)
	}
}
