package core

import (
	"time"

	"migrrdma/internal/rnic"
)

// This file implements wait-before-stop (§3.4): when stop-and-copy is
// about to begin, the affected QPs are suspended (further posts are
// intercepted) and the library waits until every in-flight work request
// has completed, polling CQs on the application's behalf into fake CQs
// so the application can keep consuming completions and computing.
//
// The paper runs this on a dedicated thread spawned when the library is
// loaded; here it runs on the control daemon's handler proc, which is
// likewise a separate execution context from the application's procs —
// the observable behaviour (application keeps running, completions are
// preserved, termination conditions) is identical.

// WBSConfig tunes wait-before-stop.
type WBSConfig struct {
	// PollInterval is the pause between CQ sweep rounds.
	PollInterval time.Duration
	// PerCQE is the wait-before-stop thread's CPU cost to process one
	// completion. For small messages it dominates over wire drain time —
	// the §5.4 observation that at 512 B the measured time is ~6× the
	// inflight_bytes/link_rate theory value.
	PerCQE time.Duration
	// Timeout bounds wait-before-stop in spotty networks (§3.4
	// "Handling buggy network situations"); on expiry stop-and-copy
	// proceeds and leftover WRs are replayed after restoration.
	Timeout time.Duration
}

// DefaultWBSConfig returns the calibrated defaults.
func DefaultWBSConfig() WBSConfig {
	return WBSConfig{
		PollInterval: 2 * time.Microsecond,
		PerCQE:       300 * time.Nanosecond,
		Timeout:      2 * time.Second,
	}
}

// WBSResult reports one wait-before-stop execution.
type WBSResult struct {
	Elapsed  time.Duration
	TimedOut bool
	// LeftoverSends counts WRs still unfinished at timeout (0 on a
	// clean termination); they are replayed after restoration.
	LeftoverSends int
	// InflightBytes is the posted-but-uncompleted payload at suspension
	// time; InflightBytes/link_rate is the §5.4 theory value.
	InflightBytes int64
}

// Suspend raises the suspension flag of the given QPs: subsequent posts
// are intercepted and buffered (§3.4 "Communication suspension").
func (s *Session) Suspend(qps []*QP) {
	for _, qp := range qps {
		qp.suspended = true
		qp.suspendedOn = qp.v
	}
}

// SuspendAll suspends every QP of the session (the migrated service
// suspends all communication).
func (s *Session) SuspendAll() []*QP {
	var out []*QP
	for _, qp := range s.qps {
		out = append(out, qp)
	}
	s.sortQPs(out)
	s.Suspend(out)
	return out
}

// SuspendPeer suspends only the QPs connected to the given node (the
// partner side suspends just the communication destined for the
// migration source).
func (s *Session) SuspendPeer(node string) []*QP {
	var out []*QP
	for _, qp := range s.qps {
		if qp.typ == rnic.RC && qp.v.RemoteNode() == node {
			out = append(out, qp)
		}
	}
	s.sortQPs(out)
	s.Suspend(out)
	return out
}

// SuspendByPhys suspends exactly the session QPs whose current physical
// QPN is listed — the partner side of one identified migration. Unlike
// SuspendPeer it leaves QPs that merely share the peer node but belong
// to other (possibly also migrating) processes untouched; under
// concurrent migrations those would otherwise be suspended with nobody
// ever switching or resuming them.
func (s *Session) SuspendByPhys(qpns []uint32) []*QP {
	want := make(map[uint32]bool, len(qpns))
	for _, q := range qpns {
		want[q] = true
	}
	var out []*QP
	for _, qp := range s.qps {
		if qp.typ == rnic.RC && want[qp.v.QPN()] {
			out = append(out, qp)
		}
	}
	s.sortQPs(out)
	s.Suspend(out)
	return out
}

// sortQPs orders QPs by virtual QPN for deterministic iteration.
func (s *Session) sortQPs(qps []*QP) {
	for i := 1; i < len(qps); i++ {
		for j := i; j > 0 && qps[j-1].vqpn > qps[j].vqpn; j-- {
			qps[j-1], qps[j] = qps[j], qps[j-1]
		}
	}
}

// announceNSent sends each suspended QP's n_sent counter to its peer
// (§3.4: receive queues need the peer's posted count to decide there
// are no in-flight RECVs).
func (s *Session) announceNSent(qps []*QP) {
	for _, qp := range qps {
		if qp.typ != rnic.RC || qp.v.State() != rnic.StateRTS {
			continue
		}
		nSent, _ := qp.v.Counters()
		s.daemon.sendNSent(qp.v.RemoteNode(), qp.v.RemoteQPN(), nSent)
	}
}

// deliverNSent records a peer's n_sent for the local QP with the given
// physical QPN (called by the daemon).
func (s *Session) deliverNSent(physQPN uint32, nSent uint64) {
	for _, qp := range s.qps {
		if qp.v.QPN() == physQPN {
			qp.peerNSent = nSent
			qp.peerNSentKnown = true
			return
		}
	}
}

// WaitBeforeStop drains in-flight work on the given suspended QPs. It
// keeps polling every CQ of the session, parking completions in fake
// CQs, until for each QP: the SQ window is empty, the peer's n_sent
// equals the completed receive count, and no CQ events are unhandled —
// or until the timeout expires.
func (s *Session) WaitBeforeStop(qps []*QP, cfg WBSConfig) WBSResult {
	if cfg.PollInterval == 0 {
		cfg = DefaultWBSConfig()
	}
	sched := s.ctx.Scheduler()
	s.wbsDepth++
	defer func() { s.wbsDepth-- }()
	start := sched.Now()
	var inflight int64
	for _, qp := range qps {
		for _, wr := range qp.unfinished {
			for _, sge := range wr.SGEs {
				inflight += int64(sge.Len)
			}
		}
	}
	s.announceNSent(qps)
	for {
		if n := s.sweepCQs(); n > 0 && cfg.PerCQE > 0 {
			sched.Sleep(time.Duration(n) * cfg.PerCQE)
		}
		if s.wbsDone(qps) {
			return WBSResult{Elapsed: sched.Now() - start, InflightBytes: inflight}
		}
		if sched.Now()-start >= cfg.Timeout {
			left := 0
			for _, qp := range qps {
				left += len(qp.unfinished)
			}
			return WBSResult{Elapsed: sched.Now() - start, TimedOut: true, LeftoverSends: left, InflightBytes: inflight}
		}
		sched.Sleep(cfg.PollInterval)
	}
}

// sweepCQs moves pending real completions into the fake CQs, performing
// the library bookkeeping the application's own polling would do. It
// returns the number of completions processed so the caller can charge
// the per-CQE CPU cost.
func (s *Session) sweepCQs() int {
	s.mWBSRounds.Inc()
	n := 0
	for _, cq := range s.cqs {
		for {
			batch := cq.v.Poll(64)
			if len(batch) == 0 {
				break
			}
			for _, e := range batch {
				if s.staleCQE(e) {
					continue
				}
				s.absorb(cq, e)
				cq.fake = append(cq.fake, e)
			}
			n += len(batch)
		}
		s.mFakeDepth.Set(int64(len(cq.fake)))
	}
	s.mSweepCQEs.Add(int64(n))
	return n
}

// wbsDone evaluates the §3.4 termination conditions.
func (s *Session) wbsDone(qps []*QP) bool {
	if s.unhandledEvents != 0 {
		return false
	}
	for _, qp := range qps {
		if len(qp.unfinished) > 0 {
			return false
		}
		_, nRecv := qp.v.Counters()
		if qp.peerNSentKnown {
			if qp.peerNSent != nRecv {
				return false
			}
		} else if nRecv > 0 {
			// The peer has used two-sided verbs but its n_sent has not
			// arrived yet; wait for the announcement.
			return false
		}
	}
	return true
}

// Resume clears suspension and re-posts what accumulated during it:
// first the WRs that were posted but never completed (only present
// after a timed-out wait-before-stop), then the intercepted WRs, then
// the receive WRs that never saw a message (§3.2 step ⑦ and §3.4).
func (s *Session) Resume(qps []*QP) error {
	// Completions may have landed between wait-before-stop's last sweep
	// (or its timeout) and now; retire them first so their WRs are not
	// replayed below — the fake-CQ entry plus the replay's own completion
	// would double-count the WR.
	s.sweepCQs()
	anySwitched := false
	for _, qp := range qps {
		qp.suspended = false
		qp.peerNSentKnown = false
		// An in-place resume (abort rollback): the device QP that held
		// the work at suspension time is still qp.v, its SQ and RQ still
		// own every shadowed WR, and replaying them would double-post.
		// Only the intercepted WRs — which never reached the NIC — are
		// released below.
		sameDev := qp.suspendedOn == qp.v && qp.suspendedOn != nil
		qp.suspendedOn = nil
		if !sameDev {
			anySwitched = true
		}
		// Replay pending receives on the new QP.
		if qp.srq == nil && !sameDev {
			recvs := qp.pendingRecvs
			qp.pendingRecvs = nil
			for _, wr := range recvs {
				if err := qp.postRecv(wr); err != nil {
					return err
				}
			}
		}
		// Replay unfinished sends (timeout path), then intercepted WRs.
		var unfinished []rnic.SendWR
		if !sameDev {
			unfinished = qp.unfinished
			qp.unfinished = nil
		}
		intercepted := qp.intercepted
		qp.intercepted = nil
		// Leftover sends survive only a timed-out wait-before-stop. Their
		// original incarnation may still complete on the old QP after the
		// switch-over; remember the WRIDs so those stale completions are
		// dropped instead of double-counted.
		if len(unfinished) > 0 && qp.oldV != nil {
			oldPhys := qp.oldV.QPN()
			set := s.staleWRIDs[oldPhys]
			if set == nil {
				set = make(map[uint64]bool)
				s.staleWRIDs[oldPhys] = set
			}
			for _, wr := range unfinished {
				set[wr.WRID] = true
			}
		}
		s.mReplayedWRs.Add(int64(len(unfinished)))
		for _, wr := range append(unfinished, intercepted...) {
			if err := qp.postSend(wr); err != nil {
				return err
			}
		}
	}
	// SRQ pending receives are shared; replay them once — and only when
	// the resume actually moved to fresh devices (an in-place rollback
	// leaves them posted).
	if anySwitched {
		for _, srq := range s.srqs {
			pend := srq.pending
			srq.pending = nil
			for _, wr := range pend {
				if err := srq.postRecv(wr); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
