package core

import (
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/oob"
)

// oobAdapter binds the daemon's control protocol to the host's
// out-of-band hub.
type oobAdapter struct {
	ep *oob.Endpoint
}

// probeTimeout bounds the hello probe; a missing peer daemon (the §6
// hybrid case) shows up as a timed-out hello rather than a hang. Other
// control RPCs (suspension fan-out, partner pre-setup) legitimately
// block for as long as wait-before-stop or QP setup takes, so they
// carry no timeout.
const probeTimeout = 50 * time.Millisecond

func newOOBAdapter(h *cluster.Host) *oobAdapter {
	return &oobAdapter{ep: h.Hub.Endpoint(EndpointName)}
}

func (a *oobAdapter) Handle(kind string, h func(fromNode string, body []byte) []byte) {
	a.ep.Handle(kind, func(m oob.Msg) []byte { return h(m.FromNode, m.Body) })
}

func (a *oobAdapter) Call(toNode, kind string, body []byte) ([]byte, bool) {
	if kind == "hello" {
		return a.ep.CallTimeout(toNode, EndpointName, kind, body, probeTimeout)
	}
	return a.ep.CallTimeout(toNode, EndpointName, kind, body, 0)
}

func (a *oobAdapter) Send(toNode, kind string, body []byte) {
	a.ep.Send(toNode, EndpointName, kind, body)
}
