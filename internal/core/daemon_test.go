package core

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// newSessionHost builds one host with a daemon and a session holding a
// registered MR and an RTS-less QP, for handler-level tests.
func newSessionHost(t *testing.T) (*cluster.Cluster, *Daemon, *Session, *MR, *QP) {
	t.Helper()
	cl := cluster.New(cluster.Config{Seed: 5}, "h", "peer")
	d := NewDaemon(cl.Host("h"))
	NewDaemon(cl.Host("peer"))
	var s *Session
	var mr *MR
	var qp *QP
	cl.Sched.Go("setup", func() {
		p := task.New(cl.Sched, "p")
		s = NewSession(p, d)
		p.AS.Map(0x100000, 1<<16, "buf")
		pd := s.AllocPD()
		cq := s.CreateCQ(64, nil)
		var err error
		mr, err = s.RegMR(pd, 0x100000, 1<<16, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
		if err != nil {
			t.Error(err)
		}
		qp = s.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
	})
	cl.Sched.RunFor(50 * time.Millisecond)
	return cl, d, s, mr, qp
}

func TestFetchRKeyHandler(t *testing.T) {
	cl, d, _, mr, qp := newSessionHost(t)
	cl.Sched.Go("test", func() {
		// A peer asks: translate this virtual rkey of the process that
		// owns this physical QPN.
		resp := d.hFetchRKey("peer", enc(fetchRKeyReq{RQPN: qp.v.QPN(), VRKey: mr.RKey()}))
		var r fetchRKeyResp
		if err := dec(resp, &r); err != nil {
			t.Error(err)
			return
		}
		if r.Err != "" {
			t.Errorf("fetch-rkey error: %s", r.Err)
		}
		if r.Phys == mr.RKey() {
			t.Error("physical rkey equals the virtual one — no virtualization happened")
		}
		// An attacker guessing a virtual rkey the process never assigned
		// is rejected (§3.3 security note).
		resp = d.hFetchRKey("peer", enc(fetchRKeyReq{RQPN: qp.v.QPN(), VRKey: 0x7777}))
		dec(resp, &r)
		if r.Err == "" {
			t.Error("bogus virtual rkey resolved")
		}
		// An unknown QPN (no owning process) is rejected too.
		resp = d.hFetchRKey("peer", enc(fetchRKeyReq{RQPN: 0xABCDEF, VRKey: mr.RKey()}))
		dec(resp, &r)
		if r.Err == "" {
			t.Error("rkey fetch for unowned QPN resolved")
		}
	})
	cl.Sched.RunFor(time.Second)
}

func TestFetchQPNHandlerAndRedirect(t *testing.T) {
	cl, d, _, _, qp := newSessionHost(t)
	cl.Sched.Go("test", func() {
		resp := d.hFetchQPN("peer", enc(fetchQPNReq{VQPN: qp.VQPN()}))
		var r fetchQPNResp
		dec(resp, &r)
		if r.Err != "" || r.Node != "h" || r.Phys != qp.v.QPN() {
			t.Errorf("fetch-qpn = %+v", r)
		}
		// Simulate the owner having migrated away: the daemon redirects.
		d.movedVQPN[0x424242] = "elsewhere"
		resp = d.hFetchQPN("peer", enc(fetchQPNReq{VQPN: 0x424242}))
		dec(resp, &r)
		if r.Moved != "elsewhere" {
			t.Errorf("expected redirect, got %+v", r)
		}
		// Entirely unknown QPN errors.
		resp = d.hFetchQPN("peer", enc(fetchQPNReq{VQPN: 0x99999}))
		dec(resp, &r)
		if r.Err == "" {
			t.Error("unknown virtual QPN resolved")
		}
	})
	cl.Sched.RunFor(time.Second)
}

func TestNSentDelivery(t *testing.T) {
	cl, d, _, _, qp := newSessionHost(t)
	cl.Sched.Go("test", func() {
		d.hNSent("peer", enc(nsentMsg{DstQPN: qp.v.QPN(), NSent: 321}))
		if !qp.peerNSentKnown || qp.peerNSent != 321 {
			t.Errorf("nsent not delivered: known=%v val=%d", qp.peerNSentKnown, qp.peerNSent)
		}
	})
	cl.Sched.RunFor(time.Second)
}

func TestHelloAndPeerSupportsCache(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 5}, "a", "b", "bare")
	da := NewDaemon(cl.Host("a"))
	NewDaemon(cl.Host("b"))
	// "bare" runs no daemon at all.
	cl.Sched.Go("test", func() {
		if !da.PeerSupports("b") {
			t.Error("daemon-running peer reported unsupported")
		}
		if da.PeerSupports("bare") {
			t.Error("bare peer reported as MigrRDMA-capable")
		}
		// Cached: immediate second answer without another probe.
		start := cl.Sched.Now()
		if da.PeerSupports("bare") {
			t.Error("cache flipped the answer")
		}
		if cl.Sched.Now() != start {
			t.Error("cached PeerSupports consumed time (re-probed)")
		}
	})
	cl.Sched.RunFor(5 * time.Second)
}

func TestQPNTableSharedPerDevice(t *testing.T) {
	cl, d, s, _, qp := newSessionHost(t)
	cl.Sched.Go("test", func() {
		// The library translates through the daemon's shared table.
		v, ok := d.translateQPN(qp.v.QPN())
		if !ok || v != qp.VQPN() {
			t.Errorf("translateQPN = %#x,%v", v, ok)
		}
		// Unmapping (old QP fully drained) removes the entry.
		d.unmapQPN(qp.v.QPN())
		if _, ok := d.translateQPN(qp.v.QPN()); ok {
			t.Error("unmapped QPN still translates")
		}
		_ = s
	})
	cl.Sched.RunFor(time.Second)
}
