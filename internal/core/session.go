package core

import (
	"fmt"
	"sort"
	"time"

	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
	"migrrdma/internal/verbs"
)

// Session is the MigrRDMA Guest Lib instance loaded into one process
// (§3.1): the application-facing RDMA API. Everything the application
// sees — QP numbers, lkeys, rkeys — is a virtual value; the session
// translates to physical values on the data path using the tables the
// indirection layer shares, intercepts work requests while communication
// is suspended, and keeps fake CQs so completions survive migration.
//
// Application code holds Session/QP/CQ/MR wrappers across a migration;
// the CRIU plugin swaps the underlying verbs objects, which is exactly
// the transparency the paper's virtualization layer provides.
type Session struct {
	Proc   *task.Process
	daemon *Daemon
	ctx    *verbs.Context
	ind    *Indirection

	pds     map[verbs.ObjID]*PD
	mrs     map[verbs.ObjID]*MR
	cqs     []*CQ
	qps     map[verbs.ObjID]*QP
	srqs    map[verbs.ObjID]*SRQ
	mws     map[verbs.ObjID]*MW
	dms     map[verbs.ObjID]*DM
	chanMap map[verbs.ObjID]*CompChannel
	byVQPN  map[uint32]*QP

	lkeys keyTable // virtual lkey → physical
	rkeys keyTable // virtual rkey → physical (local MRs/MWs)

	// Remote-value caches (§3.3 "fetch from the remote side and cache it
	// locally"). rkeyCache is keyed by the peer's physical QPN (which
	// identifies the owning process) and the virtual rkey; qpnCache maps
	// (node, virtual QPN) for datagram sends and also carries the node
	// the QP currently lives on (it changes when the peer migrates).
	rkeyCache map[rkeyKey]uint32
	qpnCache  map[qpnKey]qpnVal

	// unhandledEvents counts CQ events delivered to the application but
	// not yet processed (§3.4 "Consistency of CQ events").
	unhandledEvents int

	// recvScratch is the receive-side translation buffer.
	recvScratch []rnic.SGE

	// wbsDepth counts wait-before-stop executions in progress: WBS
	// threads are then the sole consumers of the real CQs and
	// application polling is directed to the fake CQs (§3.4). It nests
	// because a node partnering two concurrent migrations runs one WBS
	// per suspend-for request on the same session, and the first to
	// finish must not re-open the real CQs under the other.
	wbsDepth int

	// activePollers counts procs currently blocked in CQ.WaitNonEmpty.
	// The chaos checker asserts it returns to zero after traffic stops:
	// no poller is left parked on a dead pre-migration CQ.
	activePollers int

	// staleWRIDs maps old physical QPNs (pre-switch incarnations) to the
	// WRIDs of leftover sends replayed after a timed-out wait-before-stop.
	// A late completion from the old QP matching one of these must be
	// dropped — the replay produces its own completion (§3.4 timeout
	// path).
	staleWRIDs map[uint32]map[uint64]bool

	// Metric handles, labeled by process name; the registry is the
	// cluster-wide one, so the series survive migration unchanged.
	mWBSRounds    *metrics.Counter
	mSweepCQEs    *metrics.Counter
	mIntercepts   *metrics.Counter
	mReplayedWRs  *metrics.Counter
	mStaleDropped *metrics.Counter
	mFakeDepth    *metrics.Gauge

	// stats for the virtualization-overhead evaluation.
	RKeyFetches int64

	// DisableRKeyCache forces a remote fetch on every one-sided post —
	// the ablation showing why §3.3 caches remote keys.
	DisableRKeyCache bool
}

type rkeyKey struct {
	node  string
	rqpn  uint32
	vrkey uint32
}

type qpnKey struct {
	node string
	vqpn uint32
}

type qpnVal struct {
	node string
	phys uint32
}

// NewSession loads the MigrRDMA library into process p on the daemon's
// host: it opens the device and installs the indirection layer as the
// control-path recorder.
func NewSession(p *task.Process, d *Daemon) *Session {
	s := &Session{
		Proc:       p,
		daemon:     d,
		ctx:        verbs.OpenDevice(d.dev, p.AS),
		ind:        NewIndirection(),
		pds:        make(map[verbs.ObjID]*PD),
		mrs:        make(map[verbs.ObjID]*MR),
		qps:        make(map[verbs.ObjID]*QP),
		srqs:       make(map[verbs.ObjID]*SRQ),
		mws:        make(map[verbs.ObjID]*MW),
		dms:        make(map[verbs.ObjID]*DM),
		chanMap:    make(map[verbs.ObjID]*CompChannel),
		byVQPN:     make(map[uint32]*QP),
		rkeyCache:  make(map[rkeyKey]uint32),
		qpnCache:   make(map[qpnKey]qpnVal),
		staleWRIDs: make(map[uint32]map[uint64]bool),
	}
	reg := d.registry()
	labels := metrics.Labels{"proc": p.Name}
	s.mWBSRounds = reg.Counter("core", "wbs_sweep_rounds", labels)
	s.mSweepCQEs = reg.Counter("core", "wbs_sweep_cqes", labels)
	s.mIntercepts = reg.Counter("core", "suspended_post_intercepts", labels)
	s.mReplayedWRs = reg.Counter("core", "restore_replayed_wrs", labels)
	s.mStaleDropped = reg.Counter("core", "stale_cqes_dropped", labels)
	s.mFakeDepth = reg.Gauge("core", "fake_cq_depth", labels)
	s.ctx.SetRecorder(s.ind)
	p.Attachment = s
	d.register(s)
	return s
}

// Daemon returns the host daemon the session is currently registered
// with (it changes when the process migrates).
func (s *Session) Daemon() *Daemon { return s.daemon }

// Node returns the fabric node the session currently runs on.
func (s *Session) Node() string { return s.daemon.Node() }

// --- Control path ------------------------------------------------------------

// PD is the guest-lib protection domain handle.
type PD struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.PD
}

// AllocPD allocates a protection domain.
func (s *Session) AllocPD() *PD {
	s.Proc.Gate()
	v := s.ctx.AllocPD()
	pd := &PD{sess: s, id: v.ID, v: v}
	s.pds[v.ID] = pd
	return pd
}

// MR is the guest-lib memory region handle. LKey and RKey return the
// virtual keys; the physical values stay inside the session.
type MR struct {
	sess         *Session
	id           verbs.ObjID
	v            *verbs.MR
	vlkey, vrkey uint32
}

// RegMR registers memory and assigns dense virtual keys (§3.3).
func (s *Session) RegMR(pd *PD, addr mem.Addr, length uint64, access rnic.Access) (*MR, error) {
	s.Proc.Gate()
	v, err := s.ctx.RegMR(pd.v, addr, length, access)
	if err != nil {
		return nil, err
	}
	mr := &MR{sess: s, id: v.ID, v: v}
	mr.vlkey = s.lkeys.assign(v.LKey())
	mr.vrkey = s.rkeys.assign(v.RKey())
	s.mrs[v.ID] = mr
	return mr, nil
}

// LKey returns the virtual local key the application posts with.
func (mr *MR) LKey() uint32 { return mr.vlkey }

// RKey returns the virtual remote key the application shares with
// communication partners.
func (mr *MR) RKey() uint32 { return mr.vrkey }

// Addr returns the registered base address.
func (mr *MR) Addr() mem.Addr { return mr.v.Addr() }

// Len returns the registered length.
func (mr *MR) Len() uint64 { return mr.v.Len() }

// Dereg deregisters the region.
func (mr *MR) Dereg() {
	mr.sess.Proc.Gate()
	mr.v.Dereg()
	delete(mr.sess.mrs, mr.id)
}

// MW is the guest-lib memory window handle with a virtual rkey.
type MW struct {
	sess  *Session
	id    verbs.ObjID
	v     *verbs.MW
	vrkey uint32
}

// BindMW binds a memory window; its rkey is virtualized like MR rkeys.
func (s *Session) BindMW(mr *MR, addr mem.Addr, length uint64, access rnic.Access) (*MW, error) {
	s.Proc.Gate()
	v, err := s.ctx.BindMW(mr.v, addr, length, access)
	if err != nil {
		return nil, err
	}
	mw := &MW{sess: s, id: v.ID, v: v, vrkey: s.rkeys.assign(v.RKey())}
	s.mws[v.ID] = mw
	return mw, nil
}

// RKey returns the window's virtual remote key.
func (mw *MW) RKey() uint32 { return mw.vrkey }

// DM is the guest-lib on-chip memory handle.
type DM struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.DM
}

// AllocDM allocates on-chip device memory mapped into the process.
func (s *Session) AllocDM(length uint64) (*DM, error) {
	s.Proc.Gate()
	v, err := s.ctx.AllocDM(length)
	if err != nil {
		return nil, err
	}
	dm := &DM{sess: s, id: v.ID, v: v}
	s.dms[v.ID] = dm
	return dm, nil
}

// Addr returns the virtual address the on-chip memory is mapped at; it
// is preserved across migration via mremap (§3.3).
func (dm *DM) Addr() mem.Addr { return dm.v.Addr }

// CompChannel is the guest-lib completion channel handle.
type CompChannel struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.CompChannel
}

// CreateCompChannel creates a completion event channel.
func (s *Session) CreateCompChannel() *CompChannel {
	s.Proc.Gate()
	v := s.ctx.CreateCompChannel()
	ch := &CompChannel{sess: s, id: v.ID, v: v}
	s.chanMap[v.ID] = ch
	return ch
}

// Get blocks for the next CQ event and returns the guest-lib CQ. The
// session counts the event as unhandled until the CQ is polled (§3.4).
// Like CQ.WaitNonEmpty, the wait is sliced so it survives the channel
// object being swapped at migration; during wait-before-stop, fake-CQ
// content substitutes for the stolen event.
func (ch *CompChannel) Get() *CQ {
	for {
		ch.sess.Proc.Gate()
		if vcq, ok := ch.v.TryGet(); ok {
			for _, cq := range ch.sess.cqs {
				if cq.v == vcq {
					// Count at most one unhandled event per CQ: a second
					// event (or a repeated Get) before the next Poll must
					// not drift the §3.4 consistency counter — Poll only
					// ever decrements it once per CQ.
					if !cq.eventPending {
						ch.sess.unhandledEvents++
						cq.eventPending = true
					}
					return cq
				}
			}
			continue
		}
		// An armed event may have been absorbed into a fake CQ by the
		// wait-before-stop thread; deliver it from there.
		for _, cq := range ch.sess.cqs {
			if cq.ch == ch && len(cq.fake) > 0 {
				if !cq.eventPending {
					ch.sess.unhandledEvents++
					cq.eventPending = true
				}
				return cq
			}
		}
		ch.sess.Proc.Scheduler().Sleep(cqWaitSlice)
	}
}

// CreateCQ creates a completion queue.
func (s *Session) CreateCQ(capacity int, ch *CompChannel) *CQ {
	s.Proc.Gate()
	var vch *verbs.CompChannel
	if ch != nil {
		vch = ch.v
	}
	v := s.ctx.CreateCQ(capacity, vch)
	cq := &CQ{sess: s, id: v.ID, v: v, cap: capacity, ch: ch, tempQPN: make(map[uint32]uint32)}
	s.cqs = append(s.cqs, cq)
	return cq
}

// SRQ is the guest-lib shared receive queue handle.
type SRQ struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.SRQ
	// pending holds receive WRs posted but not yet completed (virtual
	// keys), replayed after restore (§3.4).
	pending []rnic.RecvWR
}

// CreateSRQ creates a shared receive queue.
func (s *Session) CreateSRQ() *SRQ {
	s.Proc.Gate()
	v := s.ctx.CreateSRQ()
	srq := &SRQ{sess: s, id: v.ID, v: v}
	s.srqs[v.ID] = srq
	return srq
}

// PostRecv posts a receive WR to the shared queue.
func (srq *SRQ) PostRecv(wr rnic.RecvWR) error {
	srq.sess.Proc.Gate()
	return srq.postRecv(wr)
}

// postRecv is the gate-free SRQ post path (see QP.postSend).
func (srq *SRQ) postRecv(wr rnic.RecvWR) error {
	s := srq.sess
	pwr := wr
	if err := s.translateRecv(&pwr); err != nil {
		return err
	}
	srq.v.PostRecv(pwr)
	srq.pending = append(srq.pending, wr)
	return nil
}

// QPConfig mirrors the creation parameters of a queue pair.
type QPConfig struct {
	Type           rnic.QPType
	SendCQ, RecvCQ *CQ
	SRQ            *SRQ
	Caps           rnic.QPCaps
}

// CreateQP creates a queue pair. The returned QPN is virtual; MigrRDMA
// sets it equal to the physical QPN at creation time (§3.3) and keeps it
// stable across migrations while the physical value changes.
func (s *Session) CreateQP(pd *PD, cfg QPConfig) *QP {
	s.Proc.Gate()
	var vsrq *verbs.SRQ
	if cfg.SRQ != nil {
		vsrq = cfg.SRQ.v
	}
	v := s.ctx.CreateQP(pd.v, cfg.Type, cfg.SendCQ.v, cfg.RecvCQ.v, vsrq, cfg.Caps)
	qp := &QP{
		sess: s, id: v.ID, v: v,
		vqpn: v.QPN(), // virtual initially equals physical
		pd:   pd, sendCQ: cfg.SendCQ, recvCQ: cfg.RecvCQ, srq: cfg.SRQ,
		typ: cfg.Type, caps: cfg.Caps,
		peerMigr: true,
	}
	s.qps[v.ID] = qp
	s.byVQPN[qp.vqpn] = qp
	s.daemon.mapQPN(v.QPN(), qp.vqpn, s)
	return qp
}

// QP is the guest-lib queue pair handle.
type QP struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.QP
	vqpn uint32

	pd             *PD
	sendCQ, recvCQ *CQ
	srq            *SRQ
	typ            rnic.QPType
	caps           rnic.QPCaps

	// suspended gates the data path during migration (§3.4): posts are
	// intercepted and buffered instead of reaching the NIC.
	suspended   bool
	intercepted []rnic.SendWR

	// unfinished tracks send WRs handed to the NIC whose completion has
	// not been observed — the SQ head/tail window of §3.4. pendingRecvs
	// is the RQ equivalent, replayed after restore.
	unfinished   []rnic.SendWR
	pendingRecvs []rnic.RecvWR

	// peerNSent is the partner's n_sent counter received during
	// wait-before-stop; peerNSentKnown marks its arrival.
	peerNSent      uint64
	peerNSentKnown bool

	// peerMigr reports whether the peer runs MigrRDMA (§6 hybrid case);
	// when false, rkey values pass through untranslated.
	peerMigr bool

	// scratchSGE is the translation buffer for the post path.
	scratchSGE []rnic.SGE

	// lastVRKey/lastPhysRKey form a one-entry inline rkey cache on the
	// post path: consecutive one-sided posts typically target the same
	// MR, so translation is two compares instead of a map probe.
	lastVRKey    uint32
	lastPhysRKey uint32

	// pendingNew is a partner-side spare QP pre-connected to the
	// migration destination, activated at switch-over (§3.2).
	// pendingNewMig records which migration stashed it, so a switch-over
	// for one migration never activates spares another migration (on a
	// shared partner host) is still preparing.
	pendingNew    *verbs.QP
	pendingNewMig string
	// oldV is the partner-side previous QP kept until its completions
	// drain after a switch-over.
	oldV *verbs.QP
	// suspendedOn records which physical QP held the in-flight work when
	// the suspension began. Resume compares it with v: if they differ
	// (switch-over or restore re-pointed the wrapper) the shadowed
	// unfinished sends and pending receives must be replayed onto the
	// fresh ring; if they are the same device (abort rollback resumes in
	// place) the device still owns every one of them and a replay would
	// double-post.
	suspendedOn *verbs.QP
}

// VQPN returns the virtual queue pair number.
func (qp *QP) VQPN() uint32 { return qp.vqpn }

// Type returns the QP service type.
func (qp *QP) Type() rnic.QPType { return qp.typ }

// State returns the QP state.
func (qp *QP) State() rnic.QPState { return qp.v.State() }

// Suspended reports whether the data path is currently intercepted.
func (qp *QP) Suspended() bool { return qp.suspended }

// SetPeerSupport records the §6 negotiation result: whether the peer
// side runs MigrRDMA. Without it, rkeys pass through unvirtualized.
func (qp *QP) SetPeerSupport(ok bool) { qp.peerMigr = ok }

// Modify transitions the QP state machine. For RC RTR the remote QPN
// the application supplies is the peer's *virtual* QPN (what the peer's
// application exchanged out-of-band); the library translates it to the
// physical value the RNIC needs — the connection-setup translation of
// Table 1. When the peer does not run MigrRDMA (§6 negotiation) the
// value passes through untranslated.
func (qp *QP) Modify(attr rnic.ModifyAttr) error {
	s := qp.sess
	s.Proc.Gate()
	if attr.State == rnic.StateRTR && qp.typ == rnic.RC && attr.RemoteNode != "" {
		qp.peerMigr = s.daemon.PeerSupports(attr.RemoteNode)
		if qp.peerMigr {
			node, phys, err := s.resolveQPN(attr.RemoteNode, attr.RemoteQPN)
			if err != nil {
				return err
			}
			attr.RemoteNode, attr.RemoteQPN = node, phys
		}
	}
	return qp.v.Modify(attr)
}

// PostSend posts a send work request with virtual keys. While the QP is
// suspended the WR is intercepted and buffered, and the call returns as
// if the WR had been posted (§3.4 keeps RDMA's asynchronous semantics).
func (qp *QP) PostSend(wr rnic.SendWR) error {
	qp.sess.Proc.Gate()
	return qp.postSend(wr)
}

// postSend is the gate-free post path, also used by the library itself
// when replaying WRs during restoration (the process is still frozen
// then; the library is not).
func (qp *QP) postSend(wr rnic.SendWR) error {
	s := qp.sess
	if qp.suspended {
		qp.intercepted = append(qp.intercepted, wr)
		s.mIntercepts.Inc()
		return nil
	}
	pwr := wr
	if err := s.translateSend(qp, &pwr); err != nil {
		return err
	}
	if err := qp.v.PostSend(pwr); err != nil {
		return err
	}
	qp.unfinished = append(qp.unfinished, wr)
	return nil
}

// PostRecv posts a receive work request with virtual keys.
func (qp *QP) PostRecv(wr rnic.RecvWR) error {
	qp.sess.Proc.Gate()
	return qp.postRecv(wr)
}

// postRecv is the gate-free receive post path (see postSend).
func (qp *QP) postRecv(wr rnic.RecvWR) error {
	s := qp.sess
	if qp.srq != nil {
		return fmt.Errorf("core: QP uses an SRQ; post to the SRQ")
	}
	pwr := wr
	if err := s.translateRecv(&pwr); err != nil {
		return err
	}
	if err := qp.v.PostRecv(pwr); err != nil {
		return err
	}
	qp.pendingRecvs = append(qp.pendingRecvs, wr)
	return nil
}

// Outstanding reports send WRs posted to the NIC whose completions have
// not been observed.
func (qp *QP) Outstanding() int { return len(qp.unfinished) }

// --- Data-path translation ----------------------------------------------------

// translateSend maps a work request from virtual to physical values:
// SGE lkeys through the dense array, the rkey through the remote cache,
// and (for UD) the remote QPN through the QPN cache. The translated
// gather list lives in a per-QP scratch buffer — the device copies the
// WQE at post time, so no allocation is needed on the hot path (the
// array-translation design of §3.3 exists precisely to keep this cheap).
// It mutates *wr in place — the caller owns its copy of the work
// request and the device copies the gather list at post time, so the
// whole translation is a scratch-buffer fill with no allocation (the
// §3.3 dense-array design exists to keep exactly this path cheap).
func (s *Session) translateSend(qp *QP, wr *rnic.SendWR) error {
	if n := len(wr.SGEs); n > 0 {
		if cap(qp.scratchSGE) < n {
			qp.scratchSGE = make([]rnic.SGE, n)
		}
		dst := qp.scratchSGE[:n]
		for i := range wr.SGEs {
			phys, ok := s.lkeys.lookup(wr.SGEs[i].LKey)
			if !ok {
				return fmt.Errorf("core: unknown virtual lkey %#x", wr.SGEs[i].LKey)
			}
			dst[i] = wr.SGEs[i]
			dst[i].LKey = phys
		}
		wr.SGEs = dst
	}
	if wr.Opcode.IsOneSided() || wr.Opcode == rnic.OpWriteImm {
		rkey, err := s.resolveRKey(qp, wr.RKey)
		if err != nil {
			return err
		}
		wr.RKey = rkey
	}
	if qp.typ == rnic.UD {
		node, rqpn, err := s.resolveQPN(wr.RemoteNode, wr.RemoteQPN)
		if err != nil {
			return err
		}
		wr.RemoteNode = node
		wr.RemoteQPN = rqpn
	}
	return nil
}

// translateRecv maps receive SGE lkeys to physical values (into the
// session-level receive scratch; the device copies at post time).
func (s *Session) translateRecv(wr *rnic.RecvWR) error {
	if n := len(wr.SGEs); n > 0 {
		if cap(s.recvScratch) < n {
			s.recvScratch = make([]rnic.SGE, n)
		}
		dst := s.recvScratch[:n]
		for i := range wr.SGEs {
			phys, ok := s.lkeys.lookup(wr.SGEs[i].LKey)
			if !ok {
				return fmt.Errorf("core: unknown virtual lkey %#x", wr.SGEs[i].LKey)
			}
			dst[i] = wr.SGEs[i]
			dst[i].LKey = phys
		}
		wr.SGEs = dst
	}
	return nil
}

// resolveRKey translates a virtual rkey of the peer process to its
// physical value, fetching it out-of-band on first use (§3.3).
func (s *Session) resolveRKey(qp *QP, vrkey uint32) (uint32, error) {
	if !qp.peerMigr {
		return vrkey, nil // §6 hybrid: peer keys are physical already
	}
	if !s.DisableRKeyCache && vrkey == qp.lastVRKey && qp.lastPhysRKey != 0 {
		return qp.lastPhysRKey, nil
	}
	node, rqpn := qp.v.RemoteNode(), qp.v.RemoteQPN()
	k := rkeyKey{node: node, rqpn: rqpn, vrkey: vrkey}
	if !s.DisableRKeyCache {
		if phys, ok := s.rkeyCache[k]; ok {
			qp.lastVRKey, qp.lastPhysRKey = vrkey, phys
			return phys, nil
		}
	}
	phys, err := s.daemon.fetchRKey(node, rqpn, vrkey)
	if err != nil {
		return 0, err
	}
	s.RKeyFetches++
	s.rkeyCache[k] = phys
	qp.lastVRKey, qp.lastPhysRKey = vrkey, phys
	return phys, nil
}

// resolveQPN translates a (node, virtual QPN) datagram destination to
// the node and physical QPN it currently lives at.
func (s *Session) resolveQPN(node string, vqpn uint32) (string, uint32, error) {
	k := qpnKey{node: node, vqpn: vqpn}
	if v, ok := s.qpnCache[k]; ok {
		return v.node, v.phys, nil
	}
	curNode, phys, err := s.daemon.fetchQPN(node, vqpn)
	if err != nil {
		return "", 0, err
	}
	s.qpnCache[k] = qpnVal{node: curNode, phys: phys}
	return curNode, phys, nil
}

// InvalidateRemoteCaches drops cached rkey/QPN translations that point
// at the given node (the migration source invalidates its partners'
// caches, §3.3).
func (s *Session) InvalidateRemoteCaches(node string) {
	for _, qp := range s.qps {
		if qp.v.RemoteNode() == node {
			qp.lastVRKey, qp.lastPhysRKey = 0, 0
		}
	}
	for k := range s.rkeyCache {
		if k.node == node {
			delete(s.rkeyCache, k)
		}
	}
	for k := range s.qpnCache {
		if k.node == node {
			delete(s.qpnCache, k)
		}
	}
}

// --- Completion path -----------------------------------------------------------

// CQ is the guest-lib completion queue handle.
type CQ struct {
	sess *Session
	id   verbs.ObjID
	v    *verbs.CQ
	cap  int
	ch   *CompChannel

	// fake is the fake CQ of §3.4: completions the wait-before-stop
	// thread consumed on the application's behalf, still untranslated.
	fake []rnic.CQE
	// tempQPN translates old physical QPNs (from before a migration)
	// found in fake or drained completions.
	tempQPN map[uint32]uint32

	eventPending bool
}

// Poll returns up to max completions with virtual QPNs, draining the
// fake CQ before the real one (§3.4).
func (cq *CQ) Poll(max int) []rnic.CQE {
	s := cq.sess
	s.Proc.Gate()
	if cq.eventPending {
		cq.eventPending = false
		s.unhandledEvents--
	}
	var out []rnic.CQE
	for len(out) < max && len(cq.fake) > 0 {
		e := cq.fake[0]
		cq.fake = cq.fake[1:]
		s.translateFakeCQE(cq, &e)
		out = append(out, e)
	}
	if len(cq.fake) == 0 && len(cq.tempQPN) > 0 {
		// Every pre-migration completion has been consumed; drop the
		// temporary table so a future QP that happens to reuse one of the
		// old numbers is not mistranslated.
		cq.tempQPN = make(map[uint32]uint32)
	}
	// During wait-before-stop the application polls the fake CQ only;
	// the WBS thread owns the real CQ (§3.4).
	if len(out) < max && !s.wbsActive() {
		for _, e := range cq.v.Poll(max - len(out)) {
			if s.staleCQE(e) {
				continue
			}
			s.absorb(cq, e)
			s.translateCQE(cq, &e)
			out = append(out, e)
		}
	}
	return out
}

// staleCQE reports whether e is a late completion from a pre-switch QP
// incarnation whose WR was already replayed after a timed-out
// wait-before-stop; delivering it would double-count the WR, since the
// replay produces its own completion on the new QP.
func (s *Session) staleCQE(e rnic.CQE) bool {
	if e.Opcode == rnic.OpRecv {
		return false
	}
	set, ok := s.staleWRIDs[e.QPN]
	if !ok || !set[e.WRID] {
		return false
	}
	delete(set, e.WRID)
	if len(set) == 0 {
		delete(s.staleWRIDs, e.QPN)
	}
	s.mStaleDropped.Inc()
	return true
}

// Len reports the completions the application may poll right now: the
// fake CQ plus — outside wait-before-stop — the real CQ (§3.4: during
// WBS the application is directed to the fake CQ only).
func (cq *CQ) Len() int {
	if cq.sess.wbsActive() {
		return len(cq.fake)
	}
	return len(cq.fake) + cq.v.Len()
}

// wbsActive reports whether any wait-before-stop is draining this
// session's real CQs right now.
func (s *Session) wbsActive() bool { return s.wbsDepth > 0 }

// WaitNonEmpty parks the caller until completions are available. It
// re-checks the freeze gate and the (migration-swappable) underlying CQ
// periodically, so an application blocked here survives a live
// migration: during the blackout it parks on the freeze gate, and after
// restoration it observes the fake CQ or the new real CQ.
func (cq *CQ) WaitNonEmpty() {
	cq.sess.activePollers++
	defer func() { cq.sess.activePollers-- }()
	for {
		cq.sess.Proc.Gate()
		if len(cq.fake) > 0 || (!cq.sess.wbsActive() && cq.v.Len() > 0) {
			return
		}
		if cq.sess.wbsActive() {
			// The real CQ belongs to the WBS thread right now; it may be
			// non-empty, so waiting on it would return immediately and
			// spin. Pace on the clock until entries reach the fake CQ.
			cq.sess.Proc.Scheduler().Sleep(cqWaitSlice)
			continue
		}
		cq.v.WaitNonEmptyTimeout(cqWaitSlice)
	}
}

// cqWaitSlice bounds how long a completion wait can remain attached to
// a pre-migration CQ object.
const cqWaitSlice = 100 * time.Microsecond

// ReqNotify arms the CQ for an event.
func (cq *CQ) ReqNotify() { cq.v.ReqNotify() }

// ActivePollers reports how many procs are blocked in WaitNonEmpty on
// any of the session's CQs. After traffic quiesces it must be zero —
// the "every poller drains" invariant of the chaos harness.
func (s *Session) ActivePollers() int { return s.activePollers }

// translateCQE rewrites the physical QPN in a completion to the virtual
// one in place, consulting the temporary table for pre-migration QPNs
// (§3.4). The fast path is one read of the shared physical→virtual
// array (§3.3).
func (s *Session) translateCQE(cq *CQ, e *rnic.CQE) {
	if v, ok := s.daemon.qpn.lookup(e.QPN); ok {
		e.QPN = v
		return
	}
	if v, ok := cq.tempQPN[e.QPN]; ok {
		e.QPN = v
	}
}

// translateFakeCQE translates a fake-CQ entry. Entries parked during
// wait-before-stop carry the *source* device's physical QPNs, and each
// device numbers QPs independently, so after a migration the
// destination's live table may map the same number to an unrelated QP;
// the temporary table installed at restore time must win.
func (s *Session) translateFakeCQE(cq *CQ, e *rnic.CQE) {
	if v, ok := cq.tempQPN[e.QPN]; ok {
		e.QPN = v
		return
	}
	if v, ok := s.daemon.qpn.lookup(e.QPN); ok {
		e.QPN = v
	}
}

// absorb performs the library bookkeeping for one raw completion: it
// pops the SQ window (a completion for WR k retires every WR ≤ k, which
// is how unsignaled WRs are accounted) or the RQ/SRQ pending list.
func (s *Session) absorb(cq *CQ, e rnic.CQE) {
	vq := e.QPN
	if v, ok := s.daemon.translateQPN(e.QPN); ok {
		vq = v
	} else if v, ok := cq.tempQPN[e.QPN]; ok {
		vq = v
	}
	qp, ok := s.byVQPN[vq]
	if !ok {
		return
	}
	if e.Opcode == rnic.OpRecv {
		if qp.srq != nil {
			qp.srq.pending = retireRecvWR(qp.srq.pending, e.WRID)
			return
		}
		qp.pendingRecvs = retireRecvWR(qp.pendingRecvs, e.WRID)
		return
	}
	for i, wr := range qp.unfinished {
		if wr.WRID == e.WRID {
			qp.unfinished = qp.unfinished[i+1:]
			return
		}
	}
	// A flush/error completion may not match (already popped); ignore.
}

// retireRecvWR removes the first pending receive WR matching the
// completed WRID. Receive completions are one per WR (never coalesced
// like unsignaled sends) but can surface out of posting order — across
// an SRQ shared by several QPs, or after go-back-N recovery — so the
// list is matched like the SQ path rather than popped head-first;
// popping by count would desync the list and make restore replay the
// wrong receive WRs. Recv WRIDs recycle, so the first occurrence is the
// oldest posting; an error/flush completion whose WR was already
// retired leaves the list untouched.
func retireRecvWR(pend []rnic.RecvWR, wrid uint64) []rnic.RecvWR {
	for i := range pend {
		if pend[i].WRID == wrid {
			return append(pend[:i], pend[i+1:]...)
		}
	}
	return pend
}

// Sched is a convenience accessor for workloads built on the session.
func (s *Session) Sched() *sim.Scheduler { return s.ctx.Scheduler() }

// Close tears the session down: every live resource is destroyed
// through the control path (deleting its roadmap records) and the
// session is removed from the host daemon's registries. Applications
// call it at exit; the migration source instead uses the plugin's
// ReclaimSource, which retires the superseded physical resources while
// the session itself lives on at the destination.
func (s *Session) Close() {
	s.Proc.Gate()
	for _, qp := range s.sortedQPs() {
		// A teardown can land mid-migration: the wrapper may still hold
		// the pre-switch incarnation (kept until its completions drain)
		// or a stashed partner spare. Both are live physical QPs with
		// daemon-table entries; destroying only the active incarnation
		// leaks them on the device — the many-session teardown leak.
		if qp.oldV != nil {
			oldPhys := qp.oldV.QPN()
			qp.oldV.Destroy()
			s.daemon.unmapQPN(oldPhys)
			qp.oldV = nil
		}
		if spare := qp.pendingNew; spare != nil {
			qp.pendingNew = nil
			qp.pendingNewMig = ""
			delete(s.daemon.pendingNSent, spare.QPN())
			spare.Destroy()
		}
		phys := qp.v.QPN()
		qp.v.Destroy()
		s.daemon.unmapQPN(phys)
		delete(s.qps, qp.id)
		delete(s.byVQPN, qp.vqpn)
	}
	// Every remaining class tears down in ObjID (creation) order: map
	// iteration order would vary across runs, and the destroy records it
	// emits feed the deterministic trace/metrics hashes.
	for _, id := range sortedObjIDs(s.mws) {
		s.mws[id].v.Dealloc()
		delete(s.mws, id)
	}
	for _, id := range sortedObjIDs(s.mrs) {
		s.mrs[id].v.Dereg()
		delete(s.mrs, id)
	}
	for _, id := range sortedObjIDs(s.dms) {
		s.dms[id].v.Free()
		delete(s.dms, id)
	}
	for _, id := range sortedObjIDs(s.srqs) {
		s.srqs[id].v.Destroy()
		delete(s.srqs, id)
	}
	for _, cq := range s.cqs {
		cq.v.Destroy()
	}
	s.cqs = nil
	for _, id := range sortedObjIDs(s.pds) {
		s.pds[id].v.Dealloc()
		delete(s.pds, id)
	}
	s.daemon.unregister(s)
}

// sortedObjIDs returns the map's keys in ascending ObjID order.
func sortedObjIDs[T any](m map[verbs.ObjID]T) []verbs.ObjID {
	ids := make([]verbs.ObjID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
