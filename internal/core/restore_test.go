package core

import (
	"strings"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/criu"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
	"migrrdma/internal/verbs"
)

// ghostRestore builds a Restore target backed by a fresh (empty)
// address space, the state RestoreContext sees before CRIU maps
// anything.
func ghostRestore(cl *cluster.Cluster, name string) *criu.Restore {
	p := task.New(cl.Sched, name)
	return &criu.Restore{Proc: p, AS: p.AS}
}

func TestRestoreReplayMissingDependencies(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 7}, "d")
	d := NewDaemon(cl.Host("d"))
	cl.Sched.Go("test", func() {
		cases := []struct {
			name string
			recs []RecordDTO
			want string
		}{
			{"mr-missing-pd", []RecordDTO{
				{Ev: verbs.Event{Kind: verbs.EvRegMR, ID: 10, PD: 99, Addr: 0x100000, Len: 4096}},
			}, "missing PD"},
			{"qp-missing-pd", []RecordDTO{
				{Ev: verbs.Event{Kind: verbs.EvCreateQP, ID: 20, PD: 99, QPType: rnic.RC}},
			}, "missing PD"},
			{"qp-missing-cqs", []RecordDTO{
				{Ev: verbs.Event{Kind: verbs.EvAllocPD, ID: 1}},
				{Ev: verbs.Event{Kind: verbs.EvCreateQP, ID: 20, PD: 1, SendCQ: 5, RecvCQ: 6, QPType: rnic.RC}},
			}, "missing CQs"},
		}
		for _, tc := range cases {
			st, err := d.RestoreContext(ghostRestore(cl, "ghost-"+tc.name), nil, &Blob{Proc: tc.name, Records: tc.recs})
			if err != nil {
				t.Errorf("%s: RestoreContext: %v", tc.name, err)
				continue
			}
			err = st.Replay()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: Replay err = %v, want %q", tc.name, err, tc.want)
			}
		}
	})
	cl.Sched.RunFor(time.Second)
}

func TestRestoreDeferredMRResolvesOrFails(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 8}, "d")
	d := NewDaemon(cl.Host("d"))
	cl.Sched.Go("test", func() {
		recs := []RecordDTO{
			{Ev: verbs.Event{Kind: verbs.EvAllocPD, ID: 1}},
			{Ev: verbs.Event{Kind: verbs.EvRegMR, ID: 2, PD: 1, Addr: 0x200000, Len: 4096,
				Access: rnic.AccessLocalWrite | rnic.AccessRemoteWrite}},
			{Ev: verbs.Event{Kind: verbs.EvBindMW, ID: 3, MR: 2, Addr: 0x200000, Len: 1024,
				Access: rnic.AccessRemoteWrite}},
		}

		// The MR's backing memory never shows up: the stale roadmap entry
		// must surface as an applyFinal error, not restore silently with
		// no backing pages.
		st, err := d.RestoreContext(ghostRestore(cl, "g1"), nil, &Blob{Proc: "p1", Records: recs})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Replay(); err != nil {
			t.Fatalf("replay of deferrable records failed eagerly: %v", err)
		}
		if len(st.deferred) != 2 {
			t.Fatalf("deferred %d records (MR + dependent MW), want 2", len(st.deferred))
		}
		err = st.applyFinal(&Blob{Proc: "p1", Final: true})
		if err == nil || !strings.Contains(err.Error(), "unmappable") {
			t.Fatalf("applyFinal with unmappable MR: err = %v", err)
		}

		// Same roadmap, but the memory arrives (CRIU finalizes) before the
		// stop-and-copy merge: the deferred chain restores completely.
		r2 := ghostRestore(cl, "g2")
		st2, err := d.RestoreContext(r2, nil, &Blob{Proc: "p2", Records: recs})
		if err != nil {
			t.Fatal(err)
		}
		if err := st2.Replay(); err != nil {
			t.Fatal(err)
		}
		r2.AS.Map(0x200000, 1<<16, "late-pages")
		if err := st2.applyFinal(&Blob{Proc: "p2", Final: true}); err != nil {
			t.Fatalf("applyFinal after memory arrived: %v", err)
		}
		if st2.mrs[2] == nil || st2.mws[3] == nil {
			t.Errorf("deferred chain not restored: mr=%v mw=%v", st2.mrs[2], st2.mws[3])
		}
	})
	cl.Sched.RunFor(time.Second)
}

func TestBindRejectsUnstagedObjects(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 9}, "a", "dst")
	da := NewDaemon(cl.Host("a"))
	dd := NewDaemon(cl.Host("dst"))
	cl.Sched.Go("test", func() {
		p := task.New(cl.Sched, "app")
		s := NewSession(p, da)
		p.AS.Map(0x100000, 1<<20, "buf")
		pd := s.AllocPD()
		cq := s.CreateCQ(64, nil)
		if _, err := s.RegMR(pd, 0x100000, 1<<16, rnic.AccessLocalWrite); err != nil {
			t.Fatal(err)
		}
		s.CreateQP(pd, QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})

		// A corrupted checkpoint: the MR's creation record is gone from
		// the roadmap, so the restore stages everything except the MR the
		// session still holds. bind must refuse the swap, not leave a
		// wrapper pointing at a source-side object.
		blob := s.Checkpoint(false)
		kept := blob.Records[:0]
		for _, rec := range blob.Records {
			if rec.Ev.Kind != verbs.EvRegMR {
				kept = append(kept, rec)
			}
		}
		blob.Records = kept
		st, err := dd.RestoreContext(ghostRestore(cl, "ghost"), nil, blob)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Replay(); err != nil {
			t.Fatal(err)
		}
		err = st.bind(s)
		if err == nil || !strings.Contains(err.Error(), "not staged") {
			t.Fatalf("bind with unstaged MR: err = %v", err)
		}
	})
	cl.Sched.RunFor(time.Second)
}

// restoreRig is a two-host pair with the protection domains exposed, so
// tests can re-run the bind-time key rebinding by hand.
type restoreRig struct {
	cl       *cluster.Cluster
	sa, sb   *Session
	pdB      *PD
	qpA      *QP
	cqA      *CQ
	mrA, mrB *MR
}

func newRestoreRig(t *testing.T, seed int64) *restoreRig {
	t.Helper()
	cl := cluster.New(cluster.Config{Seed: seed}, "a", "b")
	da, db := NewDaemon(cl.Host("a")), NewDaemon(cl.Host("b"))
	r := &restoreRig{cl: cl}
	cl.Sched.Go("setup", func() {
		pa, pb := task.New(cl.Sched, "pa"), task.New(cl.Sched, "pb")
		r.sa, r.sb = NewSession(pa, da), NewSession(pb, db)
		pa.AS.Map(0x100000, 1<<20, "buf")
		pb.AS.Map(0x100000, 1<<20, "buf")
		pdA := r.sa.AllocPD()
		r.pdB = r.sb.AllocPD()
		r.cqA = r.sa.CreateCQ(256, nil)
		cqB := r.sb.CreateCQ(256, nil)
		var err error
		if r.mrA, err = r.sa.RegMR(pdA, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite); err != nil {
			t.Error(err)
		}
		if r.mrB, err = r.sb.RegMR(r.pdB, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite); err != nil {
			t.Error(err)
		}
		r.qpA = r.sa.CreateQP(pdA, QPConfig{Type: rnic.RC, SendCQ: r.cqA, RecvCQ: r.cqA})
		qpB := r.sb.CreateQP(r.pdB, QPConfig{Type: rnic.RC, SendCQ: cqB, RecvCQ: cqB})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		qpB.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "b", RemoteQPN: qpB.VQPN()})
		qpB.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "a", RemoteQPN: r.qpA.VQPN()})
		r.qpA.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		qpB.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
	})
	cl.Sched.RunFor(100 * time.Millisecond)
	return r
}

func (r *restoreRig) write(t *testing.T, id uint64) {
	t.Helper()
	err := r.qpA.PostSend(rnic.SendWR{
		WRID: id, Opcode: rnic.OpWrite, Signaled: true,
		SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 512, LKey: r.mrA.LKey()}},
		RemoteAddr: 0x100000, RKey: r.mrB.RKey(),
	})
	if err != nil {
		t.Fatalf("write %d: %v", id, err)
	}
	r.cqA.WaitNonEmpty()
	for _, e := range r.cqA.Poll(4) {
		if e.Status != rnic.WCSuccess {
			t.Fatalf("write %d completed %v", id, e.Status)
		}
	}
}

// rebindMRB re-runs what Staged.bind does to B's MR when B's process is
// restored on a new device: a fresh physical registration is slid under
// the same virtual keys and the old one is reclaimed. Every remote
// cache holding the old physical rkey is stale from this point on.
func (r *restoreRig) rebindMRB(t *testing.T) uint32 {
	t.Helper()
	old := r.mrB.v
	nv, err := r.sb.ctx.RegMR(r.pdB.v, old.Addr(), old.Len(), rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	r.mrB.v = nv
	r.sb.lkeys.update(r.mrB.vlkey, nv.LKey())
	r.sb.rkeys.update(r.mrB.vrkey, nv.RKey())
	old.Dereg()
	return nv.RKey()
}

func TestStaleRKeyCacheAcrossRebind(t *testing.T) {
	r := newRestoreRig(t, 11)
	r.cl.Sched.Go("test", func() {
		r.write(t, 1)
		if r.sa.RKeyFetches != 1 {
			t.Fatalf("RKeyFetches = %d after first write, want 1", r.sa.RKeyFetches)
		}
		stale, err := r.sa.resolveRKey(r.qpA, r.mrB.RKey())
		if err != nil {
			t.Fatal(err)
		}
		if r.sa.RKeyFetches != 1 {
			t.Fatal("cached rkey re-fetched")
		}

		newPhys := r.rebindMRB(t)
		if newPhys == stale {
			t.Fatal("rebind produced the same physical rkey — staleness not exercised")
		}
		// Without invalidation A still resolves to the reclaimed key: the
		// stale entry survives and would be rejected by B's device.
		got, err := r.sa.resolveRKey(r.qpA, r.mrB.RKey())
		if err != nil {
			t.Fatal(err)
		}
		if got != stale {
			t.Fatalf("resolve without invalidation = %#x, want stale %#x", got, stale)
		}

		// InvalidateRemoteCaches (what hSwitch runs on partners) drops
		// both the per-QP fast path and the cache; the next resolve
		// re-fetches the live key and traffic flows again.
		r.sa.InvalidateRemoteCaches("b")
		got, err = r.sa.resolveRKey(r.qpA, r.mrB.RKey())
		if err != nil {
			t.Fatal(err)
		}
		if got != newPhys {
			t.Fatalf("post-invalidation resolve = %#x, want %#x", got, newPhys)
		}
		if r.sa.RKeyFetches != 2 {
			t.Fatalf("RKeyFetches = %d, want 2 (exactly one re-fetch)", r.sa.RKeyFetches)
		}
		r.write(t, 2)
	})
	r.cl.Sched.RunFor(5 * time.Second)
}

func TestInvalidationRacingTraffic(t *testing.T) {
	r := newRestoreRig(t, 12)
	done := false
	r.cl.Sched.Go("invalidator", func() {
		// Hammer invalidations while writes are in flight: worst-case
		// interleaving of a partner switch-over against the data path.
		for !done {
			r.sa.InvalidateRemoteCaches("b")
			r.cl.Sched.Sleep(30 * time.Microsecond)
		}
	})
	r.cl.Sched.Go("writer", func() {
		defer func() { done = true }()
		for i := 0; i < 20; i++ {
			r.write(t, uint64(i))
		}
		if r.sa.RKeyFetches < 2 {
			t.Errorf("RKeyFetches = %d; invalidation never forced a re-fetch (race not exercised)", r.sa.RKeyFetches)
		}
	})
	r.cl.Sched.RunFor(10 * time.Second)
	if !done {
		t.Fatal("writer did not finish")
	}
}
