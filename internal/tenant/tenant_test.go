package tenant

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// rig is a three-host testbed: the gateway on "gw", the service
// container on "src", with "dst" available as a migration target.
type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
	svc     *Service
	gw      *Gateway
	svcCont *runc.Container
	gwCont  *runc.Container
}

func newRig(t *testing.T, seed int64, opts Options) *rig {
	t.Helper()
	cl := cluster.New(cluster.FastCheckpointTestbed(seed), "gw", "src", "dst")
	r := &rig{cl: cl, daemons: make(map[string]*core.Daemon)}
	for _, n := range cl.Names() {
		r.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	r.svc = NewService(cl.Sched, "svc", opts)
	r.gw = NewGateway(cl.Sched, "gw", opts, Target{Node: "src", Name: "svc"})
	r.svcCont = runc.NewContainer(cl.Host("src"), "svc-cont")
	r.svcCont.Start(func(tp *task.Process) { r.svc.Run(tp, r.daemons["src"]) })
	r.gwCont = runc.NewContainer(cl.Host("gw"), "gw-cont")
	cl.Sched.Go("start-gw", func() {
		r.svc.WaitReady()
		r.gwCont.Start(func(tp *task.Process) { r.gw.Run(tp, r.daemons["gw"]) })
	})
	return r
}

func (r *rig) finish(t *testing.T) {
	t.Helper()
	r.gw.Stop()
	r.gw.Wait()
	r.svc.Stop()
}

// TestRoundTrip pumps data operations from every session and checks
// the full exactly-once ledger on both sides.
func TestRoundTrip(t *testing.T) {
	opts := Options{Sessions: 12, Lanes: 3, LaneDepth: 8}
	r := newRig(t, 31, opts)
	const perSession = 20
	r.cl.Sched.Go("driver", func() {
		r.gw.WaitReady()
		r.gw.SubmitAll(perSession)
		r.gw.Drain()
		for i := 0; i < r.gw.NumSessions(); i++ {
			s := r.gw.Session(i)
			if s.AckedOK != perSession {
				t.Errorf("session %d: %d acked, want %d", s.ID, s.AckedOK, perSession)
			}
		}
		if v := r.gw.CheckInvariants(); len(v) != 0 {
			t.Errorf("invariants: %v", v)
		}
		if got := r.svc.Stats.Acked; got != int64(opts.Sessions*perSession) {
			t.Errorf("service acked %d, want %d", got, opts.Sessions*perSession)
		}
		if r.svc.Stats.CrossTenant+r.svc.Stats.Unknown+r.svc.Stats.Bounds != 0 {
			t.Errorf("clean run rejected ops: %+v", r.svc.Stats)
		}
		r.finish(t)
	})
	r.cl.Sched.RunFor(2 * time.Second)
	if !r.gw.done {
		t.Fatal("gateway never drained")
	}
}

// TestCrossTenantProbeNAKed is the isolation negative test: a session
// claiming another tenant's rkey-namespace token must be NAKed by the
// service without touching the victim's slice, while the victim's own
// traffic is acknowledged untouched.
func TestCrossTenantProbeNAKed(t *testing.T) {
	opts := Options{Sessions: 4, Lanes: 2, LaneDepth: 8}
	r := newRig(t, 32, opts)
	r.cl.Sched.Go("driver", func() {
		r.gw.WaitReady()
		// Session 0 attacks 1 and 3; session 2 attacks 0; everyone also
		// sends legitimate traffic.
		r.gw.Probe(0, 1)
		r.gw.Probe(0, 3)
		r.gw.Probe(2, 0)
		r.gw.SubmitAll(5)
		r.gw.Drain()

		for i, want := range []int64{2, 0, 1, 0} {
			s := r.gw.Session(i)
			if s.NAKCross != want {
				t.Errorf("session %d: %d cross-tenant NAKs, want %d", i, s.NAKCross, want)
			}
			if s.AckedOK != 5 {
				t.Errorf("session %d: %d data acks, want 5", i, s.AckedOK)
			}
		}
		if r.svc.Stats.CrossTenant != 3 {
			t.Errorf("service cross-tenant rejects %d, want 3", r.svc.Stats.CrossTenant)
		}
		if v := r.gw.CheckInvariants(); len(v) != 0 {
			t.Errorf("invariants: %v", v)
		}
		r.finish(t)
	})
	r.cl.Sched.RunFor(2 * time.Second)
}

// TestCloseRequiresOwnToken pins that close is a namespace operation:
// a forged close (wrong token) is rejected and counted, and the
// session keeps serving.
func TestCloseRequiresOwnToken(t *testing.T) {
	opts := Options{Sessions: 2, Lanes: 1, LaneDepth: 4}
	r := newRig(t, 33, opts)
	r.cl.Sched.Go("driver", func() {
		r.gw.WaitReady()
		victim := r.gw.Session(1)
		var resp closeResp
		decGob(r.gw.ep.Call("src", "tenant:svc", "close",
			encGob(closeReq{Sess: victim.ID, Token: victim.Token ^ 0xDEAD})), &resp)
		if resp.Err == "" {
			t.Error("forged close succeeded")
		}
		if r.svc.Stats.CrossTenant != 1 {
			t.Errorf("forged close not counted: %+v", r.svc.Stats)
		}
		r.gw.Submit(1, 3)
		r.gw.Drain()
		if victim.AckedOK != 3 {
			t.Errorf("victim stopped serving after forged close: %d acks", victim.AckedOK)
		}
		// A legitimate close sticks: later traffic is NAKed unknown.
		if err := r.gw.CloseSession(1); err != nil {
			t.Fatalf("own close: %v", err)
		}
		if r.svc.SessionsOpen() != 1 {
			t.Errorf("%d sessions open, want 1", r.svc.SessionsOpen())
		}
		r.finish(t)
	})
	r.cl.Sched.RunFor(2 * time.Second)
}

// TestCreditsQueueNotDrop is the QoS negative test: a session whose
// bucket runs dry must queue its operations and drain them at the
// refill rate — every submitted operation is eventually acknowledged,
// and the stall is observable in the stats.
func TestCreditsQueueNotDrop(t *testing.T) {
	opts := Options{
		Sessions: 2, Lanes: 1, LaneDepth: 8,
		Credits: 2, RefillAmount: 1, RefillEvery: 200 * time.Microsecond,
	}
	r := newRig(t, 34, opts)
	const burst = 12
	r.cl.Sched.Go("driver", func() {
		r.gw.WaitReady()
		start := r.cl.Sched.Now()
		r.gw.Submit(0, burst)
		r.gw.Drain()
		elapsed := r.cl.Sched.Now() - start

		s := r.gw.Session(0)
		if s.AckedOK != burst {
			t.Errorf("%d of %d burst ops acknowledged (dropped work)", s.AckedOK, burst)
		}
		if s.Pending() != 0 {
			t.Errorf("%d ops still queued after drain", s.Pending())
		}
		if r.gw.Stats.CreditStalls == 0 {
			t.Error("burst never stalled on credits — QoS not exercised")
		}
		// 12 ops against 2 initial credits and 1 credit / 200µs must take
		// at least 9 refill ticks; well under that means admission leaked.
		if min := 9 * opts.RefillEvery; elapsed < min {
			t.Errorf("burst drained in %v, want >= %v (credits not enforced)", elapsed, min)
		}
		if v := r.gw.CheckInvariants(); len(v) != 0 {
			t.Errorf("invariants: %v", v)
		}
		r.finish(t)
	})
	r.cl.Sched.RunFor(2 * time.Second)
}

// TestMigrationCarriesSessions live-migrates the service container
// mid-traffic and checks every tenant session resumes exactly-once on
// the destination: the whole tenant table travels with the container.
func TestMigrationCarriesSessions(t *testing.T) {
	opts := Options{Sessions: 16, Lanes: 4, LaneDepth: 8}
	r := newRig(t, 35, opts)
	const perSession = 30
	var rep *runc.Report
	r.cl.Sched.Go("driver", func() {
		r.gw.WaitReady()
		r.gw.SubmitAll(perSession / 2)
		r.cl.Sched.Sleep(500 * time.Microsecond)
		m := &runc.Migrator{
			C:    r.svcCont,
			Dst:  r.cl.Host("dst"),
			Plug: core.NewPlugin(r.daemons["src"], r.daemons["dst"]),
			Opts: runc.DefaultMigrateOptions(),
		}
		var err error
		rep, err = m.Migrate()
		if err != nil {
			t.Errorf("migrate: %v", err)
		}
		r.gw.SubmitAll(perSession / 2)
		r.gw.Probe(3, 7) // isolation must hold on the destination too
		r.gw.Drain()
		for i := 0; i < r.gw.NumSessions(); i++ {
			s := r.gw.Session(i)
			if s.AckedOK != perSession {
				t.Errorf("session %d: %d acked across migration, want %d", s.ID, s.AckedOK, perSession)
			}
		}
		if s := r.gw.Session(3); s.NAKCross != 1 {
			t.Errorf("post-migration probe not NAKed (%d)", s.NAKCross)
		}
		if v := r.gw.CheckInvariants(); len(v) != 0 {
			t.Errorf("invariants: %v", v)
		}
		r.finish(t)
	})
	r.cl.Sched.RunFor(5 * time.Second)
	if rep == nil {
		t.Fatal("migration never completed")
	}
	if !r.gw.done {
		t.Fatal("gateway never drained")
	}
}
