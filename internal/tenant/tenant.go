// Package tenant is a multi-tenant RDMA-as-a-service layer over the
// MigrRDMA guest library: many tenant sessions are multiplexed onto a
// small pool of shared queue pairs between a Gateway (the tenants'
// host-side mux) and a Service (the provider process, running inside a
// migratable container). The design follows the resource-consolidation
// argument of the paper's §6 discussion — per-tenant verbs resources do
// not scale, so the service owns a handful of lanes and a single PD/MR
// and enforces tenancy in software:
//
//   - session open/close is an out-of-band handshake on the existing
//     OOB hub (the same socket-exchange convention perftest uses for
//     QP bring-up, §3.3);
//   - every data operation carries the tenant's rkey-namespace token;
//     the service validates the claimed token against the session's
//     own namespace and NAKs cross-tenant claims without touching
//     memory — device-level rkey checks cannot provide this isolation
//     because all tenants share one MR;
//   - admission is credit-based per tenant: a session out of credits
//     queues its operations (never drops them) until the deterministic
//     refill tick, so one tenant cannot monopolise the shared lanes;
//   - per-tenant metrics labels are optional (PerTenantMetrics) so
//     small-N chaos runs get per-session counters while thousand-
//     session benchmarks keep the registry tractable.
//
// Because the whole tenant table is ordinary process state inside the
// service container, a live migration of that container carries every
// tenant session with it: the lanes suspend and resume under
// wait-before-stop exactly like any other guest-library QP, and the
// gateway observes only a blackout, never a lost or duplicated
// operation. The chaos tier (internal/chaos.RunTenant) pins that
// per-tenant exactly-once guarantee under fault schedules.
package tenant

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"time"

	"migrrdma/internal/mem"
)

// Options configures both sides of a tenant deployment.
type Options struct {
	// Sessions is the number of tenant sessions the gateway opens at
	// start-up (more can be opened later); it also sizes the service's
	// tenant-slice arena, so open churn beyond 2×Sessions is rejected.
	Sessions int
	// Lanes is the number of shared queue pairs between gateway and
	// service. All tenant traffic multiplexes onto these.
	Lanes int
	// LaneDepth bounds the unacknowledged requests in flight per lane.
	LaneDepth int
	// MsgSize is the wire size of one request/response message. The
	// first 32 bytes are the tenancy header.
	MsgSize int
	// Credits is the per-tenant admission bucket capacity. Each data
	// operation spends one credit; an empty bucket queues the operation.
	Credits int
	// RefillEvery is the deterministic credit refill cadence.
	RefillEvery time.Duration
	// RefillAmount is the number of credits returned per refill tick.
	RefillAmount int
	// PerTenantMetrics labels service counters with the session ID.
	// Off by default: a thousand-session benchmark would explode the
	// registry; the chaos tier turns it on at small N.
	PerTenantMetrics bool
}

func (o Options) withDefaults() Options {
	if o.Sessions == 0 {
		o.Sessions = 8
	}
	if o.Lanes == 0 {
		o.Lanes = 2
	}
	if o.LaneDepth == 0 {
		o.LaneDepth = 32
	}
	if o.MsgSize == 0 {
		o.MsgSize = 128
	}
	if o.MsgSize < headerSize {
		o.MsgSize = headerSize
	}
	if o.Credits == 0 {
		o.Credits = 32
	}
	if o.RefillEvery == 0 {
		o.RefillEvery = 20 * time.Microsecond
	}
	if o.RefillAmount == 0 {
		o.RefillAmount = o.Credits
	}
	return o
}

// recvDepth over-provisions receive rings relative to the lane window
// so the migration thaw is absorbed by posted receives (the same
// RNR-avoidance perftest.Options.RecvDepth documents).
func (o Options) recvDepth() int { return 2 * o.LaneDepth }

// tenantArena is where both sides map their message buffers.
const tenantArena = mem.Addr(0x20_0000_0000)

// sliceSize is the per-tenant region of the service arena validated
// writes land in.
const sliceSize = 64

// headerSize is the tenancy header at the front of every message.
const headerSize = 32

// Message kinds.
const (
	kindData = 1 // gateway → service data operation
	kindResp = 2 // service → gateway acknowledgement
)

// Response statuses. StatusOK acknowledges the operation; everything
// else is a NAK naming the admission check that rejected it.
const (
	StatusOK             = 0
	StatusUnknownSession = 1
	StatusCrossTenant    = 2
	StatusBounds         = 3
)

// header is the 32-byte tenancy header stamped at the front of each
// message slot:
//
//	[0:4)   session ID
//	[4:8)   claimed rkey-namespace token
//	[8:16)  per-session sequence number
//	[16]    kind
//	[17]    status (responses)
//	[20:24) target offset within the tenant's slice
//	[24:32) payload stamp (= seq; integrity check)
type header struct {
	Sess   uint32
	Token  uint32
	Seq    uint64
	Kind   byte
	Status byte
	Off    uint32
	Stamp  uint64
}

func writeHeader(as *mem.AddressSpace, addr mem.Addr, h header) error {
	var b [headerSize]byte
	binary.LittleEndian.PutUint32(b[0:4], h.Sess)
	binary.LittleEndian.PutUint32(b[4:8], h.Token)
	binary.LittleEndian.PutUint64(b[8:16], h.Seq)
	b[16] = h.Kind
	b[17] = h.Status
	binary.LittleEndian.PutUint32(b[20:24], h.Off)
	binary.LittleEndian.PutUint64(b[24:32], h.Stamp)
	return as.Write(addr, b[:])
}

func readHeader(as *mem.AddressSpace, addr mem.Addr) (header, error) {
	var b [headerSize]byte
	if err := as.Read(addr, b[:]); err != nil {
		return header{}, err
	}
	return header{
		Sess:   binary.LittleEndian.Uint32(b[0:4]),
		Token:  binary.LittleEndian.Uint32(b[4:8]),
		Seq:    binary.LittleEndian.Uint64(b[8:16]),
		Kind:   b[16],
		Status: b[17],
		Off:    binary.LittleEndian.Uint32(b[20:24]),
		Stamp:  binary.LittleEndian.Uint64(b[24:32]),
	}, nil
}

// --- Out-of-band handshake ----------------------------------------------------

// Target names a service's control endpoint. The endpoint stays
// anchored at the node the service was launched on: OOB control is
// location-transparent in the testbed, so it keeps serving across a
// migration of the service container (a production deployment would
// re-register the endpoint after cutover).
type Target struct {
	Node string
	Name string // service name (endpoint "tenant:<name>")
}

// attachReq connects the gateway's lane QPs to the service.
type attachReq struct {
	Node  string
	Lanes []uint32 // gateway lane VQPNs, in lane order
}

type attachResp struct {
	Lanes []uint32 // service lane VQPNs, in lane order
	Err   string
}

// openReq opens Count tenant sessions in one round trip.
type openReq struct {
	Count int
}

// openResp returns the contiguous session ID range [Base, Base+Count)
// and the token schedule: session i's namespace token is
// TokenBase ^ (i * TokenMul). Only the service defines the schedule;
// the gateway learns it here.
type openResp struct {
	Base      uint32
	TokenBase uint32
	TokenMul  uint32
	Err       string
}

// closeReq closes one session; the token must match (closing is an
// owner-only operation, like any other namespace access).
type closeReq struct {
	Sess  uint32
	Token uint32
}

type closeResp struct {
	Err string
}

func encGob(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func decGob(data []byte, v any) {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		panic(err)
	}
}
