package tenant

import (
	"fmt"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// TenantSession is the gateway-side record of one tenant session. The
// counters double as the invariant ledger: exactly-once/in-order
// acknowledgement tracking lives here, so the chaos tier reads the
// guarantees straight off the data structures that enforce them.
type TenantSession struct {
	ID    uint32
	Token uint32
	lane  int

	pendingData   int      // submitted operations not yet on the wire
	pendingProbes []uint32 // cross-tenant tokens to claim, FIFO

	sent    uint64 // next sequence number to assign
	nextAck uint64 // next acknowledgement expected (in-order check)
	// inflight maps a sent sequence number to the token it claimed;
	// removal on acknowledgement is the exactly-once check.
	inflight map[uint64]uint32

	DataSubmitted   int64
	ProbesSubmitted int64
	AckedOK         int64
	NAKCross        int64
	NAKUnknown      int64
	NAKBounds       int64

	credits    int
	lastRefill time.Duration
	stalled    bool
	closed     bool
}

// Pending returns the session's queued (not yet sent) operation count.
func (s *TenantSession) Pending() int { return s.pendingData + len(s.pendingProbes) }

// Inflight returns the session's unacknowledged operation count.
func (s *TenantSession) Inflight() int { return len(s.inflight) }

// Credits returns the session's current admission credit balance.
func (s *TenantSession) Credits() int { return s.credits }

// GatewayStats aggregates the mux-side outcome counts.
type GatewayStats struct {
	Submitted    int64
	Probes       int64
	AckedOK      int64
	NAKs         int64
	CreditStalls int64 // sessions that hit an empty bucket and queued
	Errors       []string
}

func (st *GatewayStats) errf(format string, args ...any) {
	if len(st.Errors) < 32 {
		st.Errors = append(st.Errors, fmt.Sprintf(format, args...))
	}
}

// Gateway is the tenants' host-side multiplexer: it owns the lane QPs
// facing one Service and pumps every tenant session's operations
// through them under per-tenant credit admission.
type Gateway struct {
	Name   string
	Opts   Options
	Target Target
	Sess   *core.Session
	Stats  GatewayStats

	// Violations lists tenancy invariant breaches observed on the
	// acknowledgement stream (duplicate, out-of-order, misdirected or
	// wrongly-admitted responses). Empty means the run held.
	Violations []string

	sched   *sim.Scheduler
	ready   *sim.Cond
	doneC   *sim.Cond
	workC   *sim.Cond
	idleC   *sim.Cond
	isReady bool
	stopped bool
	done    bool

	pd           *core.PD
	cq           *core.CQ
	mr           *core.MR
	ep           *oob.Endpoint
	lanes        []*core.QP
	laneSent     []uint64 // per-lane wire sequence (tx slot cycling)
	laneInflight []int    // per-lane unacknowledged requests

	sessions []*TenantSession
	sessByID map[uint32]*TenantSession

	mSubmitted, mProbes, mStalls *metrics.Counter
}

// NewGateway creates a gateway descriptor; Run starts it in a process.
func NewGateway(sched *sim.Scheduler, name string, opts Options, target Target) *Gateway {
	return &Gateway{
		Name: name, Opts: opts.withDefaults(), Target: target,
		sched:    sched,
		ready:    sim.NewCond(sched, "tenant-gw-ready:"+name),
		doneC:    sim.NewCond(sched, "tenant-gw-done:"+name),
		workC:    sim.NewCond(sched, "tenant-gw-work:"+name),
		idleC:    sim.NewCond(sched, "tenant-gw-idle:"+name),
		sessByID: make(map[uint32]*TenantSession),
	}
}

// Arena layout: lane request ring, then lane response receive ring.
func (g *Gateway) txSlot(lane, idx int) mem.Addr {
	return tenantArena + mem.Addr((lane*g.Opts.LaneDepth+idx)*g.Opts.MsgSize)
}

func (g *Gateway) rxSlot(lane, idx int) mem.Addr {
	base := g.Opts.Lanes * g.Opts.LaneDepth * g.Opts.MsgSize
	return tenantArena + mem.Addr(base+(lane*g.Opts.recvDepth()+idx)*g.Opts.MsgSize)
}

func (g *Gateway) arenaSize() uint64 {
	return uint64(g.Opts.Lanes * (g.Opts.LaneDepth + g.Opts.recvDepth()) * g.Opts.MsgSize)
}

// Run is the gateway process main: map the arena, connect the lanes,
// open the initial session population and pump until Stop and drain.
func (g *Gateway) Run(p *task.Process, d *core.Daemon) {
	o := g.Opts
	sess := core.NewSession(p, d)
	g.Sess = sess
	if _, err := p.AS.Map(tenantArena, g.arenaSize(), "tenant-gw"); err != nil {
		panic(err)
	}
	g.pd = sess.AllocPD()
	g.cq = sess.CreateCQ(64+o.Lanes*(2*o.LaneDepth+o.recvDepth()), nil)
	mr, err := sess.RegMR(g.pd, tenantArena, g.arenaSize(), rnic.AccessLocalWrite)
	if err != nil {
		panic(err)
	}
	g.mr = mr
	reg := d.Host().Metrics
	l := metrics.Labels{"gw": g.Name}
	g.mSubmitted = reg.Counter("tenant", "gw_ops_submitted", l)
	g.mProbes = reg.Counter("tenant", "gw_probes_submitted", l)
	g.mStalls = reg.Counter("tenant", "gw_credit_stalls", l)

	g.ep = d.Host().Hub.Endpoint("tenant-gw:" + g.Name)
	g.attach(d)
	if _, err := g.OpenMore(o.Sessions); err != nil {
		panic("tenant gateway open: " + err.Error())
	}
	g.isReady = true
	g.ready.Broadcast()
	g.pump(p)
	g.done = true
	g.doneC.Broadcast()
}

// attach brings up the lane QPs against the service.
func (g *Gateway) attach(d *core.Daemon) {
	o := g.Opts
	req := attachReq{Node: d.Node()}
	for lane := 0; lane < o.Lanes; lane++ {
		qp := g.Sess.CreateQP(g.pd, core.QPConfig{
			Type: rnic.RC, SendCQ: g.cq, RecvCQ: g.cq,
			Caps: rnic.QPCaps{MaxSend: 2 * o.LaneDepth, MaxRecv: o.recvDepth() + 8},
		})
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
			panic(err)
		}
		for i := 0; i < o.recvDepth(); i++ {
			wr := rnic.RecvWR{WRID: laneWRID(lane, i), SGEs: []rnic.SGE{{
				Addr: g.rxSlot(lane, i), Len: uint32(o.MsgSize), LKey: g.mr.LKey(),
			}}}
			if err := qp.PostRecv(wr); err != nil {
				panic(err)
			}
		}
		g.lanes = append(g.lanes, qp)
		g.laneSent = append(g.laneSent, 0)
		g.laneInflight = append(g.laneInflight, 0)
		req.Lanes = append(req.Lanes, qp.VQPN())
	}
	var resp attachResp
	decGob(g.ep.Call(g.Target.Node, "tenant:"+g.Target.Name, "attach", encGob(req)), &resp)
	if resp.Err != "" {
		panic("tenant attach: " + resp.Err)
	}
	for lane, peer := range resp.Lanes {
		qp := g.lanes[lane]
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: g.Target.Node, RemoteQPN: peer}); err != nil {
			panic(err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
			panic(err)
		}
	}
}

// OpenMore opens count additional tenant sessions over the OOB
// handshake and returns the index of the first new session. Safe to
// call from a driver proc while the pump runs.
func (g *Gateway) OpenMore(count int) (int, error) {
	var resp openResp
	decGob(g.ep.Call(g.Target.Node, "tenant:"+g.Target.Name, "open", encGob(openReq{Count: count})), &resp)
	if resp.Err != "" {
		return 0, fmt.Errorf("%s", resp.Err)
	}
	first := len(g.sessions)
	now := g.sched.Now()
	for i := 0; i < count; i++ {
		id := resp.Base + uint32(i)
		s := &TenantSession{
			ID: id, Token: resp.TokenBase ^ (id * resp.TokenMul),
			lane:     int(id) % g.Opts.Lanes,
			inflight: make(map[uint64]uint32),
			credits:  g.Opts.Credits, lastRefill: now,
		}
		g.sessions = append(g.sessions, s)
		g.sessByID[id] = s
	}
	return first, nil
}

// CloseSession retires session i over the OOB handshake. The caller
// must have drained the session first (no pending or in-flight
// operations); later submissions against it are invariant violations.
func (g *Gateway) CloseSession(i int) error {
	s := g.sessions[i]
	var resp closeResp
	decGob(g.ep.Call(g.Target.Node, "tenant:"+g.Target.Name, "close",
		encGob(closeReq{Sess: s.ID, Token: s.Token})), &resp)
	if resp.Err != "" {
		return fmt.Errorf("%s", resp.Err)
	}
	s.closed = true
	return nil
}

// WaitReady blocks until the lanes are connected and the initial
// sessions are open.
func (g *Gateway) WaitReady() {
	for !g.isReady {
		g.ready.Wait()
	}
}

// Wait blocks until the pump exited (Stop plus full drain).
func (g *Gateway) Wait() {
	for !g.done {
		g.doneC.Wait()
	}
}

// Stop makes the pump exit once every queued and in-flight operation
// has been acknowledged — queued work is drained, never dropped.
func (g *Gateway) Stop() {
	g.stopped = true
	g.workC.Broadcast()
}

// Submit queues n data operations on session i.
func (g *Gateway) Submit(i, n int) {
	s := g.sessions[i]
	s.pendingData += n
	s.DataSubmitted += int64(n)
	g.Stats.Submitted += int64(n)
	g.mSubmitted.Add(int64(n))
	g.workC.Broadcast()
}

// SubmitAll queues n data operations on every open session.
func (g *Gateway) SubmitAll(n int) {
	for i, s := range g.sessions {
		if !s.closed {
			g.Submit(i, n)
		}
	}
}

// Probe queues a cross-tenant access attempt: session i will claim
// session victim's namespace token. The service must NAK it.
func (g *Gateway) Probe(i, victim int) {
	s := g.sessions[i]
	s.pendingProbes = append(s.pendingProbes, g.sessions[victim].Token)
	s.ProbesSubmitted++
	g.Stats.Probes++
	g.mProbes.Inc()
	g.workC.Broadcast()
}

// Drain blocks until no operation is pending or in flight.
func (g *Gateway) Drain() {
	for g.pendingTotal()+g.inflightTotal() > 0 {
		g.idleC.Wait()
	}
}

// Session returns the i-th session's ledger for assertions.
func (g *Gateway) Session(i int) *TenantSession { return g.sessions[i] }

// NumSessions returns the session count (open and closed).
func (g *Gateway) NumSessions() int { return len(g.sessions) }

func (g *Gateway) pendingTotal() int {
	n := 0
	for _, s := range g.sessions {
		n += s.Pending()
	}
	return n
}

func (g *Gateway) inflightTotal() int {
	n := 0
	for _, l := range g.laneInflight {
		n += l
	}
	return n
}

// pump is the mux loop: refill credits, move queued operations onto
// lanes, consume completions. It waits on the CQ while work is in
// flight, on the refill clock while work is queued on credits, and on
// the work condition when idle.
func (g *Gateway) pump(p *task.Process) {
	for {
		p.Gate()
		g.refill()
		progress := g.trySend()
		polled := false
		for _, e := range g.cq.Poll(64) {
			g.complete(e)
			polled = true
		}
		if progress || polled {
			continue
		}
		switch {
		case g.stopped && g.pendingTotal() == 0 && g.inflightTotal() == 0:
			return
		case g.inflightTotal() > 0:
			g.cq.WaitNonEmpty()
		case g.pendingTotal() > 0:
			g.sched.Sleep(g.Opts.RefillEvery)
		default:
			g.workC.Wait()
		}
	}
}

// refill tops up every session's bucket for the ticks elapsed since
// its last refill. Lazy and per-session, but a pure function of
// virtual time — deterministic regardless of when the pump runs it.
func (g *Gateway) refill() {
	o := g.Opts
	now := g.sched.Now()
	for _, s := range g.sessions {
		ticks := int64((now - s.lastRefill) / o.RefillEvery)
		if ticks <= 0 {
			continue
		}
		s.lastRefill += time.Duration(ticks) * o.RefillEvery
		s.credits += int(ticks) * o.RefillAmount
		if s.credits > o.Credits {
			s.credits = o.Credits
		}
	}
}

// trySend moves queued operations onto lanes, round-robin across
// sessions in ID order, until every session is blocked on its lane
// window, its credit bucket or an empty queue. Probes go first (they
// bypass admission — an attacker does not wait politely); data spends
// one credit per operation.
func (g *Gateway) trySend() bool {
	o := g.Opts
	progress := false
	for again := true; again; {
		again = false
		for _, s := range g.sessions {
			if s.Pending() == 0 {
				continue
			}
			if g.laneInflight[s.lane] >= o.LaneDepth {
				continue
			}
			var claimed uint32
			probe := len(s.pendingProbes) > 0
			if probe {
				claimed = s.pendingProbes[0]
			} else {
				if s.credits <= 0 {
					if !s.stalled {
						s.stalled = true
						g.Stats.CreditStalls++
						g.mStalls.Inc()
					}
					continue
				}
				claimed = s.Token
			}
			if err := g.post(s, claimed); err != nil {
				g.Stats.errf("post session %d: %v", s.ID, err)
				return progress
			}
			if probe {
				s.pendingProbes = s.pendingProbes[1:]
			} else {
				s.pendingData--
				s.credits--
				s.stalled = false
			}
			again, progress = true, true
		}
	}
	return progress
}

// post stamps one request into the session's lane ring and sends it.
func (g *Gateway) post(s *TenantSession, claimed uint32) error {
	o := g.Opts
	lane := s.lane
	seq := s.sent
	idx := int(g.laneSent[lane] % uint64(o.LaneDepth))
	addr := g.txSlot(lane, idx)
	h := header{Sess: s.ID, Token: claimed, Seq: seq, Kind: kindData,
		Off: uint32((seq % 7) * 8), Stamp: seq}
	if err := writeHeader(g.Sess.Proc.AS, addr, h); err != nil {
		return err
	}
	wr := rnic.SendWR{
		WRID: g.laneSent[lane], Opcode: rnic.OpSend, Signaled: true,
		SGEs: []rnic.SGE{{Addr: addr, Len: uint32(o.MsgSize), LKey: g.mr.LKey()}},
	}
	if err := g.lanes[lane].PostSend(wr); err != nil {
		return err
	}
	g.laneSent[lane]++
	g.laneInflight[lane]++
	s.inflight[seq] = claimed
	s.sent++
	return nil
}

func (g *Gateway) violationf(format string, args ...any) {
	if len(g.Violations) < 64 {
		g.Violations = append(g.Violations, fmt.Sprintf(format, args...))
	}
}

// complete handles one completion. Request-send completions only free
// CQ space; response receives drive the acknowledgement ledger.
func (g *Gateway) complete(e rnic.CQE) {
	if e.Status != rnic.WCSuccess {
		g.Stats.errf("gateway CQE error: %v (wrid %#x)", e.Status, e.WRID)
		return
	}
	if e.Opcode != rnic.OpRecv {
		return
	}
	lane, idx := laneOf(e.WRID), slotOf(e.WRID)
	if lane >= len(g.lanes) {
		g.Stats.errf("recv completion for unknown lane %d", lane)
		return
	}
	addr := g.rxSlot(lane, idx)
	h, err := readHeader(g.Sess.Proc.AS, addr)
	if err != nil {
		g.Stats.errf("read response header: %v", err)
		return
	}
	g.laneInflight[lane]--
	// Repost before accounting so the service can never overrun the
	// response ring.
	wr := rnic.RecvWR{WRID: e.WRID, SGEs: []rnic.SGE{{
		Addr: addr, Len: uint32(g.Opts.MsgSize), LKey: g.mr.LKey(),
	}}}
	if err := g.lanes[lane].PostRecv(wr); err != nil {
		g.Stats.errf("repost recv: %v", err)
	}
	g.account(lane, h)
	if g.pendingTotal()+g.inflightTotal() == 0 {
		g.idleC.Broadcast()
	}
}

// account applies one acknowledgement to the session ledger, recording
// every tenancy invariant breach it can observe: unknown or
// misdirected responses, duplicate or out-of-order acknowledgement,
// payload stamp corruption, a cross-tenant claim that was not NAKed,
// and a legitimate operation that was rejected.
func (g *Gateway) account(lane int, h header) {
	if h.Kind != kindResp {
		g.violationf("lane %d: response with kind %d", lane, h.Kind)
		return
	}
	s := g.sessByID[h.Sess]
	if s == nil {
		g.violationf("ack for unknown session %d", h.Sess)
		return
	}
	if s.lane != lane {
		g.violationf("session %d: ack on lane %d, want %d", h.Sess, lane, s.lane)
	}
	claimed, wasInflight := s.inflight[h.Seq]
	if !wasInflight {
		g.violationf("session %d: duplicate or unsolicited ack seq %d", h.Sess, h.Seq)
		return
	}
	delete(s.inflight, h.Seq)
	if h.Seq != s.nextAck {
		g.violationf("session %d: ack seq %d, want %d (order)", h.Sess, h.Seq, s.nextAck)
	}
	s.nextAck = h.Seq + 1
	if h.Stamp != h.Seq {
		g.violationf("session %d: ack stamp %d, want %d (corruption)", h.Sess, h.Stamp, h.Seq)
	}
	probe := claimed != s.Token
	switch {
	case probe && h.Status == StatusCrossTenant:
		s.NAKCross++
		g.Stats.NAKs++
	case probe:
		g.violationf("session %d: cross-tenant claim %#x admitted with status %d (isolation breach)",
			h.Sess, claimed, h.Status)
	case h.Status == StatusOK:
		s.AckedOK++
		g.Stats.AckedOK++
	case h.Status == StatusUnknownSession && s.closed:
		s.NAKUnknown++
		g.Stats.NAKs++
	case h.Status == StatusBounds:
		s.NAKBounds++
		g.Stats.NAKs++
		g.violationf("session %d: in-slice write seq %d rejected for bounds", h.Sess, h.Seq)
	default:
		g.violationf("session %d: data op seq %d rejected with status %d", h.Sess, h.Seq, h.Status)
	}
}

// CheckInvariants audits the final ledger once traffic has drained:
// nothing queued, nothing in flight, every data operation acknowledged
// exactly once, every cross-tenant probe NAKed. It appends to (and
// returns) the violations observed live on the acknowledgement stream.
func (g *Gateway) CheckInvariants() []string {
	v := append([]string{}, g.Violations...)
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	for _, s := range g.sessions {
		if n := s.Pending(); n != 0 {
			add("session %d: %d operations still queued (dropped work)", s.ID, n)
		}
		if n := len(s.inflight); n != 0 {
			add("session %d: %d operations never acknowledged", s.ID, n)
		}
		if s.AckedOK != s.DataSubmitted {
			add("session %d: %d data ops submitted, %d acknowledged (exactly-once breach)",
				s.ID, s.DataSubmitted, s.AckedOK)
		}
		if s.NAKCross != s.ProbesSubmitted {
			add("session %d: %d cross-tenant probes, %d NAKed (isolation breach)",
				s.ID, s.ProbesSubmitted, s.NAKCross)
		}
	}
	for _, e := range g.Stats.Errors {
		add("gateway error: %s", e)
	}
	return v
}
