package tenant

import (
	"encoding/binary"
	"fmt"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// tokenBase/tokenMul define the service's rkey-namespace token
// schedule: session i's token is tokenBase ^ (i * tokenMul). The
// schedule is disclosed to the gateway on open — isolation rests on
// the service validating the *claimed* token against the session's
// assigned one, not on token secrecy.
const (
	tokenBase = 0x7A11BA5E
	tokenMul  = 0x9E3779B1
)

func tokenFor(sess uint32) uint32 { return tokenBase ^ (sess * tokenMul) }

// svcSession is the service-side record of one tenant session.
type svcSession struct {
	token  uint32
	slice  mem.Addr // this tenant's region of the shared arena
	closed bool
	acked  int64
}

// ServiceStats aggregates the provider-side outcome counts.
type ServiceStats struct {
	Opened      int64
	Closed      int64
	Acked       int64
	CrossTenant int64 // ops rejected for claiming a foreign token
	Unknown     int64 // ops for closed/never-opened sessions
	Bounds      int64 // ops targeting outside the tenant slice
	Errors      []string
}

func (st *ServiceStats) errf(format string, args ...any) {
	if len(st.Errors) < 32 {
		st.Errors = append(st.Errors, fmt.Sprintf(format, args...))
	}
}

// Service is the provider process: it owns the shared lanes, PD and
// MR, the tenant session table and the admission checks. It runs
// inside a migratable container; everything here — including the
// session table — is carried by a live migration of that container.
type Service struct {
	Name  string
	Opts  Options
	Sess  *core.Session
	Stats ServiceStats

	ready   *sim.Cond
	isReady bool
	stopped bool

	pd    *core.PD
	cq    *core.CQ
	mr    *core.MR
	lanes []*core.QP
	txSeq []uint64 // per-lane response sequence

	sessions map[uint32]*svcSession
	nextSess uint32
	capSess  int

	reg              *metrics.Registry
	mOpened, mClosed *metrics.Counter
	mAcked           *metrics.Counter
	mCross, mUnknown *metrics.Counter
	mBounds          *metrics.Counter
}

// NewService creates a service descriptor; Run starts it inside a
// container process.
func NewService(sched *sim.Scheduler, name string, opts Options) *Service {
	o := opts.withDefaults()
	return &Service{
		Name: name, Opts: o,
		sessions: make(map[uint32]*svcSession),
		capSess:  2 * o.Sessions,
		ready:    sim.NewCond(sched, "tenant-svc-ready:"+name),
	}
}

// Arena layout: lane receive ring, lane response ring, tenant slices.
func (s *Service) rxSlot(lane, idx int) mem.Addr {
	return tenantArena + mem.Addr((lane*s.Opts.recvDepth()+idx)*s.Opts.MsgSize)
}

func (s *Service) txSlot(lane, idx int) mem.Addr {
	base := s.Opts.Lanes * s.Opts.recvDepth() * s.Opts.MsgSize
	return tenantArena + mem.Addr(base+(lane*s.Opts.recvDepth()+idx)*s.Opts.MsgSize)
}

func (s *Service) sliceAddr(i int) mem.Addr {
	base := 2 * s.Opts.Lanes * s.Opts.recvDepth() * s.Opts.MsgSize
	return tenantArena + mem.Addr(base+i*sliceSize)
}

func (s *Service) arenaSize() uint64 {
	return uint64(2*s.Opts.Lanes*s.Opts.recvDepth()*s.Opts.MsgSize + s.capSess*sliceSize)
}

// Run is the service process main: map the arena, set up the shared
// verbs resources, register the OOB control handlers and serve lane
// completions until Stop.
func (s *Service) Run(p *task.Process, d *core.Daemon) {
	o := s.Opts
	sess := core.NewSession(p, d)
	s.Sess = sess
	if _, err := p.AS.Map(tenantArena, s.arenaSize(), "tenant-svc"); err != nil {
		panic(err)
	}
	s.pd = sess.AllocPD()
	s.cq = sess.CreateCQ(64+o.Lanes*3*o.recvDepth(), nil)
	mr, err := sess.RegMR(s.pd, tenantArena, s.arenaSize(), rnic.AccessLocalWrite)
	if err != nil {
		panic(err)
	}
	s.mr = mr
	s.initMetrics(d)

	ep := d.Host().Hub.Endpoint("tenant:" + s.Name)
	ep.Handle("attach", s.onAttach)
	ep.Handle("open", s.onOpen)
	ep.Handle("close", s.onClose)
	s.isReady = true
	s.ready.Broadcast()
	s.serve(p)
}

func (s *Service) initMetrics(d *core.Daemon) {
	s.reg = d.Host().Metrics
	l := metrics.Labels{"svc": s.Name}
	s.mOpened = s.reg.Counter("tenant", "sessions_opened", l)
	s.mClosed = s.reg.Counter("tenant", "sessions_closed", l)
	s.mAcked = s.reg.Counter("tenant", "ops_acked", l)
	s.mCross = s.reg.Counter("tenant", "rejects_cross_tenant", l)
	s.mUnknown = s.reg.Counter("tenant", "rejects_unknown_session", l)
	s.mBounds = s.reg.Counter("tenant", "rejects_bounds", l)
}

// perTenant returns the per-session acked/cross-tenant counters when
// PerTenantMetrics is on; nil handles otherwise.
func (s *Service) perTenant(sess uint32) (acked, cross *metrics.Counter) {
	if !s.Opts.PerTenantMetrics {
		return nil, nil
	}
	l := metrics.Labels{"svc": s.Name, "sess": fmt.Sprintf("s%04d", sess)}
	return s.reg.Counter("tenant", "ops_acked", l),
		s.reg.Counter("tenant", "rejects_cross_tenant", l)
}

// WaitReady blocks until the control endpoint accepts calls.
func (s *Service) WaitReady() {
	for !s.isReady {
		s.ready.Wait()
	}
}

// Stop ends the serve loop.
func (s *Service) Stop() { s.stopped = true }

// Sessions returns the number of open (not yet closed) sessions.
func (s *Service) SessionsOpen() int {
	n := 0
	for _, t := range s.sessions {
		if !t.closed {
			n++
		}
	}
	return n
}

// onAttach connects the gateway's lane QPs: one shared RC QP per lane,
// receives pre-posted deep enough to absorb a migration thaw.
func (s *Service) onAttach(m oob.Msg) []byte {
	var req attachReq
	decGob(m.Body, &req)
	o := s.Opts
	if len(req.Lanes) != o.Lanes {
		return encGob(attachResp{Err: fmt.Sprintf("attach: %d lanes, want %d", len(req.Lanes), o.Lanes)})
	}
	if len(s.lanes) != 0 {
		return encGob(attachResp{Err: "attach: already attached"})
	}
	var resp attachResp
	for lane, peer := range req.Lanes {
		qp := s.Sess.CreateQP(s.pd, core.QPConfig{
			Type: rnic.RC, SendCQ: s.cq, RecvCQ: s.cq,
			Caps: rnic.QPCaps{MaxSend: 2 * o.LaneDepth, MaxRecv: o.recvDepth() + 8},
		})
		for _, a := range []rnic.ModifyAttr{
			{State: rnic.StateInit},
			{State: rnic.StateRTR, RemoteNode: req.Node, RemoteQPN: peer},
			{State: rnic.StateRTS},
		} {
			if err := qp.Modify(a); err != nil {
				return encGob(attachResp{Err: err.Error()})
			}
		}
		for i := 0; i < o.recvDepth(); i++ {
			wr := rnic.RecvWR{WRID: laneWRID(lane, i), SGEs: []rnic.SGE{{
				Addr: s.rxSlot(lane, i), Len: uint32(o.MsgSize), LKey: s.mr.LKey(),
			}}}
			if err := qp.PostRecv(wr); err != nil {
				return encGob(attachResp{Err: err.Error()})
			}
		}
		s.lanes = append(s.lanes, qp)
		s.txSeq = append(s.txSeq, 0)
		resp.Lanes = append(resp.Lanes, qp.VQPN())
	}
	return encGob(resp)
}

// onOpen admits Count new tenant sessions and returns their ID range
// and the token schedule.
func (s *Service) onOpen(m oob.Msg) []byte {
	var req openReq
	decGob(m.Body, &req)
	if req.Count <= 0 {
		req.Count = 1
	}
	if int(s.nextSess)+req.Count > s.capSess {
		return encGob(openResp{Err: fmt.Sprintf("open: %d sessions exceed arena capacity %d", int(s.nextSess)+req.Count, s.capSess)})
	}
	base := s.nextSess
	for i := 0; i < req.Count; i++ {
		id := base + uint32(i)
		s.sessions[id] = &svcSession{token: tokenFor(id), slice: s.sliceAddr(int(id))}
	}
	s.nextSess += uint32(req.Count)
	s.Stats.Opened += int64(req.Count)
	s.mOpened.Add(int64(req.Count))
	return encGob(openResp{Base: base, TokenBase: tokenBase, TokenMul: tokenMul})
}

// onClose retires a session. The claimed token must match: closing is
// a namespace operation like any other.
func (s *Service) onClose(m oob.Msg) []byte {
	var req closeReq
	decGob(m.Body, &req)
	t, ok := s.sessions[req.Sess]
	if !ok || t.closed {
		return encGob(closeResp{Err: fmt.Sprintf("close: unknown session %d", req.Sess)})
	}
	if t.token != req.Token {
		s.Stats.CrossTenant++
		s.mCross.Inc()
		return encGob(closeResp{Err: fmt.Sprintf("close: token mismatch for session %d", req.Sess)})
	}
	t.closed = true
	s.Stats.Closed++
	s.mClosed.Inc()
	return encGob(closeResp{})
}

// serve is the completion loop: consume lane receives, validate,
// respond, repost.
func (s *Service) serve(p *task.Process) {
	for !s.stopped {
		p.Gate()
		if s.cq.Len() == 0 {
			s.cq.WaitNonEmpty()
			continue
		}
		for _, e := range s.cq.Poll(64) {
			s.consume(e)
		}
	}
}

// consume handles one completion. Response-send completions only free
// CQ space; receive completions carry tenant requests.
func (s *Service) consume(e rnic.CQE) {
	if e.Status != rnic.WCSuccess {
		s.Stats.errf("service CQE error: %v (wrid %#x)", e.Status, e.WRID)
		return
	}
	if e.Opcode != rnic.OpRecv {
		return
	}
	lane, idx := laneOf(e.WRID), slotOf(e.WRID)
	if lane >= len(s.lanes) {
		s.Stats.errf("recv completion for unknown lane %d", lane)
		return
	}
	addr := s.rxSlot(lane, idx)
	h, err := readHeader(s.Sess.Proc.AS, addr)
	if err != nil {
		s.Stats.errf("read request header: %v", err)
		return
	}
	status := s.admit(h)
	s.respond(lane, h, status)
	// Repost the consumed receive.
	wr := rnic.RecvWR{WRID: e.WRID, SGEs: []rnic.SGE{{
		Addr: addr, Len: uint32(s.Opts.MsgSize), LKey: s.mr.LKey(),
	}}}
	if err := s.lanes[lane].PostRecv(wr); err != nil {
		s.Stats.errf("repost recv: %v", err)
	}
}

// admit runs the tenancy checks on one request and, when they pass,
// applies the write to the tenant's slice. The order is fixed:
// session, namespace, bounds — so a cross-tenant claim on a closed
// session reports the session, and a foreign token never reaches the
// bounds check (or memory).
func (s *Service) admit(h header) byte {
	t, ok := s.sessions[h.Sess]
	if !ok || t.closed {
		s.Stats.Unknown++
		s.mUnknown.Inc()
		return StatusUnknownSession
	}
	mAcked, mCross := s.perTenant(h.Sess)
	if h.Token != t.token {
		s.Stats.CrossTenant++
		s.mCross.Inc()
		if mCross != nil {
			mCross.Inc()
		}
		return StatusCrossTenant
	}
	if int(h.Off)+8 > sliceSize {
		s.Stats.Bounds++
		s.mBounds.Inc()
		return StatusBounds
	}
	var stamp [8]byte
	binary.LittleEndian.PutUint64(stamp[:], h.Stamp)
	if err := s.Sess.Proc.AS.Write(t.slice+mem.Addr(h.Off), stamp[:]); err != nil {
		s.Stats.errf("slice write: %v", err)
		return StatusBounds
	}
	t.acked++
	s.Stats.Acked++
	s.mAcked.Inc()
	if mAcked != nil {
		mAcked.Inc()
	}
	return StatusOK
}

// respond sends the acknowledgement back on the request's lane.
func (s *Service) respond(lane int, req header, status byte) {
	o := s.Opts
	idx := int(s.txSeq[lane] % uint64(o.recvDepth()))
	addr := s.txSlot(lane, idx)
	h := header{Sess: req.Sess, Token: req.Token, Seq: req.Seq,
		Kind: kindResp, Status: status, Stamp: req.Seq}
	if err := writeHeader(s.Sess.Proc.AS, addr, h); err != nil {
		s.Stats.errf("write response header: %v", err)
		return
	}
	wr := rnic.SendWR{
		WRID: s.txSeq[lane], Opcode: rnic.OpSend, Signaled: true,
		SGEs: []rnic.SGE{{Addr: addr, Len: headerSize, LKey: s.mr.LKey()}},
	}
	if err := s.lanes[lane].PostSend(wr); err != nil {
		s.Stats.errf("post response: %v", err)
		return
	}
	s.txSeq[lane]++
}

// laneWRID packs (lane, ring slot) into a receive WR-ID.
func laneWRID(lane, idx int) uint64 { return uint64(lane)<<32 | uint64(idx) }

func laneOf(wrid uint64) int { return int(wrid >> 32) }
func slotOf(wrid uint64) int { return int(wrid & 0xFFFFFFFF) }
