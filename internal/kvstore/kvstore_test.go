package kvstore

import (
	"bytes"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// rig is a server + one or two clients on a four-host cluster.
type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
	srv     *Server
	srvCont *runc.Container
}

func newRig(t *testing.T) *rig {
	t.Helper()
	names := []string{"server", "c1", "c2", "spare"}
	cl := cluster.New(cluster.Config{Seed: 8}, names...)
	r := &rig{cl: cl, daemons: map[string]*core.Daemon{}}
	for _, n := range names {
		r.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	r.srv = NewServer(cl.Sched, "store", 64)
	r.srvCont = runc.NewContainer(cl.Host("server"), "kv")
	r.srvCont.Start(func(p *task.Process) { r.srv.Run(p, r.daemons["server"]) })
	return r
}

func TestGetPutVersion(t *testing.T) {
	r := newRig(t)
	done := false
	r.cl.Sched.Go("client", func() {
		r.srv.WaitReady()
		c, err := Dial(task.New(r.cl.Sched, "c1p"), r.daemons["c1"], "server", "store")
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Put(7, []byte("seven")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Get(7)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.HasPrefix(got, []byte("seven")) {
			t.Errorf("Get(7) = %q", got[:8])
		}
		v, _ := c.Version(7)
		if v != 1 {
			t.Errorf("version = %d, want 1", v)
		}
		c.Put(7, []byte("seven2"))
		if v, _ = c.Version(7); v != 2 {
			t.Errorf("version = %d, want 2", v)
		}
		// Empty slot reads as zeroes.
		got, _ = c.Get(8)
		if !bytes.Equal(got, make([]byte, SlotSize)) {
			t.Error("empty slot not zero")
		}
		// Bounds.
		if _, err := c.Get(64); err == nil {
			t.Error("out-of-range Get succeeded")
		}
		done = true
	})
	r.cl.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	r := newRig(t)
	done := false
	r.cl.Sched.Go("clients", func() {
		r.srv.WaitReady()
		c1, err := Dial(task.New(r.cl.Sched, "c1p"), r.daemons["c1"], "server", "store")
		if err != nil {
			t.Error(err)
			return
		}
		c2, err := Dial(task.New(r.cl.Sched, "c2p"), r.daemons["c2"], "server", "store")
		if err != nil {
			t.Error(err)
			return
		}
		ok1, _ := c1.TryLock(3, 111)
		ok2, _ := c2.TryLock(3, 222)
		if !ok1 || ok2 {
			t.Errorf("mutual exclusion broken: c1=%v c2=%v", ok1, ok2)
		}
		// Wrong owner cannot unlock.
		if released, _ := c2.Unlock(3, 222); released {
			t.Error("non-owner released the lock")
		}
		if released, _ := c1.Unlock(3, 111); !released {
			t.Error("owner failed to release")
		}
		if ok2, _ = c2.TryLock(3, 222); !ok2 {
			t.Error("lock not acquirable after release")
		}
		done = true
	})
	r.cl.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("clients did not finish")
	}
}

func TestStoreSurvivesServerMigration(t *testing.T) {
	r := newRig(t)
	done := false
	migrated := false
	r.cl.Sched.Go("client", func() {
		r.srv.WaitReady()
		c, err := Dial(task.New(r.cl.Sched, "c1p"), r.daemons["c1"], "server", "store")
		if err != nil {
			t.Error(err)
			return
		}
		c.Put(1, []byte("pre-migration"))
		// Hold a lock across the migration.
		if ok, _ := c.TryLock(5, 99); !ok {
			t.Error("lock failed")
		}
		// Keep reading while the server moves.
		for !migrated {
			got, err := c.Get(1)
			if err != nil {
				t.Errorf("Get during migration: %v", err)
				return
			}
			if !bytes.HasPrefix(got, []byte("pre-migration")) {
				t.Errorf("value corrupted during migration: %q", got[:16])
				return
			}
			r.cl.Sched.Sleep(500 * time.Microsecond)
		}
		// Post-migration: the lock survives, writes land on the new host.
		if ok, _ := c.TryLock(5, 100); ok {
			t.Error("lock lost across migration")
		}
		if released, _ := c.Unlock(5, 99); !released {
			t.Error("owner cannot release after migration")
		}
		if err := c.Put(2, []byte("post-migration")); err != nil {
			t.Error(err)
			return
		}
		got, _ := c.Get(2)
		if !bytes.HasPrefix(got, []byte("post-migration")) {
			t.Errorf("post-migration value %q", got[:16])
		}
		if v, _ := c.Version(2); v != 1 {
			t.Errorf("post-migration version = %d", v)
		}
		done = true
	})
	r.cl.Sched.Go("operator", func() {
		r.srv.WaitReady()
		r.cl.Sched.Sleep(5 * time.Millisecond)
		m := &runc.Migrator{C: r.srvCont, Dst: r.cl.Host("spare"),
			Plug: core.NewPlugin(r.daemons["server"], r.daemons["spare"]),
			Opts: runc.DefaultMigrateOptions()}
		if _, err := m.Migrate(); err != nil {
			t.Errorf("migration: %v", err)
		}
		migrated = true
	})
	r.cl.Sched.RunFor(2 * time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
	if r.srv.Sess.Node() != "spare" {
		t.Fatalf("server on %s", r.srv.Sess.Node())
	}
}
