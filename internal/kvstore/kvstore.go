// Package kvstore is a small RDMA-native key-value store built on the
// MigrRDMA guest library — the style of system the paper's introduction
// motivates (distributed storage over RDMA [5,16]): fixed-size slots in
// server-registered memory, clients reading with one-sided RDMA READ
// (zero server CPU), writing with RDMA WRITE, and taking a per-slot
// lock with ATOMIC CMP_SWAP.
//
// Both ends run on internal/core sessions, so either side can be
// live-migrated mid-workload; the store's integrity across migration is
// exercised by its tests and examples/kvstore.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

const (
	// SlotSize is the fixed value size; a slot additionally carries a
	// lock word and a version word.
	SlotSize   = 64
	slotStride = SlotSize + 16 // lock (8) + version (8) + value
	serverVA   = mem.Addr(0x60_0000_0000)
	clientVA   = mem.Addr(0x61_0000_0000)
)

// Server owns the slot region and accepts client connections.
type Server struct {
	Name  string
	Slots int

	Sess  *core.Session
	ready bool
	rdyC  *sim.Cond
}

// NewServer creates a server descriptor with the given slot count.
func NewServer(sched *sim.Scheduler, name string, slots int) *Server {
	return &Server{Name: name, Slots: slots, rdyC: sim.NewCond(sched, "kv-ready:"+name)}
}

// WaitReady blocks until the server accepts connections.
func (s *Server) WaitReady() {
	for !s.ready {
		s.rdyC.Wait()
	}
}

type openReq struct {
	Node string
	VQPN uint32
}

type openResp struct {
	VQPN  uint32
	RKey  uint32
	Base  uint64
	Slots int
	Err   string
}

// Run is the server process main: register the slot region, accept
// connections, then idle (one-sided ops need no server CPU).
func (s *Server) Run(p *task.Process, d *core.Daemon) {
	sess := core.NewSession(p, d)
	s.Sess = sess
	size := uint64(s.Slots * slotStride)
	if _, err := p.AS.Map(serverVA, size, "kv-slots"); err != nil {
		panic(err)
	}
	pd := sess.AllocPD()
	cq := sess.CreateCQ(1024, nil)
	mr, err := sess.RegMR(pd, serverVA, size,
		rnic.AccessLocalWrite|rnic.AccessRemoteRead|rnic.AccessRemoteWrite|rnic.AccessRemoteAtomic)
	if err != nil {
		panic(err)
	}
	ep := d.Host().Hub.Endpoint("kv:" + s.Name)
	ep.Handle("open", func(m oob.Msg) []byte {
		var req openReq
		if err := dec(m.Body, &req); err != nil {
			return enc(openResp{Err: err.Error()})
		}
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		for _, a := range []rnic.ModifyAttr{
			{State: rnic.StateInit},
			{State: rnic.StateRTR, RemoteNode: req.Node, RemoteQPN: req.VQPN},
			{State: rnic.StateRTS},
		} {
			if err := qp.Modify(a); err != nil {
				return enc(openResp{Err: err.Error()})
			}
		}
		return enc(openResp{VQPN: qp.VQPN(), RKey: mr.RKey(), Base: uint64(serverVA), Slots: s.Slots})
	})
	s.ready = true
	s.rdyC.Broadcast()
	for !p.Exited() {
		p.Compute(time.Millisecond)
	}
}

// Client is one connection to a store.
type Client struct {
	sess  *core.Session
	proc  *task.Process
	qp    *core.QP
	cq    *core.CQ
	mr    *core.MR
	rkey  uint32
	base  mem.Addr
	slots int
}

// Dial connects a client running in process p to the named server.
func Dial(p *task.Process, d *core.Daemon, serverNode, serverName string) (*Client, error) {
	sess := core.NewSession(p, d)
	if _, err := p.AS.Map(clientVA, 2*slotStride+mem.PageSize, "kv-scratch"); err != nil {
		return nil, err
	}
	pd := sess.AllocPD()
	cq := sess.CreateCQ(256, nil)
	mr, err := sess.RegMR(pd, clientVA, 2*slotStride+mem.PageSize, rnic.AccessLocalWrite)
	if err != nil {
		return nil, err
	}
	qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
		return nil, err
	}
	ep := d.Host().Hub.Endpoint("kv-cli:" + p.Name)
	resp := ep.Call(serverNode, "kv:"+serverName, "open", enc(openReq{Node: d.Node(), VQPN: qp.VQPN()}))
	var or openResp
	if err := dec(resp, &or); err != nil {
		return nil, err
	}
	if or.Err != "" {
		return nil, fmt.Errorf("kvstore: open: %s", or.Err)
	}
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: serverNode, RemoteQPN: or.VQPN}); err != nil {
		return nil, err
	}
	if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
		return nil, err
	}
	return &Client{
		sess: sess, proc: p, qp: qp, cq: cq, mr: mr,
		rkey: or.RKey, base: mem.Addr(or.Base), slots: or.Slots,
	}, nil
}

// slotAddr returns the remote address of slot i's field at off.
func (c *Client) slotAddr(i int, off int) mem.Addr {
	return c.base + mem.Addr(i*slotStride+off)
}

// op posts one WR and waits for its completion.
func (c *Client) op(wr rnic.SendWR) error {
	wr.Signaled = true
	if err := c.qp.PostSend(wr); err != nil {
		return err
	}
	c.cq.WaitNonEmpty()
	for _, e := range c.cq.Poll(4) {
		if e.Status != rnic.WCSuccess {
			return fmt.Errorf("kvstore: completion %v", e.Status)
		}
	}
	return nil
}

// Get reads slot i's value with a one-sided READ.
func (c *Client) Get(i int) ([]byte, error) {
	if i < 0 || i >= c.slots {
		return nil, fmt.Errorf("kvstore: slot %d out of range", i)
	}
	err := c.op(rnic.SendWR{
		WRID: 1, Opcode: rnic.OpRead,
		SGEs:       []rnic.SGE{{Addr: clientVA, Len: SlotSize, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 16), RKey: c.rkey,
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, SlotSize)
	if err := c.proc.AS.Read(clientVA, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Put writes slot i's value with a one-sided WRITE and bumps the
// version with a FETCH_ADD.
func (c *Client) Put(i int, val []byte) error {
	if i < 0 || i >= c.slots {
		return fmt.Errorf("kvstore: slot %d out of range", i)
	}
	if len(val) > SlotSize {
		return fmt.Errorf("kvstore: value exceeds %d bytes", SlotSize)
	}
	buf := make([]byte, SlotSize)
	copy(buf, val)
	if err := c.proc.AS.Write(clientVA+mem.Addr(slotStride), buf); err != nil {
		return err
	}
	err := c.op(rnic.SendWR{
		WRID: 2, Opcode: rnic.OpWrite,
		SGEs:       []rnic.SGE{{Addr: clientVA + mem.Addr(slotStride), Len: SlotSize, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 16), RKey: c.rkey,
	})
	if err != nil {
		return err
	}
	// Version bump (FETCH_ADD on the version word).
	return c.op(rnic.SendWR{
		WRID: 3, Opcode: rnic.OpFetchAdd, CompareAdd: 1,
		SGEs:       []rnic.SGE{{Addr: clientVA, Len: 8, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 8), RKey: c.rkey,
	})
}

// Version reads slot i's version counter.
func (c *Client) Version(i int) (uint64, error) {
	err := c.op(rnic.SendWR{
		WRID: 4, Opcode: rnic.OpRead,
		SGEs:       []rnic.SGE{{Addr: clientVA, Len: 8, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 8), RKey: c.rkey,
	})
	if err != nil {
		return 0, err
	}
	return c.proc.AS.ReadU64(clientVA)
}

// TryLock attempts to take slot i's lock with CMP_SWAP(0→id),
// reporting whether this client won it.
func (c *Client) TryLock(i int, id uint64) (bool, error) {
	if id == 0 {
		return false, fmt.Errorf("kvstore: lock id must be non-zero")
	}
	err := c.op(rnic.SendWR{
		WRID: 5, Opcode: rnic.OpCompSwap, CompareAdd: 0, Swap: id,
		SGEs:       []rnic.SGE{{Addr: clientVA, Len: 8, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 0), RKey: c.rkey,
	})
	if err != nil {
		return false, err
	}
	orig, err := c.proc.AS.ReadU64(clientVA)
	return orig == 0, err
}

// Unlock releases slot i's lock if held by id.
func (c *Client) Unlock(i int, id uint64) (bool, error) {
	err := c.op(rnic.SendWR{
		WRID: 6, Opcode: rnic.OpCompSwap, CompareAdd: id, Swap: 0,
		SGEs:       []rnic.SGE{{Addr: clientVA, Len: 8, LKey: c.mr.LKey()}},
		RemoteAddr: c.slotAddr(i, 0), RKey: c.rkey,
	})
	if err != nil {
		return false, err
	}
	orig, err := c.proc.AS.ReadU64(clientVA)
	return orig == id, err
}

// Session exposes the client's MigrRDMA session (e.g. to observe the
// node it runs on).
func (c *Client) Session() *core.Session { return c.sess }

func enc(v any) []byte {
	// The open exchange is tiny and fixed-shape; hand-rolled encoding
	// keeps the dependency surface minimal.
	switch m := v.(type) {
	case openReq:
		out := make([]byte, 8+len(m.Node))
		binary.BigEndian.PutUint32(out, m.VQPN)
		binary.BigEndian.PutUint32(out[4:], uint32(len(m.Node)))
		copy(out[8:], m.Node)
		return out
	case openResp:
		out := make([]byte, 24+len(m.Err))
		binary.BigEndian.PutUint32(out, m.VQPN)
		binary.BigEndian.PutUint32(out[4:], m.RKey)
		binary.BigEndian.PutUint64(out[8:], m.Base)
		binary.BigEndian.PutUint32(out[16:], uint32(m.Slots))
		binary.BigEndian.PutUint32(out[20:], uint32(len(m.Err)))
		copy(out[24:], m.Err)
		return out
	}
	panic("kvstore: unknown message type")
}

func dec(data []byte, v any) error {
	switch m := v.(type) {
	case *openReq:
		if len(data) < 8 {
			return fmt.Errorf("kvstore: short open request")
		}
		m.VQPN = binary.BigEndian.Uint32(data)
		n := binary.BigEndian.Uint32(data[4:])
		if uint32(len(data)-8) < n {
			return fmt.Errorf("kvstore: truncated node name")
		}
		m.Node = string(data[8 : 8+n])
		return nil
	case *openResp:
		if len(data) < 24 {
			return fmt.Errorf("kvstore: short open response")
		}
		m.VQPN = binary.BigEndian.Uint32(data)
		m.RKey = binary.BigEndian.Uint32(data[4:])
		m.Base = binary.BigEndian.Uint64(data[8:])
		m.Slots = int(binary.BigEndian.Uint32(data[16:]))
		n := binary.BigEndian.Uint32(data[20:])
		if uint32(len(data)-24) < n {
			return fmt.Errorf("kvstore: truncated error")
		}
		m.Err = string(data[24 : 24+n])
		return nil
	}
	panic("kvstore: unknown message type")
}
