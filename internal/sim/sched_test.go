package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.Go("sleeper", func() {
		s.Sleep(5 * time.Millisecond)
		at = s.Now()
	})
	s.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestSleepOrdering(t *testing.T) {
	s := New(1)
	var order []string
	s.Go("b", func() {
		s.Sleep(2 * time.Millisecond)
		order = append(order, "b")
	})
	s.Go("a", func() {
		s.Sleep(1 * time.Millisecond)
		order = append(order, "a")
	})
	s.Go("c", func() {
		s.Sleep(3 * time.Millisecond)
		order = append(order, "c")
	})
	s.Run()
	if got := order; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Go("p", func() {
			s.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestAfterFunc(t *testing.T) {
	s := New(1)
	fired := time.Duration(-1)
	s.AfterFunc(7*time.Millisecond, func() { fired = s.Now() })
	s.Go("noop", func() {})
	s.Run()
	if fired != 7*time.Millisecond {
		t.Fatalf("callback at %v, want 7ms", fired)
	}
}

func TestAfterFuncCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterFunc(7*time.Millisecond, func() { fired = true })
	s.Go("canceller", func() {
		s.Sleep(time.Millisecond)
		if !tm.Cancel() {
			t.Error("Cancel reported failure before fire")
		}
	})
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunForStopsAtHorizon(t *testing.T) {
	s := New(1)
	var woke bool
	s.Go("late", func() {
		s.Sleep(10 * time.Millisecond)
		woke = true
	})
	s.RunFor(5 * time.Millisecond)
	if woke {
		t.Fatal("proc past horizon ran")
	}
	s.RunFor(5 * time.Millisecond)
	if !woke {
		t.Fatal("proc did not run after horizon extended")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New(1)
	c := NewCond(s, "never")
	s.Go("stuck", func() { c.Wait() })
	s.Run()
}

// TestDeadlockReportNamesAndSites pins the diagnostic content: the
// panic must name every stuck proc with the site it parked at, so a
// hung simulation reads as "who is waiting on what" instead of a bare
// "deadlock".
func TestDeadlockReportNamesAndSites(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{
			"2 proc(s) blocked forever",
			"cq-poller (blocked at: wait cq@dst)",
			"rx-loop (blocked at: recv work)",
			"recently dispatched",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock report missing %q:\n%s", want, msg)
			}
		}
	}()
	s := New(1)
	cq := NewCond(s, "cq@dst")
	work := NewChan[int](s, "work", 0)
	s.Go("cq-poller", func() { cq.Wait() })
	s.Go("rx-loop", func() { work.Recv() })
	// A proc that finishes cleanly must not appear in the report.
	s.Go("done-fine", func() { s.Sleep(time.Microsecond) })
	s.Run()
}

func TestChanRendezvous(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s, "r", 0)
	var got int
	s.Go("recv", func() {
		v, ok := ch.Recv()
		if !ok {
			t.Error("recv not ok")
		}
		got = v
	})
	s.Go("send", func() { ch.Send(42) })
	s.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestChanBufferedBlocksWhenFull(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s, "b", 2)
	var sentAll time.Duration
	s.Go("send", func() {
		for i := 0; i < 3; i++ {
			ch.Send(i)
		}
		sentAll = s.Now()
	})
	s.Go("recv", func() {
		s.Sleep(5 * time.Millisecond)
		for i := 0; i < 3; i++ {
			v, _ := ch.Recv()
			if v != i {
				t.Errorf("recv %d, want %d", v, i)
			}
		}
	})
	s.Run()
	if sentAll != 5*time.Millisecond {
		t.Fatalf("third send completed at %v, want 5ms (after first recv)", sentAll)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	s := New(1)
	ch := NewChan[int](s, "c", 1)
	okAfterClose := true
	s.Go("recv", func() { _, okAfterClose = ch.Recv() })
	s.Go("close", func() {
		s.Sleep(time.Millisecond)
		ch.Close()
	})
	s.Run()
	if okAfterClose {
		t.Fatal("recv on closed empty channel reported ok")
	}
}

func TestChanTryOps(t *testing.T) {
	s := New(1)
	ch := NewChan[string](s, "t", 1)
	s.Go("p", func() {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty channel succeeded")
		}
		if !ch.TrySend("x") {
			t.Error("TrySend to empty buffer failed")
		}
		if ch.TrySend("y") {
			t.Error("TrySend to full buffer succeeded")
		}
		v, ok := ch.TryRecv()
		if !ok || v != "x" {
			t.Errorf("TryRecv = %q,%v", v, ok)
		}
	})
	s.Run()
}

func TestCondSignalBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s, "c")
	woken := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func() {
			c.Wait()
			woken++
		})
	}
	s.Go("sig", func() {
		s.Sleep(time.Millisecond)
		c.Signal()
		s.Sleep(time.Millisecond)
		if woken != 1 {
			t.Errorf("after Signal woken=%d, want 1", woken)
		}
		c.Broadcast()
	})
	s.Run()
	if woken != 3 {
		t.Fatalf("woken=%d, want 3", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	c := NewCond(s, "c")
	var timedOut, signalled bool
	s.Go("w1", func() {
		if ok := c.WaitTimeout(2 * time.Millisecond); !ok {
			timedOut = true
		}
	})
	s.Go("w2", func() {
		if ok := c.WaitTimeout(10 * time.Millisecond); ok {
			signalled = true
		}
	})
	s.Go("sig", func() {
		s.Sleep(5 * time.Millisecond)
		c.Signal()
	})
	s.Run()
	if !timedOut {
		t.Fatal("w1 should have timed out")
	}
	if !signalled {
		t.Fatal("w2 should have been signalled")
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s, "wg")
	var finished time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		s.Go("worker", func() {
			s.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	s.Go("waiter", func() {
		wg.Wait()
		finished = s.Now()
	})
	s.Run()
	if finished != 3*time.Millisecond {
		t.Fatalf("waiter finished at %v, want 3ms", finished)
	}
}

func TestYieldInterleaves(t *testing.T) {
	s := New(1)
	var order []string
	s.Go("a", func() {
		order = append(order, "a1")
		s.Yield()
		order = append(order, "a2")
	})
	s.Go("b", func() {
		order = append(order, "b1")
		s.Yield()
		order = append(order, "b2")
	})
	s.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicRand(t *testing.T) {
	draw := func() []int64 {
		s := New(99)
		var out []int64
		s.Go("r", func() {
			for i := 0; i < 5; i++ {
				out = append(out, s.Rand().Int63())
			}
		})
		s.Run()
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draws differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	s := New(1)
	total := 0
	s.Go("parent", func() {
		for i := 0; i < 3; i++ {
			s.Go("child", func() {
				s.Sleep(time.Millisecond)
				total++
			})
		}
	})
	s.Run()
	if total != 3 {
		t.Fatalf("total=%d, want 3", total)
	}
}

// A cancel-heavy workload — arm a long timer, cancel it, repeat, the
// shape of a retransmission timer re-armed on every ACK — must not
// accumulate cancelled entries in the heap: compaction keeps the heap
// proportional to the number of live timers.
func TestCancelHeavyHeapBounded(t *testing.T) {
	s := New(1)
	s.Go("rearm", func() {
		for i := 0; i < 100_000; i++ {
			tm := s.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
			if !tm.Cancel() {
				t.Fatal("Cancel reported false for a pending timer")
			}
			if hl := s.TimerHeapLen(); hl > 2*compactMinTimers {
				t.Fatalf("timer heap grew to %d entries with zero live timers", hl)
			}
			if i%1024 == 0 {
				s.Sleep(time.Microsecond) // let the clock move occasionally
			}
		}
	})
	s.Run()
}

// A stale handle must stay inert after its timer struct is recycled:
// Cancel on it reports false and must not cancel the timer that now
// occupies the recycled struct.
func TestStaleTimerHandleInert(t *testing.T) {
	s := New(1)
	fired := 0
	s.Go("p", func() {
		old := s.AfterFunc(time.Microsecond, func() { fired++ })
		s.Sleep(time.Millisecond) // old fires and is recycled
		s.AfterFunc(time.Microsecond, func() { fired++ })
		if old.Cancel() {
			t.Error("stale handle cancelled a recycled timer")
		}
		var zero Timer
		if zero.Cancel() {
			t.Error("zero-value handle reported a cancellation")
		}
		s.Sleep(time.Millisecond)
	})
	s.Run()
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}

// Cancelling more than half the heap triggers one-pass compaction; the
// surviving timers must still fire in (when, seq) order.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.Go("p", func() {
		var cancels []Timer
		for i := 0; i < compactMinTimers; i++ {
			i := i
			s.AfterFunc(time.Duration(i+1)*time.Millisecond, func() { order = append(order, i) })
			cancels = append(cancels,
				s.AfterFunc(time.Hour, func() { t.Error("cancelled fired") }),
				s.AfterFunc(time.Hour, func() { t.Error("cancelled fired") }))
		}
		for _, tm := range cancels {
			tm.Cancel()
		}
		// Cancelled entries became the strict majority mid-loop, so at
		// least one compaction ran; only a sub-majority remainder of
		// lazily-dropped entries may still sit in the heap.
		if hl := s.TimerHeapLen(); hl >= 2*compactMinTimers {
			t.Fatalf("heap has %d entries, compaction never ran (%d live)", hl, compactMinTimers)
		}
	})
	s.Run()
	if len(order) != compactMinTimers {
		t.Fatalf("fired %d timers, want %d", len(order), compactMinTimers)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order[%d]=%d, want %d", i, v, i)
		}
	}
}
