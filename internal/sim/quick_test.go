package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropChanFIFO: any interleaving of sends and receives preserves
// FIFO order and conservation (every value sent is received once).
func TestPropChanFIFO(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		capacity := int(capRaw % 8)
		count := int(n%50) + 1
		s := New(3)
		ch := NewChan[int](s, "prop", capacity)
		var got []int
		s.Go("recv", func() {
			for i := 0; i < count; i++ {
				v, ok := ch.Recv()
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		s.Go("send", func() {
			for i := 0; i < count; i++ {
				ch.Send(i)
				if i%3 == 0 {
					s.Sleep(time.Microsecond)
				}
			}
		})
		s.Run()
		if len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTimerOrder: timers fire in deadline order regardless of the
// order they were armed in.
func TestPropTimerOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 || len(delays) > 64 {
			return true
		}
		s := New(4)
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			s.AfterFunc(d, func() { fired = append(fired, s.Now()) })
		}
		s.Go("noop", func() {})
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDeterminism: the same program produces the same event trace
// on every run.
func TestPropDeterminism(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		ch := NewChan[int](s, "d", 2)
		for i := 0; i < 4; i++ {
			i := i
			s.Go("p", func() {
				s.Sleep(time.Duration(s.Rand().Intn(1000)) * time.Microsecond)
				ch.Send(i)
			})
		}
		s.Go("c", func() {
			for i := 0; i < 4; i++ {
				v, _ := ch.Recv()
				out = append(out, int64(v)*1000+int64(s.Now()/time.Microsecond))
			}
		})
		s.Run()
		return out
	}
	for seed := int64(1); seed < 6; seed++ {
		a, b := trace(seed), trace(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}
