package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// Scheduler owns the virtual clock and the set of managed procs. The zero
// value is not usable; create one with New.
type Scheduler struct {
	now    time.Duration // virtual time since simulation start
	runq   []*Proc       // FIFO of runnable procs
	timers timerHeap
	seq    uint64 // tie-breaker for timers scheduled at the same instant
	live   int    // procs spawned and not yet finished
	cur    *Proc  // proc currently executing, nil when the loop runs

	yielded chan struct{} // running proc -> scheduler: "I parked or exited"
	stopped bool
	// deadlockFatal makes Run panic when live procs are blocked with no
	// pending timers; RunFor tolerates that state (a later phase of the
	// driving test may wake them).
	deadlockFatal bool

	rng *rand.Rand

	nextProcID int64

	// Livelock detection: dispatches since the clock last advanced.
	sameInstant int
	recentNames []string
	seed        int64
}

// New returns a Scheduler whose clock reads zero and whose deterministic
// random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Seed reports the seed the deterministic random source was created
// with, so trace reports can record how to replay a run.
func (s *Scheduler) Seed() int64 { return s.seed }

// Rand returns the scheduler's deterministic random source. It must only
// be used from managed procs or timer callbacks so that draws happen in a
// deterministic order.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Go spawns fn as a managed proc named name and schedules it to run. It
// may be called before Run or from inside another managed proc.
func (s *Scheduler) Go(name string, fn func()) *Proc {
	return s.spawn(name, fn, false)
}

// GoDaemon spawns a proc that services others indefinitely (a NIC
// engine, an event loop). Blocked daemons do not count as a deadlock:
// when only daemons remain and no timers are pending, Run returns.
func (s *Scheduler) GoDaemon(name string, fn func()) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Scheduler) spawn(name string, fn func(), daemon bool) *Proc {
	s.nextProcID++
	p := &Proc{
		s:      s,
		id:     s.nextProcID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
	}
	if !daemon {
		s.live++
	}
	s.runq = append(s.runq, p)
	go p.main(fn)
	return p
}

// Run executes managed procs until no proc is runnable and no timer is
// pending. It panics if live procs remain blocked with nothing scheduled
// to wake them (a simulation deadlock), identifying the stuck procs.
func (s *Scheduler) Run() {
	s.deadlockFatal = true
	defer func() { s.deadlockFatal = false }()
	s.runWhile(func() bool { return true })
}

// RunFor executes like Run but stops once the virtual clock would advance
// past the given horizon; procs parked beyond the horizon stay parked and
// the clock is left at the horizon.
func (s *Scheduler) RunFor(d time.Duration) {
	deadline := s.now + d
	s.runWhile(func() bool {
		if len(s.runq) > 0 {
			return true
		}
		return len(s.timers) > 0 && s.timers[0].when <= deadline
	})
	if s.now < deadline && len(s.runq) == 0 {
		s.now = deadline
	}
}

// Stop makes the current Run call return after the running proc next
// parks. Procs and timers are left in place; Run may be called again.
func (s *Scheduler) Stop() { s.stopped = true }

func (s *Scheduler) runWhile(cond func() bool) {
	s.stopped = false
	for !s.stopped {
		if len(s.runq) == 0 {
			if len(s.timers) == 0 {
				if s.live > 0 && s.deadlockFatal {
					panic("sim: deadlock: " + s.blockedReport())
				}
				return
			}
			if !cond() {
				return
			}
			s.fireNextTimers()
			continue
		}
		if !cond() {
			return
		}
		p := s.runq[0]
		s.runq = s.runq[1:]
		s.sameInstant++
		if s.sameInstant > sameInstantLimit {
			recent := make([]string, 0, len(s.recentNames))
			recent = append(recent, s.recentNames...)
			panic(fmt.Sprintf("sim: livelock: %d dispatches at t=%v without the clock advancing; recent procs: %v",
				s.sameInstant, s.now, recent))
		}
		if len(s.recentNames) >= 8 {
			s.recentNames = s.recentNames[1:]
		}
		s.recentNames = append(s.recentNames, p.name)
		s.dispatch(p)
	}
}

// sameInstantLimit bounds dispatches at one virtual instant; a genuine
// workload never needs millions of zero-time steps, so exceeding it
// indicates two procs readying each other in a cycle.
const sameInstantLimit = 2_000_000

// dispatch resumes p and blocks until it parks or exits.
func (s *Scheduler) dispatch(p *Proc) {
	s.cur = p
	DebugDispatches.Add(1)
	DebugLastProc.Store(p.name)
	p.resume <- struct{}{}
	<-s.yielded
	s.cur = nil
}

// Debug counters for diagnosing stalls (read racily by probes).
var (
	DebugDispatches atomic.Int64
	DebugTimerFires atomic.Int64
	DebugParks      atomic.Int64
	DebugLastProc   atomic.Value
	DebugLastPark   atomic.Value
)

// fireNextTimers advances the clock to the earliest timer deadline and
// fires every timer due at that instant, in scheduling order.
func (s *Scheduler) fireNextTimers() {
	t := s.timers[0].when
	if t < s.now {
		t = s.now // timers scheduled "in the past" fire now
	}
	if t > s.now {
		s.sameInstant = 0
		s.recentNames = s.recentNames[:0]
	}
	s.now = t
	for len(s.timers) > 0 && s.timers[0].when <= s.now {
		DebugTimerFires.Add(1)
		tm := heap.Pop(&s.timers).(*timer)
		if tm.cancelled {
			continue
		}
		tm.fired = true
		if tm.fn != nil {
			tm.fn()
			continue
		}
		s.ready(tm.p)
	}
}

// ready marks p runnable.
func (s *Scheduler) ready(p *Proc) {
	if p.done {
		panic("sim: waking finished proc " + p.name)
	}
	s.runq = append(s.runq, p)
}

// after registers a timer at now+d. Exactly one of p or fn is set: p is a
// parked proc to wake, fn an inline callback.
func (s *Scheduler) after(d time.Duration, p *Proc, fn func()) *timer {
	if d < 0 {
		d = 0
	}
	s.seq++
	tm := &timer{when: s.now + d, seq: s.seq, p: p, fn: fn}
	heap.Push(&s.timers, tm)
	return tm
}

// AfterFunc schedules fn to run on the scheduler loop at now+d. fn must
// not block; it typically enqueues data and signals a Cond. It returns a
// handle whose Cancel method stops an unfired timer.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Timer {
	return &Timer{tm: s.after(d, nil, fn)}
}

// blockedReport describes the procs that are alive but not runnable, for
// deadlock diagnostics.
func (s *Scheduler) blockedReport() string {
	runnable := make(map[*Proc]bool, len(s.runq))
	for _, p := range s.runq {
		runnable[p] = true
	}
	var names []string
	// Walk timers too: procs with pending timers are not stuck.
	for _, tm := range s.timers {
		if tm.p != nil {
			runnable[tm.p] = true
		}
	}
	for p := range blockedProcs {
		if p.s == s && !p.done && !p.daemon && !runnable[p] {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blockedOn))
		}
	}
	sort.Strings(names)
	return fmt.Sprintf("%d proc(s) blocked forever at t=%v: %v", len(names), s.now, names)
}

// blockedProcs tracks parked procs across all schedulers purely for
// deadlock reporting. Access is single-threaded by construction (only the
// running proc mutates it).
var blockedProcs = make(map[*Proc]struct{})

// Timer is a handle to a pending AfterFunc callback.
type Timer struct{ tm *timer }

// Cancel stops the timer if it has not fired. It reports whether the
// cancellation prevented the callback.
func (t *Timer) Cancel() bool {
	if t.tm.fired || t.tm.cancelled {
		return false
	}
	t.tm.cancelled = true
	return true
}

type timer struct {
	when      time.Duration
	seq       uint64
	p         *Proc  // proc to wake, or
	fn        func() // inline callback
	fired     bool
	cancelled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tm
}

// BlockedReport describes procs that are alive but not currently
// runnable, with their park reasons — a diagnostic for stalled
// simulations.
func (s *Scheduler) BlockedReport() string { return s.blockedReport() }
