package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// Scheduler owns the virtual clock and the set of managed procs. The zero
// value is not usable; create one with New.
type Scheduler struct {
	now      time.Duration // virtual time since simulation start
	runq     []*Proc       // FIFO of runnable procs; head index below
	runqHead int           // first live element of runq
	timers   timerHeap
	seq      uint64 // tie-breaker for timers scheduled at the same instant
	live     int    // procs spawned and not yet finished
	cur      *Proc  // proc currently executing, nil when the loop runs

	yielded chan struct{} // running proc -> scheduler: "I parked or exited"
	stopped bool
	// deadlockFatal makes Run panic when live procs are blocked with no
	// pending timers; RunFor tolerates that state (a later phase of the
	// driving test may wake them).
	deadlockFatal bool

	rng *rand.Rand

	nextProcID int64

	// Timer free list: fired and compacted timers are recycled here so
	// the per-packet delivery load allocates no timer structs in steady
	// state. Generation counters keep stale Timer handles inert.
	freeTimers []*timer
	// cancelledTimers counts cancelled entries still sitting in the heap
	// (they are dropped lazily at pop); when they outnumber the live
	// entries the heap is compacted in one pass.
	cancelledTimers int

	// Livelock detection: dispatches since the clock last advanced.
	sameInstant int
	// recentNames is a fixed ring of the most recently dispatched proc
	// names, reported when the livelock limit trips. A ring (rather than
	// a shifted slice) keeps the dispatch hot path allocation-free.
	recentNames [recentNamesSize]string
	recentHead  int // next slot to write
	recentLen   int
	seed        int64

	// blocked tracks this scheduler's parked procs for deadlock
	// reporting. It is per-scheduler (not package-global) so that
	// independent schedulers — shard-group workers, parallel chaos
	// sweeps — can run on separate goroutines without sharing state.
	blocked map[*Proc]struct{}
}

// recentNamesSize bounds the livelock diagnostic ring.
const recentNamesSize = 8

// New returns a Scheduler whose clock reads zero and whose deterministic
// random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		blocked: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Seed reports the seed the deterministic random source was created
// with, so trace reports can record how to replay a run.
func (s *Scheduler) Seed() int64 { return s.seed }

// Rand returns the scheduler's deterministic random source. It must only
// be used from managed procs or timer callbacks so that draws happen in a
// deterministic order.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Go spawns fn as a managed proc named name and schedules it to run. It
// may be called before Run or from inside another managed proc.
func (s *Scheduler) Go(name string, fn func()) *Proc {
	return s.spawn(name, fn, false)
}

// GoDaemon spawns a proc that services others indefinitely (a NIC
// engine, an event loop). Blocked daemons do not count as a deadlock:
// when only daemons remain and no timers are pending, Run returns.
func (s *Scheduler) GoDaemon(name string, fn func()) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Scheduler) spawn(name string, fn func(), daemon bool) *Proc {
	s.nextProcID++
	p := &Proc{
		s:      s,
		id:     s.nextProcID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
	}
	if !daemon {
		s.live++
	}
	s.pushRunq(p)
	go p.main(fn)
	return p
}

// Run executes managed procs until no proc is runnable and no timer is
// pending. It panics if live procs remain blocked with nothing scheduled
// to wake them (a simulation deadlock), identifying the stuck procs.
func (s *Scheduler) Run() {
	s.deadlockFatal = true
	defer func() { s.deadlockFatal = false }()
	s.runWhile(func() bool { return true })
}

// RunFor executes like Run but stops once the virtual clock would advance
// past the given horizon; procs parked beyond the horizon stay parked and
// the clock is left at the horizon.
func (s *Scheduler) RunFor(d time.Duration) {
	deadline := s.now + d
	s.runWhile(func() bool {
		if s.runqLen() > 0 {
			return true
		}
		return len(s.timers) > 0 && s.timers[0].when <= deadline
	})
	if s.now < deadline && s.runqLen() == 0 {
		s.now = deadline
	}
}

// RunUntil executes managed procs strictly below the given horizon:
// every runnable proc and every timer with deadline < horizon is
// processed, and the clock is left at the last processed instant (it
// is NOT advanced to the horizon — pending work beyond it stays
// pending). Blocked procs are tolerated: a shard whose procs wait on
// cross-shard traffic is not a deadlock, the next window's mailbox
// drain may wake them. This is the per-window primitive of the
// conservative parallel engine (see ShardGroup).
func (s *Scheduler) RunUntil(horizon time.Duration) {
	s.runWhile(func() bool {
		if s.runqLen() > 0 {
			return true
		}
		return len(s.timers) > 0 && s.timers[0].when < horizon
	})
}

// NextEventTime reports the virtual time of the earliest pending work:
// now when a proc is runnable, else the earliest timer deadline. ok is
// false when nothing is pending. A cancelled timer at the top of the
// heap is reported as-is — an earlier-than-real bound only shrinks the
// caller's window, which is always safe.
func (s *Scheduler) NextEventTime() (time.Duration, bool) {
	if s.runqLen() > 0 {
		return s.now, true
	}
	if len(s.timers) > 0 {
		return s.timers[0].when, true
	}
	return 0, false
}

// LiveBlocked reports the number of non-daemon procs that are alive but
// not runnable and have no pending wake-up — the procs a deadlock
// report would name.
func (s *Scheduler) LiveBlocked() int {
	if s.live == 0 {
		return 0
	}
	n := 0
	wakeable := s.wakeableSet()
	for p := range s.blocked {
		if !p.done && !p.daemon && !wakeable[p] {
			n++
		}
	}
	return n
}

// Stop makes the current Run call return after the running proc next
// parks. Procs and timers are left in place; Run may be called again.
func (s *Scheduler) Stop() { s.stopped = true }

func (s *Scheduler) runWhile(cond func() bool) {
	s.stopped = false
	for !s.stopped {
		if s.runqLen() == 0 {
			if len(s.timers) == 0 {
				if s.live > 0 && s.deadlockFatal {
					panic("sim: deadlock: " + s.blockedReport())
				}
				return
			}
			if !cond() {
				return
			}
			s.fireNextTimers()
			continue
		}
		if !cond() {
			return
		}
		p := s.popRunq()
		s.sameInstant++
		if s.sameInstant > sameInstantLimit {
			panic(fmt.Sprintf("sim: livelock: %d dispatches at t=%v without the clock advancing; recent procs: %v",
				s.sameInstant, s.now, s.recentNameList()))
		}
		s.recentNames[s.recentHead] = p.name
		s.recentHead = (s.recentHead + 1) % recentNamesSize
		if s.recentLen < recentNamesSize {
			s.recentLen++
		}
		s.dispatch(p)
	}
}

// recentNameList renders the livelock ring oldest-first.
func (s *Scheduler) recentNameList() []string {
	out := make([]string, 0, s.recentLen)
	start := (s.recentHead - s.recentLen + recentNamesSize) % recentNamesSize
	for i := 0; i < s.recentLen; i++ {
		out = append(out, s.recentNames[(start+i)%recentNamesSize])
	}
	return out
}

// --- Run queue ------------------------------------------------------------

// runqLen reports the number of runnable procs.
func (s *Scheduler) runqLen() int { return len(s.runq) - s.runqHead }

func (s *Scheduler) pushRunq(p *Proc) { s.runq = append(s.runq, p) }

func (s *Scheduler) popRunq() *Proc {
	p := s.runq[s.runqHead]
	s.runq[s.runqHead] = nil
	s.runqHead++
	if s.runqHead == len(s.runq) {
		s.runq = s.runq[:0]
		s.runqHead = 0
	} else if s.runqHead > 1024 && s.runqHead > len(s.runq)/2 {
		// Slide the live tail down so a never-empty queue cannot grow
		// without bound.
		n := copy(s.runq, s.runq[s.runqHead:])
		for i := n; i < len(s.runq); i++ {
			s.runq[i] = nil
		}
		s.runq = s.runq[:n]
		s.runqHead = 0
	}
	return p
}

// sameInstantLimit bounds dispatches at one virtual instant; a genuine
// workload never needs millions of zero-time steps, so exceeding it
// indicates two procs readying each other in a cycle.
const sameInstantLimit = 2_000_000

// dispatch resumes p and blocks until it parks or exits.
func (s *Scheduler) dispatch(p *Proc) {
	s.cur = p
	DebugDispatches.Add(1)
	if DebugTrace.Load() {
		DebugLastProc.Store(p.name)
	}
	p.resume <- struct{}{}
	<-s.yielded
	s.cur = nil
}

// Debug counters for diagnosing stalls (read racily by probes). The
// counters are always maintained; the last-proc/last-park strings
// allocate on every dispatch, so they are only recorded while DebugTrace
// is set.
var (
	DebugTrace      atomic.Bool
	DebugDispatches atomic.Int64
	DebugTimerFires atomic.Int64
	DebugParks      atomic.Int64
	DebugLastProc   atomic.Value
	DebugLastPark   atomic.Value
)

// fireNextTimers advances the clock to the earliest timer deadline and
// fires every timer due at that instant, in scheduling order. Cancelled
// timers are dropped (and recycled) as they surface.
func (s *Scheduler) fireNextTimers() {
	t := s.timers[0].when
	if t < s.now {
		t = s.now // timers scheduled "in the past" fire now
	}
	if t > s.now {
		s.sameInstant = 0
		s.recentHead = 0
		s.recentLen = 0
	}
	s.now = t
	for len(s.timers) > 0 && s.timers[0].when <= s.now {
		DebugTimerFires.Add(1)
		tm := heap.Pop(&s.timers).(*timer)
		if tm.cancelled {
			s.cancelledTimers--
			s.putTimer(tm)
			continue
		}
		// Copy what the fire needs, then recycle: the callback itself may
		// schedule new timers (and will happily reuse this struct).
		fn, fnArg, arg, p := tm.fn, tm.fnArg, tm.arg, tm.p
		s.putTimer(tm)
		switch {
		case fn != nil:
			fn()
		case fnArg != nil:
			fnArg(arg)
		default:
			s.ready(p)
		}
	}
}

// ready marks p runnable.
func (s *Scheduler) ready(p *Proc) {
	if p.done {
		panic("sim: waking finished proc " + p.name)
	}
	s.pushRunq(p)
}

// --- Timers ---------------------------------------------------------------

// getTimer takes a timer from the free list or allocates one.
func (s *Scheduler) getTimer() *timer {
	if n := len(s.freeTimers); n > 0 {
		tm := s.freeTimers[n-1]
		s.freeTimers[n-1] = nil
		s.freeTimers = s.freeTimers[:n-1]
		return tm
	}
	return &timer{s: s}
}

// putTimer recycles a timer popped from the heap. Bumping gen makes
// every outstanding Timer handle to it inert.
func (s *Scheduler) putTimer(tm *timer) {
	tm.gen++
	tm.p = nil
	tm.fn = nil
	tm.fnArg = nil
	tm.arg = nil
	tm.cancelled = false
	s.freeTimers = append(s.freeTimers, tm)
}

// after registers a timer at now+d. Exactly one of p, fn or fnArg is
// set: p is a parked proc to wake, fn/fnArg an inline callback.
func (s *Scheduler) after(d time.Duration, p *Proc, fn func(), fnArg func(any), arg any) *timer {
	if d < 0 {
		d = 0
	}
	s.seq++
	tm := s.getTimer()
	tm.when = s.now + d
	tm.seq = s.seq
	tm.p = p
	tm.fn = fn
	tm.fnArg = fnArg
	tm.arg = arg
	heap.Push(&s.timers, tm)
	return tm
}

// AfterFunc schedules fn to run on the scheduler loop at now+d. fn must
// not block; it typically enqueues data and signals a Cond. It returns a
// handle whose Cancel method stops an unfired timer.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) Timer {
	tm := s.after(d, nil, fn, nil, nil)
	return Timer{tm: tm, gen: tm.gen}
}

// AfterFuncArg is AfterFunc for a shared callback with a per-event
// argument. Passing a pointer argument through a package-level callback
// avoids allocating a fresh closure per event — the shape of per-packet
// work like fabric deliveries.
func (s *Scheduler) AfterFuncArg(d time.Duration, fn func(any), arg any) Timer {
	tm := s.after(d, nil, nil, fn, arg)
	return Timer{tm: tm, gen: tm.gen}
}

// wakeableSet collects the procs that have a pending wake-up: they are
// runnable, or a live timer will ready them.
func (s *Scheduler) wakeableSet() map[*Proc]bool {
	wakeable := make(map[*Proc]bool, s.runqLen())
	for _, p := range s.runq[s.runqHead:] {
		wakeable[p] = true
	}
	for _, tm := range s.timers {
		if tm.p != nil && !tm.cancelled {
			wakeable[tm.p] = true
		}
	}
	return wakeable
}

// blockedReport describes the procs that are alive but not runnable, for
// deadlock diagnostics: each stuck proc's name with the site it parked
// at ("wait cq@dst", "recv work", "sleep", …), plus the ring of most
// recently dispatched procs — the same diagnostic the livelock path
// reports — so the report shows both who is stuck and who ran last.
func (s *Scheduler) blockedReport() string {
	wakeable := s.wakeableSet()
	var names []string
	for p := range s.blocked {
		if !p.done && !p.daemon && !wakeable[p] {
			names = append(names, fmt.Sprintf("%s (blocked at: %s)", p.name, p.blockedOn))
		}
	}
	sort.Strings(names)
	return fmt.Sprintf("%d proc(s) blocked forever at t=%v: %v; recently dispatched: %v",
		len(names), s.now, names, s.recentNameList())
}

// Timer is a handle to a pending AfterFunc callback. The zero value is
// inert: Cancel on it reports false. Handles are values; copying one
// copies the (timer, generation) pair, and a handle outlives its timer
// harmlessly — once the timer fires or is compacted away, the struct is
// recycled under a new generation and old handles no longer match.
type Timer struct {
	tm  *timer
	gen uint64
}

// Cancel stops the timer if it has not fired. It reports whether the
// cancellation prevented the callback. The timer stays in the heap and
// is dropped lazily when it surfaces at pop — or in one compaction pass
// if cancelled entries come to outnumber live ones (a cancel-heavy
// workload like per-message retransmission timers re-armed on every
// ACK).
func (t Timer) Cancel() bool {
	tm := t.tm
	if tm == nil || tm.gen != t.gen || tm.cancelled {
		return false
	}
	tm.cancelled = true
	s := tm.s
	s.cancelledTimers++
	if s.cancelledTimers > len(s.timers)/2 && len(s.timers) >= compactMinTimers {
		s.compactTimers()
	}
	return true
}

// compactMinTimers is the heap size below which compaction is not worth
// the pass; lazy pop-side dropping handles small heaps fine.
const compactMinTimers = 64

// compactTimers removes every cancelled timer from the heap in one pass
// and restores the heap invariant. Relative order of live timers is
// fully determined by (when, seq), so compaction cannot reorder fires.
func (s *Scheduler) compactTimers() {
	live := s.timers[:0]
	for _, tm := range s.timers {
		if tm.cancelled {
			s.cancelledTimers--
			s.putTimer(tm)
		} else {
			live = append(live, tm)
		}
	}
	for i := len(live); i < len(s.timers); i++ {
		s.timers[i] = nil
	}
	s.timers = live
	heap.Init(&s.timers)
}

// TimerHeapLen reports the number of entries (live plus
// not-yet-collected cancelled) in the timer heap — a test hook for the
// cancellation bookkeeping.
func (s *Scheduler) TimerHeapLen() int { return len(s.timers) }

type timer struct {
	s         *Scheduler
	when      time.Duration
	seq       uint64
	p         *Proc     // proc to wake, or
	fn        func()    // inline callback, or
	fnArg     func(any) // shared callback taking arg
	arg       any
	cancelled bool
	gen       uint64 // bumped on recycle; stale handles check it
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tm
}

// BlockedReport describes procs that are alive but not currently
// runnable, with their park reasons — a diagnostic for stalled
// simulations.
func (s *Scheduler) BlockedReport() string { return s.blockedReport() }
