package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedDispatch measures the cost of one proc dispatch round
// trip (resume the proc, proc parks, control returns to the loop) — the
// fundamental unit the event engine pays for every managed-proc step.
func BenchmarkSchedDispatch(b *testing.B) {
	s := New(1)
	s.Go("spin", func() {
		for i := 0; i < b.N; i++ {
			s.Yield()
			// Nudge the clock well inside the livelock limit so large
			// b.N does not read as a dispatch cycle.
			if i%1_000_000 == 999_999 {
				s.Sleep(time.Nanosecond)
			}
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimerFire measures the timer-only fast path: a chain of
// AfterFunc callbacks with no managed proc involved, the shape of the
// fabric's entire delivery load.
func BenchmarkTimerFire(b *testing.B) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.AfterFunc(time.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	s.AfterFunc(time.Nanosecond, tick)
	s.Run()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkTimerCancel measures the arm/cancel cycle that retransmission
// timers exercise on every acknowledged message: the cancelled timer
// must not burden later heap operations.
func BenchmarkTimerCancel(b *testing.B) {
	s := New(1)
	s.Go("arm-cancel", func() {
		for i := 0; i < b.N; i++ {
			tm := s.AfterFunc(time.Millisecond, func() {})
			tm.Cancel()
			if i%1024 == 1023 {
				s.Sleep(time.Microsecond)
			}
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkSleep measures a proc sleeping through a timer, covering the
// park → timer fire → ready → dispatch path.
func BenchmarkSleep(b *testing.B) {
	s := New(1)
	s.Go("sleeper", func() {
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	s.Run()
}
