//go:build race

package sim

// RaceEnabled reports whether the binary was built with the race
// detector. The shard-group engine falls back to sequential window
// execution under -race (see DESIGN.md §10): the barrier protocol is
// race-free by construction, but the detector's happens-before
// tracking across thousands of proc goroutines multiplies both memory
// and runtime, and a sequential pass exercises the byte-identical
// event order anyway — so the race job spends its budget on the
// workload's own races instead of the worker pool's.
const RaceEnabled = true
