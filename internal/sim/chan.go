package sim

// Chan is a FIFO channel between managed procs with the blocking
// semantics of a buffered Go channel. A capacity of zero gives rendezvous
// behaviour: Send blocks until a receiver takes the value.
type Chan[T any] struct {
	s      *Scheduler
	name   string
	buf    []T
	cap    int
	sendq  []*chanWaiter[T] // senders blocked because the buffer is full
	recvq  []*chanWaiter[T] // receivers blocked because the buffer is empty
	closed bool
}

type chanWaiter[T any] struct {
	p   *Proc
	val T    // value being sent (senders) or received (receivers)
	ok  bool // for receivers: whether a value was delivered
}

// NewChan creates a channel with the given buffer capacity.
func NewChan[T any](s *Scheduler, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{s: s, name: name, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking while the buffer is full (or, for a
// rendezvous channel, until a receiver arrives). Sending on a closed
// channel panics, as with native channels.
func (c *Chan[T]) Send(v T) {
	if c.closed {
		panic("sim: send on closed channel " + c.name)
	}
	// Direct hand-off to a waiting receiver.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		c.s.ready(w.p)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Block until a receiver makes room or takes the value directly.
	p := c.s.current("Chan.Send")
	w := &chanWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, w)
	p.park("send " + c.name)
	if c.closed && !w.ok {
		panic("sim: channel " + c.name + " closed while sending")
	}
}

// TrySend delivers v without blocking, reporting whether it was accepted.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed channel " + c.name)
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		c.s.ready(w.p)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv takes the next value, blocking while the channel is empty. The
// second result is false when the channel is closed and drained.
func (c *Chan[T]) Recv() (T, bool) {
	if v, ok, ready := c.tryRecvLocked(); ready {
		return v, ok
	}
	p := c.s.current("Chan.Recv")
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	p.park("recv " + c.name)
	return w.val, w.ok
}

// TryRecv takes a value without blocking. ok is false when nothing was
// available (including the closed-and-drained case).
func (c *Chan[T]) TryRecv() (T, bool) {
	v, ok, _ := c.tryRecvLocked()
	return v, ok
}

// tryRecvLocked attempts a non-blocking receive. ready reports whether
// the receive completed (with a value, or definitively empty-and-closed).
func (c *Chan[T]) tryRecvLocked() (v T, ok, ready bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A blocked sender can now place its value into the buffer.
		if len(c.sendq) > 0 {
			w := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, w.val)
			w.ok = true
			c.s.ready(w.p)
		}
		return v, true, true
	}
	// Rendezvous: take directly from a blocked sender.
	if len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		w.ok = true
		c.s.ready(w.p)
		return w.val, true, true
	}
	if c.closed {
		return v, false, true
	}
	return v, false, false
}

// Close closes the channel, waking blocked receivers with ok=false.
// Blocked senders panic, as with native channels.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("sim: close of closed channel " + c.name)
	}
	c.closed = true
	for _, w := range c.recvq {
		w.ok = false
		c.s.ready(w.p)
	}
	c.recvq = nil
	for _, w := range c.sendq {
		c.s.ready(w.p) // they will observe closed and panic
	}
	c.sendq = nil
}
