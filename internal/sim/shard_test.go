package sim

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"
)

// shardRing builds a K-shard token ring: each shard runs a proc that
// periodically posts tokens to its successor's mailbox, and every
// arrival is logged with its (time, source, value). The per-shard logs
// folded in shard order form the determinism digest. The workload
// draws from each shard's RNG and mixes local timers with cross-shard
// traffic, so it exercises exactly the state the window protocol must
// keep bit-stable.
func shardRing(t testing.TB, shards, workers int, seed int64) (digest uint64, events int, windows int64) {
	t.Helper()
	const lookahead = time.Microsecond
	g := NewShardGroup(seed, shards, lookahead)
	g.SetWorkers(workers)

	logs := make([][]string, shards)
	type token struct {
		src int
		val int64
	}
	// Wire the ring.
	for i := 0; i < shards; i++ {
		i := i
		next := (i + 1) % shards
		m := g.NewMailbox(i, next, 0)
		dst := g.Shard(next)
		m.SetDeliver(func(e MailboxEntry) {
			tk := e.Data.(token)
			when := e.When
			dst.AfterFunc(when-dst.Now(), func() {
				logs[next] = append(logs[next], fmt.Sprintf("%d:%d:%d:%d", dst.Now(), tk.src, tk.val, e.Seq))
			})
		})
		s := g.Shard(i)
		s.Go(fmt.Sprintf("ring-%d", i), func() {
			for k := 0; k < 200; k++ {
				// Jittered pacing from the shard's own RNG: worker-count
				// nondeterminism anywhere would desynchronize the draws.
				s.Sleep(time.Duration(1+s.Rand().Intn(5)) * time.Microsecond)
				m.Put(s.Now()+lookahead, token{src: i, val: s.Rand().Int63()})
			}
		})
	}
	g.Run()

	h := fnv.New64a()
	for i := 0; i < shards; i++ {
		events += len(logs[i])
		for _, l := range logs[i] {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
	}
	return h.Sum64(), events, g.Windows
}

// TestShardGroupDeterministicAcrossWorkers is the engine's core
// contract: the same workload at the same root seed produces a
// byte-identical event history at every worker count.
func TestShardGroupDeterministicAcrossWorkers(t *testing.T) {
	baseDigest, baseEvents, _ := shardRing(t, 8, 1, 42)
	if baseEvents != 8*200 {
		t.Fatalf("expected %d deliveries, got %d", 8*200, baseEvents)
	}
	for _, workers := range []int{2, 4, 8} {
		d, n, _ := shardRing(t, 8, workers, 42)
		if n != baseEvents {
			t.Errorf("workers=%d delivered %d events, want %d", workers, n, baseEvents)
		}
		if d != baseDigest {
			t.Errorf("workers=%d digest %x != sequential %x", workers, d, baseDigest)
		}
	}
}

// TestShardGroupSeedSensitivity guards against the digest being
// trivially constant.
func TestShardGroupSeedSensitivity(t *testing.T) {
	d1, _, _ := shardRing(t, 4, 1, 1)
	d2, _, _ := shardRing(t, 4, 1, 2)
	if d1 == d2 {
		t.Fatal("different seeds produced identical digests; workload is not seed-sensitive")
	}
}

// TestDeriveSeedStable pins the derivation so recorded runs stay
// replayable across refactors.
func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) {
		t.Fatal("shard seeds collide")
	}
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("derivation not stable")
	}
}

// TestShardGroupRunUntilTime checks the clipped-window mode: no shard
// processes an event at or beyond the limit.
func TestShardGroupRunUntilTime(t *testing.T) {
	g := NewShardGroup(7, 2, time.Microsecond)
	var fired []time.Duration
	s := g.Shard(0)
	for _, d := range []time.Duration{time.Microsecond, 5 * time.Microsecond, 20 * time.Microsecond} {
		d := d
		s.AfterFunc(d, func() { fired = append(fired, d) })
	}
	g.RunUntilTime(10 * time.Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want the two timers below the limit", fired)
	}
	g.RunUntilTime(30 * time.Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired %v after extending the limit", fired)
	}
}

// TestMailboxBound verifies the bounded-mailbox diagnostic.
func TestMailboxBound(t *testing.T) {
	g := NewShardGroup(1, 2, time.Microsecond)
	m := g.NewMailbox(0, 1, 2)
	m.Put(time.Microsecond, 1)
	m.Put(time.Microsecond, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected bound panic")
		}
		if !strings.Contains(fmt.Sprint(r), "over its 2-entry bound") {
			t.Fatalf("unhelpful bound panic: %v", r)
		}
	}()
	m.Put(time.Microsecond, 3)
}

// benchShardRing times the 8-shard token ring at a worker count; the
// Workers1/Workers8 pair's ns/op ratio is the engine's parallel
// speedup on the current machine (≈1x on a single core).
func benchShardRing(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		shardRing(b, 8, workers, 42)
	}
}

func BenchmarkShardRingWorkers1(b *testing.B) { benchShardRing(b, 1) }
func BenchmarkShardRingWorkers8(b *testing.B) { benchShardRing(b, 8) }

// TestShardGroupDeadlockReport: a proc stuck on one shard must surface
// in the group-level deadlock panic with its name and park site.
func TestShardGroupDeadlockReport(t *testing.T) {
	g := NewShardGroup(3, 2, time.Microsecond)
	s := g.Shard(1)
	c := NewCond(s, "never-signaled")
	s.Go("stuck-waiter", func() { c.Wait() })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected shard group deadlock panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"shard 1", "stuck-waiter", "wait never-signaled"} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock panic missing %q:\n%s", want, msg)
			}
		}
	}()
	g.Run()
}
