package sim

import "time"

// Cond is a condition variable for managed procs. Because the scheduler
// is cooperative (exactly one proc runs at a time) there is no associated
// lock: the running proc has exclusive access to shared state by
// construction, and Wait atomically parks and releases the CPU.
type Cond struct {
	s          *Scheduler
	name       string
	parkReason string // precomputed "wait <name>" so Wait never allocates
	waiters    []*Proc
}

// NewCond creates a condition variable.
func NewCond(s *Scheduler, name string) *Cond {
	return &Cond{s: s, name: name, parkReason: "wait " + name}
}

// Wait parks the current proc until Signal or Broadcast wakes it. As with
// sync.Cond, callers must re-check their predicate in a loop.
func (c *Cond) Wait() {
	p := c.s.current("Cond.Wait")
	c.waiters = append(c.waiters, p)
	p.park(c.parkReason)
}

// WaitTimeout parks the current proc until woken or until d elapses. It
// reports whether the proc was woken by Signal/Broadcast (true) rather
// than by the timeout (false).
func (c *Cond) WaitTimeout(d time.Duration) bool {
	p := c.s.current("Cond.WaitTimeout")
	c.waiters = append(c.waiters, p)
	fired := false
	tm := c.s.AfterFunc(d, func() {
		// Still waiting? Remove from the queue and wake with timeout.
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				fired = true
				c.s.ready(p)
				return
			}
		}
	})
	p.park(c.parkReason)
	if !fired {
		tm.Cancel()
	}
	return !fired
}

// Signal wakes one waiting proc, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	// Shift down rather than re-slice so the backing array's capacity is
	// kept for future waiters.
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	c.s.ready(p)
}

// Broadcast wakes every waiting proc.
func (c *Cond) Broadcast() {
	for i, p := range c.waiters {
		c.s.ready(p)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// WaitGroup waits for a collection of procs to finish, mirroring
// sync.WaitGroup for managed procs.
type WaitGroup struct {
	n    int
	cond *Cond
}

// NewWaitGroup creates a WaitGroup.
func NewWaitGroup(s *Scheduler, name string) *WaitGroup {
	return &WaitGroup{cond: NewCond(s, name)}
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	for wg.n > 0 {
		wg.cond.Wait()
	}
}
