package sim

import "time"

// Proc is a managed goroutine scheduled cooperatively by a Scheduler.
type Proc struct {
	s         *Scheduler
	id        int64
	name      string
	resume    chan struct{}
	done      bool
	daemon    bool
	blockedOn string // human-readable reason, for deadlock reports
}

// Name returns the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// main is the goroutine body wrapping the user function.
func (p *Proc) main(fn func()) {
	<-p.resume // wait for first dispatch
	defer func() {
		p.done = true
		if !p.daemon {
			p.s.live--
		}
		// Hand control back to the scheduler loop without expecting a
		// further resume.
		p.s.yielded <- struct{}{}
	}()
	fn()
}

// park blocks the proc until the scheduler resumes it. The caller must
// have arranged for something (a timer, a cond signal, a channel op) to
// eventually mark the proc runnable.
func (p *Proc) park(reason string) {
	p.blockedOn = reason
	p.s.blocked[p] = struct{}{}
	DebugParks.Add(1)
	if DebugTrace.Load() {
		DebugLastPark.Store(p.name + ":" + reason)
	}
	p.s.yielded <- struct{}{}
	<-p.resume
	delete(p.s.blocked, p)
	p.blockedOn = ""
}

// current returns the currently executing proc, panicking if called from
// outside a managed proc (e.g. from an AfterFunc callback or native
// goroutine), where blocking is not allowed.
func (s *Scheduler) current(op string) *Proc {
	if s.cur == nil {
		panic("sim: " + op + " called outside a managed proc")
	}
	return s.cur
}

// Sleep parks the current proc for d of virtual time.
func (s *Scheduler) Sleep(d time.Duration) {
	p := s.current("Sleep")
	s.after(d, p, nil, nil, nil)
	p.park("sleep")
}

// Yield requeues the current proc behind other runnable procs, giving
// them a chance to run at the same virtual instant.
func (s *Scheduler) Yield() {
	p := s.current("Yield")
	s.ready(p)
	p.park("yield")
}
