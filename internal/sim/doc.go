// Package sim provides a cooperative, deterministic, virtual-time
// scheduler that the whole MigrRDMA simulation runs on.
//
// Every simulated activity (an application thread, an RNIC processing
// engine, the CRIU migration tool, a link delivering packets) runs as a
// managed proc spawned with Scheduler.Go. Exactly one proc executes at a
// time; when a proc blocks (Sleep, channel operation, condition wait) the
// scheduler picks the next runnable proc, and when no proc is runnable it
// advances the virtual clock to the earliest pending timer. Execution is
// therefore fully deterministic: the same program produces the same
// interleaving and the same virtual-time measurements on every run.
//
// The package deliberately mirrors the shape of the standard library
// (Chan behaves like a Go channel, Cond like sync.Cond) so that simulated
// components read like ordinary concurrent Go code.
//
// Two rules keep the model sound:
//
//  1. Managed procs must block only through sim primitives. Blocking on a
//     native channel or mutex from inside a managed proc would stall the
//     scheduler (it waits for the running proc to park).
//  2. Inline timer callbacks registered with AfterFunc run on the
//     scheduler loop and must not block; they exist so that high-rate
//     events (per-packet deliveries) do not pay a goroutine spawn each.
package sim
