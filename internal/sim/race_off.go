//go:build !race

package sim

// RaceEnabled reports whether the binary was built with the race
// detector; see race_on.go for why the shard engine serializes when it
// is set.
const RaceEnabled = false
