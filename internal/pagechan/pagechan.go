// Package pagechan implements the pipelined multi-stream page channel
// (DESIGN.md §12): instead of dumping a whole image and then shipping
// it in one blocking transfer, the source dumps pages into fixed-size
// chunks that stream over K concurrent link streams while the
// destination applies chunks as they land — dump, wire time, and apply
// overlap instead of summing.
//
// The channel is content-aware. Zero pages ship as a 16-byte header
// instead of full content, and a per-page content-hash table elides
// pages whose bytes are unchanged since they were last shipped
// (dirty-bit false positives: the tracker marks a page dirty on any
// write, even one that restores identical bytes). Elision is sound
// because every page the channel ships is applied on the destination
// before the next round begins, so "unchanged since last shipped"
// means the destination already holds those bytes.
package pagechan

import (
	"errors"
	"fmt"
	"time"

	"migrrdma/internal/criu"
	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/sim"
)

// Defaults and on-wire framing constants. The per-page header matches
// criu.Image.ByteSize's 16-byte per-page record overhead, so monolithic
// and pipelined wire totals are directly comparable; a zero page ships
// only that header.
const (
	DefaultStreams    = 4
	DefaultChunkPages = 64

	chunkHeader = 64 // per-chunk framing (seq, count, round tag)
	pageHeader  = 16 // per-page record header (address + flags)
)

// ErrAborted is returned by Stream when the channel was aborted —
// either by a compensation calling Abort or by a prior failure.
var ErrAborted = errors.New("pagechan: channel aborted")

// ErrInjected marks the FailAt test hook firing mid-round (chaos
// mid-chunk abort coverage).
var ErrInjected = errors.New("pagechan: injected mid-chunk fault")

// Chunk is one pipeline unit: a bounded batch of dumped pages plus the
// addresses of pages that were all zero (shipped header-only).
type Chunk struct {
	Seq   uint64
	Pages []criu.PageRec // full-content pages
	Zeros []mem.Addr     // all-zero pages, header-only on the wire
}

// WireBytes is the chunk's on-wire size.
func (c *Chunk) WireBytes() int {
	return chunkHeader + len(c.Pages)*(mem.PageSize+pageHeader) + len(c.Zeros)*pageHeader
}

// RoundStats describes one streamed round (predump, a pre-copy
// iteration, or the final stop-and-copy diff).
type RoundStats struct {
	Round       string
	PagesDumped int   // pages read from the source this round
	PagesSent   int   // full-content pages shipped
	ZeroPages   int   // all-zero pages shipped header-only
	DupElided   int   // pages skipped entirely (content unchanged)
	Chunks      int   // chunks put on the wire
	WireBytes   int64 // total on-wire bytes this round

	Elapsed  time.Duration // wall time of the round, dump through last apply
	DumpTime time.Duration // time the producer spent reading pages
}

// Elided counts pages whose full content stayed off the wire.
func (s RoundStats) Elided() int { return s.ZeroPages + s.DupElided }

// Config parameterizes a Session.
type Config struct {
	Streams    int // concurrent sender procs (default DefaultStreams)
	ChunkPages int // pages per chunk (default DefaultChunkPages)

	// FailAtRound/FailAtChunk inject an abort after FailAtChunk chunks
	// of the named round have been enqueued — the chaos harness's
	// mid-chunk fault hook. Zero values disable it.
	FailAtRound string
	FailAtChunk int

	// Metrics, when set, receives per-round counters under the
	// "pagechan" component with {mig, round} labels plus a staged-chunk
	// gauge. Sessions only exist in pipelined mode, so these registrations
	// never perturb monolithic-mode metric snapshots (golden hashes).
	Metrics *metrics.Registry
	MigID   string

	// Tap, when set, observes channel events ("round", "send", "recv",
	// "apply", "abort") with the chunk sequence number; the chaos
	// harness folds these into its ledger.
	Tap func(ev string, seq uint64)
}

// Session is one migration's page channel. It lives on the source and
// drives chunks to a single destination; rounds are streamed one at a
// time via Stream. Not safe for use from multiple procs concurrently
// except Abort, which may be called from a compensation at any time.
type Session struct {
	sched *sim.Scheduler
	host  criu.HostServices
	peer  string
	cfg   Config

	dedup map[mem.Addr]uint64 // content hash of the last-shipped bytes

	cond    *sim.Cond
	sendQ   []*Chunk
	applyQ  []*Chunk
	apply   func(*Chunk)
	closed  bool
	aborted bool

	produced int // chunks enqueued this round
	finished int // chunks fully sent (and applied, when applying)
	staged   int // chunks received but not yet applied
	seq      uint64

	stagedG *metrics.Gauge
}

// NewSession opens a page channel from host to peer. host is the
// source host's services (the same interface criu.Tool consumes);
// sched must be the scheduler that host lives on.
func NewSession(sched *sim.Scheduler, host criu.HostServices, peer string, cfg Config) *Session {
	if cfg.Streams <= 0 {
		cfg.Streams = DefaultStreams
	}
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = DefaultChunkPages
	}
	s := &Session{
		sched: sched,
		host:  host,
		peer:  peer,
		cfg:   cfg,
		dedup: make(map[mem.Addr]uint64),
		cond:  sim.NewCond(sched, "pagechan"),
	}
	if cfg.Metrics != nil {
		s.stagedG = cfg.Metrics.Gauge("pagechan", "staged_chunks", metrics.Labels{"mig": cfg.MigID})
	}
	return s
}

// Staged reports chunks received by the destination side but not yet
// applied. After Abort it must be zero — compensations leave no staged
// pages behind.
func (s *Session) Staged() int { return s.staged }

// Aborted reports whether the channel has been aborted.
func (s *Session) Aborted() bool { return s.aborted }

func (s *Session) tap(ev string, seq uint64) {
	if s.cfg.Tap != nil {
		s.cfg.Tap(ev, seq)
	}
}

// Abort tears the channel down: staged and queued chunks are dropped,
// blocked workers are woken, and any Stream in progress returns
// ErrAborted once its in-flight transfers drain. Idempotent; safe to
// call from a phase compensation while no round is active.
func (s *Session) Abort() {
	if s.aborted {
		return
	}
	s.aborted = true
	dropped := uint64(len(s.sendQ) + len(s.applyQ))
	s.sendQ, s.applyQ = nil, nil
	s.staged = 0
	if s.stagedG != nil {
		s.stagedG.Set(0)
	}
	s.tap("abort", dropped)
	s.cond.Broadcast()
}

// Stream ships one round of pages. addrs selects the pages (from
// criu.Tool.BeginDump); dump reads one batch of page contents at the
// dump cost model's rate; apply, when non-nil, applies a landed chunk
// on the destination (nil for the predump round, where no restore
// exists yet — the round then overlaps dump with wire time only).
//
// The calling proc is the producer: it dumps chunk-sized batches and
// feeds a bounded window (2×Streams chunks) so memory stays bounded
// and dump throttles to wire speed. Stream spawns the sender and
// applier procs for the round and tears them down before returning.
// Chunks may land out of order across the K streams; that is sound
// because page addresses within a round are unique and chunks are
// independent.
func (s *Session) Stream(round string, addrs []mem.Addr,
	dump func([]mem.Addr) []criu.PageRec, apply func(*Chunk)) (RoundStats, error) {

	st := RoundStats{Round: round}
	if s.aborted {
		return st, ErrAborted
	}
	if len(addrs) == 0 {
		return st, nil
	}
	start := s.host.Now()
	s.tap("round", uint64(len(addrs)))
	s.closed = false
	s.produced, s.finished = 0, 0
	s.apply = apply

	workers := sim.NewWaitGroup(s.sched, "pagechan-workers")
	for i := 0; i < s.cfg.Streams; i++ {
		workers.Add(1)
		name := fmt.Sprintf("pagechan-send-%d", i)
		s.sched.Go(name, func() {
			defer workers.Done()
			s.sender()
		})
	}
	if apply != nil {
		workers.Add(1)
		s.sched.Go("pagechan-apply", func() {
			defer workers.Done()
			s.applier()
		})
	}

	var err error
	for off := 0; off < len(addrs) && err == nil; off += s.cfg.ChunkPages {
		end := off + s.cfg.ChunkPages
		if end > len(addrs) {
			end = len(addrs)
		}
		t0 := s.host.Now()
		recs := dump(addrs[off:end])
		st.DumpTime += s.host.Now() - t0
		st.PagesDumped += len(recs)
		ch := s.buildChunk(recs, &st)
		// Bounded pipeline window: throttle the dump to wire speed.
		for !s.aborted && s.produced-s.finished >= 2*s.cfg.Streams {
			s.cond.Wait()
		}
		if s.aborted {
			err = ErrAborted
			break
		}
		if ch == nil {
			continue // whole batch elided: nothing on the wire
		}
		s.seq++
		ch.Seq = s.seq
		s.produced++
		st.Chunks++
		st.WireBytes += int64(ch.WireBytes())
		s.sendQ = append(s.sendQ, ch)
		s.tap("send", ch.Seq)
		s.cond.Broadcast()
		if s.cfg.FailAtChunk > 0 && round == s.cfg.FailAtRound && st.Chunks >= s.cfg.FailAtChunk {
			s.Abort()
			err = fmt.Errorf("%w (round %s, chunk %d)", ErrInjected, round, st.Chunks)
		}
	}
	s.closed = true
	s.cond.Broadcast()
	for !s.aborted && s.finished < s.produced {
		s.cond.Wait()
	}
	if s.aborted && err == nil {
		err = ErrAborted
	}
	workers.Wait()
	s.apply = nil
	st.Elapsed = s.host.Now() - start
	s.record(st)
	return st, err
}

// buildChunk filters one dumped batch through the elision table.
func (s *Session) buildChunk(recs []criu.PageRec, st *RoundStats) *Chunk {
	ch := &Chunk{}
	for _, r := range recs {
		h := hashPage(r.Data)
		if prev, ok := s.dedup[r.Addr]; ok && prev == h {
			st.DupElided++
			continue
		}
		s.dedup[r.Addr] = h
		if mem.AllZero(r.Data) {
			ch.Zeros = append(ch.Zeros, r.Addr)
			st.ZeroPages++
			continue
		}
		ch.Pages = append(ch.Pages, r)
		st.PagesSent++
	}
	if len(ch.Pages) == 0 && len(ch.Zeros) == 0 {
		return nil
	}
	return ch
}

func (s *Session) sender() {
	for {
		for !s.aborted && len(s.sendQ) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.aborted || len(s.sendQ) == 0 {
			return
		}
		ch := s.sendQ[0]
		s.sendQ = s.sendQ[1:]
		s.host.TransferTo(s.peer, ch.WireBytes())
		if s.aborted {
			return // chunk arrived after abort: dropped, never staged
		}
		s.tap("recv", ch.Seq)
		if s.apply == nil {
			s.finished++
			s.cond.Broadcast()
			continue
		}
		s.staged++
		if s.stagedG != nil {
			s.stagedG.Set(int64(s.staged))
		}
		s.applyQ = append(s.applyQ, ch)
		s.cond.Broadcast()
	}
}

func (s *Session) applier() {
	for {
		for !s.aborted && len(s.applyQ) == 0 && !(s.closed && s.finished == s.produced && len(s.sendQ) == 0) {
			s.cond.Wait()
		}
		if s.aborted || len(s.applyQ) == 0 {
			return
		}
		ch := s.applyQ[0]
		s.applyQ = s.applyQ[1:]
		s.apply(ch)
		s.staged--
		if s.stagedG != nil {
			s.stagedG.Set(int64(s.staged))
		}
		s.finished++
		s.tap("apply", ch.Seq)
		s.cond.Broadcast()
	}
}

// record folds a finished round into the registry (lazy, labelled by
// round so per-iteration bytes_on_wire / pages_elided are queryable).
func (s *Session) record(st RoundStats) {
	if s.cfg.Metrics == nil {
		return
	}
	l := metrics.Labels{"mig": s.cfg.MigID, "round": st.Round}
	s.cfg.Metrics.Counter("pagechan", "bytes_on_wire", l).Add(st.WireBytes)
	s.cfg.Metrics.Counter("pagechan", "pages_sent", l).Add(int64(st.PagesSent))
	s.cfg.Metrics.Counter("pagechan", "pages_elided", l).Add(int64(st.Elided()))
	s.cfg.Metrics.Counter("pagechan", "chunks_sent", l).Add(int64(st.Chunks))
}

// hashPage is FNV-1a 64 over the page bytes — the dedup table's
// content fingerprint. A collision would elide a genuinely changed
// page; at 2^-64 per pair over per-address histories this is
// negligible against the simulated error budget (DESIGN.md §12).
func hashPage(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
