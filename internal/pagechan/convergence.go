// The adaptive pre-copy convergence controller. Monolithic mode uses a
// fixed iteration budget (MaxPreCopyIters) with a dirty-page floor;
// pipelined mode replaces that pair with a dirty-rate model: keep
// iterating only while the predicted final-transfer time is still
// shrinking by a worthwhile factor per round.
package pagechan

import "time"

// Convergence defaults. An extra round ships the current dirty set at
// the channel's measured rate while the workload re-dirties pages at
// its own rate; the dirty set after the round is roughly
// dirty × (dirtyRate/sendRate), so that ratio is the per-round shrink
// factor of the predicted final transfer. Below 1−Epsilon the round
// pays for itself; at or above it we stop and take the blackout now.
const (
	DefaultEpsilon  = 0.25
	DefaultMaxIters = 16
)

// Controller decides, round by round, whether another pre-copy
// iteration is worth running. It is pure bookkeeping — no scheduler or
// host access — so it is unit-testable in isolation.
type Controller struct {
	FloorPages int     // converged when the dirty set is at or below this
	MaxIters   int     // hard safety cap on rounds
	Epsilon    float64 // minimum per-round shrink of the predicted final transfer

	iters     int
	haveModel bool
	sendRate  float64 // pages/s the channel moved last round
	dirtyRate float64 // pages/s the workload dirtied last round
}

// NewController returns a controller with the given convergence floor
// (non-positive values fall back to 64 pages) and default model knobs.
func NewController(floorPages int) *Controller {
	if floorPages <= 0 {
		floorPages = 64
	}
	return &Controller{FloorPages: floorPages, MaxIters: DefaultMaxIters, Epsilon: DefaultEpsilon}
}

// Iters reports how many rounds have been observed.
func (c *Controller) Iters() int { return c.iters }

// Observe folds one finished round into the model: st is the round the
// channel just streamed, dirtyAfter the dirty-page count measured once
// it completed.
func (c *Controller) Observe(st RoundStats, dirtyAfter int) {
	c.iters++
	if st.Elapsed > 0 && st.PagesDumped > 0 {
		el := float64(st.Elapsed) / float64(time.Second)
		c.sendRate = float64(st.PagesDumped) / el
		c.dirtyRate = float64(dirtyAfter) / el
		c.haveModel = true
	}
}

// Continue reports whether another pre-copy round is worth running
// given the current dirty-page count. Stops when the dirty set has
// shrunk to the floor (converged), at the safety cap, or when the
// model predicts the final-transfer time would no longer shrink by at
// least Epsilon per round — including the diverging case where the
// workload dirties pages faster than the channel can ship them.
func (c *Controller) Continue(dirtyPages int) bool {
	if dirtyPages <= c.FloorPages {
		return false
	}
	if c.iters >= c.MaxIters {
		return false
	}
	if !c.haveModel {
		return true // no model yet: run one round to measure rates
	}
	if c.sendRate <= 0 {
		return false
	}
	return c.dirtyRate/c.sendRate < 1-c.Epsilon
}
