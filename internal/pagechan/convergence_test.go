package pagechan

import (
	"testing"
	"time"
)

// round fabricates a RoundStats with the given dump volume and elapsed
// time — the two inputs the controller's rate model consumes.
func round(pages int, elapsed time.Duration) RoundStats {
	return RoundStats{PagesDumped: pages, Elapsed: elapsed}
}

func TestControllerStopsAtFloor(t *testing.T) {
	c := NewController(64)
	if c.Continue(64) {
		t.Error("Continue(floor) = true, want converged")
	}
	if c.Continue(10) {
		t.Error("Continue(below floor) = true, want converged")
	}
	if !c.Continue(65) {
		t.Error("Continue(above floor, no model) = false, want one measuring round")
	}
}

func TestControllerStopsAtSafetyCap(t *testing.T) {
	c := NewController(1)
	// A workload that shrinks nicely every round must still stop at the
	// cap: shipping 1000 pages per 1ms round with only 100 re-dirtied
	// (shrink factor 0.1) never converges to the floor here.
	dirty := 1 << 30
	rounds := 0
	for c.Continue(dirty) {
		c.Observe(round(1000, time.Millisecond), 100)
		rounds++
		if rounds > DefaultMaxIters+1 {
			t.Fatalf("no stop after %d rounds", rounds)
		}
	}
	if rounds != DefaultMaxIters {
		t.Errorf("stopped after %d rounds, want the %d cap", rounds, DefaultMaxIters)
	}
}

func TestControllerStopsWhenDiverging(t *testing.T) {
	c := NewController(64)
	// The round shipped 500 pages in 1ms while the workload dirtied
	// 800: iterating can never shrink the final transfer.
	c.Observe(round(500, time.Millisecond), 800)
	if c.Continue(800) {
		t.Error("Continue = true for a diverging workload")
	}
}

func TestControllerStopsWhenShrinkStalls(t *testing.T) {
	c := NewController(64)
	// Shrink factor dirty/sent = 0.9 > 1-Epsilon (0.75): the predicted
	// final transfer is barely shrinking — stop and take the blackout.
	c.Observe(round(1000, time.Millisecond), 900)
	if c.Continue(900) {
		t.Error("Continue = true with a stalled shrink factor")
	}
	// Factor 0.5: each round halves the final transfer — keep going.
	c2 := NewController(64)
	c2.Observe(round(1000, time.Millisecond), 500)
	if !c2.Continue(500) {
		t.Error("Continue = false with a healthy shrink factor")
	}
}

func TestControllerConvergingWorkloadRunsToFloor(t *testing.T) {
	c := NewController(64)
	dirty := 4000
	rounds := 0
	for c.Continue(dirty) {
		// Each round ships the dirty set in proportionate time and the
		// workload re-dirties a quarter of it.
		el := time.Duration(dirty) * time.Microsecond
		next := dirty / 4
		c.Observe(round(dirty, el), next)
		dirty = next
		rounds++
		if rounds > DefaultMaxIters {
			t.Fatalf("runaway: %d rounds", rounds)
		}
	}
	if dirty > 64 {
		t.Errorf("stopped at %d dirty pages, want convergence to the 64 floor", dirty)
	}
	// 4000 → 1000 → 250 → 62: three rounds.
	if rounds != 3 {
		t.Errorf("took %d rounds, want 3", rounds)
	}
}
