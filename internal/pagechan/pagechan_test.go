package pagechan

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"migrrdma/internal/criu"
	"migrrdma/internal/mem"
	"migrrdma/internal/sim"
)

// fakeHost satisfies criu.HostServices with a deterministic serial
// wire: 1 ns per byte, bytes accounted. Concurrent TransferTo calls
// interleave cooperatively (one proc at a time), which is enough to
// exercise the pipeline's queueing without a full cluster.
type fakeHost struct {
	sched *sim.Scheduler
	wire  int64
	sends int
}

func (h *fakeHost) Sleep(d time.Duration) { h.sched.Sleep(d) }
func (h *fakeHost) Now() time.Duration    { return h.sched.Now() }
func (h *fakeHost) Node() string          { return "src" }
func (h *fakeHost) TransferTo(peer string, size int) {
	h.wire += int64(size)
	h.sends++
	h.sched.Sleep(time.Duration(size) * time.Nanosecond)
}

// page fabricates page content: constant c across the page, or zeros.
func page(c byte) []byte {
	buf := make([]byte, mem.PageSize)
	for i := range buf {
		buf[i] = c
	}
	return buf
}

// run drives fn as a managed proc to completion.
func run(t *testing.T, fn func(s *sim.Scheduler, h *fakeHost)) {
	t.Helper()
	s := sim.New(1)
	h := &fakeHost{sched: s}
	done := false
	s.Go("test", func() {
		fn(s, h)
		done = true
	})
	s.RunFor(time.Hour)
	if !done {
		t.Fatal("test proc did not finish")
	}
}

// dumper returns a dump callback over a fixed content table, charging
// perPage of simulated dump time per page read.
func dumper(h *fakeHost, content map[mem.Addr][]byte, perPage time.Duration) func([]mem.Addr) []criu.PageRec {
	return func(addrs []mem.Addr) []criu.PageRec {
		recs := make([]criu.PageRec, 0, len(addrs))
		for _, a := range addrs {
			recs = append(recs, criu.PageRec{Addr: a, Data: content[a]})
		}
		h.Sleep(time.Duration(len(addrs)) * perPage)
		return recs
	}
}

func addrs(n int) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = mem.Addr(0x1000 * (i + 1))
	}
	return out
}

func TestStreamShipsEveryPage(t *testing.T) {
	run(t, func(s *sim.Scheduler, h *fakeHost) {
		const n = 50
		as := addrs(n)
		content := make(map[mem.Addr][]byte, n)
		for i, a := range as {
			content[a] = page(byte(i + 1))
		}
		got := make(map[mem.Addr]byte)
		sess := NewSession(s, h, "dst", Config{Streams: 3, ChunkPages: 8})
		st, err := sess.Stream("final", as, dumper(h, content, time.Microsecond),
			func(ch *Chunk) {
				for _, pg := range ch.Pages {
					got[pg.Addr] = pg.Data[0]
				}
			})
		if err != nil {
			t.Errorf("stream: %v", err)
		}
		if st.PagesDumped != n || st.PagesSent != n || st.Elided() != 0 {
			t.Errorf("stats = %+v, want %d dumped+sent, 0 elided", st, n)
		}
		if wantChunks := (n + 7) / 8; st.Chunks != wantChunks {
			t.Errorf("chunks = %d, want %d", st.Chunks, wantChunks)
		}
		if len(got) != n {
			t.Errorf("applied %d pages, want %d", len(got), n)
		}
		for i, a := range as {
			if got[a] != byte(i+1) {
				t.Errorf("page %#x applied %d, want %d", uint64(a), got[a], i+1)
			}
		}
		if h.wire != st.WireBytes {
			t.Errorf("wire bytes %d vs stats %d", h.wire, st.WireBytes)
		}
		if sess.Staged() != 0 {
			t.Errorf("staged = %d after a clean round", sess.Staged())
		}
	})
}

func TestZeroPageElision(t *testing.T) {
	run(t, func(s *sim.Scheduler, h *fakeHost) {
		as := addrs(16)
		content := make(map[mem.Addr][]byte)
		for i, a := range as {
			if i < 12 {
				content[a] = page(0) // explicit all-zero pages
			} else {
				content[a] = page(7)
			}
		}
		applied := 0
		sess := NewSession(s, h, "dst", Config{Streams: 2, ChunkPages: 16})
		st, err := sess.Stream("final", as, dumper(h, content, 0),
			func(ch *Chunk) { applied += len(ch.Pages) + len(ch.Zeros) })
		if err != nil {
			t.Errorf("stream: %v", err)
		}
		if st.ZeroPages != 12 || st.PagesSent != 4 {
			t.Errorf("zero=%d sent=%d, want 12/4", st.ZeroPages, st.PagesSent)
		}
		if applied != 16 {
			t.Errorf("applied %d pages, want 16 (zeros must still be applied)", applied)
		}
		// 12 zero pages ship as headers: the round must be far smaller
		// than 16 full pages.
		full := int64(16 * (mem.PageSize + pageHeader))
		if st.WireBytes >= full {
			t.Errorf("wire %d not reduced vs full %d", st.WireBytes, full)
		}
	})
}

func TestDuplicateElisionAcrossRounds(t *testing.T) {
	run(t, func(s *sim.Scheduler, h *fakeHost) {
		as := addrs(20)
		content := make(map[mem.Addr][]byte)
		for i, a := range as {
			content[a] = page(byte(i + 1))
		}
		sess := NewSession(s, h, "dst", Config{Streams: 2, ChunkPages: 8})
		apply := func(*Chunk) {}
		if _, err := sess.Stream("predump", as, dumper(h, content, 0), apply); err != nil {
			t.Errorf("round 1: %v", err)
		}
		// Round 2 re-dumps the same pages (dirty-bit false positives):
		// every resend must be elided and nothing hits the wire.
		wireBefore := h.wire
		st, err := sess.Stream("precopy", as, dumper(h, content, 0), apply)
		if err != nil {
			t.Errorf("round 2: %v", err)
		}
		if st.DupElided != 20 || st.PagesSent != 0 || st.Chunks != 0 {
			t.Errorf("round 2 stats %+v, want all 20 dup-elided, no chunks", st)
		}
		if h.wire != wireBefore {
			t.Errorf("round 2 put %d bytes on the wire, want 0", h.wire-wireBefore)
		}
		// Round 3: half the pages genuinely change; only those ship.
		for i, a := range as {
			if i%2 == 0 {
				content[a] = page(byte(i + 100))
			}
		}
		st, err = sess.Stream("final", as, dumper(h, content, 0), apply)
		if err != nil {
			t.Errorf("round 3: %v", err)
		}
		if st.PagesSent != 10 || st.DupElided != 10 {
			t.Errorf("round 3 sent=%d elided=%d, want 10/10", st.PagesSent, st.DupElided)
		}
	})
}

// TestPipelineOverlaps asserts the point of the channel: with dump,
// wire, and apply each costing real time, the round finishes in less
// than their serial sum.
func TestPipelineOverlaps(t *testing.T) {
	run(t, func(s *sim.Scheduler, h *fakeHost) {
		const n = 64
		as := addrs(n)
		content := make(map[mem.Addr][]byte)
		for i, a := range as {
			content[a] = page(byte(i + 1))
		}
		perDump := 10 * time.Microsecond
		perApply := 10 * time.Microsecond
		sess := NewSession(s, h, "dst", Config{Streams: 4, ChunkPages: 8})
		st, err := sess.Stream("final", as, dumper(h, content, perDump),
			func(ch *Chunk) { h.Sleep(time.Duration(len(ch.Pages)) * perApply) })
		if err != nil {
			t.Errorf("stream: %v", err)
		}
		dump := time.Duration(n) * perDump
		wire := time.Duration(st.WireBytes) * time.Nanosecond
		apply := time.Duration(n) * perApply
		serial := dump + wire + apply
		if st.Elapsed >= serial {
			t.Errorf("elapsed %v did not beat serial %v (dump %v + wire %v + apply %v)",
				st.Elapsed, serial, dump, wire, apply)
		}
	})
}

func TestMidChunkAbortLeavesNothingStaged(t *testing.T) {
	run(t, func(s *sim.Scheduler, h *fakeHost) {
		as := addrs(40)
		content := make(map[mem.Addr][]byte)
		for i, a := range as {
			content[a] = page(byte(i + 1))
		}
		sess := NewSession(s, h, "dst", Config{
			Streams: 2, ChunkPages: 4,
			FailAtRound: "precopy", FailAtChunk: 3,
		})
		applied := 0
		st, err := sess.Stream("precopy", as, dumper(h, content, time.Microsecond),
			func(*Chunk) { applied++ })
		if !errors.Is(err, ErrInjected) {
			t.Errorf("err = %v, want ErrInjected", err)
		}
		if st.Chunks < 3 {
			t.Errorf("injected after %d chunks, want >= 3", st.Chunks)
		}
		if !sess.Aborted() {
			t.Error("session not aborted after injected fault")
		}
		if sess.Staged() != 0 {
			t.Errorf("staged = %d after abort, want 0", sess.Staged())
		}
		if applied > st.Chunks {
			t.Errorf("applied %d chunks out of %d sent", applied, st.Chunks)
		}
		// The channel is dead: further rounds refuse immediately.
		if _, err := sess.Stream("final", as, dumper(h, content, 0), nil); !errors.Is(err, ErrAborted) {
			t.Errorf("post-abort stream err = %v, want ErrAborted", err)
		}
	})
}

// TestStreamDeterministic replays the same round twice in fresh
// simulations and requires identical event sequences and timing.
func TestStreamDeterministic(t *testing.T) {
	trace := func() (string, time.Duration) {
		var log string
		var elapsed time.Duration
		s := sim.New(1)
		h := &fakeHost{sched: s}
		s.Go("test", func() {
			as := addrs(30)
			content := make(map[mem.Addr][]byte)
			for i, a := range as {
				content[a] = page(byte(i%5 + 1))
			}
			sess := NewSession(s, h, "dst", Config{
				Streams: 3, ChunkPages: 4,
				Tap: func(ev string, seq uint64) {
					log += fmt.Sprintf("%d:%s:%d|", s.Now(), ev, seq)
				},
			})
			st, err := sess.Stream("final", as, dumper(h, content, time.Microsecond),
				func(*Chunk) { h.Sleep(2 * time.Microsecond) })
			if err != nil {
				log += "ERR"
			}
			elapsed = st.Elapsed
		})
		s.RunFor(time.Hour)
		return log, elapsed
	}
	l1, e1 := trace()
	l2, e2 := trace()
	if l1 != l2 || e1 != e2 {
		t.Fatalf("nondeterministic stream:\n%s (%v)\nvs\n%s (%v)", l1, e1, l2, e2)
	}
	if l1 == "" {
		t.Fatal("tap saw no events — the determinism check is vacuous")
	}
}
