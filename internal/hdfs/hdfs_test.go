package hdfs

import (
	"math"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// rig is one HDFS testbed: master + datanode + worker (+ backup).
type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
	master  *Master
	dn      *DataNode
	worker  *Worker
	backup  *Worker
	wCont   *runc.Container
}

func newRig(t *testing.T, withBackup bool) *rig {
	t.Helper()
	names := []string{"master", "datanode", "w1", "w2", "spare"}
	cl := cluster.New(cluster.Config{Seed: 3}, names...)
	r := &rig{cl: cl, daemons: make(map[string]*core.Daemon)}
	for _, n := range names {
		r.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	cfg := DefaultMasterConfig()
	r.master = NewMaster(cl.Sched, cl.Host("master").Hub, cfg)
	r.dn = NewDataNode(cl.Sched, "dn0")
	dnCont := runc.NewContainer(cl.Host("datanode"), "dn")
	dnCont.Start(func(p *task.Process) { r.dn.Run(p, r.daemons["datanode"]) })

	r.worker = NewWorker(cl.Sched, "w1", "master", "datanode", "dn0", cfg)
	r.wCont = runc.NewContainer(cl.Host("w1"), "worker")
	cl.Sched.Go("start-worker", func() {
		r.dn.WaitReady()
		r.wCont.Start(func(p *task.Process) { r.worker.Run(p, r.daemons["w1"]) })
	})
	if withBackup {
		r.backup = NewWorker(cl.Sched, "w2", "master", "datanode", "dn0", cfg)
		bCont := runc.NewContainer(cl.Host("w2"), "backup")
		cl.Sched.Go("start-backup", func() {
			r.dn.WaitReady()
			bCont.Start(func(p *task.Process) { r.backup.Run(p, r.daemons["w2"]) })
		})
	}
	return r
}

func dfsioSpec() JobSpec {
	return JobSpec{Kind: TestDFSIO, Blocks: 40, BlockSize: 4 << 20}
}

func piSpec() JobSpec {
	return JobSpec{Kind: EstimatePI, Rounds: 20, RoundTime: 20 * time.Millisecond, Samples: 20000}
}

func TestDFSIOBaseline(t *testing.T) {
	debugEnabled = true
	defer func() { debugEnabled = false }()
	r := newRig(t, false)
	var res JobResult
	r.cl.Sched.Go("driver", func() {
		r.worker.WaitReady()
		r.master.Submit(dfsioSpec(), "w1")
		res = r.master.Wait()
	})
	r.cl.Sched.RunFor(120 * time.Second)
	if res.JCT == 0 {
		t.Fatalf("job did not finish: done=%d/%d; blocked: %s", r.master.job.doneCount, len(r.master.job.done), r.cl.Sched.BlockedReport())
	}
	if res.TputGbps < 5 {
		t.Fatalf("DFSIO throughput %.1f Gbps implausibly low", res.TputGbps)
	}
	if res.FailedOver {
		t.Fatal("baseline run reported failover")
	}
	t.Logf("baseline: JCT=%v Tput=%.1f Gbps", res.JCT, res.TputGbps)
}

func TestEstimatePIBaseline(t *testing.T) {
	r := newRig(t, false)
	var res JobResult
	r.cl.Sched.Go("driver", func() {
		r.worker.WaitReady()
		r.master.Submit(piSpec(), "w1")
		res = r.master.Wait()
	})
	r.cl.Sched.RunFor(120 * time.Second)
	if res.JCT == 0 {
		t.Fatal("job did not finish")
	}
	if math.Abs(res.Pi-math.Pi) > 0.05 {
		t.Fatalf("estimated pi = %v", res.Pi)
	}
	t.Logf("pi: JCT=%v pi=%.4f", res.JCT, res.Pi)
}

func TestDFSIOWithLiveMigration(t *testing.T) {
	r := newRig(t, false)
	var res JobResult
	var mErr error
	r.cl.Sched.Go("driver", func() {
		r.worker.WaitReady()
		r.master.Submit(dfsioSpec(), "w1")
		// Migrate the worker mid-job to the spare server.
		r.cl.Sched.Sleep(3 * time.Millisecond)
		m := &runc.Migrator{C: r.wCont, Dst: r.cl.Host("spare"),
			Plug: core.NewPlugin(r.daemons["w1"], r.daemons["spare"]),
			Opts: runc.DefaultMigrateOptions()}
		_, mErr = m.Migrate()
		res = r.master.Wait()
	})
	r.cl.Sched.RunFor(120 * time.Second)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if res.JCT == 0 {
		t.Fatal("job did not finish after migration")
	}
	if res.FailedOver {
		t.Fatal("migration run must not trigger failover")
	}
	if r.worker.Sess.Node() != "spare" {
		t.Fatalf("worker on %s, want spare", r.worker.Sess.Node())
	}
	t.Logf("migrated: JCT=%v Tput=%.1f Gbps", res.JCT, res.TputGbps)
}

func TestDFSIOFailoverSlower(t *testing.T) {
	// Baseline JCT.
	rb := newRig(t, false)
	var base JobResult
	rb.cl.Sched.Go("driver", func() {
		rb.worker.WaitReady()
		rb.master.Submit(dfsioSpec(), "w1")
		base = rb.master.Wait()
	})
	rb.cl.Sched.RunFor(120 * time.Second)

	// Failover run: kill the worker mid-job, recover on the backup.
	r := newRig(t, true)
	var res JobResult
	r.cl.Sched.Go("driver", func() {
		r.worker.WaitReady()
		r.backup.WaitReady()
		r.master.Submit(dfsioSpec(), "w1")
		r.cl.Sched.Go("failover-monitor", func() { r.master.MonitorFailover("w2") })
		r.cl.Sched.Sleep(3 * time.Millisecond)
		r.worker.Kill()
		res = r.master.Wait()
	})
	r.cl.Sched.RunFor(300 * time.Second)
	if res.JCT == 0 {
		t.Fatal("job did not finish after failover")
	}
	if !res.FailedOver {
		t.Fatal("failover was not triggered")
	}
	extra := res.JCT - base.JCT
	if extra < 5*time.Second {
		t.Fatalf("failover extra JCT %v implausibly small (detection timeout alone is 10s)", extra)
	}
	t.Logf("baseline JCT=%v, failover JCT=%v (+%v)", base.JCT, res.JCT, extra)
}

func TestDFSIOWithReplication(t *testing.T) {
	names := []string{"master", "dn1", "dn2", "w1"}
	cl := cluster.New(cluster.Config{Seed: 4}, names...)
	daemons := map[string]*core.Daemon{}
	for _, n := range names {
		daemons[n] = core.NewDaemon(cl.Host(n))
	}
	cfg := DefaultMasterConfig()
	master := NewMaster(cl.Sched, cl.Host("master").Hub, cfg)
	dnA, dnB := NewDataNode(cl.Sched, "dnA"), NewDataNode(cl.Sched, "dnB")
	runc.NewContainer(cl.Host("dn1"), "a").Start(func(p *task.Process) { dnA.Run(p, daemons["dn1"]) })
	runc.NewContainer(cl.Host("dn2"), "b").Start(func(p *task.Process) { dnB.Run(p, daemons["dn2"]) })
	w := NewWorker(cl.Sched, "w1", "master", "dn1", "dnA", cfg)
	w.Replicas = []Replica{{Node: "dn2", Name: "dnB"}}
	runc.NewContainer(cl.Host("w1"), "w").Start(func(p *task.Process) {
		dnA.WaitReady()
		dnB.WaitReady()
		w.Run(p, daemons["w1"])
	})
	var res JobResult
	cl.Sched.Go("driver", func() {
		w.WaitReady()
		master.Submit(JobSpec{Kind: TestDFSIO, Blocks: 20, BlockSize: 2 << 20}, "w1")
		res = master.Wait()
	})
	cl.Sched.RunFor(2 * time.Minute)
	if res.JCT == 0 {
		t.Fatal("replicated job did not finish")
	}
	// Both datanodes received the block bytes.
	rx1, _ := cl.Net.Bytes("dn1")
	rx2, _ := cl.Net.Bytes("dn2")
	want := int64(20 * (2 << 20))
	if rx1 < want || rx2 < want {
		t.Fatalf("replica traffic rx1=%d rx2=%d, want ≥%d each", rx1, rx2, want)
	}
	t.Logf("replicated DFSIO: JCT=%v rx1=%dMB rx2=%dMB", res.JCT, rx1>>20, rx2>>20)
}
