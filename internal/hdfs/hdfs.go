// Package hdfs is a miniature RDMA-accelerated Hadoop/HDFS (the
// real-world application of §5.6): a master that assigns tasks and
// tracks progress logs, workers that execute them in containers over
// the MigrRDMA guest library, and a datanode that stores DFSIO blocks
// written over RDMA.
//
// Two workloads mirror the paper's: TestDFSIO (bulk RDMA WRITEs of
// fixed-size blocks, reporting throughput) and EstimatePI (compute
// rounds with small RDMA SENDs of partial results). Two continuity
// mechanisms are compared, as in Fig. 6: MigrRDMA live migration of the
// worker container, and Hadoop's native failover — the master detects
// the lost worker by missed heartbeats, re-assigns the task to a backup
// worker on another server, and the backup resumes from the task log.
package hdfs

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// JobKind selects the workload.
type JobKind int

// Supported job kinds.
const (
	TestDFSIO JobKind = iota
	EstimatePI
)

func (k JobKind) String() string {
	if k == TestDFSIO {
		return "TestDFSIO"
	}
	return "EstimatePI"
}

// JobSpec describes one submitted job.
type JobSpec struct {
	Kind JobKind

	// TestDFSIO parameters.
	Blocks    int
	BlockSize int
	// BlockCompute models per-block work besides the RDMA transfer
	// (checksumming, commit, disk path).
	BlockCompute time.Duration

	// EstimatePI parameters.
	Rounds    int
	RoundTime time.Duration
	Samples   int // Monte-Carlo samples per round
}

// Units returns the number of loggable work units.
func (s JobSpec) Units() int {
	if s.Kind == TestDFSIO {
		return s.Blocks
	}
	return s.Rounds
}

// JobResult is the outcome the master reports.
type JobResult struct {
	Kind     JobKind
	JCT      time.Duration
	Bytes    int64
	TputGbps float64
	Pi       float64
	// FailedOver reports whether the native failover path recovered the
	// job (versus finishing on the original or migrated worker).
	FailedOver bool
}

// --- Master -------------------------------------------------------------------

// MasterConfig tunes failure detection.
type MasterConfig struct {
	HeartbeatEvery time.Duration
	// DetectAfter is how long without heartbeats before the worker is
	// declared dead (Hadoop-style conservative timeout).
	DetectAfter time.Duration
	// RecoveryLat models the backup reading the task log and re-staging
	// the task runtime.
	RecoveryLat time.Duration
}

// DefaultMasterConfig mirrors Hadoop-like settings.
func DefaultMasterConfig() MasterConfig {
	return MasterConfig{
		HeartbeatEvery: 1 * time.Second,
		DetectAfter:    10 * time.Second,
		RecoveryLat:    2 * time.Second,
	}
}

// Master coordinates jobs, tracks per-unit progress logs and drives
// failover.
type Master struct {
	sched *sim.Scheduler
	ep    *oob.Endpoint
	cfg   MasterConfig

	workers map[string]*workerState
	job     *jobState
}

type workerState struct {
	name     string
	node     string
	lastBeat time.Duration
}

type jobState struct {
	spec    JobSpec
	worker  string
	started time.Duration
	// done[i] marks unit i completed — the task log failover replays.
	done      []bool
	doneCount int
	piInside  int64
	piTotal   int64
	finished  bool
	failedOv  bool
	fin       *sim.Cond
}

// NewMaster starts a master on a host's hub.
func NewMaster(sched *sim.Scheduler, hub *oob.Hub, cfg MasterConfig) *Master {
	m := &Master{
		sched:   sched,
		ep:      hub.Endpoint("hdfs-master"),
		cfg:     cfg,
		workers: make(map[string]*workerState),
	}
	m.ep.Handle("register", m.hRegister)
	m.ep.Handle("heartbeat", m.hHeartbeat)
	m.ep.Handle("unit-done", m.hUnitDone)
	return m
}

type registerMsg struct{ Name, Node string }

type heartbeatMsg struct{ Name string }

type unitDoneMsg struct {
	Name   string
	Unit   int
	Inside int64 // EstimatePI: samples inside the circle
	Total  int64
}

type assignMsg struct {
	Spec JobSpec
	// Done marks units already logged; the worker skips them (failover
	// resume from the log).
	Done []bool
}

func (m *Master) hRegister(msg oob.Msg) []byte {
	var r registerMsg
	mustDec(msg.Body, &r)
	m.workers[r.Name] = &workerState{name: r.Name, node: r.Node, lastBeat: m.sched.Now()}
	return []byte("ok")
}

func (m *Master) hHeartbeat(msg oob.Msg) []byte {
	var h heartbeatMsg
	mustDec(msg.Body, &h)
	if w, ok := m.workers[h.Name]; ok {
		w.lastBeat = m.sched.Now()
	}
	return nil
}

func (m *Master) hUnitDone(msg oob.Msg) []byte {
	var u unitDoneMsg
	mustDec(msg.Body, &u)
	j := m.job
	if j == nil || u.Unit >= len(j.done) || j.done[u.Unit] {
		return nil
	}
	j.done[u.Unit] = true
	j.doneCount++
	j.piInside += u.Inside
	j.piTotal += u.Total
	if j.doneCount == len(j.done) && !j.finished {
		j.finished = true
		j.fin.Broadcast()
	}
	return nil
}

// Submit assigns the job to the named worker and returns once accepted.
func (m *Master) Submit(spec JobSpec, worker string) {
	w, ok := m.workers[worker]
	if !ok {
		panic("hdfs: unknown worker " + worker)
	}
	m.job = &jobState{
		spec:    spec,
		worker:  worker,
		started: m.sched.Now(),
		done:    make([]bool, spec.Units()),
		fin:     sim.NewCond(m.sched, "job-finished"),
	}
	m.ep.Send(w.node, "hdfs-w:"+worker, "assign", mustEnc(assignMsg{Spec: spec, Done: m.job.done}))
}

// Wait blocks until the job finishes and returns its result.
func (m *Master) Wait() JobResult {
	j := m.job
	for !j.finished {
		j.fin.Wait()
	}
	res := JobResult{
		Kind:       j.spec.Kind,
		JCT:        m.sched.Now() - j.started,
		FailedOver: j.failedOv,
	}
	if j.spec.Kind == TestDFSIO {
		res.Bytes = int64(j.spec.Blocks) * int64(j.spec.BlockSize)
		res.TputGbps = float64(res.Bytes) * 8 / res.JCT.Seconds() / 1e9
	} else if j.piTotal > 0 {
		res.Pi = 4 * float64(j.piInside) / float64(j.piTotal)
	}
	return res
}

// MonitorFailover watches heartbeats and re-assigns the job to the
// backup worker when the active worker is declared dead. Spawn it as a
// proc for failover experiments; without it, a dead worker hangs the
// job (as Hadoop would without speculative execution).
func (m *Master) MonitorFailover(backup string) {
	for {
		m.sched.Sleep(m.cfg.HeartbeatEvery)
		j := m.job
		if j == nil || j.finished {
			return
		}
		w, ok := m.workers[j.worker]
		if !ok {
			continue
		}
		if m.sched.Now()-w.lastBeat < m.cfg.DetectAfter {
			continue
		}
		// Declared dead: recover on the backup from the task log.
		b, ok := m.workers[backup]
		if !ok {
			panic("hdfs: no backup worker " + backup)
		}
		m.sched.Sleep(m.cfg.RecoveryLat)
		j.worker = backup
		j.failedOv = true
		done := make([]bool, len(j.done))
		copy(done, j.done)
		m.ep.Send(b.node, "hdfs-w:"+backup, "assign", mustEnc(assignMsg{Spec: j.spec, Done: done}))
		return
	}
}

// --- Worker -------------------------------------------------------------------

// Worker executes assigned tasks inside a container process.
type Worker struct {
	Name       string
	MasterNode string
	// DataNode is the primary storage peer DFSIO blocks are written to.
	DataNode     string
	DataNodeName string
	// Replicas are additional datanodes each block is replicated to
	// (HDFS-style replication; the paper's HDFS deployment replicates
	// blocks across datanodes).
	Replicas []Replica

	Sess *core.Session

	cfg    MasterConfig
	killed bool

	ready   bool
	readyC  *sim.Cond
	blockMR *core.MR
	qp      *core.QP
	rkey    uint32
	raddr   mem.Addr
	pd      *core.PD
	cq      *core.CQ
	reps    []replicaConn
}

// Replica names an additional datanode.
type Replica struct {
	Node string
	Name string
}

type replicaConn struct {
	qp    *core.QP
	rkey  uint32
	raddr mem.Addr
}

// NewWorker creates a worker descriptor.
func NewWorker(sched *sim.Scheduler, name, masterNode, dataNode, dataNodeName string, cfg MasterConfig) *Worker {
	return &Worker{
		Name: name, MasterNode: masterNode,
		DataNode: dataNode, DataNodeName: dataNodeName,
		cfg:    cfg,
		readyC: sim.NewCond(sched, "hdfs-worker-ready:"+name),
	}
}

// Kill simulates the worker's server going down for maintenance without
// migration: the process stops executing and heart-beating.
func (w *Worker) Kill() { w.killed = true }

// WaitReady blocks until the worker registered and connected.
func (w *Worker) WaitReady() {
	for !w.ready {
		w.readyC.Wait()
	}
}

// workerBuf is the DFSIO staging buffer location.
const workerBuf = mem.Addr(0x20_0000_0000)

// Run is the worker process main.
func (w *Worker) Run(p *task.Process, d *core.Daemon) {
	sess := core.NewSession(p, d)
	w.Sess = sess
	sched := p.Scheduler()
	ep := d.Host().Hub.Endpoint("hdfs-w:" + w.Name)

	// RDMA setup: one RC QP to the datanode, one staging MR.
	const bufLen = 8 << 20
	if _, err := p.AS.Map(workerBuf, bufLen, "dfsio-buffer"); err != nil {
		panic(err)
	}
	w.pd = sess.AllocPD()
	w.cq = sess.CreateCQ(4096, nil)
	mr, err := sess.RegMR(w.pd, workerBuf, bufLen, rnic.AccessLocalWrite|rnic.AccessRemoteRead|rnic.AccessRemoteWrite)
	if err != nil {
		panic(err)
	}
	w.blockMR = mr
	w.qp = sess.CreateQP(w.pd, core.QPConfig{Type: rnic.RC, SendCQ: w.cq, RecvCQ: w.cq,
		Caps: rnic.QPCaps{MaxSend: 64, MaxRecv: 8}})
	if err := w.qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
		panic(err)
	}
	resp := ep.Call(w.DataNode, "dn:"+w.DataNodeName, "open", mustEnc(dnOpenReq{
		Node: d.Node(), VQPN: w.qp.VQPN(),
	}))
	var or dnOpenResp
	mustDec(resp, &or)
	if or.Err != "" {
		panic("hdfs: datanode open: " + or.Err)
	}
	if err := w.qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: w.DataNode, RemoteQPN: or.VQPN}); err != nil {
		panic(err)
	}
	if err := w.qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
		panic(err)
	}
	w.rkey, w.raddr = or.RKey, mem.Addr(or.BufAddr)

	// Open one QP per replica datanode.
	for _, rep := range w.Replicas {
		rqp := sess.CreateQP(w.pd, core.QPConfig{Type: rnic.RC, SendCQ: w.cq, RecvCQ: w.cq,
			Caps: rnic.QPCaps{MaxSend: 64, MaxRecv: 8}})
		if err := rqp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
			panic(err)
		}
		resp := ep.Call(rep.Node, "dn:"+rep.Name, "open", mustEnc(dnOpenReq{
			Node: d.Node(), VQPN: rqp.VQPN(),
		}))
		var ror dnOpenResp
		mustDec(resp, &ror)
		if ror.Err != "" {
			panic("hdfs: replica open: " + ror.Err)
		}
		if err := rqp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: rep.Node, RemoteQPN: ror.VQPN}); err != nil {
			panic(err)
		}
		if err := rqp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
			panic(err)
		}
		w.reps = append(w.reps, replicaConn{qp: rqp, rkey: ror.RKey, raddr: mem.Addr(ror.BufAddr)})
	}

	ep.Call(w.MasterNode, "hdfs-master", "register", mustEnc(registerMsg{Name: w.Name, Node: d.Node()}))

	// Heartbeat proc: stops while frozen (Gate) and dies with the worker.
	sched.GoDaemon("hdfs-hb:"+w.Name, func() {
		for !w.killed && !p.Exited() {
			p.Gate()
			if w.killed {
				return
			}
			ep.Send(w.MasterNode, "hdfs-master", "heartbeat", mustEnc(heartbeatMsg{Name: w.Name}))
			sched.Sleep(w.cfg.HeartbeatEvery)
		}
	})

	w.ready = true
	w.readyC.Broadcast()

	// Task loop.
	for !w.killed {
		p.Gate()
		msg, ok := ep.TryRecv()
		if !ok {
			sched.Sleep(500 * time.Microsecond)
			continue
		}
		if msg.Kind != "assign" {
			continue
		}
		debugf("worker %s got assign", w.Name)
		var a assignMsg
		mustDec(msg.Body, &a)
		w.execute(p, ep, a)
	}
}

// execute runs one assigned task, skipping units the log marks done.
func (w *Worker) execute(p *task.Process, ep *oob.Endpoint, a assignMsg) {
	sched := p.Scheduler()
	for unit := 0; unit < a.Spec.Units(); unit++ {
		if w.killed {
			return
		}
		p.Gate()
		if unit < len(a.Done) && a.Done[unit] {
			continue
		}
		switch a.Spec.Kind {
		case TestDFSIO:
			debugf("worker %s block %d start", w.Name, unit)
			if err := w.writeBlock(a.Spec, unit); err != nil {
				panic(fmt.Sprintf("hdfs: block %d: %v", unit, err))
			}
			ep.Send(w.MasterNode, "hdfs-master", "unit-done", mustEnc(unitDoneMsg{Name: w.Name, Unit: unit}))
		case EstimatePI:
			inside, total := w.piRound(p, a.Spec)
			// Ship the partial result over RDMA SEND to the datanode's
			// collector region, then log completion with the master.
			ep.Send(w.MasterNode, "hdfs-master", "unit-done", mustEnc(unitDoneMsg{
				Name: w.Name, Unit: unit, Inside: inside, Total: total,
			}))
		}
	}
	_ = sched
}

// writeBlock streams one DFSIO block to the primary datanode and every
// replica via RDMA WRITE in 1 MiB chunks, with a small per-block
// checksum compute.
func (w *Worker) writeBlock(spec JobSpec, unit int) error {
	const chunk = 1 << 20
	sched := w.Sess.Sched()
	targets := make([]replicaConn, 0, 1+len(w.reps))
	targets = append(targets, replicaConn{qp: w.qp, rkey: w.rkey, raddr: w.raddr})
	targets = append(targets, w.reps...)
	remaining := spec.BlockSize * len(targets)
	perTarget := make([]int, len(targets))
	for i := range perTarget {
		perTarget[i] = spec.BlockSize
	}
	var outstanding int
	for remaining > 0 || outstanding > 0 {
		if w.killed {
			return nil // host went down mid-block; failover redoes it
		}
		w.Sess.Proc.Gate()
		for ti := range targets {
			for perTarget[ti] > 0 && outstanding < 8 {
				n := perTarget[ti]
				if n > chunk {
					n = chunk
				}
				tgt := targets[ti]
				err := tgt.qp.PostSend(rnic.SendWR{
					WRID: uint64(unit), Opcode: rnic.OpWrite, Signaled: true,
					SGEs:       []rnic.SGE{{Addr: workerBuf, Len: uint32(n), LKey: w.blockMR.LKey()}},
					RemoteAddr: tgt.raddr, RKey: tgt.rkey,
				})
				if err != nil {
					return err
				}
				perTarget[ti] -= n
				remaining -= n
				outstanding++
			}
		}
		if outstanding == 0 {
			continue
		}
		w.cq.WaitNonEmpty()
		for _, e := range w.cq.Poll(16) {
			if e.Status != rnic.WCSuccess {
				return fmt.Errorf("write completion: %v", e.Status)
			}
			outstanding--
		}
	}
	// Per-block checksum/commit compute.
	bc := spec.BlockCompute
	if bc == 0 {
		bc = 200 * time.Microsecond
	}
	sched.Sleep(bc)
	return nil
}

// piRound runs one Monte-Carlo round: pure compute plus a tiny SEND.
func (w *Worker) piRound(p *task.Process, spec JobSpec) (inside, total int64) {
	rt := spec.RoundTime
	if rt == 0 {
		rt = 50 * time.Millisecond
	}
	p.Compute(rt)
	n := spec.Samples
	if n == 0 {
		n = 100000
	}
	rng := p.Scheduler().Rand()
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	// Small RDMA WRITE carrying the round's partial result.
	_ = w.qp.PostSend(rnic.SendWR{
		WRID: 1<<32 | uint64(inside), Opcode: rnic.OpWrite, Signaled: true,
		SGEs:       []rnic.SGE{{Addr: workerBuf, Len: 16, LKey: w.blockMR.LKey()}},
		RemoteAddr: w.raddr, RKey: w.rkey,
	})
	w.cq.WaitNonEmpty()
	w.cq.Poll(16)
	return inside, int64(n)
}

// --- DataNode -----------------------------------------------------------------

// DataNode is the passive RDMA storage peer: it exposes a block-landing
// MR and accepts QP connections from workers.
type DataNode struct {
	Name string
	Sess *core.Session

	ready  bool
	readyC *sim.Cond

	pd *core.PD
	cq *core.CQ
	mr *core.MR
}

// dataNodeBuf is where inbound blocks land.
const dataNodeBuf = mem.Addr(0x30_0000_0000)

type dnOpenReq struct {
	Node string
	VQPN uint32
}

type dnOpenResp struct {
	VQPN    uint32
	RKey    uint32
	BufAddr uint64
	Err     string
}

// NewDataNode creates a datanode descriptor.
func NewDataNode(sched *sim.Scheduler, name string) *DataNode {
	return &DataNode{Name: name, readyC: sim.NewCond(sched, "hdfs-dn-ready:"+name)}
}

// WaitReady blocks until the datanode accepts connections.
func (dn *DataNode) WaitReady() {
	for !dn.ready {
		dn.readyC.Wait()
	}
}

// Run is the datanode process main.
func (dn *DataNode) Run(p *task.Process, d *core.Daemon) {
	sess := core.NewSession(p, d)
	dn.Sess = sess
	const bufLen = 16 << 20
	if _, err := p.AS.Map(dataNodeBuf, bufLen, "dn-buffer"); err != nil {
		panic(err)
	}
	dn.pd = sess.AllocPD()
	dn.cq = sess.CreateCQ(4096, nil)
	mr, err := sess.RegMR(dn.pd, dataNodeBuf, bufLen,
		rnic.AccessLocalWrite|rnic.AccessRemoteRead|rnic.AccessRemoteWrite)
	if err != nil {
		panic(err)
	}
	dn.mr = mr
	ep := d.Host().Hub.Endpoint("dn:" + dn.Name)
	ep.Handle("open", func(m oob.Msg) []byte {
		var req dnOpenReq
		mustDec(m.Body, &req)
		qp := sess.CreateQP(dn.pd, core.QPConfig{Type: rnic.RC, SendCQ: dn.cq, RecvCQ: dn.cq,
			Caps: rnic.QPCaps{MaxSend: 8, MaxRecv: 128}})
		for _, a := range []rnic.ModifyAttr{
			{State: rnic.StateInit},
			{State: rnic.StateRTR, RemoteNode: req.Node, RemoteQPN: req.VQPN},
			{State: rnic.StateRTS},
		} {
			if err := qp.Modify(a); err != nil {
				return mustEnc(dnOpenResp{Err: err.Error()})
			}
		}
		return mustEnc(dnOpenResp{VQPN: qp.VQPN(), RKey: dn.mr.RKey(), BufAddr: uint64(dataNodeBuf)})
	})
	dn.ready = true
	dn.readyC.Broadcast()
	// Passive: one-sided writes need no completion handling.
}

// debugf prints when the HDFSDEBUG build flag is on.
var debugEnabled = false

func debugf(format string, args ...any) {
	if debugEnabled {
		fmt.Printf("hdfs: "+format+"\n", args...)
	}
}

func mustEnc(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func mustDec(data []byte, v any) {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		panic(err)
	}
}
