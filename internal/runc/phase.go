package runc

import (
	"fmt"

	"migrrdma/internal/metrics"
	"migrrdma/internal/task"
	"migrrdma/internal/trace"
)

// phase is one step of the migration workflow (Fig. 2b): a named run
// action plus an optional compensation that undoes it when a later
// phase fails.
type phase struct {
	// name keys per-phase error wrapping, fault injection, and the
	// migrations_aborted metric label.
	name string
	// stage, when non-empty, is announced via Migrator.setStage right
	// before run. Phases without a stage (precopy, final-dump) keep the
	// externally observable stage sequence identical to the pre-engine
	// workflow, which the chaos goldens pin.
	stage string
	// commit marks the point of no return: once a commit phase ran,
	// partners talk to the destination and rolling back would strand
	// them, so later failures are surfaced without unwinding.
	commit bool
	run    func() error
	// compensate undoes the phase's effects. Compensations must be
	// idempotent and safe after a partial run: the failing phase's own
	// compensation runs too, before those of the phases preceding it.
	compensate func()
}

// runPhases drives the workflow. On a failure before the commit point
// it unwinds: the compensations of the failing phase and of every
// completed phase run in reverse order, the abort is recorded in the
// timeline and the metrics registry, the stage moves to "aborted", and
// the error comes back wrapped with the failing phase. Past the commit
// point the error is wrapped and annotated but nothing is unwound.
func (m *Migrator) runPhases(p *task.Process, tl *trace.Timeline, phases []phase) error {
	committed := false
	for i, ph := range phases {
		if ph.stage != "" {
			m.setStage(ph.stage)
		}
		err := m.inject(ph.name)
		if err == nil {
			err = ph.run()
		}
		if err == nil {
			if ph.commit {
				committed = true
			}
			continue
		}
		wrapped := fmt.Errorf("migrate %s/proc %s: phase %s: %w", m.ID, p.Name, ph.name, err)
		if committed {
			return fmt.Errorf("%w (past commit point, not rolled back)", wrapped)
		}
		tl.Mark("abort", "phase "+ph.name)
		if reg := m.C.Host.Metrics; reg != nil {
			reg.Counter("migr", "migrations_aborted",
				metrics.Labels{"proc": p.Name, "mig": m.ID, "phase": ph.name}).Inc()
		}
		for j := i; j >= 0; j-- {
			if phases[j].compensate != nil {
				phases[j].compensate()
			}
		}
		m.setStage("aborted")
		return wrapped
	}
	return nil
}

// inject consults the fault hook installed by tests and the chaos
// harness; a non-nil return aborts the migration at the named phase.
func (m *Migrator) inject(phaseName string) error {
	if m.Inject == nil {
		return nil
	}
	return m.Inject(phaseName)
}
