package runc

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// TestMigratePluginCountMismatch submits a container with more
// RDMA-holding processes than plugins and expects the mismatch to fail
// up front — before any process migrates — rather than stranding the
// first process on the destination.
func TestMigratePluginCountMismatch(t *testing.T) {
	tb := newTestbed(t, "src", "dst")
	cont := NewContainer(tb.cl.Host("src"), "multi")
	hold := func(p *task.Process) {
		p.Attachment = &core.Session{}
		for !p.Exited() {
			p.Compute(time.Millisecond)
		}
	}
	var mErr error
	ran := false
	tb.cl.Sched.Go("driver", func() {
		cont.Start(hold)
		cont.Exec("second", hold)
		// Yield so both process bodies run and attach their sessions
		// before the migration inspects them.
		tb.cl.Sched.Sleep(time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}
		_, mErr = m.Migrate()
		ran = true
	})
	tb.cl.Sched.RunFor(time.Second)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if mErr == nil || !strings.Contains(mErr.Error(), "RDMA processes but only") {
		t.Fatalf("want plugin-count mismatch error, got %v", mErr)
	}
	if cont.Host != tb.cl.Host("src") {
		t.Fatal("container moved despite the upfront validation failure")
	}
}

// TestPhaseErrorWrapping injects faults at representative phases and
// asserts the returned error names the migration, process, and phase,
// that the workflow lands in the "aborted" stage, and that the source
// service recovers and keeps completing traffic.
func TestPhaseErrorWrapping(t *testing.T) {
	for _, phase := range []string{"predump", "suspend-wbs", "finalize"} {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			tb := newTestbed(t, "src", "dst", "partner")
			opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
				Messages: 0, CheckOrder: true, PostGap: 10 * time.Microsecond}
			cont, cli, srv := tb.startPair(t, "src", "partner", opts)
			var mErr error
			var stage string
			var atAbort int64
			tb.cl.Sched.Go("driver", func() {
				cli.WaitReady()
				tb.cl.Sched.Sleep(3 * time.Millisecond)
				m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
					Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
					Opts: DefaultMigrateOptions()}
				m.Inject = func(ph string) error {
					if ph == phase {
						return fmt.Errorf("boom")
					}
					return nil
				}
				_, mErr = m.Migrate()
				stage = m.Stage
				atAbort = cli.Stats.Completed
				tb.cl.Sched.Sleep(3 * time.Millisecond)
				cli.Stop()
				cli.Wait()
				tb.cl.Sched.Sleep(2 * time.Millisecond)
				srv.Stop()
			})
			tb.cl.Sched.RunFor(30 * time.Second)
			if mErr == nil {
				t.Fatal("migration succeeded despite injected fault")
			}
			wantPrefix := "migrate m0/proc client/init: phase " + phase + ": "
			if !strings.HasPrefix(mErr.Error(), wantPrefix) {
				t.Fatalf("error %q does not start with %q", mErr, wantPrefix)
			}
			if stage != "aborted" {
				t.Fatalf("final stage %q, want aborted", stage)
			}
			if cli.Stats.Completed <= atAbort {
				t.Fatalf("no progress after abort: stuck at %d", atAbort)
			}
			if cli.Stats.Completed != srv.Stats.Completed {
				t.Fatalf("client %d vs server %d after abort", cli.Stats.Completed, srv.Stats.Completed)
			}
			assertClean(t, "client", cli.Stats)
			assertClean(t, "server", srv.Stats)
			if cli.Sess.Node() != "src" {
				t.Fatalf("session on %s after abort, want src", cli.Sess.Node())
			}
			if got := tb.cl.Metrics.Snapshot().Sum("migr", "migrations_aborted"); got != 1 {
				t.Fatalf("migrations_aborted = %d, want 1", got)
			}
		})
	}
}

// TestPostCommitFailureNotRolledBack injects a fault after the partner
// switch-over — the commit point — and asserts the error says so
// instead of pretending a rollback happened.
func TestPostCommitFailureNotRolledBack(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 10 * time.Microsecond}
	cont, cli, _ := tb.startPair(t, "src", "partner", opts)
	var mErr error
	var stage string
	ran := false
	tb.cl.Sched.Go("driver", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}
		m.Inject = func(ph string) error {
			if ph == "resume" {
				return fmt.Errorf("boom")
			}
			return nil
		}
		_, mErr = m.Migrate()
		stage = m.Stage
		ran = true
		// The migration is wedged past the commit point; nothing to
		// drain — the workload is intentionally left hanging.
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if mErr == nil {
		t.Fatal("migration succeeded despite injected fault")
	}
	if !strings.Contains(mErr.Error(), "phase resume") ||
		!strings.Contains(mErr.Error(), "past commit point, not rolled back") {
		t.Fatalf("post-commit error not annotated: %v", mErr)
	}
	if stage == "aborted" {
		t.Fatal("post-commit failure must not report a rollback stage")
	}
}

// TestMigrateMiddleProcessFailure fails the second process of a
// three-process container mid-workflow: the first (already migrated)
// process stays on the destination, the failing one rolls back to the
// source, the container bookkeeping does not move, and both traffic
// streams still deliver exactly-once in order.
func TestMigrateMiddleProcessFailure(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 10 * time.Microsecond}

	srvA := perftest.NewServer(tb.cl.Sched, "srvA", opts)
	srvB := perftest.NewServer(tb.cl.Sched, "srvB", opts)
	sContA := NewContainer(tb.cl.Host("partner"), "serverA")
	sContA.Start(func(p *task.Process) { srvA.Run(p, tb.daemons["partner"]) })
	sContB := NewContainer(tb.cl.Host("partner"), "serverB")
	sContB.Start(func(p *task.Process) { srvB.Run(p, tb.daemons["partner"]) })

	cliA := perftest.NewClient(tb.cl.Sched, "cliA", opts, perftest.Target{Node: "partner", Name: "srvA"})
	cliB := perftest.NewClient(tb.cl.Sched, "cliB", opts, perftest.Target{Node: "partner", Name: "srvB"})
	cont := NewContainer(tb.cl.Host("src"), "multi")
	tb.cl.Sched.Go("start-clients", func() {
		srvA.WaitReady()
		srvB.WaitReady()
		cont.Start(func(p *task.Process) { cliA.Run(p, tb.daemons["src"]) })
		cont.Exec("cliB", func(p *task.Process) { cliB.Run(p, tb.daemons["src"]) })
	})

	var mErr error
	tb.cl.Sched.Go("driver", func() {
		cliA.WaitReady()
		cliB.WaitReady()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		predumps := 0
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug:       core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			ExtraPlugs: []*core.Plugin{core.NewPlugin(tb.daemons["src"], tb.daemons["dst"])},
			Opts:       DefaultMigrateOptions()}
		m.Inject = func(ph string) error {
			if ph == "predump" {
				predumps++
				if predumps == 2 {
					return fmt.Errorf("boom")
				}
			}
			return nil
		}
		_, mErr = m.Migrate()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		cliA.Stop()
		cliB.Stop()
		cliA.Wait()
		cliB.Wait()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srvA.Stop()
		srvB.Stop()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr == nil {
		t.Fatal("migration succeeded despite injected fault")
	}
	if !strings.Contains(mErr.Error(), "proc multi/cliB") || !strings.Contains(mErr.Error(), "phase predump") {
		t.Fatalf("error does not name the failing process and phase: %v", mErr)
	}
	if cont.Host != tb.cl.Host("src") {
		t.Fatal("container bookkeeping moved despite the failure")
	}
	if cliA.Sess.Node() != "dst" {
		t.Fatalf("first process on %s, want dst (it migrated before the failure)", cliA.Sess.Node())
	}
	if cliB.Sess.Node() != "src" {
		t.Fatalf("second process on %s, want src (it rolled back)", cliB.Sess.Node())
	}
	for name, pair := range map[string][2]*perftest.Stats{
		"A": {&cliA.Stats, &srvA.Stats}, "B": {&cliB.Stats, &srvB.Stats},
	} {
		assertClean(t, "client"+name, *pair[0])
		assertClean(t, "server"+name, *pair[1])
		if pair[0].Completed == 0 || pair[0].Completed != pair[1].Completed {
			t.Errorf("stream %s: client %d vs server %d completions",
				name, pair[0].Completed, pair[1].Completed)
		}
	}
	if got := tb.cl.Metrics.Snapshot().Sum("migr", "migrations_aborted"); got != 1 {
		t.Fatalf("migrations_aborted = %d, want 1", got)
	}
}
