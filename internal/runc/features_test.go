package runc

import (
	"strings"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
	"migrrdma/internal/verbs"
)

// TestMigrateUDDatagram migrates a process holding a UD QP: peers
// address it by (node, virtual QPN); after migration the stale cache
// entry is refreshed through the moved-QPN redirect (§3.3 datagram
// case).
func TestMigrateUDDatagram(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "peer")
	sched := tb.cl.Sched

	var udReady bool
	var udVQPN uint32
	received := 0
	// The migratable UD receiver.
	cont := NewContainer(tb.cl.Host("src"), "ud-recv")
	cont.Start(func(p *task.Process) {
		sess := core.NewSession(p, tb.daemons["src"])
		p.AS.Map(0x100000, 1<<16, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(256, nil)
		mr, err := sess.RegMR(pd, 0x100000, 1<<16, rnic.AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.UD, SendCQ: cq, RecvCQ: cq, Caps: rnic.QPCaps{MaxRecv: 64}})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		for i := 0; i < 32; i++ {
			qp.PostRecv(rnic.RecvWR{WRID: uint64(i), SGEs: []rnic.SGE{{Addr: 0x100000 + mem.Addr(i*1024), Len: 1024, LKey: mr.LKey()}}})
		}
		udVQPN = qp.VQPN()
		udReady = true
		for received < 20 {
			cq.WaitNonEmpty()
			for _, e := range cq.Poll(16) {
				if e.Opcode == rnic.OpRecv && e.Status == rnic.WCSuccess {
					received++
				}
			}
		}
	})

	// The peer sends datagrams to (src, vqpn), before and after the
	// receiver migrates.
	sent := 0
	peerCont := NewContainer(tb.cl.Host("peer"), "ud-send")
	peerCont.Start(func(p *task.Process) {
		for !udReady {
			sched.Sleep(time.Millisecond)
		}
		sess := core.NewSession(p, tb.daemons["peer"])
		p.AS.Map(0x100000, 1<<16, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(256, nil)
		mr, _ := sess.RegMR(pd, 0x100000, 1<<16, rnic.AccessLocalWrite)
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.UD, SendCQ: cq, RecvCQ: cq})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		for sent < 20 {
			err := qp.PostSend(rnic.SendWR{
				WRID: uint64(sent), Opcode: rnic.OpSend, Signaled: true,
				SGEs:       []rnic.SGE{{Addr: 0x100000, Len: 256, LKey: mr.LKey()}},
				RemoteNode: "src", RemoteQPN: udVQPN,
			})
			if err != nil {
				t.Errorf("ud send: %v", err)
				return
			}
			cq.WaitNonEmpty()
			cq.Poll(16)
			sent++
			// The peer's (node, vqpn) cache goes stale mid-stream when
			// the receiver migrates; invalidate to force the redirect
			// (UD is unreliable, so a datagram sent into the blackout
			// may be lost — pace and retry at the application level,
			// as UD apps must).
			if sent == 10 {
				for tb.cl.Sched.Now() < time.Second && received < 10 {
					sched.Sleep(time.Millisecond)
				}
				sess.InvalidateRemoteCaches("src")
			}
			sched.Sleep(2 * time.Millisecond)
		}
	})

	var mErr error
	sched.Go("migrate", func() {
		for !udReady {
			sched.Sleep(time.Millisecond)
		}
		sched.Sleep(8 * time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}
		_, mErr = m.Migrate()
	})
	tb.cl.Sched.RunFor(10 * time.Second)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if received < 15 {
		t.Fatalf("received only %d of %d datagrams across migration", received, sent)
	}
}

// TestHybridNonMigrRDMAPeer connects a MigrRDMA session to a plain-verbs
// peer (no daemon anywhere near it, physical values only). The §6
// negotiation must detect the peer and disable virtualization for that
// communication so one-sided ops still work.
func TestHybridNonMigrRDMAPeer(t *testing.T) {
	// One cluster with two hosts; only "mig" runs a MigrRDMA daemon.
	cl := cluster.New(cluster.Config{Seed: 77}, "mig", "raw")
	d := core.NewDaemon(cl.Host("mig"))
	done := false
	cl.Sched.Go("hybrid", func() {
		// Raw peer: plain verbs, no MigrRDMA anywhere.
		rawProc := task.New(cl.Sched, "raw")
		rawProc.AS.Map(0x100000, 1<<16, "buf")
		rawCtx := verbs.OpenDevice(cl.Host("raw").Dev, rawProc.AS)
		rawPD := rawCtx.AllocPD()
		rawCQ := rawCtx.CreateCQ(64, nil)
		rawMR, err := rawCtx.RegMR(rawPD, 0x100000, 1<<16,
			rnic.AccessLocalWrite|rnic.AccessRemoteWrite|rnic.AccessRemoteRead)
		if err != nil {
			t.Error(err)
			return
		}
		rawQP := rawCtx.CreateQP(rawPD, rnic.RC, rawCQ, rawCQ, nil, rnic.QPCaps{})

		// MigrRDMA side.
		mp := task.New(cl.Sched, "mig-proc")
		sess := core.NewSession(mp, d)
		mp.AS.Map(0x200000, 1<<16, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(64, nil)
		mr, err := sess.RegMR(pd, 0x200000, 1<<16, rnic.AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})

		// Exchange: the raw peer shares its *physical* QPN and rkey; the
		// MigrRDMA side shares its physical QPN too (a raw peer cannot
		// translate virtual ones).
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "raw", RemoteQPN: rawQP.QPN()}); err != nil {
			t.Errorf("hybrid RTR: %v", err)
			return
		}
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		if qp.Suspended() {
			t.Error("fresh QP suspended")
		}
		for _, a := range []rnic.ModifyAttr{
			{State: rnic.StateInit},
			// Before any migration the MigrRDMA side's virtual QPN
			// equals its physical QPN, which is what a raw peer needs.
			{State: rnic.StateRTR, RemoteNode: "mig", RemoteQPN: qp.VQPN()},
			{State: rnic.StateRTS},
		} {
			if err := rawQP.Modify(a); err != nil {
				t.Errorf("raw modify: %v", err)
				return
			}
		}

		// One-sided WRITE using the raw peer's PHYSICAL rkey: the
		// negotiation must pass it through untranslated.
		mp.AS.Write(0x200000, []byte("hybrid"))
		err = qp.PostSend(rnic.SendWR{
			WRID: 1, Opcode: rnic.OpWrite, Signaled: true,
			SGEs:       []rnic.SGE{{Addr: 0x200000, Len: 6, LKey: mr.LKey()}},
			RemoteAddr: 0x100000, RKey: rawMR.RKey(),
		})
		if err != nil {
			t.Errorf("hybrid write: %v", err)
			return
		}
		cq.WaitNonEmpty()
		if e := cq.Poll(4)[0]; e.Status != rnic.WCSuccess {
			t.Errorf("hybrid write status %v", e.Status)
		}
		var buf [6]byte
		rawProc.AS.Read(0x100000, buf[:])
		if string(buf[:]) != "hybrid" {
			t.Errorf("raw peer got %q", buf)
		}
		done = true
	})
	cl.Sched.RunFor(5 * time.Second)
	if !done {
		t.Fatal("hybrid exchange did not finish")
	}
}

// TestWBSTimeoutPathUnderHeavyLoss forces wait-before-stop to expire (a
// "buggy network", §3.4): in-flight WRs cannot drain, stop-and-copy
// proceeds anyway, and the leftover WRs are replayed after restoration.
// Delivery is then at-least-once (replays may duplicate data whose ACK
// was lost), so the assertion is on client completions, not server
// counts.
func TestWBSTimeoutPathUnderHeavyLoss(t *testing.T) {
	// Effectively-infinite transport retries keep the QPs alive through
	// the loss burst (rnr_retry=7 semantics), so the drain stalls
	// instead of erroring out.
	cl := cluster.New(cluster.Config{Seed: 7, NIC: rnic.Config{MaxRetries: 1 << 30}}, "src", "dst", "partner")
	tb := &testbed{cl: cl, daemons: map[string]*core.Daemon{}}
	for _, n := range []string{"src", "dst", "partner"} {
		tb.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	wbs := core.DefaultWBSConfig()
	wbs.Timeout = 2 * time.Millisecond
	for _, d := range tb.daemons {
		d.SetWBSConfig(wbs)
	}
	// Endless traffic so the send window is in flight when suspension
	// lands.
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 8, NumQPs: 2, Messages: 0}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)
	var rep *Report
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		// Heavy RDMA-path loss stalls the drain; control stays reliable.
		tb.cl.Net.SetPortLoss("src", rnic.PortRDMA, 0.9)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
		tb.cl.Net.SetPortLoss("src", rnic.PortRDMA, 0)
		tb.cl.Sched.Sleep(5 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		srv.Stop()
	})
	tb.cl.Sched.RunFor(2 * time.Minute)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if rep == nil {
		t.Fatal("migration did not complete despite the WBS timeout path")
	}
	if !rep.WBS.TimedOut {
		for i, st := range cli.QPStates() {
			t.Logf("qp %d: %s", i, st)
		}
		t.Logf("client errors: %v", cli.Stats.Errors)
		t.Logf("completed: %d", cli.Stats.Completed)
		t.Fatalf("expected a timed-out wait-before-stop, got %+v", rep.WBS)
	}
	if rep.WBS.LeftoverSends == 0 {
		t.Fatal("timed-out WBS should report leftover sends to replay")
	}
	if len(cli.Stats.Errors) > 0 {
		t.Fatalf("client errors after timeout-path migration: %v", cli.Stats.Errors)
	}
	if cli.Stats.Completed == 0 {
		t.Fatal("client made no progress")
	}
	// The client's own accounting must fully drain: every posted WR —
	// including the replayed leftovers — eventually completed.
	for i, st := range cli.QPStates() {
		if !strings.Contains(st, "outstanding=0") {
			t.Fatalf("qp %d did not drain after replay: %s", i, st)
		}
	}
}

// TestLatencySpikeAtMigration runs a latency-mode workload across a
// live migration: the operations overlapping the blackout spike to
// roughly the blackout length, while steady-state latency stays in the
// microsecond range before and after — the per-op view of Fig. 5.
func TestLatencySpikeAtMigration(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 64, NumQPs: 1, Messages: 0, LatencyMode: true,
		PostGap: 200 * time.Microsecond}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)
	var rep *Report
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(5 * time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
		tb.cl.Sched.Sleep(5 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		srv.Stop()
	})
	tb.cl.Sched.RunFor(2 * time.Minute)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	st := &cli.Stats
	if len(st.LatSamples) < 50 {
		t.Fatalf("only %d latency samples", len(st.LatSamples))
	}
	p50, max := st.LatPercentile(50), st.LatPercentile(100)
	if p50 > 100*time.Microsecond {
		t.Errorf("median latency %v — steady state should be microseconds", p50)
	}
	// The blackout-straddling op waits out the service blackout.
	if max < rep.ServiceBlackout/2 {
		t.Errorf("max latency %v does not reflect the %v blackout", max, rep.ServiceBlackout)
	}
	if max > 4*rep.ServiceBlackout {
		t.Errorf("max latency %v far exceeds the blackout %v", max, rep.ServiceBlackout)
	}
	t.Logf("latency across migration: p50=%v p99=%v max=%v (blackout %v)",
		p50, st.LatPercentile(99), max, rep.ServiceBlackout)
}

// TestMigrateDMAndMW migrates a session holding on-chip memory, a
// memory window and a completion channel (the §3.1 "all ib_verbs
// features" claim).
func TestMigrateDMAndMW(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "peer")
	sched := tb.cl.Sched
	ready := false
	okWrites := 0
	var mwRKey, peerVQPN uint32
	// Peer with an MW over part of its MR.
	peerCont := NewContainer(tb.cl.Host("peer"), "peer")
	peerCont.Start(func(p *task.Process) {
		sess := core.NewSession(p, tb.daemons["peer"])
		p.AS.Map(0x100000, 1<<20, "exposed")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(128, nil)
		mr, _ := sess.RegMR(pd, 0x100000, 1<<20, rnic.AccessLocalWrite|rnic.AccessRemoteWrite)
		mw, err := sess.BindMW(mr, 0x104000, 4096, rnic.AccessRemoteWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		mwRKey, peerVQPN = mw.RKey(), qp.VQPN()
		ready = true
		for appQPNShared == 0 {
			sched.Sleep(time.Millisecond)
		}
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "src", RemoteQPN: appQPNShared})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
	})
	appCont := NewContainer(tb.cl.Host("src"), "app")
	appCont.Start(func(p *task.Process) {
		for !ready {
			sched.Sleep(time.Millisecond)
		}
		sess := core.NewSession(p, tb.daemons["src"])
		pd := sess.AllocPD()
		ch := sess.CreateCompChannel()
		cq := sess.CreateCQ(128, ch)
		dm, err := sess.AllocDM(8192)
		if err != nil {
			t.Error(err)
			return
		}
		dmAddr := dm.Addr()
		mr, err := sess.RegMR(pd, dmAddr, 8192, rnic.AccessLocalWrite)
		if err != nil {
			t.Error(err)
			return
		}
		qp := sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateInit})
		appQPNShared = qp.VQPN()
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "peer", RemoteQPN: peerVQPN})
		qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		write := func() {
			p.AS.Write(dmAddr, []byte("dmpayload"))
			cq.ReqNotify()
			if err := qp.PostSend(rnic.SendWR{WRID: 7, Opcode: rnic.OpWrite, Signaled: true,
				SGEs:       []rnic.SGE{{Addr: dmAddr, Len: 9, LKey: mr.LKey()}},
				RemoteAddr: 0x104000, RKey: mwRKey}); err != nil {
				t.Errorf("post: %v", err)
				return
			}
			got := ch.Get()
			for _, e := range got.Poll(8) {
				if e.Status == rnic.WCSuccess {
					okWrites++
				} else {
					t.Errorf("write failed: %v", e.Status)
				}
			}
		}
		write()
		for sess.Node() == "src" {
			p.Compute(300 * time.Microsecond)
		}
		if dm.Addr() != dmAddr {
			t.Errorf("DM address changed: %#x → %#x", uint64(dmAddr), uint64(dm.Addr()))
		}
		write()
	})
	var mErr error
	sched.Go("migrate", func() {
		for !ready || appQPNShared == 0 {
			sched.Sleep(time.Millisecond)
		}
		sched.Sleep(10 * time.Millisecond)
		_, mErr = (&Migrator{C: appCont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}).Migrate()
	})
	tb.cl.Sched.RunFor(time.Minute)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if okWrites != 2 {
		t.Fatalf("completed %d MW writes, want 2 (one per side of the migration)", okWrites)
	}
}

var appQPNShared uint32

// TestMigrateWithSRQ migrates a receiver whose QPs share one SRQ: the
// staged restore must recreate the SRQ, attach both new QPs to it, and
// replay the unconsumed shared receives (§3.4 SRQ case).
func TestMigrateWithSRQ(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "peer")
	sched := tb.cl.Sched
	var ready bool
	var vqpns [2]uint32
	received := 0
	cont := NewContainer(tb.cl.Host("src"), "srq-recv")
	cont.Start(func(p *task.Process) {
		sess := core.NewSession(p, tb.daemons["src"])
		p.AS.Map(0x100000, 1<<20, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(1024, nil)
		srq := sess.CreateSRQ()
		mr, _ := sess.RegMR(pd, 0x100000, 1<<20, rnic.AccessLocalWrite)
		var qps [2]*core.QP
		for i := range qps {
			qps[i] = sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq, SRQ: srq})
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateInit})
			vqpns[i] = qps[i].VQPN()
		}
		for i := 0; i < 64; i++ {
			srq.PostRecv(rnic.RecvWR{WRID: uint64(i), SGEs: []rnic.SGE{{
				Addr: 0x100000 + mem.Addr(i*4096), Len: 4096, LKey: mr.LKey()}}})
		}
		for srqPeerQPNs[0] == 0 || srqPeerQPNs[1] == 0 {
			sched.Sleep(time.Millisecond)
		}
		for i := range qps {
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "peer", RemoteQPN: srqPeerQPNs[i]})
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		}
		ready = true
		for received < 40 {
			cq.WaitNonEmpty()
			for _, e := range cq.Poll(16) {
				if e.Opcode == rnic.OpRecv && e.Status == rnic.WCSuccess {
					received++
				}
			}
		}
	})
	sent := 0
	peerCont := NewContainer(tb.cl.Host("peer"), "srq-send")
	peerCont.Start(func(p *task.Process) {
		sess := core.NewSession(p, tb.daemons["peer"])
		p.AS.Map(0x100000, 1<<20, "buf")
		pd := sess.AllocPD()
		cq := sess.CreateCQ(1024, nil)
		mr, _ := sess.RegMR(pd, 0x100000, 1<<20, rnic.AccessLocalWrite)
		var qps [2]*core.QP
		for vqpns[0] == 0 || vqpns[1] == 0 {
			sched.Sleep(time.Millisecond)
		}
		for i := range qps {
			qps[i] = sess.CreateQP(pd, core.QPConfig{Type: rnic.RC, SendCQ: cq, RecvCQ: cq})
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateInit})
			srqPeerQPNs[i] = qps[i].VQPN()
		}
		for !ready {
			sched.Sleep(time.Millisecond)
		}
		for i := range qps {
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: "src", RemoteQPN: vqpns[i]})
			qps[i].Modify(rnic.ModifyAttr{State: rnic.StateRTS})
		}
		for sent < 40 {
			qp := qps[sent%2]
			if err := qp.PostSend(rnic.SendWR{WRID: uint64(sent), Opcode: rnic.OpSend, Signaled: true,
				SGEs: []rnic.SGE{{Addr: 0x100000, Len: 1024, LKey: mr.LKey()}}}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			cq.WaitNonEmpty()
			cq.Poll(8)
			sent++
			sched.Sleep(2 * time.Millisecond) // span the migration
		}
	})
	var mErr error
	sched.Go("migrate", func() {
		for !ready {
			sched.Sleep(time.Millisecond)
		}
		sched.Sleep(10 * time.Millisecond)
		_, mErr = (&Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}).Migrate()
	})
	tb.cl.Sched.RunFor(time.Minute)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if received != 40 {
		t.Fatalf("received %d of %d across SRQ migration", received, sent)
	}
}

var srqPeerQPNs [2]uint32
