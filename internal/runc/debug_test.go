package runc

import (
	"testing"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
)

// TestDebugNoPreSetup is a scaled-down probe of the no-presetup path
// with state dumps on stall; kept as a regression canary.
func TestDebugNoPreSetup(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 16, NumQPs: 8, Messages: 4000, PostGap: 2 * time.Microsecond}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)
	var rep *Report
	var mErr error
	var mig *Migrator
	migDone := false
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		o := DefaultMigrateOptions()
		o.PreSetup = false
		mig = &Migrator{C: cont, Dst: tb.cl.Host("dst"), Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: o}
		rep, mErr = mig.Migrate()
		migDone = true
		cli.Wait()
		srv.Stop()
	})
	tb.cl.Sched.RunFor(20 * time.Second)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if !migDone {
		t.Fatalf("migration hung at stage %q; blocked: %s", mig.Stage, tb.cl.Sched.BlockedReport())
	}
	if cli.Stats.Completed != 32000 {
		t.Errorf("completed %d, want 32000; errors=%v", cli.Stats.Completed, cli.Stats.Errors)
		t.Logf("client session node: %s", cli.Sess.Node())
		for i, st := range cli.QPStates() {
			t.Logf("qp %d: %s", i, st)
		}
	}
	if rep != nil {
		t.Logf("report: %s", rep)
	}
}
