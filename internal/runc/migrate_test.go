package runc

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// testbed assembles hosts with MigrRDMA daemons.
type testbed struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
}

func newTestbed(t *testing.T, names ...string) *testbed {
	t.Helper()
	cl := cluster.New(cluster.Config{Seed: 7}, names...)
	tb := &testbed{cl: cl, daemons: make(map[string]*core.Daemon)}
	for _, n := range names {
		tb.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	return tb
}

// startPair spawns a perftest server on sNode and a client container on
// cNode, returning the container and both sides. The returned driver
// proc sequencing guarantees the server is ready before the client
// connects.
func (tb *testbed) startPair(t *testing.T, cNode, sNode string, opts perftest.Options) (*Container, *perftest.Client, *perftest.Server) {
	t.Helper()
	srv := perftest.NewServer(tb.cl.Sched, "srv", opts)
	srvCont := NewContainer(tb.cl.Host(sNode), "server")
	srvCont.Start(func(p *taskProcess) { srv.Run(p, tb.daemons[sNode]) })

	cli := perftest.NewClient(tb.cl.Sched, "cli", opts, perftest.Target{Node: sNode, Name: "srv"})
	cliCont := NewContainer(tb.cl.Host(cNode), "client")
	tb.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(p *taskProcess) { cli.Run(p, tb.daemons[cNode]) })
	})
	return cliCont, cli, srv
}

func assertClean(t *testing.T, name string, st perftest.Stats) {
	t.Helper()
	for _, e := range st.Errors {
		t.Errorf("%s: %s", name, e)
	}
}

func TestPerftestPairNoMigration(t *testing.T) {
	tb := newTestbed(t, "hostA", "hostB")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 16, NumQPs: 4, Messages: 100}
	_, cli, srv := tb.startPair(t, "hostA", "hostB", opts)
	tb.cl.Sched.Go("driver", func() {
		cli.Wait()
		srv.Stop()
	})
	tb.cl.Sched.RunFor(5 * time.Second)
	if cli.Stats.Completed != 400 {
		t.Fatalf("completed %d, want 400", cli.Stats.Completed)
	}
	assertClean(t, "client", cli.Stats)
}

func TestPerftestSendRecvOrder(t *testing.T) {
	tb := newTestbed(t, "hostA", "hostB")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 1024, QueueDepth: 8, NumQPs: 2, Messages: 50, CheckOrder: true}
	_, cli, srv := tb.startPair(t, "hostA", "hostB", opts)
	tb.cl.Sched.Go("driver", func() {
		cli.Wait()
		// Let the tail of receptions drain.
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(5 * time.Second)
	if srv.Stats.Completed != 100 {
		t.Fatalf("server received %d, want 100", srv.Stats.Completed)
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
}

// migratePair runs a full live migration of the client (sender) or is
// parameterized for servers later.
func TestMigrateSenderWithPreSetup(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	// Endless checked traffic so the migration lands mid-stream: work
	// requests are in flight at suspension, are intercepted during the
	// blackout, and resume on the destination.
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 4096, QueueDepth: 16, NumQPs: 4, Messages: 0, CheckOrder: true, PostGap: 5 * time.Microsecond}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)

	var rep *Report
	var mErr error
	var beforeMig, afterMig int64
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		// Let traffic reach steady state.
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		beforeMig = cli.Stats.Completed
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"), Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
		afterMig = cli.Stats.Completed
		// Keep running on the destination, then drain.
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr != nil {
		t.Fatalf("migration failed: %v", mErr)
	}
	if rep == nil {
		t.Fatal("migration did not finish")
	}
	if beforeMig == 0 {
		t.Fatal("no traffic before the migration — the test is vacuous")
	}
	if rep.WBS.InflightBytes == 0 {
		t.Fatal("nothing was in flight at suspension — the test is vacuous")
	}
	if cli.Stats.Completed <= afterMig {
		t.Fatalf("no progress after migration: %d → %d", afterMig, cli.Stats.Completed)
	}
	if cli.Stats.Completed != srv.Stats.Completed {
		t.Fatalf("client completed %d but server received %d", cli.Stats.Completed, srv.Stats.Completed)
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
	if cli.Sess.Node() != "dst" {
		t.Fatalf("session on %s after migration, want dst", cli.Sess.Node())
	}
	if rep.ServiceBlackout <= 0 || rep.ServiceBlackout > 2*time.Second {
		t.Fatalf("implausible service blackout %v", rep.ServiceBlackout)
	}
	if rep.WBS.TimedOut {
		t.Fatal("wait-before-stop timed out on a healthy network")
	}
	t.Logf("report: %s (completed %d before, %d at switch, %d total)", rep, beforeMig, afterMig, cli.Stats.Completed)
}

func TestMigrateReceiverWithPreSetup(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2, Messages: 0, CheckOrder: true, PostGap: 5 * time.Microsecond}
	// Server (receiver) lives in the container on src; client posts
	// SENDs from partner.
	srv := perftest.NewServer(tb.cl.Sched, "srv", opts)
	srvCont := NewContainer(tb.cl.Host("src"), "server")
	srvCont.Start(func(p *taskProcess) { srv.Run(p, tb.daemons["src"]) })
	cli := perftest.NewClient(tb.cl.Sched, "cli", opts, perftest.Target{Node: "src", Name: "srv"})
	cliCont := NewContainer(tb.cl.Host("partner"), "client")
	tb.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(p *taskProcess) { cli.Run(p, tb.daemons["partner"]) })
	})

	var rep *Report
	var mErr error
	var atSwitch int64
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		m := &Migrator{C: srvCont, Dst: tb.cl.Host("dst"), Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
		atSwitch = srv.Stats.Completed
		// Post-migration phase: the client keeps SENDing (with payload
		// stamps) to the server now living on dst; stamps must verify
		// against memory the *destination* NIC writes.
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		tb.cl.Sched.Sleep(5 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr != nil {
		t.Fatalf("migration failed: %v", mErr)
	}
	if rep == nil {
		t.Fatal("migration did not finish")
	}
	if atSwitch == 0 {
		t.Fatal("no traffic before the switch — the test is vacuous")
	}
	if srv.Stats.Completed <= atSwitch {
		t.Fatalf("receiver made no progress after migration: %d → %d", atSwitch, srv.Stats.Completed)
	}
	if srv.Stats.Completed != cli.Stats.Completed {
		t.Fatalf("client completed %d but server received %d (lost or duplicated across migration)",
			cli.Stats.Completed, srv.Stats.Completed)
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
	if srv.Sess.Node() != "dst" {
		t.Fatalf("server session on %s, want dst", srv.Sess.Node())
	}
}

func TestMigrateWithoutPreSetupSlower(t *testing.T) {
	run := func(preSetup bool) *Report {
		tb := newTestbed(t, "src", "dst", "partner")
		opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 16, NumQPs: 8, Messages: 20000, PostGap: 3 * time.Microsecond}
		cont, cli, srv := tb.startPair(t, "src", "partner", opts)
		var rep *Report
		var mErr error
		tb.cl.Sched.Go("migrate", func() {
			cli.WaitReady()
			tb.cl.Sched.Sleep(3 * time.Millisecond)
			o := DefaultMigrateOptions()
			o.PreSetup = preSetup
			m := &Migrator{C: cont, Dst: tb.cl.Host("dst"), Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: o}
			rep, mErr = m.Migrate()
			cli.Wait()
			srv.Stop()
		})
		tb.cl.Sched.RunFor(60 * time.Second)
		if mErr != nil {
			t.Fatalf("preSetup=%v migration failed: %v", preSetup, mErr)
		}
		if got, want := cli.Stats.Completed, int64(20000*8); got != want {
			t.Fatalf("preSetup=%v: completed %d, want %d", preSetup, got, want)
		}
		assertClean(t, "client", cli.Stats)
		return rep
	}
	with := run(true)
	without := run(false)
	if with.Blackout() >= without.Blackout() {
		t.Fatalf("pre-setup blackout %v not better than baseline %v", with.Blackout(), without.Blackout())
	}
	if without.RestoreRDMA == 0 {
		t.Fatal("baseline should pay RestoreRDMA inside the blackout")
	}
	if with.RestoreRDMA != 0 || with.DumpRDMA != 0 {
		t.Fatal("pre-setup blackout must exclude DumpRDMA/RestoreRDMA")
	}
	t.Logf("with pre-setup:    %s", with)
	t.Logf("without pre-setup: %s", without)
}

// taskProcess aliases the process type for test brevity.
type taskProcess = task.Process

// TestMigrateTwice moves the same container twice (src → dst → back),
// which exercises roadmap replay from an already-restored session and
// the movedVQPN redirect chain.
func TestMigrateTwice(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 8, NumQPs: 2, Messages: 4000}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		if _, mErr = (&Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			Opts: DefaultMigrateOptions()}).Migrate(); mErr != nil {
			return
		}
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		if _, mErr = (&Migrator{C: cont, Dst: tb.cl.Host("src"),
			Plug: core.NewPlugin(tb.daemons["dst"], tb.daemons["src"]),
			Opts: DefaultMigrateOptions()}).Migrate(); mErr != nil {
			return
		}
		cli.Wait()
		srv.Stop()
	})
	tb.cl.Sched.RunFor(5 * time.Minute)
	if mErr != nil {
		t.Fatalf("double migration failed: %v", mErr)
	}
	if got, want := cli.Stats.Completed, int64(4000*2); got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	assertClean(t, "client", cli.Stats)
	if cli.Sess.Node() != "src" {
		t.Fatalf("session on %s, want src after the round trip", cli.Sess.Node())
	}
}

// TestMigrateBothEndpoints migrates the client, then the server, of the
// same communication — both sides end up on new hosts with traffic
// intact.
func TestMigrateBothEndpoints(t *testing.T) {
	tb := newTestbed(t, "a1", "a2", "b1", "b2")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2, Messages: 4000, CheckOrder: true}
	srv := perftest.NewServer(tb.cl.Sched, "srv", opts)
	srvCont := NewContainer(tb.cl.Host("b1"), "server")
	srvCont.Start(func(p *task.Process) { srv.Run(p, tb.daemons["b1"]) })
	cli := perftest.NewClient(tb.cl.Sched, "cli", opts, perftest.Target{Node: "b1", Name: "srv"})
	cliCont := NewContainer(tb.cl.Host("a1"), "client")
	tb.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(p *task.Process) { cli.Run(p, tb.daemons["a1"]) })
	})
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		if _, mErr = (&Migrator{C: cliCont, Dst: tb.cl.Host("a2"),
			Plug: core.NewPlugin(tb.daemons["a1"], tb.daemons["a2"]),
			Opts: DefaultMigrateOptions()}).Migrate(); mErr != nil {
			return
		}
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		if _, mErr = (&Migrator{C: srvCont, Dst: tb.cl.Host("b2"),
			Plug: core.NewPlugin(tb.daemons["b1"], tb.daemons["b2"]),
			Opts: DefaultMigrateOptions()}).Migrate(); mErr != nil {
			return
		}
		cli.Wait()
		tb.cl.Sched.Sleep(5 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(5 * time.Minute)
	if mErr != nil {
		t.Fatalf("migrating both endpoints failed: %v", mErr)
	}
	if got, want := srv.Stats.Completed, int64(4000*2); got != want {
		t.Fatalf("server received %d, want %d", got, want)
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
	if cli.Sess.Node() != "a2" || srv.Sess.Node() != "b2" {
		t.Fatalf("sessions on %s/%s, want a2/b2", cli.Sess.Node(), srv.Sess.Node())
	}
}

// TestConcurrentMigration migrates both endpoints of one communication
// at the same time (§3.1: "MigrRDMA supports concurrent migration of
// two services connected with each other").
func TestConcurrentMigration(t *testing.T) {
	tb := newTestbed(t, "a1", "a2", "b1", "b2")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 8, NumQPs: 2, Messages: 4000}
	srv := perftest.NewServer(tb.cl.Sched, "srv", opts)
	srvCont := NewContainer(tb.cl.Host("b1"), "server")
	srvCont.Start(func(p *task.Process) { srv.Run(p, tb.daemons["b1"]) })
	cli := perftest.NewClient(tb.cl.Sched, "cli", opts, perftest.Target{Node: "b1", Name: "srv"})
	cliCont := NewContainer(tb.cl.Host("a1"), "client")
	tb.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(p *task.Process) { cli.Run(p, tb.daemons["a1"]) })
	})
	var errA, errB error
	wg := 0
	tb.cl.Sched.Go("migrate-A", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		_, errA = (&Migrator{C: cliCont, Dst: tb.cl.Host("a2"),
			Plug: core.NewPlugin(tb.daemons["a1"], tb.daemons["a2"]),
			Opts: DefaultMigrateOptions()}).Migrate()
		wg++
	})
	tb.cl.Sched.Go("migrate-B", func() {
		cli.WaitReady()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		_, errB = (&Migrator{C: srvCont, Dst: tb.cl.Host("b2"),
			Plug: core.NewPlugin(tb.daemons["b1"], tb.daemons["b2"]),
			Opts: DefaultMigrateOptions()}).Migrate()
		wg++
	})
	tb.cl.Sched.Go("finish", func() {
		for wg < 2 {
			tb.cl.Sched.Sleep(time.Millisecond)
		}
		if errA == nil && errB == nil {
			cli.Wait()
			srv.Stop()
		}
	})
	tb.cl.Sched.RunFor(5 * time.Minute)
	if errA != nil || errB != nil {
		t.Fatalf("concurrent migration failed: A=%v B=%v", errA, errB)
	}
	if got, want := cli.Stats.Completed, int64(4000*2); got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	assertClean(t, "client", cli.Stats)
	if cli.Sess.Node() != "a2" || srv.Sess.Node() != "b2" {
		t.Fatalf("sessions on %s/%s, want a2/b2", cli.Sess.Node(), srv.Sess.Node())
	}
}

// TestSoakRepeatedMigrations bounces a checked workload across three
// hosts with several consecutive live migrations, asserting order and
// delivery integrity end to end after each hop.
func TestSoakRepeatedMigrations(t *testing.T) {
	tb := newTestbed(t, "h1", "h2", "h3", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2, Messages: 0, CheckOrder: true, PostGap: 5 * time.Microsecond}
	cont, cli, srv := tb.startPair(t, "h1", "partner", opts)
	hops := []string{"h2", "h3", "h1", "h2"}
	var mErr error
	completedAt := make([]int64, 0, len(hops))
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		cur := "h1"
		for _, dst := range hops {
			tb.cl.Sched.Sleep(2 * time.Millisecond)
			m := &Migrator{C: cont, Dst: tb.cl.Host(dst),
				Plug: core.NewPlugin(tb.daemons[cur], tb.daemons[dst]),
				Opts: DefaultMigrateOptions()}
			if _, mErr = m.Migrate(); mErr != nil {
				return
			}
			completedAt = append(completedAt, cli.Stats.Completed)
			cur = dst
		}
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(10 * time.Minute)
	if mErr != nil {
		t.Fatalf("soak migration failed: %v", mErr)
	}
	if len(completedAt) != len(hops) {
		t.Fatalf("only %d of %d hops completed", len(completedAt), len(hops))
	}
	for i := 1; i < len(completedAt); i++ {
		if completedAt[i] <= completedAt[i-1] {
			t.Errorf("no progress between hop %d and %d: %v", i-1, i, completedAt)
		}
	}
	if cli.Stats.Completed != srv.Stats.Completed {
		t.Fatalf("client %d vs server %d after %d migrations", cli.Stats.Completed, srv.Stats.Completed, len(hops))
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
	if cli.Sess.Node() != "h2" {
		t.Fatalf("ended on %s, want h2", cli.Sess.Node())
	}
}

// TestMigrateMultiProcess migrates a container holding three processes:
// two RDMA senders (each with its own session and plugin, the way §4
// runs one checkpoint pipeline per root process) plus one plain compute
// process. All three must land on the destination, both traffic streams
// must survive, and the compute process's memory must move intact.
func TestMigrateMultiProcess(t *testing.T) {
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 10 * time.Microsecond}

	srvA := perftest.NewServer(tb.cl.Sched, "srvA", opts)
	srvB := perftest.NewServer(tb.cl.Sched, "srvB", opts)
	sContA := NewContainer(tb.cl.Host("partner"), "serverA")
	sContA.Start(func(p *task.Process) { srvA.Run(p, tb.daemons["partner"]) })
	sContB := NewContainer(tb.cl.Host("partner"), "serverB")
	sContB.Start(func(p *task.Process) { srvB.Run(p, tb.daemons["partner"]) })

	cliA := perftest.NewClient(tb.cl.Sched, "cliA", opts, perftest.Target{Node: "partner", Name: "srvA"})
	cliB := perftest.NewClient(tb.cl.Sched, "cliB", opts, perftest.Target{Node: "partner", Name: "srvB"})
	cont := NewContainer(tb.cl.Host("src"), "multi")
	var plain *task.Process
	computed := 0
	tb.cl.Sched.Go("start-clients", func() {
		srvA.WaitReady()
		srvB.WaitReady()
		cont.Start(func(p *task.Process) { cliA.Run(p, tb.daemons["src"]) })
		cont.Exec("cliB", func(p *task.Process) { cliB.Run(p, tb.daemons["src"]) })
		plain = cont.Exec("compute", func(p *task.Process) {
			vma, err := p.AS.MapAnywhere(0x5000_0000, 1<<12, "scratch")
			if err != nil {
				t.Errorf("map scratch: %v", err)
				return
			}
			for i := 0; !p.Exited(); i++ {
				if err := p.AS.Write(vma.Start, []byte{byte(i)}); err != nil {
					t.Errorf("write scratch after migration: %v", err)
					return
				}
				computed++
				p.Compute(100 * time.Microsecond)
			}
		})
	})

	var rep *Report
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		cliA.WaitReady()
		cliB.WaitReady()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug:       core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]),
			ExtraPlugs: []*core.Plugin{core.NewPlugin(tb.daemons["src"], tb.daemons["dst"])},
			Opts:       DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		cliA.Stop()
		cliB.Stop()
		cliA.Wait()
		cliB.Wait()
		plain.Exit()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srvA.Stop()
		srvB.Stop()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr != nil {
		t.Fatalf("migration failed: %v", mErr)
	}
	if rep == nil || rep.ServiceBlackout <= 0 {
		t.Fatalf("no report or zero blackout: %+v", rep)
	}
	if cont.Host != tb.cl.Host("dst") {
		t.Fatal("container bookkeeping did not move")
	}
	if computed < 10 {
		t.Fatalf("plain process computed only %d iterations", computed)
	}
	for name, pair := range map[string][2]*perftest.Stats{
		"A": {&cliA.Stats, &srvA.Stats}, "B": {&cliB.Stats, &srvB.Stats},
	} {
		assertClean(t, "client"+name, *pair[0])
		assertClean(t, "server"+name, *pair[1])
		if pair[0].Completed == 0 || pair[0].Completed != pair[1].Completed {
			t.Errorf("stream %s: client %d vs server %d completions",
				name, pair[0].Completed, pair[1].Completed)
		}
	}
}
