package runc

import (
	"strings"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/task"
)

func TestReportBlackoutSum(t *testing.T) {
	r := &Report{
		DumpRDMA:    1 * time.Millisecond,
		DumpOthers:  2 * time.Millisecond,
		Transfer:    3 * time.Millisecond,
		RestoreRDMA: 4 * time.Millisecond,
		FullRestore: 5 * time.Millisecond,
	}
	if r.Blackout() != 15*time.Millisecond {
		t.Fatalf("blackout = %v", r.Blackout())
	}
	s := r.String()
	for _, want := range []string{"DumpRDMA=1ms", "RestoreRDMA=4ms", "blackout=15ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestContainerLifecycle(t *testing.T) {
	cl := cluster.New(cluster.Config{Seed: 1}, "h")
	c := NewContainer(cl.Host("h"), "box")
	ran := map[string]bool{}
	c.Start(func(p *task.Process) { ran["init"] = true })
	c.Exec("worker", func(p *task.Process) { ran["worker"] = true })
	cl.Sched.RunFor(time.Second)
	if !ran["init"] || !ran["worker"] {
		t.Fatalf("procs ran: %v", ran)
	}
	if len(c.Procs) != 2 {
		t.Fatalf("container holds %d procs", len(c.Procs))
	}
	if c.Procs[0].Name != "box/init" || c.Procs[1].Name != "box/worker" {
		t.Fatalf("proc names: %s, %s", c.Procs[0].Name, c.Procs[1].Name)
	}
}

func TestExecBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cl := cluster.New(cluster.Config{Seed: 1}, "h")
	NewContainer(cl.Host("h"), "box").Exec("w", nil)
}

func TestMigrateNonRDMAContainer(t *testing.T) {
	// A container without an RDMA session still migrates: memory-only
	// checkpoint/restore with freeze and thaw.
	tb := newTestbed(t, "src", "dst")
	cont := NewContainer(tb.cl.Host("src"), "plain")
	steps := 0
	cont.Start(func(p *task.Process) {
		p.AS.Map(0x100000, 1<<20, "heap")
		for i := 0; i < 2000; i++ {
			p.AS.WriteU64(0x100000, uint64(i))
			p.Compute(100 * time.Microsecond)
			steps++
		}
	})
	var rep *Report
	var mErr error
	tb.cl.Sched.Go("migrate", func() {
		tb.cl.Sched.Sleep(20 * time.Millisecond)
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"), Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: DefaultMigrateOptions()}
		rep, mErr = m.Migrate()
	})
	tb.cl.Sched.RunFor(5 * time.Minute)
	if mErr != nil {
		t.Fatalf("migration: %v", mErr)
	}
	if rep.DumpRDMA != 0 || rep.RestoreRDMA != 0 {
		t.Fatal("RDMA phases reported for a non-RDMA container")
	}
	if steps != 2000 {
		t.Fatalf("app completed %d steps", steps)
	}
	// The app's memory state travelled: last written value visible.
	v, _ := cont.Procs[0].AS.ReadU64(0x100000)
	if v != 1999 {
		t.Fatalf("memory state after migration: %d", v)
	}
}
