// Package runc models the container runtime layer of the paper's
// prototype (§4): containers holding an init process and exec'd
// processes, and the extended command set of Table 2 —
// CheckpointRDMA, PartialRestore, FullRestore, and the migration-aware
// Exec — driving CRIU and the MigrRDMA plugin through the full live
// migration workflow of Fig. 2(b).
package runc

import (
	"fmt"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/criu"
	"migrrdma/internal/mem"
	"migrrdma/internal/metrics"
	"migrrdma/internal/pagechan"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
	"migrrdma/internal/trace"
)

// blackoutBucketsUS are the histogram bounds (µs) for the migration
// blackout distributions — Fig. 3 spans ~hundreds of µs (pre-setup) to
// ~hundreds of ms (baseline).
var blackoutBucketsUS = []int64{100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000}

// Container is a running container: an init process plus any number of
// exec'd processes, all migrated together (§4 runs one CRIU per root
// process).
type Container struct {
	Name  string
	Host  *cluster.Host
	Procs []*task.Process
}

// NewContainer creates an empty container on a host.
func NewContainer(h *cluster.Host, name string) *Container {
	return &Container{Name: name, Host: h}
}

// Start creates the container's init process and runs main as its
// entry point (the runc Start command).
func (c *Container) Start(main func(p *task.Process)) *task.Process {
	if len(c.Procs) > 0 {
		panic("runc: container already started")
	}
	return c.spawn(c.Name+"/init", main)
}

// Exec starts an additional process in the container (the extended
// Exec command, which also supports restoration).
func (c *Container) Exec(name string, main func(p *task.Process)) *task.Process {
	if len(c.Procs) == 0 {
		panic("runc: Exec before Start")
	}
	return c.spawn(c.Name+"/"+name, main)
}

func (c *Container) spawn(name string, main func(p *task.Process)) *task.Process {
	p := task.New(c.Host.Sched, name)
	c.Procs = append(c.Procs, p)
	if main != nil {
		c.Host.Sched.Go(name, func() { main(p) })
	}
	return p
}

// CutoverMode selects how in-flight traffic is handled across the
// migration pause.
type CutoverMode int

const (
	// CutoverGoBackN (the paper's cutover) lets blackout-window traffic
	// bounce off the suspended QPs and relies on RC go-back-N / RNR
	// retransmission to recover it after RESUME.
	CutoverGoBackN CutoverMode = iota
	// CutoverPlugForward buffers blackout traffic in a destination-side
	// plug, tunnels source-side stragglers into the same buffer, and
	// flushes everything in arrival order ahead of live traffic at
	// RESUME — zero loss, zero retransmission on the fault-free path.
	CutoverPlugForward
)

// String renders the mode the way the CLIs spell it.
func (c CutoverMode) String() string {
	if c == CutoverPlugForward {
		return "plug-forward"
	}
	return "go-back-n"
}

// ParseCutoverMode parses the CLI spelling of a cutover mode.
func ParseCutoverMode(s string) (CutoverMode, error) {
	switch s {
	case "", "go-back-n", "gbn":
		return CutoverGoBackN, nil
	case "plug-forward", "plug":
		return CutoverPlugForward, nil
	}
	return 0, fmt.Errorf("runc: unknown cutover mode %q (want go-back-n or plug-forward)", s)
}

// TransferMode selects how checkpoint images move to the destination.
type TransferMode int

const (
	// TransferMonolithic (the paper's workflow) dumps a whole image,
	// ships it in one blocking transfer, then applies it — dump, wire
	// time, and apply sum.
	TransferMonolithic TransferMode = iota
	// TransferPipelined streams chunk-sized page batches over K
	// concurrent link streams while the destination applies chunks as
	// they land (internal/pagechan), with zero-page and duplicate-page
	// elision and adaptive pre-copy convergence.
	TransferPipelined
)

// String renders the mode the way the CLIs spell it.
func (t TransferMode) String() string {
	if t == TransferPipelined {
		return "pipelined"
	}
	return "monolithic"
}

// ParseTransferMode parses the CLI spelling of a transfer mode.
func ParseTransferMode(s string) (TransferMode, error) {
	switch s {
	case "", "monolithic", "mono":
		return TransferMonolithic, nil
	case "pipelined", "pipe":
		return TransferPipelined, nil
	}
	return 0, fmt.Errorf("runc: unknown transfer mode %q (want monolithic or pipelined)", s)
}

// MigrateOptions tunes a live migration.
type MigrateOptions struct {
	// PreSetup enables RDMA communication pre-setup during partial
	// restore (§3.2); disabling it reproduces the paper's baseline that
	// restores RDMA inside the blackout.
	PreSetup bool
	// MaxPreCopyIters bounds the dirty-page iterations (write-heavy
	// RDMA workloads never converge, as on real systems).
	MaxPreCopyIters int
	// DirtyPageThreshold stops iterating when a diff is this small.
	DirtyPageThreshold int
	// Cutover selects the blackout-traffic strategy; the zero value is
	// the paper's go-back-N cutover.
	Cutover CutoverMode
	// PlugLimit bounds the destination plug buffer in frames
	// (plug-forward only); 0 takes the fabric default.
	PlugLimit int
	// Transfer selects the image transfer path; the zero value is the
	// paper's monolithic dump-then-send workflow. Pipelined mode
	// replaces the MaxPreCopyIters bound with the page channel's
	// adaptive convergence controller (DirtyPageThreshold remains the
	// convergence floor).
	Transfer TransferMode
	// Streams is the number of concurrent page-channel link streams
	// (pipelined only); 0 takes pagechan.DefaultStreams.
	Streams int
	// ChunkPages is the page-channel chunk size in pages (pipelined
	// only); 0 takes pagechan.DefaultChunkPages.
	ChunkPages int
	// FailAtRound/FailAtChunk inject a mid-chunk page-channel abort
	// after FailAtChunk chunks of the named round ("predump",
	// "precopy", "final") have shipped — pipelined only; the chaos
	// fail-and-recover harness uses it. Zero values disable it.
	FailAtRound string
	FailAtChunk int
}

// DefaultMigrateOptions mirrors the paper's configuration.
func DefaultMigrateOptions() MigrateOptions {
	return MigrateOptions{PreSetup: true, MaxPreCopyIters: 3, DirtyPageThreshold: 64}
}

// Report is the outcome of one migration, with the Fig. 3 blackout
// breakdown.
type Report struct {
	// Blackout components (§5.2): with pre-setup the blackout is
	// DumpOthers+Transfer+FullRestore; without it, all five.
	DumpRDMA    time.Duration
	DumpOthers  time.Duration
	Transfer    time.Duration
	RestoreRDMA time.Duration
	FullRestore time.Duration

	// ServiceBlackout is freeze→thaw; CommBlackout is communication
	// suspension→resumption; Total is the whole migration.
	ServiceBlackout time.Duration
	CommBlackout    time.Duration
	Total           time.Duration

	// WBS is the source-side wait-before-stop result (§3.4/§5.4).
	WBS core.WBSResult
	// PartnerWBS is the slowest partner-side wait-before-stop.
	PartnerWBS core.WBSResult

	PreCopyIterations int
	PagesTransferred  int

	// DistinctPages counts unique page addresses shipped across all
	// rounds. PagesTransferred counts per-round page records, so the
	// gap between the two is the re-send volume — including the
	// final-dump double-count of pages already shipped in the last
	// pre-copy diff and unchanged since.
	DistinctPages int
	// WireBytes is the total on-wire image volume across all rounds
	// (framing + page content + plugin blob).
	WireBytes int64
	// FinalWireBytes is the stop-and-copy round's on-wire volume — the
	// number iterative pre-copy exists to shrink.
	FinalWireBytes int64
	// PagesElided counts pages whose full content stayed off the wire
	// (zero pages shipped header-only plus content-hash duplicates).
	// Always 0 in monolithic mode.
	PagesElided int
	// Rounds carries the page channel's per-round stats (pipelined
	// transfer only).
	Rounds []pagechan.RoundStats

	// PlugFlushed is the number of frames released from the destination
	// plug at RESUME (plug-forward cutover only).
	PlugFlushed int

	// MigrationID is the Migrator.ID this report belongs to.
	MigrationID string
	// Timeline is the phase timeline of the (first) migrated process,
	// labelled with the migration ID.
	Timeline *trace.Timeline
}

// Blackout returns the sum of the blackout components.
func (r *Report) Blackout() time.Duration {
	return r.DumpRDMA + r.DumpOthers + r.Transfer + r.RestoreRDMA + r.FullRestore
}

// String renders the breakdown.
func (r *Report) String() string {
	return fmt.Sprintf(
		"DumpRDMA=%v DumpOthers=%v Transfer=%v RestoreRDMA=%v FullRestore=%v | blackout=%v comm=%v total=%v wbs=%v iters=%d",
		r.DumpRDMA.Round(time.Microsecond), r.DumpOthers.Round(time.Microsecond),
		r.Transfer.Round(time.Microsecond), r.RestoreRDMA.Round(time.Microsecond),
		r.FullRestore.Round(time.Microsecond), r.Blackout().Round(time.Microsecond),
		r.CommBlackout.Round(time.Microsecond), r.Total.Round(time.Microsecond),
		r.WBS.Elapsed.Round(time.Microsecond), r.PreCopyIterations)
}

// Migrator drives one container migration (the role of the cloud
// manager calling runc's extended commands).
type Migrator struct {
	C    *Container
	Dst  *cluster.Host
	Plug *core.Plugin
	Opts MigrateOptions

	// ID is the stable migration identifier threaded through daemon
	// handlers, trace timelines, and metrics labels so overlapping
	// migrations stay distinguishable. Empty defaults to "m0" — a
	// constant, not a global counter, to keep same-seed runs
	// byte-identical. Cluster-level callers (internal/migmgr) assign
	// unique IDs.
	ID string

	// ExtraPlugs supplies one additional plugin per additional
	// RDMA-holding process in a multi-process container.
	ExtraPlugs []*core.Plugin

	// Stage names the workflow step in progress, for diagnostics.
	Stage string

	// OnStage, when set, is invoked after every stage transition with
	// the new stage name. It runs on the migration driver proc; fault
	// injectors use it to time faults to specific migration phases.
	OnStage func(stage string)

	// Inject, when set, is consulted with each phase name right before
	// the phase's work runs; a non-nil return makes the migration abort
	// at that phase and roll back. Tests and the chaos fail-and-recover
	// harness use it to exercise the compensation path.
	Inject func(phase string) error

	// PageTap observes page-channel events (pipelined transfer only);
	// the chaos harness folds them into its event ledger.
	PageTap func(ev string, seq uint64)
}

// setStage records a stage transition and notifies the observer.
func (m *Migrator) setStage(stage string) {
	m.Stage = stage
	if m.OnStage != nil {
		m.OnStage(stage)
	}
}

// Migrate runs the complete live migration workflow of Fig. 2(b) for
// the container and returns the phase report. Multi-process containers
// are migrated the way §4 does: one checkpoint/restore pipeline per
// root process (at most one of which may hold an RDMA session per
// plugin instance — supply extra plugins with ExtraPlugs for more).
// It must run in a managed proc.
func (m *Migrator) Migrate() (*Report, error) {
	if len(m.C.Procs) == 0 {
		return nil, fmt.Errorf("runc: empty container")
	}
	if m.ID == "" {
		m.ID = "m0"
	}
	if m.Plug != nil {
		m.Plug.ID = m.ID
	}
	for _, plug := range m.ExtraPlugs {
		plug.ID = m.ID
	}
	if len(m.C.Procs) == 1 {
		return m.migrateProc(m.C.Procs[0], m.Plug, true)
	}
	// Multi-process: each process gets its own pipeline; RDMA-holding
	// processes each need their own plugin instance. Validate the plugin
	// supply up front so a mismatch fails before any process migrates.
	plugs := append([]*core.Plugin{m.Plug}, m.ExtraPlugs...)
	rdma := 0
	for _, p := range m.C.Procs {
		if _, ok := p.Attachment.(*core.Session); ok {
			rdma++
		}
	}
	if rdma > len(plugs) {
		return nil, fmt.Errorf("runc: %d RDMA processes but only %d plugins", rdma, len(plugs))
	}
	pi := 0
	var total *Report
	for _, p := range m.C.Procs {
		var plug *core.Plugin
		if _, ok := p.Attachment.(*core.Session); ok {
			plug = plugs[pi]
			pi++
		} else {
			plug = plugs[0]
		}
		rep, err := m.migrateProc(p, plug, p == m.C.Procs[len(m.C.Procs)-1])
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = rep
		} else {
			total.DumpRDMA += rep.DumpRDMA
			total.DumpOthers += rep.DumpOthers
			total.Transfer += rep.Transfer
			total.RestoreRDMA += rep.RestoreRDMA
			total.FullRestore += rep.FullRestore
			if rep.ServiceBlackout > total.ServiceBlackout {
				total.ServiceBlackout = rep.ServiceBlackout
			}
			if rep.CommBlackout > total.CommBlackout {
				total.CommBlackout = rep.CommBlackout
			}
			total.Total += rep.Total
			total.PagesTransferred += rep.PagesTransferred
			total.DistinctPages += rep.DistinctPages
			total.WireBytes += rep.WireBytes
			total.FinalWireBytes += rep.FinalWireBytes
			total.PagesElided += rep.PagesElided
			total.Rounds = append(total.Rounds, rep.Rounds...)
			if rep.WBS.Elapsed > total.WBS.Elapsed {
				total.WBS = rep.WBS
			}
		}
	}
	return total, nil
}

// imageHeaderBytes is an image's on-wire size excluding page content —
// what the pipelined path ships once the pages have streamed. The
// constants match criu.Image.ByteSize so the two transfer modes'
// wire-byte totals are directly comparable.
func imageHeaderBytes(img *criu.Image) int {
	return 256 + len(img.PluginBlob) + 64*len(img.VMAs)
}

// migrateProc runs the workflow for one process. moveContainer marks
// the last process, after which the container bookkeeping moves.
func (m *Migrator) migrateProc(p *task.Process, plug *core.Plugin, moveContainer bool) (*Report, error) {
	src, dst := m.C.Host, m.Dst
	sched := src.Sched
	srcTool, dstTool := src.CRIU, dst.CRIU
	tl := trace.NewTimeline(sched)
	tl.SetLabel(m.ID + "/" + p.Name)
	rep := &Report{MigrationID: m.ID, Timeline: tl}
	start := sched.Now()

	hasRDMA := false
	if _, ok := p.Attachment.(*core.Session); ok {
		hasRDMA = true
		if err := plug.Attach(p); err != nil {
			return nil, err
		}
	}

	// Workflow state threaded through the phase closures.
	var (
		fullImg, finalImg *criu.Image
		restore           *criu.Restore
		finalBlob         []byte
		preSetup          = sim.NewWaitGroup(sched, "pre-setup")
		preSetupLaunched  bool
		preSetupErr       error
		commStart         time.Duration
		svcStart          time.Duration
		frozen            bool
		fullRestoreOpen   bool
		finalAddrs        []mem.Addr
	)

	// Transfer-path plumbing. Monolithic mode must stay byte-identical
	// (the chaos goldens pin it), so the page-channel session — and its
	// lazy metric registrations — exist only in pipelined mode.
	pipelined := m.Opts.Transfer == TransferPipelined
	var pchan *pagechan.Session
	if pipelined {
		pchan = pagechan.NewSession(sched, src, dst.Name, pagechan.Config{
			Streams:     m.Opts.Streams,
			ChunkPages:  m.Opts.ChunkPages,
			FailAtRound: m.Opts.FailAtRound,
			FailAtChunk: m.Opts.FailAtChunk,
			Metrics:     src.Metrics,
			MigID:       m.ID,
			Tap:         m.PageTap,
		})
	}
	abortChannel := func() {
		if pchan != nil {
			pchan.Abort()
		}
	}
	distinct := make(map[mem.Addr]struct{})
	addDistinct := func(addrs []mem.Addr) {
		for _, a := range addrs {
			distinct[a] = struct{}{}
		}
	}
	// noteImage folds one monolithic round into the wire/distinct
	// accounting (pure bookkeeping — no scheduler events).
	noteImage := func(img *criu.Image) {
		for _, pg := range img.Pages {
			distinct[pg.Addr] = struct{}{}
		}
		rep.WireBytes += int64(img.ByteSize())
	}
	// noteRound folds one streamed round into the report.
	noteRound := func(st pagechan.RoundStats) {
		rep.Rounds = append(rep.Rounds, st)
		rep.WireBytes += st.WireBytes
		rep.PagesElided += st.Elided()
	}
	dumpBatch := func(b []mem.Addr) []criu.PageRec { return srcTool.DumpPages(p, b) }

	phases := []phase{
		// ①: pre-dump memory and (with pre-setup) RDMA state. Read-only
		// on the source — a retried migration re-dumps in full — so the
		// only compensation is draining the page channel's in-flight
		// chunks (pipelined mode).
		{name: "predump", stage: "predump", run: func() error {
			if pipelined {
				// No restore exists yet, so the predump round overlaps
				// dump with wire time only; the streamed pages accumulate
				// in the image for PartialRestore to apply.
				var addrs []mem.Addr
				fullImg, addrs = srcTool.BeginDump(p, true)
				addDistinct(addrs)
				st, err := pchan.Stream("predump", addrs, func(b []mem.Addr) []criu.PageRec {
					recs := dumpBatch(b)
					fullImg.Pages = append(fullImg.Pages, recs...)
					return recs
				}, nil)
				noteRound(st)
				if err != nil {
					return err
				}
				rep.PagesTransferred += st.PagesDumped
			} else {
				fullImg = srcTool.Dump(p, true)
			}
			if hasRDMA && m.Opts.PreSetup {
				var err error
				tl.Measure("predump-rdma", func() {
					fullImg.PluginBlob, err = plug.PreDump(p)
				})
				if err != nil {
					return err
				}
			}
			if pipelined {
				// The pages already streamed; ship the memory table and
				// the plugin blob.
				hdr := imageHeaderBytes(fullImg)
				src.TransferTo(dst.Name, hdr)
				rep.WireBytes += int64(hdr)
			} else {
				srcTool.Send(fullImg, dst.Name)
				rep.PagesTransferred += len(fullImg.Pages)
				noteImage(fullImg)
			}
			return nil
		}, compensate: abortChannel},

		// ②: partial restore on the destination, with RDMA pre-setup
		// replaying the roadmap in parallel with memory restoration.
		{
			name: "partial-restore", stage: "partial-restore",
			run: func() error {
				restore = dstTool.BeginRestore(p)
				if hasRDMA && m.Opts.PreSetup {
					// Claim MR-backing memory at its original addresses
					// before the temporary mappings of partial restore
					// (§3.2); quick.
					if err := plug.PreRestore(restore, fullImg, fullImg.PluginBlob); err != nil {
						return err
					}
					// The expensive part — replaying the roadmap and
					// partner pre-setup — overlaps the pre-copy iterations.
					preSetup.Add(1)
					preSetupLaunched = true
					sched.Go("rdma-presetup", func() {
						defer preSetup.Done()
						tl.Begin("restore-rdma")
						preSetupErr = plug.RunPreSetup()
						tl.End("restore-rdma")
					})
				}
				return restore.PartialRestore(fullImg)
			},
			compensate: func() {
				// Let an in-flight pre-setup finish before tearing down
				// what it builds.
				if preSetupLaunched {
					preSetup.Wait()
				}
				if hasRDMA {
					plug.AbortPartners()
					plug.AbortStaging()
				}
				if restore != nil {
					restore.Abandon()
				}
			},
		},

		// Iterative pre-copy (Fig. 2b loop on ① / ②), then the pre-setup
		// barrier. Stage-silent: the pre-engine workflow reported it
		// under partial-restore, and the chaos goldens pin that sequence.
		{name: "precopy", run: func() error {
			if pipelined {
				// Adaptive convergence: keep iterating only while the
				// dirty-rate model predicts the final transfer is still
				// shrinking (replaces the fixed MaxPreCopyIters bound).
				ctl := pagechan.NewController(m.Opts.DirtyPageThreshold)
				for ctl.Continue(srcTool.DirtyPageCount(p)) {
					img, addrs := srcTool.BeginDump(p, false)
					if len(addrs) == 0 {
						// Every remaining dirty page is device memory —
						// the plugin's job, nothing the channel can ship.
						break
					}
					addDistinct(addrs)
					st, err := pchan.Stream("precopy", addrs, dumpBatch,
						func(ch *pagechan.Chunk) { restore.ApplyChunk(img, ch.Pages, ch.Zeros) })
					noteRound(st)
					if err != nil {
						return err
					}
					rep.PagesTransferred += st.PagesDumped
					rep.PreCopyIterations++
					ctl.Observe(st, srcTool.DirtyPageCount(p))
				}
			} else {
				for i := 0; i < m.Opts.MaxPreCopyIters; i++ {
					if srcTool.DirtyPageCount(p) <= m.Opts.DirtyPageThreshold {
						break
					}
					diff := srcTool.Dump(p, false)
					if len(diff.Pages) == 0 {
						// Every dirty page was device memory: skip the
						// zero-payload Send/ApplyDiff round-trip.
						rep.PreCopyIterations++
						continue
					}
					srcTool.Send(diff, dst.Name)
					restore.ApplyDiff(diff)
					rep.PagesTransferred += len(diff.Pages)
					rep.PreCopyIterations++
					noteImage(diff)
				}
			}
			preSetup.Wait()
			return preSetupErr
		}, compensate: abortChannel},

		// ③: suspension + wait-before-stop on the source and all
		// partners, in parallel (§3.4).
		{
			name: "suspend-wbs", stage: "suspend-wbs",
			run: func() error {
				commStart = sched.Now()
				if !hasRDMA {
					return nil
				}
				wbsWG := sim.NewWaitGroup(sched, "wbs")
				wbsWG.Add(1)
				var partnerErr error
				sched.Go("suspend-partners", func() {
					defer wbsWG.Done()
					partnerErr = plug.SuspendPartners()
				})
				rep.WBS = plug.SuspendSource()
				wbsWG.Wait()
				if partnerErr != nil {
					return partnerErr
				}
				rep.PartnerWBS = plug.WorstPartnerWBS()
				return nil
			},
			// Partner-side un-suspension rides the partial-restore
			// compensation's abort notification; here only the source
			// resumes.
			compensate: func() {
				if hasRDMA {
					plug.AbortSource()
				}
			},
		},

		// ④: freeze the service. The service blackout begins.
		{
			name: "freeze", stage: "freeze",
			run: func() error {
				svcStart = sched.Now()
				srcTool.Freeze(p)
				frozen = true
				return nil
			},
			compensate: func() {
				if frozen {
					srcTool.Thaw(p)
					frozen = false
				}
			},
		},

		// ⑤ ∥ ⑤': final memory diff and final RDMA diff, dumped in
		// parallel. Stage-silent (reported under freeze pre-engine).
		{name: "final-dump", run: func() error {
			wg := sim.NewWaitGroup(sched, "final-dump")
			var dumpErr error
			if hasRDMA {
				wg.Add(1)
				sched.Go("final-dump-rdma", func() {
					defer wg.Done()
					tl.Measure("dump-rdma", func() {
						finalBlob, dumpErr = plug.FinalDump(p)
					})
				})
			}
			tl.Measure("dump-others", func() {
				if pipelined {
					// Only the table walk happens here; page reads move
					// into the transfer phase, where they overlap the
					// wire and the destination's apply.
					finalImg, finalAddrs = srcTool.BeginDump(p, false)
				} else {
					finalImg = srcTool.Dump(p, false)
				}
			})
			wg.Wait()
			if dumpErr != nil {
				return dumpErr
			}
			finalImg.PluginBlob = finalBlob
			finalImg.Final = true
			if !pipelined {
				rep.PagesTransferred += len(finalImg.Pages)
			}
			return nil
		}, compensate: abortChannel},

		{name: "transfer", stage: "transfer", run: func() error {
			if !pipelined {
				tl.Measure("transfer", func() { srcTool.Send(finalImg, dst.Name) })
				noteImage(finalImg)
				rep.FinalWireBytes = int64(finalImg.ByteSize())
				return nil
			}
			addDistinct(finalAddrs)
			var st pagechan.RoundStats
			var err error
			tl.Measure("transfer", func() {
				st, err = pchan.Stream("final", finalAddrs, dumpBatch,
					func(ch *pagechan.Chunk) { restore.ApplyChunk(finalImg, ch.Pages, ch.Zeros) })
				if err != nil {
					return
				}
				hdr := imageHeaderBytes(finalImg)
				src.TransferTo(dst.Name, hdr)
				st.WireBytes += int64(hdr)
			})
			noteRound(st)
			if err != nil {
				return err
			}
			rep.PagesTransferred += st.PagesDumped
			rep.FinalWireBytes = st.WireBytes
			return nil
		}, compensate: abortChannel},

		// ⑥: final iteration of memory restoration; with pre-setup, ⑥'
		// (mapping the new RDMA resources into the restored process)
		// happens here too.
		{
			name: "finalize", stage: "finalize",
			run: func() error {
				tl.Begin("full-restore")
				fullRestoreOpen = true
				var err error
				if pipelined {
					// The final diff already streamed chunk by chunk;
					// only the temporary-area remaps remain.
					err = restore.FinalizeStreamed()
				} else {
					err = restore.Finalize(finalImg)
				}
				if err != nil {
					return err
				}
				if hasRDMA && m.Opts.PreSetup {
					return plug.PostRestore(restore, p, finalBlob)
				}
				return nil
			},
			compensate: func() {
				if hasRDMA {
					plug.AbortAdoption()
				}
				if fullRestoreOpen {
					tl.End("full-restore")
					fullRestoreOpen = false
				}
			},
		},
	}

	if hasRDMA {
		if !m.Opts.PreSetup {
			// ⑥' without pre-setup: the whole RDMA restore happens here —
			// inside the blackout.
			phases = append(phases, phase{
				name: "post-restore", stage: "post-restore",
				run: func() error {
					tl.End("full-restore")
					fullRestoreOpen = false
					var err error
					tl.Measure("restore-rdma", func() {
						err = plug.PostRestore(restore, p, finalBlob)
					})
					if err != nil {
						return err
					}
					tl.Begin("full-restore")
					fullRestoreOpen = true
					return nil
				},
				// Adoption rollback lives in the finalize compensation,
				// which always runs when this phase unwinds.
			})
		}
		if m.Opts.Cutover == CutoverPlugForward {
			phases = append(phases,
				// Plug-and-forward cutover: the destination plugs the
				// restored QPs before partners switch, so frames the
				// resumed partners send ahead of the migrated service's
				// own resume wait in order instead of bouncing off empty
				// receive queues (RNR → retransmission).
				phase{
					name: "install-plug", stage: "install-plug",
					run:        func() error { return plug.InstallPlug(m.Opts.PlugLimit) },
					compensate: func() { plug.DiscardPlug() },
				},
				// The source tunnels stragglers for the suspended QPs into
				// the same plug; as a side effect, the dumped transport
				// state can no longer diverge under late arrivals.
				phase{
					name: "install-forward", stage: "install-forward",
					run:        func() error { return plug.InstallForward() },
					compensate: func() { plug.RemoveForward() },
				},
			)
		}
		phases = append(phases,
			// Partner switch-over precedes resumption so rkey fetches
			// from the resumed service find live peers (right before ⑦).
			// This is the commit point: once partners switched, their old
			// QPs are destroyed and the migration can no longer roll
			// back — failures past here are surfaced, not compensated.
			phase{name: "switch-partners", stage: "switch-partners", commit: true, run: func() error {
				if m.Opts.Cutover == CutoverPlugForward {
					// Re-point the partners but keep them suspended: they
					// resume in the resume-partners phase, after the thaw,
					// so their replayed traffic meets a live service (any
					// head start lands in the plug, not in go-back-N).
					return plug.SwitchPartnersDeferred()
				}
				return plug.SwitchPartners()
			}},
			// ⑦: post intercepted WRs, replay pending RECVs.
			phase{name: "resume", stage: "resume", run: func() error {
				return plug.ResumeMigrated()
			}},
		)
		if m.Opts.Cutover == CutoverPlugForward {
			phases = append(phases,
				// Partners resume only now, after ⑦ has replayed the
				// migrated side's RECVs: their replayed traffic meets posted
				// receives instead of bouncing off drained queues
				// (RNR → retransmit). The application thaw is NOT a
				// prerequisite — delivery is device-level, completions queue
				// in the restored CQs until the process polls — so running
				// this before the thaw keeps the thaw latency off the
				// cutover path. Any frames that outrun this RPC's return
				// wait in the plug.
				phase{name: "resume-partners", stage: "resume-partners", run: func() error {
					return plug.ResumePartners()
				}},
				// Flush in arrival order, ahead of live traffic. Ordering is
				// safe: until this phase runs, anything a peer sends at the
				// migrated QPs lands behind the plugged frames. The
				// source-side forwarding rule stays up until source reclaim
				// so in-flight retries aimed at the dead source QPs still
				// reach the restored responder's PSN window instead of
				// vanishing; teardown happens in ReleasePlug, off the
				// blackout's critical path.
				phase{name: "flush-plug", stage: "flush-plug", run: func() error {
					rep.PlugFlushed = plug.FlushPlug()
					return nil
				}},
			)
		}
	}

	phases = append(phases, phase{name: "thaw", stage: "thaw", run: func() error {
		restore.FullRestore()
		tl.End("full-restore")
		fullRestoreOpen = false
		return nil
	}})

	if err := m.runPhases(p, tl, phases); err != nil {
		return nil, err
	}
	m.setStage("done")
	rep.DistinctPages = len(distinct)
	rep.ServiceBlackout = sched.Now() - svcStart
	rep.CommBlackout = sched.Now() - commStart
	if reg := src.Metrics; reg != nil {
		labels := metrics.Labels{"proc": p.Name, "mig": m.ID}
		reg.Histogram("migr", "service_blackout_us", labels, blackoutBucketsUS).
			Observe(rep.ServiceBlackout.Microseconds())
		reg.Histogram("migr", "comm_blackout_us", labels, blackoutBucketsUS).
			Observe(rep.CommBlackout.Microseconds())
		reg.Counter("migr", "migrations", labels).Inc()
	}

	// The source reclaims the migrated service's resources (off the
	// critical path).
	if hasRDMA {
		sched.Go("reclaim-source", func() {
			// Plug-mode teardown first: once the forwarding rule is
			// gone, destroying the source QPs can't strand a frame
			// mid-tunnel. No-op in go-back-N mode.
			plug.ReleasePlug()
			plug.ReclaimSource()
		})
	}

	rep.DumpRDMA = tl.Get("dump-rdma")
	rep.DumpOthers = tl.Get("dump-others")
	rep.Transfer = tl.Get("transfer")
	rep.RestoreRDMA = tl.Get("restore-rdma")
	rep.FullRestore = tl.Get("full-restore")
	if m.Opts.PreSetup {
		// Pre-setup moves DumpRDMA and RestoreRDMA out of the blackout
		// (§5.2); report only the blackout components.
		rep.DumpRDMA = 0
		rep.RestoreRDMA = 0
	}
	if moveContainer {
		// Move the container's bookkeeping to the destination.
		m.C.Host = dst
	}
	rep.Total = sched.Now() - start
	return rep, nil
}
