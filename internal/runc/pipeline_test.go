package runc

import (
	"strings"
	"testing"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

// memhogPages is the extra application-state region the pipeline tests
// attach to the migrated process: a deterministic writer rewrites it
// every epoch with a mix of genuinely-changing pages, zeroed scratch
// pages, and constant-content rewrites (dirty-bit false positives) —
// the page mix MigrOS observes on real pre-copy workloads.
const (
	memhogPages    = 128
	memhogHot      = 16 // pages whose content actually changes each epoch
	memhogZero     = 16 // scratch pages rewritten with zeros
	memhogBase     = mem.Addr(0x5200_0000_0000)
	memhogInterval = 200 * time.Microsecond
)

// startMemhog maps the region on p and rewrites it every epoch until
// the process exits, pausing while it is frozen (the writer models
// application threads, which the cgroup freezer stops).
func startMemhog(t *testing.T, tb *testbed, p *task.Process) {
	t.Helper()
	if _, err := p.AS.Map(memhogBase, memhogPages*mem.PageSize, "appstate"); err != nil {
		t.Fatalf("map appstate: %v", err)
	}
	tb.cl.Sched.Go("memhog", func() {
		buf := make([]byte, mem.PageSize)
		for epoch := 1; !p.Exited(); epoch++ {
			if !p.Frozen() {
				for i := 0; i < memhogPages; i++ {
					switch {
					case i < memhogHot:
						for j := range buf {
							buf[j] = byte(epoch + i + j)
						}
					case i < memhogHot+memhogZero:
						for j := range buf {
							buf[j] = 0
						}
					default:
						// Same bytes every epoch: dirty bit set, content
						// unchanged.
						for j := range buf {
							buf[j] = byte(i)
						}
					}
					a := memhogBase + mem.Addr(i*mem.PageSize)
					if err := p.AS.Write(a, buf); err != nil {
						return // unmapped mid-teardown
					}
				}
			}
			tb.cl.Sched.Sleep(memhogInterval)
		}
	})
}

// runTransferMode migrates a client container under the given transfer
// mode with the memhog writer attached, returning the report.
func runTransferMode(t *testing.T, mode TransferMode) *Report {
	t.Helper()
	tb := newTestbed(t, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 50 * time.Microsecond}
	cont, cli, srv := tb.startPair(t, "src", "partner", opts)

	var rep *Report
	var mErr error
	var atSwitch int64
	tb.cl.Sched.Go("migrate", func() {
		cli.WaitReady()
		startMemhog(t, tb, cont.Procs[0])
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		o := DefaultMigrateOptions()
		o.Transfer = mode
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
			Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: o}
		rep, mErr = m.Migrate()
		atSwitch = cli.Stats.Completed
		tb.cl.Sched.Sleep(3 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		tb.cl.Sched.Sleep(2 * time.Millisecond)
		srv.Stop()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr != nil {
		t.Fatalf("%v migration failed: %v", mode, mErr)
	}
	if rep == nil {
		t.Fatalf("%v migration did not finish", mode)
	}
	if atSwitch == 0 || cli.Stats.Completed <= atSwitch {
		t.Fatalf("%v: no traffic progress across the migration (%d → %d)",
			mode, atSwitch, cli.Stats.Completed)
	}
	if cli.Stats.Completed != srv.Stats.Completed {
		t.Fatalf("%v: client %d vs server %d completions", mode, cli.Stats.Completed, srv.Stats.Completed)
	}
	assertClean(t, "client", cli.Stats)
	assertClean(t, "server", srv.Stats)
	if cli.Sess.Node() != "dst" {
		t.Fatalf("%v: session on %s, want dst", mode, cli.Sess.Node())
	}
	return rep
}

func TestMigratePipelinedEndToEnd(t *testing.T) {
	rep := runTransferMode(t, TransferPipelined)
	if len(rep.Rounds) < 2 {
		t.Fatalf("rounds = %d, want at least predump + final", len(rep.Rounds))
	}
	if rep.Rounds[0].Round != "predump" || rep.Rounds[len(rep.Rounds)-1].Round != "final" {
		t.Errorf("round sequence %+v, want predump … final", rep.Rounds)
	}
	if rep.WireBytes <= 0 || rep.FinalWireBytes <= 0 {
		t.Errorf("wire accounting missing: total=%d final=%d", rep.WireBytes, rep.FinalWireBytes)
	}
	if rep.DistinctPages <= 0 || rep.DistinctPages > rep.PagesTransferred+rep.PagesElided {
		t.Errorf("distinct pages %d implausible vs transferred %d + elided %d",
			rep.DistinctPages, rep.PagesTransferred, rep.PagesElided)
	}
	// The memhog's constant-content rewrites and zero scratch pages
	// must produce elision in the pre-copy/final rounds.
	if rep.PagesElided == 0 {
		t.Error("no pages elided despite constant-content rewrites and zero pages")
	}
	t.Logf("pipelined: %s distinct=%d wire=%d final-wire=%d elided=%d rounds=%d",
		rep, rep.DistinctPages, rep.WireBytes, rep.FinalWireBytes, rep.PagesElided, len(rep.Rounds))
}

// TestPipelinedBeatsMonolithic is the PR's acceptance contrast: same
// workload, both transfer modes — the pipeline must shrink both the
// blackout and the final-round wire volume.
func TestPipelinedBeatsMonolithic(t *testing.T) {
	mono := runTransferMode(t, TransferMonolithic)
	pipe := runTransferMode(t, TransferPipelined)
	if pipe.FinalWireBytes >= mono.FinalWireBytes {
		t.Errorf("final-round wire: pipelined %d not below monolithic %d",
			pipe.FinalWireBytes, mono.FinalWireBytes)
	}
	if pipe.Blackout() >= mono.Blackout() {
		t.Errorf("blackout: pipelined %v not below monolithic %v",
			pipe.Blackout(), mono.Blackout())
	}
	// Monolithic mode must report the accounting satellite too: the
	// final dump re-ships pages already sent in pre-copy, so distinct
	// pages trail the per-round total.
	if mono.DistinctPages <= 0 || mono.WireBytes <= 0 {
		t.Errorf("monolithic accounting missing: distinct=%d wire=%d",
			mono.DistinctPages, mono.WireBytes)
	}
	if mono.DistinctPages >= mono.PagesTransferred {
		t.Errorf("distinct %d not below transferred %d — the double-count is invisible",
			mono.DistinctPages, mono.PagesTransferred)
	}
	t.Logf("monolithic: blackout=%v final-wire=%d wire=%d pages=%d distinct=%d",
		mono.Blackout(), mono.FinalWireBytes, mono.WireBytes, mono.PagesTransferred, mono.DistinctPages)
	t.Logf("pipelined:  blackout=%v final-wire=%d wire=%d pages=%d distinct=%d elided=%d",
		pipe.Blackout(), pipe.FinalWireBytes, pipe.WireBytes, pipe.PagesTransferred, pipe.DistinctPages, pipe.PagesElided)
}

// TestPipelinedAbortMidChunk injects a page-channel fault mid-round at
// each streaming phase and asserts the phase engine unwinds: the error
// names the phase, the channel holds no staged chunks, and the
// workload recovers on the source.
func TestPipelinedAbortMidChunk(t *testing.T) {
	for _, tc := range []struct {
		round string
		phase string
	}{
		{"predump", "predump"},
		{"final", "transfer"},
	} {
		t.Run(tc.round, func(t *testing.T) {
			tb := newTestbed(t, "src", "dst", "partner")
			// PostGap 10µs: denser traffic keeps the client's rings dirty so
			// the final stop-and-copy round always has several chunks for
			// the FailAtChunk hook to land in.
			opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
				Messages: 0, CheckOrder: true, PostGap: 10 * time.Microsecond}
			cont, cli, srv := tb.startPair(t, "src", "partner", opts)

			var mErr error
			var after int64
			tb.cl.Sched.Go("migrate", func() {
				cli.WaitReady()
				startMemhog(t, tb, cont.Procs[0])
				tb.cl.Sched.Sleep(3 * time.Millisecond)
				o := DefaultMigrateOptions()
				o.Transfer = TransferPipelined
				o.ChunkPages = 4 // small chunks so every round has several
				o.FailAtRound = tc.round
				o.FailAtChunk = 2
				m := &Migrator{C: cont, Dst: tb.cl.Host("dst"),
					Plug: core.NewPlugin(tb.daemons["src"], tb.daemons["dst"]), Opts: o}
				_, mErr = m.Migrate()
				// The workload must keep running on the source.
				tb.cl.Sched.Sleep(3 * time.Millisecond)
				after = cli.Stats.Completed
				cli.Stop()
				cli.Wait()
				tb.cl.Sched.Sleep(2 * time.Millisecond)
				srv.Stop()
			})
			tb.cl.Sched.RunFor(30 * time.Second)
			if mErr == nil {
				t.Fatal("migration succeeded despite the injected mid-chunk fault")
			}
			if !strings.Contains(mErr.Error(), "phase "+tc.phase) {
				t.Errorf("error %q does not name phase %q", mErr, tc.phase)
			}
			if !strings.Contains(mErr.Error(), "injected mid-chunk fault") {
				t.Errorf("error %q does not surface the channel fault", mErr)
			}
			if after == 0 || cli.Stats.Completed != srv.Stats.Completed {
				t.Errorf("workload did not recover on the source: after=%d cli=%d srv=%d",
					after, cli.Stats.Completed, srv.Stats.Completed)
			}
			assertClean(t, "client", cli.Stats)
			assertClean(t, "server", srv.Stats)
			if cli.Sess.Node() != "src" {
				t.Errorf("session on %s after aborted migration, want src", cli.Sess.Node())
			}
		})
	}
}

// TestMonolithicEmptyPrecopyShortCircuit pins the satellite fix: a
// diff whose dirty pages are all device memory must skip the
// Send/ApplyDiff round-trip but still count the iteration.
func TestMonolithicEmptyPrecopyShortCircuit(t *testing.T) {
	tb := newTestbed(t, "src", "dst")
	cont := NewContainer(tb.cl.Host("src"), "plain")
	var p *task.Process
	var rep *Report
	var mErr error
	tb.cl.Sched.Go("drive", func() {
		p = cont.Start(nil)
		// One normal page so the image is non-trivial, plus a device
		// region that stays permanently dirty (the RNIC writes it).
		if _, err := p.AS.Map(0x1000, mem.PageSize, "heap"); err != nil {
			t.Errorf("map heap: %v", err)
			return
		}
		_ = p.AS.Write(0x1000, []byte{1})
		dv, err := p.AS.MapAnywhereDevice(0x9000_0000_0000, 256*mem.PageSize, "dm")
		if err != nil {
			t.Errorf("map device: %v", err)
			return
		}
		buf := make([]byte, mem.PageSize)
		tb.cl.Sched.Go("device-writer", func() {
			for !p.Exited() {
				for i := 0; i < 256; i++ {
					_ = p.AS.Write(dv.Start+mem.Addr(i*mem.PageSize), buf)
				}
				tb.cl.Sched.Sleep(50 * time.Microsecond)
			}
		})
		tb.cl.Sched.Sleep(time.Millisecond)
		o := DefaultMigrateOptions()
		o.DirtyPageThreshold = 16 // below the 256 device pages
		m := &Migrator{C: cont, Dst: tb.cl.Host("dst"), Opts: o}
		rep, mErr = m.Migrate()
		p.Exit()
	})
	tb.cl.Sched.RunFor(30 * time.Second)
	if mErr != nil {
		t.Fatalf("migration failed: %v", mErr)
	}
	if rep.PreCopyIterations != DefaultMigrateOptions().MaxPreCopyIters {
		t.Errorf("iterations = %d, want the full %d (device pages stay dirty)",
			rep.PreCopyIterations, DefaultMigrateOptions().MaxPreCopyIters)
	}
	// The short-circuit keeps empty rounds off the page ledger: only
	// predump's heap page and at most the final dump count.
	if rep.PagesTransferred > 3 {
		t.Errorf("pages transferred = %d, want <= 3 (empty diffs must not ship)", rep.PagesTransferred)
	}
}
