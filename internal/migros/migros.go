// Package migros models the MigrOS baseline (Planeta et al., ATC'21)
// for the §6 comparison. MigrOS modifies the RNIC: communication states
// are extracted from and injected into the NIC through a TCP_REPAIR-like
// hardware interface, and QPs are moved through a new STOP state.
//
// The paper argues (and this model reproduces) that the waiting and
// replaying steps of stop-and-copy cost the same for both systems —
// their bottleneck is draining in-flight bytes at link rate — while the
// state-transfer step differs: MigrOS pays per-QP hardware extraction,
// STOP transitions and injection, whereas MigrRDMA's metadata already
// lives in host memory and rides the existing memory migration path.
// MigrOS's blackout is therefore strictly longer, and the gap grows
// with the number of QPs.
//
// MigrOS has no hardware prototype (the original work validates on
// SoftRoCE, which the paper rejects for performance comparison), so
// this is a calibrated analytical model, exactly like §6.
package migros

import "time"

// Params describes one migration scenario.
type Params struct {
	QPs int
	MRs int
	// InflightBytes is the wire backlog wait-before-stop (MigrRDMA) or
	// packet draining (MigrOS) must absorb.
	InflightBytes int64
	// ImageBytes is the final stop-and-copy memory image.
	ImageBytes int64
	// RDMAStateBytes is the serialized RDMA state per QP.
	RDMAStateBytes int64
	// LinkRate in bits per second.
	LinkRate int64

	// MigrOS hardware interface costs (per QP).
	ExtractPerQP time.Duration // read transport state out of the NIC
	InjectPerQP  time.Duration // write transport state into the NIC
	StopPerQP    time.Duration // QP → STOP state transition

	// MigrRDMA software costs (per QP) for the same step: metadata is in
	// host memory, so only the restored QP's doorbell/handles update.
	UpdatePerQP time.Duration

	// Shared process costs.
	FreezeThaw time.Duration
}

// DefaultParams returns testbed-calibrated defaults for n QPs.
func DefaultParams(n int) Params {
	return Params{
		QPs:            n,
		MRs:            8,
		InflightBytes:  int64(n) * 64 * 4096,
		ImageBytes:     64 << 20,
		RDMAStateBytes: 512,
		LinkRate:       100e9,
		ExtractPerQP:   40 * time.Microsecond,
		InjectPerQP:    60 * time.Microsecond,
		StopPerQP:      25 * time.Microsecond,
		UpdatePerQP:    2 * time.Microsecond,
		FreezeThaw:     3 * time.Millisecond,
	}
}

// Breakdown is the three-step stop-and-copy decomposition of §6.
type Breakdown struct {
	// Wait is step 1: reaching a safe state (wait-before-stop for
	// MigrRDMA, natural packet drain for MigrOS).
	Wait time.Duration
	// Transfer is step 2: moving and restoring all states — the service
	// blackout.
	Transfer time.Duration
	// Replay is step 3: re-issuing what applications posted but the
	// wire never carried.
	Replay time.Duration
}

// Total is the communication blackout: all three steps.
func (b Breakdown) Total() time.Duration { return b.Wait + b.Transfer + b.Replay }

// wire returns the time bytes occupy the link.
func (p Params) wire(bytes int64) time.Duration {
	return time.Duration(bytes * 8 * int64(time.Second) / p.LinkRate)
}

// MigrRDMA returns the software-based breakdown.
func (p Params) MigrRDMA() Breakdown {
	return Breakdown{
		Wait: p.wire(p.InflightBytes),
		// Metadata travels inside the memory image; the only extra work
		// is updating handles for each restored QP.
		Transfer: p.FreezeThaw + p.wire(p.ImageBytes) +
			time.Duration(p.QPs)*p.UpdatePerQP,
		Replay: p.wire(p.InflightBytes / 2),
	}
}

// MigrOS returns the hardware-assisted breakdown.
func (p Params) MigrOS() Breakdown {
	return Breakdown{
		// Step 1 costs the same: both systems drain the same backlog.
		Wait: p.wire(p.InflightBytes),
		// Step 2 additionally extracts, stops and injects per-QP NIC
		// state, and the state bytes join the transfer.
		Transfer: p.FreezeThaw + p.wire(p.ImageBytes+int64(p.QPs)*p.RDMAStateBytes) +
			time.Duration(p.QPs)*(p.ExtractPerQP+p.StopPerQP+p.InjectPerQP),
		Replay: p.wire(p.InflightBytes / 2),
	}
}
