package migros

import (
	"testing"
	"testing/quick"
)

func TestMigrOSBlackoutLonger(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		p := DefaultParams(n)
		mos, mrd := p.MigrOS(), p.MigrRDMA()
		if mos.Total() <= mrd.Total() {
			t.Errorf("QPs=%d: MigrOS %v not longer than MigrRDMA %v", n, mos.Total(), mrd.Total())
		}
		// §6: steps 1 and 3 cost the same for both systems.
		if mos.Wait != mrd.Wait || mos.Replay != mrd.Replay {
			t.Errorf("QPs=%d: wait/replay should match: %+v vs %+v", n, mos, mrd)
		}
	}
}

func TestGapGrowsWithQPs(t *testing.T) {
	gap := func(n int) int64 {
		p := DefaultParams(n)
		return int64(p.MigrOS().Total() - p.MigrRDMA().Total())
	}
	if !(gap(4096) > gap(256) && gap(256) > gap(16)) {
		t.Fatalf("gap not monotone: %d %d %d", gap(16), gap(256), gap(4096))
	}
}

func TestPropMigrOSNeverFaster(t *testing.T) {
	f := func(qps uint16, inflightKB uint16, imageMB uint8) bool {
		p := DefaultParams(int(qps%8192) + 1)
		p.InflightBytes = int64(inflightKB) << 10
		p.ImageBytes = int64(imageMB) << 20
		return p.MigrOS().Total() >= p.MigrRDMA().Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
