package perftest

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/rnic"
	"migrrdma/internal/task"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MsgSize != 4096 || o.QueueDepth != 64 || o.NumQPs != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestSlotLayoutCheckOrder(t *testing.T) {
	o := Options{MsgSize: 1024, QueueDepth: 4, NumQPs: 2, CheckOrder: true}.withDefaults()
	if o.bufSize() != uint64(2*4*1024) {
		t.Fatalf("bufSize = %d", o.bufSize())
	}
	seen := map[mem.Addr]bool{}
	for qp := 0; qp < 2; qp++ {
		for seq := uint64(0); seq < 4; seq++ {
			a := o.slot(qp, seq)
			if seen[a] {
				t.Fatalf("slot collision at %#x", uint64(a))
			}
			seen[a] = true
			if a < bufferArena || a+1024 > bufferArena+mem.Addr(o.bufSize()) {
				t.Fatalf("slot %#x outside buffer", uint64(a))
			}
			// Slots wrap per QP: seq and seq+depth share an address.
			if o.slot(qp, seq+4) != a {
				t.Fatal("slot does not wrap at queue depth")
			}
		}
	}
}

func TestSlotLayoutBandwidthMode(t *testing.T) {
	o := Options{MsgSize: 1 << 20, QueueDepth: 64}.withDefaults()
	// The shared buffer is capped; slots must stay in range regardless.
	for seq := uint64(0); seq < 1000; seq++ {
		a := o.slot(0, seq)
		if a < bufferArena || a+mem.Addr(o.MsgSize) > bufferArena+mem.Addr(o.bufSize()) {
			t.Fatalf("seq %d slot %#x outside capped buffer", seq, uint64(a))
		}
	}
}

// newPairRig builds a testbed and runs a client/server pair to
// completion, returning both sides.
func runPair(t *testing.T, opts Options) (*Client, *Server) {
	t.Helper()
	cl := cluster.New(cluster.Config{Seed: 9}, "a", "b")
	da, db := core.NewDaemon(cl.Host("a")), core.NewDaemon(cl.Host("b"))
	srv := NewServer(cl.Sched, "srv", opts)
	sp := task.New(cl.Sched, "server")
	cl.Sched.Go("server", func() { srv.Run(sp, db) })
	cli := NewClient(cl.Sched, "cli", opts, Target{Node: "b", Name: "srv"})
	cp := task.New(cl.Sched, "client")
	cl.Sched.Go("client-start", func() {
		srv.WaitReady()
		cl.Sched.Go("client", func() { cli.Run(cp, da) })
		cli.Wait()
		cl.Sched.Sleep(2 * time.Millisecond)
		srv.Stop()
	})
	cl.Sched.RunFor(time.Minute)
	return cli, srv
}

func TestReadVerbPair(t *testing.T) {
	cli, _ := runPair(t, Options{Verb: rnic.OpRead, MsgSize: 8192, QueueDepth: 4, NumQPs: 2, Messages: 50})
	if cli.Stats.Completed != 100 {
		t.Fatalf("completed %d, want 100", cli.Stats.Completed)
	}
	if len(cli.Stats.Errors) > 0 {
		t.Fatalf("errors: %v", cli.Stats.Errors)
	}
}

func TestAtomicVerbPair(t *testing.T) {
	cli, _ := runPair(t, Options{Verb: rnic.OpFetchAdd, MsgSize: 8, QueueDepth: 1, NumQPs: 1, Messages: 20})
	if cli.Stats.Completed != 20 {
		t.Fatalf("completed %d, want 20", cli.Stats.Completed)
	}
	if len(cli.Stats.Errors) > 0 {
		t.Fatalf("errors: %v", cli.Stats.Errors)
	}
}

func TestEventModeServer(t *testing.T) {
	opts := Options{Verb: rnic.OpSend, MsgSize: 512, QueueDepth: 8, NumQPs: 1, Messages: 40, UseEvents: true}
	cli, srv := runPair(t, opts)
	if cli.Stats.Completed != 40 {
		t.Fatalf("client completed %d", cli.Stats.Completed)
	}
	if srv.Stats.Completed != 40 {
		t.Fatalf("server received %d (interrupt mode)", srv.Stats.Completed)
	}
	if len(srv.Stats.Errors) > 0 {
		t.Fatalf("server errors: %v", srv.Stats.Errors)
	}
}

func TestPostGapThrottles(t *testing.T) {
	fast, _ := runPair(t, Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 8, Messages: 100})
	_ = fast
	cl := cluster.New(cluster.Config{Seed: 9}, "a", "b")
	da, db := core.NewDaemon(cl.Host("a")), core.NewDaemon(cl.Host("b"))
	opts := Options{Verb: rnic.OpWrite, MsgSize: 4096, QueueDepth: 8, Messages: 100, PostGap: 100 * time.Microsecond}
	srv := NewServer(cl.Sched, "srv", opts)
	cl.Sched.Go("server", func() { srv.Run(task.New(cl.Sched, "s"), db) })
	cli := NewClient(cl.Sched, "cli", opts, Target{Node: "b", Name: "srv"})
	var elapsed time.Duration
	cl.Sched.Go("driver", func() {
		srv.WaitReady()
		start := cl.Sched.Now()
		cl.Sched.Go("client", func() { cli.Run(task.New(cl.Sched, "c"), da) })
		cli.Wait()
		elapsed = cl.Sched.Now() - start
		srv.Stop()
	})
	cl.Sched.RunFor(time.Minute)
	// 100 posts with a 100 µs gap take ≥ 10 ms.
	if elapsed < 10*time.Millisecond {
		t.Fatalf("throttled run finished in %v", elapsed)
	}
}

func TestLatencyMode(t *testing.T) {
	cli, _ := runPair(t, Options{Verb: rnic.OpWrite, MsgSize: 64, NumQPs: 1, Messages: 200, LatencyMode: true})
	if cli.Stats.Completed != 200 {
		t.Fatalf("completed %d", cli.Stats.Completed)
	}
	if len(cli.Stats.LatSamples) != 200 {
		t.Fatalf("collected %d latency samples", len(cli.Stats.LatSamples))
	}
	avg, p99 := cli.Stats.LatAvg(), cli.Stats.LatPercentile(99)
	// One 64 B WRITE round trip: ~2 serializations + 4 propagation hops
	// plus engine handling — single-digit microseconds on this fabric.
	if avg < 2*time.Microsecond || avg > 50*time.Microsecond {
		t.Fatalf("avg latency %v implausible", avg)
	}
	if p99 < cli.Stats.LatPercentile(50) {
		t.Fatalf("p99 %v below p50 %v", p99, cli.Stats.LatPercentile(50))
	}
	t.Logf("write_lat 64B: avg=%v p50=%v p99=%v", avg, cli.Stats.LatPercentile(50), p99)
}

func TestLatencyAcrossMigrationSpike(t *testing.T) {
	// Latency samples straddling a live migration: most ops stay fast;
	// the ones overlapping the blackout spike to ~the blackout length.
	// (Driven from the runc package in practice; here we only check the
	// sampling plumbing tolerates long gaps.)
	cli, _ := runPair(t, Options{Verb: rnic.OpRead, MsgSize: 1024, NumQPs: 1, Messages: 100, LatencyMode: true})
	if cli.Stats.LatPercentile(100) == 0 {
		t.Fatal("no max latency recorded")
	}
}
