// Package perftest reimplements the workload generator of the paper's
// evaluation (linux-rdma/perftest, §5.1): bandwidth-style tests over
// SEND/RECV, WRITE, READ and ATOMIC verbs with a configurable message
// size, queue depth and QP count, plus the paper's three extensions —
// WR-ID sequence checking for the §5.3 correctness study, a one-to-many
// communication pattern for Fig. 4(c), and per-operation cost sampling
// for Table 4.
//
// Both ends run on the MigrRDMA guest library (internal/core), so a
// perftest process is migratable without modification, exactly as the
// paper migrates unmodified perftest binaries.
package perftest

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/mem"
	"migrrdma/internal/oob"
	"migrrdma/internal/rnic"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
)

// Options configures a test.
type Options struct {
	Verb       rnic.Opcode // OpSend, OpWrite, OpRead, OpFetchAdd
	MsgSize    int
	QueueDepth int
	NumQPs     int
	// Messages per QP; 0 runs until Stop.
	Messages int
	// CheckOrder verifies WR-ID sequence and payload stamps (§5.3).
	CheckOrder bool
	// UseEvents consumes completions through a completion channel
	// (interrupt mode) instead of polling.
	UseEvents bool
	// PostGap throttles the client: a pause between posts. Zero means
	// best-effort line rate (the paper's default). Large-N control-path
	// experiments use it to keep simulated data volume tractable.
	PostGap time.Duration
	// LatencyMode runs one operation at a time (queue depth 1) and
	// records per-op post→completion latency samples (ib_send_lat /
	// ib_write_lat behaviour).
	LatencyMode bool
	// RecvDepth sizes the server's pre-posted receive ring for two-sided
	// verbs; zero means QueueDepth (the historical behaviour). Real RDMA
	// services over-provision the RQ so a stall in the polling loop does
	// not turn into RNR flow control; the migration experiments use a
	// deep ring so the thaw window is absorbed by posted receives.
	RecvDepth int
}

func (o Options) withDefaults() Options {
	if o.LatencyMode {
		o.QueueDepth = 1
	}
	if o.MsgSize == 0 {
		o.MsgSize = 4096
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.RecvDepth == 0 {
		o.RecvDepth = o.QueueDepth
	}
	if o.NumQPs == 0 {
		o.NumQPs = 1
	}
	return o
}

// bufferArena is where perftest maps its data buffer.
const bufferArena = mem.Addr(0x10_0000_0000)

// ringDepth is the larger of the send and receive rings: the buffer
// must fit whichever side slots more WRs.
func (o Options) ringDepth() int {
	if o.RecvDepth > o.QueueDepth {
		return o.RecvDepth
	}
	return o.QueueDepth
}

// bufSize returns the shared data buffer size: one slot per outstanding
// WR per QP in CheckOrder mode, one queue-depth window otherwise.
func (o Options) bufSize() uint64 {
	if o.CheckOrder {
		return uint64(o.NumQPs * o.ringDepth() * o.MsgSize)
	}
	n := uint64(o.ringDepth() * o.MsgSize)
	if n > 8<<20 {
		n = 8 << 20
	}
	if n < uint64(o.MsgSize) {
		n = uint64(o.MsgSize)
	}
	return n
}

// slot returns the buffer offset for a message.
func (o Options) slot(qpIdx int, seq uint64) mem.Addr {
	if o.CheckOrder {
		return bufferArena + mem.Addr((uint64(qpIdx*o.QueueDepth)+(seq%uint64(o.QueueDepth)))*uint64(o.MsgSize))
	}
	return bufferArena + mem.Addr((seq%uint64(o.QueueDepth))*uint64(o.MsgSize)%(o.bufSize()-uint64(o.MsgSize)+1)&^63)
}

// Stats aggregates a test side's results.
type Stats struct {
	Completed int64
	Bytes     int64
	Errors    []string

	// Latency samples (client side, LatencyMode only): one duration per
	// completed operation, post→completion.
	LatSamples []time.Duration
}

// LatPercentile returns the p-th percentile operation latency (0–100).
func (s *Stats) LatPercentile(p float64) time.Duration {
	if len(s.LatSamples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.LatSamples))
	copy(sorted, s.LatSamples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// LatAvg returns the mean operation latency.
func (s *Stats) LatAvg() time.Duration {
	if len(s.LatSamples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.LatSamples {
		sum += d
	}
	return sum / time.Duration(len(s.LatSamples))
}

func (s *Stats) errf(format string, args ...any) {
	if len(s.Errors) < 32 {
		s.Errors = append(s.Errors, fmt.Sprintf(format, args...))
	}
}

// connectReq is the out-of-band connection exchange (applications
// conventionally exchange QPNs, rkeys and buffer addresses over
// sockets; the RDMA library is unaware of it, §3.3).
type connectReq struct {
	Node    string
	VQPN    uint32
	Verb    rnic.Opcode
	MsgSize int
	Depth   int
}

type connectResp struct {
	VQPN    uint32
	RKey    uint32
	BufAddr uint64
	Err     string
}

func encGob(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func decGob(data []byte, v any) {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		panic(err)
	}
}

// --- Server -------------------------------------------------------------------

// Server is the passive/receiving side: it accepts connections on an
// out-of-band endpoint, pre-posts receives for two-sided verbs, and
// (when polling) consumes completions forever.
type Server struct {
	Name string
	Opts Options

	Sess  *core.Session
	Stats Stats

	ready   *sim.Cond
	isReady bool
	stopped bool

	pd  *core.PD
	cq  *core.CQ
	ch  *core.CompChannel
	mr  *core.MR
	qps []*core.QP
	// seq tracks expected WR-ID per accepted QP (CheckOrder).
	seq map[uint32]uint64
	// srvIdx numbers accepted QPs for recv buffer slotting.
	srvIdx map[uint32]int
}

// NewServer creates a server descriptor; Run starts it inside a process.
func NewServer(sched *sim.Scheduler, name string, opts Options) *Server {
	return &Server{
		Name: name, Opts: opts.withDefaults(),
		seq: make(map[uint32]uint64), srvIdx: make(map[uint32]int),
		ready: sim.NewCond(sched, "pt-server-ready:"+name),
	}
}

// Run is the server process main. It sets up resources, registers the
// connection handler and serves completions until Stop.
func (s *Server) Run(p *task.Process, d *core.Daemon) {
	o := s.Opts
	sess := core.NewSession(p, d)
	s.Sess = sess
	if _, err := p.AS.Map(bufferArena, o.bufSize(), "pt-buffer"); err != nil {
		panic(err)
	}
	s.pd = sess.AllocPD()
	if o.UseEvents {
		s.ch = sess.CreateCompChannel()
	}
	s.cq = sess.CreateCQ(64+o.NumQPs*(o.QueueDepth+o.RecvDepth), s.ch)
	mr, err := sess.RegMR(s.pd, bufferArena, o.bufSize(),
		rnic.AccessLocalWrite|rnic.AccessRemoteRead|rnic.AccessRemoteWrite|rnic.AccessRemoteAtomic)
	if err != nil {
		panic(err)
	}
	s.mr = mr
	ep := d.Host().Hub.Endpoint("pt:" + s.Name)
	ep.Handle("connect", s.onConnect)
	s.isReady = true
	s.ready.Broadcast()
	s.serve(p)
}

// WaitReady blocks until the server accepts connections.
func (s *Server) WaitReady() {
	for !s.isReady {
		s.ready.Wait()
	}
}

// onConnect accepts one client QP: create a matching QP, connect it,
// and return our virtual QPN, rkey and buffer address.
func (s *Server) onConnect(m oob.Msg) []byte {
	var req connectReq
	decGob(m.Body, &req)
	o := s.Opts
	qp := s.Sess.CreateQP(s.pd, core.QPConfig{
		Type: rnic.RC, SendCQ: s.cq, RecvCQ: s.cq,
		Caps: rnic.QPCaps{MaxSend: o.QueueDepth * 2, MaxRecv: o.QueueDepth + o.RecvDepth},
	})
	for _, a := range []rnic.ModifyAttr{
		{State: rnic.StateInit},
		{State: rnic.StateRTR, RemoteNode: req.Node, RemoteQPN: req.VQPN},
		{State: rnic.StateRTS},
	} {
		if err := qp.Modify(a); err != nil {
			return encGob(connectResp{Err: err.Error()})
		}
	}
	idx := len(s.qps)
	s.qps = append(s.qps, qp)
	s.srvIdx[qp.VQPN()] = idx
	s.seq[qp.VQPN()] = 0
	// Pre-post receives for two-sided traffic.
	if req.Verb == rnic.OpSend || req.Verb == rnic.OpSendImm {
		for i := 0; i < o.RecvDepth; i++ {
			wr := rnic.RecvWR{WRID: uint64(i), SGEs: []rnic.SGE{{
				Addr: s.recvSlot(idx, uint64(i)), Len: uint32(req.MsgSize), LKey: s.mr.LKey(),
			}}}
			if err := qp.PostRecv(wr); err != nil {
				return encGob(connectResp{Err: err.Error()})
			}
		}
	}
	return encGob(connectResp{VQPN: qp.VQPN(), RKey: s.mr.RKey(), BufAddr: uint64(bufferArena)})
}

// recvSlot places receive buffers; in CheckOrder mode each QP gets its
// own slot window so payloads can be verified. The ring is RecvDepth
// deep (== QueueDepth unless over-provisioned), and the client's send
// slotting is untouched — each side addresses its own process memory.
func (s *Server) recvSlot(qpIdx int, seq uint64) mem.Addr {
	o := s.Opts
	idx := qpIdx % o.NumQPs
	rd := uint64(o.RecvDepth)
	if o.CheckOrder {
		return bufferArena + mem.Addr((uint64(idx)*rd+(seq%rd))*uint64(o.MsgSize))
	}
	return bufferArena + mem.Addr((seq%rd)*uint64(o.MsgSize)%(o.bufSize()-uint64(o.MsgSize)+1)&^63)
}

// serve is the completion loop: consume receive completions, verify
// order/content, repost.
func (s *Server) serve(p *task.Process) {
	o := s.Opts
	for !s.stopped {
		p.Gate()
		if o.UseEvents {
			s.cq.ReqNotify()
			if s.cq.Len() == 0 {
				if got := s.ch.Get(); got == nil {
					continue
				}
			}
		} else if s.cq.Len() == 0 {
			s.cq.WaitNonEmpty()
			continue
		}
		for _, e := range s.cq.Poll(64) {
			s.consume(e)
		}
	}
}

// consume handles one completion on the server.
func (s *Server) consume(e rnic.CQE) {
	if e.Status != rnic.WCSuccess {
		s.Stats.errf("server CQE error: %v (wrid %d)", e.Status, e.WRID)
		return
	}
	if e.Opcode != rnic.OpRecv {
		return
	}
	s.Stats.Completed++
	s.Stats.Bytes += int64(e.ByteLen)
	idx, ok := s.srvIdx[e.QPN]
	if !ok {
		s.Stats.errf("completion for unknown QPN %#x", e.QPN)
		return
	}
	want := s.seq[e.QPN]
	if s.Opts.CheckOrder {
		if e.WRID != want%uint64(s.Opts.RecvDepth) {
			s.Stats.errf("QP %#x: recv WRID %d, want %d (lost/dup/reorder)", e.QPN, e.WRID, want%uint64(s.Opts.RecvDepth))
		}
		var stamp [8]byte
		if err := s.Sess.Proc.AS.Read(s.recvSlot(idx, want), stamp[:]); err == nil {
			got := binary.LittleEndian.Uint64(stamp[:])
			if got != want {
				s.Stats.errf("QP %#x: payload stamp %d, want %d (content corruption)", e.QPN, got, want)
			}
		}
	}
	s.seq[e.QPN] = want + 1
	// Repost the consumed receive.
	qp := s.qps[idx]
	wr := rnic.RecvWR{WRID: e.WRID, SGEs: []rnic.SGE{{
		Addr: s.recvSlot(idx, want), Len: uint32(s.Opts.MsgSize), LKey: s.mr.LKey(),
	}}}
	if err := qp.PostRecv(wr); err != nil {
		s.Stats.errf("repost recv: %v", err)
	}
}

// Stop ends the serve loop.
func (s *Server) Stop() { s.stopped = true }

// --- Client -------------------------------------------------------------------

// Target names a server endpoint.
type Target struct {
	Node string
	Name string // server name (endpoint "pt:<name>")
}

// Client is the active side: it connects NumQPs queue pairs across the
// targets (one-to-many when multiple targets are given) and pumps
// best-effort traffic at the configured queue depth.
type Client struct {
	Name    string
	Opts    Options
	Targets []Target

	Sess  *core.Session
	Stats Stats

	doneCond *sim.Cond
	done     bool
	stopped  bool
	readyC   *sim.Cond
	isReady  bool

	pd  *core.PD
	cq  *core.CQ
	mr  *core.MR
	qps []*clientQP
}

type clientQP struct {
	qp      *core.QP
	idx     int
	rkey    uint32
	raddr   mem.Addr
	posted  uint64
	done    uint64
	nextSeq uint64 // next expected completion WR-ID (CheckOrder)
	// lastPost is the post time of the in-flight op (LatencyMode).
	lastPost time.Duration
}

// NewClient creates a client descriptor; Run starts it in a process.
func NewClient(sched *sim.Scheduler, name string, opts Options, targets ...Target) *Client {
	return &Client{
		Name: name, Opts: opts.withDefaults(), Targets: targets,
		doneCond: sim.NewCond(sched, "pt-client-done:"+name),
		readyC:   sim.NewCond(sched, "pt-client-ready:"+name),
	}
}

// Run is the client process main: set up, connect, pump, finish.
func (c *Client) Run(p *task.Process, d *core.Daemon) {
	o := c.Opts
	sess := core.NewSession(p, d)
	c.Sess = sess
	if _, err := p.AS.Map(bufferArena, o.bufSize(), "pt-buffer"); err != nil {
		panic(err)
	}
	c.pd = sess.AllocPD()
	c.cq = sess.CreateCQ(64+o.NumQPs*o.QueueDepth*2, nil)
	mr, err := sess.RegMR(c.pd, bufferArena, o.bufSize(),
		rnic.AccessLocalWrite|rnic.AccessRemoteRead|rnic.AccessRemoteWrite|rnic.AccessRemoteAtomic)
	if err != nil {
		panic(err)
	}
	c.mr = mr
	ep := d.Host().Hub.Endpoint("pt-cli:" + c.Name)
	for i := 0; i < o.NumQPs; i++ {
		tgt := c.Targets[i%len(c.Targets)]
		qp := sess.CreateQP(c.pd, core.QPConfig{
			Type: rnic.RC, SendCQ: c.cq, RecvCQ: c.cq,
			Caps: rnic.QPCaps{MaxSend: o.QueueDepth * 2, MaxRecv: 8},
		})
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateInit}); err != nil {
			panic(err)
		}
		resp := ep.Call(tgt.Node, "pt:"+tgt.Name, "connect", encGob(connectReq{
			Node: d.Node(), VQPN: qp.VQPN(), Verb: o.Verb, MsgSize: o.MsgSize, Depth: o.QueueDepth,
		}))
		var cr connectResp
		decGob(resp, &cr)
		if cr.Err != "" {
			panic("perftest connect: " + cr.Err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTR, RemoteNode: tgt.Node, RemoteQPN: cr.VQPN}); err != nil {
			panic(err)
		}
		if err := qp.Modify(rnic.ModifyAttr{State: rnic.StateRTS}); err != nil {
			panic(err)
		}
		c.qps = append(c.qps, &clientQP{qp: qp, idx: i, rkey: cr.RKey, raddr: mem.Addr(cr.BufAddr)})
	}
	c.isReady = true
	c.readyC.Broadcast()
	c.pump(p)
	c.done = true
	c.doneCond.Broadcast()
}

// WaitReady blocks until all QPs are connected.
func (c *Client) WaitReady() {
	for !c.isReady {
		c.readyC.Wait()
	}
}

// Wait blocks until the client finished (Messages reached or Stop).
func (c *Client) Wait() {
	for !c.done {
		c.doneCond.Wait()
	}
}

// Stop ends the pump loop after in-flight work completes.
func (c *Client) Stop() { c.stopped = true }

// pump keeps QueueDepth WRs outstanding on every QP, best-effort, until
// each QP has completed Messages WRs (or Stop).
func (c *Client) pump(p *task.Process) {
	o := c.Opts
	for {
		p.Gate()
		active := false
		for _, q := range c.qps {
			if !c.stopped && (o.Messages == 0 || q.posted < uint64(o.Messages)) {
				active = true
				for q.posted-q.done < uint64(o.QueueDepth) && (o.Messages == 0 || q.posted < uint64(o.Messages)) {
					if c.stopped {
						break
					}
					// In latency mode the pacing gap precedes the post so
					// the post→completion measurement stays clean.
					if o.PostGap > 0 && o.LatencyMode {
						p.Scheduler().Sleep(o.PostGap)
					}
					if err := c.post(q); err != nil {
						c.Stats.errf("post: %v", err)
						return
					}
					if o.PostGap > 0 && !o.LatencyMode {
						p.Scheduler().Sleep(o.PostGap)
					}
				}
			}
			if q.done < q.posted {
				active = true
			}
		}
		if !active {
			return
		}
		c.cq.WaitNonEmpty()
		for _, e := range c.cq.Poll(64) {
			c.complete(e)
		}
	}
}

// post issues one WR on a QP, stamping the payload in CheckOrder mode.
func (c *Client) post(q *clientQP) error {
	o := c.Opts
	seq := q.posted
	addr := o.slot(q.idx, seq)
	if o.CheckOrder {
		var stamp [8]byte
		binary.LittleEndian.PutUint64(stamp[:], seq)
		if err := c.Sess.Proc.AS.Write(addr, stamp[:]); err != nil {
			return err
		}
	}
	wr := rnic.SendWR{
		WRID:     seq % uint64(o.QueueDepth),
		Opcode:   o.Verb,
		Signaled: true,
		SGEs:     []rnic.SGE{{Addr: addr, Len: uint32(o.MsgSize), LKey: c.mr.LKey()}},
	}
	if o.CheckOrder {
		wr.WRID = seq
	}
	switch o.Verb {
	case rnic.OpWrite, rnic.OpWriteImm, rnic.OpRead:
		wr.RemoteAddr = q.raddr + (addr - bufferArena)
		wr.RKey = q.rkey
	case rnic.OpFetchAdd, rnic.OpCompSwap:
		wr.SGEs[0].Len = 8
		wr.RemoteAddr = q.raddr
		wr.RKey = q.rkey
		wr.CompareAdd = 1
	}
	if o.LatencyMode {
		q.lastPost = c.Sess.Sched().Now()
	}
	if err := q.qp.PostSend(wr); err != nil {
		return err
	}
	q.posted++
	return nil
}

// complete handles one client-side completion.
func (c *Client) complete(e rnic.CQE) {
	if e.Status != rnic.WCSuccess {
		c.Stats.errf("client CQE error: %v (wrid %d qpn %#x)", e.Status, e.WRID, e.QPN)
		return
	}
	for _, q := range c.qps {
		if q.qp.VQPN() != e.QPN {
			continue
		}
		if c.Opts.CheckOrder && e.WRID != q.nextSeq {
			c.Stats.errf("QP %#x: send completion WRID %d, want %d", e.QPN, e.WRID, q.nextSeq)
		}
		q.nextSeq++
		q.done++
		c.Stats.Completed++
		c.Stats.Bytes += int64(c.Opts.MsgSize)
		if c.Opts.LatencyMode {
			c.Stats.LatSamples = append(c.Stats.LatSamples, c.Sess.Sched().Now()-q.lastPost)
		}
		return
	}
	c.Stats.errf("completion for unknown QPN %#x", e.QPN)
}

// QPStates summarizes per-QP progress for diagnostics.
func (c *Client) QPStates() []string {
	var out []string
	for _, q := range c.qps {
		out = append(out, fmt.Sprintf("vqpn=%#x state=%v posted=%d done=%d outstanding=%d suspended=%v",
			q.qp.VQPN(), q.qp.State(), q.posted, q.done, q.qp.Outstanding(), q.qp.Suspended()))
	}
	return out
}
