package experiments

import (
	"fmt"
	"testing"

	"migrrdma/internal/core"
)

// Table4Row is one verb of the Table 4 virtualization-overhead study.
//
// The paper samples CPU cycles per verb invocation on the testbed and
// finds the native data path costs 92–143 cycles while MigrRDMA adds
// 4.6–8.3 cycles (3–9%). Our library is Go, not C, so a direct
// cycle-count comparison would measure Go codegen, not the design. The
// honest equivalent is Go-vs-Go: measure the native Go post path (WQE
// copy + ring write + CQE read — work both libraries perform) and the
// extra instructions MigrRDMA interposes (the table translations), and
// report the relative overhead. For reference the added cost is also
// converted to cycles against the paper's native baselines.
type Table4Row struct {
	Op string
	// GoBaseNS is the measured Go-native per-op data-path cost.
	GoBaseNS float64
	// AddedNS is the measured cost of the interposed translations.
	AddedNS float64
	// OverheadPct is AddedNS / GoBaseNS — the Table 4 "extra overhead
	// in the data path".
	OverheadPct float64

	// PaperBaseCycles and AddedCycles give the secondary, cross-language
	// comparison against the paper's native cycle counts.
	PaperBaseCycles  float64
	AddedCycles      float64
	PaperOverheadPct float64
}

// String renders a table row.
func (r Table4Row) String() string {
	return fmt.Sprintf("%-6s go-base=%6.1f ns  added=%5.2f ns  overhead=%5.1f%%   (vs paper base %5.1f cyc: +%4.1f cyc = %4.1f%%)",
		r.Op, r.GoBaseNS, r.AddedNS, r.OverheadPct,
		r.PaperBaseCycles, r.AddedCycles, r.PaperOverheadPct)
}

// clampPos floors benchmark noise at a twentieth of a nanosecond.
func clampPos(v float64) float64 {
	if v < 0.05 {
		return 0.05
	}
	return v
}

// table4CPUGHz converts ns→cycles for the secondary comparison (the
// testbed's E5-2698 v3 runs at 2.3–3 GHz; the paper itself assumes
// "2–3 GHz typical cloud servers").
const table4CPUGHz = 2.5

// paperBaselines are Table 4's "w/o virtualization" cycle counts.
var paperBaselines = map[string]float64{
	"send":  92.4,
	"recv":  94.9,
	"write": 104.1,
	"read":  143.3,
}

// Table4 benchmarks the guest library's data-path interposition and
// reports per-verb overhead.
func Table4() []Table4Row {
	probe := core.NewTranslationProbe()
	meas := func(f func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// Go-native baseline work shared by both libraries: building the
	// WQE (the WR copy), writing it into the queue ring, and reading
	// the CQE back.
	sendCopy := meas(probe.CopySendBaseline)
	recvCopy := meas(probe.CopyRecvBaseline)
	cqeCopy := meas(probe.CopyCQEBaseline)
	wqe := meas(probe.WQEWriteBaseline)
	goBase := map[string]float64{
		"send":  sendCopy + wqe + cqeCopy,
		"recv":  recvCopy + wqe + cqeCopy,
		"write": sendCopy + wqe + cqeCopy,
		"read":  sendCopy + wqe + cqeCopy,
	}
	// MigrRDMA's additions: the allocation-free translation pass on the
	// request side (a plain library hands the WR to the device
	// untouched) plus the completion-path QPN translation delta.
	// Each Translate* probe copies the WR once (the post path's own
	// parameter copy, which a plain library performs too) and then
	// translates in place; the WR-copy baselines subtract that shared
	// work, leaving only MigrRDMA's added instructions.
	cqe := clampPos(meas(probe.TranslateCQE) - cqeCopy)
	added := map[string]float64{
		"send":  clampPos(meas(probe.TranslateSend)-sendCopy) + cqe,
		"recv":  clampPos(meas(probe.TranslateRecv)-recvCopy) + cqe,
		"write": clampPos(meas(probe.TranslateWrite)-sendCopy) + cqe,
		"read":  clampPos(meas(probe.TranslateRead)-sendCopy) + cqe,
	}
	var rows []Table4Row
	for _, op := range []string{"send", "recv", "write", "read"} {
		ns := added[op]
		cyc := ns * table4CPUGHz
		rows = append(rows, Table4Row{
			Op:               op,
			GoBaseNS:         goBase[op],
			AddedNS:          ns,
			OverheadPct:      100 * ns / goBase[op],
			PaperBaseCycles:  paperBaselines[op],
			AddedCycles:      cyc,
			PaperOverheadPct: 100 * cyc / paperBaselines[op],
		})
	}
	return rows
}
