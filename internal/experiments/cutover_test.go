package experiments

import (
	"testing"

	"migrrdma/internal/runc"
)

// TestCutoverComparison pins the claim the plug-and-forward cutover
// exists to make: against the same deterministic workload and migration
// timeline, at every measured message size it completes the cutover
// with zero retransmissions, fewer wire bytes, and a lower p99 than
// go-back-N. The workload is sized so the blackout-straddling operation
// lands inside the p99 (one stalled op per QP, 50 samples per QP).
func TestCutoverComparison(t *testing.T) {
	rows, err := CutoverComparison([]int{2048, 8192}, []int{2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%2 != 0 {
		t.Fatalf("odd row count %d, want go-back-N/plug-forward pairs", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		gbn, plug := rows[i], rows[i+1]
		t.Log(gbn)
		t.Log(plug)
		if gbn.Mode != runc.CutoverGoBackN || plug.Mode != runc.CutoverPlugForward {
			t.Fatalf("row order: got %v then %v", gbn.Mode, plug.Mode)
		}
		if gbn.MsgSize != plug.MsgSize || gbn.QPs != plug.QPs || gbn.Samples != plug.Samples {
			t.Fatalf("rows not comparable: %+v vs %+v", gbn, plug)
		}
		// Go-back-N pays for the cutover in retransmissions; the plug
		// absorbs the same frames instead.
		if gbn.Retransmitted == 0 {
			t.Errorf("msg=%d: go-back-N cutover produced no retransmissions; the comparison is vacuous", gbn.MsgSize)
		}
		if plug.Retransmitted != 0 {
			t.Errorf("msg=%d: plug-forward retransmitted %d packets, want 0", plug.MsgSize, plug.Retransmitted)
		}
		if plug.PlugFlushed == 0 {
			t.Errorf("msg=%d: plug-forward flushed nothing; the plug never saw the blackout traffic", plug.MsgSize)
		}
		// The retransmissions are wire bytes go-back-N burns and
		// plug-forward does not.
		if plug.WireBytes >= gbn.WireBytes {
			t.Errorf("msg=%d: plug-forward wire bytes %d >= go-back-N %d", plug.MsgSize, plug.WireBytes, gbn.WireBytes)
		}
		// The latency tail: RNR/RTO quantization delays go-back-N's
		// blackout-straddling ops past plug-forward's flush.
		if plug.P99 >= gbn.P99 {
			t.Errorf("msg=%d: plug-forward p99 %v >= go-back-N p99 %v", plug.MsgSize, plug.P99, gbn.P99)
		}
		// Steady-state is untouched: both modes serve the same p50.
		if plug.P50 != gbn.P50 {
			t.Errorf("msg=%d: p50 differs across modes: %v vs %v", plug.MsgSize, plug.P50, gbn.P50)
		}
	}
}
