package experiments

import (
	"testing"

	"migrrdma/internal/runc"
)

// TestTenancyScaling runs the sweep at small session counts (the
// thousand-session points live in cmd/migrbench and BENCH_8) and
// checks the shape the experiment exists to show: every session's
// burst survives the migration exactly-once in both cutover modes,
// and the RDMA replay cost does not grow with the tenant count —
// sessions are process state, not verbs resources.
func TestTenancyScaling(t *testing.T) {
	rows, err := TenancySweep([]int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	var replaySmall, replayBig int64
	for _, r := range rows {
		if r.Acked != int64(r.Sessions*2*tenancyBurst) {
			t.Errorf("%s sessions=%d: %d acked, want %d", r.Mode, r.Sessions, r.Acked, r.Sessions*2*tenancyBurst)
		}
		if r.Blackout <= 0 || r.Total <= 0 {
			t.Errorf("%s sessions=%d: empty migration timings: %s", r.Mode, r.Sessions, r)
		}
		if r.Mode == runc.CutoverGoBackN {
			if r.Sessions == 32 {
				replaySmall = int64(r.ReplayRDMA)
			} else {
				replayBig = int64(r.ReplayRDMA)
			}
		}
	}
	// 4× the tenants must not mean 2× the replay: the lanes, not the
	// sessions, are what restore rebuilds.
	if replayBig > 2*replaySmall+int64(replaySmall/2) && replaySmall > 0 {
		t.Errorf("replay grew with tenant count: %d → %d", replaySmall, replayBig)
	}
}

// TestTenancyDeterminism pins that a tenancy run is a pure function of
// its seed.
func TestTenancyDeterminism(t *testing.T) {
	a, err := RunTenancySeeded(runc.CutoverGoBackN, 64, TenancySeedFor(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenancySeeded(runc.CutoverGoBackN, 64, TenancySeedFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("re-run diverged:\n  %s\n  %s", a, b)
	}
}
