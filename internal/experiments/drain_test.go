package experiments

import "testing"

// TestDrainExpPlacementContrast runs one point of each drain variant
// and checks the shape the experiment exists to show: the half-racks
// drain leaves same-rack headroom so the prefer-same-rack policy keeps
// every migration off the spine, while evacuating whole racks forces
// every placement across it — and the forced crossings bill more
// uplink traffic for the same drain.
func TestDrainExpPlacementContrast(t *testing.T) {
	half, err := RunDrainExp(DrainHalfRacks, 4)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := RunDrainExp(DrainWholeRacks, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []DrainPoint{half, whole} {
		if p.Migrations != DrainExpEvacuated {
			t.Errorf("%s: %d migrations, want %d", p.Variant, p.Migrations, DrainExpEvacuated)
		}
		if p.P50 <= 0 || p.Elapsed <= 0 {
			t.Errorf("%s: empty timings: %s", p.Variant, p)
		}
		if p.SLOMisses != 0 {
			t.Errorf("%s: %d SLO misses at a %v SLO", p.Variant, p.SLOMisses, drainExpSLO)
		}
	}
	if half.SameRackDst != DrainExpEvacuated {
		t.Errorf("half-racks placed %d/%d same-rack, want all", half.SameRackDst, DrainExpEvacuated)
	}
	if whole.SameRackDst != 0 {
		t.Errorf("whole-racks placed %d migrations same-rack, want none", whole.SameRackDst)
	}
	if whole.SpineBytes <= half.SpineBytes {
		t.Errorf("cross-rack placement did not cost spine traffic: half=%d whole=%d",
			half.SpineBytes, whole.SpineBytes)
	}
}

// TestDrainExpParallelismShrinksWindow pins the MaxParallel knob: 8×
// the parallelism must shrink the drain window several-fold without
// moving the per-migration blackout materially.
func TestDrainExpParallelismShrinksWindow(t *testing.T) {
	p1, err := RunDrainExp(DrainHalfRacks, 1)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := RunDrainExp(DrainHalfRacks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p8.Elapsed*4 > p1.Elapsed {
		t.Errorf("par=8 window %v not ≥4× shorter than par=1's %v", p8.Elapsed, p1.Elapsed)
	}
	if p8.P99 > 2*p1.P99 {
		t.Errorf("parallelism inflated blackout: p99 %v → %v", p1.P99, p8.P99)
	}
}

// TestDrainExpDeterminism pins that a drain run is a pure function of
// its seed.
func TestDrainExpDeterminism(t *testing.T) {
	a, err := RunDrainExpSeeded(DrainWholeRacks, 4, DrainSeedFor(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDrainExpSeeded(DrainWholeRacks, 4, DrainSeedFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("re-run diverged:\n  %s\n  %s", a, b)
	}
}
