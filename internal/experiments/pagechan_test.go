package experiments

import (
	"testing"

	"migrrdma/internal/runc"
)

// TestPageChanComparison runs the transfer-pipeline contrast at one
// Fig. 4a point (the full size sweep lives in cmd/migrbench and
// BENCH_9) and checks the shape the experiment exists to show: the
// pipelined channel ships the stop-and-copy round in a fraction of the
// monolithic final image, elides pages the dirty-bit tracker
// over-reports, and takes no more blackout for it.
func TestPageChanComparison(t *testing.T) {
	rows, err := PageChanComparison([]int{2048}, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	mono, pipe := rows[0], rows[1]
	if mono.Transfer != runc.TransferMonolithic || pipe.Transfer != runc.TransferPipelined {
		t.Fatalf("row order: %s, %s", mono.Transfer, pipe.Transfer)
	}
	for _, r := range rows {
		if r.Samples == 0 || r.Blackout <= 0 || r.WireBytes <= 0 || r.FinalWireBytes <= 0 {
			t.Errorf("degenerate row: %s", r)
		}
	}
	if pipe.FinalWireBytes >= mono.FinalWireBytes {
		t.Errorf("final-round wire: pipelined %d not below monolithic %d",
			pipe.FinalWireBytes, mono.FinalWireBytes)
	}
	if pipe.Blackout >= mono.Blackout {
		t.Errorf("blackout: pipelined %v not below monolithic %v", pipe.Blackout, mono.Blackout)
	}
	if pipe.PagesElided == 0 {
		t.Error("pipelined run elided nothing despite the page hog's zero/constant pages")
	}
	// The double-count satellite: monolithic re-ships pre-copy pages in
	// the final dump, so the distinct count trails the per-round total.
	if mono.DistinctPages >= mono.PagesTransferred {
		t.Errorf("monolithic distinct %d not below transferred %d", mono.DistinctPages, mono.PagesTransferred)
	}
}

// TestPageChanDeterminism pins that a transfer comparison run is a
// pure function of its seed.
func TestPageChanDeterminism(t *testing.T) {
	a, err := RunPageChanSeeded(runc.TransferPipelined, 2048, 2, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPageChanSeeded(runc.TransferPipelined, 2048, 2, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("re-run diverged:\n  %s\n  %s", a, b)
	}
}

// TestTenancyTransferModes runs the consolidation point at a small
// session count under both transfer modes: every tenant burst survives
// exactly-once either way, and the pipelined channel shrinks the
// stop-and-copy transfer of the session-table image.
func TestTenancyTransferModes(t *testing.T) {
	mono, err := RunTenancyTransferSeeded(runc.CutoverPlugForward, runc.TransferMonolithic, 128, tenancySeed)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := RunTenancyTransferSeeded(runc.CutoverPlugForward, runc.TransferPipelined, 128, tenancySeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []TenancyRow{mono, pipe} {
		if r.Acked != int64(128*2*tenancyBurst) {
			t.Errorf("%s/%s: %d acked, want %d", r.Mode, r.Transfer, r.Acked, 128*2*tenancyBurst)
		}
		if r.Blackout <= 0 || r.FinalWire <= 0 {
			t.Errorf("%s/%s: degenerate row: %s", r.Mode, r.Transfer, r)
		}
	}
	if pipe.FinalWire >= mono.FinalWire {
		t.Errorf("final-round wire: pipelined %d not below monolithic %d", pipe.FinalWire, mono.FinalWire)
	}
}
