package experiments

import (
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// TestDebugFig4Stall reproduces the Fig4 rig at small scale with state
// dumps; kept as a regression canary for the light-CRIU configuration.
func TestDebugFig4Stall(t *testing.T) {
	r := NewRigCfg(cluster.FastCheckpointTestbed(13), "src", "dst", "p0")
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 4096, QueueDepth: 64, NumQPs: 8, Messages: 0}
	srv := perftest.NewServer(r.CL.Sched, "srv", opts)
	cont := runc.NewContainer(r.CL.Host("p0"), "server")
	cont.Start(func(tp *task.Process) { srv.Run(tp, r.Daemons["p0"]) })
	cli := perftest.NewClient(r.CL.Sched, "cli", opts, perftest.Target{Node: "p0", Name: "srv"})
	cliCont := runc.NewContainer(r.CL.Host("src"), "client")
	r.CL.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(tp *task.Process) { cli.Run(tp, r.Daemons["src"]) })
	})
	migDone, cliDone := false, false
	r.CL.Sched.Go("driver", func() {
		cli.WaitReady()
		r.CL.Sched.Sleep(settle)
		_, err := r.Migrate(cliCont, "src", "dst", runc.DefaultMigrateOptions())
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		migDone = true
		r.CL.Sched.Sleep(time.Millisecond)
		cli.Stop()
		cli.Wait()
		cliDone = true
		srv.Stop()
	})
	r.CL.Sched.RunFor(3 * time.Second)
	if !migDone {
		t.Fatalf("migration hung; blocked: %s", r.CL.Sched.BlockedReport())
	}
	if !cliDone {
		for i, st := range cli.QPStates() {
			t.Logf("qp %d: %s", i, st)
		}
		t.Logf("client errors: %v", cli.Stats.Errors)
		t.Logf("server errors: %v", srv.Stats.Errors)
		t.Fatal("client did not drain after Stop")
	}
}
