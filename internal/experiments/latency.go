package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
)

// LatencyProfile is the per-operation view of Fig. 5: a latency-mode
// workload (one outstanding 64 B WRITE, ib_write_lat-style) runs across
// a live migration. Steady-state operations stay in the microsecond
// range; the operation that straddles the blackout takes approximately
// the blackout.
type LatencyProfile struct {
	Samples int
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
	// Blackout is the migration's service blackout for comparison with
	// Max.
	Blackout time.Duration
}

// String renders the profile.
func (l LatencyProfile) String() string {
	return fmt.Sprintf("ops=%d p50=%v p99=%v max=%v (service blackout %v)",
		l.Samples, l.P50.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Max.Round(time.Millisecond), l.Blackout.Round(time.Millisecond))
}

// LatencyAcrossMigration measures the profile.
func LatencyAcrossMigration() (LatencyProfile, error) {
	r := NewRig(41, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 64, NumQPs: 1, Messages: 0,
		LatencyMode: true, PostGap: 200 * time.Microsecond}
	pair := r.StartPair("src", "partner", opts)
	var rep *runc.Report
	var err error
	r.CL.Sched.Go("driver", func() {
		pair.Client.WaitReady()
		r.CL.Sched.Sleep(10 * time.Millisecond)
		rep, err = r.Migrate(pair.ClientCont, "src", "dst", runc.DefaultMigrateOptions())
		r.CL.Sched.Sleep(10 * time.Millisecond)
		pair.Client.Stop()
		pair.Client.Wait()
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return LatencyProfile{}, err
	}
	if rep == nil {
		return LatencyProfile{}, fmt.Errorf("latency: migration did not complete")
	}
	st := &pair.Client.Stats
	return LatencyProfile{
		Samples:  len(st.LatSamples),
		P50:      st.LatPercentile(50),
		P99:      st.LatPercentile(99),
		Max:      st.LatPercentile(100),
		Blackout: rep.ServiceBlackout,
	}, nil
}
