package experiments

import (
	"fmt"
	"testing"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/migros"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
)

// This file contains the ablation studies of DESIGN.md §4: the design
// choices the paper argues for, each compared against its alternative.

// --- Key-table ablation: dense array (MigrRDMA) vs move-to-front
// linked list (LubeRDMA, §6) ---------------------------------------------------

// KeyTableRow compares one configuration.
type KeyTableRow struct {
	MRs     int
	Skewed  bool // hot-key access vs uniform round-robin
	ArrayNS float64
	ListNS  float64
}

// String renders a row.
func (r KeyTableRow) String() string {
	pattern := "uniform"
	if r.Skewed {
		pattern = "skewed"
	}
	return fmt.Sprintf("MRs=%-5d %-8s array=%6.1f ns  list=%8.1f ns  (x%.1f)",
		r.MRs, pattern, r.ArrayNS, r.ListNS, r.ListNS/r.ArrayNS)
}

// lubeList is the §6 description of LubeRDMA's translation structure: a
// linked list of (virtual, physical) pairs with move-to-front on hit.
type lubeList struct {
	head *lubeNode
}

type lubeNode struct {
	virt, phys uint32
	next       *lubeNode
}

func (l *lubeList) assign(virt, phys uint32) {
	l.head = &lubeNode{virt: virt, phys: phys, next: l.head}
}

func (l *lubeList) lookup(virt uint32) (uint32, bool) {
	var prev *lubeNode
	for n := l.head; n != nil; n = n.next {
		if n.virt == virt {
			if prev != nil { // move to front
				prev.next = n.next
				n.next = l.head
				l.head = n
			}
			return n.phys, true
		}
		prev = n
	}
	return 0, false
}

// AblationKeyTable measures both structures under uniform and skewed
// access for each MR count.
func AblationKeyTable(mrCounts []int) []KeyTableRow {
	var rows []KeyTableRow
	for _, n := range mrCounts {
		for _, skewed := range []bool{false, true} {
			arr := newDenseArray(n)
			list := &lubeList{}
			for i := 0; i < n; i++ {
				list.assign(uint32(i+1), uint32(i)*0x107+0x2000)
			}
			keys := accessPattern(n, skewed)
			arrNS := measureLookups(func(k uint32) { arr.lookup(k) }, keys)
			listNS := measureLookups(func(k uint32) { list.lookup(k) }, keys)
			rows = append(rows, KeyTableRow{MRs: n, Skewed: skewed, ArrayNS: arrNS, ListNS: listNS})
		}
	}
	return rows
}

// denseArray mirrors core's keyTable for the ablation (the real one is
// internal to the session).
type denseArray struct{ phys []uint32 }

func newDenseArray(n int) *denseArray {
	d := &denseArray{phys: make([]uint32, n)}
	for i := range d.phys {
		d.phys[i] = uint32(i)*0x107 + 0x2000
	}
	return d
}

func (d *denseArray) lookup(virt uint32) (uint32, bool) {
	i := virt - 1
	if i >= uint32(len(d.phys)) {
		return 0, false
	}
	return d.phys[i], true
}

// accessPattern builds the key sequence: uniform round-robin over all
// MRs, or skewed (90% to one hot key — LubeRDMA's best case).
func accessPattern(n int, skewed bool) []uint32 {
	keys := make([]uint32, 1024)
	for i := range keys {
		if skewed && i%10 != 0 {
			keys[i] = 1
		} else {
			keys[i] = uint32(i%n) + 1
		}
	}
	return keys
}

func measureLookups(f func(uint32), keys []uint32) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f(keys[i%len(keys)])
		}
	})
	return float64(r.NsPerOp())
}

// --- Wait-before-stop vs drop-and-replay (§3.4) -------------------------------

// WBSAblationRow compares stop-and-copy strategies for in-flight WRs.
type WBSAblationRow struct {
	QPs           int
	InflightBytes int64
	// WaitBeforeStop: drain the wire before stopping (brownout, off the
	// blackout path).
	WBS time.Duration
	// DropAndReplay: reset every QP to discard in-flight WRs (inside
	// the blackout) and retransmit them after restore.
	DropReset  time.Duration
	DropReplay time.Duration
}

// String renders a row.
func (r WBSAblationRow) String() string {
	return fmt.Sprintf("QPs=%-5d inflight=%-10d wbs=%-12v drop: reset=%v (blackout!) + replay=%v",
		r.QPs, r.InflightBytes, r.WBS.Round(time.Microsecond),
		r.DropReset.Round(time.Microsecond), r.DropReplay.Round(time.Microsecond))
}

// AblationWBS contrasts the strategies analytically using the measured
// NIC reset latency and link rate: replay costs what waiting costs (both
// drain the same bytes), but discarding requires per-QP resets which are
// both slow and inside the blackout — the paper's two reasons for
// rejecting drop-and-replay.
func AblationWBS(qpCounts []int) []WBSAblationRow {
	nic := rnic.DefaultConfig()
	const linkRate = 100e9
	var rows []WBSAblationRow
	for _, n := range qpCounts {
		inflight := int64(n) * 64 * 4096
		wire := time.Duration(float64(inflight*8) / linkRate * float64(time.Second))
		rows = append(rows, WBSAblationRow{
			QPs:           n,
			InflightBytes: inflight,
			WBS:           wire,
			DropReset:     time.Duration(n) * nic.ResetQPLat,
			DropReplay:    wire,
		})
	}
	return rows
}

// --- rkey cache on/off (§3.3) ---------------------------------------------------

// RKeyCacheRow compares one-sided op throughput with and without the
// remote-key cache.
type RKeyCacheRow struct {
	Messages    int
	CachedOps   float64 // completed ops/s with the cache
	UncachedOps float64 // completed ops/s fetching every time
	Fetches     int64   // remote fetches with the cache (should be ~1/MR)
}

// String renders the row.
func (r RKeyCacheRow) String() string {
	return fmt.Sprintf("msgs=%-6d cached=%.0f ops/s (fetches=%d)  uncached=%.0f ops/s  speedup=x%.1f",
		r.Messages, r.CachedOps, r.Fetches, r.UncachedOps, r.CachedOps/r.UncachedOps)
}

// AblationRKeyCache runs small WRITE workloads with the cache enabled
// and disabled.
func AblationRKeyCache(messages int) (RKeyCacheRow, error) {
	run := func(disable bool) (float64, int64, error) {
		r := NewRig(29, "a", "b")
		opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 64, QueueDepth: 1, NumQPs: 1, Messages: messages}
		pair := r.StartPair("a", "b", opts)
		var elapsed time.Duration
		r.CL.Sched.Go("driver", func() {
			pair.Client.WaitReady()
			if disable {
				pair.Client.Sess.DisableRKeyCache = true
				pair.Client.Sess.InvalidateRemoteCaches("b")
			}
			start := r.CL.Sched.Now()
			pair.Client.Wait()
			elapsed = r.CL.Sched.Now() - start
			pair.Server.Stop()
			// All measured; skip the idle tail to the horizon (parked CQ
			// pollers re-arm wait slices until then).
			r.CL.Sched.Stop()
		})
		r.CL.Sched.RunFor(5 * time.Minute)
		if elapsed == 0 {
			return 0, 0, fmt.Errorf("rkey ablation (disable=%v) did not finish", disable)
		}
		return float64(messages) / elapsed.Seconds(), pair.Client.Sess.RKeyFetches, nil
	}
	cached, fetches, err := run(false)
	if err != nil {
		return RKeyCacheRow{}, err
	}
	uncached, _, err := run(true)
	if err != nil {
		return RKeyCacheRow{}, err
	}
	return RKeyCacheRow{Messages: messages, CachedOps: cached, UncachedOps: uncached, Fetches: fetches}, nil
}

// --- Partner pre-setup vs QP reset reuse (§3.2) ---------------------------------

// PartnerPreSetupRow contrasts the partner-side strategies.
type PartnerPreSetupRow struct {
	QPs int
	// SpareQP is MigrRDMA's choice: new QPs during pre-copy; only the
	// switch-over touches the blackout.
	SpareQPBrownout time.Duration
	SpareQPBlackout time.Duration
	// ResetReuse reuses old QPs via reset — possible only during
	// stop-and-copy, so the whole cost lands in the blackout.
	ResetReuseBlackout time.Duration
}

// String renders the row.
func (r PartnerPreSetupRow) String() string {
	return fmt.Sprintf("QPs=%-5d spare: brownout=%v blackout=%v   reset-reuse: blackout=%v",
		r.QPs, r.SpareQPBrownout.Round(time.Microsecond), r.SpareQPBlackout.Round(time.Microsecond),
		r.ResetReuseBlackout.Round(time.Microsecond))
}

// AblationPartnerPreSetup models both strategies from the NIC control
// costs (§3.2's argument for spare QPs).
func AblationPartnerPreSetup(qpCounts []int) []PartnerPreSetupRow {
	nic := rnic.DefaultConfig()
	connect := nic.CreateQPLat + nic.ModifyInitLat + nic.ModifyRTRLat + nic.ModifyRTSLat
	reconnect := nic.ResetQPLat + nic.ModifyInitLat + nic.ModifyRTRLat + nic.ModifyRTSLat
	var rows []PartnerPreSetupRow
	for _, n := range qpCounts {
		rows = append(rows, PartnerPreSetupRow{
			QPs:                n,
			SpareQPBrownout:    time.Duration(n) * connect,
			SpareQPBlackout:    time.Duration(n) * 2 * time.Microsecond, // table switch only
			ResetReuseBlackout: time.Duration(n) * reconnect,
		})
	}
	return rows
}

// --- §6 MigrOS comparison ---------------------------------------------------------

// MigrOSRow compares the systems at one QP count.
type MigrOSRow struct {
	QPs      int
	MigrOS   migros.Breakdown
	MigrRDMA migros.Breakdown
}

// String renders the row.
func (r MigrOSRow) String() string {
	return fmt.Sprintf("QPs=%-5d MigrOS: wait=%v xfer=%v replay=%v total=%v | MigrRDMA: wait=%v xfer=%v replay=%v total=%v",
		r.QPs,
		r.MigrOS.Wait.Round(time.Microsecond), r.MigrOS.Transfer.Round(time.Microsecond),
		r.MigrOS.Replay.Round(time.Microsecond), r.MigrOS.Total().Round(time.Microsecond),
		r.MigrRDMA.Wait.Round(time.Microsecond), r.MigrRDMA.Transfer.Round(time.Microsecond),
		r.MigrRDMA.Replay.Round(time.Microsecond), r.MigrRDMA.Total().Round(time.Microsecond))
}

// MigrOSCompare runs the §6 analysis over the QP counts.
func MigrOSCompare(qpCounts []int) []MigrOSRow {
	var rows []MigrOSRow
	for _, n := range qpCounts {
		p := migros.DefaultParams(n)
		rows = append(rows, MigrOSRow{QPs: n, MigrOS: p.MigrOS(), MigrRDMA: p.MigrRDMA()})
	}
	return rows
}

// --- Migration under packet loss (robustness; §3.4 timeout path) ---------------

// LossRow reports a migration under fabric loss.
type LossRow struct {
	LossPct   float64
	WBS       time.Duration
	TimedOut  bool
	Completed int64
	Errors    int
}

// String renders the row.
func (r LossRow) String() string {
	return fmt.Sprintf("loss=%.1f%% wbs=%v timedout=%v completed=%d errors=%d",
		r.LossPct*100, r.WBS.Round(time.Microsecond), r.TimedOut, r.Completed, r.Errors)
}

// MigrationUnderLoss migrates a sender while the fabric drops packets.
func MigrationUnderLoss(loss float64, wbsTimeout time.Duration) (LossRow, error) {
	r := NewRig(31, "src", "dst", "partner")
	for _, d := range r.Daemons {
		cfg := core.DefaultWBSConfig()
		cfg.Timeout = wbsTimeout
		d.SetWBSConfig(cfg)
	}
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: 4096, QueueDepth: 16, NumQPs: 2, Messages: 2000, CheckOrder: true}
	pair := r.StartPair("src", "partner", opts)
	var rep *runc.Report
	var err error
	r.CL.Sched.Go("driver", func() {
		pair.Client.WaitReady()
		r.CL.Sched.Sleep(settle)
		// Loss hits only the RDMA data path; the control plane and image
		// transfer are TCP-reliable on a real deployment.
		r.CL.Net.SetPortLoss("src", rnic.PortRDMA, loss)
		r.CL.Net.SetPortLoss("partner", rnic.PortRDMA, loss)
		rep, err = r.Migrate(pair.ClientCont, "src", "dst", runc.DefaultMigrateOptions())
		r.CL.Net.SetPortLoss("src", rnic.PortRDMA, 0)
		r.CL.Net.SetPortLoss("partner", rnic.PortRDMA, 0)
		pair.Client.Wait()
		r.CL.Sched.Sleep(5 * time.Millisecond)
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return LossRow{}, err
	}
	if rep == nil {
		return LossRow{}, fmt.Errorf("loss=%v: migration did not complete", loss)
	}
	return LossRow{
		LossPct: loss, WBS: rep.WBS.Elapsed, TimedOut: rep.WBS.TimedOut,
		Completed: pair.Server.Stats.Completed,
		Errors:    len(pair.Client.Stats.Errors) + len(pair.Server.Stats.Errors),
	}, nil
}
