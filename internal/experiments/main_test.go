package experiments

import (
	"fmt"
	"os"
	"testing"
)

func TestMain(m *testing.M) {
	// The figure-regeneration tests are minutes of single-threaded
	// simulator compute; under the race detector they blow the test
	// timeout without adding coverage — the concurrent machinery they
	// drive is race-tested directly in internal/{chaos,core,perftest,
	// runc}. Skip the package when -race is on.
	if raceEnabled {
		fmt.Println("skipping internal/experiments under -race: sim-heavy figure regeneration; race coverage lives in the unit tiers")
		os.Exit(0)
	}
	os.Exit(m.Run())
}
