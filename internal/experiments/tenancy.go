package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
	"migrrdma/internal/tenant"
)

// This file is the tenancy experiment: live-migrate a service
// container carrying thousands of multiplexed tenant sessions
// (internal/tenant) through both cutover modes, and sweep the session
// count to measure how consolidation scales — the blackout, the RDMA
// state replay time and the transferred image pages as functions of
// how many tenants ride in one container. The point the sweep exists
// to make: tenant sessions are service-process state, not verbs
// resources, so migration cost grows with the shared lane/ring
// footprint (constant) and the process image (linear but tiny), not
// with the tenant count × per-QP restore cost a naive
// one-QP-per-tenant deployment would pay.

// TenancyRow is one (sessions, cutover mode) measurement.
type TenancyRow struct {
	Sessions int
	Mode     runc.CutoverMode
	// Transfer is the page-transfer mode the migration ran under
	// (monolithic unless a transfer-mode variant set it).
	Transfer runc.TransferMode

	// Blackout is the migration's service blackout; ReplayRDMA the
	// RDMA-state restore (replay) time; Total the whole migration.
	Blackout   time.Duration
	ReplayRDMA time.Duration
	Total      time.Duration
	// Pages is the container image size transferred (memory footprint
	// proxy); WireBytes the cluster-wide rnic tx total; FinalWire the
	// stop-and-copy round's migration-channel bytes (the blackout's
	// transfer share).
	Pages     int
	WireBytes int64
	FinalWire int64

	// Acked counts tenant data operations acknowledged end-to-end;
	// DrainAfter is how long the post-cutover burst took to drain.
	Acked      int64
	DrainAfter time.Duration
}

// String renders one row.
func (r TenancyRow) String() string {
	return fmt.Sprintf("%-12s sessions=%-5d blackout=%-9v replay=%-9v total=%-9v pages=%-6d acked=%-6d drain=%-9v",
		r.Mode, r.Sessions, r.Blackout.Round(time.Microsecond), r.ReplayRDMA.Round(time.Microsecond),
		r.Total.Round(time.Microsecond), r.Pages, r.Acked, r.DrainAfter.Round(time.Microsecond))
}

// tenancySeed anchors the sweep's determinism.
const tenancySeed = 71

// TenancySeedFor returns replica rep's seed, anchored at the canonical
// tenancySeed the same way as the other replicated experiments.
func TenancySeedFor(rep int) int64 {
	if rep == 0 {
		return tenancySeed
	}
	return sim.DeriveSeed(tenancySeed, rep)
}

// tenancyBurst is the data operations per session per burst; one burst
// is in flight when the migration starts, a second drains after it.
const tenancyBurst = 2

// RunTenancy measures one tenancy configuration at the canonical seed.
func RunTenancy(mode runc.CutoverMode, sessions int) (TenancyRow, error) {
	return RunTenancySeeded(mode, sessions, tenancySeed)
}

// RunTenancySeeded live-migrates a service container carrying the
// given number of live tenant sessions, with a burst in flight at
// cutover, and audits the per-tenant exactly-once ledger afterwards.
func RunTenancySeeded(mode runc.CutoverMode, sessions int, seed int64) (TenancyRow, error) {
	cfg := cluster.FastCheckpointTestbed(seed)
	// rnr_retry=7 semantics, as in the cutover comparison: requests in
	// flight at freeze must retry through the blackout, not error out.
	cfg.NIC.MaxRetries = 1 << 20
	r := NewRigCfg(cfg, "src", "dst", "gw")
	opts := tenant.Options{
		Sessions: sessions, Lanes: 8, LaneDepth: 64,
		Credits: 16, RefillAmount: 16, RefillEvery: 20 * time.Microsecond,
	}
	svc := tenant.NewService(r.CL.Sched, "svc", opts)
	gw := tenant.NewGateway(r.CL.Sched, "gw", opts, tenant.Target{Node: "src", Name: "svc"})
	svcCont := runc.NewContainer(r.CL.Host("src"), "svc-cont")
	svcCont.Start(func(tp *task.Process) { svc.Run(tp, r.Daemons["src"]) })
	gwCont := runc.NewContainer(r.CL.Host("gw"), "gw-cont")
	r.CL.Sched.Go("tenancy-start-gw", func() {
		svc.WaitReady()
		gwCont.Start(func(tp *task.Process) { gw.Run(tp, r.Daemons["gw"]) })
	})

	mopts := runc.DefaultMigrateOptions()
	mopts.Cutover = mode
	sched := r.CL.Sched
	var (
		rep        *runc.Report
		err        error
		drainAfter time.Duration
	)
	sched.Go("tenancy-driver", func() {
		gw.WaitReady()
		// One burst in flight when the checkpoint hits.
		gw.SubmitAll(tenancyBurst)
		sched.Sleep(settle)
		rep, err = r.Migrate(svcCont, "src", "dst", mopts)
		// A second burst proves every session resumed on the destination.
		start := sched.Now()
		gw.SubmitAll(tenancyBurst)
		gw.Drain()
		drainAfter = sched.Now() - start
		gw.Stop()
		gw.Wait()
		svc.Stop()
		sched.Stop() // all measured; skip the idle tail to the horizon
	})
	sched.RunFor(10 * time.Minute)
	if err != nil {
		return TenancyRow{}, err
	}
	if rep == nil {
		return TenancyRow{}, fmt.Errorf("tenancy: migration did not complete")
	}
	if v := gw.CheckInvariants(); len(v) != 0 {
		return TenancyRow{}, fmt.Errorf("tenancy: %d invariant violations: %s", len(v), v[0])
	}
	if want := int64(sessions * 2 * tenancyBurst); gw.Stats.AckedOK != want {
		return TenancyRow{}, fmt.Errorf("tenancy: %d ops acked, want %d", gw.Stats.AckedOK, want)
	}
	snap := r.CL.Metrics.Snapshot()
	return TenancyRow{
		Sessions: sessions, Mode: mode,
		Blackout:   rep.ServiceBlackout,
		ReplayRDMA: rep.RestoreRDMA,
		Total:      rep.Total,
		Pages:      rep.PagesTransferred,
		WireBytes:  snap.Sum("rnic", "tx_bytes"),
		FinalWire:  rep.FinalWireBytes,
		Acked:      gw.Stats.AckedOK,
		DrainAfter: drainAfter,
	}, nil
}

// TenancySweep runs the scaling sweep: every session count × both
// cutover modes, grouped by count with go-back-N first.
func TenancySweep(sessionCounts []int) ([]TenancyRow, error) {
	var rows []TenancyRow
	for _, n := range sessionCounts {
		for _, mode := range []runc.CutoverMode{runc.CutoverGoBackN, runc.CutoverPlugForward} {
			row, err := RunTenancy(mode, n)
			if err != nil {
				return nil, fmt.Errorf("sessions=%d mode=%s: %w", n, mode, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
