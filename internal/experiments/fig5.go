package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/trace"
)

// Fig5Result is the partner-side real-time throughput study of §5.5.2:
// a container transmitting 2 MB messages over 16 QPs migrates while the
// partner's NIC counters are sampled every 5 ms.
type Fig5Result struct {
	MigrateSender bool
	Samples       []trace.Sample

	// BaselineGbps is the steady-state throughput before migration.
	BaselineGbps float64
	// BrownoutMinGbps is the lowest non-zero throughput during the
	// migration (pre-copy contention dip).
	BrownoutMinGbps float64
	// ObservedBlackout is the longest zero-throughput span (≈150 ms in
	// the paper).
	ObservedBlackout time.Duration
	// RecoveredGbps is the throughput after restoration completes.
	RecoveredGbps float64

	MigStart, MigEnd time.Duration
	Report           *runc.Report
}

// String summarizes the run.
func (r Fig5Result) String() string {
	side := "receiver"
	if r.MigrateSender {
		side = "sender"
	}
	return fmt.Sprintf("migrate %s: baseline=%.1f Gbps brownout-min=%.1f Gbps blackout=%v recovered=%.1f Gbps",
		side, r.BaselineGbps, r.BrownoutMinGbps, r.ObservedBlackout.Round(time.Millisecond), r.RecoveredGbps)
}

// Fig5 runs the experiment. migrateSender selects Fig. 5(a) (the
// transmitting container migrates) versus 5(b) (the receiving one).
func Fig5(migrateSender bool) (Fig5Result, error) {
	r := NewRig(17, "src", "dst", "partner")
	opts := perftest.Options{Verb: rnic.OpWrite, MsgSize: 2 << 20, QueueDepth: 4, NumQPs: 16, Messages: 0}
	var pair *Pair
	if migrateSender {
		pair = r.StartPair("src", "partner", opts)
	} else {
		pair = r.StartPair("partner", "src", opts)
	}
	// Sample the partner's NIC byte counters from the metrics registry
	// (the simulated ethtool read): bytes received when the sender
	// migrates, bytes transmitted when the receiver migrates.
	sampler := trace.NewSampler(r.CL.Host("partner").Dev, 5*time.Millisecond, migrateSender)

	res := Fig5Result{MigrateSender: migrateSender}
	var err error
	r.CL.Sched.Go("sampler", sampler.Run)
	r.CL.Sched.Go("driver", func() {
		pair.Client.WaitReady()
		// Steady state for a while before migrating.
		r.CL.Sched.Sleep(100 * time.Millisecond)
		res.MigStart = r.CL.Sched.Now()
		cont := pair.ClientCont
		if !migrateSender {
			cont = pair.ServerCont
		}
		res.Report, err = r.Migrate(cont, "src", "dst", runc.DefaultMigrateOptions())
		res.MigEnd = r.CL.Sched.Now()
		// Post-migration steady state.
		r.CL.Sched.Sleep(100 * time.Millisecond)
		sampler.Stop()
		pair.Client.Stop()
		pair.Client.Wait()
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return res, err
	}
	if res.Report == nil {
		return res, fmt.Errorf("fig5: migration did not complete")
	}
	res.Samples = sampler.Samples()
	_, res.BaselineGbps = sampler.MinMax(res.MigStart-80*time.Millisecond, res.MigStart)
	res.ObservedBlackout = sampler.ZeroSpan(res.MigStart, res.MigEnd+20*time.Millisecond)
	min, _ := sampler.MinMaxNonZero(res.MigStart, res.MigEnd)
	res.BrownoutMinGbps = min
	_, res.RecoveredGbps = sampler.MinMax(res.MigEnd+20*time.Millisecond, res.MigEnd+100*time.Millisecond)
	return res, nil
}
