package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/mem"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
	"migrrdma/internal/task"
	"migrrdma/internal/tenant"
)

// This file is the transfer-pipeline comparison: the same server-side
// live migration under an identical latency-mode SEND workload, once
// with the monolithic dump-then-send transfer and once with the
// pipelined multi-stream page channel. The contrast the experiment
// exists to show: overlapping dump/wire/apply plus zero-page and
// duplicate-content elision shrinks the stop-and-copy wire volume (and
// with it the blackout's transfer share), and the adaptive convergence
// controller stops iterating as soon as extra rounds stop paying.

// pageHog sizing: the deterministic writer that gives the migrated
// service a realistic page mix — hot pages that change every epoch,
// zero scratch pages, and constant-content rewrites the dirty-bit
// tracker flags but the content-hash table elides.
const (
	pageHogPages    = 192
	pageHogHot      = 24
	pageHogZero     = 24
	pageHogBase     = mem.Addr(0x5400_0000_0000)
	pageHogInterval = 200 * time.Microsecond
)

// startPageHog attaches the writer to p until the process exits or the
// returned stop function is called (so the writer never pins the event
// queue past the end of the measured run), pausing while frozen.
func startPageHog(r *Rig, p *task.Process) (stop func(), err error) {
	if _, err := p.AS.Map(pageHogBase, pageHogPages*mem.PageSize, "appstate"); err != nil {
		return nil, err
	}
	stopped := false
	r.CL.Sched.Go("page-hog", func() {
		buf := make([]byte, mem.PageSize)
		for epoch := 1; !p.Exited() && !stopped; epoch++ {
			if !p.Frozen() {
				for i := 0; i < pageHogPages; i++ {
					switch {
					case i < pageHogHot:
						for j := range buf {
							buf[j] = byte(epoch + i + j)
						}
					case i < pageHogHot+pageHogZero:
						for j := range buf {
							buf[j] = 0
						}
					default:
						for j := range buf {
							buf[j] = byte(i)
						}
					}
					a := pageHogBase + mem.Addr(i*mem.PageSize)
					if err := p.AS.Write(a, buf); err != nil {
						return // unmapped mid-teardown
					}
				}
			}
			r.CL.Sched.Sleep(pageHogInterval)
		}
	})
	return func() { stopped = true }, nil
}

// PageChanRow is one (transfer mode, message size) measurement.
type PageChanRow struct {
	Transfer runc.TransferMode
	MsgSize  int

	Samples  int
	P50      time.Duration
	P99      time.Duration
	Blackout time.Duration
	Total    time.Duration

	// PagesTransferred counts per-round page shipments (re-sends
	// included); DistinctPages the unique pages; PagesElided the pages
	// whose content stayed off the wire entirely.
	PagesTransferred int
	DistinctPages    int
	PagesElided      int
	// WireBytes is the migration channel's total image/chunk volume;
	// FinalWireBytes the stop-and-copy round alone (the blackout's
	// transfer share).
	WireBytes      int64
	FinalWireBytes int64
	// Rounds is the number of streamed rounds (pipelined) or dump
	// iterations (monolithic, from PreCopyIterations + predump + final).
	Rounds int
}

// String renders one row.
func (r PageChanRow) String() string {
	return fmt.Sprintf("%-12s msg=%-6d ops=%-5d p50=%-9v p99=%-9v blackout=%-9v pages=%-5d distinct=%-5d elided=%-5d wire=%-9d finalwire=%-8d rounds=%d",
		r.Transfer, r.MsgSize, r.Samples,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Blackout.Round(time.Microsecond),
		r.PagesTransferred, r.DistinctPages, r.PagesElided,
		r.WireBytes, r.FinalWireBytes, r.Rounds)
}

// pagechanSeed fixes the comparison's determinism.
const pagechanSeed = 83

// PageChanSeedFor returns replica rep's seed, anchored at the
// canonical pagechanSeed the same way as the other replicated
// experiments.
func PageChanSeedFor(rep int) int64 {
	if rep == 0 {
		return pagechanSeed
	}
	return sim.DeriveSeed(pagechanSeed, rep)
}

// RunPageChan measures one transfer configuration at the canonical seed.
func RunPageChan(mode runc.TransferMode, msgSize, qps, messages int) (PageChanRow, error) {
	return RunPageChanSeeded(mode, msgSize, qps, messages, pagechanSeed)
}

// RunPageChanSeeded live-migrates a latency-mode SEND server carrying
// the page-hog working set, under the given transfer mode.
func RunPageChanSeeded(mode runc.TransferMode, msgSize, qps, messages int, seed int64) (PageChanRow, error) {
	cfg := cluster.FastCheckpointTestbed(seed)
	cfg.NIC.MaxRetries = 1 << 20
	r := NewRigCfg(cfg, "src", "dst", "partner")
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: msgSize, NumQPs: qps, Messages: messages,
		LatencyMode: true, PostGap: 250 * time.Microsecond, RecvDepth: 64,
	}
	// The SERVER migrates src → dst mid-stream, carrying the page hog.
	pair := r.StartPair("partner", "src", opts)
	stopHog, err := startPageHog(r, pair.ServerCont.Procs[0])
	if err != nil {
		return PageChanRow{}, err
	}
	mopts := runc.DefaultMigrateOptions()
	mopts.Transfer = mode
	var rep *runc.Report
	r.CL.Sched.Go("pagechan-driver", func() {
		pair.Client.WaitReady()
		r.CL.Sched.Sleep(2 * time.Millisecond)
		rep, err = r.Migrate(pair.ServerCont, "src", "dst", mopts)
		pair.Client.Wait()
		stopHog()
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return PageChanRow{}, err
	}
	if rep == nil {
		return PageChanRow{}, fmt.Errorf("pagechan: migration did not complete")
	}
	if n := len(pair.Client.Stats.Errors); n != 0 {
		return PageChanRow{}, fmt.Errorf("pagechan: %d client errors: %s", n, pair.Client.Stats.Errors[0])
	}
	rounds := len(rep.Rounds)
	if mode == runc.TransferMonolithic {
		rounds = rep.PreCopyIterations + 2 // predump + final
	}
	return PageChanRow{
		Transfer: mode, MsgSize: msgSize,
		Samples:          len(pair.Client.Stats.LatSamples),
		P50:              pair.Client.Stats.LatPercentile(50),
		P99:              pair.Client.Stats.LatPercentile(99),
		Blackout:         rep.ServiceBlackout,
		Total:            rep.Total,
		PagesTransferred: rep.PagesTransferred,
		DistinctPages:    rep.DistinctPages,
		PagesElided:      rep.PagesElided,
		WireBytes:        rep.WireBytes,
		FinalWireBytes:   rep.FinalWireBytes,
		Rounds:           rounds,
	}, nil
}

// PageChanComparison sweeps both transfer modes over the given message
// sizes (the Fig. 4a points). Rows come out grouped by size with the
// monolithic row directly before its pipelined counterpart.
func PageChanComparison(sizes []int, qps, messages int) ([]PageChanRow, error) {
	var rows []PageChanRow
	for _, sz := range sizes {
		for _, mode := range []runc.TransferMode{runc.TransferMonolithic, runc.TransferPipelined} {
			row, err := RunPageChan(mode, sz, qps, messages)
			if err != nil {
				return nil, fmt.Errorf("msg=%d transfer=%s: %w", sz, mode, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunTenancyTransferSeeded is RunTenancySeeded with an explicit
// transfer mode: the 2000-session consolidation point under the
// pipelined channel is the PR's scale datapoint (BENCH_9). Unlike the
// BENCH_8 run, the service carries the page-hog writer so session
// state churns while the migration streams — the tenant bursts alone
// leave the memory image static by the time pre-copy starts, which
// would make the transfer mode unobservable.
func RunTenancyTransferSeeded(mode runc.CutoverMode, transfer runc.TransferMode, sessions int, seed int64) (TenancyRow, error) {
	cfg := cluster.FastCheckpointTestbed(seed)
	cfg.NIC.MaxRetries = 1 << 20
	r := NewRigCfg(cfg, "src", "dst", "gw")
	opts := tenant.Options{
		Sessions: sessions, Lanes: 8, LaneDepth: 64,
		Credits: 16, RefillAmount: 16, RefillEvery: 20 * time.Microsecond,
	}
	svc := tenant.NewService(r.CL.Sched, "svc", opts)
	gw := tenant.NewGateway(r.CL.Sched, "gw", opts, tenant.Target{Node: "src", Name: "svc"})
	svcCont := runc.NewContainer(r.CL.Host("src"), "svc-cont")
	svcCont.Start(func(tp *task.Process) { svc.Run(tp, r.Daemons["src"]) })
	gwCont := runc.NewContainer(r.CL.Host("gw"), "gw-cont")
	r.CL.Sched.Go("tenancy-start-gw", func() {
		svc.WaitReady()
		gwCont.Start(func(tp *task.Process) { gw.Run(tp, r.Daemons["gw"]) })
	})
	stopHog, err := startPageHog(r, svcCont.Procs[0])
	if err != nil {
		return TenancyRow{}, err
	}

	mopts := runc.DefaultMigrateOptions()
	mopts.Cutover = mode
	mopts.Transfer = transfer
	sched := r.CL.Sched
	var (
		rep        *runc.Report
		drainAfter time.Duration
	)
	sched.Go("tenancy-driver", func() {
		gw.WaitReady()
		gw.SubmitAll(tenancyBurst)
		sched.Sleep(settle)
		rep, err = r.Migrate(svcCont, "src", "dst", mopts)
		start := sched.Now()
		gw.SubmitAll(tenancyBurst)
		gw.Drain()
		drainAfter = sched.Now() - start
		stopHog()
		gw.Stop()
		gw.Wait()
		svc.Stop()
		sched.Stop() // all measured; skip the idle tail to the horizon
	})
	sched.RunFor(10 * time.Minute)
	if err != nil {
		return TenancyRow{}, err
	}
	if rep == nil {
		return TenancyRow{}, fmt.Errorf("tenancy: migration did not complete")
	}
	if v := gw.CheckInvariants(); len(v) != 0 {
		return TenancyRow{}, fmt.Errorf("tenancy: %d invariant violations: %s", len(v), v[0])
	}
	if want := int64(sessions * 2 * tenancyBurst); gw.Stats.AckedOK != want {
		return TenancyRow{}, fmt.Errorf("tenancy: %d ops acked, want %d", gw.Stats.AckedOK, want)
	}
	snap := r.CL.Metrics.Snapshot()
	return TenancyRow{
		Sessions: sessions, Mode: mode, Transfer: transfer,
		Blackout:   rep.ServiceBlackout,
		ReplayRDMA: rep.RestoreRDMA,
		Total:      rep.Total,
		Pages:      rep.PagesTransferred,
		WireBytes:  snap.Sum("rnic", "tx_bytes"),
		FinalWire:  rep.FinalWireBytes,
		Acked:      gw.Stats.AckedOK,
		DrainAfter: drainAfter,
	}, nil
}
