package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
)

// This file is the cutover-mode comparison: the same server-side live
// migration under an identical latency-mode SEND workload, once with
// the go-back-N cutover (blackout traffic bounces off the restored
// service and is recovered by retransmission) and once with the
// plug-and-forward cutover (blackout traffic waits in the destination
// plug and is flushed in arrival order). The contrast the experiment
// exists to show: plug-forward removes every cutover retransmission
// (and the wire bytes they burn) and trims the latency tail that
// go-back-N's RNR/RTO quantization leaves behind.

// CutoverRow is one (mode, message size, QP count) measurement.
type CutoverRow struct {
	Mode    runc.CutoverMode
	MsgSize int
	QPs     int

	Samples int
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
	// Blackout is the migration's service blackout.
	Blackout time.Duration

	// Retransmitted counts genuine go-back-N recovery on the data path;
	// Duplicated counts PSN-window rejects of frames delivered twice.
	Retransmitted int64
	Duplicated    int64
	// WireBytes is the cluster-wide rnic tx_bytes total: payload plus
	// every retransmission burned on the wire.
	WireBytes int64
	// PlugFlushed / Forwarded are plug-mode activity counters (zero in
	// go-back-N mode).
	PlugFlushed int64
	Forwarded   int64
}

// String renders one row.
func (r CutoverRow) String() string {
	return fmt.Sprintf("%-12s msg=%-6d qps=%d  ops=%-5d p50=%-9v p99=%-9v max=%-9v retx=%-4d dup=%-4d wire=%-9d flushed=%-3d fwd=%d",
		r.Mode, r.MsgSize, r.QPs, r.Samples,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.Retransmitted, r.Duplicated, r.WireBytes, r.PlugFlushed, r.Forwarded)
}

// cutoverSeed fixes the comparison's determinism; both modes run the
// byte-identical workload and migration timeline up to the cutover.
const cutoverSeed = 61

// RunCutover measures one cutover configuration at the canonical seed.
func RunCutover(mode runc.CutoverMode, msgSize, qps, messages int) (CutoverRow, error) {
	return RunCutoverSeeded(mode, msgSize, qps, messages, cutoverSeed)
}

// RunCutoverSeeded is RunCutover at an explicit seed, for replicated
// runs (CutoverComparisonCount, the -count benchmarks).
func RunCutoverSeeded(mode runc.CutoverMode, msgSize, qps, messages int, seed int64) (CutoverRow, error) {
	cfg := cluster.FastCheckpointTestbed(seed)
	// Split accounting keeps the retransmission column free of
	// PSN-window duplicate rejects, so "retx=0" means what it says.
	cfg.NIC.SplitRetxAccounting = true
	// rnr_retry=7 semantics: retry through the blackout instead of
	// erroring out — go-back-N's whole recovery story depends on it,
	// and the retries are exactly the cost the comparison measures.
	cfg.NIC.MaxRetries = 1 << 20
	r := NewRigCfg(cfg, "src", "dst", "partner")
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: msgSize, NumQPs: qps, Messages: messages,
		LatencyMode: true, PostGap: 250 * time.Microsecond,
		// Deep receive ring, as a real latency service would provision:
		// in plug-forward mode the partners resume before the thaw
		// completes, and posted receives must absorb that window instead
		// of converting it into RNR flow control (which would show up as
		// retransmissions that have nothing to do with the cutover).
		RecvDepth: 64,
	}
	// The SERVER is the migrating side: its container moves src → dst
	// mid-stream while the client keeps firing from the partner host.
	pair := r.StartPair("partner", "src", opts)
	mopts := runc.DefaultMigrateOptions()
	mopts.Cutover = mode
	var rep *runc.Report
	var err error
	r.CL.Sched.Go("cutover-driver", func() {
		pair.Client.WaitReady()
		r.CL.Sched.Sleep(2 * time.Millisecond)
		rep, err = r.Migrate(pair.ServerCont, "src", "dst", mopts)
		pair.Client.Wait() // the bounded message count drains
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return CutoverRow{}, err
	}
	if rep == nil {
		return CutoverRow{}, fmt.Errorf("cutover: migration did not complete")
	}
	if n := len(pair.Client.Stats.Errors); n != 0 {
		return CutoverRow{}, fmt.Errorf("cutover: %d client errors: %s", n, pair.Client.Stats.Errors[0])
	}
	snap := r.CL.Metrics.Snapshot()
	row := CutoverRow{
		Mode: mode, MsgSize: msgSize, QPs: qps,
		Samples:       len(pair.Client.Stats.LatSamples),
		P50:           pair.Client.Stats.LatPercentile(50),
		P99:           pair.Client.Stats.LatPercentile(99),
		Max:           pair.Client.Stats.LatPercentile(100),
		Blackout:      rep.ServiceBlackout,
		Retransmitted: snap.Sum("rnic", "retransmitted_packets"),
		Duplicated:    snap.Sum("rnic", "duplicated_packets"),
		WireBytes:     snap.Sum("rnic", "tx_bytes"),
		PlugFlushed:   int64(rep.PlugFlushed),
		Forwarded:     snap.Sum("rnic", "forwarded_packets"),
	}
	return row, nil
}

// CutoverComparison sweeps both cutover modes over the given message
// sizes and QP counts. Rows come out grouped by (size, qps) with the
// go-back-N row directly before its plug-forward counterpart.
func CutoverComparison(sizes, qpCounts []int, messages int) ([]CutoverRow, error) {
	return CutoverComparisonCount(sizes, qpCounts, messages, 1, 1)
}
