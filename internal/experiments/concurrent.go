package experiments

import (
	"fmt"
	"strconv"
	"time"

	"migrrdma/internal/migmgr"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
)

// ConcurrentRow is one migration of the concurrent-drain benchmark.
type ConcurrentRow struct {
	Mig       string
	Src, Dst  string
	QueueWait time.Duration

	ServiceBlackout time.Duration
	CommBlackout    time.Duration
	Total           time.Duration
}

// String renders a table row.
func (r ConcurrentRow) String() string {
	return fmt.Sprintf("%-4s %s->%s  queue=%-10v blackout=%-10v comm=%-10v total=%v",
		r.Mig, r.Src, r.Dst,
		r.QueueWait.Round(time.Microsecond),
		r.ServiceBlackout.Round(time.Microsecond),
		r.CommBlackout.Round(time.Microsecond),
		r.Total.Round(time.Microsecond))
}

// ConcurrentResult is the outcome of one ConcurrentMigrations run.
type ConcurrentResult struct {
	K, Cap int
	Rows   []ConcurrentRow
	// WireBytes is the aggregate fabric transmit volume attributable to
	// the run (post-warmup delta across all NICs).
	WireBytes int64
	// Elapsed is submission of the first job to completion of the last.
	Elapsed time.Duration
}

// String renders the result.
func (cr *ConcurrentResult) String() string {
	s := fmt.Sprintf("K=%d cap=%d  elapsed=%v wire=%d B\n", cr.K, cr.Cap,
		cr.Elapsed.Round(time.Microsecond), cr.WireBytes)
	for _, r := range cr.Rows {
		s += "  " + r.String() + "\n"
	}
	return s
}

// ConcurrentMigrations drains K client containers concurrently under
// the given admission cap. The topology is a ring of K hosts n0..n{K-1}
// plus a partner host p: client i lives on n_i, its server on p, and it
// migrates to n_{(i+1)%K} — so under cap >= 2 every ring node acts as a
// migration source and a migration destination simultaneously, and p
// partners all K migrations at once. The per-migration blackout should
// stay flat-ish in K while aggregate wire volume and total drain time
// grow with it.
func ConcurrentMigrations(k, cap int) (*ConcurrentResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("concurrent: need k >= 2, got %d", k)
	}
	names := make([]string, k, k+1)
	for i := range names {
		names[i] = "n" + strconv.Itoa(i)
	}
	names = append(names, "p")
	r := NewRig(17, names...)
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2, Messages: 0,
		CheckOrder: true, PostGap: 60 * time.Microsecond,
	}
	pairs := make([]*Pair, k)
	for i := 0; i < k; i++ {
		pairs[i] = r.StartPairNamed(names[i], "p",
			"cli"+strconv.Itoa(i), "srv"+strconv.Itoa(i), opts)
	}

	mgr := migmgr.New(r.CL, r.Daemons, cap)
	var res *ConcurrentResult
	var runErr error
	r.CL.Sched.Go("driver", func() {
		for _, p := range pairs {
			p.Client.WaitReady()
		}
		r.CL.Sched.Sleep(settle)
		before := r.CL.Metrics.Snapshot().Sum("rnic", "tx_bytes")
		start := r.CL.Sched.Now()
		for i := 0; i < k; i++ {
			if _, err := mgr.Submit(migmgr.Spec{
				C:    pairs[i].ClientCont,
				Dst:  names[(i+1)%k],
				Opts: runc.DefaultMigrateOptions(),
			}); err != nil {
				runErr = err
				return
			}
		}
		mgr.WaitAll()
		elapsed := r.CL.Sched.Now() - start
		// Drain a little, then stop the workload.
		r.CL.Sched.Sleep(2 * time.Millisecond)
		for _, p := range pairs {
			p.Client.Stop()
			p.Client.Wait()
			p.Server.Stop()
		}
		wire := r.CL.Metrics.Snapshot().Sum("rnic", "tx_bytes") - before
		out := &ConcurrentResult{K: k, Cap: cap, Elapsed: elapsed, WireBytes: wire}
		for _, j := range mgr.Jobs() {
			if j.Err != nil {
				runErr = fmt.Errorf("concurrent: %s %s->%s: %w", j.ID, j.Src, j.Spec.Dst, j.Err)
				return
			}
			out.Rows = append(out.Rows, ConcurrentRow{
				Mig: j.ID, Src: j.Src, Dst: j.Spec.Dst, QueueWait: j.QueueWait(),
				ServiceBlackout: j.Report.ServiceBlackout,
				CommBlackout:    j.Report.CommBlackout,
				Total:           j.Report.Total,
			})
		}
		res = out
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if runErr != nil {
		return nil, runErr
	}
	if res == nil {
		return nil, fmt.Errorf("concurrent: run did not complete (k=%d cap=%d)", k, cap)
	}
	for i, p := range pairs {
		if len(p.Client.Stats.Errors) > 0 {
			return nil, fmt.Errorf("concurrent: client %d errors: %v", i, p.Client.Stats.Errors[0])
		}
		if len(p.Server.Stats.Errors) > 0 {
			return nil, fmt.Errorf("concurrent: server %d errors: %v", i, p.Server.Stats.Errors[0])
		}
	}
	return res, nil
}
