package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/core"
	"migrrdma/internal/hdfs"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// Fig6Row is one bar group of the Fig. 6 Hadoop study: job completion
// time and application-perceived throughput for baseline, MigrRDMA
// migration, and Hadoop-native failover.
type Fig6Row struct {
	Job      hdfs.JobKind
	Scenario string // "baseline" | "migrrdma" | "failover"
	JCT      time.Duration
	TputGbps float64
	Pi       float64
}

// String renders a table row.
func (r Fig6Row) String() string {
	s := fmt.Sprintf("%-10s %-9s JCT=%v", r.Job, r.Scenario, r.JCT.Round(time.Millisecond))
	if r.Job == hdfs.TestDFSIO {
		s += fmt.Sprintf("  Tput=%.1f Gbps", r.TputGbps)
	} else {
		s += fmt.Sprintf("  pi=%.4f", r.Pi)
	}
	return s
}

// fig6Rig builds the HDFS testbed: master, datanode, an active worker
// in a container on w1, and (for failover) a backup worker on w2.
type fig6Rig struct {
	rig    *Rig
	master *hdfs.Master
	worker *hdfs.Worker
	backup *hdfs.Worker
	wCont  *runc.Container
}

func newFig6Rig(withBackup bool) *fig6Rig {
	r := NewRig(23, "master", "datanode", "w1", "w2", "spare")
	cfg := hdfs.DefaultMasterConfig()
	f := &fig6Rig{rig: r}
	f.master = hdfs.NewMaster(r.CL.Sched, r.CL.Host("master").Hub, cfg)
	dn := hdfs.NewDataNode(r.CL.Sched, "dn0")
	dnCont := runc.NewContainer(r.CL.Host("datanode"), "dn")
	dnCont.Start(func(p *task.Process) { dn.Run(p, r.Daemons["datanode"]) })

	f.worker = hdfs.NewWorker(r.CL.Sched, "w1", "master", "datanode", "dn0", cfg)
	f.wCont = runc.NewContainer(r.CL.Host("w1"), "worker")
	r.CL.Sched.Go("start-worker", func() {
		dn.WaitReady()
		f.wCont.Start(func(p *task.Process) { f.worker.Run(p, r.Daemons["w1"]) })
	})
	if withBackup {
		f.backup = hdfs.NewWorker(r.CL.Sched, "w2", "master", "datanode", "dn0", cfg)
		bCont := runc.NewContainer(r.CL.Host("w2"), "backup")
		r.CL.Sched.Go("start-backup", func() {
			dn.WaitReady()
			bCont.Start(func(p *task.Process) { f.backup.Run(p, r.Daemons["w2"]) })
		})
	}
	return f
}

// fig6Specs are the two Hadoop-provided tasks (§5.6), sized so the jobs
// run for tens of seconds like the paper's.
func fig6Spec(kind hdfs.JobKind) hdfs.JobSpec {
	if kind == hdfs.TestDFSIO {
		return hdfs.JobSpec{Kind: hdfs.TestDFSIO, Blocks: 300, BlockSize: 8 << 20, BlockCompute: 100 * time.Millisecond}
	}
	return hdfs.JobSpec{Kind: hdfs.EstimatePI, Rounds: 120, RoundTime: 250 * time.Millisecond, Samples: 50000}
}

// Fig6 runs one scenario of one job kind and returns the row.
func Fig6(kind hdfs.JobKind, scenario string) (Fig6Row, error) {
	f := newFig6Rig(scenario == "failover")
	r := f.rig
	var res hdfs.JobResult
	var mErr error
	r.CL.Sched.Go("driver", func() {
		f.worker.WaitReady()
		if f.backup != nil {
			f.backup.WaitReady()
		}
		f.master.Submit(fig6Spec(kind), "w1")
		switch scenario {
		case "migrrdma":
			// Operator maintenance mid-job: live-migrate the worker.
			r.CL.Sched.Sleep(5 * time.Second)
			m := &runc.Migrator{C: f.wCont, Dst: r.CL.Host("spare"),
				Plug: core.NewPlugin(r.Daemons["w1"], r.Daemons["spare"]),
				Opts: runc.DefaultMigrateOptions()}
			_, mErr = m.Migrate()
		case "failover":
			r.CL.Sched.Go("failover-monitor", func() { f.master.MonitorFailover("w2") })
			r.CL.Sched.Sleep(5 * time.Second)
			f.worker.Kill()
		}
		res = f.master.Wait()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(30 * time.Minute)
	if mErr != nil {
		return Fig6Row{}, mErr
	}
	if res.JCT == 0 {
		return Fig6Row{}, fmt.Errorf("fig6 %v/%s: job did not finish", kind, scenario)
	}
	return Fig6Row{Job: kind, Scenario: scenario, JCT: res.JCT, TputGbps: res.TputGbps, Pi: res.Pi}, nil
}

// Fig6Sweep runs every scenario for both jobs.
func Fig6Sweep() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, kind := range []hdfs.JobKind{hdfs.TestDFSIO, hdfs.EstimatePI} {
		for _, sc := range []string{"baseline", "migrrdma", "failover"} {
			row, err := Fig6(kind, sc)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
