package experiments

import (
	"testing"
)

// TestFig4aParallelMatchesSequential: the worker pool must only change
// wall-clock time, never the rows — same jobs, same seeds, same medians
// at every worker count.
func TestFig4aParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full migration sweeps in -short mode")
	}
	qps := []int{8}
	seq, err := Fig4aParallel(qps, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig4aParallel(qps, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d: sequential %v != parallel %v", i, seq[i], par[i])
		}
	}
}

// TestFig4aParallelSingleRepCanonical: reps=1 must reproduce the
// canonical-seed row Fig4a reports, so the parallel path is a strict
// superset of the sequential sweep.
func TestFig4aParallelSingleRepCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("full migration sweeps in -short mode")
	}
	canon, err := Fig4(8, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig4aParallel([]int{8}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != 1 || par[0] != canon {
		t.Fatalf("parallel reps=1 row %v != canonical %v", par, canon)
	}
}

// TestSeedDerivationsDistinct: replica seeds must not collide with the
// canonical seed or each other.
func TestSeedDerivationsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for rep := 0; rep < 8; rep++ {
		for _, s := range []int64{Fig4SeedFor(rep), CutoverSeedFor(rep)} {
			seen[s]++
		}
	}
	if len(seen) != 16 {
		t.Fatalf("seed collisions: %d distinct of 16", len(seen))
	}
}
