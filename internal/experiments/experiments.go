// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed: the Fig. 3 blackout
// breakdown, the Fig. 4 wait-before-stop study, the Table 4
// virtualization overhead, the Fig. 5 throughput timelines, the Fig. 6
// Hadoop comparison, the §6 MigrOS analysis, and the ablations of the
// design choices DESIGN.md calls out.
//
// Each experiment builds a fresh deterministic cluster, drives the
// workload and migration, and returns typed rows that cmd/migrbench
// renders and bench_test.go asserts on.
package experiments

import (
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/perftest"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// Rig is a testbed with MigrRDMA daemons on every host.
type Rig struct {
	CL      *cluster.Cluster
	Daemons map[string]*core.Daemon
}

// NewRig builds a cluster of the named hosts.
func NewRig(seed int64, names ...string) *Rig {
	return NewRigCfg(cluster.Config{Seed: seed}, names...)
}

// NewRigCfg builds a cluster with explicit component parameters.
func NewRigCfg(cfg cluster.Config, names ...string) *Rig {
	cl := cluster.New(cfg, names...)
	r := &Rig{CL: cl, Daemons: make(map[string]*core.Daemon)}
	for _, n := range names {
		r.Daemons[n] = core.NewDaemon(cl.Host(n))
	}
	return r
}

// Pair is a running perftest client/server pair, with the client inside
// a migratable container.
type Pair struct {
	ClientCont *runc.Container
	ServerCont *runc.Container
	Client     *perftest.Client
	Server     *perftest.Server
}

// StartPair launches a server on sNode and a client container on cNode.
func (r *Rig) StartPair(cNode, sNode string, opts perftest.Options) *Pair {
	return r.startPair(cNode, sNode, "cli", "srv", "client", "server", opts)
}

// StartPairNamed is StartPair with explicit perftest names; several
// pairs can then coexist on one node (each server registers an OOB
// endpoint derived from its name). Container names follow the perftest
// names.
func (r *Rig) StartPairNamed(cNode, sNode, cliName, srvName string, opts perftest.Options) *Pair {
	return r.startPair(cNode, sNode, cliName, srvName, cliName+"-cont", srvName+"-cont", opts)
}

func (r *Rig) startPair(cNode, sNode, cliName, srvName, cliCont, srvCont string, opts perftest.Options) *Pair {
	p := &Pair{
		Server: perftest.NewServer(r.CL.Sched, srvName, opts),
		Client: perftest.NewClient(r.CL.Sched, cliName, opts, perftest.Target{Node: sNode, Name: srvName}),
	}
	p.ServerCont = runc.NewContainer(r.CL.Host(sNode), srvCont)
	p.ServerCont.Start(func(tp *task.Process) { p.Server.Run(tp, r.Daemons[sNode]) })
	p.ClientCont = runc.NewContainer(r.CL.Host(cNode), cliCont)
	r.CL.Sched.Go("start-"+cliName, func() {
		p.Server.WaitReady()
		p.ClientCont.Start(func(tp *task.Process) { p.Client.Run(tp, r.Daemons[cNode]) })
	})
	return p
}

// Migrate runs one live migration of the container from its current
// host to dst.
func (r *Rig) Migrate(c *runc.Container, srcNode, dstNode string, opts runc.MigrateOptions) (*runc.Report, error) {
	m := &runc.Migrator{
		C:    c,
		Dst:  r.CL.Host(dstNode),
		Plug: core.NewPlugin(r.Daemons[srcNode], r.Daemons[dstNode]),
		Opts: opts,
	}
	return m.Migrate()
}

// settle gives in-flight traffic time to reach steady state.
const settle = 3 * time.Millisecond
