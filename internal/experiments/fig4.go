package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// Fig4Row is one point of the Fig. 4 wait-before-stop study.
type Fig4Row struct {
	QPs      int
	MsgSize  int
	Partners int

	// WBS is the measured source-side wait-before-stop time; Theory is
	// inflight_bytes/link_rate (footnote 2 of §5.4).
	WBS      time.Duration
	Theory   time.Duration
	Blackout time.Duration
	Comm     time.Duration
}

// String renders a table row.
func (r Fig4Row) String() string {
	return fmt.Sprintf("QPs=%-4d msg=%-7d partners=%d  WBS=%-12v theory=%-12v (x%.2f)  blackout=%-10v comm=%v",
		r.QPs, r.MsgSize, r.Partners,
		r.WBS.Round(time.Microsecond), r.Theory.Round(time.Microsecond),
		float64(r.WBS)/float64(max64(1, int64(r.Theory))),
		r.Blackout.Round(time.Microsecond), r.Comm.Round(time.Microsecond))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fig4BaseSeed is the seed the canonical Fig. 4 rows are captured at;
// replicated sweeps derive per-replica seeds from it (Fig4SeedFor).
const fig4BaseSeed = 13

// Fig4 measures wait-before-stop with n QPs of msgSize messages spread
// over the given partner nodes (queue depth 64, §5.4) at the canonical
// seed.
func Fig4(n, msgSize, partners int) (Fig4Row, error) {
	return Fig4Seeded(n, msgSize, partners, fig4BaseSeed)
}

// Fig4Seeded is Fig4 at an explicit seed. The migrated container is the
// sender, so the full send window is in flight at suspension time.
func Fig4Seeded(n, msgSize, partners int, seed int64) (Fig4Row, error) {
	nodes := []string{"src", "dst"}
	var targets []perftest.Target
	var servers []*perftest.Server
	for i := 0; i < partners; i++ {
		nodes = append(nodes, fmt.Sprintf("p%d", i))
	}
	// Wait-before-stop is independent of checkpoint costs; the light
	// CRIU configuration keeps the line-rate traffic window (and thus
	// the simulated message count) small.
	cfg := cluster.FastCheckpointTestbed(seed)
	r := NewRigCfg(cfg, nodes...)
	opts := perftest.Options{Verb: rnic.OpSend, MsgSize: msgSize, QueueDepth: 64, NumQPs: n, Messages: 0}
	// One perftest server per partner (the paper's one-to-many mode).
	for i := 0; i < partners; i++ {
		node := fmt.Sprintf("p%d", i)
		srv := perftest.NewServer(r.CL.Sched, "srv", opts)
		servers = append(servers, srv)
		cont := runc.NewContainer(r.CL.Host(node), "server-"+node)
		cont.Start(func(tp *task.Process) { srv.Run(tp, r.Daemons[node]) })
		targets = append(targets, perftest.Target{Node: node, Name: "srv"})
	}
	cli := perftest.NewClient(r.CL.Sched, "cli", opts, targets...)
	cliCont := runc.NewContainer(r.CL.Host("src"), "client")
	r.CL.Sched.Go("start-client", func() {
		for _, srv := range servers {
			srv.WaitReady()
		}
		cliCont.Start(func(tp *task.Process) { cli.Run(tp, r.Daemons["src"]) })
	})

	var rep *runc.Report
	var err error
	r.CL.Sched.Go("driver", func() {
		cli.WaitReady()
		r.CL.Sched.Sleep(settle)
		rep, err = r.Migrate(cliCont, "src", "dst", runc.DefaultMigrateOptions())
		r.CL.Sched.Sleep(time.Millisecond)
		cli.Stop()
		cli.Wait()
		for _, srv := range servers {
			srv.Stop()
		}
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return Fig4Row{}, err
	}
	if rep == nil {
		return Fig4Row{}, fmt.Errorf("fig4: migration did not complete")
	}
	if rep.WBS.TimedOut {
		return Fig4Row{}, fmt.Errorf("fig4: wait-before-stop timed out")
	}
	theory := time.Duration(rep.WBS.InflightBytes * 8 * int64(time.Second) / r.CL.Net.Rate())
	return Fig4Row{
		QPs: n, MsgSize: msgSize, Partners: partners,
		WBS: rep.WBS.Elapsed, Theory: theory,
		Blackout: rep.Blackout(), Comm: rep.CommBlackout,
	}, nil
}

// Fig4a sweeps the QP count (message size 4 KB, one partner).
func Fig4a(qps []int) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, n := range qps {
		row, err := Fig4(n, 4096, 1)
		if err != nil {
			return rows, fmt.Errorf("fig4a n=%d: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4b sweeps the message size (16 QPs, one partner).
func Fig4b(sizes []int) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, s := range sizes {
		row, err := Fig4(16, s, 1)
		if err != nil {
			return rows, fmt.Errorf("fig4b size=%d: %w", s, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4c sweeps the number of partners, one QP per partner.
func Fig4c(partners []int) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, p := range partners {
		row, err := Fig4(p, 4096, p)
		if err != nil {
			return rows, fmt.Errorf("fig4c partners=%d: %w", p, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
