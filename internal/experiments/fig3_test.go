package experiments

import (
	"testing"
	"time"
)

func TestFig3SmokeSender(t *testing.T) {
	with, err := Fig3(16, true, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Fig3(16, true, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with:    %s", with)
	t.Logf("without: %s", without)
	if with.Blackout >= without.Blackout {
		t.Fatalf("pre-setup blackout %v not shorter than baseline %v", with.Blackout, without.Blackout)
	}
	if with.RestoreRDMA != 0 || without.RestoreRDMA == 0 {
		t.Fatal("RestoreRDMA must be excluded from the pre-setup blackout only")
	}
}

func TestFig3RestoreRDMAGrowsWithQPs(t *testing.T) {
	small, err := Fig3(16, true, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Fig3(128, true, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("16 QPs:  %s", small)
	t.Logf("128 QPs: %s", big)
	if big.RestoreRDMA < 4*small.RestoreRDMA {
		t.Fatalf("RestoreRDMA did not scale with QPs: %v vs %v", small.RestoreRDMA, big.RestoreRDMA)
	}
	if big.DumpOthers <= small.DumpOthers {
		t.Fatalf("DumpOthers did not grow with QPs: %v vs %v", small.DumpOthers, big.DumpOthers)
	}
}

func TestFig3ReceiverSide(t *testing.T) {
	row, err := Fig3(16, false, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("receiver: %s", row)
	if row.Blackout <= 0 || row.Blackout > 5*time.Second {
		t.Fatalf("implausible blackout %v", row.Blackout)
	}
}
