package experiments

import (
	"fmt"
	"time"

	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
)

// Fig3Row is one bar of the Fig. 3 blackout breakdown.
type Fig3Row struct {
	QPs      int
	Sender   bool // migrate the sender side (a,c) vs the receiver (b,d)
	PreSetup bool

	DumpRDMA    time.Duration
	DumpOthers  time.Duration
	Transfer    time.Duration
	RestoreRDMA time.Duration
	FullRestore time.Duration
	Blackout    time.Duration
}

// String renders a table row.
func (r Fig3Row) String() string {
	side, mode := "recv", "nopresetup"
	if r.Sender {
		side = "send"
	}
	if r.PreSetup {
		mode = "presetup"
	}
	return fmt.Sprintf("%4d QPs %s %-10s  DumpRDMA=%-10v DumpOthers=%-10v Transfer=%-10v RestoreRDMA=%-10v FullRestore=%-10v Blackout=%v",
		r.QPs, side, mode,
		r.DumpRDMA.Round(time.Microsecond), r.DumpOthers.Round(time.Microsecond),
		r.Transfer.Round(time.Microsecond), r.RestoreRDMA.Round(time.Microsecond),
		r.FullRestore.Round(time.Microsecond), r.Blackout.Round(time.Microsecond))
}

// Fig3 runs one blackout-breakdown migration: a perftest SEND/RECV pair
// at queue depth 64 with 4 KB messages and n QPs; either the sender or
// the receiver container migrates, with or without RDMA pre-setup
// (§5.2).
func Fig3(n int, sender, preSetup bool) (Fig3Row, error) {
	r := NewRig(11, "src", "dst", "partner")
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 4096, QueueDepth: 64, NumQPs: n, Messages: 0,
	}
	// Large-N runs measure control-path costs; throttle the data plane
	// so the simulation stays tractable (the blackout breakdown does not
	// depend on offered load).
	switch {
	case n > 512:
		opts.QueueDepth = 4
		opts.PostGap = 50 * time.Microsecond
	case n > 128:
		opts.QueueDepth = 16
		opts.PostGap = 10 * time.Microsecond
	}
	// The migrating container holds the sender (client) or the receiver
	// (server).
	var pair *Pair
	var cont = ""
	if sender {
		pair = r.StartPair("src", "partner", opts)
		cont = "client"
	} else {
		pair = r.StartPair("partner", "src", opts)
		cont = "server"
	}
	var rep *runc.Report
	var err error
	r.CL.Sched.Go("driver", func() {
		pair.Client.WaitReady()
		r.CL.Sched.Sleep(settle)
		mopts := runc.DefaultMigrateOptions()
		mopts.PreSetup = preSetup
		c := pair.ClientCont
		if cont == "server" {
			c = pair.ServerCont
		}
		rep, err = r.Migrate(c, "src", "dst", mopts)
		// Drain a little, then stop the workload.
		r.CL.Sched.Sleep(2 * time.Millisecond)
		pair.Client.Stop()
		pair.Client.Wait()
		pair.Server.Stop()
		r.CL.Sched.Stop() // all measured; skip the idle tail to the horizon
	})
	r.CL.Sched.RunFor(10 * time.Minute)
	if err != nil {
		return Fig3Row{}, err
	}
	if rep == nil {
		return Fig3Row{}, fmt.Errorf("fig3: migration did not complete (n=%d)", n)
	}
	if len(pair.Client.Stats.Errors) > 0 {
		return Fig3Row{}, fmt.Errorf("fig3: client errors: %v", pair.Client.Stats.Errors[0])
	}
	if len(pair.Server.Stats.Errors) > 0 {
		return Fig3Row{}, fmt.Errorf("fig3: server errors: %v", pair.Server.Stats.Errors[0])
	}
	return Fig3Row{
		QPs: n, Sender: sender, PreSetup: preSetup,
		DumpRDMA: rep.DumpRDMA, DumpOthers: rep.DumpOthers,
		Transfer: rep.Transfer, RestoreRDMA: rep.RestoreRDMA,
		FullRestore: rep.FullRestore, Blackout: rep.Blackout(),
	}, nil
}

// Fig3Sweep runs the full figure: both sides, both modes, over the QP
// counts.
func Fig3Sweep(qpCounts []int) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, sender := range []bool{true, false} {
		for _, pre := range []bool{false, true} {
			for _, n := range qpCounts {
				row, err := Fig3(n, sender, pre)
				if err != nil {
					return rows, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
