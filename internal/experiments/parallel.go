package experiments

import (
	"fmt"
	"sort"

	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
)

// This file parallelizes the embarrassingly-parallel sweeps: every
// (sweep point, replica seed) pair is one self-contained simulation —
// its own scheduler, fabric, hosts — so a worker pool can run them
// concurrently and must reproduce the sequential rows exactly (the
// pool only changes wall-clock, never which jobs run or at what seed).
// Replicas exist because a single seed's p99/WBS is one sample of a
// discrete event pattern; the median across derived seeds is the
// stable statistic the benchmarks report.

// Fig4SeedFor returns replica rep's seed for the Fig. 4 sweeps: replica
// 0 is the canonical seed (so reps=1 reproduces the recorded rows) and
// later replicas are splitmix64 derivations of it.
func Fig4SeedFor(rep int) int64 {
	if rep == 0 {
		return fig4BaseSeed
	}
	return sim.DeriveSeed(fig4BaseSeed, rep)
}

// CutoverSeedFor returns replica rep's seed for the cutover comparison,
// anchored at the canonical cutoverSeed the same way.
func CutoverSeedFor(rep int) int64 {
	if rep == 0 {
		return cutoverSeed
	}
	return sim.DeriveSeed(cutoverSeed, rep)
}

// Fig4aParallel is the Fig. 4(a) sweep fanned out over a worker pool:
// every (QP count, replica) pair runs as an independent job, and each
// QP point reports its median-by-WBS replica row. reps=1, workers=1
// reproduces Fig4a exactly.
func Fig4aParallel(qps []int, reps, workers int) ([]Fig4Row, error) {
	if reps < 1 {
		reps = 1
	}
	type job struct{ point, rep int }
	var jobs []job
	for p := range qps {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{point: p, rep: r})
		}
	}
	rows := make([]Fig4Row, len(jobs))
	errs := make([]error, len(jobs))
	sim.RunIndexed(len(jobs), workers, func(i int) {
		j := jobs[i]
		rows[i], errs[i] = Fig4Seeded(qps[j.point], 4096, 1, Fig4SeedFor(j.rep))
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fig4a n=%d rep=%d: %w", qps[jobs[i].point], jobs[i].rep, err)
		}
	}
	out := make([]Fig4Row, 0, len(qps))
	for p := range qps {
		reprows := make([]Fig4Row, 0, reps)
		for i, j := range jobs {
			if j.point == p {
				reprows = append(reprows, rows[i])
			}
		}
		sort.Slice(reprows, func(a, b int) bool { return reprows[a].WBS < reprows[b].WBS })
		out = append(out, reprows[(len(reprows)-1)/2])
	}
	return out, nil
}

// CutoverComparisonCount is CutoverComparison with count replicas per
// (mode, size, qps) cell run across a worker pool; each cell reports
// its median-by-p99 replica row. count=1 reproduces the sequential
// comparison's rows.
func CutoverComparisonCount(sizes, qpCounts []int, messages, count, workers int) ([]CutoverRow, error) {
	if count < 1 {
		count = 1
	}
	modes := []runc.CutoverMode{runc.CutoverGoBackN, runc.CutoverPlugForward}
	type job struct {
		cell int // index into the grouped output order
		mode runc.CutoverMode
		sz   int
		qps  int
		rep  int
	}
	var jobs []job
	cells := 0
	for _, sz := range sizes {
		for _, qps := range qpCounts {
			for _, mode := range modes {
				for r := 0; r < count; r++ {
					jobs = append(jobs, job{cell: cells, mode: mode, sz: sz, qps: qps, rep: r})
				}
				cells++
			}
		}
	}
	rows := make([]CutoverRow, len(jobs))
	errs := make([]error, len(jobs))
	sim.RunIndexed(len(jobs), workers, func(i int) {
		j := jobs[i]
		rows[i], errs[i] = RunCutoverSeeded(j.mode, j.sz, j.qps, messages, CutoverSeedFor(j.rep))
	})
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return nil, fmt.Errorf("%v msg=%d qps=%d rep=%d: %w", j.mode, j.sz, j.qps, j.rep, err)
		}
	}
	out := make([]CutoverRow, 0, cells)
	for c := 0; c < cells; c++ {
		cellRows := make([]CutoverRow, 0, count)
		for i, j := range jobs {
			if j.cell == c {
				cellRows = append(cellRows, rows[i])
			}
		}
		sort.Slice(cellRows, func(a, b int) bool { return cellRows[a].P99 < cellRows[b].P99 })
		out = append(out, cellRows[(len(cellRows)-1)/2])
	}
	return out, nil
}
