package experiments

import (
	"math"
	"testing"

	"migrrdma/internal/hdfs"
)

// Golden shape tests for the experiment generators: they pin the
// structural properties every regenerated figure must keep
// (monotonicity, non-empty series, row ordering) without asserting
// exact values, mirroring fig3_test.go.

func TestFig4bShapeMonotoneInMsgSize(t *testing.T) {
	sizes := []int{1024, 16384, 65536}
	rows, err := Fig4b(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sizes) {
		t.Fatalf("%d rows for %d sizes", len(rows), len(sizes))
	}
	for i, r := range rows {
		t.Logf("%s", r)
		if r.MsgSize != sizes[i] {
			t.Fatalf("row %d is size %d, want %d", i, r.MsgSize, sizes[i])
		}
		if r.WBS <= 0 || r.Theory <= 0 || r.Blackout <= 0 {
			t.Fatalf("empty row: %s", r)
		}
	}
	// The in-flight window grows with message size, so both the theory
	// value (inflight/rate) and the measured WBS must be monotone.
	for i := 1; i < len(rows); i++ {
		if rows[i].Theory <= rows[i-1].Theory {
			t.Errorf("theory not monotone in msg size: %v then %v", rows[i-1].Theory, rows[i].Theory)
		}
		if rows[i].WBS <= rows[i-1].WBS {
			t.Errorf("WBS not monotone in msg size: %v then %v", rows[i-1].WBS, rows[i].WBS)
		}
	}
}

func TestFig4cShapeNonEmptySeries(t *testing.T) {
	partners := []int{1, 2, 3}
	rows, err := Fig4c(partners)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(partners) {
		t.Fatalf("%d rows for %d partner counts", len(rows), len(partners))
	}
	for i, r := range rows {
		t.Logf("%s", r)
		if r.Partners != partners[i] {
			t.Fatalf("row %d has %d partners, want %d", i, r.Partners, partners[i])
		}
		if r.WBS <= 0 || r.Theory <= 0 || r.Blackout <= 0 || r.Comm <= 0 {
			t.Fatalf("empty row: %s", r)
		}
		// Suspending every partner QP cannot beat the one-partner
		// theory floor of the same total window.
		if r.WBS > r.Theory*10 {
			t.Errorf("partners=%d WBS %v wildly above theory %v", r.Partners, r.WBS, r.Theory)
		}
	}
}

func TestFig5ShapeTimelineSeries(t *testing.T) {
	res, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if len(res.Samples) == 0 {
		t.Fatal("empty sample series")
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T <= res.Samples[i-1].T {
			t.Fatalf("sample timestamps not strictly increasing at %d: %v then %v",
				i, res.Samples[i-1].T, res.Samples[i].T)
		}
	}
	if res.MigStart <= 0 || res.MigEnd <= res.MigStart {
		t.Fatalf("migration window [%v, %v] malformed", res.MigStart, res.MigEnd)
	}
	if last := res.Samples[len(res.Samples)-1].T; last <= res.MigEnd {
		t.Fatalf("series ends at %v, before migration end %v — recovery not sampled", last, res.MigEnd)
	}
	if res.Report == nil {
		t.Fatal("no migration report attached")
	}
	// The timeline must actually show the dip: some sample inside the
	// migration window is below the pre-migration baseline.
	dipped := false
	for _, s := range res.Samples {
		if s.T >= res.MigStart && s.T <= res.MigEnd && s.Gbps < res.BaselineGbps/2 {
			dipped = true
			break
		}
	}
	if !dipped {
		t.Error("no throughput dip visible inside the migration window")
	}
}

func TestFig6ShapeEstimatePI(t *testing.T) {
	base, err := Fig6(hdfs.EstimatePI, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	mig, err := Fig6(hdfs.EstimatePI, "migrrdma")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", base)
	t.Logf("%s", mig)
	for _, r := range []Fig6Row{base, mig} {
		if r.JCT <= 0 {
			t.Fatalf("%s: empty JCT", r.Scenario)
		}
		// The job's output must survive migration intact: the Monte
		// Carlo estimate still converges to π.
		if math.Abs(r.Pi-math.Pi) > 0.2 {
			t.Errorf("%s: pi estimate %.4f drifted from π", r.Scenario, r.Pi)
		}
	}
	if mig.JCT < base.JCT {
		t.Errorf("migrated JCT %v below baseline %v", mig.JCT, base.JCT)
	}
}

func TestTable4ShapeRowOrder(t *testing.T) {
	rows := Table4()
	want := []string{"send", "recv", "write", "read"}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		t.Logf("%s", r)
		if r.Op != want[i] {
			t.Errorf("row %d is %q, want %q", i, r.Op, want[i])
		}
		if r.GoBaseNS <= 0 || r.AddedNS <= 0 {
			t.Errorf("%s: non-positive timings", r.Op)
		}
		if r.PaperBaseCycles <= 0 || r.PaperOverheadPct <= 0 {
			t.Errorf("%s: paper comparison columns empty", r.Op)
		}
	}
}
