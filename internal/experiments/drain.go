package experiments

import (
	"fmt"
	"sort"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/fabric"
	"migrrdma/internal/orchestrator"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
)

// This file is the datacenter drain experiment: a 16-rack × 8-host
// two-tier cluster (128 hosts, 2:1 oversubscribed spine) where a
// declarative Drain evacuates 32 hosts whose containers carry
// thousands of live QPs, and the blackout distribution is measured as
// a function of the orchestrator's MaxParallel and of what the
// placement policy can do: the half-racks variant drains the lower
// half of eight racks, leaving same-rack headroom the least-loaded
// policy should prefer, while the whole-racks variant drains four
// entire racks so every migration is forced over the spine.

// The drain-experiment topology.
const (
	DrainExpRacks        = 16
	DrainExpHostsPerRack = 8
	// DrainExpEvacuated hosts are drained in every variant.
	DrainExpEvacuated = 32
)

// Drain-experiment variants: which 32 hosts the selector matches.
const (
	// DrainHalfRacks drains h0..h3 of racks 0..7 — half of each rack,
	// so same-rack destinations exist and spare the spine.
	DrainHalfRacks = "half-racks"
	// DrainWholeRacks drains racks 0..3 entirely — no same-rack
	// destination survives, every move crosses the spine.
	DrainWholeRacks = "whole-racks"
)

// drainExpSeed anchors the experiment's determinism.
const drainExpSeed = 83

// DrainSeedFor returns replica rep's seed, anchored at the canonical
// drainExpSeed like the other replicated experiments.
func DrainSeedFor(rep int) int64 {
	if rep == 0 {
		return drainExpSeed
	}
	return sim.DeriveSeed(drainExpSeed, rep)
}

// drainExpSLO is the per-migration blackout objective the drain is
// submitted under; misses are recorded, not enforced.
const drainExpSLO = 200 * time.Millisecond

// DrainPoint is one (variant, MaxParallel) drain measurement.
type DrainPoint struct {
	Variant     string
	MaxParallel int
	// Migrations is the accepted count (one per drained host); QPs the
	// live queue pairs across all client/server endpoints at drain time.
	Migrations int
	QPs        int

	// Blackout percentiles across the drain's migrations.
	P50, P95, P99, Max time.Duration
	// Elapsed is drain submission to last migration done.
	Elapsed time.Duration

	// SameRackDst counts migrations placed inside their source rack;
	// the rest crossed the spine.
	SameRackDst int
	// SpineBytes is the uplink volume (both directions, all racks) the
	// drain window added; WireBytes the rnic transmit delta.
	SpineBytes int64
	WireBytes  int64
	SLOMisses  int
}

// String renders a table row.
func (p DrainPoint) String() string {
	return fmt.Sprintf("%-11s par=%-2d migs=%-3d qps=%-5d p50=%-9v p95=%-9v p99=%-9v max=%-9v elapsed=%-10v samerack=%d/%d spine=%dMB slo-miss=%d",
		p.Variant, p.MaxParallel, p.Migrations, p.QPs,
		p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
		p.P99.Round(time.Microsecond), p.Max.Round(time.Microsecond),
		p.Elapsed.Round(time.Microsecond),
		p.SameRackDst, p.Migrations, p.SpineBytes/(1<<20), p.SLOMisses)
}

// drainExpName is the canonical host name "r<rack>h<idx>".
func drainExpName(rack, idx int) string {
	return fmt.Sprintf("r%dh%d", rack, idx)
}

// drainExpTargets returns the variant's drained-host set.
func drainExpTargets(variant string) (map[string]bool, error) {
	set := make(map[string]bool, DrainExpEvacuated)
	switch variant {
	case DrainHalfRacks:
		for r := 0; r < 8; r++ {
			for h := 0; h < 4; h++ {
				set[drainExpName(r, h)] = true
			}
		}
	case DrainWholeRacks:
		for r := 0; r < 4; r++ {
			for h := 0; h < DrainExpHostsPerRack; h++ {
				set[drainExpName(r, h)] = true
			}
		}
	default:
		return nil, fmt.Errorf("drain: unknown variant %q (have %s, %s)",
			variant, DrainHalfRacks, DrainWholeRacks)
	}
	return set, nil
}

// RunDrainExp measures one (variant, MaxParallel) point at the
// canonical seed.
func RunDrainExp(variant string, maxParallel int) (DrainPoint, error) {
	return RunDrainExpSeeded(variant, maxParallel, drainExpSeed)
}

// RunDrainExpSeeded builds the 128-host two-tier cluster, starts one
// order-checked SEND client per drained host (its server eight racks
// over, so the steady-state workload itself crosses the spine), drains
// the variant's 32 hosts under MaxParallel, and reports the blackout
// distribution and the placement split.
func RunDrainExpSeeded(variant string, maxParallel int, seed int64) (DrainPoint, error) {
	targets, err := drainExpTargets(variant)
	if err != nil {
		return DrainPoint{}, err
	}
	cfg := cluster.FastCheckpointTestbed(seed)
	cfg.Fabric.Topology = fabric.Topology{
		Racks: DrainExpRacks, HostsPerRack: DrainExpHostsPerRack,
		// 2:1 rack oversubscription at the paper's 100 Gbps host links.
		UplinkRate: 200e9,
	}
	var names []string
	for rk := 0; rk < DrainExpRacks; rk++ {
		for h := 0; h < DrainExpHostsPerRack; h++ {
			names = append(names, drainExpName(rk, h))
		}
	}
	r := NewRigCfg(cfg, names...)
	cl := r.CL

	drained := make([]string, 0, len(targets))
	for n := range targets {
		drained = append(drained, n)
	}
	sort.Strings(drained)

	// Thousands of QPs: 32 clients × 32 QPs, mirrored server-side. The
	// post gap is deliberately lazy — the experiment measures drain
	// orchestration over a large *state* footprint, and a hot post rate
	// on 2048 QPs only inflates simulation cost without changing the
	// blackout story.
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 4, NumQPs: 32,
		Messages: 0, CheckOrder: true, PostGap: 500 * time.Microsecond,
	}
	pairs := make(map[string]*Pair, len(drained))
	for _, cNode := range drained {
		h := cl.Host(cNode)
		sNode := drainExpName((h.Rack+8)%DrainExpRacks, hostIdx(cNode))
		pairs[cNode] = r.StartPairNamed(cNode, sNode, "cli-"+cNode, "srv-"+cNode, opts)
	}

	orch := orchestrator.New(orchestrator.Config{
		CL: cl, Daemons: r.Daemons, Opts: runc.DefaultMigrateOptions(),
	})
	for _, cNode := range drained {
		orch.Register(orchestrator.Workload{C: pairs[cNode].ClientCont})
	}

	var (
		d       *orchestrator.Drain
		elapsed time.Duration
		spine   int64
		wire    int64
		done    bool
	)
	sched := cl.Sched
	sched.Go("drain-exp-driver", func() {
		for _, cNode := range drained {
			pairs[cNode].Client.WaitReady()
		}
		sched.Sleep(settle)
		before := cl.Metrics.Snapshot()
		spineBefore := before.Sum("fabric", "uplink_tx_bytes") + before.Sum("fabric", "uplink_rx_bytes")
		wireBefore := before.Sum("rnic", "tx_bytes")
		start := sched.Now()
		d = orch.Submit(&orchestrator.Drain{
			Selector:    func(h *cluster.Host) bool { return targets[h.Name] },
			BlackoutSLO: drainExpSLO,
			MaxParallel: maxParallel,
			Retries:     1,
		})
		d.Wait()
		elapsed = sched.Now() - start
		after := cl.Metrics.Snapshot()
		spine = after.Sum("fabric", "uplink_tx_bytes") + after.Sum("fabric", "uplink_rx_bytes") - spineBefore
		wire = after.Sum("rnic", "tx_bytes") - wireBefore
		// Drain a little post-cutover, then stop the workload.
		sched.Sleep(2 * time.Millisecond)
		for _, cNode := range drained {
			pairs[cNode].Client.Stop()
			pairs[cNode].Client.Wait()
			pairs[cNode].Server.Stop()
		}
		done = true
		// Everything is measured; don't let the horizon grind the parked
		// CQ pollers (they re-arm their wait slice at 10 kHz each, and
		// with 64 endpoints the idle tail would dwarf the drain itself).
		sched.Stop()
	})
	sched.RunFor(10 * time.Minute)
	if !done {
		return DrainPoint{}, fmt.Errorf("drain: %s par=%d did not complete", variant, maxParallel)
	}

	pt := DrainPoint{
		Variant: variant, MaxParallel: maxParallel,
		QPs:     2 * opts.NumQPs * len(drained),
		Elapsed: elapsed, SpineBytes: spine, WireBytes: wire,
	}
	var blackouts []time.Duration
	for _, m := range d.Migrations {
		if m.State() != orchestrator.Done {
			return DrainPoint{}, fmt.Errorf("drain: %s: state %s: %v", m.ID, m.State(), m.Err)
		}
		if targets[m.Dst] {
			return DrainPoint{}, fmt.Errorf("drain: %s placed on drained host %s", m.ID, m.Dst)
		}
		if cl.Host(m.Src).Rack == cl.Host(m.Dst).Rack {
			pt.SameRackDst++
		}
		if !m.SLOMet {
			pt.SLOMisses++
		}
		blackouts = append(blackouts, m.Blackout)
	}
	pt.Migrations = len(blackouts)
	if pt.Migrations != DrainExpEvacuated {
		return DrainPoint{}, fmt.Errorf("drain: %d migrations, want %d", pt.Migrations, DrainExpEvacuated)
	}
	for _, cNode := range drained {
		p := pairs[cNode]
		if len(p.Client.Stats.Errors) > 0 {
			return DrainPoint{}, fmt.Errorf("drain: client %s: %v", cNode, p.Client.Stats.Errors[0])
		}
		if len(p.Server.Stats.Errors) > 0 {
			return DrainPoint{}, fmt.Errorf("drain: server of %s: %v", cNode, p.Server.Stats.Errors[0])
		}
	}
	sort.Slice(blackouts, func(i, j int) bool { return blackouts[i] < blackouts[j] })
	pt.P50 = percentile(blackouts, 50)
	pt.P95 = percentile(blackouts, 95)
	pt.P99 = percentile(blackouts, 99)
	pt.Max = blackouts[len(blackouts)-1]
	return pt, nil
}

// DrainSweep measures both variants at every MaxParallel, whole racks
// after half racks so the table reads as a placement contrast.
func DrainSweep(parallels []int) ([]DrainPoint, error) {
	var pts []DrainPoint
	for _, variant := range []string{DrainHalfRacks, DrainWholeRacks} {
		for _, par := range parallels {
			pt, err := RunDrainExp(variant, par)
			if err != nil {
				return nil, fmt.Errorf("variant=%s par=%d: %w", variant, par, err)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// percentile reads the p-th percentile off a sorted sample
// (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// hostIdx parses the in-rack index off a "r<rack>h<idx>" name.
func hostIdx(name string) int {
	for i := 1; i < len(name); i++ {
		if name[i] == 'h' {
			n := 0
			for _, c := range name[i+1:] {
				n = n*10 + int(c-'0')
			}
			return n
		}
	}
	panic("drain: host name " + name + " is not r<rack>h<idx>")
}
