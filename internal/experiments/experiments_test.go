package experiments

import (
	"testing"
	"time"

	"migrrdma/internal/hdfs"
)

func TestFig4aTheoryShape(t *testing.T) {
	rows, err := Fig4a([]int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s", r)
		if r.Theory == 0 {
			t.Fatalf("zero theory value: %s", r)
		}
		// §5.4: measured ≤ theory for 4 KB messages (NIC already
		// completed part of the window), within polling slack.
		if r.WBS > r.Theory*3 {
			t.Errorf("WBS %v far above theory %v", r.WBS, r.Theory)
		}
	}
	if rows[1].WBS <= rows[0].WBS {
		t.Errorf("WBS did not grow with QPs: %v vs %v", rows[0].WBS, rows[1].WBS)
	}
}

func TestFig4bSmallMessagesCPUBound(t *testing.T) {
	rows, err := Fig4b([]int{512, 65536})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	t.Logf("small: %s", small)
	t.Logf("large: %s", large)
	ratioSmall := float64(small.WBS) / float64(small.Theory)
	ratioLarge := float64(large.WBS) / float64(large.Theory)
	// §5.4: at 512 B the CPU cost of completion processing dominates
	// (measured ≈ 6× theory); at large sizes the wire dominates.
	if ratioSmall < 2 {
		t.Errorf("512B WBS/theory = %.2f, want CPU-bound (≥2)", ratioSmall)
	}
	if ratioLarge > 2 {
		t.Errorf("64KB WBS/theory = %.2f, want wire-bound (≤2)", ratioLarge)
	}
}

func TestFig4cPartners(t *testing.T) {
	rows, err := Fig4c([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s", r)
	}
}

func TestFig5SenderTimeline(t *testing.T) {
	res, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if res.BaselineGbps < 50 {
		t.Errorf("baseline %.1f Gbps, want near line rate", res.BaselineGbps)
	}
	if res.ObservedBlackout == 0 {
		t.Error("no blackout observed in the timeline")
	}
	if res.ObservedBlackout > 2*time.Second {
		t.Errorf("blackout %v implausibly long", res.ObservedBlackout)
	}
	if res.RecoveredGbps < res.BaselineGbps/2 {
		t.Errorf("throughput did not recover: %.1f vs baseline %.1f", res.RecoveredGbps, res.BaselineGbps)
	}
}

func TestFig5ReceiverTimeline(t *testing.T) {
	res, err := Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	if res.ObservedBlackout == 0 {
		t.Error("no blackout observed")
	}
	if res.RecoveredGbps < res.BaselineGbps/2 {
		t.Errorf("throughput did not recover: %.1f vs %.1f", res.RecoveredGbps, res.BaselineGbps)
	}
}

func TestTable4OverheadBand(t *testing.T) {
	rows := Table4()
	for _, r := range rows {
		t.Logf("%s", r)
		if r.OverheadPct <= 0 {
			t.Errorf("%s: non-positive overhead", r.Op)
		}
		// The paper's band is 3–9% in C; Go's call/copy overheads put the
		// uncontended measurement around 15–35% here (see EXPERIMENTS.md
		// for the methodology). The structural claim — a small constant
		// per-op cost, independent of the number of MRs — is what must
		// hold; the bound below only guards against regressions that
		// reintroduce per-op allocation or list walks.
		if r.OverheadPct > 80 {
			t.Errorf("%s: overhead %.1f%% — translation is no longer O(1)-cheap", r.Op, r.OverheadPct)
		}
		if r.AddedNS > 100 {
			t.Errorf("%s: added %.1f ns per op — per-op allocation crept back in", r.Op, r.AddedNS)
		}
	}
}

func TestFig6MigrationBeatsFailover(t *testing.T) {
	base, err := Fig6(hdfs.TestDFSIO, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	mig, err := Fig6(hdfs.TestDFSIO, "migrrdma")
	if err != nil {
		t.Fatal(err)
	}
	fo, err := Fig6(hdfs.TestDFSIO, "failover")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", base)
	t.Logf("%s", mig)
	t.Logf("%s", fo)
	extraMig := mig.JCT - base.JCT
	extraFO := fo.JCT - base.JCT
	if extraMig <= 0 {
		t.Errorf("migration extra JCT %v should be positive", extraMig)
	}
	if extraFO < 4*extraMig {
		t.Errorf("failover extra %v not clearly worse than migration extra %v", extraFO, extraMig)
	}
	if mig.TputGbps <= fo.TputGbps {
		t.Errorf("migration Tput %.2f should beat failover %.2f", mig.TputGbps, fo.TputGbps)
	}
}

func TestAblationKeyTable(t *testing.T) {
	rows := AblationKeyTable([]int{64, 1024})
	for _, r := range rows {
		t.Logf("%s", r)
		if !r.Skewed && r.ListNS < r.ArrayNS {
			t.Errorf("MRs=%d uniform: list %0.1fns beat array %0.1fns", r.MRs, r.ListNS, r.ArrayNS)
		}
	}
}

func TestAblationWBSAndPartner(t *testing.T) {
	for _, r := range AblationWBS([]int{64, 1024}) {
		t.Logf("%s", r)
	}
	for _, r := range AblationPartnerPreSetup([]int{64, 1024}) {
		t.Logf("%s", r)
		if r.ResetReuseBlackout <= r.SpareQPBlackout {
			t.Error("reset-reuse should cost more blackout than spare QPs")
		}
	}
}

func TestAblationRKeyCache(t *testing.T) {
	row, err := AblationRKeyCache(300)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", row)
	if row.CachedOps <= row.UncachedOps {
		t.Errorf("cache should speed up one-sided ops: %.0f vs %.0f", row.CachedOps, row.UncachedOps)
	}
	if row.Fetches > 4 {
		t.Errorf("cached run fetched %d times, want ~1", row.Fetches)
	}
}

func TestMigrationUnderLossStillCorrect(t *testing.T) {
	row, err := MigrationUnderLoss(0.02, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", row)
	if row.Errors > 0 {
		t.Errorf("correctness errors under loss: %d", row.Errors)
	}
	if row.Completed != 2000*2 {
		t.Errorf("completed %d, want 4000", row.Completed)
	}
}

func TestMigrOSCompareRows(t *testing.T) {
	for _, r := range MigrOSCompare([]int{16, 256, 4096}) {
		t.Logf("%s", r)
		if r.MigrOS.Total() <= r.MigrRDMA.Total() {
			t.Error("MigrOS should have the longer blackout")
		}
	}
}
