package migmgr

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/perftest"
	"migrrdma/internal/rnic"
	"migrrdma/internal/runc"
	"migrrdma/internal/task"
)

// rig is a minimal in-package testbed: a cluster, one daemon per host,
// and helper state for perftest pairs. (The experiments package has a
// richer rig, but importing it here would be an import cycle —
// experiments builds on migmgr.)
type rig struct {
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
}

func newRig(seed int64, hosts ...string) *rig {
	cl := cluster.New(cluster.FastCheckpointTestbed(seed), hosts...)
	r := &rig{cl: cl, daemons: make(map[string]*core.Daemon)}
	for _, n := range hosts {
		r.daemons[n] = core.NewDaemon(cl.Host(n))
	}
	return r
}

type workload struct {
	cli  *perftest.Client
	srv  *perftest.Server
	cont *runc.Container
}

// startPair launches a perftest server on sNode and a client container
// on cNode, returning the client's container as the migration target.
func (r *rig) startPair(name, cNode, sNode string) *workload {
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 50 * time.Microsecond,
	}
	w := &workload{
		srv: perftest.NewServer(r.cl.Sched, "srv-"+name, opts),
		cli: perftest.NewClient(r.cl.Sched, "cli-"+name, opts, perftest.Target{Node: sNode, Name: "srv-" + name}),
	}
	srvCont := runc.NewContainer(r.cl.Host(sNode), "srv-"+name+"-cont")
	srvCont.Start(func(tp *task.Process) { w.srv.Run(tp, r.daemons[sNode]) })
	w.cont = runc.NewContainer(r.cl.Host(cNode), "cli-"+name+"-cont")
	r.cl.Sched.Go("start-"+name, func() {
		w.srv.WaitReady()
		w.cont.Start(func(tp *task.Process) { w.cli.Run(tp, r.daemons[cNode]) })
	})
	return w
}

// submit is the test-side Submit wrapper: none of these tests expect a
// conflict, so an ErrConflict here is itself a failure.
func submit(mgr *Manager, spec Spec) *Job {
	j, err := mgr.Submit(spec)
	if err != nil {
		panic(err)
	}
	return j
}

func (w *workload) stop() {
	w.cli.Stop()
	w.cli.Wait()
	w.srv.Stop()
}

// TestManagerCapAndQueueing submits four migrations under cap 2 and
// checks admission: sequential IDs, never more than two running at
// once, and a real queue wait for the jobs that had to queue.
func TestManagerCapAndQueueing(t *testing.T) {
	r := newRig(21, "a", "b", "s")
	var ws []*workload
	for i := 0; i < 4; i++ {
		ws = append(ws, r.startPair(fmt.Sprintf("p%d", i), "a", "s"))
	}
	mgr := New(r.cl, r.daemons, 2)
	ran := false
	r.cl.Sched.Go("driver", func() {
		for _, w := range ws {
			w.cli.WaitReady()
		}
		r.cl.Sched.Sleep(2 * time.Millisecond)
		for _, w := range ws {
			submit(mgr, Spec{C: w.cont, Dst: "b", Opts: runc.DefaultMigrateOptions()})
		}
		mgr.WaitAll()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		for _, w := range ws {
			w.stop()
		}
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}

	jobs := mgr.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("%d jobs, want 4", len(jobs))
	}
	for i, j := range jobs {
		want := fmt.Sprintf("m%d", i+1)
		if j.ID != want {
			t.Errorf("job %d ID = %s, want %s", i, j.ID, want)
		}
		if j.State() != Done {
			t.Errorf("%s state = %v (err %v), want done", j.ID, j.State(), j.Err)
		}
	}
	// The cap must hold at every job start: the starting job plus every
	// job already running at that instant may not exceed 2.
	for _, j := range jobs {
		running := 0
		for _, o := range jobs {
			if o.Started <= j.Started && j.Started < o.Finished {
				running++
			}
		}
		if running > 2 {
			t.Errorf("%d jobs running when %s started, cap is 2", running, j.ID)
		}
	}
	// All four were submitted together, so at least two had to queue
	// behind the first wave.
	queued := 0
	for _, j := range jobs {
		if j.QueueWait() > 0 {
			queued++
		}
	}
	if queued < 2 {
		t.Errorf("only %d jobs report a queue wait, want >= 2", queued)
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("migmgr", "completed"); got != 4 {
		t.Errorf("completed counter = %d, want 4", got)
	}
	for _, w := range ws {
		if len(w.cli.Stats.Errors) != 0 || len(w.srv.Stats.Errors) != 0 {
			t.Errorf("workload errors: cli=%v srv=%v", w.cli.Stats.Errors, w.srv.Stats.Errors)
		}
	}
}

// TestOppositeDirections is the satellite concurrency test: two client
// sessions whose containers migrate in opposite directions between the
// same two hosts at the same time, so each host is simultaneously a
// migration source and destination.
func TestOppositeDirections(t *testing.T) {
	r := newRig(22, "x", "y", "s")
	w1 := r.startPair("fwd", "x", "s")
	w2 := r.startPair("rev", "y", "s")
	mgr := New(r.cl, r.daemons, 2)
	var j1, j2 *Job
	ran := false
	r.cl.Sched.Go("driver", func() {
		w1.cli.WaitReady()
		w2.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		j1 = submit(mgr, Spec{C: w1.cont, Dst: "y", Opts: runc.DefaultMigrateOptions()})
		j2 = submit(mgr, Spec{C: w2.cont, Dst: "x", Opts: runc.DefaultMigrateOptions()})
		mgr.WaitAll()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w1.stop()
		w2.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	for _, j := range []*Job{j1, j2} {
		if j.State() != Done {
			t.Fatalf("%s state = %v (err %v)", j.ID, j.State(), j.Err)
		}
	}
	// The two migrations must genuinely overlap — that is the point.
	if j1.Finished <= j2.Started || j2.Finished <= j1.Started {
		t.Fatalf("migrations serialized: m1 [%v,%v] m2 [%v,%v]",
			j1.Started, j1.Finished, j2.Started, j2.Finished)
	}
	if n := w1.cli.Sess.Node(); n != "y" {
		t.Errorf("fwd client ended on %s, want y", n)
	}
	if n := w2.cli.Sess.Node(); n != "x" {
		t.Errorf("rev client ended on %s, want x", n)
	}
	// Each report's timeline carries its own migration ID.
	for _, j := range []*Job{j1, j2} {
		if j.Report == nil || j.Report.Timeline == nil {
			t.Fatalf("%s missing report timeline", j.ID)
		}
		if got := j.Report.Timeline.Label(); !strings.HasPrefix(got, j.ID+"/") {
			t.Errorf("%s timeline label = %q, want %s/<proc>", j.ID, got, j.ID)
		}
	}
}

// TestBusyContainerConflicts is the ErrConflict regression test: a
// second Spec naming the same source container while the first is
// still active must be rejected with the typed error (it used to
// silently queue behind the first), and a resubmission after the first
// finishes must drain from the container's new home (source resolved
// at start, not submission).
func TestBusyContainerConflicts(t *testing.T) {
	r := newRig(23, "x", "y", "s")
	w := r.startPair("rt", "x", "s")
	mgr := New(r.cl, r.daemons, 2)
	var there, back *Job
	ran := false
	r.cl.Sched.Go("driver", func() {
		w.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		there = submit(mgr, Spec{C: w.cont, Dst: "y", Opts: runc.DefaultMigrateOptions()})
		if _, err := mgr.Submit(Spec{C: w.cont, Dst: "x", Opts: runc.DefaultMigrateOptions()}); err != ErrConflict {
			t.Errorf("second submit of an active container: err = %v, want ErrConflict", err)
		}
		there.Wait()
		back = submit(mgr, Spec{C: w.cont, Dst: "x", Opts: runc.DefaultMigrateOptions()})
		mgr.WaitAll()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if there.State() != Done || back.State() != Done {
		t.Fatalf("states: %v (%v), %v (%v)", there.State(), there.Err, back.State(), back.Err)
	}
	if there.Src != "x" || back.Src != "y" {
		t.Fatalf("sources = %s, %s; want x then y (resolved at start time)", there.Src, back.Src)
	}
	if n := w.cli.Sess.Node(); n != "x" {
		t.Errorf("client ended on %s, want x after the round trip", n)
	}
}

// TestSubmitUnknownDestinationFails exercises the failure path: a job
// whose destination has no daemon must finish Failed with an error, and
// must not wedge the queue.
func TestSubmitUnknownDestinationFails(t *testing.T) {
	r := newRig(24, "x")
	cont := runc.NewContainer(r.cl.Host("x"), "idle-cont")
	mgr := New(r.cl, r.daemons, 1)
	ran := false
	r.cl.Sched.Go("driver", func() {
		j := submit(mgr, Spec{C: cont, Dst: "ghost", Opts: runc.DefaultMigrateOptions()})
		j.Wait()
		if j.State() != Failed {
			t.Errorf("state = %v, want failed", j.State())
		}
		if j.Err == nil || !strings.Contains(j.Err.Error(), "ghost") {
			t.Errorf("err = %v, want mention of missing daemon", j.Err)
		}
		ran = true
	})
	r.cl.Sched.RunFor(time.Second)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if got := r.cl.Metrics.Snapshot().Sum("migmgr", "failed"); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}

// TestFailedMigrationFreesSlot is the admission-slot regression test: a
// migration that aborts mid-workflow must release its slot so queued
// migrations behind it still run.
func TestFailedMigrationFreesSlot(t *testing.T) {
	r := newRig(25, "a", "b", "s")
	w1 := r.startPair("doomed", "a", "s")
	w2 := r.startPair("queued", "a", "s")
	mgr := New(r.cl, r.daemons, 1)
	var j1, j2 *Job
	ran := false
	r.cl.Sched.Go("driver", func() {
		w1.cli.WaitReady()
		w2.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		j1 = submit(mgr, Spec{C: w1.cont, Dst: "b", Opts: runc.DefaultMigrateOptions(),
			Inject: func(ph string) error {
				if ph == "suspend-wbs" {
					return fmt.Errorf("boom")
				}
				return nil
			}})
		j2 = submit(mgr, Spec{C: w2.cont, Dst: "b", Opts: runc.DefaultMigrateOptions()})
		mgr.WaitAll()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w1.stop()
		w2.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish — a leaked slot wedges the queue")
	}
	if j1.State() != Failed {
		t.Fatalf("doomed job state = %v (err %v), want failed", j1.State(), j1.Err)
	}
	if j1.Err == nil || !strings.Contains(j1.Err.Error(), "phase suspend-wbs") {
		t.Fatalf("doomed job err = %v, want phase suspend-wbs", j1.Err)
	}
	if j2.State() != Done {
		t.Fatalf("queued job state = %v (err %v), want done", j2.State(), j2.Err)
	}
	// The aborted workload rolled back to the source and kept going.
	if n := w1.cli.Sess.Node(); n != "a" {
		t.Errorf("doomed client ended on %s, want a (rolled back)", n)
	}
	if n := w2.cli.Sess.Node(); n != "b" {
		t.Errorf("queued client ended on %s, want b", n)
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("migmgr", "failed"); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
	if got := snap.Sum("migmgr", "completed"); got != 1 {
		t.Errorf("completed counter = %d, want 1", got)
	}
	if got := snap.Sum("migr", "migrations_aborted"); got != 1 {
		t.Errorf("migrations_aborted = %d, want 1", got)
	}
}

// TestRetryBudgetRequeues gives a job a retry budget and a fault that
// fires on the first two attempts: the job must requeue twice, succeed
// on the third attempt, and record the earlier failure in LastErr.
func TestRetryBudgetRequeues(t *testing.T) {
	r := newRig(26, "a", "b", "s")
	w := r.startPair("flaky", "a", "s")
	mgr := New(r.cl, r.daemons, 1)
	var j *Job
	ran := false
	r.cl.Sched.Go("driver", func() {
		w.cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		attempt := 0
		j = submit(mgr, Spec{C: w.cont, Dst: "b", Opts: runc.DefaultMigrateOptions(),
			Retries: 2,
			Inject: func(ph string) error {
				if ph == "predump" {
					attempt++
				}
				if ph == "suspend-wbs" && attempt <= 2 {
					return fmt.Errorf("boom on attempt %d", attempt)
				}
				return nil
			}})
		j.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		w.stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	if j.State() != Done {
		t.Fatalf("state = %v (err %v), want done after retries", j.State(), j.Err)
	}
	if j.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", j.Attempts)
	}
	if j.LastErr == nil || !strings.Contains(j.LastErr.Error(), "phase suspend-wbs") {
		t.Fatalf("LastErr = %v, want the aborted attempt's error", j.LastErr)
	}
	if n := w.cli.Sess.Node(); n != "b" {
		t.Errorf("client ended on %s, want b", n)
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("migmgr", "retried"); got != 2 {
		t.Errorf("retried counter = %d, want 2", got)
	}
	if got := snap.Sum("migmgr", "completed"); got != 1 {
		t.Errorf("completed counter = %d, want 1", got)
	}
	if got := snap.Sum("migmgr", "failed"); got != 0 {
		t.Errorf("failed counter = %d, want 0", got)
	}
	if got := snap.Sum("migr", "migrations_aborted"); got != 2 {
		t.Errorf("migrations_aborted = %d, want 2", got)
	}
}

// TestPlugForwardThroughManager submits a SERVER migration with the
// plug-and-forward cutover through the manager: the mode must thread
// from Spec.Opts down through the migrator's phase engine, buffer the
// client's blackout traffic in the destination plug, and leave no
// plug/forward residue on any daemon once the job is done.
func TestPlugForwardThroughManager(t *testing.T) {
	r := newRig(33, "src", "dst", "partner")
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 50 * time.Microsecond,
		// Deep ring: the plug cutover resumes partners before the thaw
		// completes, so posted receives must absorb that window.
		RecvDepth: 64,
	}
	srv := perftest.NewServer(r.cl.Sched, "srv", opts)
	cli := perftest.NewClient(r.cl.Sched, "cli", opts, perftest.Target{Node: "src", Name: "srv"})
	srvCont := runc.NewContainer(r.cl.Host("src"), "server")
	srvCont.Start(func(tp *task.Process) { srv.Run(tp, r.daemons["src"]) })
	cliCont := runc.NewContainer(r.cl.Host("partner"), "client")
	r.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(tp *task.Process) { cli.Run(tp, r.daemons["partner"]) })
	})

	mgr := New(r.cl, r.daemons, 1)
	mopts := runc.DefaultMigrateOptions()
	mopts.Cutover = runc.CutoverPlugForward
	ran := false
	r.cl.Sched.Go("driver", func() {
		cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		j := submit(mgr, Spec{C: srvCont, Dst: "dst", Opts: mopts})
		j.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		srv.Stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}

	jobs := mgr.Jobs()
	if len(jobs) != 1 || jobs[0].State() != Done {
		t.Fatalf("job state: %+v", jobs)
	}
	if len(cli.Stats.Errors) != 0 || len(srv.Stats.Errors) != 0 {
		t.Fatalf("workload errors: cli=%v srv=%v", cli.Stats.Errors, srv.Stats.Errors)
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("fabric", "plug_buffered_packets"); got == 0 {
		t.Error("plug buffered nothing; the cutover never exercised the plug")
	}
	for n, d := range r.daemons {
		if d.PlugActive() {
			t.Errorf("daemon %s still holds a plug after the migration", n)
		}
		if d.ForwardActive() {
			t.Errorf("daemon %s still forwards after the migration", n)
		}
	}
}

// TestPipelinedTransferThroughManager submits a SERVER migration with
// the pipelined page channel through the manager: the transfer mode
// must thread from Spec.Opts down through the migrator's phase engine,
// stream the image in rounds (the report carries per-round stats), and
// leave no staged chunks on the destination once the job is done.
func TestPipelinedTransferThroughManager(t *testing.T) {
	r := newRig(34, "src", "dst", "partner")
	opts := perftest.Options{
		Verb: rnic.OpSend, MsgSize: 2048, QueueDepth: 8, NumQPs: 2,
		Messages: 0, CheckOrder: true, PostGap: 50 * time.Microsecond,
		RecvDepth: 64,
	}
	srv := perftest.NewServer(r.cl.Sched, "srv", opts)
	cli := perftest.NewClient(r.cl.Sched, "cli", opts, perftest.Target{Node: "src", Name: "srv"})
	srvCont := runc.NewContainer(r.cl.Host("src"), "server")
	srvCont.Start(func(tp *task.Process) { srv.Run(tp, r.daemons["src"]) })
	cliCont := runc.NewContainer(r.cl.Host("partner"), "client")
	r.cl.Sched.Go("start-client", func() {
		srv.WaitReady()
		cliCont.Start(func(tp *task.Process) { cli.Run(tp, r.daemons["partner"]) })
	})

	mgr := New(r.cl, r.daemons, 1)
	mopts := runc.DefaultMigrateOptions()
	mopts.Transfer = runc.TransferPipelined
	ran := false
	r.cl.Sched.Go("driver", func() {
		cli.WaitReady()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		j := submit(mgr, Spec{C: srvCont, Dst: "dst", Opts: mopts})
		j.Wait()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		cli.Stop()
		cli.Wait()
		srv.Stop()
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}

	jobs := mgr.Jobs()
	if len(jobs) != 1 || jobs[0].State() != Done {
		t.Fatalf("job state: %+v", jobs)
	}
	if len(cli.Stats.Errors) != 0 || len(srv.Stats.Errors) != 0 {
		t.Fatalf("workload errors: cli=%v srv=%v", cli.Stats.Errors, srv.Stats.Errors)
	}
	rep := jobs[0].Report
	if rep == nil {
		t.Fatal("job has no report")
	}
	if len(rep.Rounds) < 2 {
		t.Errorf("report has %d streamed rounds, want >= 2 (predump + final)", len(rep.Rounds))
	}
	if rep.FinalWireBytes <= 0 || rep.WireBytes <= rep.FinalWireBytes {
		t.Errorf("wire accounting: final=%d total=%d, want 0 < final < total",
			rep.FinalWireBytes, rep.WireBytes)
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("pagechan", "staged_chunks"); got != 0 {
		t.Errorf("%d staged chunks left on the destination after the job", got)
	}
	if got := snap.Sum("pagechan", "chunks_sent"); got == 0 {
		t.Error("no chunks went over the page channel; the transfer mode never threaded through")
	}
}

// TestSlotBalanceAcrossAbortRetry pins the admission-slot accounting
// under abort+retry contention: every attempt acquires the slot exactly
// once and releases it exactly once, so the observed running count never
// exceeds the cap and never goes negative (a double release on the
// abort+requeue path would free a phantom slot and over-admit the
// backlog). Three flaky jobs share a cap of 1, each aborting its first
// attempt, so requeues interleave with fresh admissions.
func TestSlotBalanceAcrossAbortRetry(t *testing.T) {
	r := newRig(28, "a", "b", "s")
	var ws []*workload
	for i := 0; i < 3; i++ {
		ws = append(ws, r.startPair(fmt.Sprintf("f%d", i), "a", "s"))
	}
	mgr := New(r.cl, r.daemons, 1)
	minRunning, maxRunning := 0, 0
	mgr.OnStage = func(j *Job, stage string) {
		if mgr.running < minRunning {
			minRunning = mgr.running
		}
		if mgr.running > maxRunning {
			maxRunning = mgr.running
		}
	}
	ran := false
	r.cl.Sched.Go("driver", func() {
		for _, w := range ws {
			w.cli.WaitReady()
		}
		r.cl.Sched.Sleep(2 * time.Millisecond)
		for i, w := range ws {
			attempt := 0
			submit(mgr, Spec{C: w.cont, Dst: "b", Opts: runc.DefaultMigrateOptions(),
				Retries: 1,
				Inject: func(ph string) error {
					if ph == "predump" {
						attempt++
					}
					if ph == "suspend-wbs" && attempt == 1 {
						return fmt.Errorf("first-attempt abort (job %d)", i)
					}
					return nil
				}})
		}
		mgr.WaitAll()
		r.cl.Sched.Sleep(2 * time.Millisecond)
		for _, w := range ws {
			w.stop()
		}
		ran = true
	})
	r.cl.Sched.RunFor(time.Minute)
	if !ran {
		t.Fatal("driver did not finish")
	}
	for _, j := range mgr.Jobs() {
		if j.State() != Done {
			t.Errorf("%s state = %v (err %v), want done", j.ID, j.State(), j.Err)
		}
		if j.Attempts != 2 {
			t.Errorf("%s attempts = %d, want 2 (one abort, one retry)", j.ID, j.Attempts)
		}
	}
	if minRunning < 0 {
		t.Errorf("running count went negative (%d): a slot was released twice", minRunning)
	}
	if maxRunning > 1 {
		t.Errorf("running count hit %d under cap 1: a release was double-counted as capacity", maxRunning)
	}
	if mgr.running != 0 || len(mgr.busy) != 0 {
		t.Errorf("after drain: running=%d busy=%d, want 0/0", mgr.running, len(mgr.busy))
	}
	snap := r.cl.Metrics.Snapshot()
	if got := snap.Sum("migmgr", "retried"); got != 3 {
		t.Errorf("retried counter = %d, want 3", got)
	}
	if got := snap.Sum("migmgr", "completed"); got != 3 {
		t.Errorf("completed counter = %d, want 3", got)
	}
}
