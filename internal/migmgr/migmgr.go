// Package migmgr is the cluster-level migration manager: the cloud
// manager role of §4 scaled past the paper's one-at-a-time testbed. It
// admits container migrations under a configurable concurrency cap,
// queues the rest, assigns each migration a stable ID ("m1", "m2", …)
// and threads it through the Migrator so overlapping runs stay
// distinguishable in daemon state, trace timelines, and metrics labels.
package migmgr

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"migrrdma/internal/cluster"
	"migrrdma/internal/core"
	"migrrdma/internal/metrics"
	"migrrdma/internal/runc"
	"migrrdma/internal/sim"
)

// queueWaitBucketsUS are the histogram bounds (µs) for admission queue
// wait times: sub-millisecond when the cap is generous, up to whole
// migration durations when drains pile up.
var queueWaitBucketsUS = []int64{100, 1000, 10000, 100000, 1000000, 10000000}

// State is a job's lifecycle position.
type State int

const (
	Queued State = iota
	Running
	Done
	Failed
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Spec describes one requested container migration. The source host is
// read from the container at start time (not submission time), so a
// container that was itself just migrated drains from wherever it
// currently lives.
type Spec struct {
	C    *runc.Container
	Dst  string
	Opts runc.MigrateOptions
	// ExtraPlugs is the number of additional RDMA-holding processes in
	// the container beyond the first (see runc.Migrator.ExtraPlugs).
	ExtraPlugs int
	// Retries is the number of times a failed (aborted and rolled back)
	// migration is requeued before the job is marked Failed.
	Retries int
	// Inject is threaded through to runc.Migrator.Inject — the per-phase
	// fault hook used by tests and the chaos harness.
	Inject func(phase string) error
}

// Job tracks one submitted migration through the manager.
type Job struct {
	ID   string
	Spec Spec

	mgr   *Manager
	state State
	// Stage mirrors the underlying Migrator.Stage while running.
	Stage string
	// Src is the source host name, resolved when the job starts.
	Src string

	Submitted, Started, Finished time.Duration

	// Attempts counts migration attempts, including the one in flight.
	Attempts int
	// LastErr is the most recent attempt's error; set even when a retry
	// later succeeds, so callers can see a job recovered from an abort.
	LastErr error

	Report *runc.Report
	Err    error
}

// State returns the job's lifecycle position.
func (j *Job) State() State { return j.state }

// QueueWait is the admission delay: start time minus submission time.
func (j *Job) QueueWait() time.Duration { return j.Started - j.Submitted }

// Wait parks the calling proc until the job finished (Done or Failed).
func (j *Job) Wait() {
	for j.state != Done && j.state != Failed {
		j.mgr.changed.Wait()
	}
}

// ErrConflict rejects a Submit whose container already has an active
// (queued or running) migration in this manager. A container can only
// be drained once at a time; callers that want a follow-up move must
// wait for the active job to finish.
var ErrConflict = errors.New("migmgr: container already has an active migration")

// Manager admits migrations under a concurrency cap.
type Manager struct {
	sched   *sim.Scheduler
	cl      *cluster.Cluster
	daemons map[string]*core.Daemon
	max     int

	nextID  int
	queue   []*Job
	jobs    []*Job
	running int
	// busy guards against two concurrent migrations of one container.
	busy    map[*runc.Container]bool
	changed *sim.Cond

	mActive    *metrics.Gauge
	mQueued    *metrics.Gauge
	mSubmitted *metrics.Counter
	mCompleted *metrics.Counter
	mFailed    *metrics.Counter

	// OnStage, when set, observes every stage transition of every
	// managed migration; it runs on the migration's driver proc.
	OnStage func(j *Job, stage string)

	// IDPrefix, when set before the first Submit, prefixes every job ID
	// ("r0h1/" ⇒ "r0h1/m1"). The orchestrator runs one executor per
	// source host and needs their IDs — which flow into daemon state,
	// timeline labels and metric labels — to stay distinguishable.
	IDPrefix string
}

// New creates a manager over the cluster's daemons admitting at most
// max concurrent migrations (max <= 0 means 1).
func New(cl *cluster.Cluster, daemons map[string]*core.Daemon, max int) *Manager {
	if max <= 0 {
		max = 1
	}
	m := &Manager{
		sched:   cl.Sched,
		cl:      cl,
		daemons: daemons,
		max:     max,
		busy:    make(map[*runc.Container]bool),
		changed: sim.NewCond(cl.Sched, "migmgr"),
	}
	if reg := cl.Metrics; reg != nil {
		m.mActive = reg.Gauge("migmgr", "active", nil)
		m.mQueued = reg.Gauge("migmgr", "queued", nil)
		m.mSubmitted = reg.Counter("migmgr", "submitted", nil)
		m.mCompleted = reg.Counter("migmgr", "completed", nil)
		m.mFailed = reg.Counter("migmgr", "failed", nil)
	}
	return m
}

// Submit enqueues a migration and returns its job. IDs are assigned in
// submission order per manager ("m1", "m2", …) — deterministic under a
// fixed schedule, unlike a process-global counter. A container with a
// migration already queued or running is rejected with ErrConflict
// rather than silently queued behind it.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if m.busy[spec.C] {
		return nil, ErrConflict
	}
	for _, q := range m.queue {
		if q.Spec.C == spec.C {
			return nil, ErrConflict
		}
	}
	m.nextID++
	j := &Job{
		ID:        m.IDPrefix + "m" + strconv.Itoa(m.nextID),
		Spec:      spec,
		mgr:       m,
		state:     Queued,
		Submitted: m.sched.Now(),
	}
	m.jobs = append(m.jobs, j)
	m.queue = append(m.queue, j)
	if m.mSubmitted != nil {
		m.mSubmitted.Inc()
		m.mQueued.Set(int64(len(m.queue)))
	}
	m.pump()
	return j, nil
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	out := make([]*Job, len(m.jobs))
	copy(out, m.jobs)
	return out
}

// WaitAll parks until every submitted job finished.
func (m *Manager) WaitAll() {
	for {
		pending := false
		for _, j := range m.jobs {
			if j.state == Queued || j.state == Running {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
		m.changed.Wait()
	}
}

// pump starts queued jobs while capacity allows. A job whose container
// is already migrating is skipped (it stays queued, later jobs may
// overtake it) — Submit rejects such conflicts up front, so this guard
// only matters for the internal abort-retry requeue path.
func (m *Manager) pump() {
	for i := 0; i < len(m.queue) && m.running < m.max; {
		j := m.queue[i]
		if m.busy[j.Spec.C] {
			i++
			continue
		}
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		m.start(j)
	}
	if m.mQueued != nil {
		m.mQueued.Set(int64(len(m.queue)))
	}
}

// start launches a job's migration on its own proc.
func (m *Manager) start(j *Job) {
	m.running++
	m.busy[j.Spec.C] = true
	j.state = Running
	j.Started = m.sched.Now()
	j.Src = j.Spec.C.Host.Name
	if m.mActive != nil {
		m.mActive.Set(int64(m.running))
		m.cl.Metrics.Histogram("migmgr", "queue_wait_us", metrics.Labels{"mig": j.ID}, queueWaitBucketsUS).
			Observe(j.QueueWait().Microseconds())
	}
	m.sched.Go("migmgr/"+j.ID, func() {
		j.Attempts++
		j.Report, j.Err = m.migrate(j)
		j.Finished = m.sched.Now()
		// Release the admission slot and the container unconditionally:
		// every exit path — success, terminal failure, or requeue —
		// frees capacity so queued migrations keep draining.
		m.running--
		delete(m.busy, j.Spec.C)
		switch {
		case j.Err == nil:
			j.state = Done
			if m.mCompleted != nil {
				m.mCompleted.Inc()
			}
		case j.Attempts <= j.Spec.Retries:
			// The migration aborted and rolled back; spend one unit of
			// the retry budget and requeue behind the current backlog.
			j.LastErr = j.Err
			j.Err = nil
			j.state = Queued
			m.queue = append(m.queue, j)
			// Created lazily so migrations that never retry leave the
			// registry — and the chaos golden hashes — untouched.
			if reg := m.cl.Metrics; reg != nil {
				reg.Counter("migmgr", "retried", nil).Inc()
			}
		default:
			j.LastErr = j.Err
			j.state = Failed
			if m.mFailed != nil {
				m.mFailed.Inc()
			}
		}
		if m.mActive != nil {
			m.mActive.Set(int64(m.running))
		}
		m.pump()
		m.changed.Broadcast()
	})
}

// migrate builds the Migrator for a job and runs it.
func (m *Manager) migrate(j *Job) (*runc.Report, error) {
	srcD, ok := m.daemons[j.Src]
	if !ok {
		return nil, fmt.Errorf("migmgr: no daemon on source host %s", j.Src)
	}
	dstD, ok := m.daemons[j.Spec.Dst]
	if !ok {
		return nil, fmt.Errorf("migmgr: no daemon on destination host %s", j.Spec.Dst)
	}
	mig := &runc.Migrator{
		ID:     j.ID,
		C:      j.Spec.C,
		Dst:    m.cl.Host(j.Spec.Dst),
		Plug:   core.NewPlugin(srcD, dstD),
		Opts:   j.Spec.Opts,
		Inject: j.Spec.Inject,
	}
	for i := 0; i < j.Spec.ExtraPlugs; i++ {
		mig.ExtraPlugs = append(mig.ExtraPlugs, core.NewPlugin(srcD, dstD))
	}
	mig.OnStage = func(stage string) {
		j.Stage = stage
		if m.OnStage != nil {
			m.OnStage(j, stage)
		}
	}
	return mig.Migrate()
}
