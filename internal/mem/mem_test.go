package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x10000, 8192, "buf"); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello across a page boundary")
	if err := as.Write(0x10000+PageSize-10, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(0x10000+PageSize-10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestUnmappedFaults(t *testing.T) {
	as := NewAddressSpace()
	err := as.Write(0x5000, []byte{1})
	if _, ok := err.(*FaultError); !ok {
		t.Fatalf("err = %v, want FaultError", err)
	}
	as.Map(0x5000, PageSize, "one")
	// Access spilling past the end of the mapping must fault.
	if err := as.Write(0x5000+PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("cross-boundary write into unmapped page succeeded")
	}
}

func TestMapOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x10000, 4*PageSize, "a")
	if _, err := as.Map(0x10000+2*PageSize, PageSize, "b"); err == nil {
		t.Fatal("overlapping map succeeded")
	}
	if _, err := as.Map(0x10000+4*PageSize, PageSize, "b"); err != nil {
		t.Fatalf("adjacent map failed: %v", err)
	}
}

func TestMapAnywhereSkipsGaps(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x2000, PageSize, "a")
	as.Map(0x4000, PageSize, "b")
	v, err := as.MapAnywhere(0x1000, 2*PageSize, "c")
	if err != nil {
		t.Fatal(err)
	}
	if v.Start != 0x5000 {
		t.Fatalf("placed at %#x, want 0x5000 (first gap of 2 pages)", uint64(v.Start))
	}
}

func TestUnmapDiscardsPages(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x8000, PageSize, "a")
	as.Write(0x8000, []byte{42})
	as.Unmap(0x8000)
	as.Map(0x8000, PageSize, "a2")
	var b [1]byte
	as.Read(0x8000, b[:])
	if b[0] != 0 {
		t.Fatal("page content survived unmap")
	}
}

func TestRemapKeepsContents(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x100000, 3*PageSize, "tmp")
	as.Write(0x100000+123, []byte("payload"))
	if err := as.Remap(0x100000, 0x700000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := as.Read(0x700000+123, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("after remap read %q", got)
	}
	if as.Mapped(0x100000, 1) {
		t.Fatal("old range still mapped after remap")
	}
}

func TestRemapRejectsCollision(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x100000, PageSize, "src")
	as.Map(0x200000, PageSize, "obstacle")
	if err := as.Remap(0x100000, 0x200000); err == nil {
		t.Fatal("remap onto an existing mapping succeeded")
	}
}

func TestDirtyTracking(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x10000, 4*PageSize, "buf")
	as.Write(0x10000, []byte{1})
	as.Write(0x10000+2*PageSize, []byte{1})
	d := as.DirtyPages()
	if len(d) != 2 || d[0] != 0x10000 || d[1] != 0x10000+2*PageSize {
		t.Fatalf("dirty = %#v", d)
	}
	as.ClearDirty()
	if len(as.DirtyPages()) != 0 {
		t.Fatal("dirty set survived ClearDirty")
	}
	// WriteClean must not re-dirty.
	as.WriteClean(0x10000, []byte{2})
	if len(as.DirtyPages()) != 0 {
		t.Fatal("WriteClean marked a page dirty")
	}
	var b [1]byte
	as.Read(0x10000, b[:])
	if b[0] != 2 {
		t.Fatal("WriteClean did not write")
	}
}

func TestU64RoundTrip(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x10000, PageSize, "buf")
	if err := as.WriteU64(0x10008, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(0x10008)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafe {
		t.Fatalf("got %#x", v)
	}
}

func TestFindVMA(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x10000, 2*PageSize, "a")
	as.Map(0x40000, PageSize, "b")
	if v := as.FindVMA(0x10000 + PageSize); v == nil || v.Name != "a" {
		t.Fatalf("FindVMA inside a = %v", v)
	}
	if v := as.FindVMA(0x30000); v != nil {
		t.Fatalf("FindVMA in gap = %v", v)
	}
	if v := as.FindVMA(0x40000 + PageSize - 1); v == nil || v.Name != "b" {
		t.Fatalf("FindVMA at end of b = %v", v)
	}
}

// TestPropWriteReadRoundTrip checks that any write inside a mapping is
// read back identically, at arbitrary offsets and lengths.
func TestPropWriteReadRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	const base, size = Addr(0x100000), uint64(64 * PageSize)
	as.Map(base, size, "arena")
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := base + Addr(uint64(off)%(size-uint64(len(data))))
		if err := as.Write(a, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := as.Read(a, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDirtyCoversWrites checks that after ClearDirty, every written
// byte lies in some dirty page.
func TestPropDirtyCoversWrites(t *testing.T) {
	f := func(offs []uint16) bool {
		as := NewAddressSpace()
		const base, size = Addr(0x100000), uint64(16 * PageSize)
		as.Map(base, size, "arena")
		as.ClearDirty()
		want := map[Addr]bool{}
		for _, o := range offs {
			a := base + Addr(uint64(o)%size)
			as.Write(a, []byte{1})
			want[PageFloor(a)] = true
		}
		got := map[Addr]bool{}
		for _, a := range as.DirtyPages() {
			got[a] = true
		}
		if len(got) != len(want) {
			return false
		}
		for a := range want {
			if !got[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRemapPreservesBytes checks mremap keeps every byte.
func TestPropRemapPreservesBytes(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{7}
		}
		if len(data) > 3*PageSize {
			data = data[:3*PageSize]
		}
		as := NewAddressSpace()
		as.Map(0x10000, 4*PageSize, "src")
		as.Write(0x10000, data)
		if err := as.Remap(0x10000, 0x900000); err != nil {
			return false
		}
		got := make([]byte, len(data))
		as.Read(0x900000, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
