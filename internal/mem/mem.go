// Package mem models per-process virtual memory: page-granular address
// spaces with mmap/mremap/munmap equivalents and dirty-page tracking.
//
// It is the substrate for two behaviours that drive MigrRDMA's design
// (paper §3.2): CRIU's iterative pre-copy needs dirty diffs between
// rounds, and CRIU's habit of restoring memory at a *temporary* virtual
// address is what makes MR registration during partial restore hard —
// the RNIC must be given the application's original virtual addresses.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the page granularity of every address space.
const PageSize = 4096

// Addr is a virtual address.
type Addr uint64

// PageFloor rounds a down to a page boundary.
func PageFloor(a Addr) Addr { return a &^ (PageSize - 1) }

// PageCeil rounds n up to a whole number of pages.
func PageCeil(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// VMA is a mapped virtual memory area.
type VMA struct {
	Start Addr
	Len   uint64 // always a multiple of PageSize
	Name  string // diagnostic label ("heap", "mr-buffer", "criu-temp", ...)
	// Device marks NIC on-chip memory mapped into the address space
	// (ibv_alloc_dm); CRIU must not dump or restore its contents.
	Device bool
}

// End returns the first address past the area.
func (v VMA) End() Addr { return v.Start + Addr(v.Len) }

// Contains reports whether [a, a+n) lies inside the area.
func (v VMA) Contains(a Addr, n uint64) bool {
	return a >= v.Start && a+Addr(n) <= v.End() && a+Addr(n) >= a
}

// FaultError reports an access to unmapped memory.
type FaultError struct {
	Addr Addr
	Op   string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mem: %s fault at %#x (unmapped)", e.Op, uint64(e.Addr))
}

type page struct {
	data  []byte // nil until first write (zero page)
	dirty bool
}

// AddressSpace is one process's virtual memory.
type AddressSpace struct {
	vmas  []*VMA // sorted by Start
	pages map[Addr]*page
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[Addr]*page)}
}

// Map establishes a VMA at an explicit address. start must be
// page-aligned; length is rounded up to whole pages. Overlap with an
// existing mapping is an error (the simulation has no MAP_FIXED
// clobbering).
func (as *AddressSpace) Map(start Addr, length uint64, name string) (*VMA, error) {
	return as.mapVMA(start, length, name, false)
}

// MapDevice establishes a device-memory VMA (on-chip memory).
func (as *AddressSpace) MapDevice(start Addr, length uint64, name string) (*VMA, error) {
	return as.mapVMA(start, length, name, true)
}

func (as *AddressSpace) mapVMA(start Addr, length uint64, name string, dev bool) (*VMA, error) {
	if start%PageSize != 0 {
		return nil, fmt.Errorf("mem: map at unaligned address %#x", uint64(start))
	}
	if length == 0 {
		return nil, fmt.Errorf("mem: map of zero length")
	}
	length = PageCeil(length)
	if as.overlaps(start, length) {
		return nil, fmt.Errorf("mem: map [%#x,+%#x) overlaps existing mapping", uint64(start), length)
	}
	v := &VMA{Start: start, Len: length, Name: name, Device: dev}
	as.insert(v)
	return v, nil
}

// MapAnywhere maps length bytes at the lowest page-aligned gap at or
// above hint.
func (as *AddressSpace) MapAnywhere(hint Addr, length uint64, name string) (*VMA, error) {
	return as.mapAnywhere(hint, length, name, false)
}

// MapAnywhereDevice is MapAnywhere for device memory (on-chip NIC
// memory mapped into the process); CRIU does not dump its content.
func (as *AddressSpace) MapAnywhereDevice(hint Addr, length uint64, name string) (*VMA, error) {
	return as.mapAnywhere(hint, length, name, true)
}

func (as *AddressSpace) mapAnywhere(hint Addr, length uint64, name string, dev bool) (*VMA, error) {
	length = PageCeil(length)
	start := PageFloor(hint)
	if start < PageSize {
		start = PageSize // never map the zero page
	}
	for _, v := range as.vmas {
		if v.Start >= start+Addr(length) {
			break
		}
		if v.End() > start {
			start = v.End()
		}
	}
	return as.mapVMA(start, length, name, dev)
}

// Unmap removes the VMA starting exactly at start, discarding its pages.
func (as *AddressSpace) Unmap(start Addr) error {
	for i, v := range as.vmas {
		if v.Start == start {
			for a := v.Start; a < v.End(); a += PageSize {
				delete(as.pages, a)
			}
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("mem: unmap: no mapping at %#x", uint64(start))
}

// Remap moves the VMA at old to new, carrying the backing pages with it
// (the semantics of mremap(MREMAP_FIXED): the virtual address changes,
// the physical contents do not). Dirty state travels with the pages.
func (as *AddressSpace) Remap(old, new Addr) error {
	if new%PageSize != 0 {
		return fmt.Errorf("mem: remap to unaligned address %#x", uint64(new))
	}
	var v *VMA
	for _, c := range as.vmas {
		if c.Start == old {
			v = c
			break
		}
	}
	if v == nil {
		return fmt.Errorf("mem: remap: no mapping at %#x", uint64(old))
	}
	if new == old {
		return nil
	}
	// Check the destination range is free (ignoring the source itself).
	for _, c := range as.vmas {
		if c == v {
			continue
		}
		if new < c.End() && c.Start < new+Addr(v.Len) {
			return fmt.Errorf("mem: remap destination [%#x,+%#x) overlaps %s", uint64(new), v.Len, c.Name)
		}
	}
	moved := make(map[Addr]*page, v.Len/PageSize)
	for off := Addr(0); off < Addr(v.Len); off += PageSize {
		if pg, ok := as.pages[v.Start+off]; ok {
			moved[new+off] = pg
			delete(as.pages, v.Start+off)
		}
	}
	for a, pg := range moved {
		as.pages[a] = pg
	}
	v.Start = new
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return nil
}

// FindVMA returns the VMA containing a, or nil.
func (as *AddressSpace) FindVMA(a Addr) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > a })
	if i < len(as.vmas) && as.vmas[i].Contains(a, 0) && a >= as.vmas[i].Start {
		return as.vmas[i]
	}
	return nil
}

// VMAs returns the current mappings in address order. The returned slice
// is a copy; the VMA pointers are live.
func (as *AddressSpace) VMAs() []*VMA {
	out := make([]*VMA, len(as.vmas))
	copy(out, as.vmas)
	return out
}

// Mapped reports whether the whole range [a, a+n) is mapped.
func (as *AddressSpace) Mapped(a Addr, n uint64) bool {
	for n > 0 {
		v := as.FindVMA(a)
		if v == nil {
			return false
		}
		span := uint64(v.End() - a)
		if span >= n {
			return true
		}
		a, n = v.End(), n-span
	}
	return true
}

// Read copies len(buf) bytes at a into buf.
func (as *AddressSpace) Read(a Addr, buf []byte) error {
	return as.access(a, buf, false, true)
}

// Write copies buf to a, marking touched pages dirty.
func (as *AddressSpace) Write(a Addr, buf []byte) error {
	return as.access(a, buf, true, true)
}

// WriteClean copies buf to a without marking pages dirty. CRIU's restore
// path uses it so a freshly restored image starts with a clean dirty set.
func (as *AddressSpace) WriteClean(a Addr, buf []byte) error {
	return as.access(a, buf, true, false)
}

func (as *AddressSpace) access(a Addr, buf []byte, write, markDirty bool) error {
	op := "read"
	if write {
		op = "write"
	}
	for off := 0; off < len(buf); {
		pa := PageFloor(a + Addr(off))
		if as.FindVMA(pa) == nil {
			return &FaultError{Addr: a + Addr(off), Op: op}
		}
		pg := as.pages[pa]
		inPage := int(a + Addr(off) - pa)
		n := PageSize - inPage
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if write {
			if pg == nil {
				pg = &page{data: make([]byte, PageSize)}
				as.pages[pa] = pg
			} else if pg.data == nil {
				pg.data = make([]byte, PageSize)
			}
			copy(pg.data[inPage:inPage+n], buf[off:off+n])
			if markDirty {
				pg.dirty = true
			}
		} else {
			if pg == nil || pg.data == nil {
				for i := off; i < off+n; i++ {
					buf[i] = 0
				}
			} else {
				copy(buf[off:off+n], pg.data[inPage:inPage+n])
			}
		}
		off += n
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit value (used by ATOMIC verbs).
func (as *AddressSpace) ReadU64(a Addr) (uint64, error) {
	var b [8]byte
	if err := as.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit value.
func (as *AddressSpace) WriteU64(a Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(a, b[:])
}

// DirtyPages returns the addresses of dirty pages in address order.
func (as *AddressSpace) DirtyPages() []Addr {
	var out []Addr
	for a, pg := range as.pages {
		if pg.dirty {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearDirty resets dirty tracking (start of a pre-copy round).
func (as *AddressSpace) ClearDirty() {
	for _, pg := range as.pages {
		pg.dirty = false
	}
}

// PopulatedPages returns the addresses of pages that have content, in
// address order. Untouched (all-zero) pages are omitted, as CRIU omits
// them from images.
func (as *AddressSpace) PopulatedPages() []Addr {
	var out []Addr
	for a, pg := range as.pages {
		if pg.data != nil {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllZero reports whether every byte of buf is zero. The page channel
// uses it to detect zero pages, which ship as a header instead of full
// content (CRIU's zero-page image optimization).
func AllZero(buf []byte) bool {
	for len(buf) >= 8 {
		if binary.LittleEndian.Uint64(buf) != 0 {
			return false
		}
		buf = buf[8:]
	}
	for _, c := range buf {
		if c != 0 {
			return false
		}
	}
	return true
}

// ReadPage returns a copy of the page at a (which must be page-aligned).
func (as *AddressSpace) ReadPage(a Addr) []byte {
	buf := make([]byte, PageSize)
	pg := as.pages[a]
	if pg != nil && pg.data != nil {
		copy(buf, pg.data)
	}
	return buf
}

func (as *AddressSpace) overlaps(start Addr, length uint64) bool {
	for _, v := range as.vmas {
		if start < v.End() && v.Start < start+Addr(length) {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insert(v *VMA) {
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
}
